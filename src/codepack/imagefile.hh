/**
 * @file
 * On-disk format for compressed images, mirroring what a CodePack build
 * chain would ship to a target: the compressed byte region, the index
 * table, both dictionaries, and the compression metadata.
 *
 * Format v2 layout (little-endian, see DESIGN.md "Error-handling
 * policy" for the integrity rationale):
 *
 *   bytes [0,8)   magic "CPSCPK" + version char '2' + NUL
 *   bytes [8,20)  header: textBase, origTextBytes, paddedInsns (u32 each)
 *   bytes [20,24) CRC-32 of the header fields
 *   then five sections, each immediately followed by the CRC-32 of its
 *   payload (count/length fields included):
 *     index table   u32 count, count x u32 entries
 *     stream        u32 length, length raw bytes
 *     dictionaries  high then low (banks, per-bank count + entries)
 *     block extents u32 count, count x (u32 offset, u32 len, u8 raw)
 *     composition   7 x u64 bit counters
 *
 * Format v3 (version char '3') is v2 plus one trailing CRC-sealed
 * protection section, present only on images protectImage has
 * annotated:
 *     protection    u8 kind (crc8/crc16/secded),
 *                   u32 length + per-block check bytes (concatenated in
 *                   block order; each block's share is determined by the
 *                   kind and its extent, so offsets are derived, not
 *                   stored),
 *                   u32 length + per-index-entry check bytes
 * Unprotected images always encode as byte-identical v2.
 *
 * Everything read here is untrusted input: the checked entry points
 * return structured DecodeErrors (status + byte offset) and validate
 * every declared size against the bytes actually present *before*
 * allocating, so a truncated or bit-flipped file is rejected with a
 * diagnosis instead of aborting or over-reading.
 */

#ifndef CPS_CODEPACK_IMAGEFILE_HH
#define CPS_CODEPACK_IMAGEFILE_HH

#include <optional>
#include <string>

#include "common/result.hh"
#include "compressor.hh"

namespace cps
{
namespace codepack
{

/** Byte offset of the index-table entry count in an encoded image. */
constexpr size_t kImageIndexCountOffset = 24;
/** Byte offset of the first index-table entry in an encoded image. */
constexpr size_t kImageIndexEntriesOffset = 28;

/** Knobs for the checked image loaders. */
struct ImageLoadOptions
{
    /**
     * Verify each section's CRC-32 against its payload. On by default;
     * switch off to measure the checksum's load-time overhead or to
     * exercise the decode path's own structural defences.
     */
    bool verifyCrc = true;
};

/** Serializes @p img to @p path. @return false on I/O failure. */
bool saveImage(const CompressedImage &img, const std::string &path);

/** Loads an image saved by saveImage. nullopt on error/corruption. */
std::optional<CompressedImage> loadImage(const std::string &path);

/** In-memory encode/decode counterparts. */
std::vector<u8> encodeImage(const CompressedImage &img);
std::optional<CompressedImage> decodeImage(const std::vector<u8> &bytes);

/**
 * Checked decode: like decodeImage but the rejection explains itself
 * (bad magic vs unsupported version vs truncation vs CRC mismatch vs
 * insane header fields, with the failing byte offset).
 */
Result<CompressedImage> decodeImageChecked(
    const std::vector<u8> &bytes, const ImageLoadOptions &opts = {});

/** Checked load: file-read failures surface as structured errors too. */
Result<CompressedImage> loadImageChecked(
    const std::string &path, const ImageLoadOptions &opts = {});

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_IMAGEFILE_HH
