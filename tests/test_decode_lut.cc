/**
 * @file
 * Decode-LUT equivalence tests. The trusted decompressBlock path decodes
 * through a precomputed single-pass LUT; the checked tryDecompressBlock
 * path stays bit-serial. These tests pin the contract between them:
 *
 *  - on every block of every benchmark profile the two decoders agree
 *    bit for bit (words, end-bit positions, framing metadata);
 *  - on streams the LUT cannot resolve (truncations, unpopulated
 *    dictionary indexes) readFast declines without consuming anything,
 *    and the checked path reports the precise DecodeStatus;
 *  - the trusted path reproduces the checked path's diagnostic when it
 *    is fed a corrupt image (a simulator bug by definition);
 *  - the windowed 64-bit BitReader matches a bit-at-a-time shadow
 *    reader on random streams, including backward seeks and the
 *    zero-padded peek used by the LUT probe.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "codepack/compressor.hh"
#include "codepack/decompressor.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "harness/suite.hh"

namespace cps
{
namespace codepack
{
namespace
{

/** Asserts @p fast equals the checked result @p want, with context. */
void
expectBlockEq(const DecodedBlock &fast, const DecodedBlock &want,
              const std::string &ctx)
{
    EXPECT_EQ(fast.byteOffset, want.byteOffset) << ctx;
    EXPECT_EQ(fast.byteLen, want.byteLen) << ctx;
    EXPECT_EQ(fast.raw, want.raw) << ctx;
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        ASSERT_EQ(fast.words[i], want.words[i]) << ctx << " insn " << i;
        ASSERT_EQ(fast.endBit[i], want.endBit[i])
            << ctx << " insn " << i;
    }
}

/**
 * Every rung of the kernel ladder — and the batched multi-block path —
 * decodes every block of @p img identically to the checked bit-serial
 * reference.
 */
void
expectAllKernelsMatchChecked(const CompressedImage &img,
                             const std::string &name)
{
    constexpr DecodeKernel kKernels[] = {
        DecodeKernel::Checked, DecodeKernel::Lut, DecodeKernel::Lut2};
    Decompressor ref(img, DecodeKernel::Checked);
    for (DecodeKernel k : kKernels) {
        Decompressor d(img, k);
        ASSERT_EQ(d.kernel(), k);
        for (u32 g = 0; g < img.numGroups(); ++g) {
            for (u32 b = 0; b < kBlocksPerGroup; ++b) {
                Result<DecodedBlock> want = ref.tryDecompressBlock(g, b);
                ASSERT_TRUE(want.ok()) << name << " group " << g;
                expectBlockEq(d.decompressBlock(g, b), want.value(),
                              strfmt("%s kernel=%s group %u block %u",
                                     name.c_str(), decodeKernelName(k),
                                     g, b));
            }
        }
        // The batched entry point must agree block for block — both
        // over the whole image (exercising the 4-wide interleave and
        // its raw-block/tail fallbacks) and from an odd first block
        // (unaligned batch start).
        u32 blocks = img.numBlocks();
        std::vector<DecodedBlock> batch(blocks);
        d.decompressBlocks(0, blocks, batch.data());
        for (u32 fb = 0; fb < blocks; ++fb)
            expectBlockEq(batch[fb], ref.decompressFlatBlock(fb),
                          strfmt("%s kernel=%s batched flat block %u",
                                 name.c_str(), decodeKernelName(k), fb));
        if (blocks > 1) {
            std::vector<DecodedBlock> odd(blocks - 1);
            d.decompressBlocks(1, blocks - 1, odd.data());
            for (u32 fb = 1; fb < blocks; ++fb)
                expectBlockEq(odd[fb - 1], ref.decompressFlatBlock(fb),
                              strfmt("%s kernel=%s odd batch block %u",
                                     name.c_str(), decodeKernelName(k),
                                     fb));
        }
    }
}

TEST(DecodeLut, TrustedMatchesCheckedOnEveryProfileBlock)
{
    Suite &suite = Suite::instance();
    suite.pregenerate();
    for (const std::string &name : suite.names())
        expectAllKernelsMatchChecked(suite.get(name).image, name);
}

/**
 * Stitches @p words into a CompressedImage over explicit dictionaries,
 * mimicking the compressor's phase 3 (per-block encode, byte-align,
 * index-table build; no raw-block escapes). Lets tests decode under
 * adversarial dictionaries the frequency-ranked builder would never
 * produce.
 */
CompressedImage
imageOverDicts(const std::vector<u32> &words, Dictionary high,
               Dictionary low)
{
    CompressedImage img;
    img.textBase = 0;
    img.origTextBytes = static_cast<u32>(words.size() * 4);
    std::vector<u32> padded = words;
    while (padded.size() % kGroupInsns != 0)
        padded.push_back(kNopWord);
    img.paddedInsns = static_cast<u32>(padded.size());
    img.highDict = std::move(high);
    img.lowDict = std::move(low);

    u32 groups = img.paddedInsns / kGroupInsns;
    for (u32 g = 0; g < groups; ++g) {
        u32 first_off = static_cast<u32>(img.bytes.size());
        u32 lens[kBlocksPerGroup] = {};
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            const u32 *insns =
                padded.data() +
                (size_t{g} * kBlocksPerGroup + b) * kBlockInsns;
            BitWriter bw;
            for (unsigned i = 0; i < kBlockInsns; ++i) {
                u16 hi = static_cast<u16>(insns[i] >> 16);
                u16 lo = static_cast<u16>(insns[i]);
                Dictionary::writeEncoded(bw, img.highDict.encode(hi),
                                         hi);
                Dictionary::writeEncoded(bw, img.lowDict.encode(lo),
                                         lo);
            }
            bw.alignByte();
            BlockExtent ext;
            ext.byteOffset = static_cast<u32>(img.bytes.size());
            std::vector<u8> bytes = bw.take();
            ext.byteLen = static_cast<u32>(bytes.size());
            img.blocks.push_back(ext);
            img.bytes.insert(img.bytes.end(), bytes.begin(),
                             bytes.end());
            lens[b] = ext.byteLen;
        }
        img.indexTable.push_back(
            makeIndexEntry(first_off, false, lens[0], false));
    }
    return img;
}

/** Deterministic mixed instruction stream drawing halves from @p picks. */
std::vector<u32>
mixedWords(const std::vector<u16> &high_picks,
           const std::vector<u16> &low_picks, size_t count, u32 seed)
{
    Rng rng(seed);
    std::vector<u32> words;
    words.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        // Mostly dictionary hits, with raw halves and zero lows mixed
        // in so every decode rung (pair, single, raw escape, low-zero)
        // appears in every stream.
        u16 hi = rng.below(4) == 0
                     ? static_cast<u16>(rng.below(65536))
                     : high_picks[rng.below(
                           static_cast<u32>(high_picks.size()))];
        u16 lo;
        switch (rng.below(4)) {
          case 0:
            lo = static_cast<u16>(rng.below(65536));
            break;
          case 1:
            lo = 0;
            break;
          default:
            lo = low_picks[rng.below(
                static_cast<u32>(low_picks.size()))];
        }
        words.push_back((static_cast<u32>(hi) << 16) | lo);
    }
    return words;
}

TEST(DecodeLut, AllRawDictionariesNeverDoublePack)
{
    // Empty dictionaries: every halfword escapes raw (19 + 19 bits per
    // instruction, 76-byte blocks — still under the 128-byte index
    // limit for block 0). The PairLut must be all escape slots.
    Dictionary high(Dictionary::Kind::High);
    Dictionary low(Dictionary::Kind::Low);
    EXPECT_EQ(PairLut(high, low).pairSlots(), 0u);

    std::vector<u32> words =
        mixedWords({0xdead}, {0xbeef}, 4 * kGroupInsns, 0xa11);
    CompressedImage img =
        imageOverDicts(words, std::move(high), std::move(low));
    expectAllKernelsMatchChecked(img, "all-raw");
}

TEST(DecodeLut, SingleEntryDictionaries)
{
    // One bank-0 entry per dictionary: the only double-packable window
    // is that 6-bit high code followed by the low zero code or the one
    // 6-bit low code.
    Dictionary high = Dictionary::fromBankEntries(
        Dictionary::Kind::High, {{0x4242}, {}, {}, {}});
    Dictionary low = Dictionary::fromBankEntries(Dictionary::Kind::Low,
                                                 {{0x1771}, {}, {}});
    EXPECT_GT(PairLut(high, low).pairSlots(), 0u);

    std::vector<u32> words =
        mixedWords({0x4242}, {0x1771}, 6 * kGroupInsns, 0x5e1);
    CompressedImage img =
        imageOverDicts(words, std::move(high), std::move(low));
    expectAllKernelsMatchChecked(img, "single-entry");
}

TEST(DecodeLut, MaxLengthCodewordsNeverDoublePack)
{
    // Only the last bank populated: every dictionary codeword is the
    // maximum 11 bits, so no high+low combination — not even 11 bits
    // plus the 2-bit low zero code — fits the PairLut window. Double
    // packing must never apply, and decode must still agree.
    std::vector<u16> high_vals, low_vals;
    for (u16 v = 0; v < 32; ++v) {
        high_vals.push_back(static_cast<u16>(0x8000 + v));
        low_vals.push_back(static_cast<u16>(0x4000 + v));
    }
    Dictionary high = Dictionary::fromBankEntries(
        Dictionary::Kind::High, {{}, {}, {}, high_vals});
    Dictionary low = Dictionary::fromBankEntries(
        Dictionary::Kind::Low, {{}, {}, low_vals});
    EXPECT_EQ(PairLut(high, low).pairSlots(), 0u);

    std::vector<u32> words =
        mixedWords(high_vals, low_vals, 6 * kGroupInsns, 0x3aa);
    CompressedImage img =
        imageOverDicts(words, std::move(high), std::move(low));
    expectAllKernelsMatchChecked(img, "max-length");
}

/** A dictionary with a couple of populated banks for stream tests. */
Dictionary
smallHighDict()
{
    std::unordered_map<u16, u64> counts;
    counts[0x1111] = 1000; // lands in bank 0
    counts[0x2222] = 900;
    counts[0x3333] = 800;
    return Dictionary::build(Dictionary::Kind::High, counts);
}

TEST(DecodeLut, ReadFastMatchesTryReadOnValidStreams)
{
    Dictionary d = smallHighDict();
    const u16 vals[] = {0x1111, 0x2222, 0xbeef, 0x3333, 0x1111, 0xffff};
    BitWriter bw;
    for (u16 v : vals)
        d.write(bw, v);
    bw.alignByte();
    std::vector<u8> bytes = bw.take();

    BitReader fast(bytes.data(), bytes.size());
    BitReader ref(bytes.data(), bytes.size());
    for (u16 want : vals) {
        u16 got = 0;
        ASSERT_TRUE(d.readFast(fast, got));
        EXPECT_EQ(got, want);
        Result<u16> checked = d.tryRead(ref);
        ASSERT_TRUE(checked.ok());
        EXPECT_EQ(checked.value(), want);
        EXPECT_EQ(fast.bitPos(), ref.bitPos())
            << "LUT and bit-serial decode must consume identical bits";
    }
}

TEST(DecodeLut, TruncatedStreamDeclinesAndChecksAsTruncated)
{
    Dictionary d = smallHighDict();
    BitWriter bw;
    d.write(bw, 0xbeef); // raw escape: 3 tag bits + 16 literal bits
    std::vector<u8> bytes = bw.take();

    // Chop the stream so the literal cannot complete.
    BitReader fast(bytes.data(), 1);
    u16 out = 0;
    EXPECT_FALSE(d.readFast(fast, out));
    EXPECT_EQ(fast.bitPos(), 0u) << "a declined readFast consumes nothing";

    BitReader ref(bytes.data(), 1);
    Result<u16> checked = d.tryRead(ref);
    ASSERT_FALSE(checked.ok());
    EXPECT_EQ(checked.error().status, DecodeStatus::Truncated);
}

TEST(DecodeLut, UnpopulatedIndexDeclinesAndChecksAsRangeError)
{
    // Bank 0 holds 3 entries; fabricate the codeword for index 9.
    Dictionary d = smallHighDict();
    BitWriter bw;
    bw.put(0b00, 2); // bank-0 tag (high dictionary)
    bw.put(9, 4);    // index beyond the population
    bw.alignByte();
    std::vector<u8> bytes = bw.take();

    BitReader fast(bytes.data(), bytes.size());
    u16 out = 0;
    EXPECT_FALSE(d.readFast(fast, out));
    EXPECT_EQ(fast.bitPos(), 0u);

    BitReader ref(bytes.data(), bytes.size());
    Result<u16> checked = d.tryRead(ref);
    ASSERT_FALSE(checked.ok());
    EXPECT_EQ(checked.error().status, DecodeStatus::RangeError);
}

TEST(DecodeLutDeathTest, TrustedPathReproducesCheckedDiagnostic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const BenchProgram &bench = Suite::instance().get("pegwit");
    CompressedImage img = bench.image;
    ASSERT_FALSE(img.bytes.empty());
    // Scribble over the first group's stream until the checked decoder
    // objects, then insist the trusted path dies with that diagnostic.
    Rng rng(0x517e);
    for (int attempt = 0; attempt < 200; ++attempt) {
        CompressedImage bad = img;
        size_t at = rng.below(static_cast<u32>(bad.bytes.size()));
        bad.bytes[at] ^= static_cast<u8>(1u << rng.below(8));
        Decompressor d(bad);
        for (u32 g = 0; g < bad.numGroups(); ++g) {
            for (u32 b = 0; b < kBlocksPerGroup; ++b) {
                Result<DecodedBlock> ref = d.tryDecompressBlock(g, b);
                if (ref.ok()) {
                    // Both decoders still accept this block — and then
                    // they must agree exactly.
                    DecodedBlock fast = d.decompressBlock(g, b);
                    for (unsigned i = 0; i < kBlockInsns; ++i)
                        ASSERT_EQ(fast.words[i], ref.value().words[i]);
                    continue;
                }
                EXPECT_DEATH(d.decompressBlock(g, b),
                             "decompressBlock on corrupt image");
                return; // one fault that reached decode is enough
            }
        }
    }
    FAIL() << "no corruption ever produced a checked decode error";
}

/** Reads @p width bits at absolute bit @p pos, one bit at a time. */
u32
shadowRead(const std::vector<u8> &bytes, size_t pos, unsigned width)
{
    u32 out = 0;
    for (unsigned i = 0; i < width; ++i, ++pos) {
        unsigned bit = (bytes[pos >> 3] >> (7 - (pos & 7))) & 1u;
        out = (out << 1) | bit;
    }
    return out;
}

TEST(BitReaderWindow, MatchesBitSerialShadowOnRandomStreams)
{
    Rng rng(0x51dd);
    std::vector<u8> bytes(257);
    for (u8 &b : bytes)
        b = static_cast<u8>(rng.below(256));

    BitReader br(bytes.data(), bytes.size());
    size_t pos = 0;
    while (br.remaining() >= 32) {
        unsigned width = 1 + rng.below(32);
        if (width > br.remaining())
            width = static_cast<unsigned>(br.remaining());
        ASSERT_EQ(br.peek(width), shadowRead(bytes, pos, width));
        ASSERT_EQ(br.get(width), shadowRead(bytes, pos, width));
        pos += width;
        ASSERT_EQ(br.bitPos(), pos);
    }
}

TEST(BitReaderWindow, BackwardSeekRefillsTheWindow)
{
    Rng rng(0xcafe);
    std::vector<u8> bytes(64);
    for (u8 &b : bytes)
        b = static_cast<u8>(rng.below(256));

    BitReader br(bytes.data(), bytes.size());
    u32 first = br.get(13);
    br.get(24); // march the window forward
    ASSERT_TRUE(br.seekBit(0));
    EXPECT_EQ(br.get(13), first)
        << "a backward seek must not reuse the advanced window";
}

TEST(BitReaderWindow, PeekPaddedZeroFillsPastTheEnd)
{
    std::vector<u8> bytes{0xff, 0xff};
    BitReader br(bytes.data(), bytes.size());
    br.skip(8);
    // 8 real bits remain; a 12-bit padded peek reads them into the top
    // of the field with zeros below.
    EXPECT_EQ(br.peekPadded(12), 0xffu << 4);
    br.skip(8);
    EXPECT_EQ(br.remaining(), 0u);
    EXPECT_EQ(br.peekPadded(11), 0u);
}

TEST(BitReaderWindow, TrySkipChecksAvailability)
{
    std::vector<u8> bytes{0xab, 0xcd};
    BitReader br(bytes.data(), bytes.size());
    EXPECT_TRUE(br.trySkip(10));
    EXPECT_EQ(br.bitPos(), 10u);
    EXPECT_FALSE(br.trySkip(7));
    EXPECT_EQ(br.bitPos(), 10u) << "a failed trySkip must not move";
    EXPECT_TRUE(br.trySkip(6));
    EXPECT_EQ(br.remaining(), 0u);
}

} // namespace
} // namespace codepack
} // namespace cps
