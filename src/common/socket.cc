#include "socket.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "logging.hh"

namespace cps
{

void
ignoreSigpipe()
{
    // Plain signal(2), not sigaction bookkeeping: SIG_IGN is inherited
    // across fork and is exactly what every caller wants. Idempotent.
    static const bool installed = [] {
        ::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)installed;
}

namespace
{

/** Fills a sockaddr_un; false when @p path exceeds sun_path. */
bool
fillAddr(const std::string &path, sockaddr_un *addr)
{
    if (path.empty() || path.size() >= sizeof(addr->sun_path))
        return false;
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
listenUnix(const std::string &path, int backlog, std::string *err)
{
    sockaddr_un addr;
    if (!fillAddr(path, &addr)) {
        if (err)
            *err = strfmt("socket path '%s' empty or too long",
                          path.c_str());
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (err)
            *err = strfmt("socket: %s", std::strerror(errno));
        return -1;
    }
    // A daemon killed without cleanup leaves its socket file behind;
    // binding over it needs the unlink. A *live* daemon also loses its
    // socket this way — single-instance locking is the operator's job.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        if (err)
            *err = strfmt("bind %s: %s", path.c_str(),
                          std::strerror(errno));
        ::close(fd);
        return -1;
    }
    if (::listen(fd, backlog) != 0) {
        if (err)
            *err = strfmt("listen %s: %s", path.c_str(),
                          std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, long timeout_ms)
{
    sockaddr_un addr;
    if (!fillAddr(path, &addr))
        return -1;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            return -1;
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        int e = errno;
        ::close(fd);
        if (e != ENOENT && e != ECONNREFUSED && e != EINTR)
            return -1;
        if (std::chrono::steady_clock::now() >= deadline)
            return -1;
        // The daemon may still be binding; back off briefly and retry.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

int
acceptConnection(int listen_fd)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

bool
setNonBlocking(int fd, bool nonblocking)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    if (nonblocking)
        flags |= O_NONBLOCK;
    else
        flags &= ~O_NONBLOCK;
    return ::fcntl(fd, F_SETFL, flags) == 0;
}

WakeupPipe::WakeupPipe()
{
    int fds[2];
    if (::pipe(fds) != 0)
        return;
    readFd_ = fds[0];
    writeFd_ = fds[1];
    setNonBlocking(readFd_, true);
    // A full pipe must not block the notifier (or a signal handler):
    // the byte that would not fit is a wakeup someone already got.
    setNonBlocking(writeFd_, true);
}

WakeupPipe::~WakeupPipe()
{
    if (readFd_ >= 0)
        ::close(readFd_);
    if (writeFd_ >= 0)
        ::close(writeFd_);
}

void
WakeupPipe::notify() const
{
    if (writeFd_ < 0)
        return;
    u_char byte = 0;
    // Only async-signal-safe calls here; EAGAIN means "already woken".
    [[maybe_unused]] ssize_t w = ::write(writeFd_, &byte, 1);
}

void
WakeupPipe::drain() const
{
    if (readFd_ < 0)
        return;
    u_char buf[64];
    while (::read(readFd_, buf, sizeof(buf)) > 0) {
    }
}

} // namespace cps
