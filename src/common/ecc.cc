#include "ecc.hh"

#include <cstdlib>
#include <cstring>

#include "logging.hh"

namespace cps
{

namespace
{

/**
 * Codeword positions of the 64 data bits: the non-power-of-two values
 * of 1..71, ascending. Parity bit i lives at position 1<<i; bit i of a
 * data bit's position therefore says whether parity i covers it, so
 * the 7 recomputed parities are one XOR-fold of the positions of the
 * set data bits.
 */
constexpr std::array<u8, 64>
makeDataPositions()
{
    std::array<u8, 64> pos{};
    unsigned n = 0;
    for (unsigned p = 1; p <= 71; ++p)
        if ((p & (p - 1)) != 0)
            pos[n++] = static_cast<u8>(p);
    return pos;
}

/** position -> data-bit index, 0xFF for parity/invalid positions. */
constexpr std::array<u8, 128>
makePositionIndex()
{
    std::array<u8, 128> idx{};
    for (unsigned i = 0; i < 128; ++i)
        idx[i] = 0xFF;
    constexpr std::array<u8, 64> pos = makeDataPositions();
    for (unsigned d = 0; d < 64; ++d)
        idx[pos[d]] = static_cast<u8>(d);
    return idx;
}

constexpr std::array<u8, 64> kDataPos = makeDataPositions();
constexpr std::array<u8, 128> kPosIndex = makePositionIndex();

inline unsigned
parity64(u64 v)
{
    return static_cast<unsigned>(__builtin_parityll(v));
}

inline u64
loadWordPadded(const u8 *data, size_t len, size_t word)
{
    u64 w = 0;
    size_t at = word * 8;
    size_t n = len - at < 8 ? len - at : 8;
    std::memcpy(&w, data + at, n);
    return w;
}

inline void
storeWord(u8 *data, size_t len, size_t word, u64 w)
{
    size_t at = word * 8;
    size_t n = len - at < 8 ? len - at : 8;
    std::memcpy(data + at, &w, n);
}

} // namespace

const char *
protectKindName(ProtectKind kind)
{
    switch (kind) {
      case ProtectKind::None:
        return "off";
      case ProtectKind::Crc8:
        return "crc8";
      case ProtectKind::Crc16:
        return "crc16";
      case ProtectKind::SecDed:
        return "secded";
    }
    return "?";
}

bool
parseProtectKind(const char *name, ProtectKind &out)
{
    if (std::strcmp(name, "off") == 0 || std::strcmp(name, "0") == 0 ||
        std::strcmp(name, "none") == 0) {
        out = ProtectKind::None;
        return true;
    }
    if (std::strcmp(name, "crc8") == 0) {
        out = ProtectKind::Crc8;
        return true;
    }
    if (std::strcmp(name, "crc16") == 0) {
        out = ProtectKind::Crc16;
        return true;
    }
    if (std::strcmp(name, "secded") == 0) {
        out = ProtectKind::SecDed;
        return true;
    }
    return false;
}

ProtectKind
defaultProtectKind()
{
    const char *env = std::getenv("CPS_ECC");
    if (!env || !*env)
        return ProtectKind::None;
    ProtectKind kind;
    if (parseProtectKind(env, kind))
        return kind;
    envWarnOnce("CPS_ECC", env, "off|crc8|crc16|secded");
    return ProtectKind::None;
}

u8
secDedEncode(u64 data)
{
    u8 fold = 0;
    u64 v = data;
    while (v) {
        unsigned d = static_cast<unsigned>(__builtin_ctzll(v));
        v &= v - 1;
        fold ^= kDataPos[d];
    }
    // Overall parity extends the code to double-error detection: set so
    // the 72-bit codeword (data + 7 parity + itself) has even parity.
    unsigned overall = parity64(data) ^ parity64(fold);
    return static_cast<u8>(fold | (overall << 7));
}

EccOutcome
secDedCorrect(u64 &data, u8 &check)
{
    u8 expect = secDedEncode(data);
    u8 syndrome = static_cast<u8>((expect ^ check) & 0x7F);
    // Parity of the whole received 72-bit codeword (data bits, the 7
    // received parity bits, and the received overall bit). Any single
    // flip — wherever it lands — makes this odd; any double flip keeps
    // it even. Recomputing the overall bit from received data instead
    // would fold the flipped position's popcount into the answer.
    unsigned overallErr = parity64(data) ^
                          parity64(u64{check} & 0x7F) ^ ((check >> 7) & 1);
    if (syndrome == 0 && overallErr == 0)
        return EccOutcome::Clean;
    if (overallErr == 0) {
        // Parities disagree but the overall bit balances: an even
        // number of flipped bits. Double error — detected, not
        // correctable.
        return EccOutcome::Detected;
    }
    // Odd number of errors: trust the single-error hypothesis.
    if (syndrome == 0) {
        // The overall parity bit itself flipped.
        check ^= 0x80;
        return EccOutcome::Corrected;
    }
    if ((syndrome & (syndrome - 1)) == 0) {
        // A parity (check) bit flipped; the data is intact.
        check ^= syndrome;
        return EccOutcome::Corrected;
    }
    u8 d = syndrome < 128 ? kPosIndex[syndrome] : 0xFF;
    if (d == 0xFF)
        return EccOutcome::Detected; // syndrome outside the codeword
    data ^= u64{1} << d;
    return EccOutcome::Corrected;
}

void
computeBlockCheck(ProtectKind kind, const u8 *data, size_t len, u8 *out)
{
    switch (kind) {
      case ProtectKind::None:
        return;
      case ProtectKind::Crc8:
        out[0] = crc8(data, len);
        return;
      case ProtectKind::Crc16: {
        u16 c = crc16(data, len);
        out[0] = static_cast<u8>(c);
        out[1] = static_cast<u8>(c >> 8);
        return;
      }
      case ProtectKind::SecDed: {
        size_t words = (len + 7) / 8;
        for (size_t w = 0; w < words; ++w)
            out[w] = secDedEncode(loadWordPadded(data, len, w));
        return;
      }
    }
}

EccOutcome
checkBlock(ProtectKind kind, u8 *data, size_t len, const u8 *check,
           unsigned *correctedBits)
{
    if (correctedBits)
        *correctedBits = 0;
    switch (kind) {
      case ProtectKind::None:
        return EccOutcome::Clean;
      case ProtectKind::Crc8:
        return crc8(data, len) == check[0] ? EccOutcome::Clean
                                           : EccOutcome::Detected;
      case ProtectKind::Crc16: {
        u16 c = crc16(data, len);
        bool ok = static_cast<u8>(c) == check[0] &&
                  static_cast<u8>(c >> 8) == check[1];
        return ok ? EccOutcome::Clean : EccOutcome::Detected;
      }
      case ProtectKind::SecDed: {
        size_t words = (len + 7) / 8;
        EccOutcome outcome = EccOutcome::Clean;
        for (size_t w = 0; w < words; ++w) {
            u64 word = loadWordPadded(data, len, w);
            u8 c = check[w];
            EccOutcome r = secDedCorrect(word, c);
            if (r == EccOutcome::Detected)
                return EccOutcome::Detected;
            if (r == EccOutcome::Corrected) {
                // The stored check bytes are authoritative (modeled as
                // living in protected spare bits); a "correction" that
                // rewrites them, or that lands in the zero padding of
                // the final partial word, is a multi-bit alias.
                if (c != check[w])
                    return EccOutcome::Detected;
                size_t valid = len - w * 8;
                if (valid < 8 && (word >> (valid * 8)) != 0)
                    return EccOutcome::Detected;
                storeWord(data, len, w, word);
                outcome = EccOutcome::Corrected;
                if (correctedBits)
                    ++*correctedBits;
            }
        }
        return outcome;
      }
    }
    return EccOutcome::Clean;
}

void
computeIndexCheck(ProtectKind kind, u32 entry, u8 *out)
{
    u8 bytes[4];
    for (unsigned i = 0; i < 4; ++i)
        bytes[i] = static_cast<u8>(entry >> (8 * i));
    switch (kind) {
      case ProtectKind::None:
        return;
      case ProtectKind::Crc8:
        out[0] = crc8(bytes, 4);
        return;
      case ProtectKind::Crc16: {
        u16 c = crc16(bytes, 4);
        out[0] = static_cast<u8>(c);
        out[1] = static_cast<u8>(c >> 8);
        return;
      }
      case ProtectKind::SecDed:
        out[0] = secDedEncode(entry);
        return;
    }
}

EccOutcome
checkIndexEntry(ProtectKind kind, u32 &entry, const u8 *check)
{
    switch (kind) {
      case ProtectKind::None:
        return EccOutcome::Clean;
      case ProtectKind::Crc8:
      case ProtectKind::Crc16: {
        u8 expect[2];
        computeIndexCheck(kind, entry, expect);
        size_t n = indexCheckBytes(kind);
        return std::memcmp(expect, check, n) == 0 ? EccOutcome::Clean
                                                  : EccOutcome::Detected;
      }
      case ProtectKind::SecDed: {
        u64 word = entry;
        u8 c = check[0];
        EccOutcome r = secDedCorrect(word, c);
        if (r == EccOutcome::Detected)
            return EccOutcome::Detected;
        if (r == EccOutcome::Corrected) {
            // Same authority rule as checkBlock: the check byte and the
            // zero-extension are known-good, so corrections there are
            // really multi-bit aliases.
            if (c != check[0] || (word >> 32) != 0)
                return EccOutcome::Detected;
            entry = static_cast<u32>(word);
        }
        return r;
      }
    }
    return EccOutcome::Clean;
}

} // namespace cps
