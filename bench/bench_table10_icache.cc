/**
 * @file
 * Reproduces Table 10: sensitivity to I-cache size (1/4/16/64 KB) on
 * the 4-issue machine; speedup over native with the same cache.
 *
 * Paper shape: at 1KB the baseline decompressor loses up to 28% while
 * the optimized one gains up to 61% (it fills lines with fewer memory
 * accesses); both converge toward 1.0 as the cache grows and misses
 * disappear.
 */

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    const u32 sizes_kb[] = {1, 4, 16, 64};

    TextTable t;
    t.setTitle("Table 10: Variation in speedup due to I-cache size "
               "(over native with the same cache, 4-issue)");
    t.addHeader({"Bench", "1KB CP", "1KB Opt", "4KB CP", "4KB Opt",
                 "16KB CP", "16KB Opt", "64KB CP", "64KB Opt"});

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        for (u32 kb : sizes_kb) {
            MachineConfig native = baseline4Issue();
            native.icache = CacheConfig{kb * 1024, 32, 2};
            m.add(bench, native, insns);
            m.add(bench, native.withCodeModel(CodeModel::CodePack), insns);
            m.add(bench,
                  native.withCodeModel(CodeModel::CodePackOptimized),
                  insns);
        }
    }
    m.run();

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };
    for (const std::string &name : suite.names()) {
        std::vector<std::string> row{name};
        for (size_t i = 0; i < 4; ++i) {
            harness::CellOutcome cn = m.nextCell();
            harness::CellOutcome cc = m.nextCell();
            harness::CellOutcome co = m.nextCell();
            row.push_back(harness::fmtCells(cn, cc, fmtSpd));
            row.push_back(harness::fmtCells(cn, co, fmtSpd));
        }
        t.addRow(row);
    }
    t.print();
    return m.exitSummary();
}
