#include "machine.hh"

#include "codepack_fetch.hh"
#include "common/logging.hh"

namespace cps
{

MachineConfig
baseline1Issue()
{
    MachineConfig cfg;
    cfg.name = "1-issue";
    cfg.pipeline.inOrder = true;
    cfg.pipeline.width = 1;
    cfg.pipeline.fetchQueue = 4;
    cfg.pipeline.ruuSize = 8;
    cfg.pipeline.lsqSize = 4;
    cfg.pipeline.numAlu = 1;
    cfg.pipeline.numMult = 1;
    cfg.pipeline.numMemPorts = 1;
    cfg.pipeline.numFpAlu = 1;
    cfg.pipeline.numFpMult = 1;
    cfg.pipeline.predictor = PredictorKind::Bimodal2k;
    cfg.icache = CacheConfig{8 * 1024, 32, 2};
    cfg.dcache = CacheConfig{8 * 1024, 16, 2};
    return cfg;
}

MachineConfig
baseline4Issue()
{
    MachineConfig cfg;
    cfg.name = "4-issue";
    cfg.pipeline.inOrder = false;
    cfg.pipeline.width = 4;
    cfg.pipeline.fetchQueue = 8;
    cfg.pipeline.ruuSize = 64;
    cfg.pipeline.lsqSize = 32;
    cfg.pipeline.numAlu = 4;
    cfg.pipeline.numMult = 1;
    cfg.pipeline.numMemPorts = 2;
    cfg.pipeline.numFpAlu = 4;
    cfg.pipeline.numFpMult = 1;
    cfg.pipeline.predictor = PredictorKind::Gshare14;
    cfg.icache = CacheConfig{16 * 1024, 32, 2};
    cfg.dcache = CacheConfig{16 * 1024, 16, 2};
    return cfg;
}

MachineConfig
baseline8Issue()
{
    MachineConfig cfg;
    cfg.name = "8-issue";
    cfg.pipeline.inOrder = false;
    cfg.pipeline.width = 8;
    cfg.pipeline.fetchQueue = 16;
    cfg.pipeline.ruuSize = 128;
    cfg.pipeline.lsqSize = 64;
    cfg.pipeline.numAlu = 8;
    cfg.pipeline.numMult = 1;
    cfg.pipeline.numMemPorts = 2;
    cfg.pipeline.numFpAlu = 8;
    cfg.pipeline.numFpMult = 1;
    cfg.pipeline.predictor = PredictorKind::Hybrid1k;
    cfg.icache = CacheConfig{32 * 1024, 32, 2};
    cfg.dcache = CacheConfig{32 * 1024, 16, 2};
    return cfg;
}

Machine::Machine(const Program &prog, const MachineConfig &cfg,
                 const codepack::CompressedImage *img,
                 const TraceBuffer *trace)
    : cfg_(cfg), prog_(prog), mem_(cfg.mem), text_(prog),
      exec_(text_, mem_), replayTrace_(trace),
      data_(cfg.dcache, mem_, stats_)
{
    mem_.loadSegment(prog.text);
    mem_.loadSegment(prog.data);
    exec_.reset(prog);

    // The timing models see one instruction stream either way; replay
    // skips the functional re-execution the trace already did.
    if (replayTrace_)
        source_ = std::make_unique<TraceReplaySource>(*replayTrace_, text_);
    else
        source_ = std::make_unique<LiveTraceSource>(exec_);

    if (cfg.codeModel == CodeModel::Native) {
        fetch_ = std::make_unique<NativeFetchPath>(cfg.icache, mem_, stats_);
    } else if (cfg.codeModel == CodeModel::NativePrefetch) {
        fetch_ = std::make_unique<NativePrefetchFetchPath>(cfg.icache,
                                                           mem_, stats_);
    } else {
        cps_assert(img != nullptr,
                   "CodePack code models need a compressed image");
        // Images may come off disk; a structurally corrupt one is a
        // user-input problem, not a simulator bug. Reject it with a
        // diagnosis (fatal: clean exit) instead of asserting deep in
        // the fetch path later.
        if (Result<void> v = codepack::validateImage(*img); !v)
            cps_fatal("refusing corrupt compressed image: %s",
                      v.error().describe().c_str());
        if (cfg.codeModel == CodeModel::CodePackSoftware) {
            fetch_ = std::make_unique<SoftwareCodePackFetchPath>(
                cfg.icache, *img, mem_, cfg.software, stats_);
        } else {
            codepack::DecompressorConfig dcfg;
            switch (cfg.codeModel) {
              case CodeModel::CodePack:
                dcfg = codepack::DecompressorConfig{};
                break;
              case CodeModel::CodePackOptimized:
                dcfg = codepack::DecompressorConfig::optimized();
                break;
              case CodeModel::CodePackCustom:
                dcfg = cfg.decomp;
                break;
              default:
                cps_panic("unreachable code model");
            }
            fetch_ = std::make_unique<CodePackFetchPath>(
                cfg.icache, *img, mem_, dcfg, stats_);
        }
    }

    if (cfg.pipeline.inOrder) {
        inorder_ = std::make_unique<InOrderPipeline>(
            cfg.pipeline, *source_, *fetch_, data_, stats_);
    } else {
        ooo_ = std::make_unique<OoOPipeline>(cfg.pipeline, *source_,
                                             *fetch_, data_, stats_);
    }
}

RunResult
Machine::run(u64 max_insns)
{
    cps_assert(!replayTrace_ ||
                   replayTrace_->covers(max_insns, replayLookahead(cfg_)),
               "trace does not cover a %llu-insn run",
               static_cast<unsigned long long>(max_insns));
    RunResult res =
        inorder_ ? inorder_->run(max_insns) : ooo_->run(max_insns);
    // An unrecoverable in-memory corruption on the decompression path
    // poisons every cycle count after the fault; the fetch path keeps
    // delivering finite (meaningless) fills so the pipeline drains, and
    // the run is condemned here.
    if (codepack::DecompressorModel *model = decompressor();
        model && model->softError()) {
        res.status = RunStatus::DecodeFault;
        res.statusDetail = model->softErrorDetail().describe();
    }
    // The pipeline's progress watchdog returns a structured abort
    // instead of spinning; surface it here so even callers that only
    // look at cycles get a diagnosis on stderr.
    if (res.status != RunStatus::Ok)
        cps_warn("machine '%s' run aborted (%s): %s", cfg_.name.c_str(),
                 runStatusName(res.status), res.statusDetail.c_str());
    return res;
}

ChunkRunResult
Machine::runChunk(const ChunkWindow &w)
{
    cps_assert(replayTrace_ != nullptr,
               "chunk windows replay a recorded trace; none was given");
    cps_assert(replayTrace_->covers(w.skipEntries + w.warmupInsns +
                                        w.bodyInsns,
                                    replayLookahead(cfg_)),
               "trace does not cover chunk window [%llu, %llu)",
               static_cast<unsigned long long>(w.skipEntries),
               static_cast<unsigned long long>(w.skipEntries +
                                               w.warmupInsns +
                                               w.bodyInsns));
    auto *replay = static_cast<TraceReplaySource *>(source_.get());
    replay->seek(w.skipEntries);

    ChunkRunResult out;
    WarmupGate gate;
    gate.warmupInsns = w.warmupInsns;
    gate.onGate = [&] { out.statsAtGate = stats_.snapshot(); };
    if (inorder_)
        inorder_->setWarmupGate(&gate);
    else
        ooo_->setWarmupGate(&gate);

    RunResult full = inorder_ ? inorder_->run(w.warmupInsns + w.bodyInsns)
                              : ooo_->run(w.warmupInsns + w.bodyInsns);
    if (codepack::DecompressorModel *model = decompressor();
        model && model->softError()) {
        full.status = RunStatus::DecodeFault;
        full.statusDetail = model->softErrorDetail().describe();
    }

    if (inorder_)
        inorder_->setWarmupGate(nullptr);
    else
        ooo_->setWarmupGate(nullptr);
    if (full.status != RunStatus::Ok)
        cps_warn("machine '%s' chunk aborted (%s): %s", cfg_.name.c_str(),
                 runStatusName(full.status), full.statusDetail.c_str());

    if (!gate.fired) {
        // The program halted (or the run aborted) inside the warm-up:
        // this window contributes nothing countable.
        gate.cyclesAtGate = full.cycles;
        gate.insnsAtGate = full.instructions;
        out.statsAtGate = stats_.snapshot();
    }
    out.body = full;
    out.body.instructions = full.instructions - gate.insnsAtGate;
    out.body.cycles = full.cycles - gate.cyclesAtGate;
    return out;
}

codepack::DecompressorModel *
Machine::decompressor()
{
    auto *cp = dynamic_cast<CodePackFetchPath *>(fetch_.get());
    return cp ? &cp->model() : nullptr;
}

} // namespace cps
