/**
 * @file
 * Architectural state of the simulated core: 32 integer registers, 32
 * single-precision FP registers (kept as raw bits), the FP condition
 * flag, and the PC.
 */

#ifndef CPS_CORE_ARCH_STATE_HH
#define CPS_CORE_ARCH_STATE_HH

#include <array>
#include <bit>

#include "asmkit/program.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace cps
{

/** The complete architected register state. */
struct ArchState
{
    std::array<u32, kNumGpr> gpr{};
    std::array<u32, kNumFpr> fpr{}; ///< raw IEEE-754 single bits
    bool fcc = false;               ///< FP condition flag
    Addr pc = 0;

    /** Reads a GPR; $zero always reads 0. */
    u32 readGpr(unsigned r) const { return r == 0 ? 0 : gpr[r]; }

    /** Writes a GPR; writes to $zero are discarded. */
    void
    writeGpr(unsigned r, u32 value)
    {
        if (r != 0)
            gpr[r] = value;
    }

    float fprAsFloat(unsigned r) const { return std::bit_cast<float>(fpr[r]); }

    void
    writeFpr(unsigned r, float value)
    {
        fpr[r] = std::bit_cast<u32>(value);
    }

    /** Resets to the program's initial conditions. */
    void
    resetFor(const Program &prog)
    {
        gpr.fill(0);
        fpr.fill(0);
        fcc = false;
        pc = prog.entry;
        gpr[kRegSp] = kStackTop;
        gpr[kRegFp] = kStackTop;
        gpr[kRegGp] = kDataBase;
    }
};

} // namespace cps

#endif // CPS_CORE_ARCH_STATE_HH
