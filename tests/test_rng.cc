/**
 * @file
 * Tests for the deterministic RNG every stochastic component relies on.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace cps
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedWorks)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(8);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 10000; ++i) {
        u64 v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        hit_lo |= (v == 3);
        hit_hi |= (v == 6);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChancePercentExtremes)
{
    Rng r(10);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chancePercent(0));
        EXPECT_TRUE(r.chancePercent(100));
    }
}

TEST(Rng, ChancePercentApproximatesRate)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.chancePercent(30);
    EXPECT_NEAR(hits / 100000.0, 0.30, 0.01);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng r(12);
    std::vector<u32> weights{1, 0, 3};
    int counts[3] = {};
    for (int i = 0; i < 40000; ++i)
        ++counts[r.weighted(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.3);
}

TEST(Rng, SkewedRangeBounds)
{
    Rng r(13);
    for (int i = 0; i < 10000; ++i) {
        u64 v = r.skewedRange(4, 64);
        EXPECT_GE(v, 4u);
        EXPECT_LE(v, 64u);
    }
}

TEST(Rng, SkewedRangeFavoursSmallValues)
{
    Rng r(14);
    u64 below_mid = 0, n = 20000;
    for (u64 i = 0; i < n; ++i)
        below_mid += r.skewedRange(0, 100) < 50;
    EXPECT_GT(below_mid, n * 6 / 10); // strongly skewed toward 0
}

} // namespace
} // namespace cps
