/**
 * @file
 * Lefurgy'97-style whole-instruction dictionary compression: complete
 * 32-bit instructions are replaced by 1- or 2-byte codewords indexing a
 * dictionary of up to a few thousand entries; instructions outside the
 * dictionary follow an escape byte verbatim. The paper (§2.3) notes this
 * compresses about as well as CodePack but needs a much larger
 * dictionary, which could slow high-speed implementations.
 *
 * Codeword format (byte aligned, MSB first):
 *   0xxxxxxx                      7-bit index into bank A (128 entries)
 *   10xxxxxx yyyyyyyy             14-bit index into bank B (up to 16384)
 *   11000000 + 4 literal bytes    escape: raw instruction
 */

#ifndef CPS_COMPRESS_DICT32_HH
#define CPS_COMPRESS_DICT32_HH

#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "line_codec.hh"

namespace cps
{
namespace compress
{

/** A dict32-compressed text image. */
class Dict32Image : public LineCodec
{
  public:
    static constexpr unsigned kBankA = 128;
    static constexpr unsigned kBankBMax = 4096;

    static Dict32Image compress(const std::vector<u32> &words,
                                Addr text_base);

    std::vector<u32> decompressAll() const;

    // LineCodec interface -------------------------------------------------
    u32 numLines() const override
    {
        return static_cast<u32>(lineOffsets_.size());
    }
    Addr textBase() const override { return textBase_; }
    LineExtent extent(u32 line) const override;
    std::array<u32, 8> insnEndBytes(u32 line) const override;
    unsigned decodeCyclesPerInsn() const override { return 1; }
    const char *name() const override { return "dict32"; }

    double compressionRatio() const;

    u64 latBits() const { return u64{numLines()} * 32; }
    u64 dictionaryBits() const { return u64{dict_.size()} * 32; }
    u64 streamBits() const { return u64{bytes_.size()} * 8; }
    u32 origTextBytes() const { return origTextBytes_; }
    size_t dictionaryEntries() const { return dict_.size(); }

  private:
    Addr textBase_ = 0;
    u32 origTextBytes_ = 0;
    std::vector<u8> bytes_;
    std::vector<u32> lineOffsets_;
    std::vector<std::array<u32, 8>> insnEnds_;
    std::vector<u32> dict_; ///< bank A then bank B
    std::unordered_map<u32, u32> lookup_;
};

} // namespace compress
} // namespace cps

#endif // CPS_COMPRESS_DICT32_HH
