/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in this repository that needs randomness (the synthetic
 * benchmark generator, property-based tests) uses this generator so that
 * runs are reproducible bit for bit across platforms: we never rely on
 * std::rand or on unspecified standard-library distributions.
 */

#ifndef CPS_COMMON_RNG_HH
#define CPS_COMMON_RNG_HH

#include <vector>

#include "logging.hh"
#include "types.hh"

namespace cps
{

/** xorshift64* generator; fast, deterministic, and good enough for us. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 the seed so that small seeds still diverge quickly.
        u64 z = seed + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        state_ = z ^ (z >> 31);
        if (state_ == 0)
            state_ = 0x9e3779b97f4a7c15ULL;
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        u64 x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    u64
    below(u64 bound)
    {
        cps_assert(bound != 0, "Rng::below(0)");
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        cps_assert(lo <= hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** True with probability @p percent / 100. */
    bool chancePercent(unsigned percent) { return below(100) < percent; }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * Draws an index according to integer weights.
     * @param weights per-index weights; at least one must be nonzero
     */
    size_t
    weighted(const std::vector<u32> &weights)
    {
        u64 total = 0;
        for (u32 w : weights)
            total += w;
        cps_assert(total > 0, "weighted draw with all-zero weights");
        u64 pick = below(total);
        for (size_t i = 0; i < weights.size(); ++i) {
            if (pick < weights[i])
                return i;
            pick -= weights[i];
        }
        cps_panic("weighted draw fell off the end");
    }

    /**
     * Geometric-flavoured draw in [lo, hi]: small values are much more
     * common than large ones. Used to mimic immediate-field and stack
     * offset distributions in real compiled code.
     */
    u64
    skewedRange(u64 lo, u64 hi)
    {
        // Square a uniform draw to push mass toward lo.
        double u = uniform();
        double t = u * u;
        return lo + static_cast<u64>(t * static_cast<double>(hi - lo + 1)) %
            (hi - lo + 1);
    }

  private:
    u64 state_;
};

} // namespace cps

#endif // CPS_COMMON_RNG_HH
