#include "timing.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace cps
{
namespace codepack
{

DecompressorModel::DecompressorModel(const CompressedImage &img,
                                     MainMemory &mem,
                                     const DecompressorConfig &cfg,
                                     StatSet &stats)
    : img_(img), decomp_(img), blockCache_(decomp_), mem_(mem), cfg_(cfg),
      idxCache_(cfg.indexCacheLines, cfg.indexesPerLine),
      statMisses_(stats.scalar("decomp.misses")),
      statBufferHits_(stats.scalar("decomp.buffer_hits")),
      statIdxLookups_(stats.scalar("decomp.index_lookups")),
      statIdxHits_(stats.scalar("decomp.index_hits")),
      statInsnsDecoded_(stats.scalar("decomp.insns_decoded"))
{
    cps_assert(cfg.decodeRate >= 1 && cfg.decodeRate <= kBlockInsns,
               "decode rate %u out of range", cfg.decodeRate);
}

void
DecompressorModel::reset()
{
    bufValid_ = false;
    idxCache_.invalidateAll();
}

LineFill
DecompressorModel::handleMiss(Addr line_addr, Cycle now)
{
    cps_assert((line_addr & 31) == 0, "miss address not line aligned");
    statMisses_.inc();

    u32 insn_idx = img_.insnIndexOf(line_addr);
    u32 group = insn_idx / kGroupInsns;
    u32 block = (insn_idx / kBlockInsns) % kBlocksPerGroup;
    unsigned half = (insn_idx % kBlockInsns) / kLineWords;

    trace_ = MissTrace{};
    trace_.requestCycle = now;
    trace_.criticalInsn = half * kLineWords;

    LineFill fill;

    // 1. Output-buffer probe: the previous miss always decompressed the
    //    whole 16-instruction block, so the block's other line (and
    //    re-requests of the same line) stream straight out of the buffer.
    if (bufValid_ && bufGroup_ == group && bufBlock_ == block) {
        statBufferHits_.inc();
        trace_.bufferHit = true;
        // Words stream out of the buffer at the decompressor's output
        // rate (its port runs at the decode rate), and no earlier than
        // the original decode produced them.
        Cycle done = now;
        for (unsigned w = 0; w < kLineWords; ++w) {
            Cycle port = now + 1 + w / cfg_.decodeRate;
            fill.wordReady[w] =
                std::max(port, bufReady_[half * kLineWords + w]);
            done = std::max(done, fill.wordReady[w]);
        }
        fill.fillDone = done;
        fill.fromBuffer = true;
        return fill;
    }

    // 2. Index-table lookup. The index cache is probed in parallel with
    //    the L1 lookup, so a hit contributes no extra latency.
    Cycle idx_ready = now;
    trace_.indexStart = now;
    if (cfg_.perfectIndexCache) {
        trace_.indexPerfect = true;
        trace_.indexHit = true;
    } else {
        statIdxLookups_.inc();
        if (idxCache_.access(group)) {
            statIdxHits_.inc();
            trace_.indexHit = true;
        } else {
            unsigned bytes = cfg_.burstIndexFill
                                 ? 4 * cfg_.indexesPerLine : 4;
            BurstResult r = mem_.burstRead(now, bytes);
            idx_ready = r.done;
            idxCache_.fill(group);
        }
    }
    trace_.indexDone = idx_ready;

    // 3. Burst-read the compressed block. The burst starts at the bus
    //    boundary containing the block's first byte.
    const DecodedBlock &blk = blockCache_.get(group, block);
    unsigned bus_bytes = mem_.timing().busBytes();
    u32 start = static_cast<u32>(
        roundDown(blk.byteOffset, bus_bytes));
    u32 end = blk.byteOffset + std::max<u32>(blk.byteLen, 1);
    BurstResult code = mem_.burstRead(idx_ready, end - start);
    trace_.codeBeats = code.beatArrival;

    // Arrival time of each instruction's final codeword bit.
    std::array<Cycle, kBlockInsns> arrival;
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        u32 end_byte = blk.byteOffset + (blk.endBit[i] + 7) / 8; // 1 past
        u32 in_burst = end_byte - 1 - start;
        arrival[i] = code.arrivalOfByte(in_burst, bus_bytes);
    }

    // 4. Serial decode at decodeRate instructions per cycle, overlapped
    //    with the arriving beats. An instruction decoded during cycle t
    //    is available (forwarded) at t; its input bits must have arrived
    //    by t-1.
    std::array<Cycle, kBlockInsns> ready;
    unsigned decoded = 0;
    Cycle t = code.beatArrival.front();
    while (decoded < kBlockInsns) {
        // Skip idle cycles while waiting for data.
        t = std::max(t + 1, arrival[decoded] + 1);
        unsigned issued = 0;
        while (decoded < kBlockInsns && issued < cfg_.decodeRate &&
               arrival[decoded] <= t - 1) {
            ready[decoded] = t;
            ++decoded;
            ++issued;
        }
    }
    statInsnsDecoded_.inc(kBlockInsns);
    trace_.decodeDone = ready;

    // 5. Fill the output buffer with the complete block (prefetch) and
    //    report the requested line's words.
    bufValid_ = true;
    bufGroup_ = group;
    bufBlock_ = block;
    bufReady_ = ready;

    Cycle done = now;
    for (unsigned w = 0; w < kLineWords; ++w) {
        fill.wordReady[w] = ready[half * kLineWords + w];
        done = std::max(done, fill.wordReady[w]);
    }
    fill.fillDone = done;
    return fill;
}

} // namespace codepack
} // namespace cps
