#include "memfault.hh"

#include "common/logging.hh"

namespace cps
{
namespace fault
{

using codepack::BlockExtent;
using codepack::kBlocksPerGroup;

const MemFaultKind kAllMemFaultKinds[kNumMemFaultKinds] = {
    MemFaultKind::StreamFlip,
    MemFaultKind::IndexFlip,
    MemFaultKind::BurstError,
};

const char *
memFaultKindName(MemFaultKind kind)
{
    switch (kind) {
      case MemFaultKind::StreamFlip:
        return "stream-flip";
      case MemFaultKind::IndexFlip:
        return "index-flip";
      case MemFaultKind::BurstError:
        return "burst-error";
    }
    return "unknown";
}

std::string
MemFaultRecord::describe() const
{
    return strfmt("%s seed 0x%llx: group %u block %u, %u flip(s) from "
                  "bit %llu",
                  memFaultKindName(kind),
                  static_cast<unsigned long long>(seed), group,
                  flatBlock % kBlocksPerGroup, flips,
                  static_cast<unsigned long long>(bitOffset));
}

MemoryFaultInjector::MemoryFaultInjector(codepack::CompressedImage &img,
                                         u64 seed)
    : img_(img), seed_(seed), rng_(seed)
{
    cps_assert(img.numBlocks() > 0, "cannot upset an empty image");
}

u32
MemoryFaultInjector::pickBlock(u64 min_bits)
{
    // Zero-length extents exist only in degenerate images; bound the
    // re-roll so a pathological one fails loudly instead of spinning.
    for (unsigned tries = 0; tries < 4096; ++tries) {
        u32 flat = static_cast<u32>(rng_.below(img_.numBlocks()));
        if (u64{img_.blocks[flat].byteLen} * 8 >= min_bits)
            return flat;
    }
    cps_panic("no block with %llu stream bits to upset",
              static_cast<unsigned long long>(min_bits));
}

MemFaultRecord
MemoryFaultInjector::inject(MemFaultKind kind)
{
    MemFaultRecord rec;
    rec.kind = kind;
    rec.seed = seed_;

    switch (kind) {
      case MemFaultKind::StreamFlip: {
        u32 flat = pickBlock(1);
        const BlockExtent &b = img_.blocks[flat];
        u64 bit = rng_.below(u64{b.byteLen} * 8);
        img_.bytes[b.byteOffset + bit / 8] ^=
            static_cast<u8>(1u << (bit % 8));
        rec.flatBlock = flat;
        rec.group = flat / kBlocksPerGroup;
        rec.bitOffset = bit;
        rec.flips = 1;
        break;
      }
      case MemFaultKind::IndexFlip: {
        u32 group = static_cast<u32>(rng_.below(img_.indexTable.size()));
        unsigned bit = static_cast<unsigned>(rng_.below(32));
        img_.indexTable[group] ^= u32{1} << bit;
        rec.group = group;
        rec.flatBlock = group * kBlocksPerGroup;
        rec.bitOffset = bit;
        rec.flips = 1;
        break;
      }
      case MemFaultKind::BurstError: {
        u32 flat = pickBlock(2);
        const BlockExtent &b = img_.blocks[flat];
        u64 bit = rng_.below(u64{b.byteLen} * 8 - 1);
        img_.bytes[b.byteOffset + bit / 8] ^=
            static_cast<u8>(1u << (bit % 8));
        img_.bytes[b.byteOffset + (bit + 1) / 8] ^=
            static_cast<u8>(1u << ((bit + 1) % 8));
        rec.flatBlock = flat;
        rec.group = flat / kBlocksPerGroup;
        rec.bitOffset = bit;
        rec.flips = 2;
        break;
      }
    }
    return rec;
}

MemFaultRecord
MemoryFaultInjector::injectAny()
{
    MemFaultKind kind = kAllMemFaultKinds[rng_.below(kNumMemFaultKinds)];
    return inject(kind);
}

} // namespace fault
} // namespace cps
