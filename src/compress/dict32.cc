#include "dict32.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/isa.hh"

namespace cps
{
namespace compress
{

Dict32Image
Dict32Image::compress(const std::vector<u32> &words, Addr text_base)
{
    Dict32Image img;
    img.textBase_ = text_base;
    img.origTextBytes_ = static_cast<u32>(words.size() * 4);

    std::vector<u32> padded = words;
    while (padded.size() % 8 != 0)
        padded.push_back(kNopWord);

    // Rank whole instructions by frequency.
    std::unordered_map<u32, u64> counts;
    for (u32 w : padded)
        ++counts[w];
    std::vector<std::pair<u32, u64>> ranked(counts.begin(), counts.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto &a,
                                               const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });

    // Bank A: 1-byte codewords; bank B: 2-byte codewords. A bank-B
    // entry must save more stream bytes (2/occurrence) than it costs in
    // dictionary storage (4 bytes): count >= 3.
    for (const auto &[value, count] : ranked) {
        u32 index = static_cast<u32>(img.dict_.size());
        if (index < kBankA) {
            img.dict_.push_back(value);
            img.lookup_[value] = index;
        } else if (index < kBankA + kBankBMax && count >= 3) {
            img.dict_.push_back(value);
            img.lookup_[value] = index;
        } else if (index >= kBankA + kBankBMax) {
            break;
        }
    }

    // Encode, line by line (8 instructions per 32-byte I-cache line).
    u32 num_lines = static_cast<u32>(padded.size() / 8);
    img.lineOffsets_.reserve(num_lines);
    img.insnEnds_.reserve(num_lines);
    for (u32 line = 0; line < num_lines; ++line) {
        img.lineOffsets_.push_back(static_cast<u32>(img.bytes_.size()));
        std::array<u32, 8> ends{};
        for (unsigned i = 0; i < 8; ++i) {
            u32 w = padded[line * 8 + i];
            auto it = img.lookup_.find(w);
            if (it == img.lookup_.end()) {
                img.bytes_.push_back(0xc0); // escape
                img.bytes_.push_back(static_cast<u8>(w));
                img.bytes_.push_back(static_cast<u8>(w >> 8));
                img.bytes_.push_back(static_cast<u8>(w >> 16));
                img.bytes_.push_back(static_cast<u8>(w >> 24));
            } else if (it->second < kBankA) {
                img.bytes_.push_back(static_cast<u8>(it->second));
            } else {
                u32 idx = it->second - kBankA;
                img.bytes_.push_back(
                    static_cast<u8>(0x80 | ((idx >> 8) & 0x3f)));
                img.bytes_.push_back(static_cast<u8>(idx));
            }
            ends[i] = static_cast<u32>(img.bytes_.size());
        }
        img.insnEnds_.push_back(ends);
    }
    return img;
}

LineExtent
Dict32Image::extent(u32 line) const
{
    cps_assert(line < numLines(), "dict32 line %u out of range", line);
    LineExtent ext;
    ext.byteOffset = lineOffsets_[line];
    u32 end = line + 1 < numLines() ? lineOffsets_[line + 1]
                                    : static_cast<u32>(bytes_.size());
    ext.byteLen = end - ext.byteOffset;
    return ext;
}

std::array<u32, 8>
Dict32Image::insnEndBytes(u32 line) const
{
    cps_assert(line < numLines(), "dict32 line %u out of range", line);
    return insnEnds_[line];
}

std::vector<u32>
Dict32Image::decompressAll() const
{
    std::vector<u32> out;
    out.reserve(static_cast<size_t>(numLines()) * 8);
    size_t pos = 0;
    while (out.size() < static_cast<size_t>(numLines()) * 8) {
        u8 b = bytes_[pos++];
        if ((b & 0x80) == 0) {
            out.push_back(dict_[b]);
        } else if ((b & 0xc0) == 0x80) {
            u32 idx = (static_cast<u32>(b & 0x3f) << 8) | bytes_[pos++];
            out.push_back(dict_[kBankA + idx]);
        } else {
            cps_assert(b == 0xc0, "corrupt dict32 stream");
            u32 w = bytes_[pos] | (static_cast<u32>(bytes_[pos + 1]) << 8) |
                    (static_cast<u32>(bytes_[pos + 2]) << 16) |
                    (static_cast<u32>(bytes_[pos + 3]) << 24);
            pos += 4;
            out.push_back(w);
        }
    }
    out.resize(origTextBytes_ / 4);
    return out;
}

double
Dict32Image::compressionRatio() const
{
    u64 total_bits = streamBits() + latBits() + dictionaryBits();
    return static_cast<double>(total_bits) / 8.0 /
           static_cast<double>(origTextBytes_);
}

} // namespace compress
} // namespace cps
