/**
 * @file
 * Process-level fault coverage of the crash-isolated experiment
 * harness (extension; DESIGN.md "Resilient harness").
 *
 * For every worker fault kind — crash, external SIGKILL, hang, garbled
 * result frame, nonzero exit, crash-then-retry — injects the fault
 * into the middle cell of a small matrix run under isolation and
 * reports how the parent classified it, whether that matched the
 * expected structured CellStatus, and whether the neighbouring healthy
 * cells still produced results identical to an inline fault-free run.
 *
 * Exit status: 0 when every fault was classified as expected and no
 * healthy cell was disturbed; 1 otherwise.
 */

#include <cstdio>

#include "common/table.hh"
#include "fault/process_campaign.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    // A deliberately small budget: the campaign's value is in the
    // process choreography, not the simulated cycle counts.
    fault::ProcessCampaignConfig ccfg;
    ccfg.insns = 20000;
    ccfg.timeoutMs = 5000;
    ccfg.retries = 0;
    ccfg.backoffMs = 10;

    const BenchProgram &bench = Suite::instance().get("go");
    MachineConfig cfg = baseline4Issue();
    cfg.codeModel = CodeModel::CodePack;

    std::printf("process fault campaign: bench=go, %llu insns/cell, "
                "timeout %ld ms\n\n",
                static_cast<unsigned long long>(ccfg.insns),
                ccfg.timeoutMs);

    fault::ProcessCampaignResult res =
        fault::runProcessCampaign(bench, cfg, ccfg);

    TextTable t;
    t.setTitle("Worker fault containment (isolated cell runner)");
    t.addHeader({"Injected fault", "expected", "observed", "classified",
                 "neighbours clean"});
    auto faultName = [](harness::CellFault f) {
        switch (f) {
          case harness::CellFault::Crash:
            return "crash (abort)";
          case harness::CellFault::KillSelf:
            return "kill -9 self";
          case harness::CellFault::Hang:
            return "hang";
          case harness::CellFault::Garble:
            return "garbled frame";
          case harness::CellFault::ExitNonzero:
            return "exit(3)";
          case harness::CellFault::CrashOnce:
            return "crash once (retry)";
          default:
            return "?";
        }
    };
    for (const fault::ProcessFaultRecord &rec : res.records) {
        t.addRow({faultName(rec.fault),
                  harness::cellStateName(rec.expected),
                  harness::cellStateName(rec.observed),
                  rec.asExpected ? "yes" : "NO",
                  rec.cleanMatched ? "yes" : "NO"});
    }
    t.print();

    if (!res.ok()) {
        std::printf("\n%u misclassified fault(s), %u disturbed healthy "
                    "cell(s)\n",
                    res.mismatches, res.cleanMismatches);
        for (const fault::ProcessFaultRecord &rec : res.records)
            if (!rec.asExpected)
                std::printf("  %s: %s\n", faultName(rec.fault),
                            rec.detail.c_str());
        return 1;
    }
    std::printf("\nall faults contained; parent never died\n");
    return 0;
}
