/**
 * @file
 * TraceBuffer (de)serialization for the artifact cache: pregeneration
 * records each benchmark's functional trace once, and warm runs load it
 * from disk instead of re-executing up to CPS_TRACE_INSNS instructions.
 */

#include "trace.hh"

#include "common/byteio.hh"
#include "common/crc32.hh"

namespace cps
{

namespace
{

constexpr char kTraceMagic[8] = {'C', 'P', 'S', 'T', 'R', 'C', '1', '\0'};

/** Bytes of one serialized entry (pc, nextPc, memAddr, meta). */
constexpr size_t kEntryBytes = 16;

} // namespace

std::vector<u8>
encodeTrace(const TraceBuffer &trace)
{
    std::vector<u8> out;
    out.reserve(sizeof(kTraceMagic) + 5 + trace.size() * kEntryBytes + 4);
    for (char c : kTraceMagic)
        out.push_back(static_cast<u8>(c));
    put32(out, static_cast<u32>(trace.size()));
    put8(out, trace.complete() ? 1 : 0);
    for (size_t i = 0; i < trace.size(); ++i) {
        const TraceEntry &e = trace.entry(i);
        put32(out, e.pc);
        put32(out, e.nextPc);
        put32(out, e.memAddr);
        put32(out, e.meta);
    }
    put32(out, crc32(out));
    return out;
}

Result<TraceBuffer>
decodeTraceChecked(const std::vector<u8> &bytes)
{
    if (bytes.size() < 4 ||
        crc32(bytes.data(), bytes.size() - 4) !=
            (static_cast<u32>(bytes[bytes.size() - 4]) |
             (static_cast<u32>(bytes[bytes.size() - 3]) << 8) |
             (static_cast<u32>(bytes[bytes.size() - 2]) << 16) |
             (static_cast<u32>(bytes[bytes.size() - 1]) << 24)))
        return decodeErrorAtByte(DecodeStatus::BadCrc, 0,
                                 "trace CRC mismatch");

    ByteCursor cur(bytes);
    if (!cur.expectMagic(kTraceMagic, sizeof(kTraceMagic)))
        return decodeErrorAtByte(DecodeStatus::BadMagic, 0,
                                 "not a recorded trace (bad magic)");
    size_t at = cur.pos();
    u32 count = cur.get32();
    u8 complete = cur.get8();
    if (!cur.ok())
        return decodeErrorAtByte(DecodeStatus::Truncated, at,
                                 "file ends inside the trace header");
    if (complete > 1)
        return decodeErrorAtByte(DecodeStatus::BadHeader, at + 4,
                                 "trace completeness flag is %u",
                                 complete);
    // Validate the declared size against the bytes actually present
    // before reserving anything (+4 for the trailing CRC).
    if (cur.remaining() != size_t{count} * kEntryBytes + 4)
        return decodeErrorAtByte(
            DecodeStatus::Truncated, cur.pos(),
            "trace declares %u entries (%zu bytes) but %zu remain",
            count, size_t{count} * kEntryBytes, cur.remaining());

    TraceBuffer trace;
    trace.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        TraceEntry e;
        e.pc = cur.get32();
        e.nextPc = cur.get32();
        e.memAddr = cur.get32();
        e.meta = cur.get32();
        trace.appendEntry(e);
    }
    if (complete)
        trace.markComplete();
    return trace;
}

} // namespace cps
