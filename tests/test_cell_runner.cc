/**
 * @file
 * Resilient-harness contract tests: the crash-isolated cell runner must
 * survive every way a worker can die — SIGKILL mid-cell, a hang past
 * the deadline, a garbled result frame, a plain nonzero exit — and
 * report each as a structured CellStatus while neighbouring healthy
 * cells produce results identical to an inline run. Also covers the
 * CRC'd IPC framing both streams ride on, the result-envelope
 * serialization, the retry/backoff loop, the deterministic progress
 * watchdog, the cell/matrix cache keys, and the checkpoint/resume
 * journal (including torn tails and stale cell keys).
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/byteio.hh"
#include "common/ipc_frame.hh"
#include "common/watchdog.hh"
#include "harness/engine.hh"
#include "harness/journal.hh"

using namespace cps;
using harness::CellFault;
using harness::CellOutcome;
using harness::CellRunner;
using harness::CellRunnerConfig;
using harness::CellState;
using harness::RunRequest;

namespace
{

// The matrix-level tests below drive runMatrixCells through the
// process-wide env policy; set it before main() so the cached
// CellRunnerConfig::fromEnv sees isolation + a finite deadline. The
// deadline doubles as the hang-detection latency and the budget a
// healthy worker gets, so it must stay far above a 20k-insn cell's
// runtime even on an oversubscribed sanitizer host.
const bool kEnvReady = [] {
    ::setenv("CPS_ISOLATE", "1", 1);
    ::setenv("CPS_CELL_TIMEOUT_MS", "20000", 1);
    ::setenv("CPS_CELL_RETRIES", "1", 1);
    ::setenv("CPS_CELL_BACKOFF_MS", "1", 1);
    return true;
}();

constexpr u64 kInsns = 20000;

/** A fresh scratch directory, removed on destruction. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &name)
        : path("cell_runner_test_" + name)
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

RunRequest
benchRequest(const char *name = "pegwit",
             CellFault fault = CellFault::None)
{
    Suite &suite = Suite::instance();
    RunRequest req;
    req.bench = &suite.get(name);
    req.cfg = baseline4Issue();
    req.maxInsns = kInsns;
    req.injectFault = fault;
    return req;
}

/** A runner that forks workers, with a deadline tests can wait out. */
CellRunnerConfig
isolatedConfig(long timeout_ms = 20000, unsigned retries = 0)
{
    CellRunnerConfig cfg;
    cfg.isolate = true;
    cfg.timeoutMs = timeout_ms;
    cfg.retries = retries;
    cfg.backoffMs = 1;
    return cfg;
}

void
expectSameOutcome(const RunOutcome &a, const RunOutcome &b)
{
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.programExited, b.result.programExited);
    EXPECT_EQ(a.result.status, b.result.status);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.bufferHits, b.bufferHits);
    EXPECT_EQ(a.missLatencyTotal, b.missLatencyTotal);
    EXPECT_DOUBLE_EQ(a.icacheMissRate, b.icacheMissRate);
    EXPECT_DOUBLE_EQ(a.indexCacheMissRate, b.indexCacheMissRate);
}

// ---------------------------------------------------------- IPC frames

TEST(IpcFrame, EncodeDecodeRoundtripsConsecutiveFrames)
{
    std::vector<u8> stream;
    for (u32 type = 1; type <= 3; ++type) {
        std::vector<u8> payload(type * 10, static_cast<u8>(type));
        std::vector<u8> frame = encodeFrame(type, payload);
        stream.insert(stream.end(), frame.begin(), frame.end());
    }

    size_t pos = 0;
    IpcFrame frame;
    for (u32 type = 1; type <= 3; ++type) {
        ASSERT_EQ(decodeFrameAt(stream, pos, frame), FrameReadStatus::Ok);
        EXPECT_EQ(frame.type, type);
        EXPECT_EQ(frame.payload.size(), size_t{type} * 10);
    }
    EXPECT_EQ(decodeFrameAt(stream, pos, frame), FrameReadStatus::Eof);
}

TEST(IpcFrame, TruncatedTailReportsTornNotEof)
{
    std::vector<u8> stream = encodeFrame(7, {1, 2, 3, 4});
    stream.resize(stream.size() - 3); // writer died mid-append
    size_t pos = 0;
    IpcFrame frame;
    EXPECT_EQ(decodeFrameAt(stream, pos, frame), FrameReadStatus::Torn);
    EXPECT_EQ(pos, 0u); // left at the damaged frame's start
}

TEST(IpcFrame, FlippedByteFailsCrc)
{
    std::vector<u8> stream = encodeFrame(7, {1, 2, 3, 4});
    stream[stream.size() / 2] ^= 0x40;
    size_t pos = 0;
    IpcFrame frame;
    EXPECT_EQ(decodeFrameAt(stream, pos, frame), FrameReadStatus::Torn);
}

TEST(IpcFrame, PipeRoundtripAndTimeout)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    std::vector<u8> payload(100, 0x5A);
    ASSERT_TRUE(writeFrame(fds[1], 9, payload));

    IpcFrame frame;
    ASSERT_EQ(readFrame(fds[0], frame, 1000), FrameReadStatus::Ok);
    EXPECT_EQ(frame.type, 9u);
    EXPECT_EQ(frame.payload, payload);

    // Nothing left in the pipe: a short deadline must expire cleanly.
    EXPECT_EQ(readFrame(fds[0], frame, 50), FrameReadStatus::Timeout);

    ::close(fds[1]);
    EXPECT_EQ(readFrame(fds[0], frame, 50), FrameReadStatus::Eof);
    ::close(fds[0]);
}

TEST(IpcFrame, WriterDeadMidFrameIsTorn)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::vector<u8> frame = encodeFrame(9, std::vector<u8>(64, 1));
    // Half a frame, then the writer "dies" (fd closes).
    ASSERT_EQ(::write(fds[1], frame.data(), frame.size() / 2),
              static_cast<ssize_t>(frame.size() / 2));
    ::close(fds[1]);
    IpcFrame out;
    EXPECT_EQ(readFrame(fds[0], out, 1000), FrameReadStatus::Torn);
    ::close(fds[0]);
}

// ----------------------------------------------------- result envelope

TEST(RunOutcomeEnvelope, RoundtripPreservesEveryField)
{
    RunOutcome out;
    out.result.instructions = 123456;
    out.result.cycles = 7890123;
    out.result.programExited = true;
    out.result.status = RunStatus::Stalled;
    out.result.statusDetail = "no retirement for 4 checks";
    out.icacheMissRate = 0.0625;
    out.indexCacheMissRate = 0.125;
    out.icacheMisses = 4242;
    out.bufferHits = 99;
    out.missLatencyTotal = 1000000;

    Result<RunOutcome> back =
        harness::decodeRunOutcomeChecked(harness::encodeRunOutcome(out));
    ASSERT_TRUE(back.ok()) << back.error().describe();
    expectSameOutcome(*back, out);
    EXPECT_EQ(back->result.statusDetail, out.result.statusDetail);
}

TEST(RunOutcomeEnvelope, RejectsBadVersionAndTruncation)
{
    RunOutcome out;
    out.result.instructions = 1;
    std::vector<u8> bytes = harness::encodeRunOutcome(out);

    std::vector<u8> bad_version = bytes;
    bad_version[0] = 99;
    EXPECT_FALSE(harness::decodeRunOutcomeChecked(bad_version).ok());

    std::vector<u8> truncated(bytes.begin(), bytes.end() - 5);
    EXPECT_FALSE(harness::decodeRunOutcomeChecked(truncated).ok());

    std::vector<u8> oversized = bytes;
    oversized.push_back(0);
    EXPECT_FALSE(harness::decodeRunOutcomeChecked(oversized).ok());
}

// --------------------------------------------------- progress watchdog

TEST(Watchdog, NeverTripsWhileProgressing)
{
    ProgressWatchdog dog(10, 2);
    u64 progress = 0;
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(dog.tick(++progress));
}

TEST(Watchdog, TripsAfterConsecutiveStalledChecks)
{
    ProgressWatchdog dog(10, 3);
    ASSERT_FALSE(dog.tick(5)); // iteration 1: below interval
    bool tripped = false;
    // The first check records the counter; the next 3 stalled checks
    // (10 iterations each) must trip it.
    for (int i = 0; i < 10 * 4; ++i)
        tripped = dog.tick(5) || tripped;
    EXPECT_TRUE(tripped);
    EXPECT_EQ(dog.stalledChecks(), 3u);
}

TEST(Watchdog, ProgressResetsTheStallCount)
{
    ProgressWatchdog dog(1, 3); // every tick is a check
    EXPECT_FALSE(dog.tick(1));
    EXPECT_FALSE(dog.tick(1)); // stalled check 1
    EXPECT_FALSE(dog.tick(1)); // stalled check 2
    EXPECT_FALSE(dog.tick(2)); // progress: count resets
    EXPECT_FALSE(dog.tick(2));
    EXPECT_FALSE(dog.tick(2));
    EXPECT_TRUE(dog.tick(2)); // stalled check 3
}

TEST(Watchdog, ZeroLimitDisables)
{
    ProgressWatchdog dog(1, 0);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(dog.tick(0));
}

TEST(Watchdog, CounterWraparoundRegistersAsProgress)
{
    // A progress counter crossing the u64 wrap (…, ~0-1, ~0, 0, 1, …)
    // changes on every check; the watchdog must see progress, not a
    // phantom stall, anywhere along the way.
    ProgressWatchdog dog(1, 1); // hair trigger: one stalled check trips
    u64 p = ~u64{0} - 2;
    for (int i = 0; i < 6; ++i)
        EXPECT_FALSE(dog.tick(p + static_cast<u64>(i)))
            << "tripped at step " << i;
    EXPECT_EQ(dog.stalledChecks(), 0u);
}

TEST(Watchdog, EveryStuckValueTripsAtTheSameCheckCount)
{
    // ~0 was once the "no previous reading" sentinel; a counter stuck
    // there must trip after exactly first-check + stall_limit checks
    // like any other stuck value, not one check early.
    for (u64 stuck : {u64{0}, u64{5}, ~u64{0}}) {
        ProgressWatchdog dog(1, 2);
        EXPECT_FALSE(dog.tick(stuck)); // first check: progress
        EXPECT_FALSE(dog.tick(stuck)); // stalled check 1
        EXPECT_TRUE(dog.tick(stuck))   // stalled check 2: trips
            << "stuck value " << stuck;
    }
}

// ------------------------------------------------------------ keys

TEST(CellKey, SensitiveToEveryRunParameter)
{
    RunRequest base = benchRequest();
    const std::string key = harness::cellKey(base);

    RunRequest insns = base;
    insns.maxInsns += 1;
    EXPECT_NE(harness::cellKey(insns), key);

    RunRequest cache = base;
    cache.cfg.icache.sizeBytes *= 2;
    EXPECT_NE(harness::cellKey(cache), key);

    RunRequest model = base;
    model.cfg.codeModel = CodeModel::CodePack;
    EXPECT_NE(harness::cellKey(model), key);

    RunRequest dog = base;
    dog.cfg.pipeline.watchdogStallLimit += 1;
    EXPECT_NE(harness::cellKey(dog), key);

    RunRequest bench = base;
    bench.bench = &Suite::instance().get("go");
    EXPECT_NE(harness::cellKey(bench), key);

    // The injected fault is test machinery, not a simulation input.
    RunRequest faulted = base;
    faulted.injectFault = CellFault::Crash;
    EXPECT_EQ(harness::cellKey(faulted), key);
}

TEST(MatrixKey, SensitiveToCellOrderAndCount)
{
    RunRequest a = benchRequest("pegwit");
    RunRequest b = benchRequest("go");
    const std::string ab = harness::matrixKey({a, b});
    EXPECT_NE(harness::matrixKey({b, a}), ab);
    EXPECT_NE(harness::matrixKey({a}), ab);
    EXPECT_EQ(harness::matrixKey({a, b}), ab);
}

// ------------------------------------------------- isolated execution

TEST(CellRunner, IsolatedResultMatchesInlineExactly)
{
    RunRequest req = benchRequest();
    CellOutcome inline_out = CellRunner(CellRunnerConfig{}).run(req);
    CellOutcome iso_out = CellRunner(isolatedConfig()).run(req);
    ASSERT_TRUE(inline_out.status.ok());
    ASSERT_TRUE(iso_out.status.ok())
        << iso_out.status.describe();
    EXPECT_EQ(iso_out.status.attempts, 1u);
    expectSameOutcome(iso_out.outcome, inline_out.outcome);
}

TEST(CellRunner, SigkilledWorkerIsReportedAsCrash)
{
    // kill -9 mid-cell: the canonical "OOM killer took the worker".
    RunRequest req = benchRequest("pegwit", CellFault::KillSelf);
    CellOutcome out = CellRunner(isolatedConfig()).run(req);
    EXPECT_EQ(out.status.state, CellState::Crashed);
    EXPECT_EQ(out.status.termSignal, SIGKILL);
    EXPECT_EQ(harness::failLabel(out.status), "FAILED(sig=9)");
}

TEST(CellRunner, AbortingWorkerIsReportedAsCrash)
{
    RunRequest req = benchRequest("pegwit", CellFault::Crash);
    CellOutcome out = CellRunner(isolatedConfig()).run(req);
    EXPECT_EQ(out.status.state, CellState::Crashed);
    EXPECT_EQ(out.status.termSignal, SIGABRT);
}

TEST(CellRunner, HangingWorkerTripsTheDeadline)
{
    RunRequest req = benchRequest("pegwit", CellFault::Hang);
    CellOutcome out = CellRunner(isolatedConfig(300)).run(req);
    EXPECT_EQ(out.status.state, CellState::Timeout);
    EXPECT_EQ(harness::failLabel(out.status), "FAILED(timeout)");
}

TEST(CellRunner, SlowWorkerInsideTheDeadlineIsNotATimeout)
{
    // A worker that delivers late-but-in-time must produce a result
    // byte-identical to a prompt one: the deadline is a cliff at
    // CPS_CELL_TIMEOUT_MS, not a gradual penalty.
    CellOutcome baseline =
        CellRunner(CellRunnerConfig{}).run(benchRequest());

    RunRequest req = benchRequest("pegwit", CellFault::SlowResult);
    req.faultDelayMs = 100;
    CellOutcome out = CellRunner(isolatedConfig(20000)).run(req);
    ASSERT_TRUE(out.status.ok()) << out.status.describe();
    EXPECT_EQ(out.status.attempts, 1u);
    expectSameOutcome(out.outcome, baseline.outcome);
}

TEST(CellRunner, DeadlineTripsAtTheConfiguredBoundNotTheWorkerPace)
{
    // The worker sleeps far past the deadline; the runner must kill it
    // at the configured bound instead of waiting out the sleep, and
    // the diagnosis must name the exact CPS_CELL_TIMEOUT_MS value.
    constexpr long kTimeoutMs = 300;
    RunRequest req = benchRequest("pegwit", CellFault::SlowResult);
    req.faultDelayMs = 10000;
    auto start = std::chrono::steady_clock::now();
    CellOutcome out = CellRunner(isolatedConfig(kTimeoutMs)).run(req);
    long elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(out.status.state, CellState::Timeout);
    EXPECT_NE(out.status.detail.find("within 300 ms"),
              std::string::npos)
        << out.status.detail;
    // Generous upper bound (slow CI hosts) that still proves the
    // runner gave up at ~kTimeoutMs rather than at faultDelayMs.
    EXPECT_LT(elapsed_ms, 5000);
}

TEST(CellRunner, GarbledResultFrameIsAProtocolError)
{
    RunRequest req = benchRequest("pegwit", CellFault::Garble);
    CellOutcome out = CellRunner(isolatedConfig()).run(req);
    EXPECT_EQ(out.status.state, CellState::ProtocolError);
}

TEST(CellRunner, NonzeroExitIsReportedWithItsCode)
{
    RunRequest req = benchRequest("pegwit", CellFault::ExitNonzero);
    CellOutcome out = CellRunner(isolatedConfig()).run(req);
    EXPECT_EQ(out.status.state, CellState::ExitedError);
    EXPECT_EQ(out.status.exitCode, 3);
    EXPECT_EQ(harness::failLabel(out.status), "FAILED(exit=3)");
}

TEST(CellRunner, TransientCrashRecoversOnRetry)
{
    RunRequest healthy = benchRequest();
    CellOutcome baseline = CellRunner(CellRunnerConfig{}).run(healthy);
    ASSERT_TRUE(baseline.status.ok());

    RunRequest req = benchRequest("pegwit", CellFault::CrashOnce);
    CellOutcome out =
        CellRunner(isolatedConfig(20000, /*retries=*/1)).run(req);
    ASSERT_TRUE(out.status.ok()) << out.status.describe();
    EXPECT_EQ(out.status.attempts, 2u);
    expectSameOutcome(out.outcome, baseline.outcome);
}

TEST(CellRunner, ExhaustedRetriesKeepTheFinalFailure)
{
    RunRequest req = benchRequest("pegwit", CellFault::Crash);
    CellOutcome out =
        CellRunner(isolatedConfig(20000, /*retries=*/1)).run(req);
    EXPECT_EQ(out.status.state, CellState::Crashed);
    EXPECT_EQ(out.status.attempts, 2u);
}

// --------------------------------------- matrix-level fault containment

TEST(MatrixResilience, FaultyCellsDegradeToPlaceholdersOthersSurvive)
{
    ASSERT_TRUE(kEnvReady); // CPS_ISOLATE=1 et al. for fromEnv()
    Suite &suite = Suite::instance();
    suite.pregenerate();

    // A healthy baseline for the cells the faults must not disturb.
    harness::Matrix healthy;
    healthy.add(benchRequest("pegwit"));
    healthy.add(benchRequest("go"));
    healthy.run(2);
    ASSERT_TRUE(healthy.cell(0).status.ok());
    ASSERT_TRUE(healthy.cell(1).status.ok());

    // The acceptance matrix: a crashing cell and a hanging cell
    // surrounded by healthy ones, run in parallel under isolation.
    harness::Matrix m;
    m.add(benchRequest("pegwit"));
    m.add(benchRequest("pegwit", CellFault::Crash));
    m.add(benchRequest("go"));
    m.add(benchRequest("go", CellFault::Hang));
    m.run(4);

    EXPECT_TRUE(m.cell(0).status.ok());
    EXPECT_EQ(m.cell(1).status.state, CellState::Crashed);
    EXPECT_TRUE(m.cell(2).status.ok());
    EXPECT_EQ(m.cell(3).status.state, CellState::Timeout);

    // Retried per CPS_CELL_RETRIES=1 before giving up.
    EXPECT_EQ(m.cell(1).status.attempts, 2u);
    EXPECT_EQ(m.cell(3).status.attempts, 2u);

    // Healthy cells are bit-identical to the fault-free matrix.
    expectSameOutcome(m.cell(0).outcome, healthy.cell(0).outcome);
    expectSameOutcome(m.cell(2).outcome, healthy.cell(1).outcome);

    // Degraded-table rendering and the failure exit summary.
    auto fmt = [](const RunOutcome &o) {
        return std::to_string(o.result.cycles);
    };
    EXPECT_EQ(m.fmtNext(fmt),
              std::to_string(m.cell(0).outcome.result.cycles));
    EXPECT_EQ(m.fmtNext(fmt), "FAILED(sig=6)");
    EXPECT_EQ(m.fmtNext(fmt),
              std::to_string(m.cell(2).outcome.result.cycles));
    EXPECT_EQ(m.fmtNext(fmt), "FAILED(timeout)");
    EXPECT_EQ(m.failedCount(), 2u);
    EXPECT_EQ(m.exitSummary(), 1);

    // fmtCells degrades pairwise metrics the same way.
    EXPECT_EQ(harness::fmtCells(m.cell(0), m.cell(1),
                                [](const RunOutcome &,
                                   const RunOutcome &) {
                                    return std::string("1.0");
                                }),
              "FAILED(sig=6)");
}

// ------------------------------------------------------ resume journal

TEST(MatrixJournal, AppendThenLoadRoundtrips)
{
    ScratchDir dir("journal_roundtrip");
    std::vector<RunRequest> reqs{benchRequest("pegwit"),
                                 benchRequest("go")};
    const std::string key = harness::matrixKey(reqs);

    CellOutcome done = CellRunner(CellRunnerConfig{}).run(reqs[1]);
    ASSERT_TRUE(done.status.ok());

    harness::MatrixJournal journal(dir.path, key, reqs.size());
    journal.append(1, harness::cellKey(reqs[1]), done.outcome);

    harness::MatrixJournal reopened(dir.path, key, reqs.size());
    std::vector<std::optional<RunOutcome>> loaded = reopened.load(reqs);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_FALSE(loaded[0].has_value());
    ASSERT_TRUE(loaded[1].has_value());
    expectSameOutcome(*loaded[1], done.outcome);
}

TEST(MatrixJournal, StaleCellKeyIsDroppedNotTrusted)
{
    ScratchDir dir("journal_stale");
    std::vector<RunRequest> reqs{benchRequest("pegwit")};
    const std::string key = harness::matrixKey(reqs);

    CellOutcome done = CellRunner(CellRunnerConfig{}).run(reqs[0]);
    ASSERT_TRUE(done.status.ok());

    harness::MatrixJournal journal(dir.path, key, reqs.size());
    journal.append(0, harness::cellKey(reqs[0]), done.outcome);

    // The same journal file read back for a changed cell: the record's
    // cell-key hash no longer matches, so it must re-execute.
    std::vector<RunRequest> changed = reqs;
    changed[0].maxInsns += 1;
    std::vector<std::optional<RunOutcome>> loaded =
        harness::MatrixJournal(dir.path, key, reqs.size()).load(changed);
    EXPECT_FALSE(loaded[0].has_value());
}

TEST(MatrixJournal, WrongMatrixKeyLoadsNothing)
{
    ScratchDir dir("journal_wrongkey");
    std::vector<RunRequest> reqs{benchRequest("pegwit")};
    const std::string key = harness::matrixKey(reqs);

    CellOutcome done = CellRunner(CellRunnerConfig{}).run(reqs[0]);
    ASSERT_TRUE(done.status.ok());

    harness::MatrixJournal journal(dir.path, key, reqs.size());
    journal.append(0, harness::cellKey(reqs[0]), done.outcome);

    // Forge a journal whose file name matches a different matrix but
    // whose header key does not: the header check must reject it.
    harness::MatrixJournal other(dir.path, key + "X", reqs.size());
    auto bytes = readFileBytes(journal.path());
    ASSERT_TRUE(bytes.has_value());
    ASSERT_TRUE(writeFileBytes(other.path(), *bytes));
    std::vector<std::optional<RunOutcome>> loaded = other.load(reqs);
    EXPECT_FALSE(loaded[0].has_value());
}

TEST(MatrixJournal, TornTailKeepsEveryRecordBeforeIt)
{
    ScratchDir dir("journal_torn");
    std::vector<RunRequest> reqs{benchRequest("pegwit"),
                                 benchRequest("go")};
    const std::string key = harness::matrixKey(reqs);

    CellOutcome first = CellRunner(CellRunnerConfig{}).run(reqs[0]);
    CellOutcome second = CellRunner(CellRunnerConfig{}).run(reqs[1]);
    ASSERT_TRUE(first.status.ok());
    ASSERT_TRUE(second.status.ok());

    harness::MatrixJournal journal(dir.path, key, reqs.size());
    journal.append(0, harness::cellKey(reqs[0]), first.outcome);
    journal.append(1, harness::cellKey(reqs[1]), second.outcome);

    // Kill the appender mid-record: chop bytes off the tail.
    auto bytes = readFileBytes(journal.path());
    ASSERT_TRUE(bytes.has_value());
    bytes->resize(bytes->size() - 7);
    ASSERT_TRUE(writeFileBytes(journal.path(), *bytes));

    std::vector<std::optional<RunOutcome>> loaded =
        harness::MatrixJournal(dir.path, key, reqs.size()).load(reqs);
    ASSERT_TRUE(loaded[0].has_value()); // intact record survives
    expectSameOutcome(*loaded[0], first.outcome);
    EXPECT_FALSE(loaded[1].has_value()); // torn record re-executes
}

TEST(MatrixJournal, MissingFileLoadsNothing)
{
    ScratchDir dir("journal_missing");
    std::vector<RunRequest> reqs{benchRequest("pegwit")};
    harness::MatrixJournal journal(dir.path, harness::matrixKey(reqs),
                                   reqs.size());
    std::vector<std::optional<RunOutcome>> loaded = journal.load(reqs);
    EXPECT_FALSE(loaded[0].has_value());
}

TEST(MatrixJournal, CompactShrinksDuplicatesAndKeepsEveryCell)
{
    ScratchDir dir("journal_compact");
    std::vector<RunRequest> reqs{benchRequest("pegwit"),
                                 benchRequest("go")};
    const std::string key = harness::matrixKey(reqs);

    CellOutcome first = CellRunner(CellRunnerConfig{}).run(reqs[0]);
    CellOutcome second = CellRunner(CellRunnerConfig{}).run(reqs[1]);
    ASSERT_TRUE(first.status.ok());
    ASSERT_TRUE(second.status.ok());

    // A daemon serving the same matrix repeatedly appends the same
    // records over and over; compaction must collapse the file to its
    // minimal closed form without losing a cell.
    harness::MatrixJournal journal(dir.path, key, reqs.size());
    for (int round = 0; round < 5; ++round) {
        journal.append(0, harness::cellKey(reqs[0]), first.outcome);
        journal.append(1, harness::cellKey(reqs[1]), second.outcome);
    }
    auto bloated = std::filesystem::file_size(journal.path());
    ASSERT_TRUE(journal.compact(reqs));
    EXPECT_TRUE(journal.complete());
    auto compacted = std::filesystem::file_size(journal.path());
    EXPECT_LT(compacted, bloated);

    std::vector<std::optional<RunOutcome>> loaded =
        harness::MatrixJournal(dir.path, key, reqs.size()).load(reqs);
    ASSERT_TRUE(loaded[0].has_value());
    ASSERT_TRUE(loaded[1].has_value());
    expectSameOutcome(*loaded[0], first.outcome);
    expectSameOutcome(*loaded[1], second.outcome);
}

TEST(MatrixJournal, CompactedJournalSuppressesFurtherAppends)
{
    ScratchDir dir("journal_tombstone");
    std::vector<RunRequest> reqs{benchRequest("pegwit")};
    const std::string key = harness::matrixKey(reqs);

    CellOutcome done = CellRunner(CellRunnerConfig{}).run(reqs[0]);
    ASSERT_TRUE(done.status.ok());

    harness::MatrixJournal journal(dir.path, key, reqs.size());
    journal.append(0, harness::cellKey(reqs[0]), done.outcome);
    ASSERT_TRUE(journal.compact(reqs));
    auto closed = std::filesystem::file_size(journal.path());

    // Appends after the tombstone are no-ops, both on the handle that
    // compacted and on a fresh handle that merely observes the
    // tombstone on disk.
    journal.append(0, harness::cellKey(reqs[0]), done.outcome);
    harness::MatrixJournal reopened(dir.path, key, reqs.size());
    EXPECT_TRUE(reopened.complete());
    reopened.append(0, harness::cellKey(reqs[0]), done.outcome);
    EXPECT_EQ(std::filesystem::file_size(journal.path()), closed);

    std::vector<std::optional<RunOutcome>> loaded =
        reopened.load(reqs);
    ASSERT_TRUE(loaded[0].has_value());
    expectSameOutcome(*loaded[0], done.outcome);
}

TEST(MatrixJournal, CompactRefusesAnIncompleteMatrix)
{
    ScratchDir dir("journal_incomplete");
    std::vector<RunRequest> reqs{benchRequest("pegwit"),
                                 benchRequest("go")};
    const std::string key = harness::matrixKey(reqs);

    CellOutcome done = CellRunner(CellRunnerConfig{}).run(reqs[0]);
    ASSERT_TRUE(done.status.ok());

    harness::MatrixJournal journal(dir.path, key, reqs.size());
    journal.append(0, harness::cellKey(reqs[0]), done.outcome);
    EXPECT_FALSE(journal.compact(reqs)); // cell 1 still missing
    EXPECT_FALSE(journal.complete());

    // The half-done journal still loads what it has.
    std::vector<std::optional<RunOutcome>> loaded = journal.load(reqs);
    EXPECT_TRUE(loaded[0].has_value());
    EXPECT_FALSE(loaded[1].has_value());
}

} // namespace
