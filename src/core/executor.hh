/**
 * @file
 * Functional execution of the simulated ISA.
 *
 * The simulator is timing-directed: the Executor runs the program with
 * architecturally exact semantics, one instruction per step(), and each
 * step returns a record (PC, decoded instruction, branch outcome, memory
 * address) that the timing pipelines consume. This matches how the
 * paper's experiments use SimpleScalar: the interesting phenomena are all
 * on the instruction-fetch path, which the timing models reproduce in
 * detail.
 *
 * Syscall conventions (SPIM-flavoured, selected by $v0):
 *   1  print_int($a0)       4  print_string($a0, NUL-terminated)
 *   11 print_char($a0)      10 exit
 */

#ifndef CPS_CORE_EXECUTOR_HH
#define CPS_CORE_EXECUTOR_HH

#include <string>

#include "arch_state.hh"
#include "decoded_text.hh"
#include "mem/main_memory.hh"

namespace cps
{

/** Everything the timing models need to know about one retired op. */
struct StepRecord
{
    Addr pc = 0;
    const Inst *inst = nullptr;
    const InstInfo *info = nullptr;
    Addr nextPc = 0;
    bool taken = false;   ///< control op redirected the PC
    Addr memAddr = 0;     ///< effective address when info->isMem
    bool halted = false;  ///< program exited on this step
};

/** Architecturally exact, in-order functional executor. */
class Executor
{
  public:
    /**
     * @param text pre-decoded text segment (must outlive the executor)
     * @param mem functional backing store (data already loaded)
     */
    Executor(const DecodedText &text, MainMemory &mem);

    /** Resets registers/PC for @p prog and clears counters. */
    void reset(const Program &prog);

    /** Executes one instruction. @return the retirement record */
    StepRecord step();

    /** True once an exit syscall (or break) has executed. */
    bool halted() const { return halted_; }

    /** Dynamic instruction count so far. */
    u64 instCount() const { return instCount_; }

    ArchState &state() { return state_; }
    const ArchState &state() const { return state_; }

    /** The pre-decoded text this executor runs. */
    const DecodedText &text() const { return text_; }

    /** Text written by print syscalls. */
    const std::string &output() const { return output_; }
    void clearOutput() { output_.clear(); }

    /** Dynamic instruction counts per class (profiling / Table 1). */
    struct MixStats
    {
        std::array<u64, 16> byClass{};

        u64 &
        operator[](InstClass cls)
        {
            return byClass[static_cast<size_t>(cls)];
        }

        u64
        of(InstClass cls) const
        {
            return byClass[static_cast<size_t>(cls)];
        }

        u64
        total() const
        {
            u64 t = 0;
            for (u64 c : byClass)
                t += c;
            return t;
        }

        /** Share of class @p cls among all retired instructions. */
        double
        share(InstClass cls) const
        {
            u64 t = total();
            return t == 0 ? 0.0
                          : static_cast<double>(of(cls)) /
                                static_cast<double>(t);
        }

        /** Loads + stores. */
        u64
        memOps() const
        {
            return of(InstClass::Load) + of(InstClass::Store);
        }

        /** All control-transfer classes. */
        u64
        controlOps() const
        {
            return of(InstClass::Branch) + of(InstClass::Jump) +
                   of(InstClass::JumpReg);
        }
    };

    const MixStats &mix() const { return mix_; }

  private:
    void doSyscall();

    const DecodedText &text_;
    MainMemory &mem_;
    ArchState state_;
    bool halted_ = false;
    u64 instCount_ = 0;
    MixStats mix_;
    std::string output_;
};

} // namespace cps

#endif // CPS_CORE_EXECUTOR_HH
