/**
 * @file
 * The CodePack compressor: turns a program's text segment into a
 * compressed image (compressed byte region + index table + dictionaries)
 * and accounts for every bit the way the paper's Table 4 does.
 */

#ifndef CPS_CODEPACK_COMPRESSOR_HH
#define CPS_CODEPACK_COMPRESSOR_HH

#include <vector>

#include "asmkit/program.hh"
#include "common/ecc.hh"
#include "common/types.hh"
#include "dictionary.hh"
#include "format.hh"

namespace cps
{
namespace codepack
{

/** Compressor options. */
struct CompressorConfig
{
    /**
     * Allow storing a block uncompressed when compression would expand
     * it (the paper notes IBM's scheme does this; it is rare).
     */
    bool allowRawBlocks = true;

    /**
     * Worker threads for the two-phase parallel encode (per-chunk
     * histogram reduction, then per-block compression); 0 means
     * defaultThreadCount() (the CPS_THREADS policy). The output is
     * byte-identical at every thread count: blocks are independently
     * indexed, so only the serial stitching step orders bytes.
     */
    unsigned threads = 0;

    /**
     * Route the halfword histogram and the dictionary match loop
     * through the simd wrapper's vector paths (false pins the scalar
     * reference loops — the ablation baseline bench_ext_simperf
     * times). The compressed image is byte-identical either way, at
     * any thread count; like `threads`, this flag is therefore not
     * part of the artifact-cache key.
     */
    bool simd = true;
};

/** Bit-level composition of the compressed region (paper Table 4). */
struct Composition
{
    u64 indexTableBits = 0;
    u64 dictionaryBits = 0;
    u64 compressedTagBits = 0;
    u64 dictIndexBits = 0;
    u64 rawTagBits = 0;
    u64 rawBits = 0;
    u64 padBits = 0;
    /**
     * Check bytes attached by protectImage (zero on unprotected
     * images). Derived from the check arrays rather than serialized:
     * the v2 composition section is unchanged, and the honest ratio
     * cost of protection still lands in totalBits().
     */
    u64 protectionBits = 0;

    u64
    totalBits() const
    {
        return indexTableBits + dictionaryBits + compressedTagBits +
               dictIndexBits + rawTagBits + rawBits + padBits +
               protectionBits;
    }

    u64 totalBytes() const { return totalBits() / 8; }
};

/** Location and size of one compressed block. */
struct BlockExtent
{
    u32 byteOffset = 0; ///< into the compressed region
    u32 byteLen = 0;
    bool raw = false;   ///< stored as 64 native bytes
};

/** The full compressed form of a program's text. */
struct CompressedImage
{
    Addr textBase = 0;          ///< native base address of the text
    u32 origTextBytes = 0;      ///< unpadded native text size
    u32 paddedInsns = 0;        ///< instruction count, padded to a group
    std::vector<u8> bytes;      ///< the compressed code region
    std::vector<u32> indexTable; ///< one entry per compression group
    Dictionary highDict{Dictionary::Kind::High};
    Dictionary lowDict{Dictionary::Kind::Low};
    std::vector<BlockExtent> blocks; ///< per block, in group order
    Composition comp;

    /**
     * Soft-error protection attached by protectImage (None on images
     * straight out of the compressor). The check arrays model the spare
     * storage an ECC memory would dedicate to the compressed region;
     * their bytes are charged to comp.protectionBits but live beside
     * the stream, so the unprotected byte layout is untouched.
     */
    ProtectKind protectKind = ProtectKind::None;
    std::vector<u8> blockCheck;      ///< concatenated per-block checks
    std::vector<u32> blockCheckOff;  ///< numBlocks()+1 prefix offsets
    std::vector<u8> indexCheck;      ///< per-entry, indexCheckBytes each

    bool isProtected() const { return protectKind != ProtectKind::None; }

    u32 numGroups() const { return static_cast<u32>(indexTable.size()); }
    u32 numBlocks() const { return static_cast<u32>(blocks.size()); }

    /** Native instruction index of @p addr relative to the text base. */
    u32
    insnIndexOf(Addr addr) const
    {
        return (addr - textBase) >> 2;
    }

    /** Compression group covering native address @p addr. */
    u32 groupOf(Addr addr) const { return insnIndexOf(addr) / kGroupInsns; }

    /** Block-within-group (0/1) covering native address @p addr. */
    u32
    blockOf(Addr addr) const
    {
        return (insnIndexOf(addr) / kBlockInsns) % kBlocksPerGroup;
    }

    /** Flat block number covering native address @p addr. */
    u32
    flatBlockOf(Addr addr) const
    {
        return insnIndexOf(addr) / kBlockInsns;
    }

    /**
     * Compression ratio as the paper defines it (Eq. 1):
     * compressed size / original size, over the .text section, where the
     * compressed size includes index table and dictionaries.
     */
    double
    compressionRatio() const
    {
        return static_cast<double>(comp.totalBytes()) /
               static_cast<double>(origTextBytes);
    }
};

/**
 * Compresses the text segment of @p prog.
 *
 * The text is padded with NOPs up to a whole compression group; the
 * padding exists only inside the compressed image (the native program is
 * untouched) and is charged to the compressed size.
 */
CompressedImage compress(const Program &prog,
                         const CompressorConfig &cfg = CompressorConfig{});

/** Compresses a raw instruction-word vector (tests and tools). */
CompressedImage compressWords(const std::vector<u32> &words, Addr text_base,
                              const CompressorConfig &cfg =
                                  CompressorConfig{});

/**
 * Per-block check-array prefix offsets for @p blocks under @p kind:
 * blocks.size()+1 entries, entry i the byte offset of block i's check
 * bytes within the concatenated array (the last entry is its total
 * size).
 */
std::vector<u32> blockCheckOffsets(ProtectKind kind,
                                   const std::vector<BlockExtent> &blocks);

/**
 * Attaches (or with None, strips) per-block and per-index-entry
 * soft-error check bytes, recomputed from the image's current stream
 * and index table, and charges their storage to comp.protectionBits.
 * Idempotent; the compressed stream itself never changes.
 */
void protectImage(CompressedImage &img, ProtectKind kind);

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_COMPRESSOR_HH
