/**
 * @file
 * Tests for the related-work baseline compressors: Huffman coding,
 * CCRP byte-Huffman lines, and the Lefurgy'97 instruction dictionary,
 * plus the shared line-granular fetch timing path.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "compress/ccrp.hh"
#include "compress/dict32.hh"
#include "common/rng.hh"
#include "isa/isa.hh"
#include "progen/progen.hh"

namespace cps
{
namespace compress
{
namespace
{

// ------------------------------------------------------------- Huffman

std::array<u64, 256>
countsFor(const std::vector<u8> &bytes)
{
    std::array<u64, 256> counts{};
    for (u8 b : bytes)
        ++counts[b];
    return counts;
}

TEST(Huffman, RoundTripsSkewedData)
{
    Rng rng(1);
    std::vector<u8> data;
    for (int i = 0; i < 5000; ++i)
        data.push_back(static_cast<u8>(rng.skewedRange(0, 255)));
    HuffmanCode code = HuffmanCode::build(countsFor(data));
    BitWriter bw;
    for (u8 b : data)
        code.encode(bw, b);
    bw.alignByte();
    auto bytes = bw.take();
    BitReader br(bytes);
    for (u8 b : data)
        ASSERT_EQ(code.decode(br), b);
}

TEST(Huffman, FrequentSymbolsGetShortCodes)
{
    std::array<u64, 256> counts{};
    counts[0x00] = 100000;
    counts[0x01] = 10;
    HuffmanCode code = HuffmanCode::build(counts);
    EXPECT_LT(code.length(0x00), code.length(0x01));
    EXPECT_LE(code.length(0x00), 2u);
}

TEST(Huffman, AbsentSymbolsRemainEncodable)
{
    std::array<u64, 256> counts{};
    counts[0x41] = 1000;
    HuffmanCode code = HuffmanCode::build(counts);
    BitWriter bw;
    code.encode(bw, 0xff); // never counted
    bw.alignByte();
    auto bytes = bw.take();
    BitReader br(bytes);
    EXPECT_EQ(code.decode(br), 0xff);
}

TEST(Huffman, LengthsAreLimited)
{
    // A Fibonacci-ish count profile forces deep optimal trees; the
    // builder must cap lengths at kMaxLen.
    std::array<u64, 256> counts{};
    u64 a = 1, b = 1;
    for (int s = 0; s < 40; ++s) {
        counts[s] = a;
        u64 next = a + b;
        a = b;
        b = next;
    }
    HuffmanCode code = HuffmanCode::build(counts);
    for (int s = 0; s < 256; ++s) {
        EXPECT_GE(code.length(static_cast<u8>(s)), 1u);
        EXPECT_LE(code.length(static_cast<u8>(s)), HuffmanCode::kMaxLen);
    }
    // Kraft inequality must hold for decodability.
    double kraft = 0;
    for (int s = 0; s < 256; ++s)
        kraft += std::pow(2.0, -static_cast<double>(
                                    code.length(static_cast<u8>(s))));
    EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, UniformDataGetsEightBitCodes)
{
    std::array<u64, 256> counts{};
    counts.fill(100);
    HuffmanCode code = HuffmanCode::build(counts);
    for (int s = 0; s < 256; ++s)
        EXPECT_EQ(code.length(static_cast<u8>(s)), 8u);
}

// ---------------------------------------------------------------- CCRP

std::vector<u32>
benchWords(const char *name = "pegwit")
{
    Program prog = generateProgram(findProfile(name));
    std::vector<u32> words;
    for (size_t i = 0; i < prog.textWords(); ++i)
        words.push_back(prog.word(i));
    return words;
}

TEST(Ccrp, RoundTripsBenchmarkText)
{
    auto words = benchWords();
    CcrpImage img = CcrpImage::compress(words, kTextBase);
    EXPECT_EQ(img.decompressAll(), words);
}

TEST(Ccrp, RatioInPublishedBallpark)
{
    // The paper quotes ~73% overall for CCRP on MIPS.
    auto words = benchWords();
    CcrpImage img = CcrpImage::compress(words, kTextBase);
    EXPECT_GT(img.compressionRatio(), 0.50);
    EXPECT_LT(img.compressionRatio(), 0.90);
}

TEST(Ccrp, LinesAreIndependentlyAddressable)
{
    auto words = benchWords();
    CcrpImage img = CcrpImage::compress(words, kTextBase);
    u32 total = 0;
    for (u32 l = 0; l < img.numLines(); ++l) {
        LineExtent e = img.extent(l);
        EXPECT_EQ(e.byteOffset, total);
        total += e.byteLen;
        auto ends = img.insnEndBytes(l);
        u32 prev = e.byteOffset;
        for (u32 end : ends) {
            EXPECT_GE(end, prev);
            prev = end;
        }
        EXPECT_LE(prev, e.byteOffset + e.byteLen);
    }
}

TEST(Ccrp, SlowSerialDecode)
{
    CcrpImage img = CcrpImage::compress(benchWords(), kTextBase);
    EXPECT_EQ(img.decodeCyclesPerInsn(), 4u); // byte-serial, 4B/insn
    EXPECT_STREQ(img.name(), "ccrp");
}

// -------------------------------------------------------------- dict32

TEST(Dict32, RoundTripsBenchmarkText)
{
    auto words = benchWords();
    Dict32Image img = Dict32Image::compress(words, kTextBase);
    EXPECT_EQ(img.decompressAll(), words);
}

TEST(Dict32, RoundTripsRandomWords)
{
    Rng rng(3);
    std::vector<u32> words;
    for (int i = 0; i < 1024; ++i)
        words.push_back(static_cast<u32>(rng.next()));
    Dict32Image img = Dict32Image::compress(words, kTextBase);
    EXPECT_EQ(img.decompressAll(), words);
}

TEST(Dict32, NeedsThousandsOfEntries)
{
    // The paper's point about Lefurgy'97: similar ratio to CodePack but
    // a much larger dictionary (thousands of 32-bit entries).
    auto words = benchWords("go");
    Dict32Image img = Dict32Image::compress(words, kTextBase);
    EXPECT_GT(img.dictionaryEntries(), 1000u);
}

TEST(Dict32, RatioComparableToCodePack)
{
    auto words = benchWords("go");
    Dict32Image img = Dict32Image::compress(words, kTextBase);
    EXPECT_GT(img.compressionRatio(), 0.40);
    EXPECT_LT(img.compressionRatio(), 0.85);
}

TEST(Dict32, MostFrequentInstructionIsOneByte)
{
    std::vector<u32> words(512, 0x27bdffe0); // one dominant instruction
    words.push_back(0x12345678);
    Dict32Image img = Dict32Image::compress(words, kTextBase);
    // 512 bytes of codewords for 512 repeats => well under 25%.
    EXPECT_LT(img.compressionRatio(), 0.40);
}

TEST(Dict32, ExtentsCoverTheStream)
{
    auto words = benchWords();
    Dict32Image img = Dict32Image::compress(words, kTextBase);
    u32 total = 0;
    for (u32 l = 0; l < img.numLines(); ++l) {
        LineExtent e = img.extent(l);
        EXPECT_EQ(e.byteOffset, total);
        total += e.byteLen;
    }
    EXPECT_EQ(total, img.streamBits() / 8);
}

// -------------------------------------------- line-compressed fetching

TEST(LineFetch, ServesMissesThroughTheCodec)
{
    auto words = benchWords();
    Dict32Image img = Dict32Image::compress(words, kTextBase);
    MainMemory mem;
    StatSet stats;
    LineCompressedFetchPath fetch(CacheConfig{1024, 32, 2}, img, mem,
                                  stats);
    Cycle ready = fetch.fetchWord(kTextBase, 0);
    EXPECT_GT(ready, 10u); // LAT fetch + line fetch + decode
    EXPECT_EQ(stats.value("icache.misses"), 1u);
    EXPECT_EQ(stats.value("linecodec.lat_misses"), 1u);
    // Sequential next line: LAT entry is in the cached LAT line.
    Cycle ready2 = fetch.fetchWord(kTextBase + 32, 1000);
    EXPECT_GT(ready2, 1000u);
    EXPECT_EQ(stats.value("linecodec.lat_misses"), 1u);
}

TEST(LineFetch, CcrpDecodesSlowerThanDict32)
{
    auto words = benchWords();
    CcrpImage ccrp = CcrpImage::compress(words, kTextBase);
    Dict32Image d32 = Dict32Image::compress(words, kTextBase);

    MainMemory mem_a, mem_b;
    StatSet stats_a, stats_b;
    LineCompressedFetchPath fa(CacheConfig{1024, 32, 2}, ccrp, mem_a,
                               stats_a);
    LineCompressedFetchPath fb(CacheConfig{1024, 32, 2}, d32, mem_b,
                               stats_b);
    // Same miss; CCRP's 4-cycle-per-instruction serial decode must
    // deliver the line's last word later.
    fa.fetchWord(kTextBase, 0);
    fb.fetchWord(kTextBase, 0);
    Cycle last_a = fa.fetchWord(kTextBase + 28, 0);
    Cycle last_b = fb.fetchWord(kTextBase + 28, 0);
    EXPECT_GT(last_a, last_b);
}

TEST(LineFetch, ResetClearsLatCache)
{
    auto words = benchWords();
    Dict32Image img = Dict32Image::compress(words, kTextBase);
    MainMemory mem;
    StatSet stats;
    LineCompressedFetchPath fetch(CacheConfig{1024, 32, 2}, img, mem,
                                  stats);
    fetch.fetchWord(kTextBase, 0);
    fetch.reset();
    fetch.fetchWord(kTextBase, 1000);
    EXPECT_EQ(stats.value("linecodec.lat_misses"), 2u);
}

} // namespace
} // namespace compress
} // namespace cps
