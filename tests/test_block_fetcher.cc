/**
 * @file
 * BlockFetcher tests: byte-identity of every cached/speculated block
 * against the checked bit-serial reference across all suite profiles
 * and worker counts, LRU aliasing/eviction edge cases, counter
 * conservation, sync-vs-async equivalence, and the environment knobs.
 * The async cases double as the TSan workload for the span claim/steal
 * protocol.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "codepack/block_fetcher.hh"
#include "codepack/resilience.hh"
#include "common/logging.hh"
#include "harness/suite.hh"

namespace cps
{
namespace codepack
{
namespace
{

/** Scoped setenv/unsetenv so knob tests cannot leak into each other. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            hadOld_ = true;
            old_ = old;
        }
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (hadOld_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool hadOld_ = false;
    std::string old_;
};

void
expectBlockEq(const DecodedBlock &got, const DecodedBlock &want,
              u32 flat)
{
    ASSERT_EQ(got.words, want.words) << "flat block " << flat;
    ASSERT_EQ(got.endBit, want.endBit) << "flat block " << flat;
    ASSERT_EQ(got.byteOffset, want.byteOffset) << "flat block " << flat;
    ASSERT_EQ(got.byteLen, want.byteLen) << "flat block " << flat;
}

/**
 * Sweeps @p fetcher over every block of @p img — forward, then a
 * strided revisit — checking each returned block against the checked
 * bit-serial reference decoder.
 */
void
checkByteIdentity(const CompressedImage &img, BlockFetcher &fetcher)
{
    Decompressor ref(img, DecodeKernel::Checked);
    u32 n = img.numBlocks();
    for (u32 f = 0; f < n; ++f) {
        Result<DecodedBlock> want =
            ref.tryDecompressBlock(f / kBlocksPerGroup,
                                   f % kBlocksPerGroup);
        ASSERT_TRUE(want.ok());
        expectBlockEq(fetcher.getFlat(f), *want, f);
    }
    // A non-unit revisit exercises the strided prediction path and
    // claims of still-resident entries.
    for (u32 f = 0; f + 3 < n; f += 3) {
        Result<DecodedBlock> want =
            ref.tryDecompressBlock(f / kBlocksPerGroup,
                                   f % kBlocksPerGroup);
        ASSERT_TRUE(want.ok());
        expectBlockEq(fetcher.getFlat(f), *want, f);
    }
}

TEST(BlockFetcher, ByteIdenticalToReferenceOnAllProfiles)
{
    for (const std::string &name : Suite::instance().names()) {
        SCOPED_TRACE(name);
        const BenchProgram &bench = Suite::instance().get(name);
        Decompressor d(bench.image);
        BlockFetcher::Options opts; // default: inline speculation
        BlockFetcher fetcher(d, opts);
        checkByteIdentity(bench.image, fetcher);
        EXPECT_GT(fetcher.prefetchHits(), 0u);
    }
}

TEST(BlockFetcher, ByteIdenticalAsyncAcrossWorkerCounts)
{
    const BenchProgram &bench = Suite::instance().get("go");
    Decompressor d(bench.image);
    for (const char *threads : {"1", "2", "8"}) {
        SCOPED_TRACE(threads);
        EnvGuard env("CPS_THREADS", threads);
        BlockFetcher::Options opts;
        opts.async = true;
        BlockFetcher fetcher(d, opts); // pool sized on first issue
        checkByteIdentity(bench.image, fetcher);
        EXPECT_GT(fetcher.prefetchHits(), 0u);
    }
}

TEST(BlockFetcher, GroupBlockKeyMatchesFlatKey)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    Decompressor d(bench.image);
    BlockFetcher fetcher(d);
    for (u32 g = 0; g < std::min<u32>(bench.image.numGroups(), 64);
         ++g) {
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            DecodedBlock got = fetcher.get(g, b);
            expectBlockEq(fetcher.getFlat(g * kBlocksPerGroup + b), got,
                          g * kBlocksPerGroup + b);
        }
    }
}

TEST(BlockFetcher, TinyCacheEvictsLeastRecentlyUsed)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    Decompressor d(bench.image);
    BlockFetcher::Options opts;
    opts.slots = 2;
    opts.prefetch = false;
    BlockFetcher f(d, opts);
    ASSERT_GE(bench.image.numBlocks(), 3u);

    f.getFlat(0); // fill {0}
    f.getFlat(1); // fill {0,1}
    f.getFlat(0); // hit, 0 becomes MRU
    f.getFlat(2); // fill, evicts LRU=1 -> {0,2}
    f.getFlat(0); // hit
    f.getFlat(1); // fill again (was evicted) -> evicts 2
    f.getFlat(2); // fill again
    EXPECT_EQ(f.fills(), 5u);
    EXPECT_EQ(f.hits(), 2u);
    EXPECT_EQ(f.prefetchIssued(), 0u);
}

TEST(BlockFetcher, SingleSlotCacheStaysCorrect)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    Decompressor d(bench.image);
    Decompressor ref(bench.image, DecodeKernel::Checked);
    BlockFetcher::Options opts;
    opts.slots = 1;
    BlockFetcher f(d, opts); // prefetch on, but depth clamps to 0
    u32 n = std::min<u32>(bench.image.numBlocks(), 64);
    for (int pass = 0; pass < 2; ++pass) {
        for (u32 b = 0; b < n; ++b) {
            Result<DecodedBlock> want = ref.tryDecompressBlock(
                b / kBlocksPerGroup, b % kBlocksPerGroup);
            ASSERT_TRUE(want.ok());
            expectBlockEq(f.getFlat(b), *want, b);
        }
    }
    EXPECT_EQ(f.prefetchIssued(), 0u);
    EXPECT_EQ(f.fills(), static_cast<u64>(2 * n));
}

TEST(BlockFetcher, CountersConserveAccesses)
{
    const BenchProgram &bench = Suite::instance().get("go");
    Decompressor d(bench.image);
    u32 n = bench.image.numBlocks();
    for (bool async : {false, true}) {
        SCOPED_TRACE(async ? "async" : "sync");
        BlockFetcher::Options opts;
        opts.async = async;
        BlockFetcher f(d, opts);
        u64 accesses = 0;
        // Sequential, strided, and pseudo-random phases.
        for (u32 b = 0; b < n; ++b, ++accesses)
            f.getFlat(b);
        for (u32 b = 0; b + 7 < n; b += 7, ++accesses)
            f.getFlat(b);
        for (u32 i = 0; i < 1000; ++i, ++accesses)
            f.getFlat((i * 2654435761u) % n);
        EXPECT_EQ(f.hits() + f.fills() + f.prefetchHits(), accesses);
        EXPECT_LE(f.prefetchHits(), f.prefetchIssued());
    }
}

TEST(BlockFetcher, SyncAndAsyncProduceIdenticalCounters)
{
    const BenchProgram &bench = Suite::instance().get("cc1");
    Decompressor d(bench.image);
    u32 n = bench.image.numBlocks();
    auto walk = [n](BlockFetcher &f) {
        for (u32 b = 0; b < n; ++b)
            f.getFlat(b);
        for (u32 b = n; b-- > 0;)
            f.getFlat(b);
        for (u32 i = 0; i < 500; ++i)
            f.getFlat((i * 40503u) % n);
    };
    BlockFetcher::Options sync_opts;
    sync_opts.async = false;
    BlockFetcher sync_f(d, sync_opts);
    walk(sync_f);
    BlockFetcher::Options async_opts;
    async_opts.async = true;
    BlockFetcher async_f(d, async_opts);
    walk(async_f);
    EXPECT_EQ(sync_f.hits(), async_f.hits());
    EXPECT_EQ(sync_f.fills(), async_f.fills());
    EXPECT_EQ(sync_f.prefetchIssued(), async_f.prefetchIssued());
    EXPECT_EQ(sync_f.prefetchHits(), async_f.prefetchHits());
}

TEST(BlockFetcher, SlotsEnvKnobSetsCapacity)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    Decompressor d(bench.image);
    {
        EnvGuard env("CPS_BLOCK_CACHE_SLOTS", "8");
        EXPECT_EQ(BlockFetcher::Options::fromEnv().slots, 8u);
        BlockFetcher f(d);
        EXPECT_EQ(f.slots(), 8u);
    }
    {
        EnvGuard env("CPS_BLOCK_CACHE_SLOTS", nullptr);
        EXPECT_EQ(BlockFetcher::Options::fromEnv().slots, 64u);
    }
}

TEST(BlockFetcher, PrefetchEnvKnobSelectsMode)
{
    {
        EnvGuard env("CPS_BLOCK_PREFETCH", "off");
        BlockFetcher::Options o = BlockFetcher::Options::fromEnv();
        EXPECT_FALSE(o.prefetch);
    }
    {
        EnvGuard env("CPS_BLOCK_PREFETCH", "async");
        BlockFetcher::Options o = BlockFetcher::Options::fromEnv();
        EXPECT_TRUE(o.prefetch);
        EXPECT_TRUE(o.async);
    }
    {
        EnvGuard env("CPS_BLOCK_PREFETCH", nullptr);
        BlockFetcher::Options o = BlockFetcher::Options::fromEnv();
        EXPECT_TRUE(o.prefetch);
        EXPECT_FALSE(o.async);
    }
}

TEST(BlockFetcher, ConcurrentFetchersShareOneDecompressor)
{
    // Several async fetchers (each single-consumer, as required) over
    // the same decompressor, running concurrently: exercises parallel
    // decompressBlocks plus the claim/steal protocol under TSan.
    const BenchProgram &bench = Suite::instance().get("go");
    Decompressor d(bench.image);
    Decompressor ref(bench.image, DecodeKernel::Checked);
    u32 n = bench.image.numBlocks();
    std::vector<std::thread> threads;
    std::vector<int> failures(4, 0);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            BlockFetcher::Options opts;
            opts.async = true;
            BlockFetcher f(d, opts);
            for (u32 b = 0; b < n; ++b) {
                u32 flat = (b + static_cast<u32>(t) * 17) % n;
                const DecodedBlock &got = f.getFlat(flat);
                Result<DecodedBlock> want = ref.tryDecompressBlock(
                    flat / kBlocksPerGroup, flat % kBlocksPerGroup);
                if (!want.ok() || got.words != (*want).words)
                    ++failures[t];
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(failures[t], 0) << "thread " << t;
}

/** A protected working copy of @p name's image plus its domain. */
struct DomainRig
{
    CompressedImage img;
    std::unique_ptr<SoftErrorDomain> domain;
    std::unique_ptr<Decompressor> decomp;

    DomainRig(const std::string &name, ProtectKind kind,
              unsigned retries = 2)
        : img(Suite::instance().get(name).image)
    {
        protectImage(img, kind);
        domain = std::make_unique<SoftErrorDomain>(
            img, /*seed=*/7, /*flip_rate_ppm=*/0, retries);
        decomp = std::make_unique<Decompressor>(img);
    }
};

/** Flips @p bit of flat block @p flat in the working image. */
void
flipWorkingBit(CompressedImage &img, u32 flat, u32 bit)
{
    const BlockExtent &b = img.blocks[flat];
    ASSERT_LT(bit, b.byteLen * 8u);
    img.bytes[b.byteOffset + bit / 8] ^= static_cast<u8>(1u << (bit % 8));
}

/** First flat block with at least @p bytes of stream data. */
u32
firstBlockWithBytes(const CompressedImage &img, u32 bytes)
{
    for (u32 f = 0; f < img.numBlocks(); ++f)
        if (img.blocks[f].byteLen >= bytes)
            return f;
    ADD_FAILURE() << "no block with " << bytes << " bytes";
    return 0;
}

TEST(BlockFetcherDomain, SecDedZeroFlipsIsByteIdentical)
{
    // Protection on, no faults: the fetch path must decode every block
    // bit-identically to the unprotected reference.
    for (bool async : {false, true}) {
        SCOPED_TRACE(async ? "async" : "sync");
        DomainRig rig("pegwit", ProtectKind::SecDed);
        BlockFetcher::Options opts;
        opts.async = async;
        BlockFetcher f(*rig.decomp, opts, nullptr, rig.domain.get());
        checkByteIdentity(rig.img, f);
        EXPECT_EQ(f.poisons(), 0u);
        EXPECT_EQ(rig.domain->stats().unrecoverable, 0u);
        EXPECT_EQ(f.lastCheck(), FetchCheck::Clean);
    }
}

TEST(BlockFetcherDomain, CorrectsSingleFlipAndPoisonsStaleCopy)
{
    for (bool async : {false, true}) {
        SCOPED_TRACE(async ? "async" : "sync");
        DomainRig rig("pegwit", ProtectKind::SecDed);
        Decompressor ref(rig.img, DecodeKernel::Checked);
        BlockFetcher::Options opts;
        opts.async = async;
        BlockFetcher f(*rig.decomp, opts, nullptr, rig.domain.get());

        u32 flat = firstBlockWithBytes(rig.img, 2);
        Result<DecodedBlock> want = ref.tryDecompressBlock(
            flat / kBlocksPerGroup, flat % kBlocksPerGroup);
        ASSERT_TRUE(want.ok());

        expectBlockEq(f.getFlat(flat), *want, flat); // now cached

        f.quiesce(); // in-flight speculation reads the image bytes
        flipWorkingBit(rig.img, flat, 5);
        rig.domain->noteCorruption();

        // The verify-first fetch repairs memory in place and discards
        // the (possibly stale) cached copy rather than trusting it.
        Result<const DecodedBlock *> r = f.tryGetFlat(flat);
        ASSERT_TRUE(r.ok()) << r.error().describe();
        expectBlockEq(**r, *want, flat);
        EXPECT_EQ(f.lastCheck(), FetchCheck::Corrected);
        EXPECT_GE(f.poisons(), 1u);
        EXPECT_EQ(rig.domain->stats().corrected, 1u);
        EXPECT_EQ(rig.domain->stats().unrecoverable, 0u);

        // Memory was repaired: the next fetch verifies clean.
        expectBlockEq(f.getFlat(flat), *want, flat);
        EXPECT_EQ(f.lastCheck(), FetchCheck::Clean);
    }
}

TEST(BlockFetcherDomain, RefetchRecoversWhatCrcOnlyDetects)
{
    DomainRig rig("pegwit", ProtectKind::Crc16);
    Decompressor ref(rig.img, DecodeKernel::Checked);
    BlockFetcher f(*rig.decomp, BlockFetcher::Options{}, nullptr,
                   rig.domain.get());
    u32 flat = firstBlockWithBytes(rig.img, 2);
    Result<DecodedBlock> want = ref.tryDecompressBlock(
        flat / kBlocksPerGroup, flat % kBlocksPerGroup);
    ASSERT_TRUE(want.ok());

    expectBlockEq(f.getFlat(flat), *want, flat);
    f.quiesce();
    flipWorkingBit(rig.img, flat, 9);
    rig.domain->noteCorruption();

    Result<const DecodedBlock *> r = f.tryGetFlat(flat);
    ASSERT_TRUE(r.ok()) << r.error().describe();
    expectBlockEq(**r, *want, flat);
    EXPECT_EQ(f.lastCheck(), FetchCheck::Refetched);
    EXPECT_GE(rig.domain->stats().refetches, 1u);
    EXPECT_EQ(rig.domain->stats().unrecoverable, 0u);
}

TEST(BlockFetcherDomain, UnrecoverableSurfacesStructuredError)
{
    for (bool async : {false, true}) {
        SCOPED_TRACE(async ? "async" : "sync");
        DomainRig rig("pegwit", ProtectKind::Crc8);
        BlockFetcher::Options opts;
        opts.async = async;
        BlockFetcher f(*rig.decomp, opts, nullptr, rig.domain.get());
        u32 flat = firstBlockWithBytes(rig.img, 2);

        (void)f.getFlat(flat);
        f.quiesce();
        // Damage the working copy AND the refetch source at the same
        // bit: detection persists through the whole retry budget.
        flipWorkingBit(rig.img, flat, 3);
        rig.domain->corruptBacking(flat, 3);
        rig.domain->noteCorruption();

        Result<const DecodedBlock *> r = f.tryGetFlat(flat);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error().status, DecodeStatus::SoftError);
        EXPECT_NE(r.error().message.find(
                      strfmt("group %u block %u", flat / kBlocksPerGroup,
                             flat % kBlocksPerGroup)),
                  std::string::npos)
            << r.error().message;
        EXPECT_EQ(f.lastCheck(), FetchCheck::Unrecoverable);
        EXPECT_GE(f.poisons(), 1u);
        EXPECT_EQ(rig.domain->stats().unrecoverable, 1u);

        // Other blocks keep fetching normally after the failure.
        u32 other = (flat + 1) % rig.img.numBlocks();
        if (other != flat) {
            EXPECT_TRUE(f.tryGetFlat(other).ok());
        }
    }
}

TEST(BlockFetcherDomain, SelfInjectionSoakStaysByteIdentical)
{
    // CPS_FLIP_RATE's mechanism at its most hostile setting: a flip
    // injected on (up to) every fetch, SEC-DED correcting or the
    // refetch path recovering each one — decode output never changes.
    DomainRig rig("pegwit", ProtectKind::SecDed);
    SoftErrorDomain soak(rig.img, /*seed=*/41,
                         /*flip_rate_ppm=*/1000000, 2);
    BlockFetcher f(*rig.decomp, BlockFetcher::Options{}, nullptr, &soak);
    for (unsigned sweep = 0; sweep < 3; ++sweep) {
        soak.noteCorruption(); // re-verify everything each sweep
        checkByteIdentity(rig.img, f);
    }
    EXPECT_GT(soak.stats().flipsInjected, 0u);
    EXPECT_GT(soak.stats().corrected, 0u);
    EXPECT_EQ(soak.stats().unrecoverable, 0u);
}

TEST(BlockFetcherDomain, CountersConserveAccessesThroughPoisons)
{
    for (bool async : {false, true}) {
        SCOPED_TRACE(async ? "async" : "sync");
        DomainRig rig("go", ProtectKind::SecDed);
        BlockFetcher::Options opts;
        opts.async = async;
        BlockFetcher f(*rig.decomp, opts, nullptr, rig.domain.get());
        u32 n = rig.img.numBlocks();
        u64 accesses = 0;
        for (u32 b = 0; b < n; ++b, ++accesses)
            ASSERT_TRUE(f.tryGetFlat(b).ok());
        // Corrupt a few resident blocks, then sweep again: every
        // poisoned re-decode must be accounted as a fill.
        f.quiesce();
        for (u32 b = 0; b < n; b += n / 7 + 1)
            if (rig.img.blocks[b].byteLen > 0)
                flipWorkingBit(rig.img, b, 1);
        rig.domain->noteCorruption();
        for (u32 b = 0; b < n; ++b, ++accesses)
            ASSERT_TRUE(f.tryGetFlat(b).ok());
        EXPECT_EQ(f.hits() + f.fills() + f.prefetchHits(), accesses);
        EXPECT_GT(f.poisons(), 0u);
        EXPECT_GT(rig.domain->stats().corrected, 0u);
        // Verify-first repaired memory in place, so the whole image
        // still decodes byte-identically.
        checkByteIdentity(rig.img, f);
    }
}

} // namespace
} // namespace codepack
} // namespace cps
