/**
 * @file
 * cpserved: the campaign daemon.
 *
 * Serves experiment-matrix requests over a Unix-domain socket (see
 * service/server.hh for the full robustness story). Configuration is
 * entirely environment-driven:
 *
 *   CPS_SERVE_SOCKET       socket path        (default cpserved.sock)
 *   CPS_SERVE_WORKERS      worker threads     (default 2)
 *   CPS_SERVE_QUEUE_MAX    admission bound    (default 256 cells)
 *   CPS_SERVE_DEADLINE_MS  request deadline   (default/cap 120000)
 *
 * plus the usual harness knobs (CPS_ISOLATE, CPS_RESUME, CPS_CACHE_DIR,
 * CPS_CELL_TIMEOUT_MS, ...) which govern how cells actually execute.
 *
 * Signals: the first SIGTERM/SIGINT begins a graceful drain (finish
 * admitted work, refuse new work, exit); a second one cancels queued
 * work and exits as soon as running cells finish. kill -9 is also fine:
 * the daemon is crash-only, and a restart resumes from the journals.
 */

#include <csignal>
#include <cstdio>

#include "service/server.hh"

using namespace cps;
using namespace cps::service;

namespace
{

CampaignServer *gServer = nullptr;
volatile sig_atomic_t gSignals = 0;

void
onTerm(int)
{
    if (!gServer)
        return;
    if (++gSignals == 1)
        gServer->requestDrain();
    else
        gServer->requestStop();
}

} // namespace

int
main()
{
    ServiceConfig cfg = ServiceConfig::fromEnv();
    CampaignServer server(cfg);
    gServer = &server;

    struct sigaction sa = {};
    sa.sa_handler = onTerm;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "cpserved: %s\n", err.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "cpserved: listening on %s (workers=%u queueMax=%u "
                 "deadlineMs=%llu isolate=%d resume=%d)\n",
                 cfg.socketPath.c_str(), cfg.workers, cfg.queueMax,
                 (unsigned long long)cfg.deadlineMs,
                 cfg.runner.isolate ? 1 : 0, cfg.resume ? 1 : 0);
    server.serve();

    const ServiceStats &st = server.stats();
    std::fprintf(stderr,
                 "cpserved: drained. requests=%llu (rejected=%llu) "
                 "cells: executed=%llu shared=%llu memo=%llu "
                 "journal=%llu failed=%llu cancelled=%llu\n",
                 (unsigned long long)st.requestsAdmitted,
                 (unsigned long long)st.requestsRejected,
                 (unsigned long long)st.cellsExecuted,
                 (unsigned long long)st.cellsShared,
                 (unsigned long long)st.cellsFromMemo,
                 (unsigned long long)st.cellsFromJournal,
                 (unsigned long long)st.cellsFailed,
                 (unsigned long long)st.cellsCancelled);
    return 0;
}
