/**
 * @file
 * Blocking client of the campaign daemon.
 *
 * Wraps the framed protocol (service/protocol) in a call-per-request
 * interface: connect, send one MatrixRequest, and collect the streamed
 * CellResult frames until the daemon closes the request (MatrixEnd),
 * rejects it (Overloaded), reports it malformed (Error), or the stream
 * itself fails. Every failure mode — daemon never started, daemon
 * killed mid-stream, torn frames, timeout — comes back as data on the
 * MatrixReply, never as an exception or a signal.
 */

#ifndef CPS_SERVICE_CLIENT_HH
#define CPS_SERVICE_CLIENT_HH

#include <string>
#include <vector>

#include "protocol.hh"

namespace cps
{
namespace service
{

/** Everything one request produced, in arrival order. */
struct MatrixReply
{
    std::vector<CellResultMsg> cells; ///< streamed results, as received
    bool ended = false;               ///< MatrixEnd arrived
    MatrixEndMsg end;
    bool overloaded = false; ///< admission-control rejection
    OverloadedMsg overload;
    std::string error; ///< non-empty on protocol/stream failure

    /** The request ran to completion and every cell succeeded. */
    bool
    allOk() const
    {
        return ended && error.empty() &&
               end.status == MatrixEndStatus::Ok && end.failedCells == 0 &&
               end.cancelledCells == 0;
    }
};

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();
    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Connects (retrying while the daemon binds its socket). */
    bool connect(const std::string &socket_path, long timeout_ms);
    void close();
    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Ships one request; collect() gathers the replies. */
    bool sendRequest(const MatrixRequestMsg &msg);

    /**
     * Reads reply frames for @p request_id until the request closes.
     * @p timeout_ms bounds each frame gap, not the whole request — a
     * daemon chewing on a long cell keeps the stream alive by simply
     * finishing cells as they come.
     */
    MatrixReply collect(u32 request_id, long timeout_ms);

    /** sendRequest + collect. */
    MatrixReply runMatrix(const MatrixRequestMsg &msg, long timeout_ms);

    /** Health probe: Ping -> Pong round trip. */
    bool ping(long timeout_ms);

    /** Introspection: the daemon's key=value stats text ("" on error). */
    std::string stats(long timeout_ms);

  private:
    int fd_ = -1;
};

} // namespace service
} // namespace cps

#endif // CPS_SERVICE_CLIENT_HH
