/**
 * @file
 * Extension experiment: seed robustness. Our benchmarks are synthetic;
 * a fair question is whether the headline comparisons depend on the
 * particular random program the generator emitted. This bench re-rolls
 * the 'go' profile under several seeds and reports the spread of the
 * compression ratio, I-miss rate, and the three headline speedups.
 */

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <vector>

#include "common/table.hh"
#include "common/threadpool.hh"
#include "harness/engine.hh"

using namespace cps;

namespace
{

BenchProgram
reroll(u64 seed)
{
    BenchmarkProfile profile = findProfile("go");
    profile.seed = seed;
    BenchProgram bench;
    bench.profile = nullptr;
    bench.program = generateProgram(profile);
    bench.image = codepack::compress(bench.program);
    return bench;
}

std::string
rangeOf(std::vector<double> v, bool pct)
{
    auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    if (pct)
        return strfmt("%.1f%% .. %.1f%%", *lo * 100, *hi * 100);
    return strfmt("%.3f .. %.3f", *lo, *hi);
}

} // namespace

int
main()
{
    u64 insns = Suite::runInsns() / 2; // 5 seeds: keep the total modest
    const u64 seeds[] = {0x60, 0xbeef, 0x1234, 0xabcd, 0x42424242};
    const size_t nseeds = std::size(seeds);

    // Program generation is independent per seed; build all five in
    // parallel before the run matrix (which wants stable pointers).
    std::vector<BenchProgram> benches(nseeds);
    {
        ThreadPool pool;
        pool.parallelFor(nseeds,
                         [&](size_t i) { benches[i] = reroll(seeds[i]); });
    }

    harness::Matrix m;
    for (const BenchProgram &bench : benches) {
        m.add(bench, baseline4Issue(), insns);
        m.add(bench, baseline4Issue().withCodeModel(CodeModel::CodePack),
              insns);
        m.add(bench,
              baseline4Issue().withCodeModel(CodeModel::CodePackOptimized),
              insns);
    }
    m.run();

    std::vector<double> ratio, miss, cp, opt;
    for (size_t i = 0; i < nseeds; ++i) {
        harness::CellOutcome cn = m.nextCell();
        harness::CellOutcome cc = m.nextCell();
        harness::CellOutcome co = m.nextCell();
        // A failed seed can't contribute to a range; exitSummary()
        // turns the omission into a diagnosable nonzero exit below.
        if (!cn.status.ok() || !cc.status.ok() || !co.status.ok())
            continue;
        ratio.push_back(benches[i].image.compressionRatio());
        miss.push_back(cn.outcome.icacheMissRate);
        cp.push_back(speedup(cn.outcome, cc.outcome));
        opt.push_back(speedup(cn.outcome, co.outcome));
    }

    auto range = [&](const std::vector<double> &v, bool pct) {
        return v.empty() ? std::string("FAILED(no surviving seeds)")
                         : rangeOf(v, pct);
    };
    TextTable t;
    t.setTitle("Extension: seed robustness ('go' profile, 5 seeds, "
               "4-issue)");
    t.addHeader({"Metric", "Range across seeds"});
    t.addRow({"compression ratio", range(ratio, true)});
    t.addRow({"I-miss rate", range(miss, true)});
    t.addRow({"CodePack speedup", range(cp, false)});
    t.addRow({"Optimized speedup", range(opt, false)});
    t.print();

    if (m.failedCount() != 0)
        std::printf("\n%u cell(s) failed; ranges cover %zu of %zu "
                    "seeds.\n",
                    m.failedCount(), ratio.size(), nseeds);
    else
        std::printf("\nThe qualitative conclusions (baseline <= 1.0 < "
                    "optimized) hold for every seed.\n");
    return m.exitSummary();
}
