#include "suite.hh"

#include <cstdlib>

#include "asmkit/objfile.hh"
#include "chunked.hh"
#include "codepack/imagefile.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"

namespace cps
{

Suite::Suite()
{
    for (const BenchmarkProfile &p : standardProfiles()) {
        names_.push_back(p.name);
        slots_.try_emplace(p.name);
    }
}

Suite &
Suite::instance()
{
    static Suite suite;
    return suite;
}

std::string
benchProgramKey(const BenchmarkProfile &p)
{
    // Every profile field, in declaration order, plus a generator/
    // object-format version tag: regenerating after any knob or
    // codegen change misses by construction.
    return strfmt(
        "obj1;gen1;name=%s;funcs=%u;hot=%u;blocks=%u;chunk=%u;trips=%u;"
        "calls=%u;helpers=%u;helperPct=%u;subs=%u;subInsns=%u;"
        "subPct=%u;fpPct=%u;oddPct=%u;skipPct=%u;arrays=%u;"
        "arrayBytes=%u;seed=%llu",
        p.name.c_str(), p.numFuncs, p.hotFuncs, p.blocksPerFunc,
        p.chunkInsns, p.innerTrips, p.callsPerIter, p.numHelpers,
        p.helperCallPercent, p.numSubs, p.subInsns, p.subCallPercent,
        p.fpPercent, p.oddConstPercent, p.skipPercent, p.dataArrays,
        p.dataArrayBytes, static_cast<unsigned long long>(p.seed));
}

std::string
benchImageKey(const BenchmarkProfile &p,
              const codepack::CompressorConfig &cfg)
{
    // cpi2 = the .cpi container version; enc1 = the encoder revision
    // (dictionaries + block format). Thread count is deliberately NOT
    // part of the key: the parallel encoder is byte-identical to the
    // serial one.
    return strfmt("cpi2;enc1;compressor=codepack;raw=%d;",
                  cfg.allowRawBlocks ? 1 : 0) +
           benchProgramKey(p);
}

std::string
benchTraceKey(const BenchmarkProfile &p, u64 trace_cap)
{
    // trc1 = trace container version; exe1 = functional-core revision.
    return strfmt("trc1;exe1;cap=%llu;",
                  static_cast<unsigned long long>(trace_cap)) +
           benchProgramKey(p);
}

std::unique_ptr<BenchProgram>
buildBenchProgram(const std::string &name, const ArtifactCache &cache,
                  u64 trace_cap)
{
    if (trace_cap == 0)
        trace_cap = Suite::traceInsns();

    auto bench = std::make_unique<BenchProgram>();
    bench->profile = &findProfile(name);

    // Program: the envelope CRC is the only integrity layer object
    // files need (decodeProgram rejects structural damage).
    const std::string prog_key = benchProgramKey(*bench->profile);
    bool have_prog = false;
    if (auto bytes = cache.load(prog_key)) {
        if (auto prog = decodeProgram(*bytes)) {
            bench->program = std::move(*prog);
            have_prog = true;
        }
    }
    if (!have_prog) {
        bench->program = generateProgram(*bench->profile);
        cache.store(prog_key, encodeProgram(bench->program));
    }

    // Compressed image: .cpi v2 carries per-section CRCs, so a cached
    // image is verified twice (envelope, then sections). Any mismatch
    // falls back to recompression — a corrupt cache costs time, never
    // output.
    const std::string img_key =
        benchImageKey(*bench->profile, codepack::CompressorConfig{});
    bool have_img = false;
    if (auto bytes = cache.load(img_key)) {
        if (Result<codepack::CompressedImage> img =
                codepack::decodeImageChecked(*bytes)) {
            bench->image = std::move(*img);
            have_img = true;
        }
    }
    if (!have_img) {
        bench->image = codepack::compress(bench->program);
        cache.store(img_key, codepack::encodeImage(bench->image));
    }

    // Trace once (or load the one an earlier run recorded); every
    // machine configuration replays the same immutable buffer
    // (published by the caller's once-flag, so cross-thread reads are
    // safe).
    if (Suite::replayEnabled() && trace_cap > 0) {
        const std::string trace_key =
            benchTraceKey(*bench->profile, trace_cap);
        if (auto bytes = cache.load(trace_key)) {
            if (Result<TraceBuffer> trace = decodeTraceChecked(*bytes))
                bench->trace = std::make_unique<const TraceBuffer>(
                    std::move(*trace));
        }
        if (!bench->trace) {
            TraceBuffer trace =
                recordTrace(bench->program, trace_cap);
            cache.store(trace_key, encodeTrace(trace));
            bench->trace =
                std::make_unique<const TraceBuffer>(std::move(trace));
        }
    }
    return bench;
}

const BenchProgram &
Suite::get(const std::string &name)
{
    auto it = slots_.find(name);
    if (it == slots_.end())
        cps_fatal("unknown benchmark '%s'", name.c_str());
    Slot &slot = it->second;
    std::call_once(slot.once, [&] {
        slot.bench = buildBenchProgram(name, ArtifactCache::instance());
    });
    return *slot.bench;
}

void
Suite::pregenerate(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    if (threads <= 1 || names_.size() <= 1) {
        for (const std::string &name : names_)
            get(name);
        return;
    }
    // call_once makes repeat builds free and races harmless, so the
    // fan-out just asks for everything.
    ThreadPool pool(threads);
    pool.parallelFor(names_.size(),
                     [&](size_t i) { get(names_[i]); });
}

u64
Suite::runInsns()
{
    static const u64 cached = [] {
        if (const char *env = std::getenv("CPS_INSNS")) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(env, &end, 10);
            if (end && *end == '\0' && v > 0)
                return static_cast<u64>(v);
            envWarnOnce("CPS_INSNS", env, "a positive integer");
        }
        return u64{1000000};
    }();
    return cached;
}

u64
Suite::traceInsns()
{
    static const u64 cached = [] {
        if (const char *env = std::getenv("CPS_TRACE_INSNS")) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(env, &end, 10);
            if (end && *end == '\0')
                return static_cast<u64>(v);
            envWarnOnce("CPS_TRACE_INSNS", env, "an unsigned integer");
        }
        // Slack past runInsns() so an OoO front end fetching ahead of
        // its commit budget never outruns a truncated trace (see
        // replayLookahead; 4096 covers any plausible RUU depth).
        return runInsns() + 4096;
    }();
    return cached;
}

bool
Suite::replayEnabled()
{
    static const bool cached = [] {
        const char *env = std::getenv("CPS_REPLAY");
        return env == nullptr || std::string(env) != "0";
    }();
    return cached;
}

RunOutcome
runMachine(const BenchProgram &bench, const MachineConfig &cfg,
           u64 max_insns, ReplayMode mode)
{
    const harness::ChunkOptions &chunk = harness::ChunkOptions::fromEnv();
    if (mode == ReplayMode::Auto && chunk.enabled())
        return harness::runMachineChunked(bench, cfg, max_insns, chunk);
    return runMachineSerial(bench, cfg, max_insns, mode);
}

RunOutcome
runMachineSerial(const BenchProgram &bench, const MachineConfig &cfg,
                 u64 max_insns, ReplayMode mode)
{
    const TraceBuffer *trace = nullptr;
    if (mode == ReplayMode::Auto && bench.trace &&
        bench.trace->covers(max_insns, replayLookahead(cfg)) &&
        Suite::replayEnabled()) {
        trace = bench.trace.get();
    }
    Machine machine(bench.program, cfg,
                    cfg.codeModel == CodeModel::Native ? nullptr
                                                       : &bench.image,
                    trace);
    RunOutcome out;
    out.result = machine.run(max_insns);
    out.icacheMissRate = machine.icacheMissRate();
    out.indexCacheMissRate = machine.indexCacheMissRate();
    out.icacheMisses = machine.stats().value("icache.misses");
    out.bufferHits = machine.stats().value("decomp.buffer_hits");
    out.missLatencyTotal = machine.stats().value("icache.miss_latency_total");
    out.prefetchIssued = machine.stats().value("decomp.prefetch_issued") +
                         machine.stats().value("swdecomp.prefetch_issued");
    out.prefetchHits = machine.stats().value("decomp.prefetch_hits") +
                       machine.stats().value("swdecomp.prefetch_hits");
    return out;
}

} // namespace cps
