#include "resilience.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace cps
{
namespace codepack
{

const char *
fetchCheckName(FetchCheck check)
{
    switch (check) {
      case FetchCheck::Clean:
        return "clean";
      case FetchCheck::Corrected:
        return "corrected";
      case FetchCheck::Refetched:
        return "refetched";
      case FetchCheck::Unrecoverable:
        return "unrecoverable";
    }
    return "?";
}

namespace
{

unsigned
envUnsigned(const char *name, unsigned dflt, const char *expected)
{
    const char *env = std::getenv(name);
    if (!env)
        return dflt;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end && *end == '\0' && v <= 1000000)
        return static_cast<unsigned>(v);
    envWarnOnce(name, env, expected);
    return dflt;
}

FetchCheck
worse(FetchCheck a, FetchCheck b)
{
    return static_cast<u8>(a) >= static_cast<u8>(b) ? a : b;
}

} // namespace

unsigned
defaultEccRetries()
{
    return envUnsigned("CPS_ECC_RETRIES", 2,
                       "an unsigned integer (refetch budget)");
}

unsigned
defaultFlipRatePpm()
{
    return envUnsigned("CPS_FLIP_RATE", 0,
                       "flips per million fetches, 0..1000000");
}

SoftErrorDomain::SoftErrorDomain(CompressedImage &mem, u64 seed,
                                 unsigned flip_rate_ppm,
                                 unsigned max_retries)
    : mem_(mem), backingBytes_(mem.bytes), backingIndex_(mem.indexTable),
      rng_(seed), flipRatePpm_(flip_rate_ppm), maxRetries_(max_retries),
      verifiedEpoch_(mem.numBlocks(), 0)
{
}

void
SoftErrorDomain::corruptBacking(u32 flat, u32 bit_in_block)
{
    cps_assert(flat < mem_.numBlocks(), "corruptBacking: block %u of %u",
               flat, mem_.numBlocks());
    const BlockExtent &b = mem_.blocks[flat];
    cps_assert(bit_in_block < u64{b.byteLen} * 8,
               "corruptBacking: bit %u of a %u-byte block", bit_in_block,
               b.byteLen);
    backingBytes_[b.byteOffset + bit_in_block / 8] ^=
        static_cast<u8>(1u << (bit_in_block % 8));
}

FetchCheck
SoftErrorDomain::verifyBlock(u32 flat)
{
    if (!mem_.isProtected() || flat >= mem_.numBlocks())
        return FetchCheck::Clean;
    maybeSelfInject(flat);
    if (verifiedEpoch_[flat] == epoch_)
        return FetchCheck::Clean;
    // The index entry steers the decoder to the block's bytes, so its
    // integrity comes first: correcting the entry after trusting it to
    // locate (and "verify") the wrong bytes would be useless.
    FetchCheck check = verifyIndexEntry(flat / kBlocksPerGroup);
    if (check == FetchCheck::Unrecoverable)
        return check;
    check = worse(check, verifyBlockBytes(flat));
    if (check == FetchCheck::Unrecoverable)
        return check;
    verifiedEpoch_[flat] = epoch_;
    return check;
}

FetchCheck
SoftErrorDomain::verifyIndexEntry(u32 group)
{
    ++stats_.indexChecks;
    const size_t stride = indexCheckBytes(mem_.protectKind);
    const u8 *check = mem_.indexCheck.data() + size_t{group} * stride;
    u32 entry = mem_.indexTable[group];
    EccOutcome r = checkIndexEntry(mem_.protectKind, entry, check);
    if (r == EccOutcome::Clean)
        return FetchCheck::Clean;
    if (r == EccOutcome::Corrected) {
        ++stats_.corrected;
        ++stats_.correctedBits;
        mem_.indexTable[group] = entry;
        return FetchCheck::Corrected;
    }
    ++stats_.detected;
    for (unsigned t = 0; t < maxRetries_; ++t) {
        ++stats_.refetches;
        entry = backingIndex_[group];
        r = checkIndexEntry(mem_.protectKind, entry, check);
        if (r != EccOutcome::Detected) {
            mem_.indexTable[group] = entry;
            return FetchCheck::Refetched;
        }
    }
    ++stats_.unrecoverable;
    lastError_ = decodeErrorAtByte(
        DecodeStatus::SoftError, u64{group} * 4,
        "group %u: index entry uncorrectable (%s) after %u refetches",
        group, protectKindName(mem_.protectKind), maxRetries_);
    return FetchCheck::Unrecoverable;
}

FetchCheck
SoftErrorDomain::verifyBlockBytes(u32 flat)
{
    ++stats_.blockChecks;
    const BlockExtent &b = mem_.blocks[flat];
    if (b.byteLen == 0)
        return FetchCheck::Clean;
    const u8 *check = mem_.blockCheck.data() + mem_.blockCheckOff[flat];
    u8 *data = mem_.bytes.data() + b.byteOffset;
    unsigned bits = 0;
    EccOutcome r = checkBlock(mem_.protectKind, data, b.byteLen, check,
                              &bits);
    if (r == EccOutcome::Clean)
        return FetchCheck::Clean;
    if (r == EccOutcome::Corrected) {
        ++stats_.corrected;
        stats_.correctedBits += bits;
        return FetchCheck::Corrected;
    }
    ++stats_.detected;
    for (unsigned t = 0; t < maxRetries_; ++t) {
        ++stats_.refetches;
        std::memcpy(data, backingBytes_.data() + b.byteOffset, b.byteLen);
        r = checkBlock(mem_.protectKind, data, b.byteLen, check, &bits);
        if (r != EccOutcome::Detected) {
            if (r == EccOutcome::Corrected) {
                ++stats_.corrected;
                stats_.correctedBits += bits;
            }
            return FetchCheck::Refetched;
        }
    }
    ++stats_.unrecoverable;
    lastError_ = decodeErrorAtByte(
        DecodeStatus::SoftError, b.byteOffset,
        "group %u block %u: %u stream bytes uncorrectable (%s) after "
        "%u refetches",
        flat / kBlocksPerGroup, flat % kBlocksPerGroup, b.byteLen,
        protectKindName(mem_.protectKind), maxRetries_);
    return FetchCheck::Unrecoverable;
}

void
SoftErrorDomain::maybeSelfInject(u32 flat)
{
    if (flipRatePpm_ == 0)
        return;
    if (rng_.below(1000000) >= flipRatePpm_)
        return;
    const BlockExtent &b = mem_.blocks[flat];
    if (b.byteLen == 0)
        return;
    u64 bit = rng_.below(u64{b.byteLen} * 8);
    mem_.bytes[b.byteOffset + bit / 8] ^=
        static_cast<u8>(1u << (bit % 8));
    ++stats_.flipsInjected;
    verifiedEpoch_[flat] = 0; // the memo for this block is now a lie
}

} // namespace codepack
} // namespace cps
