/**
 * @file
 * Timing-pipeline tests: in-order and out-of-order models on crafted
 * microbenchmarks with known cycle behaviour.
 */

#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "pipeline/inorder.hh"
#include "pipeline/ooo.hh"
#include "sim/machine.hh"

namespace cps
{
namespace
{

/** Wires a program to a pipeline over a native fetch path. */
struct TimedEnv
{
    Program prog;
    MainMemory mem;
    DecodedText text;
    Executor exec;
    StatSet stats;
    NativeFetchPath fetch;
    DataPath data;

    explicit TimedEnv(const std::string &src,
                      CacheConfig icache = CacheConfig{16 * 1024, 32, 2})
        : prog(assembleOrDie(src)), text(prog), exec(text, mem),
          fetch(icache, mem, stats),
          data(CacheConfig{16 * 1024, 16, 2}, mem, stats)
    {
        mem.loadSegment(prog.text);
        mem.loadSegment(prog.data);
        exec.reset(prog);
    }

    RunResult
    runInOrder(u64 max = 1000000)
    {
        PipelineConfig cfg = baseline1Issue().pipeline;
        InOrderPipeline pipe(cfg, exec, fetch, data, stats);
        return pipe.run(max);
    }

    RunResult
    runOoO(u64 max = 1000000, unsigned width = 4)
    {
        PipelineConfig cfg = width == 8 ? baseline8Issue().pipeline
                                        : baseline4Issue().pipeline;
        OoOPipeline pipe(cfg, exec, fetch, data, stats);
        return pipe.run(max);
    }
};

std::string
unrolledDependentAdds(int n)
{
    std::string src = "main:\n li $t0, 0\n";
    for (int i = 0; i < n; ++i)
        src += " addiu $t0, $t0, 1\n";
    src += " li $v0, 10\n syscall\n";
    return src;
}

/** A loop whose warm body is @p body dependent adds (IPC cap: 1). */
std::string
loopedDependentAdds(int body, int iters)
{
    std::string src = strfmt("main:\n li $t9, %d\nloop:\n", iters);
    for (int i = 0; i < body; ++i)
        src += " addiu $t0, $t0, 1\n";
    src += " addiu $t9, $t9, -1\n bgtz $t9, loop\n";
    src += " li $v0, 10\n syscall\n";
    return src;
}

/** A loop whose warm body is @p body independent adds (high ILP). */
std::string
loopedIndependentAdds(int body, int iters)
{
    std::string src = strfmt("main:\n li $t8, %d\nloop:\n", iters);
    for (int i = 0; i < body; ++i)
        src += strfmt(" addiu $t%d, $zero, 1\n", i % 8);
    src += " addiu $t8, $t8, -1\n bgtz $t8, loop\n";
    src += " li $v0, 10\n syscall\n";
    return src;
}

TEST(InOrder, RunsToCompletion)
{
    TimedEnv env("main:\n li $v0, 10\n syscall\n");
    RunResult r = env.runInOrder();
    EXPECT_TRUE(r.programExited);
    EXPECT_EQ(r.instructions, 2u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(InOrder, DependentChainIpcApproachesOne)
{
    // A warm loop: after the first iteration the I-cache hits, so the
    // 1-wide pipe approaches IPC 1.
    TimedEnv env(loopedDependentAdds(100, 100));
    RunResult r = env.runInOrder();
    EXPECT_LE(r.ipc(), 1.0);
    EXPECT_GT(r.ipc(), 0.85);
}

TEST(InOrder, IndependentStreamAlsoCapsAtOne)
{
    TimedEnv env(loopedIndependentAdds(100, 100));
    RunResult r = env.runInOrder();
    EXPECT_LE(r.ipc(), 1.0);
    EXPECT_GT(r.ipc(), 0.85);
}

TEST(InOrder, ColdStraightLineCodeIsFetchBound)
{
    // The same instruction count with no reuse pays a compulsory miss
    // on every line: IPC collapses well below 1.
    TimedEnv env(unrolledDependentAdds(400));
    RunResult r = env.runInOrder();
    EXPECT_LT(r.ipc(), 0.7);
}

TEST(InOrder, LoadUseBubbleCosts)
{
    // Load feeding its consumer vs. load with independent work after --
    // inside a warm loop, so fetch does not mask the bubble.
    std::string head = "main:\n la $t9, buf\n li $t8, 50\nloop:\n";
    std::string dep = head, indep = head;
    for (int i = 0; i < 50; ++i) {
        dep += " lw $t0, 0($t9)\n addu $t1, $t0, $t0\n";
        indep += " lw $t0, 0($t9)\n addu $t1, $t2, $t2\n";
    }
    std::string tail = " addiu $t8, $t8, -1\n bgtz $t8, loop\n"
                       " li $v0, 10\n syscall\n.data\nbuf: .word 1\n";
    TimedEnv a(dep + tail), b(indep + tail);
    RunResult ra = a.runInOrder();
    RunResult rb = b.runInOrder();
    EXPECT_GT(ra.cycles, rb.cycles);
}

TEST(InOrder, MultiCycleOpsBlockThePipe)
{
    std::string divs = "main:\n li $t0, 100\n li $t1, 3\n";
    for (int i = 0; i < 50; ++i)
        divs += " div $t2, $t0, $t1\n";
    divs += " li $v0, 10\n syscall\n";
    TimedEnv env(divs);
    RunResult r = env.runInOrder();
    // Each div occupies EX for 20 cycles.
    EXPECT_GT(r.cycles, 50u * 20u);
}

TEST(InOrder, MispredictsCostCycles)
{
    // A data-dependent alternating branch the bimodal predictor cannot
    // learn, vs. an always-taken loop branch it can.
    std::string noisy = R"(
main:
    li $t0, 400
    li $t1, 0
loop:
    andi $t2, $t0, 1
    beqz $t2, skip
    addiu $t1, $t1, 1
skip:
    addiu $t0, $t0, -1
    bgtz $t0, loop
    li $v0, 10
    syscall
)";
    TimedEnv env(noisy);
    RunResult r = env.runInOrder();
    EXPECT_TRUE(r.programExited);
    EXPECT_GT(env.stats.value("bpred.cond_branches"), 700u);
    // The alternating beqz mispredicts roughly half the time.
    EXPECT_GT(env.stats.value("bpred.dir_mispredicts"), 100u);
}

TEST(InOrder, RespectsMaxInsns)
{
    TimedEnv env(R"(
main:
loop:
    addiu $t0, $t0, 1
    b loop
)");
    RunResult r = env.runInOrder(1000);
    EXPECT_EQ(r.instructions, 1000u);
    EXPECT_FALSE(r.programExited);
}

// ------------------------------------------------------------------ OoO

TEST(OoO, RunsToCompletion)
{
    TimedEnv env("main:\n li $v0, 10\n syscall\n");
    RunResult r = env.runOoO();
    EXPECT_TRUE(r.programExited);
    EXPECT_EQ(r.instructions, 2u);
}

TEST(OoO, IndependentStreamExceedsScalarIpc)
{
    TimedEnv env(loopedIndependentAdds(200, 100));
    RunResult r = env.runOoO();
    EXPECT_GT(r.ipc(), 1.8);
    EXPECT_LE(r.ipc(), 4.0);
}

TEST(OoO, DependentChainIsSerialized)
{
    TimedEnv env(loopedDependentAdds(200, 100));
    RunResult r = env.runOoO();
    EXPECT_LE(r.ipc(), 1.1);
    EXPECT_GT(r.ipc(), 0.8);
}

TEST(OoO, EightWideBeatsFourWideOnParallelWork)
{
    TimedEnv a(loopedIndependentAdds(200, 100));
    TimedEnv b(loopedIndependentAdds(200, 100));
    RunResult r4 = a.runOoO(1000000, 4);
    RunResult r8 = b.runOoO(1000000, 8);
    EXPECT_LT(r8.cycles, r4.cycles);
}

TEST(OoO, DivsSerializeOnTheSingleUnit)
{
    std::string divs = "main:\n li $t0, 100\n li $t1, 3\n";
    for (int i = 0; i < 50; ++i)
        divs += strfmt(" div $t%d, $t0, $t1\n", 2 + (i % 6));
    divs += " li $v0, 10\n syscall\n";
    TimedEnv env(divs);
    RunResult r = env.runOoO();
    // 50 divides through one non-pipelined unit: >= 50 * 20 cycles.
    EXPECT_GT(r.cycles, 1000u);
}

TEST(OoO, IndependentMulsArePipelined)
{
    // Pipelined multiplies: much better than non-pipelined divides.
    std::string muls = "main:\n li $t0, 7\n li $t1, 3\n";
    for (int i = 0; i < 50; ++i)
        muls += strfmt(" mul $t%d, $t0, $t1\n", 2 + (i % 6));
    muls += " li $v0, 10\n syscall\n";
    TimedEnv env(muls);
    RunResult r = env.runOoO();
    EXPECT_LT(r.cycles, 300u);
}

TEST(OoO, StoreLoadSameWordObeysOrder)
{
    std::string src = R"(
main:
    la $t9, buf
    li $t0, 123
    sw $t0, 0($t9)
    lw $t1, 0($t9)
    addu $t2, $t1, $t1
    li $v0, 10
    syscall
.data
buf: .word 0
)";
    TimedEnv env(src);
    RunResult r = env.runOoO();
    EXPECT_TRUE(r.programExited);
    // Functional result is exact (oracle), timing just has to finish.
    EXPECT_EQ(env.exec.state().readGpr(10), 246u);
}

TEST(OoO, SyscallSerializesButCompletes)
{
    std::string src = "main:\n";
    for (int i = 0; i < 5; ++i)
        src += " li $v0, 11\n li $a0, 65\n syscall\n";
    src += " li $v0, 10\n syscall\n";
    TimedEnv env(src);
    RunResult r = env.runOoO();
    EXPECT_TRUE(r.programExited);
    EXPECT_EQ(env.exec.output(), "AAAAA");
}

TEST(OoO, ColdIcacheCostsMoreThanWarm)
{
    // Same code, tiny vs large I-cache.
    std::string body = loopedIndependentAdds(200, 20);
    TimedEnv small(body, CacheConfig{1024, 32, 2});
    TimedEnv big(body, CacheConfig{64 * 1024, 32, 2});
    RunResult rs = small.runOoO();
    RunResult rb = big.runOoO();
    // A pure sweep misses either way (compulsory); sizes equal here, so
    // compare against a loop that refetches instead.
    EXPECT_GE(rs.cycles, rb.cycles);
}

TEST(OoO, LoopRefetchHitsInBigCacheOnly)
{
    std::string loop = R"(
main:
    li $t0, 50
outer:
)";
    for (int i = 0; i < 600; ++i)
        loop += " addu $t1, $t2, $t3\n";
    loop += R"(
    addiu $t0, $t0, -1
    bgtz $t0, outer
    li $v0, 10
    syscall
)";
    TimedEnv small(loop, CacheConfig{1024, 32, 2});  // 600 insns > 1KB
    TimedEnv big(loop, CacheConfig{16 * 1024, 32, 2});
    RunResult rs = small.runOoO();
    RunResult rb = big.runOoO();
    EXPECT_GT(rs.cycles, rb.cycles * 3 / 2);
    EXPECT_GT(small.stats.value("icache.misses"),
              big.stats.value("icache.misses") * 10);
}

TEST(OoO, RespectsMaxInsns)
{
    TimedEnv env("main:\nloop:\n addiu $t0, $t0, 1\n b loop\n");
    RunResult r = env.runOoO(5000);
    EXPECT_GE(r.instructions, 5000u);
    EXPECT_LE(r.instructions, 5003u); // may finish the commit group
    EXPECT_FALSE(r.programExited);
}


TEST(OoO, SmallerRuuHurtsMemoryLevelParallelism)
{
    // Independent loads from distinct cold D-cache lines: a large RUU
    // overlaps the misses, a tiny one serializes them.
    std::string src = "main:\n la $t9, buf\n li $t8, 20\nloop:\n";
    for (int i = 0; i < 16; ++i)
        src += strfmt(" lw $t%d, %d($t9)\n", i % 8, i * 1024);
    src += " addiu $t8, $t8, -1\n bgtz $t8, loop\n"
           " li $v0, 10\n syscall\n.data\nbuf: .space 32768\n";

    TimedEnv big(src), small(src);
    PipelineConfig big_cfg = baseline4Issue().pipeline;
    PipelineConfig small_cfg = big_cfg;
    small_cfg.ruuSize = 4;
    small_cfg.lsqSize = 2;
    OoOPipeline pb(big_cfg, big.exec, big.fetch, big.data, big.stats);
    OoOPipeline ps(small_cfg, small.exec, small.fetch, small.data,
                   small.stats);
    RunResult rb = pb.run(100000);
    RunResult rs = ps.run(100000);
    EXPECT_LT(rb.cycles, rs.cycles);
}

TEST(OoO, LsqLimitCapsOutstandingMemOps)
{
    // A burst of stores beyond the LSQ size must still complete.
    std::string src = "main:\n la $t9, buf\n";
    for (int i = 0; i < 64; ++i)
        src += strfmt(" sw $t0, %d($t9)\n", i * 4);
    src += " li $v0, 10\n syscall\n.data\nbuf: .space 512\n";
    TimedEnv env(src);
    PipelineConfig cfg = baseline4Issue().pipeline;
    cfg.lsqSize = 4;
    OoOPipeline pipe(cfg, env.exec, env.fetch, env.data, env.stats);
    RunResult r = pipe.run(100000);
    EXPECT_TRUE(r.programExited);
    EXPECT_EQ(r.instructions, 64u + 4u);
}

TEST(OoO, FpWorkUsesFpUnits)
{
    std::string src = R"(
main:
    li $t0, 3
    mtc1 $t0, $f1
    cvt.s.w $f1, $f1
    li $t8, 50
loop:
)";
    for (int i = 0; i < 20; ++i)
        src += strfmt(" mul.s $f%d, $f1, $f1\n", 2 + (i % 6));
    src += R"(
    addiu $t8, $t8, -1
    bgtz $t8, loop
    li $v0, 10
    syscall
)";
    TimedEnv env(src);
    RunResult r = env.runOoO();
    EXPECT_TRUE(r.programExited);
    // 1000 pipelined 4-cycle FP muls on one unit: >= ~1000 cycles.
    EXPECT_GT(r.cycles, 900u);
}


TEST(InOrder, TraceSinkRecordsTimeline)
{
    TimedEnv env(R"(
main:
    li $t0, 1
    addu $t1, $t0, $t0
    li $v0, 10
    syscall
)");
    std::vector<PipeTraceEntry> trace;
    PipelineConfig cfg = baseline1Issue().pipeline;
    InOrderPipeline pipe(cfg, env.exec, env.fetch, env.data, env.stats);
    pipe.setTraceSink(&trace);
    pipe.run(100);
    ASSERT_EQ(trace.size(), 4u);
    // Chronology: fetch before execute before result; program order in
    // fetch times on a 1-wide in-order machine.
    for (const PipeTraceEntry &e : trace) {
        EXPECT_LE(e.fetchDone, e.execute);
        EXPECT_LE(e.execute, e.resultAt);
    }
    for (size_t i = 1; i < trace.size(); ++i)
        EXPECT_GT(trace[i].fetchDone, trace[i - 1].fetchDone);
    EXPECT_EQ(trace[1].inst.op, Op::Addu);
}


TEST(OoO, TraceSinkShowsOverlap)
{
    // Two independent adds dispatch together and issue in the same
    // cycle on a 4-wide machine; the trace must show the overlap.
    TimedEnv env(R"(
main:
    addiu $t0, $zero, 1
    addiu $t1, $zero, 2
    addu $t2, $t0, $t1
    li $v0, 10
    syscall
)");
    std::vector<OooTraceEntry> trace;
    PipelineConfig cfg = baseline4Issue().pipeline;
    OoOPipeline pipe(cfg, env.exec, env.fetch, env.data, env.stats);
    pipe.setTraceSink(&trace);
    pipe.run(100);
    ASSERT_EQ(trace.size(), 5u);
    // Commit order is program order.
    for (size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].committedAt, trace[i - 1].committedAt);
    // The two independent adds issue in the same cycle.
    EXPECT_EQ(trace[0].issuedAt, trace[1].issuedAt);
    // The dependent add issues only after both produce.
    EXPECT_GE(trace[2].issuedAt, trace[0].doneAt);
    EXPECT_GE(trace[2].issuedAt, trace[1].doneAt);
    // Sanity on each record's internal ordering.
    for (const OooTraceEntry &e : trace) {
        EXPECT_LE(e.fetchedAt, e.issuedAt);
        EXPECT_LE(e.issuedAt, e.doneAt);
        EXPECT_LT(e.doneAt, e.committedAt);
    }
    EXPECT_EQ(trace[2].inst.op, Op::Addu);
}

TEST(OoO, CyclesAreDeterministic)
{
    std::string src = unrolledDependentAdds(500);
    TimedEnv a(src), b(src);
    EXPECT_EQ(a.runOoO().cycles, b.runOoO().cycles);
}

} // namespace
} // namespace cps
