#include "byteio.hh"

#include <cstdio>

namespace cps
{

bool
writeFileBytes(const std::string &path, const std::vector<u8> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    return n == bytes.size();
}

std::optional<std::vector<u8>>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(f);
        return std::nullopt;
    }
    std::vector<u8> bytes(static_cast<size_t>(size));
    size_t n = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (n != bytes.size())
        return std::nullopt;
    return bytes;
}

} // namespace cps
