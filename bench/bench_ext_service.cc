/**
 * @file
 * Service-mode load benchmark (extension; DESIGN.md "Service mode").
 *
 * Spawns a real cpserved daemon (forked, isolated workers, journaling
 * on) and drives it with N concurrent clients each issuing M
 * experiment-matrix requests whose cells overlap across clients — the
 * shape of a shared lab box at paper-deadline time. Reports:
 *
 *   - request latency p50/p99 and delivered cells/sec, cold (every
 *     unique cell forks a worker) and warm (the identical request set
 *     again: the daemon's memo answers without forking anything —
 *     verified against the daemon's own cellsExecuted counter);
 *   - shed rate under deliberate pressure: a second daemon with a
 *     tiny admission bound is burst-loaded and must reject with
 *     structured OVERLOADED, not queue or die.
 *
 * Appends a "service" section to BENCH_simperf.json (schema 4),
 * preserving the host-perf sections bench_ext_simperf wrote.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "harness/suite.hh"
#include "service/client.hh"
#include "service/daemon_harness.hh"

using namespace cps;
using namespace cps::service;

namespace
{

using Clock = std::chrono::steady_clock;

constexpr unsigned kClients = 8;
constexpr unsigned kRequestsPerClient = 3;
constexpr unsigned kCellsPerRequest = 6;
constexpr unsigned kCellPool = 24; ///< distinct cells shared by clients

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

CellSpec
poolCell(u64 base_insns, unsigned idx)
{
    CellSpec spec;
    spec.bench = "go";
    spec.base = BaseMachine::Issue4;
    spec.codeModel = static_cast<u8>(CodeModel::CodePack);
    // Distinct instruction budgets make distinct cell keys without
    // changing per-cell cost materially.
    spec.maxInsns = base_insns + idx;
    return spec;
}

struct PhaseResult
{
    std::vector<double> latenciesMs; ///< one per completed request
    u64 cellsDelivered = 0;
    unsigned shed = 0;
    unsigned failed = 0; ///< requests that errored/truncated
    double wallMs = 0;
};

/** N clients x M overlapping requests against @p socket. */
PhaseResult
drivePhase(const std::string &socket, u64 base_insns)
{
    PhaseResult result;
    std::vector<std::vector<double>> lat(kClients);
    std::atomic<u64> cells{0};
    std::atomic<unsigned> shed{0}, failed{0};

    auto start = Clock::now();
    std::vector<std::thread> threads;
    for (unsigned ci = 0; ci < kClients; ++ci) {
        threads.emplace_back([&, ci] {
            ServiceClient client;
            if (!client.connect(socket, 5000)) {
                failed.fetch_add(kRequestsPerClient);
                return;
            }
            for (unsigned r = 0; r < kRequestsPerClient; ++r) {
                MatrixRequestMsg msg;
                msg.requestId = ci * 100 + r + 1;
                for (unsigned k = 0; k < kCellsPerRequest; ++k)
                    msg.cells.push_back(poolCell(
                        base_insns,
                        (ci * 3 + r * 5 + k) % kCellPool));
                auto t0 = Clock::now();
                MatrixReply reply = client.runMatrix(msg, 120000);
                if (reply.overloaded) {
                    shed.fetch_add(1);
                    continue;
                }
                if (!reply.allOk()) {
                    failed.fetch_add(1);
                    continue;
                }
                lat[ci].push_back(millisSince(t0));
                cells.fetch_add(reply.cells.size());
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    result.wallMs = millisSince(start);
    for (const std::vector<double> &v : lat)
        result.latenciesMs.insert(result.latenciesMs.end(), v.begin(),
                                  v.end());
    result.cellsDelivered = cells.load();
    result.shed = shed.load();
    result.failed = failed.load();
    return result;
}

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    size_t idx = static_cast<size_t>(p * (v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

long
statValue(const std::string &stats, const std::string &key)
{
    size_t pos = stats.find(key + "=");
    if (pos == std::string::npos)
        return -1;
    return std::atol(stats.c_str() + pos + key.size() + 1);
}

/**
 * Merges the "service" section into BENCH_simperf.json without a JSON
 * parser: drop any previous service section (always the final section,
 * written by this bench), then splice before the closing brace. A
 * missing or unrecognizable file gets a fresh schema-4 skeleton.
 */
bool
writeServiceJson(const std::string &section)
{
    const char *path = "BENCH_simperf.json";
    std::string base;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            base = ss.str();
        }
    }
    size_t prev = base.find(",\n  \"service\":");
    if (prev != std::string::npos)
        base = base.substr(0, prev) + "\n}\n";
    size_t schema = base.find("\"schema\": 3");
    if (schema != std::string::npos)
        base.replace(schema, 11, "\"schema\": 4");
    size_t close = base.rfind('}');
    std::string out;
    if (base.empty() || close == std::string::npos ||
        base.find("\"schema\"") == std::string::npos) {
        out = "{\n  \"schema\": 4" + section + "\n}\n";
    } else {
        std::string head = base.substr(0, close);
        while (!head.empty() &&
               (head.back() == '\n' || head.back() == ' '))
            head.pop_back();
        out = head + section + "\n}\n";
    }
    std::ofstream outf(path, std::ios::trunc);
    if (!outf)
        return false;
    outf << out;
    return outf.good();
}

} // namespace

int
main()
{
    const u64 base_insns = Suite::runInsns();
    // Warm the benchmark before forking daemons: they inherit it.
    Suite::instance().get("go");

    std::string scratch =
        (std::filesystem::temp_directory_path() /
         ("cps-service-bench-" + std::to_string(::getpid())))
            .string();
    std::error_code ec;
    std::filesystem::create_directories(scratch, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create %s\n", scratch.c_str());
        return 1;
    }

    // --- main daemon: throughput + warm-cache phases ------------------
    ServiceConfig dc;
    dc.socketPath = scratch + "/bench.sock";
    dc.workers = defaultThreadCount();
    dc.queueMax = 256;
    dc.deadlineMs = 300000;
    dc.runner.isolate = true;
    dc.runner.timeoutMs = 60000;
    dc.runner.retries = 1;
    dc.resume = true;
    dc.cacheDir = scratch + "/cache";
    DaemonProcess daemon = spawnDaemon(dc);
    if (!daemon.running()) {
        std::fprintf(stderr, "daemon failed to spawn\n");
        return 1;
    }

    PhaseResult cold = drivePhase(dc.socketPath, base_insns);
    long cold_executed;
    {
        ServiceClient probe;
        probe.connect(dc.socketPath, 2000);
        cold_executed = statValue(probe.stats(5000), "cellsExecuted");
    }

    PhaseResult warm = drivePhase(dc.socketPath, base_insns);
    long warm_executed;
    {
        ServiceClient probe;
        probe.connect(dc.socketPath, 2000);
        warm_executed = statValue(probe.stats(5000), "cellsExecuted");
    }
    long warm_delta = warm_executed - cold_executed;
    int rc = daemon.stop();

    // --- pressure daemon: admission control under burst load ----------
    ServiceConfig pc = dc;
    pc.socketPath = scratch + "/pressure.sock";
    pc.workers = 1;
    // One request fits exactly; everything arriving while it runs is
    // shed by outstanding-work accounting, not by trivial oversizing.
    pc.queueMax = kCellsPerRequest;
    pc.resume = false;
    DaemonProcess pressure_daemon = spawnDaemon(pc);
    if (!pressure_daemon.running()) {
        std::fprintf(stderr, "pressure daemon failed to spawn\n");
        return 1;
    }
    // 10x budget per cell: slow enough that the burst genuinely
    // overlaps the single worker, forcing admission decisions.
    PhaseResult pressure =
        drivePhase(pc.socketPath, base_insns * 10 + 1000);
    pressure_daemon.stop();

    const unsigned total_requests = kClients * kRequestsPerClient;
    double cold_p50 = percentile(cold.latenciesMs, 0.50);
    double cold_p99 = percentile(cold.latenciesMs, 0.99);
    double warm_p50 = percentile(warm.latenciesMs, 0.50);
    double warm_p99 = percentile(warm.latenciesMs, 0.99);
    double cold_cps = cold.cellsDelivered / (cold.wallMs / 1000.0);
    double warm_cps = warm.cellsDelivered / (warm.wallMs / 1000.0);
    double shed_rate =
        static_cast<double>(pressure.shed) / total_requests;

    TextTable t;
    t.setTitle(strfmt("Extension: campaign service under load "
                      "(%u clients x %u requests x %u cells, pool %u)",
                      kClients, kRequestsPerClient, kCellsPerRequest,
                      kCellPool));
    t.addHeader({"Phase", "p50 ms", "p99 ms", "cells/s", "shed",
                 "executed"});
    t.addRow({"cold (executes + journals)", strfmt("%.1f", cold_p50),
              strfmt("%.1f", cold_p99), strfmt("%.0f", cold_cps),
              strfmt("%u/%u", cold.shed, total_requests),
              strfmt("%ld", cold_executed)});
    t.addRow({"warm (memo, no forks)", strfmt("%.1f", warm_p50),
              strfmt("%.1f", warm_p99), strfmt("%.0f", warm_cps),
              strfmt("%u/%u", warm.shed, total_requests),
              strfmt("+%ld", warm_delta)});
    t.addRow({strfmt("pressure (queueMax=%u, 1 worker)", pc.queueMax),
              "-", "-", "-",
              strfmt("%u/%u (%.0f%%)", pressure.shed, total_requests,
                     100.0 * shed_rate),
              "-"});
    t.print();

    bool ok = true;
    if (cold.failed != 0 || warm.failed != 0) {
        std::printf("\n%u cold / %u warm request(s) FAILED\n",
                    cold.failed, warm.failed);
        ok = false;
    }
    if (warm_delta != 0) {
        std::printf("\nwarm phase executed %ld cell(s) — memo should "
                    "have served all of them without forking\n",
                    warm_delta);
        ok = false;
    }
    if (pressure.shed == 0) {
        std::printf("\npressure phase shed nothing — admission bound "
                    "never engaged\n");
        ok = false;
    }
    if (rc != 0) {
        std::printf("\nmain daemon exited %d (want clean drain 0)\n",
                    rc);
        ok = false;
    }

    std::string section = strfmt(
        ",\n  \"service\": {\n"
        "    \"clients\": %u,\n"
        "    \"requests\": %u,\n"
        "    \"cells_per_request\": %u,\n"
        "    \"cell_pool\": %u,\n"
        "    \"cold\": {\n"
        "      \"p50_ms\": %.2f,\n"
        "      \"p99_ms\": %.2f,\n"
        "      \"cells_per_sec\": %.1f,\n"
        "      \"executed_cells\": %ld,\n"
        "      \"shed\": %u\n"
        "    },\n"
        "    \"warm\": {\n"
        "      \"p50_ms\": %.2f,\n"
        "      \"p99_ms\": %.2f,\n"
        "      \"cells_per_sec\": %.1f,\n"
        "      \"executed_cells\": %ld,\n"
        "      \"shed\": %u\n"
        "    },\n"
        "    \"pressure\": {\n"
        "      \"requests\": %u,\n"
        "      \"shed\": %u,\n"
        "      \"shed_rate\": %.3f\n"
        "    }\n"
        "  }",
        kClients, total_requests, kCellsPerRequest, kCellPool, cold_p50,
        cold_p99, cold_cps, cold_executed, cold.shed, warm_p50, warm_p99,
        warm_cps, warm_delta, warm.shed, total_requests, pressure.shed,
        shed_rate);
    if (!writeServiceJson(section)) {
        std::fprintf(stderr, "could not write BENCH_simperf.json\n");
        ok = false;
    } else {
        std::printf("\nMerged \"service\" into BENCH_simperf.json "
                    "(schema 4).\n");
    }

    std::filesystem::remove_all(scratch, ec);
    return ok ? 0 : 1;
}
