/**
 * @file
 * Artifact-cache contract tests: hit/miss/round-trip, corrupt-entry
 * fallback (a damaged cache may cost recompute time, never output),
 * key sensitivity to every pregeneration input, concurrent same-key
 * writers, and byte-identity of the parallel compressors against the
 * serial reference at CPS_THREADS-style worker counts 1 and 8.
 */

#include <chrono>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "asmkit/objfile.hh"
#include "codepack/imagefile.hh"
#include "common/artifact_cache.hh"
#include "common/byteio.hh"
#include "compress/ccrp.hh"
#include "harness/suite.hh"
#include "progen/progen.hh"

using namespace cps;

namespace
{

/** A fresh scratch cache directory, removed on destruction. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &name)
        : path("artifact_cache_test_" + name)
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

std::vector<u8>
somePayload(size_t n, u8 salt)
{
    std::vector<u8> p(n);
    for (size_t i = 0; i < n; ++i)
        p[i] = static_cast<u8>(salt + i * 31);
    return p;
}

/** A small profile so generate/compress/trace stay fast. */
BenchmarkProfile
tinyProfile()
{
    BenchmarkProfile p = standardProfiles()[0]; // cc1
    p.name = "cc1"; // must stay a findProfile() name for build paths
    return p;
}

} // namespace

TEST(ArtifactCache, MissThenHitRoundTrip)
{
    ScratchDir dir("roundtrip");
    ArtifactCache cache(dir.path, true);
    const std::string key = "k1;some=input";
    EXPECT_FALSE(cache.load(key).has_value()); // cold: miss
    std::vector<u8> payload = somePayload(1000, 7);
    ASSERT_TRUE(cache.store(key, payload));
    auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, payload); // warm: hit, byte-exact
    EXPECT_FALSE(cache.load("k1;some=other").has_value());
}

TEST(ArtifactCache, DisabledCacheNeverStoresOrLoads)
{
    ScratchDir dir("disabled");
    ArtifactCache cache(dir.path, false);
    EXPECT_FALSE(cache.store("k", somePayload(10, 1)));
    EXPECT_FALSE(cache.load("k").has_value());
    EXPECT_FALSE(std::filesystem::exists(dir.path));
}

TEST(ArtifactCache, CorruptEntryIsAMiss)
{
    ScratchDir dir("corrupt");
    ArtifactCache cache(dir.path, true);
    const std::string key = "corruptible";
    ASSERT_TRUE(cache.store(key, somePayload(500, 3)));

    // Flip one payload byte in the entry file: the envelope CRC must
    // reject it (silent fallback, no crash).
    std::string path = cache.entryPath(key);
    auto bytes = readFileBytes(path);
    ASSERT_TRUE(bytes.has_value());
    (*bytes)[bytes->size() / 2] ^= 0x40;
    ASSERT_TRUE(writeFileBytes(path, *bytes));
    EXPECT_FALSE(cache.load(key).has_value());

    // Truncation is also a miss, not an error.
    bytes->resize(bytes->size() / 2);
    ASSERT_TRUE(writeFileBytes(path, *bytes));
    EXPECT_FALSE(cache.load(key).has_value());

    // Storing again repairs the entry.
    std::vector<u8> fresh = somePayload(500, 9);
    ASSERT_TRUE(cache.store(key, fresh));
    auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, fresh);
}

TEST(ArtifactCache, MaintainSweepsAbandonedTempFiles)
{
    ScratchDir dir("tmpsweep");
    ArtifactCache cache(dir.path, true);
    ASSERT_TRUE(cache.store("keep", somePayload(100, 1)));

    // A temp file left by a killed writer never gets published.
    const std::string stale = dir.path + "/deadbeef.tmp.999.1";
    ASSERT_TRUE(writeFileBytes(stale, somePayload(50, 2)));

    // Young temp files may belong to a live writer: left alone.
    cache.maintain(/*tmp_age_seconds=*/3600);
    EXPECT_TRUE(std::filesystem::exists(stale));

    // Old enough to be garbage: swept. Entries are untouched.
    cache.maintain(/*tmp_age_seconds=*/0);
    EXPECT_FALSE(std::filesystem::exists(stale));
    EXPECT_TRUE(cache.load("keep").has_value());
}

TEST(ArtifactCache, SizeBudgetEvictsLeastRecentlyUsedFirst)
{
    namespace fs = std::filesystem;
    ScratchDir dir("evict");
    ArtifactCache unbounded(dir.path, true);
    ASSERT_TRUE(unbounded.store("old", somePayload(4000, 1)));
    ASSERT_TRUE(unbounded.store("mid", somePayload(4000, 2)));
    ASSERT_TRUE(unbounded.store("new", somePayload(4000, 3)));

    // Spread the mtimes so LRU order is unambiguous.
    const auto now = fs::file_time_type::clock::now();
    fs::last_write_time(unbounded.entryPath("old"),
                        now - std::chrono::hours(3));
    fs::last_write_time(unbounded.entryPath("mid"),
                        now - std::chrono::hours(2));
    fs::last_write_time(unbounded.entryPath("new"),
                        now - std::chrono::hours(1));

    // Opening a budgeted cache evicts oldest-first until under budget:
    // three ~4KB entries against ~9KB keeps the two most recent.
    ArtifactCache bounded(dir.path, true, /*max_bytes=*/9000);
    EXPECT_FALSE(bounded.load("old").has_value());
    EXPECT_TRUE(bounded.load("mid").has_value());
    EXPECT_TRUE(bounded.load("new").has_value());

    // Already under budget: another open evicts nothing.
    ArtifactCache again(dir.path, true, /*max_bytes=*/9000);
    EXPECT_TRUE(again.load("mid").has_value());
    EXPECT_TRUE(again.load("new").has_value());
}

TEST(ArtifactCache, LoadTouchesEntryToRefreshLruRank)
{
    namespace fs = std::filesystem;
    ScratchDir dir("touch");
    ArtifactCache cache(dir.path, true);
    ASSERT_TRUE(cache.store("entry", somePayload(100, 1)));
    fs::last_write_time(cache.entryPath("entry"),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(10));
    auto before = fs::last_write_time(cache.entryPath("entry"));
    ASSERT_TRUE(cache.load("entry").has_value());
    EXPECT_GT(fs::last_write_time(cache.entryPath("entry")), before);
}

TEST(ArtifactCache, KeyHashSpreadsAndEntryKeyIsChecked)
{
    EXPECT_NE(ArtifactCache::keyHash("a"), ArtifactCache::keyHash("b"));
    EXPECT_EQ(ArtifactCache::keyHash("a"), ArtifactCache::keyHash("a"));
    EXPECT_EQ(ArtifactCache::keyHash("a").size(), 16u);
}

TEST(ArtifactCache, KeySensitivity)
{
    BenchmarkProfile p = tinyProfile();
    codepack::CompressorConfig cfg;
    const std::string prog_key = benchProgramKey(p);
    const std::string img_key = benchImageKey(p, cfg);
    const std::string trace_key = benchTraceKey(p, 1000);

    // Seed change invalidates every artifact.
    BenchmarkProfile reseeded = p;
    reseeded.seed += 1;
    EXPECT_NE(benchProgramKey(reseeded), prog_key);
    EXPECT_NE(benchImageKey(reseeded, cfg), img_key);
    EXPECT_NE(benchTraceKey(reseeded, 1000), trace_key);

    // Any generation knob invalidates too.
    BenchmarkProfile resized = p;
    resized.numFuncs += 1;
    EXPECT_NE(benchProgramKey(resized), prog_key);

    // Compressor config changes invalidate the image, not the program.
    codepack::CompressorConfig no_raw;
    no_raw.allowRawBlocks = false;
    EXPECT_NE(benchImageKey(p, no_raw), img_key);

    // ... but the worker count must NOT (parallel output is
    // byte-identical, so cached images are shared across CPS_THREADS).
    codepack::CompressorConfig threaded;
    threaded.threads = 8;
    EXPECT_EQ(benchImageKey(p, threaded), img_key);

    // Trace cap is part of the trace key.
    EXPECT_NE(benchTraceKey(p, 2000), trace_key);

    // The artifact kind/version prefix separates the namespaces (a
    // version bump in any producer is a whole-namespace invalidation).
    EXPECT_NE(prog_key, img_key);
    EXPECT_NE(img_key, trace_key);
}

TEST(ArtifactCache, ConcurrentSameKeyWritersProduceAValidEntry)
{
    ScratchDir dir("concurrent");
    ArtifactCache cache(dir.path, true);
    const std::string key = "contended";
    constexpr unsigned kWriters = 8;

    std::vector<std::vector<u8>> payloads;
    for (unsigned i = 0; i < kWriters; ++i)
        payloads.push_back(somePayload(4096, static_cast<u8>(i)));

    std::vector<std::thread> writers;
    for (unsigned i = 0; i < kWriters; ++i)
        writers.emplace_back(
            [&, i] { cache.store(key, payloads[i]); });
    for (std::thread &t : writers)
        t.join();

    // Whatever the interleaving, the published entry is complete and
    // belongs to one of the writers.
    auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    bool matches_one = false;
    for (const auto &p : payloads)
        matches_one = matches_one || *loaded == p;
    EXPECT_TRUE(matches_one);
    // No temp litter left behind.
    size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir.path)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST(TraceIo, RoundTripAndCorruptionRejected)
{
    Program prog = generateProgram(tinyProfile());
    TraceBuffer trace = recordTrace(prog, 5000);
    ASSERT_GT(trace.size(), 0u);

    std::vector<u8> bytes = encodeTrace(trace);
    Result<TraceBuffer> back = decodeTraceChecked(bytes);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->size(), trace.size());
    EXPECT_EQ(back->complete(), trace.complete());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(back->entry(i).pc, trace.entry(i).pc);
        EXPECT_EQ(back->entry(i).nextPc, trace.entry(i).nextPc);
        EXPECT_EQ(back->entry(i).memAddr, trace.entry(i).memAddr);
        EXPECT_EQ(back->entry(i).meta, trace.entry(i).meta);
    }
    // Re-encoding reproduces the bytes exactly (cache stability).
    EXPECT_EQ(encodeTrace(*back), bytes);

    std::vector<u8> flipped = bytes;
    flipped[flipped.size() / 3] ^= 0x01;
    Result<TraceBuffer> bad = decodeTraceChecked(flipped);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().status, DecodeStatus::BadCrc);

    std::vector<u8> truncated(bytes.begin(), bytes.begin() + 10);
    EXPECT_FALSE(decodeTraceChecked(truncated).ok());
}

TEST(ParallelCompressors, CodePackByteIdenticalAcrossThreadCounts)
{
    Program prog = generateProgram(tinyProfile());

    codepack::CompressorConfig serial_cfg;
    serial_cfg.threads = 1; // the serial reference (CPS_THREADS=1)
    codepack::CompressedImage serial =
        codepack::compress(prog, serial_cfg);
    std::vector<u8> serial_bytes = codepack::encodeImage(serial);

    for (unsigned threads : {2u, 8u}) {
        codepack::CompressorConfig cfg;
        cfg.threads = threads; // CPS_THREADS=8-style worker count
        codepack::CompressedImage parallel =
            codepack::compress(prog, cfg);
        EXPECT_EQ(codepack::encodeImage(parallel), serial_bytes)
            << "CodePack image differs at " << threads << " threads";
    }
}

TEST(ParallelCompressors, CcrpByteIdenticalAcrossThreadCounts)
{
    Program prog = generateProgram(tinyProfile());
    std::vector<u32> words;
    for (size_t i = 0; i < prog.textWords(); ++i)
        words.push_back(prog.word(i));

    compress::CcrpImage serial =
        compress::CcrpImage::compress(words, prog.text.base, 1);
    for (unsigned threads : {2u, 8u}) {
        compress::CcrpImage parallel =
            compress::CcrpImage::compress(words, prog.text.base,
                                          threads);
        ASSERT_EQ(parallel.numLines(), serial.numLines());
        EXPECT_EQ(parallel.streamBits(), serial.streamBits());
        bool lines_equal = true;
        for (u32 line = 0; line < serial.numLines(); ++line) {
            compress::LineExtent a = serial.extent(line);
            compress::LineExtent b = parallel.extent(line);
            lines_equal = lines_equal && a.byteOffset == b.byteOffset &&
                          a.byteLen == b.byteLen &&
                          serial.insnEndBytes(line) ==
                              parallel.insnEndBytes(line);
        }
        EXPECT_TRUE(lines_equal)
            << "CCRP lines differ at " << threads << " threads";
        EXPECT_EQ(parallel.decompressAll(), serial.decompressAll());
    }
}

TEST(ArtifactCache, BenchBuildColdWarmAndCorruptAreIdentical)
{
    ScratchDir dir("benchbuild");
    ArtifactCache cache(dir.path, true);
    constexpr u64 kCap = 3000;

    // Cold build computes and populates the cache.
    std::unique_ptr<BenchProgram> cold =
        buildBenchProgram("pegwit", cache, kCap);
    std::vector<u8> cold_img = codepack::encodeImage(cold->image);
    std::vector<u8> cold_prog = encodeProgram(cold->program);
    ASSERT_TRUE(cold->trace);
    std::vector<u8> cold_trace = encodeTrace(*cold->trace);
    EXPECT_TRUE(std::filesystem::exists(
        cache.entryPath(benchImageKey(*cold->profile,
                                      codepack::CompressorConfig{}))));

    // Warm build loads; every artifact must be byte-identical.
    std::unique_ptr<BenchProgram> warm =
        buildBenchProgram("pegwit", cache, kCap);
    EXPECT_EQ(codepack::encodeImage(warm->image), cold_img);
    EXPECT_EQ(encodeProgram(warm->program), cold_prog);
    ASSERT_TRUE(warm->trace);
    EXPECT_EQ(encodeTrace(*warm->trace), cold_trace);

    // Corrupt every cache entry: the build silently recomputes and the
    // result still matches (fault-injection acceptance check).
    for (const auto &e : std::filesystem::directory_iterator(dir.path)) {
        auto bytes = readFileBytes(e.path().string());
        ASSERT_TRUE(bytes.has_value());
        (*bytes)[bytes->size() / 2] ^= 0x10;
        ASSERT_TRUE(writeFileBytes(e.path().string(), *bytes));
    }
    std::unique_ptr<BenchProgram> repaired =
        buildBenchProgram("pegwit", cache, kCap);
    EXPECT_EQ(codepack::encodeImage(repaired->image), cold_img);
    EXPECT_EQ(encodeProgram(repaired->program), cold_prog);
    ASSERT_TRUE(repaired->trace);
    EXPECT_EQ(encodeTrace(*repaired->trace), cold_trace);

    // A disabled cache recomputes from scratch to the same bytes.
    ArtifactCache off(dir.path, false);
    std::unique_ptr<BenchProgram> uncached =
        buildBenchProgram("pegwit", off, kCap);
    EXPECT_EQ(codepack::encodeImage(uncached->image), cold_img);
}
