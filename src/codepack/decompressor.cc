#include "decompressor.hh"

#include <bit>
#include <cstring>

#include "common/bitstream.hh"
#include "common/logging.hh"

namespace cps
{
namespace codepack
{

Result<DecodedBlock>
Decompressor::tryDecompressBlock(u32 group, u32 block) const
{
    if (group >= img_.numGroups())
        return decodeErrorAtByte(DecodeStatus::RangeError, 0,
                                 "group %u out of range (image has %u)",
                                 group, img_.numGroups());
    if (block >= kBlocksPerGroup)
        return decodeErrorAtByte(DecodeStatus::RangeError, 0,
                                 "block %u out of range", block);

    u32 entry = img_.indexTable[group];
    DecodedBlock out;
    u32 first = idxFirstOffset(entry);
    if (block == 0) {
        out.byteOffset = first;
        out.raw = idxFirstRaw(entry);
        out.byteLen = idxSecondOffset(entry);
        // A raw first block always occupies exactly 64 bytes.
        if (out.raw)
            out.byteLen = kRawBlockBytes;
    } else {
        out.byteOffset = first + idxSecondOffset(entry);
        out.raw = idxSecondRaw(entry);
        // The second block's length is not in the index entry; the
        // hardware just decodes 16 instructions. We recover the length
        // from decoding below (raw blocks are fixed-size).
        out.byteLen = out.raw ? kRawBlockBytes : 0;
    }

    if (out.byteOffset > img_.bytes.size())
        return decodeErrorAtByte(
            DecodeStatus::RangeError, out.byteOffset,
            "group %u block %u offset %u beyond compressed region "
            "(%zu bytes)",
            group, block, out.byteOffset, img_.bytes.size());

    if (out.raw) {
        if (out.byteOffset + kRawBlockBytes > img_.bytes.size())
            return decodeErrorAtByte(
                DecodeStatus::Truncated, out.byteOffset,
                "group %u block %u raw extent [%u, %u) beyond "
                "compressed region (%zu bytes)",
                group, block, out.byteOffset,
                out.byteOffset + kRawBlockBytes, img_.bytes.size());
        const u8 *p = img_.bytes.data() + out.byteOffset;
        for (unsigned i = 0; i < kBlockInsns; ++i) {
            out.words[i] = static_cast<u32>(p[i * 4]) |
                           (static_cast<u32>(p[i * 4 + 1]) << 8) |
                           (static_cast<u32>(p[i * 4 + 2]) << 16) |
                           (static_cast<u32>(p[i * 4 + 3]) << 24);
            out.endBit[i] = (i + 1) * 32;
        }
        return out;
    }

    BitReader br(img_.bytes.data() + out.byteOffset,
                 img_.bytes.size() - out.byteOffset);
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        Result<u16> hi = img_.highDict.tryRead(br);
        if (!hi) {
            DecodeError err = hi.error();
            err.bitOffset += u64{out.byteOffset} * 8;
            err.message = strfmt("group %u block %u insn %u: %s", group,
                                 block, i, err.message.c_str());
            return err;
        }
        Result<u16> lo = img_.lowDict.tryRead(br);
        if (!lo) {
            DecodeError err = lo.error();
            err.bitOffset += u64{out.byteOffset} * 8;
            err.message = strfmt("group %u block %u insn %u: %s", group,
                                 block, i, err.message.c_str());
            return err;
        }
        out.words[i] = (static_cast<u32>(*hi) << 16) | *lo;
        out.endBit[i] = static_cast<u32>(br.bitPos());
    }
    u32 used_bytes = static_cast<u32>((br.bitPos() + 7) / 8);
    if (block == 0) {
        // Cross-check: the index entry's second-block offset doubles as
        // the first block's length. A disagreement means either the
        // entry or the stream is corrupt.
        if (out.byteLen != used_bytes)
            return decodeErrorAtByte(
                DecodeStatus::Malformed,
                u64{out.byteOffset} + used_bytes,
                "group %u: index entry says first block is %u bytes "
                "but decode consumed %u",
                group, out.byteLen, used_bytes);
    } else {
        out.byteLen = used_bytes;
    }
    return out;
}

bool
Decompressor::fastDecompressBlock(u32 group, u32 block,
                                  DecodedBlock &out) const
{
    if (group >= img_.numGroups() || block >= kBlocksPerGroup)
        return false;

    u32 entry = img_.indexTable[group];
    u32 first = idxFirstOffset(entry);
    if (block == 0) {
        out.byteOffset = first;
        out.raw = idxFirstRaw(entry);
        out.byteLen = out.raw ? kRawBlockBytes : idxSecondOffset(entry);
    } else {
        out.byteOffset = first + idxSecondOffset(entry);
        out.raw = idxSecondRaw(entry);
        out.byteLen = out.raw ? kRawBlockBytes : 0;
    }
    if (out.byteOffset > img_.bytes.size())
        return false;

    if (out.raw) {
        if (out.byteOffset + kRawBlockBytes > img_.bytes.size())
            return false;
        const u8 *p = img_.bytes.data() + out.byteOffset;
        for (unsigned i = 0; i < kBlockInsns; ++i) {
            u32 w;
            std::memcpy(&w, p + i * 4, 4);
            if constexpr (std::endian::native == std::endian::big)
                w = __builtin_bswap32(w);
            out.words[i] = w;
            out.endBit[i] = (i + 1) * 32;
        }
        return true;
    }

    BitReader br(img_.bytes.data() + out.byteOffset,
                 img_.bytes.size() - out.byteOffset);
    constexpr unsigned kLut = Dictionary::kLutBits;
    const u32 *hlut = img_.highDict.lutData();
    const u32 *llut = img_.lowDict.lutData();
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        // Fused probe: one peek covers both halfword codewords (the
        // high codeword is at most kLut bits, so the low probe always
        // fits inside a 2*kLut-bit window). Raw escapes, unpopulated
        // indexes and end-of-stream truncation drop to the per-symbol
        // readFast path, which re-peeks from the same position.
        u32 bits = br.peekPadded(2 * kLut);
        u32 eh = hlut[bits >> kLut];
        if (Dictionary::lutIsValue(eh)) {
            unsigned lh = Dictionary::lutLen(eh);
            u32 el = llut[(bits >> (kLut - lh)) & ((1u << kLut) - 1)];
            if (Dictionary::lutIsValue(el)) {
                unsigned ll = Dictionary::lutLen(el);
                if (br.trySkip(lh + ll)) {
                    out.words[i] =
                        (static_cast<u32>(Dictionary::lutValue(eh))
                         << 16) |
                        Dictionary::lutValue(el);
                    out.endBit[i] = static_cast<u32>(br.bitPos());
                    continue;
                }
            }
        }
        u16 hi, lo;
        if (!img_.highDict.readFast(br, hi) ||
            !img_.lowDict.readFast(br, lo))
            return false;
        out.words[i] = (static_cast<u32>(hi) << 16) | lo;
        out.endBit[i] = static_cast<u32>(br.bitPos());
    }
    u32 used_bytes = static_cast<u32>((br.bitPos() + 7) / 8);
    if (block == 0) {
        if (out.byteLen != used_bytes)
            return false; // index/stream disagreement
    } else {
        out.byteLen = used_bytes;
    }
    return true;
}

DecodedBlock
Decompressor::decompressBlock(u32 group, u32 block) const
{
    DecodedBlock out;
    if (fastDecompressBlock(group, block, out))
        return out;
    // The LUT kernel bailed: re-decode through the checked bit-serial
    // reference path for the precise diagnostic. Trusted path: the
    // image was produced in-process, so failure here is a simulator
    // bug, not bad input.
    Result<DecodedBlock> r = tryDecompressBlock(group, block);
    if (!r)
        cps_panic("decompressBlock on corrupt image: %s",
                  r.error().describe().c_str());
    return *r;
}

std::vector<u32>
Decompressor::decompressAll() const
{
    std::vector<u32> out;
    out.reserve(img_.paddedInsns);
    for (u32 g = 0; g < img_.numGroups(); ++g) {
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            DecodedBlock blk = decompressBlock(g, b);
            out.insert(out.end(), blk.words.begin(), blk.words.end());
        }
    }
    out.resize(img_.origTextBytes / 4); // drop the NOP padding
    return out;
}

Result<std::vector<u32>>
Decompressor::tryDecompressAll() const
{
    Result<void> valid = validateImage(img_);
    if (!valid)
        return valid.error();
    std::vector<u32> out;
    out.reserve(img_.paddedInsns);
    for (u32 g = 0; g < img_.numGroups(); ++g) {
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            Result<DecodedBlock> blk = tryDecompressBlock(g, b);
            if (!blk)
                return blk.error();
            out.insert(out.end(), blk->words.begin(), blk->words.end());
        }
    }
    out.resize(img_.origTextBytes / 4); // drop the NOP padding
    return out;
}

BlockCache::BlockCache(const Decompressor &decomp, unsigned slots)
    : decomp_(decomp)
{
    unsigned n = 1;
    while (n < slots)
        n <<= 1;
    slots_.resize(n);
    mask_ = n - 1;
}

const DecodedBlock &
BlockCache::get(u32 group, u32 block)
{
    u32 flat = group * kBlocksPerGroup + block;
    Slot &slot = slots_[flat & mask_];
    if (slot.flat == flat) {
        ++hits_;
        return slot.blk;
    }
    slot.blk = decomp_.decompressBlock(group, block);
    slot.flat = flat;
    ++fills_;
    return slot.blk;
}

Result<void>
validateImage(const CompressedImage &img)
{
    if (img.paddedInsns % kGroupInsns != 0)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "paddedInsns %u is not a multiple of "
                                 "the group size %u",
                                 img.paddedInsns, kGroupInsns);
    u32 groups = img.paddedInsns / kGroupInsns;
    if (img.numGroups() != groups)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "index table has %u entries for %u "
                                 "groups",
                                 img.numGroups(), groups);
    if (!img.blocks.empty() &&
        img.blocks.size() != size_t{groups} * kBlocksPerGroup)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "%zu block extents for %u groups",
                                 img.blocks.size(), groups);
    if (img.origTextBytes % 4 != 0 ||
        img.origTextBytes > u64{img.paddedInsns} * 4)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "origTextBytes %u inconsistent with "
                                 "%u padded instructions",
                                 img.origTextBytes, img.paddedInsns);
    if (img.textBase % 4 != 0)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "text base 0x%x is not word aligned",
                                 img.textBase);

    for (u32 g = 0; g < groups; ++g) {
        u32 entry = img.indexTable[g];
        u64 first = idxFirstOffset(entry);
        u64 second = first + idxSecondOffset(entry);
        if (first > img.bytes.size() || second > img.bytes.size())
            return decodeErrorAtByte(
                DecodeStatus::RangeError, first,
                "index entry %u points beyond the compressed region "
                "(%zu bytes)",
                g, img.bytes.size());
    }
    for (size_t i = 0; i < img.blocks.size(); ++i) {
        const BlockExtent &b = img.blocks[i];
        if (u64{b.byteOffset} + b.byteLen > img.bytes.size())
            return decodeErrorAtByte(
                DecodeStatus::RangeError, b.byteOffset,
                "block extent %zu [%u, %u) beyond the compressed "
                "region (%zu bytes)",
                i, b.byteOffset, b.byteOffset + b.byteLen,
                img.bytes.size());
    }
    return {};
}

} // namespace codepack
} // namespace cps
