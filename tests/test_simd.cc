/**
 * @file
 * SIMD wrapper equivalence tests: every vector backend routine must
 * produce exactly the scalar reference's result on any input —
 * unaligned lengths, sub-vector arrays, duplicate matches, saturating
 * halfword values — so swapping backends can never change compressed
 * output. The threaded histogram section runs disjoint-table
 * accumulation under TSan; ASan covers the tail-handling loads.
 */

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "codepack/dictionary.hh"
#include "common/rng.hh"
#include "common/simd.hh"

namespace cps
{
namespace
{

std::vector<u32>
randomWords(size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<u32> words(n);
    for (u32 &w : words)
        w = static_cast<u32>(rng.next());
    return words;
}

// Lengths that straddle every vector boundary: empty, sub-vector,
// exactly one vector, one-past, the unrolled 2x width, and a tail in
// every residue class.
const size_t kLens[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 100};

TEST(Simd, SplitHalvesMatchesScalarAllLengths)
{
    for (size_t n : kLens) {
        std::vector<u32> words = randomWords(n, 0x5eed + n);
        std::vector<u16> hi_v(n), lo_v(n), hi_s(n), lo_s(n);
        simd::splitHalves(words.data(), n, hi_v.data(), lo_v.data());
        simd::scalar::splitHalves(words.data(), n, hi_s.data(),
                                  lo_s.data());
        EXPECT_EQ(hi_v, hi_s) << "n=" << n;
        EXPECT_EQ(lo_v, lo_s) << "n=" << n;
    }
}

TEST(Simd, SplitHalvesExactOnSaturationBoundaries)
{
    // The SSE2 pack saturates signed 16-bit; the bias trick must make
    // it exact across the whole range, especially around 0x7fff/0x8000.
    std::vector<u32> words;
    for (u32 h : {0u, 1u, 0x7fffu, 0x8000u, 0x8001u, 0xfffeu, 0xffffu})
        for (u32 l : {0u, 0x7fffu, 0x8000u, 0xffffu})
            words.push_back((h << 16) | l);
    size_t n = words.size();
    std::vector<u16> hi(n), lo(n);
    simd::splitHalves(words.data(), n, hi.data(), lo.data());
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hi[i], words[i] >> 16);
        EXPECT_EQ(lo[i], words[i] & 0xffff);
    }
}

TEST(Simd, FindU16MatchesScalarRandom)
{
    Rng rng(0xf16d);
    for (size_t n : kLens) {
        std::vector<u16> vals(n);
        for (u16 &v : vals)
            v = static_cast<u16>(rng.below(64)); // dense duplicates
        for (int probe = 0; probe < 80; ++probe) {
            u16 needle = static_cast<u16>(rng.below(80)); // often absent
            EXPECT_EQ(simd::findU16(vals.data(), n, needle),
                      simd::scalar::findU16(vals.data(), n, needle))
                << "n=" << n << " needle=" << needle;
        }
    }
}

TEST(Simd, FindU16FirstMatchSemantics)
{
    // Duplicates everywhere: the vector path must still name the
    // first hit, including hits inside the scalar tail.
    std::vector<u16> vals(37, 0xabcd);
    EXPECT_EQ(simd::findU16(vals.data(), vals.size(), 0xabcd), 0u);
    EXPECT_EQ(simd::findU16(vals.data(), vals.size(), 0x1234),
              vals.size());
    for (size_t at = 0; at < vals.size(); ++at) {
        std::vector<u16> v(vals.size(), 0);
        v[at] = 7;
        if (at + 5 < v.size())
            v[at + 5] = 7; // later duplicate must not win
        EXPECT_EQ(simd::findU16(v.data(), v.size(), 7), at);
    }
    EXPECT_EQ(simd::findU16(nullptr, 0, 42), 0u);
}

TEST(Simd, HistogramHalvesMatchesScalar)
{
    for (size_t n : kLens) {
        std::vector<u32> words = randomWords(n, 0x415e + n);
        // Narrow the halfword universe so counts exceed 1.
        for (u32 &w : words)
            w = ((w >> 16) % 13) << 16 | (w % 7);
        std::vector<u64> hi_v(65536, 0), lo_v(65536, 0);
        std::vector<u64> hi_s(65536, 0), lo_s(65536, 0);
        simd::histogramHalves(words.data(), n, hi_v.data(), lo_v.data());
        simd::scalar::histogramHalves(words.data(), n, hi_s.data(),
                                      lo_s.data());
        EXPECT_EQ(hi_v, hi_s) << "n=" << n;
        EXPECT_EQ(lo_v, lo_s) << "n=" << n;
    }
}

TEST(Simd, HistogramHalvesAccumulates)
{
    // The contract says tables are accumulated into, not cleared:
    // chunked calls must compose to one whole-array call.
    std::vector<u32> words = randomWords(333, 0xacc);
    std::vector<u64> hi_a(65536, 0), lo_a(65536, 0);
    std::vector<u64> hi_b(65536, 0), lo_b(65536, 0);
    simd::histogramHalves(words.data(), words.size(), hi_a.data(),
                          lo_a.data());
    size_t cut = 100;
    simd::histogramHalves(words.data(), cut, hi_b.data(), lo_b.data());
    simd::histogramHalves(words.data() + cut, words.size() - cut,
                          hi_b.data(), lo_b.data());
    EXPECT_EQ(hi_a, hi_b);
    EXPECT_EQ(lo_a, lo_b);
}

TEST(Simd, HistogramHalvesThreadedDisjointTables)
{
    // The compressor's phase-1 workers histogram disjoint chunks into
    // per-worker tables. Reproduce that shape so TSan checks the
    // wrapper (including its on-stack deinterleave buffers) for shared
    // state across threads.
    std::vector<u32> words = randomWords(4096, 0x7eadd);
    constexpr unsigned kThreads = 4;
    std::vector<std::vector<u64>> hi(kThreads,
                                     std::vector<u64>(65536, 0));
    std::vector<std::vector<u64>> lo(kThreads,
                                     std::vector<u64>(65536, 0));
    std::vector<std::thread> pool;
    size_t chunk = words.size() / kThreads;
    for (unsigned t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t] {
            simd::histogramHalves(words.data() + t * chunk, chunk,
                                  hi[t].data(), lo[t].data());
        });
    for (std::thread &th : pool)
        th.join();
    std::vector<u64> hi_sum(65536, 0), lo_sum(65536, 0);
    for (unsigned t = 0; t < kThreads; ++t)
        for (size_t v = 0; v < 65536; ++v) {
            hi_sum[v] += hi[t][v];
            lo_sum[v] += lo[t][v];
        }
    std::vector<u64> hi_ref(65536, 0), lo_ref(65536, 0);
    simd::scalar::histogramHalves(words.data(), words.size(),
                                  hi_ref.data(), lo_ref.data());
    EXPECT_EQ(hi_sum, hi_ref);
    EXPECT_EQ(lo_sum, lo_ref);
}

TEST(Simd, BackendNameConsistent)
{
    if (simd::kVectorized)
        EXPECT_STRNE(simd::kBackend, "scalar");
    else
        EXPECT_STREQ(simd::kBackend, "scalar");
}

TEST(Simd, DictionaryMatchEncodeExhaustive)
{
    // The vectorized CAM probe must agree with both the scalar scan
    // and the hash-map encode() over the entire halfword space.
    std::vector<u32> words = randomWords(4096, 0xd1c7);
    for (u32 &w : words)
        w = ((w >> 16) % 97) << 16 | (w % 61);
    std::unordered_map<u16, u64> hi_counts, lo_counts;
    for (u32 w : words) {
        ++hi_counts[static_cast<u16>(w >> 16)];
        ++lo_counts[static_cast<u16>(w & 0xffff)];
    }
    using codepack::Dictionary;
    Dictionary high =
        Dictionary::build(Dictionary::Kind::High, hi_counts);
    Dictionary low = Dictionary::build(Dictionary::Kind::Low, lo_counts);
    for (u32 v = 0; v < 65536; ++v) {
        u16 half = static_cast<u16>(v);
        for (const codepack::Dictionary *d : {&high, &low}) {
            codepack::HalfEncoding vec = d->matchEncode(half, true);
            codepack::HalfEncoding sca = d->matchEncode(half, false);
            codepack::HalfEncoding ref = d->encode(half);
            for (const codepack::HalfEncoding *e : {&vec, &sca}) {
                ASSERT_EQ(e->raw, ref.raw) << "half=" << v;
                ASSERT_EQ(e->zeroSpecial, ref.zeroSpecial);
                ASSERT_EQ(e->bank, ref.bank);
                ASSERT_EQ(e->index, ref.index);
                ASSERT_EQ(e->tagBits, ref.tagBits);
                ASSERT_EQ(e->tag, ref.tag);
                ASSERT_EQ(e->indexBits, ref.indexBits);
            }
        }
    }
}

} // namespace
} // namespace cps
