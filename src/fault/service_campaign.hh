/**
 * @file
 * Chaos campaign for the campaign daemon (cpserved).
 *
 * Where process_campaign.hh proves one CellRunner survives misbehaving
 * workers, this campaign attacks the whole service: real forked
 * daemons face crashing/hanging/garbling cell workers, clients that
 * tear frames mid-write, trickle bytes (slow-loris), send garbage, or
 * vanish with work in flight, a journal directory that cannot be
 * written (disk-full stand-in), deliberate overload past the admission
 * bound, a SIGTERM mid-request, and an outright kill -9 followed by a
 * restart that must resume from the journal.
 *
 * Every scenario asserts the same invariants the daemon is built
 * around: it never dies except when told to, stays responsive to a
 * health probe throughout, sheds load with a structured OVERLOADED
 * reply rather than queueing without bound, and loses no journaled
 * work across kill -9.
 */

#ifndef CPS_FAULT_SERVICE_CAMPAIGN_HH
#define CPS_FAULT_SERVICE_CAMPAIGN_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace cps
{
namespace fault
{

/** Campaign parameters. */
struct ServiceChaosConfig
{
    u64 insns = 20000;      ///< per-cell instruction budget
    std::string scratchDir; ///< sockets + journal dirs live here
};

/** One chaos scenario's verdict. */
struct ServiceChaosRecord
{
    std::string name;
    bool pass = false;
    std::string detail; ///< what was observed (esp. on failure)
};

/** Aggregated campaign outcome. */
struct ServiceChaosResult
{
    std::vector<ServiceChaosRecord> records;
    unsigned failures = 0;

    bool ok() const { return failures == 0; }
};

/**
 * Runs every scenario. Forks one fresh daemon per scenario (via
 * service::spawnDaemon) so a scenario can kill its daemon without
 * disturbing the next. Requires fork(2) and a writable
 * @p cfg.scratchDir.
 */
ServiceChaosResult runServiceCampaign(const ServiceChaosConfig &cfg);

} // namespace fault
} // namespace cps

#endif // CPS_FAULT_SERVICE_CAMPAIGN_HH
