#include "ccrp.hh"

#include <algorithm>
#include <memory>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "isa/isa.hh"

namespace cps
{
namespace compress
{

namespace
{

/** One independently encoded I-cache line (byte-aligned by format). */
struct LineBits
{
    std::vector<u8> bytes;
    std::array<u32, 8> ends{}; ///< per-insn end, relative to line start
};

} // namespace

CcrpImage
CcrpImage::compress(const std::vector<u32> &words, Addr text_base,
                    unsigned threads)
{
    CcrpImage img;
    img.textBase_ = text_base;
    img.origTextBytes_ = static_cast<u32>(words.size() * 4);

    // Pad to a whole cache line of 8 instructions.
    std::vector<u32> padded = words;
    while (padded.size() % 8 != 0)
        padded.push_back(kNopWord);

    u32 num_lines = static_cast<u32>(padded.size() / 8);
    if (threads == 0)
        threads = defaultThreadCount();
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1 && num_lines > 1)
        pool = std::make_unique<ThreadPool>(threads);

    // Pass 1: byte frequencies over the padded text — per-chunk private
    // counters summed in chunk order when a pool is available, which
    // reproduces the serial totals exactly (addition commutes).
    std::array<u64, 256> counts{};
    size_t chunks = pool ? std::min<size_t>(pool->size(), 16) : 1;
    if (chunks > 1 && padded.size() >= 4096) {
        std::vector<std::array<u64, 256>> parts(chunks);
        size_t per = (padded.size() + chunks - 1) / chunks;
        pool->parallelFor(chunks, [&](size_t c) {
            std::array<u64, 256> &p = parts[c];
            p.fill(0);
            size_t begin = c * per;
            size_t end = std::min(padded.size(), begin + per);
            for (size_t i = begin; i < end; ++i) {
                u32 w = padded[i];
                ++p[w & 0xff];
                ++p[(w >> 8) & 0xff];
                ++p[(w >> 16) & 0xff];
                ++p[(w >> 24) & 0xff];
            }
        });
        for (const std::array<u64, 256> &p : parts)
            for (unsigned s = 0; s < 256; ++s)
                counts[s] += p[s];
    } else {
        for (u32 w : padded) {
            ++counts[w & 0xff];
            ++counts[(w >> 8) & 0xff];
            ++counts[(w >> 16) & 0xff];
            ++counts[(w >> 24) & 0xff];
        }
    }
    img.code_ = HuffmanCode::build(counts);

    // Pass 2: encode line by line. Every line starts byte-aligned (the
    // LAT addresses lines by byte offset), so each encodes into its own
    // writer — in parallel — and serial concatenation reproduces the
    // single-writer stream byte for byte. Per-insn end offsets are
    // recorded line-relative and rebased during stitching.
    std::vector<LineBits> lines(num_lines);
    auto encodeLine = [&](size_t line) {
        LineBits &lb = lines[line];
        BitWriter bw;
        // Worst case is 16-bit codes for all 32 bytes of the line.
        bw.reserve(8 * 4 * 2);
        for (unsigned i = 0; i < 8; ++i) {
            u32 w = padded[line * 8 + i];
            img.code_.encode(bw, static_cast<u8>(w));
            img.code_.encode(bw, static_cast<u8>(w >> 8));
            img.code_.encode(bw, static_cast<u8>(w >> 16));
            img.code_.encode(bw, static_cast<u8>(w >> 24));
            lb.ends[i] = static_cast<u32>((bw.bitSize() + 7) / 8);
        }
        bw.alignByte();
        lb.bytes = bw.take();
    };
    if (pool)
        pool->parallelFor(num_lines, encodeLine);
    else
        for (u32 line = 0; line < num_lines; ++line)
            encodeLine(line);

    // Stitch (serial): the histogram bounds the stream size exactly, so
    // one reservation covers the whole concatenation (alignment padding
    // adds at most 7 bits per line).
    img.lineOffsets_.reserve(num_lines);
    img.insnEnds_.reserve(num_lines);
    img.bytes_.reserve(static_cast<size_t>(
        (img.code_.streamBits(counts) + u64{num_lines} * 7) / 8 + 1));
    for (u32 line = 0; line < num_lines; ++line) {
        const LineBits &lb = lines[line];
        u32 off = static_cast<u32>(img.bytes_.size());
        img.lineOffsets_.push_back(off);
        std::array<u32, 8> ends = lb.ends;
        for (u32 &e : ends)
            e += off;
        img.insnEnds_.push_back(ends);
        img.bytes_.insert(img.bytes_.end(), lb.bytes.begin(),
                          lb.bytes.end());
    }
    return img;
}

LineExtent
CcrpImage::extent(u32 line) const
{
    cps_assert(line < numLines(), "CCRP line %u out of range", line);
    LineExtent ext;
    ext.byteOffset = lineOffsets_[line];
    u32 end = line + 1 < numLines() ? lineOffsets_[line + 1]
                                    : static_cast<u32>(bytes_.size());
    ext.byteLen = end - ext.byteOffset;
    return ext;
}

std::array<u32, 8>
CcrpImage::insnEndBytes(u32 line) const
{
    cps_assert(line < numLines(), "CCRP line %u out of range", line);
    return insnEnds_[line];
}

std::vector<u32>
CcrpImage::decompressAll() const
{
    std::vector<u32> out;
    out.reserve(static_cast<size_t>(numLines()) * 8);
    for (u32 line = 0; line < numLines(); ++line) {
        LineExtent ext = extent(line);
        BitReader br(bytes_.data() + ext.byteOffset,
                     bytes_.size() - ext.byteOffset);
        for (unsigned i = 0; i < 8; ++i) {
            u32 w = code_.decode(br);
            w |= static_cast<u32>(code_.decode(br)) << 8;
            w |= static_cast<u32>(code_.decode(br)) << 16;
            w |= static_cast<u32>(code_.decode(br)) << 24;
            out.push_back(w);
        }
    }
    out.resize(origTextBytes_ / 4);
    return out;
}

double
CcrpImage::compressionRatio() const
{
    u64 total_bits = streamBits() + latBits() + tableBits();
    return static_cast<double>(total_bits / 8) /
           static_cast<double>(origTextBytes_);
}

} // namespace compress
} // namespace cps
