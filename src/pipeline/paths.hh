/**
 * @file
 * Instruction-fetch and data-access paths shared by both pipeline models.
 *
 * The timing simulator is organised around two port abstractions:
 *
 *  - FetchPath: given (PC, cycle), returns the cycle at which that
 *    instruction word is available to the fetch stage. The native
 *    implementation burst-fills I-cache lines critical-word-first; the
 *    CodePack implementation (sim module) routes misses through the
 *    decompressor model, which has no critical-word-first (decode is
 *    serial) but prefetches whole 16-instruction blocks.
 *
 *  - DataPath: D-cache with write-back/write-allocate backed by the same
 *    main-memory channel, so data misses and instruction misses contend.
 */

#ifndef CPS_PIPELINE_PATHS_HH
#define CPS_PIPELINE_PATHS_HH

#include <array>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "mem/main_memory.hh"

namespace cps
{

/** Abstract instruction-fetch port. */
class FetchPath
{
  public:
    virtual ~FetchPath() = default;

    /**
     * Requests the instruction word at @p addr at cycle @p now.
     * @return the cycle the word is available (>= now)
     */
    virtual Cycle fetchWord(Addr addr, Cycle now) = 0;

    /** Clears cache/fill state between runs. */
    virtual void reset() = 0;
};

/**
 * Tracks the in-flight line fill so that fetches into a line that is
 * still arriving see per-word availability (critical word first for
 * native code; decode order for CodePack).
 */
class LineFillTracker
{
  public:
    static constexpr unsigned kWords = 8;
    /** Outstanding fills tracked (demand fill + one prefetch). */
    static constexpr unsigned kEntries = 2;

    void
    record(Addr line_addr, const std::array<Cycle, kWords> &ready)
    {
        Entry &e = entries_[next_];
        next_ = (next_ + 1) % kEntries;
        e.valid = true;
        e.lineAddr = line_addr;
        e.ready = ready;
    }

    /** @return word availability if @p addr falls in a tracked line */
    bool
    lookup(Addr addr, Cycle &ready) const
    {
        for (const Entry &e : entries_) {
            if (e.valid && (addr & ~31u) == e.lineAddr) {
                ready = e.ready[(addr >> 2) & 7];
                return true;
            }
        }
        return false;
    }

    void
    clear()
    {
        for (Entry &e : entries_)
            e.valid = false;
        next_ = 0;
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr lineAddr = 0;
        std::array<Cycle, kWords> ready{};
    };

    Entry entries_[kEntries];
    unsigned next_ = 0;
};

/**
 * Common machinery for I-cache-fronted fetch paths: per-line access/miss
 * accounting (consecutive fetches into the same line count as one cache
 * access, as in SimpleScalar) and per-word availability for lines that
 * are still arriving. Subclasses supply the miss handler.
 */
class CachedFetchPath : public FetchPath
{
  public:
    CachedFetchPath(const CacheConfig &icache_cfg, StatSet &stats)
        : icache_(icache_cfg),
          statAccesses_(stats.scalar("icache.line_accesses")),
          statMisses_(stats.scalar("icache.misses")),
          statMissLatency_(stats.scalar("icache.miss_latency_total"))
    {
        cps_assert(icache_cfg.lineBytes == 32,
                   "the fetch paths model 32-byte I-cache lines");
    }

    Cycle
    fetchWord(Addr addr, Cycle now) override
    {
        Addr line = icache_.lineAddr(addr);
        if (line != lastLine_) {
            lastLine_ = line;
            statAccesses_.inc();
            // One set walk decides hit/miss and installs the line on a
            // miss (I-cache lines are never dirty; victim is ignored).
            CacheVictim victim;
            if (!icache_.accessFill(addr, false, victim)) {
                statMisses_.inc();
                fill_.record(line, fillLine(addr, now));
                // Critical-word latency of this miss (Figure 2 metric).
                Cycle ready;
                if (fill_.lookup(addr, ready) && ready > now)
                    statMissLatency_.inc(ready - now);
            }
        }
        Cycle ready;
        if (fill_.lookup(addr, ready))
            return std::max(now, ready);
        return now;
    }

    void
    reset() override
    {
        icache_.invalidateAll();
        fill_.clear();
        lastLine_ = kAddrInvalid;
        resetMissPath();
    }

    Cache &icache() { return icache_; }

  protected:
    /** Services a miss; returns per-word availability of the line. */
    virtual std::array<Cycle, 8> fillLine(Addr addr, Cycle now) = 0;

    /** Clears subclass miss-path state. */
    virtual void resetMissPath() {}

    /** Registers word-availability for a line a subclass fills on the
     *  side (e.g. a prefetch). */
    void
    recordExtraFill(Addr line_addr, const std::array<Cycle, 8> &ready)
    {
        fill_.record(line_addr, ready);
    }

  private:
    Cache icache_;
    LineFillTracker fill_;
    Addr lastLine_ = kAddrInvalid; // dedup per-line access stats
    Counter &statAccesses_;
    Counter &statMisses_;
    Counter &statMissLatency_;
};

/**
 * Native-code fetch path: I-cache backed by burst reads with
 * critical-word-first delivery (the paper gives native code exactly this
 * advantage, Figure 2-a).
 */
class NativeFetchPath : public CachedFetchPath
{
  public:
    NativeFetchPath(const CacheConfig &icache_cfg, MainMemory &mem,
                    StatSet &stats)
        : CachedFetchPath(icache_cfg, stats), mem_(mem)
    {}

  protected:
    std::array<Cycle, 8>
    fillLine(Addr addr, Cycle now) override
    {
        unsigned bus_bytes = mem_.timing().busBytes();
        BurstResult r = mem_.burstRead(now, 32);

        // Critical word first: delivery starts at the requested word and
        // wraps around the line.
        unsigned critical = (addr >> 2) & 7;
        std::array<Cycle, 8> ready{};
        for (unsigned j = 0; j < 8; ++j) {
            unsigned word = (critical + j) & 7;
            unsigned end_byte = (j + 1) * 4 - 1;
            ready[word] = r.arrivalOfByte(end_byte, bus_bytes);
        }
        return ready;
    }

  private:
    MainMemory &mem_;
};

/**
 * Native fetch path with a sequential next-line prefetcher.
 *
 * An extension experiment: the paper attributes part of CodePack's
 * speedup to the decompressor's implicit prefetch ("CodePack implements
 * prefetching behavior that the underlying processor does not have").
 * This path gives *native* code an equivalent: on a miss it fills the
 * requested line and also fetches the next line into the cache, so the
 * comparison isolates compression's bandwidth effect from prefetching.
 */
class NativePrefetchFetchPath : public CachedFetchPath
{
  public:
    NativePrefetchFetchPath(const CacheConfig &icache_cfg, MainMemory &mem,
                            StatSet &stats)
        : CachedFetchPath(icache_cfg, stats), mem_(mem),
          statPrefetches_(stats.scalar("icache.prefetches"))
    {}

  protected:
    std::array<Cycle, 8>
    fillLine(Addr addr, Cycle now) override
    {
        unsigned bus_bytes = mem_.timing().busBytes();
        BurstResult r = mem_.burstRead(now, 32);
        unsigned critical = (addr >> 2) & 7;
        std::array<Cycle, 8> ready{};
        for (unsigned j = 0; j < 8; ++j) {
            unsigned word = (critical + j) & 7;
            unsigned end_byte = (j + 1) * 4 - 1;
            ready[word] = r.arrivalOfByte(end_byte, bus_bytes);
        }

        // Prefetch the next line into the cache (if absent). The burst
        // queues behind the demand fill on the shared channel.
        Addr next = icache().lineAddr(addr) + 32;
        if (!icache().probe(next)) {
            statPrefetches_.inc();
            icache().fill(next);
            BurstResult p = mem_.burstRead(r.done, 32);
            std::array<Cycle, 8> pready{};
            for (unsigned w = 0; w < 8; ++w)
                pready[w] = p.arrivalOfByte((w + 1) * 4 - 1, bus_bytes);
            recordExtraFill(next, pready);
        }
        return ready;
    }

  private:
    MainMemory &mem_;
    Counter &statPrefetches_;
};

/**
 * Simulates fetch down the wrong path between a misprediction and its
 * resolution. The fetched words are never executed; what matters is the
 * timing side effects, which the paper's simulator (sim-outorder) also
 * has: wrong-path I-cache fills occupy the memory channel, pollute the
 * I-cache, and — under CodePack — replace the decompressor's output
 * buffer and index-cache contents.
 *
 * Wrong-path control flow is approximated as straight-line fetch from
 * @p start (we cannot execute the wrong path to follow its branches).
 */
inline void
simulateWrongPath(FetchPath &fetch, Addr start, Addr text_base,
                  Addr text_end, Cycle from, Cycle until, unsigned width)
{
    if (start == kAddrInvalid)
        return;
    Addr pc = start;
    Cycle t = from;
    while (t < until && pc >= text_base && pc + 4 <= text_end) {
        bool stalled = false;
        for (unsigned w = 0; w < width && pc + 4 <= text_end; ++w) {
            Cycle avail = fetch.fetchWord(pc, t);
            if (avail > t) {
                // Stalled on a wrong-path miss; the fill (and its
                // pollution) happens regardless of the squash.
                t = avail;
                stalled = true;
                break;
            }
            pc += 4;
        }
        if (!stalled)
            ++t;
    }
}

/** D-cache with write-back + write-allocate over the shared channel. */
class DataPath
{
  public:
    DataPath(const CacheConfig &dcache_cfg, MainMemory &mem, StatSet &stats)
        : dcache_(dcache_cfg), mem_(mem),
          statAccesses_(stats.scalar("dcache.accesses")),
          statMisses_(stats.scalar("dcache.misses")),
          statWritebacks_(stats.scalar("dcache.writebacks"))
    {}

    /**
     * Performs a timed D-cache access.
     * @param is_store stores allocate and dirty the line but never stall
     *        the requester (write-buffer semantics); the returned cycle
     *        for stores is when the cache accepted the store
     * @return cycle the data is available (loads) / accepted (stores)
     */
    Cycle
    access(Addr addr, bool is_store, Cycle now)
    {
        statAccesses_.inc();
        Cycle ready = now + 1; // cache hit latency
        // Single tag-store walk: lookup, allocation and (for stores)
        // the dirty-bit update all resolve against the same way.
        CacheVictim victim;
        if (!dcache_.accessFill(addr, is_store, victim)) {
            statMisses_.inc();
            BurstResult r = mem_.burstRead(now, dcache_.config().lineBytes);
            if (victim.valid && victim.dirty) {
                statWritebacks_.inc();
                mem_.burstWrite(r.done, dcache_.config().lineBytes);
            }
            if (!is_store)
                ready = r.done + 1;
        }
        return ready;
    }

    void reset() { dcache_.invalidateAll(); }

    Cache &dcache() { return dcache_; }

  private:
    Cache dcache_;
    MainMemory &mem_;
    Counter &statAccesses_;
    Counter &statMisses_;
    Counter &statWritebacks_;
};

} // namespace cps

#endif // CPS_PIPELINE_PATHS_HH
