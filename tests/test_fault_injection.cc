/**
 * @file
 * Fault-injection subsystem tests: seeded injectors are deterministic
 * and really mutate, and a decode round-trip over hundreds of seeded
 * corruptions always ends in detect-or-reject (zero silent wrong
 * decodes with CRCs on, zero crashes always).
 */

#include <gtest/gtest.h>

#include "codepack/compressor.hh"
#include "codepack/imagefile.hh"
#include "fault/campaign.hh"
#include "fault/injector.hh"
#include "progen/progen.hh"

namespace cps
{
namespace
{

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultRecord;
using fault::Outcome;

const codepack::CompressedImage &
sampleImage()
{
    static codepack::CompressedImage img =
        codepack::compress(generateProgram(findProfile("pegwit")));
    return img;
}

TEST(FaultInjector, SameSeedSameCorruption)
{
    std::vector<u8> pristine = codepack::encodeImage(sampleImage());
    for (FaultKind kind : fault::kAllFaultKinds) {
        std::vector<u8> a = pristine, b = pristine;
        FaultRecord ra = FaultInjector(0x1234).inject(a, kind);
        FaultRecord rb = FaultInjector(0x1234).inject(b, kind);
        EXPECT_EQ(a, b) << faultKindName(kind);
        EXPECT_EQ(ra.offset, rb.offset) << faultKindName(kind);
        EXPECT_EQ(ra.flips, rb.flips) << faultKindName(kind);
    }
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    std::vector<u8> pristine = codepack::encodeImage(sampleImage());
    // Across many seeds, bit-flips must not all hit the same place.
    std::vector<u8> first = pristine;
    FaultInjector(0).inject(first, FaultKind::BitFlip);
    bool diverged = false;
    for (u64 seed = 1; seed < 8 && !diverged; ++seed) {
        std::vector<u8> other = pristine;
        FaultInjector(seed).inject(other, FaultKind::BitFlip);
        diverged = other != first;
    }
    EXPECT_TRUE(diverged);
}

TEST(FaultInjector, EveryKindReallyMutates)
{
    std::vector<u8> pristine = codepack::encodeImage(sampleImage());
    for (FaultKind kind : fault::kAllFaultKinds) {
        for (u64 seed = 0; seed < 32; ++seed) {
            std::vector<u8> mut = pristine;
            FaultInjector(seed).inject(mut, kind);
            EXPECT_NE(mut, pristine)
                << faultKindName(kind) << " seed " << seed;
        }
    }
}

TEST(FaultInjector, TruncateAlwaysShortens)
{
    std::vector<u8> pristine = codepack::encodeImage(sampleImage());
    for (u64 seed = 0; seed < 16; ++seed) {
        std::vector<u8> mut = pristine;
        FaultRecord rec =
            FaultInjector(seed).inject(mut, FaultKind::Truncate);
        EXPECT_LT(mut.size(), pristine.size());
        EXPECT_EQ(mut.size(), rec.offset);
    }
}

TEST(FaultInjector, RecordDescribesItself)
{
    std::vector<u8> pristine = codepack::encodeImage(sampleImage());
    FaultRecord rec =
        FaultInjector(0xabc).inject(pristine, FaultKind::MultiBitFlip);
    std::string s = rec.describe();
    EXPECT_NE(s.find("multi-bit-flip"), std::string::npos) << s;
    EXPECT_NE(s.find("0xabc"), std::string::npos) << s;
}

TEST(FaultCampaign, DeterministicAcrossRuns)
{
    fault::CampaignConfig cfg;
    cfg.trials = 20;
    fault::CampaignResult a = fault::runCampaign(sampleImage(), cfg);
    fault::CampaignResult b = fault::runCampaign(sampleImage(), cfg);
    for (unsigned o = 0; o < fault::kNumOutcomes; ++o)
        EXPECT_EQ(a.byOutcome[o], b.byOutcome[o]);
}

TEST(FaultCampaign, CrcVerifiedDecodeDetectsOrRejectsEverything)
{
    fault::CampaignConfig cfg;
    cfg.trials = 40; // x5 kinds = 200 corruptions
    fault::CampaignResult res = fault::runCampaign(sampleImage(), cfg);
    EXPECT_EQ(res.trials, 200u);
    // Reaching this line at all proves no corruption crashed us; with
    // CRCs on none may be silently wrong either.
    EXPECT_EQ(res.silentlyWrong(), 0u)
        << res.firstSilentWrong.describe();
    EXPECT_EQ(res.count(Outcome::DetectedAtLoad) +
                  res.count(Outcome::RejectedInDecode) +
                  res.count(Outcome::SilentlyCorrect),
              res.trials);
    // And the campaign must actually be exercising the load-time
    // defences, not classifying everything as benign.
    EXPECT_GT(res.count(Outcome::DetectedAtLoad), 100u);
}

TEST(FaultCampaign, UncheckedCrcStillNeverCrashes)
{
    fault::CampaignConfig cfg;
    cfg.trials = 40;
    cfg.verifyCrc = false;
    fault::CampaignResult res = fault::runCampaign(sampleImage(), cfg);
    EXPECT_EQ(res.trials, 200u);
    // Truncations must still be caught by pure bounds checking.
    EXPECT_EQ(res.count(FaultKind::Truncate, Outcome::SilentlyWrong),
              0u);
    // In-stream damage may decode to wrong words without the CRC —
    // that is the gap the CRC exists to close. It must be a bounded
    // minority, not the norm, and everything else detect-or-reject.
    unsigned handled = res.count(Outcome::DetectedAtLoad) +
                       res.count(Outcome::RejectedInDecode);
    EXPECT_GT(handled, res.trials / 2);
}

TEST(FaultCampaign, SingleCorruptionClassifiesAgainstPristine)
{
    const codepack::CompressedImage &img = sampleImage();
    std::vector<u8> bytes = codepack::encodeImage(img);
    // An untouched image is (vacuously) silently correct.
    EXPECT_EQ(fault::classifyCorruption(img, bytes, true),
              Outcome::SilentlyCorrect);
    // A truncated one is detected at load even without CRCs.
    bytes.resize(bytes.size() / 2);
    EXPECT_EQ(fault::classifyCorruption(img, bytes, false),
              Outcome::DetectedAtLoad);
}

} // namespace
} // namespace cps
