/**
 * @file
 * Fundamental integer and simulation-time types shared by every module.
 */

#ifndef CPS_COMMON_TYPES_HH
#define CPS_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace cps
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Byte address in the simulated (native, uncompressed) address space. */
using Addr = u32;

/** Byte address in the compressed address space. */
using CAddr = u32;

/** Absolute simulation time in core clock cycles. */
using Cycle = u64;

/** Sentinel for "never" / "not yet scheduled". */
constexpr Cycle kCycleNever = ~static_cast<Cycle>(0);

/** Sentinel for an invalid address. */
constexpr Addr kAddrInvalid = ~static_cast<Addr>(0);

} // namespace cps

#endif // CPS_COMMON_TYPES_HH
