/**
 * @file
 * Fetch-path and data-path tests: I-cache miss handling with
 * critical-word-first, line-fill word availability, D-cache write-back
 * traffic, and wrong-path fetch simulation.
 */

#include <gtest/gtest.h>

#include "pipeline/paths.hh"

namespace cps
{
namespace
{

struct NativeEnv
{
    MainMemory mem;
    StatSet stats;
    NativeFetchPath fetch{CacheConfig{1024, 32, 2}, mem, stats};
};

TEST(NativeFetch, HitCostsNothing)
{
    NativeEnv env;
    env.fetch.fetchWord(0x1000, 0); // miss + fill
    // Far in the future, the line is resident: hits return 'now'.
    EXPECT_EQ(env.fetch.fetchWord(0x1000, 500), 500u);
    EXPECT_EQ(env.fetch.fetchWord(0x101c, 501), 501u);
}

TEST(NativeFetch, CriticalWordFirstOrdering)
{
    NativeEnv env;
    // Miss on word 5 of the line: it arrives in the first beat (t=10);
    // words 5,6,7 then wrap to 0..4.
    Cycle first = env.fetch.fetchWord(0x1014, 0);
    EXPECT_EQ(first, 10u);
    // Delivery order 5,6,7,0,1,2,3,4 over beats 10,10,12,12,14,14,16,16.
    EXPECT_EQ(env.fetch.fetchWord(0x1018, 10), 10u); // word 6, beat 0
    EXPECT_EQ(env.fetch.fetchWord(0x101c, 10), 12u); // word 7, beat 1
    EXPECT_EQ(env.fetch.fetchWord(0x1000, 10), 12u); // word 0, beat 1
    EXPECT_EQ(env.fetch.fetchWord(0x1010, 10), 16u); // word 4, last
}

TEST(NativeFetch, MissOnWordZeroIsSequential)
{
    NativeEnv env;
    EXPECT_EQ(env.fetch.fetchWord(0x2000, 0), 10u);
    EXPECT_EQ(env.fetch.fetchWord(0x2004, 10), 10u);
    EXPECT_EQ(env.fetch.fetchWord(0x2008, 10), 12u);
    EXPECT_EQ(env.fetch.fetchWord(0x201c, 10), 16u);
}

TEST(NativeFetch, StatsCountLineAccessesNotWords)
{
    NativeEnv env;
    env.fetch.fetchWord(0x1000, 0);
    env.fetch.fetchWord(0x1004, 1);
    env.fetch.fetchWord(0x1008, 2); // same line: one access
    env.fetch.fetchWord(0x1020, 3); // new line
    EXPECT_EQ(env.stats.value("icache.line_accesses"), 2u);
    EXPECT_EQ(env.stats.value("icache.misses"), 2u);
    // Returning to the first line counts again.
    env.fetch.fetchWord(0x1000, 50);
    EXPECT_EQ(env.stats.value("icache.line_accesses"), 3u);
    EXPECT_EQ(env.stats.value("icache.misses"), 2u);
}

TEST(NativeFetch, ResetInvalidates)
{
    NativeEnv env;
    env.fetch.fetchWord(0x1000, 0);
    env.fetch.reset();
    env.fetch.fetchWord(0x1000, 100);
    EXPECT_EQ(env.stats.value("icache.misses"), 2u);
}

TEST(LineFillTracker, TracksOnlyTheRecordedLine)
{
    LineFillTracker t;
    std::array<Cycle, 8> ready{10, 11, 12, 13, 14, 15, 16, 17};
    t.record(0x1000, ready);
    Cycle out = 0;
    EXPECT_TRUE(t.lookup(0x1004, out));
    EXPECT_EQ(out, 11u);
    EXPECT_TRUE(t.lookup(0x101c, out));
    EXPECT_EQ(out, 17u);
    EXPECT_FALSE(t.lookup(0x1020, out));
    t.clear();
    EXPECT_FALSE(t.lookup(0x1000, out));
}

// ------------------------------------------------------------ DataPath

struct DataEnv
{
    MainMemory mem;
    StatSet stats;
    DataPath data{CacheConfig{512, 16, 2}, mem, stats};
};

TEST(DataPath, HitLatencyIsOneCycle)
{
    DataEnv env;
    env.data.access(0x100, false, 0); // miss, fills
    Cycle ready = env.data.access(0x104, false, 100); // same 16B line
    EXPECT_EQ(ready, 101u);
}

TEST(DataPath, LoadMissWaitsForLine)
{
    DataEnv env;
    Cycle ready = env.data.access(0x100, false, 0);
    // 16-byte line on a 64-bit bus: beats at 10, 12; +1 cache cycle.
    EXPECT_EQ(ready, 13u);
}

TEST(DataPath, StoreMissDoesNotStallRequester)
{
    DataEnv env;
    Cycle ready = env.data.access(0x200, true, 0);
    EXPECT_EQ(ready, 1u); // accepted immediately (write buffer)
    EXPECT_EQ(env.stats.value("dcache.misses"), 1u);
    // The fill still occupied the channel.
    EXPECT_GT(env.mem.busyUntil(), 0u);
}

TEST(DataPath, DirtyEvictionWritesBack)
{
    DataEnv env;
    // 512B, 16B lines, 2-way -> 16 sets; same set: stride 256.
    env.data.access(0x000, true, 0);   // dirty line A
    env.data.access(0x100, false, 50); // line B, same set
    EXPECT_EQ(env.stats.value("dcache.writebacks"), 0u);
    env.data.access(0x200, false, 100); // evicts dirty A
    EXPECT_EQ(env.stats.value("dcache.writebacks"), 1u);
}

TEST(DataPath, CleanEvictionNoWriteback)
{
    DataEnv env;
    env.data.access(0x000, false, 0);
    env.data.access(0x100, false, 50);
    env.data.access(0x200, false, 100);
    EXPECT_EQ(env.stats.value("dcache.writebacks"), 0u);
}

TEST(DataPath, StatsCountAccessesAndMisses)
{
    DataEnv env;
    env.data.access(0x100, false, 0);
    env.data.access(0x100, false, 20);
    env.data.access(0x104, true, 40);
    EXPECT_EQ(env.stats.value("dcache.accesses"), 3u);
    EXPECT_EQ(env.stats.value("dcache.misses"), 1u);
}

// ------------------------------------------------------ wrong-path sim

TEST(WrongPath, FetchesAndPollutes)
{
    NativeEnv env;
    // Window of 30 cycles from t=0, width 4, starting at a cold line.
    simulateWrongPath(env.fetch, 0x3000, 0x3000, 0x4000, 0, 30, 4);
    // The first line missed and was filled (pollution happened).
    EXPECT_GE(env.stats.value("icache.misses"), 1u);
    EXPECT_TRUE(env.fetch.icache().probe(0x3000));
}

TEST(WrongPath, InvalidStartIsNoOp)
{
    NativeEnv env;
    simulateWrongPath(env.fetch, kAddrInvalid, 0x3000, 0x4000, 0, 100, 4);
    EXPECT_EQ(env.stats.value("icache.misses"), 0u);
}

TEST(WrongPath, StopsAtTextBounds)
{
    NativeEnv env;
    // Start right at the last word: may fetch it, then must stop.
    simulateWrongPath(env.fetch, 0x3ffc, 0x3000, 0x4000, 0, 1000, 4);
    EXPECT_LE(env.stats.value("icache.misses"), 1u);
    // Out-of-range start: nothing happens.
    StatSet before;
    simulateWrongPath(env.fetch, 0x5000, 0x3000, 0x4000, 0, 1000, 4);
    EXPECT_LE(env.stats.value("icache.misses"), 1u);
}

TEST(WrongPath, RespectsTimeWindow)
{
    NativeEnv env;
    // Zero-length window: nothing fetched.
    simulateWrongPath(env.fetch, 0x3000, 0x3000, 0x4000, 50, 50, 4);
    EXPECT_EQ(env.stats.value("icache.misses"), 0u);
}

TEST(WrongPath, OccupiesMemoryChannel)
{
    NativeEnv env;
    simulateWrongPath(env.fetch, 0x3000, 0x3000, 0x4000, 0, 12, 4);
    EXPECT_GT(env.mem.busyUntil(), 0u);
}


// --------------------------------------------- next-line prefetcher

TEST(NativePrefetch, PrefetchesTheNextLine)
{
    MainMemory mem;
    StatSet stats;
    NativePrefetchFetchPath fetch(CacheConfig{1024, 32, 2}, mem, stats);
    fetch.fetchWord(0x1000, 0); // miss: fills 0x1000 and prefetches 0x1020
    EXPECT_EQ(stats.value("icache.misses"), 1u);
    EXPECT_EQ(stats.value("icache.prefetches"), 1u);
    EXPECT_TRUE(fetch.icache().probe(0x1020));
    // The prefetched line costs no miss, only its arrival time.
    Cycle ready = fetch.fetchWord(0x1020, 17);
    EXPECT_EQ(stats.value("icache.misses"), 1u);
    EXPECT_GE(ready, 17u);
}

TEST(NativePrefetch, PrefetchedWordsArriveAfterDemandLine)
{
    MainMemory mem;
    StatSet stats;
    NativePrefetchFetchPath fetch(CacheConfig{1024, 32, 2}, mem, stats);
    Cycle demand = fetch.fetchWord(0x1000, 0);
    EXPECT_EQ(demand, 10u);
    // The prefetch burst queues behind the demand fill: its first word
    // arrives at demand-done (16) + 10.
    Cycle pre = fetch.fetchWord(0x1020, 10);
    EXPECT_EQ(pre, 26u);
}

TEST(NativePrefetch, NoPrefetchWhenNextLineResident)
{
    MainMemory mem;
    StatSet stats;
    NativePrefetchFetchPath fetch(CacheConfig{1024, 32, 2}, mem, stats);
    fetch.fetchWord(0x1000, 0);   // prefetches 0x1020
    fetch.fetchWord(0x1020, 100); // hit
    fetch.fetchWord(0x1040, 200); // miss: prefetches 0x1060
    EXPECT_EQ(stats.value("icache.prefetches"), 2u);
    fetch.fetchWord(0x1040, 300); // hit: no new prefetch
    EXPECT_EQ(stats.value("icache.prefetches"), 2u);
}

TEST(NativePrefetch, OccupiesExtraBandwidth)
{
    MainMemory plain_mem, pf_mem;
    StatSet s1, s2;
    NativeFetchPath plain(CacheConfig{1024, 32, 2}, plain_mem, s1);
    NativePrefetchFetchPath pf(CacheConfig{1024, 32, 2}, pf_mem, s2);
    plain.fetchWord(0x1000, 0);
    pf.fetchWord(0x1000, 0);
    EXPECT_GT(pf_mem.busyUntil(), plain_mem.busyUntil());
}

} // namespace
} // namespace cps
