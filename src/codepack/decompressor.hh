/**
 * @file
 * Functional CodePack decompression (the bit-exact inverse of the
 * compressor) plus the per-instruction bit positions the timing model
 * needs to know which memory beat completes which instruction.
 */

#ifndef CPS_CODEPACK_DECOMPRESSOR_HH
#define CPS_CODEPACK_DECOMPRESSOR_HH

#include <array>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"
#include "compressor.hh"

namespace cps
{
namespace codepack
{

/** One decompressed 16-instruction block. */
struct DecodedBlock
{
    std::array<u32, kBlockInsns> words{};
    /**
     * For each instruction, the bit offset (from the start of the block's
     * bytes) just past its final codeword bit. The serial decoder cannot
     * emit instruction i before the beat carrying this bit arrives.
     */
    std::array<u32, kBlockInsns> endBit{};
    u32 byteOffset = 0; ///< of the block within the compressed region
    u32 byteLen = 0;
    bool raw = false;
};

/** Stateless functional decompressor over a CompressedImage. */
class Decompressor
{
  public:
    explicit Decompressor(const CompressedImage &img) : img_(img) {}

    /**
     * Decompresses block @p block (0/1) of compression group @p group.
     * Walks the index table exactly as the hardware would.
     *
     * Trusted-input variant: any malformation panics. The simulator's
     * hot path uses this on images it compressed itself; anything that
     * came off disk should be decoded via tryDecompressBlock (or fully
     * vetted with tryDecompressAll once at load).
     */
    DecodedBlock decompressBlock(u32 group, u32 block) const;

    /**
     * Checked variant for untrusted images: an out-of-range index
     * entry, truncated codeword, or length cross-check failure comes
     * back as a structured DecodeError (bit offsets are absolute
     * within the compressed byte region) instead of aborting.
     */
    Result<DecodedBlock> tryDecompressBlock(u32 group, u32 block) const;

    /** Decompresses the flat block number @p flat_block. */
    DecodedBlock
    decompressFlatBlock(u32 flat_block) const
    {
        return decompressBlock(flat_block / kBlocksPerGroup,
                               flat_block % kBlocksPerGroup);
    }

    /** Decompresses the whole image back to instruction words. */
    std::vector<u32> decompressAll() const;

    /**
     * Checked whole-image decode: validates the image structure, then
     * decodes every block through the checked path. The error carries
     * the first failing group/block in its message.
     */
    Result<std::vector<u32>> tryDecompressAll() const;

    const CompressedImage &image() const { return img_; }

  private:
    const CompressedImage &img_;
};

/**
 * Structural validation of a decoded image: header-field consistency
 * (group/block counts vs paddedInsns, origTextBytes within the padded
 * region) and every index-table entry and block extent within the
 * compressed byte region. Does not decode codewords — use
 * Decompressor::tryDecompressAll for a full vet.
 */
Result<void> validateImage(const CompressedImage &img);

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_DECOMPRESSOR_HH
