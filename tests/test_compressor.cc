/**
 * @file
 * CodePack compressor/decompressor tests: bit-exact round trips, index
 * table correctness, block escapes, and Table 4 composition accounting.
 */

#include <gtest/gtest.h>

#include "codepack/decompressor.hh"
#include "common/rng.hh"
#include "isa/isa.hh"

namespace cps
{
namespace codepack
{
namespace
{

std::vector<u32>
repetitiveProgram(size_t n, u64 seed = 1)
{
    // Realistic-ish text: a small set of instruction templates repeated
    // with minor variation, so the dictionaries have something to bite.
    Rng rng(seed);
    std::vector<u32> words;
    words.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        Inst inst;
        switch (rng.below(5)) {
          case 0:
            inst.op = Op::Addu;
            inst.rd = static_cast<u8>(rng.below(8) + 8);
            inst.rs = static_cast<u8>(rng.below(8) + 8);
            inst.rt = static_cast<u8>(rng.below(8) + 8);
            break;
          case 1:
            inst.op = Op::Lw;
            inst.rt = static_cast<u8>(rng.below(8) + 8);
            inst.rs = kRegSp;
            inst.imm = static_cast<u16>(4 * rng.below(8));
            break;
          case 2:
            inst.op = Op::Addiu;
            inst.rt = static_cast<u8>(rng.below(4) + 8);
            inst.rs = static_cast<u8>(rng.below(4) + 8);
            inst.imm = static_cast<u16>(rng.below(4));
            break;
          case 3:
            inst.op = Op::Beq;
            inst.rs = static_cast<u8>(rng.below(4) + 8);
            inst.rt = 0;
            inst.imm = static_cast<u16>(rng.below(64));
            break;
          default:
            inst.op = Op::Ori;
            inst.rt = static_cast<u8>(rng.below(4) + 8);
            inst.rs = 0;
            inst.imm = static_cast<u16>(rng.next()); // noisy constants
            break;
        }
        words.push_back(encode(inst));
    }
    return words;
}

std::vector<u32>
randomWords(size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<u32> words;
    for (size_t i = 0; i < n; ++i)
        words.push_back(static_cast<u32>(rng.next()));
    return words;
}

TEST(Compressor, EmptyTextYieldsEmptyImage)
{
    CompressedImage img = compressWords({}, kTextBase);
    EXPECT_EQ(img.numGroups(), 0u);
    EXPECT_EQ(img.bytes.size(), 0u);
    EXPECT_EQ(img.origTextBytes, 0u);
}

TEST(Compressor, PadsToWholeGroups)
{
    CompressedImage img = compressWords({kNopWord}, kTextBase);
    EXPECT_EQ(img.paddedInsns, kGroupInsns);
    EXPECT_EQ(img.numGroups(), 1u);
    EXPECT_EQ(img.numBlocks(), 2u);
    EXPECT_EQ(img.origTextBytes, 4u);
}

TEST(Compressor, RoundTripRepetitiveProgram)
{
    auto words = repetitiveProgram(1000);
    CompressedImage img = compressWords(words, kTextBase);
    Decompressor d(img);
    EXPECT_EQ(d.decompressAll(), words);
}

TEST(Compressor, RoundTripRandomProgramsProperty)
{
    for (u64 seed = 1; seed <= 10; ++seed) {
        auto words = randomWords(64 + seed * 37, seed);
        CompressedImage img = compressWords(words, kTextBase);
        Decompressor d(img);
        EXPECT_EQ(d.decompressAll(), words) << "seed " << seed;
    }
}

TEST(Compressor, RoundTripBlockByBlock)
{
    auto words = repetitiveProgram(320, 9);
    CompressedImage img = compressWords(words, kTextBase);
    Decompressor d(img);
    for (u32 g = 0; g < img.numGroups(); ++g) {
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            DecodedBlock blk = d.decompressBlock(g, b);
            for (unsigned i = 0; i < kBlockInsns; ++i) {
                size_t idx = (static_cast<size_t>(g) * 2 + b) * 16 + i;
                u32 expect = idx < words.size() ? words[idx] : kNopWord;
                ASSERT_EQ(blk.words[i], expect)
                    << "group " << g << " block " << b << " insn " << i;
            }
        }
    }
}

TEST(Compressor, EndBitsAreMonotoneAndFinal)
{
    auto words = repetitiveProgram(64, 3);
    CompressedImage img = compressWords(words, kTextBase);
    Decompressor d(img);
    for (u32 fb = 0; fb < img.numBlocks(); ++fb) {
        DecodedBlock blk = d.decompressFlatBlock(fb);
        u32 prev = 0;
        for (unsigned i = 0; i < kBlockInsns; ++i) {
            EXPECT_GT(blk.endBit[i], prev);
            prev = blk.endBit[i];
        }
        EXPECT_EQ((prev + 7) / 8, blk.byteLen);
    }
}

TEST(Compressor, IndexTableOffsetsMatchBlockExtents)
{
    auto words = repetitiveProgram(500, 4);
    CompressedImage img = compressWords(words, kTextBase);
    for (u32 g = 0; g < img.numGroups(); ++g) {
        u32 entry = img.indexTable[g];
        const BlockExtent &b0 = img.blocks[g * 2];
        const BlockExtent &b1 = img.blocks[g * 2 + 1];
        EXPECT_EQ(idxFirstOffset(entry), b0.byteOffset);
        EXPECT_EQ(idxFirstOffset(entry) + idxSecondOffset(entry),
                  b1.byteOffset);
        EXPECT_EQ(idxFirstRaw(entry), b0.raw);
        EXPECT_EQ(idxSecondRaw(entry), b1.raw);
    }
}

TEST(Compressor, BlocksAreByteAlignedAndContiguous)
{
    auto words = repetitiveProgram(500, 5);
    CompressedImage img = compressWords(words, kTextBase);
    u32 expected_off = 0;
    for (const BlockExtent &b : img.blocks) {
        EXPECT_EQ(b.byteOffset, expected_off);
        expected_off += b.byteLen;
    }
    EXPECT_EQ(expected_off, img.bytes.size());
}

TEST(Compressor, RandomWordsEscapeToRawBlocks)
{
    // Pure random words compress terribly; with the escape enabled no
    // block may exceed its native 64 bytes.
    auto words = randomWords(256, 42);
    CompressedImage img = compressWords(words, kTextBase);
    bool any_raw = false;
    for (const BlockExtent &b : img.blocks) {
        EXPECT_LE(b.byteLen, kRawBlockBytes);
        any_raw |= b.raw;
    }
    EXPECT_TRUE(any_raw);
    // And the image never expands beyond native + overheads.
    EXPECT_LE(img.bytes.size(),
              words.size() * 4 + kGroupNativeBytes);
}

TEST(Compressor, EscapeDisabledAllowsExpansion)
{
    CompressorConfig cfg;
    cfg.allowRawBlocks = false;
    auto words = randomWords(256, 43);
    CompressedImage img = compressWords(words, kTextBase, cfg);
    bool any_over = false;
    for (const BlockExtent &b : img.blocks) {
        EXPECT_FALSE(b.raw);
        any_over |= b.byteLen > kRawBlockBytes;
    }
    EXPECT_TRUE(any_over);
    // Still round-trips.
    Decompressor d(img);
    EXPECT_EQ(d.decompressAll(), words);
}

TEST(Compressor, CompositionSumsToTotalSize)
{
    auto words = repetitiveProgram(2000, 6);
    CompressedImage img = compressWords(words, kTextBase);
    const Composition &c = img.comp;
    // Stream bits must equal the compressed region exactly.
    u64 stream_bits = c.compressedTagBits + c.dictIndexBits +
                      c.rawTagBits + c.rawBits + c.padBits;
    EXPECT_EQ(stream_bits, img.bytes.size() * 8);
    // And the total adds the index table and dictionaries.
    EXPECT_EQ(c.totalBits(), stream_bits + c.indexTableBits +
                                 c.dictionaryBits);
    EXPECT_EQ(c.indexTableBits, u64{img.numGroups()} * 32);
}

TEST(Compressor, RepetitiveCodeCompressesWell)
{
    auto words = repetitiveProgram(4000, 7);
    CompressedImage img = compressWords(words, kTextBase);
    // The paper reports 55-65% for real programs; templated code with
    // noisy constants should land well under 100%.
    EXPECT_LT(img.compressionRatio(), 0.80);
    EXPECT_GT(img.compressionRatio(), 0.20);
}

TEST(Compressor, AddressMathHelpers)
{
    auto words = repetitiveProgram(256, 8);
    CompressedImage img = compressWords(words, 0x10000);
    EXPECT_EQ(img.groupOf(0x10000), 0u);
    EXPECT_EQ(img.groupOf(0x10000 + 127), 0u);
    EXPECT_EQ(img.groupOf(0x10000 + 128), 1u);
    EXPECT_EQ(img.blockOf(0x10000), 0u);
    EXPECT_EQ(img.blockOf(0x10000 + 64), 1u);
    EXPECT_EQ(img.flatBlockOf(0x10000 + 128), 2u);
    EXPECT_EQ(img.insnIndexOf(0x10000 + 40), 10u);
}

TEST(Compressor, ProgramOverloadMatchesWordOverload)
{
    // compress(Program) must agree with compressWords on the same text.
    Program prog;
    prog.text.base = kTextBase;
    auto words = repetitiveProgram(100, 11);
    for (u32 w : words) {
        prog.text.bytes.push_back(static_cast<u8>(w));
        prog.text.bytes.push_back(static_cast<u8>(w >> 8));
        prog.text.bytes.push_back(static_cast<u8>(w >> 16));
        prog.text.bytes.push_back(static_cast<u8>(w >> 24));
    }
    CompressedImage a = compress(prog);
    CompressedImage b = compressWords(words, kTextBase);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.indexTable, b.indexTable);
    EXPECT_EQ(a.comp.totalBits(), b.comp.totalBits());
}

TEST(Compressor, DeterministicAcrossRuns)
{
    auto words = repetitiveProgram(512, 12);
    CompressedImage a = compressWords(words, kTextBase);
    CompressedImage b = compressWords(words, kTextBase);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.indexTable, b.indexTable);
}

TEST(Compressor, SimdAndScalarByteIdenticalAcrossThreadCounts)
{
    // The acceptance bar for the vectorized hot loops: SIMD-compressed
    // images must be byte-for-byte the scalar serial reference at any
    // thread count. A mixed program exercises the histogram, dictionary
    // match, zero-special and raw-escape paths together.
    auto words = repetitiveProgram(700, 21);
    Rng rng(22);
    for (size_t i = 0; i < words.size(); i += 9)
        words[i] = static_cast<u32>(rng.next()); // sprinkle raw escapes
    CompressorConfig ref_cfg;
    ref_cfg.threads = 1;
    ref_cfg.simd = false;
    CompressedImage ref = compressWords(words, kTextBase, ref_cfg);
    for (bool simd : {false, true})
        for (unsigned threads : {1u, 2u, 8u}) {
            CompressorConfig cfg;
            cfg.threads = threads;
            cfg.simd = simd;
            CompressedImage img = compressWords(words, kTextBase, cfg);
            EXPECT_EQ(img.bytes, ref.bytes)
                << "simd=" << simd << " threads=" << threads;
            EXPECT_EQ(img.indexTable, ref.indexTable)
                << "simd=" << simd << " threads=" << threads;
            EXPECT_EQ(img.comp.totalBits(), ref.comp.totalBits());
        }
}

TEST(Compressor, AllNopsCompressExtremelyWell)
{
    std::vector<u32> words(320, kNopWord);
    CompressedImage img = compressWords(words, kTextBase);
    // hi(0) -> one dictionary slot (6 bits), lo(0) -> the 2-bit zero
    // codeword: 8 bits per 32-bit instruction (ratio 0.25) plus index
    // table, dictionary and padding overheads.
    EXPECT_LT(img.compressionRatio(), 0.35);
    Decompressor d(img);
    EXPECT_EQ(d.decompressAll(), words);
}

} // namespace
} // namespace codepack
} // namespace cps
