/**
 * @file
 * Reproduces Table 7: speedup over native code from the index-cache
 * optimization alone, on the 4-issue machine — baseline CodePack, a
 * 64x4 fully-associative index cache, and a perfect index cache.
 *
 * Paper shape: the index cache recovers most of baseline CodePack's
 * loss; the perfect cache adds only a little more (its benefit is
 * bounded by how often indexes are re-fetched).
 */

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    TextTable t;
    t.setTitle("Table 7: Speedup due to index cache "
               "(over native, 4-issue)");
    t.addHeader({"Bench", "CodePack", "Index Cache (64x4)", "Perfect"});

    MachineConfig idx_cfg = baseline4Issue();
    idx_cfg.codeModel = CodeModel::CodePackCustom;
    idx_cfg.decomp.indexCacheLines = 64;
    idx_cfg.decomp.indexesPerLine = 4;
    idx_cfg.decomp.burstIndexFill = true;

    MachineConfig perf_cfg = baseline4Issue();
    perf_cfg.codeModel = CodeModel::CodePackCustom;
    perf_cfg.decomp.perfectIndexCache = true;

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        m.add(bench, baseline4Issue(), insns);
        m.add(bench, baseline4Issue().withCodeModel(CodeModel::CodePack),
              insns);
        m.add(bench, idx_cfg, insns);
        m.add(bench, perf_cfg, insns);
    }
    m.run();

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };
    for (const std::string &name : suite.names()) {
        harness::CellOutcome native = m.nextCell();
        harness::CellOutcome base = m.nextCell();
        harness::CellOutcome idx = m.nextCell();
        harness::CellOutcome perf = m.nextCell();
        t.addRow({name, harness::fmtCells(native, base, fmtSpd),
                  harness::fmtCells(native, idx, fmtSpd),
                  harness::fmtCells(native, perf, fmtSpd)});
    }
    t.print();
    return m.exitSummary();
}
