#include "imagefile.hh"

#include "common/byteio.hh"
#include "common/crc32.hh"
#include "common/logging.hh"
#include "decompressor.hh"

namespace cps
{
namespace codepack
{

namespace
{

constexpr char kMagic[8] = {'C', 'P', 'S', 'C', 'P', 'K', '2', '\0'};
constexpr size_t kMagicPrefixLen = 6; // "CPSCPK", before the version char
constexpr char kFormatVersion = '2';
// Images carrying a soft-error protection annex get their own version
// char: a v2 reader rejects them loudly instead of silently dropping
// the check arrays, and unprotected images stay byte-identical v2.
constexpr char kProtectedFormatVersion = '3';

void
putDictionary(std::vector<u8> &out, const Dictionary &dict)
{
    put8(out, static_cast<u8>(dict.numBanks()));
    for (unsigned b = 0; b < dict.numBanks(); ++b) {
        const std::vector<u16> &entries = dict.bankEntries(b);
        put16(out, static_cast<u16>(entries.size()));
        for (u16 e : entries)
            put16(out, e);
    }
}

/** Appends the CRC-32 of out[section_start..] (the section payload). */
void
sealSection(std::vector<u8> &out, size_t section_start)
{
    u32 crc = crc32(out.data() + section_start,
                    out.size() - section_start);
    put32(out, crc);
}

/**
 * Reads and verifies the u32 CRC that closes the section beginning at
 * @p section_start. @p what names the section for diagnostics.
 */
Result<void>
checkSection(ByteCursor &cur, const std::vector<u8> &bytes,
             size_t section_start, const char *what,
             const ImageLoadOptions &opts)
{
    size_t payload_end = cur.pos();
    u32 stored = cur.get32();
    if (!cur.ok())
        return decodeErrorAtByte(DecodeStatus::Truncated, payload_end,
                                 "file ends inside the %s CRC", what);
    if (!opts.verifyCrc)
        return {};
    u32 actual = crc32(bytes.data() + section_start,
                       payload_end - section_start);
    if (actual != stored)
        return decodeErrorAtByte(DecodeStatus::BadCrc, section_start,
                                 "%s CRC mismatch: stored 0x%08x, "
                                 "computed 0x%08x",
                                 what, stored, actual);
    return {};
}

Result<Dictionary>
getDictionaryChecked(ByteCursor &cur, Dictionary::Kind kind)
{
    const char *what = kind == Dictionary::Kind::High ? "high" : "low";
    size_t at = cur.pos();
    unsigned banks = cur.get8();
    unsigned expect = kind == Dictionary::Kind::High ? kNumHighBanks
                                                     : kNumLowBanks;
    if (!cur.ok())
        return decodeErrorAtByte(DecodeStatus::Truncated, at,
                                 "file ends at the %s dictionary bank "
                                 "count", what);
    if (banks != expect)
        return decodeErrorAtByte(DecodeStatus::Malformed, at,
                                 "%s dictionary declares %u banks, "
                                 "format has %u", what, banks, expect);
    std::vector<std::vector<u16>> entries(banks);
    const Bank *bank_desc =
        kind == Dictionary::Kind::High ? kHighBanks : kLowBanks;
    for (unsigned b = 0; b < banks; ++b) {
        at = cur.pos();
        u16 count = cur.get16();
        if (!cur.ok())
            return decodeErrorAtByte(DecodeStatus::Truncated, at,
                                     "file ends at %s dictionary bank "
                                     "%u entry count", what, b);
        if (count > bank_desc[b].entries())
            return decodeErrorAtByte(
                DecodeStatus::RangeError, at,
                "%s dictionary bank %u declares %u entries, bank "
                "holds %u", what, b, count, bank_desc[b].entries());
        if (size_t{count} * 2 > cur.remaining())
            return decodeErrorAtByte(
                DecodeStatus::Truncated, at,
                "%s dictionary bank %u declares %u entries but only "
                "%zu bytes remain", what, b, count, cur.remaining());
        entries[b].reserve(count);
        for (u16 i = 0; i < count; ++i)
            entries[b].push_back(cur.get16());
    }
    return Dictionary::fromBankEntries(kind, entries);
}

} // namespace

std::vector<u8>
encodeImage(const CompressedImage &img)
{
    std::vector<u8> out;
    for (char c : kMagic)
        out.push_back(static_cast<u8>(c));
    if (img.isProtected())
        out[kMagicPrefixLen] = static_cast<u8>(kProtectedFormatVersion);

    size_t start = out.size();
    put32(out, img.textBase);
    put32(out, img.origTextBytes);
    put32(out, img.paddedInsns);
    sealSection(out, start);

    start = out.size();
    put32(out, static_cast<u32>(img.indexTable.size()));
    for (u32 e : img.indexTable)
        put32(out, e);
    sealSection(out, start);

    start = out.size();
    put32(out, static_cast<u32>(img.bytes.size()));
    out.insert(out.end(), img.bytes.begin(), img.bytes.end());
    sealSection(out, start);

    start = out.size();
    putDictionary(out, img.highDict);
    putDictionary(out, img.lowDict);
    sealSection(out, start);

    start = out.size();
    put32(out, static_cast<u32>(img.blocks.size()));
    for (const BlockExtent &b : img.blocks) {
        put32(out, b.byteOffset);
        put32(out, b.byteLen);
        put8(out, b.raw ? 1 : 0);
    }
    sealSection(out, start);

    start = out.size();
    put64(out, img.comp.indexTableBits);
    put64(out, img.comp.dictionaryBits);
    put64(out, img.comp.compressedTagBits);
    put64(out, img.comp.dictIndexBits);
    put64(out, img.comp.rawTagBits);
    put64(out, img.comp.rawBits);
    put64(out, img.comp.padBits);
    sealSection(out, start);

    if (img.isProtected()) {
        start = out.size();
        put8(out, static_cast<u8>(img.protectKind));
        put32(out, static_cast<u32>(img.blockCheck.size()));
        out.insert(out.end(), img.blockCheck.begin(),
                   img.blockCheck.end());
        put32(out, static_cast<u32>(img.indexCheck.size()));
        out.insert(out.end(), img.indexCheck.begin(),
                   img.indexCheck.end());
        sealSection(out, start);
    }
    return out;
}

Result<CompressedImage>
decodeImageChecked(const std::vector<u8> &bytes,
                   const ImageLoadOptions &opts)
{
    ByteCursor cur(bytes);

    // Magic and version, diagnosed separately: an unrelated file and a
    // file from a different toolchain revision are different failures.
    auto prefix = cur.getBytes(kMagicPrefixLen);
    if (!cur.ok() ||
        std::memcmp(prefix.data(), kMagic, kMagicPrefixLen) != 0)
        return decodeErrorAtByte(DecodeStatus::BadMagic, 0,
                                 "not a compressed image (bad magic)");
    u8 version = cur.get8();
    u8 nul = cur.get8();
    if (!cur.ok() || nul != 0)
        return decodeErrorAtByte(DecodeStatus::BadMagic, kMagicPrefixLen,
                                 "malformed magic trailer");
    const bool protected_image =
        version == static_cast<u8>(kProtectedFormatVersion);
    if (version != static_cast<u8>(kFormatVersion) && !protected_image)
        return decodeErrorAtByte(DecodeStatus::BadVersion,
                                 kMagicPrefixLen,
                                 "unsupported image version '%c' "
                                 "(this build reads '%c' and '%c')",
                                 version, kFormatVersion,
                                 kProtectedFormatVersion);

    CompressedImage img;
    size_t section = cur.pos();
    img.textBase = cur.get32();
    img.origTextBytes = cur.get32();
    img.paddedInsns = cur.get32();
    if (!cur.ok())
        return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                 "file ends inside the header");
    if (Result<void> r = checkSection(cur, bytes, section, "header",
                                      opts); !r)
        return r.error();
    if (img.paddedInsns % kGroupInsns != 0)
        return decodeErrorAtByte(DecodeStatus::BadHeader, section,
                                 "paddedInsns %u is not a multiple of "
                                 "the group size %u",
                                 img.paddedInsns, kGroupInsns);
    if (img.origTextBytes % 4 != 0 ||
        img.origTextBytes > u64{img.paddedInsns} * 4)
        return decodeErrorAtByte(DecodeStatus::BadHeader, section,
                                 "origTextBytes %u inconsistent with "
                                 "%u padded instructions",
                                 img.origTextBytes, img.paddedInsns);

    // Index table. The count is validated against both the header and
    // the bytes actually present before anything is allocated.
    section = cur.pos();
    u32 groups = cur.get32();
    if (!cur.ok())
        return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                 "file ends at the index-table count");
    if (groups != img.paddedInsns / kGroupInsns)
        return decodeErrorAtByte(DecodeStatus::BadHeader, section,
                                 "index table declares %u groups, "
                                 "header implies %u",
                                 groups, img.paddedInsns / kGroupInsns);
    if (size_t{groups} * 4 > cur.remaining())
        return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                 "index table declares %u entries but "
                                 "only %zu bytes remain",
                                 groups, cur.remaining());
    img.indexTable.reserve(groups);
    for (u32 i = 0; i < groups; ++i)
        img.indexTable.push_back(cur.get32());
    if (Result<void> r = checkSection(cur, bytes, section,
                                      "index table", opts); !r)
        return r.error();

    // Compressed stream.
    section = cur.pos();
    u32 stream_len = cur.get32();
    if (!cur.ok())
        return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                 "file ends at the stream length");
    if (stream_len > cur.remaining())
        return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                 "stream declares %u bytes but only "
                                 "%zu remain",
                                 stream_len, cur.remaining());
    img.bytes = cur.getBytes(stream_len);
    if (Result<void> r = checkSection(cur, bytes, section, "stream",
                                      opts); !r)
        return r.error();

    // Dictionaries.
    section = cur.pos();
    Result<Dictionary> high =
        getDictionaryChecked(cur, Dictionary::Kind::High);
    if (!high)
        return high.error();
    Result<Dictionary> low =
        getDictionaryChecked(cur, Dictionary::Kind::Low);
    if (!low)
        return low.error();
    img.highDict = *high;
    img.lowDict = *low;
    if (Result<void> r = checkSection(cur, bytes, section,
                                      "dictionaries", opts); !r)
        return r.error();

    // Block extents.
    section = cur.pos();
    u32 num_blocks = cur.get32();
    if (!cur.ok())
        return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                 "file ends at the block-extent count");
    if (num_blocks != groups * kBlocksPerGroup)
        return decodeErrorAtByte(DecodeStatus::BadHeader, section,
                                 "%u block extents declared for %u "
                                 "groups", num_blocks, groups);
    if (size_t{num_blocks} * 9 > cur.remaining())
        return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                 "%u block extents declared but only "
                                 "%zu bytes remain",
                                 num_blocks, cur.remaining());
    img.blocks.reserve(num_blocks);
    for (u32 i = 0; i < num_blocks; ++i) {
        BlockExtent b;
        b.byteOffset = cur.get32();
        b.byteLen = cur.get32();
        b.raw = cur.get8() != 0;
        img.blocks.push_back(b);
    }
    if (Result<void> r = checkSection(cur, bytes, section,
                                      "block extents", opts); !r)
        return r.error();

    // Composition counters.
    section = cur.pos();
    img.comp.indexTableBits = cur.get64();
    img.comp.dictionaryBits = cur.get64();
    img.comp.compressedTagBits = cur.get64();
    img.comp.dictIndexBits = cur.get64();
    img.comp.rawTagBits = cur.get64();
    img.comp.rawBits = cur.get64();
    img.comp.padBits = cur.get64();
    if (!cur.ok())
        return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                 "file ends inside the composition "
                                 "counters");
    if (Result<void> r = checkSection(cur, bytes, section,
                                      "composition", opts); !r)
        return r.error();

    // Protection annex (v3 only): the declared kind dictates exactly
    // how many check bytes every block and index entry owns, so both
    // array lengths are fully determined by sections already decoded —
    // a corrupt length cannot smuggle in a short (or oversized) array.
    if (protected_image) {
        section = cur.pos();
        u8 kind_byte = cur.get8();
        if (!cur.ok())
            return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                     "file ends at the protection kind");
        if (kind_byte == 0 || kind_byte >= kNumProtectKinds)
            return decodeErrorAtByte(DecodeStatus::Malformed, section,
                                     "unknown protection kind %u",
                                     kind_byte);
        const ProtectKind kind = static_cast<ProtectKind>(kind_byte);
        std::vector<u32> off = blockCheckOffsets(kind, img.blocks);
        u32 block_check_len = cur.get32();
        if (!cur.ok())
            return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                     "file ends at the block-check "
                                     "length");
        if (block_check_len != off.back())
            return decodeErrorAtByte(DecodeStatus::Malformed, section,
                                     "block checks declare %u bytes, "
                                     "%s over these extents needs %u",
                                     block_check_len,
                                     protectKindName(kind), off.back());
        if (block_check_len > cur.remaining())
            return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                     "block checks declare %u bytes but "
                                     "only %zu remain",
                                     block_check_len, cur.remaining());
        img.blockCheck = cur.getBytes(block_check_len);
        u32 index_check_len = cur.get32();
        if (!cur.ok())
            return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                     "file ends at the index-check "
                                     "length");
        const u32 expect_index =
            groups * static_cast<u32>(indexCheckBytes(kind));
        if (index_check_len != expect_index)
            return decodeErrorAtByte(DecodeStatus::Malformed, section,
                                     "index checks declare %u bytes, "
                                     "%s over %u entries needs %u",
                                     index_check_len,
                                     protectKindName(kind), groups,
                                     expect_index);
        if (index_check_len > cur.remaining())
            return decodeErrorAtByte(DecodeStatus::Truncated, section,
                                     "index checks declare %u bytes but "
                                     "only %zu remain",
                                     index_check_len, cur.remaining());
        img.indexCheck = cur.getBytes(index_check_len);
        if (Result<void> r = checkSection(cur, bytes, section,
                                          "protection", opts); !r)
            return r.error();
        img.protectKind = kind;
        img.blockCheckOff = std::move(off);
        img.comp.protectionBits =
            (u64{img.blockCheck.size()} + img.indexCheck.size()) * 8;
    }

    if (cur.remaining() != 0)
        return decodeErrorAtByte(DecodeStatus::Malformed, cur.pos(),
                                 "%zu trailing bytes after the image",
                                 cur.remaining());

    // Structural cross-checks (index entries and extents in range).
    if (Result<void> r = validateImage(img); !r)
        return r.error();
    return img;
}

std::optional<CompressedImage>
decodeImage(const std::vector<u8> &bytes)
{
    Result<CompressedImage> r = decodeImageChecked(bytes);
    if (!r)
        return std::nullopt;
    return std::move(*r);
}

bool
saveImage(const CompressedImage &img, const std::string &path)
{
    return writeFileBytes(path, encodeImage(img));
}

Result<CompressedImage>
loadImageChecked(const std::string &path, const ImageLoadOptions &opts)
{
    auto bytes = readFileBytes(path);
    if (!bytes)
        return decodeErrorAtByte(DecodeStatus::Truncated, 0,
                                 "cannot read '%s'", path.c_str());
    return decodeImageChecked(*bytes, opts);
}

std::optional<CompressedImage>
loadImage(const std::string &path)
{
    Result<CompressedImage> r = loadImageChecked(path);
    if (!r)
        return std::nullopt;
    return std::move(*r);
}

} // namespace codepack
} // namespace cps
