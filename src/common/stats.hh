/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Simulator components register scalar counters with a StatSet; at the end
 * of a run the set can be dumped, queried by name, or folded into derived
 * ratios (miss rates, IPC). The design intentionally mirrors the spirit of
 * the SimpleScalar / gem5 stats packages at a fraction of the machinery.
 */

#ifndef CPS_COMMON_STATS_HH
#define CPS_COMMON_STATS_HH

#include <map>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace cps
{

/** A single named 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(u64 by = 1) { value_ += by; }
    void set(u64 v) { value_ = v; }
    u64 value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    u64 value_ = 0;
};

/**
 * A flat collection of counters addressed by dotted names, e.g.
 * "icache.misses". Components hold Counter references obtained from
 * scalar(); the set retains ownership and stable addresses.
 */
class StatSet
{
  public:
    StatSet() = default;
    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /**
     * Returns the counter registered under @p name, creating it on first
     * use. References remain valid for the life of the StatSet.
     */
    Counter &scalar(const std::string &name);

    /** Value of @p name; 0 when the counter was never registered. */
    u64 value(const std::string &name) const;

    /** True when a counter named @p name exists. */
    bool has(const std::string &name) const;

    /**
     * Ratio numerator/denominator of two counters.
     * @return 0.0 when the denominator is zero
     */
    double ratio(const std::string &num, const std::string &den) const;

    /** Resets every counter to zero. */
    void resetAll();

    /** Sorted (name, value) snapshot for dumping. */
    std::vector<std::pair<std::string, u64>> snapshot() const;

    /** Prints "name = value" lines to stdout, sorted by name. */
    void dump(const std::string &prefix = "") const;

  private:
    // std::map keeps iteration sorted and never invalidates references.
    std::map<std::string, Counter> counters_;
};

} // namespace cps

#endif // CPS_COMMON_STATS_HH
