#include "isa.hh"

#include <array>
#include <map>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace cps
{

namespace
{

// Primary opcode values (bits 31..26).
enum : u32
{
    kOpSpecial = 0, kOpRegimm = 1, kOpJ = 2, kOpJal = 3,
    kOpBeq = 4, kOpBne = 5, kOpBlez = 6, kOpBgtz = 7,
    kOpAddi = 8, kOpAddiu = 9, kOpSlti = 10, kOpSltiu = 11,
    kOpAndi = 12, kOpOri = 13, kOpXori = 14, kOpLui = 15,
    kOpCop1 = 17,
    kOpLb = 32, kOpLh = 33, kOpLw = 35, kOpLbu = 36, kOpLhu = 37,
    kOpSb = 40, kOpSh = 41, kOpSw = 43, kOpLwc1 = 49, kOpSwc1 = 57,
};

// SPECIAL funct values (bits 5..0 when the primary opcode is 0).
enum : u32
{
    kFnSll = 0, kFnSrl = 2, kFnSra = 3, kFnSllv = 4, kFnSrlv = 6,
    kFnSrav = 7, kFnJr = 8, kFnJalr = 9, kFnSyscall = 12, kFnBreak = 13,
    kFnMul = 24, kFnMulu = 25, kFnDiv = 26, kFnDivu = 27,
    kFnRem = 28, kFnRemu = 29,
    kFnAdd = 32, kFnAddu = 33, kFnSub = 34, kFnSubu = 35,
    kFnAnd = 36, kFnOr = 37, kFnXor = 38, kFnNor = 39,
    kFnSlt = 42, kFnSltu = 43,
};

// COP1 rs-field selectors and S-format functs.
enum : u32
{
    kCopMfc1 = 0, kCopMtc1 = 4, kCopBc = 8, kCopFmtS = 16, kCopFmtW = 20,
    kFpAdd = 0, kFpSub = 1, kFpMul = 2, kFpDiv = 3,
    kFpAbs = 5, kFpMov = 6, kFpNeg = 7,
    kFpCvtWS = 36, kFpCEq = 50, kFpCLt = 60, kFpCLe = 62,
    kFpCvtSW = 32,
};

struct OpDesc
{
    const char *name;
    InstClass cls;
    unsigned latency;
};

const OpDesc &
descFor(Op op)
{
    static const std::array<OpDesc, static_cast<size_t>(Op::kNumOps)> table =
        [] {
            std::array<OpDesc, static_cast<size_t>(Op::kNumOps)> t{};
            auto set = [&t](Op o, const char *n, InstClass c, unsigned l) {
                t[static_cast<size_t>(o)] = OpDesc{n, c, l};
            };
            set(Op::Invalid, "<invalid>", InstClass::Invalid, 1);
            set(Op::Add, "add", InstClass::IntAlu, 1);
            set(Op::Addu, "addu", InstClass::IntAlu, 1);
            set(Op::Sub, "sub", InstClass::IntAlu, 1);
            set(Op::Subu, "subu", InstClass::IntAlu, 1);
            set(Op::And, "and", InstClass::IntAlu, 1);
            set(Op::Or, "or", InstClass::IntAlu, 1);
            set(Op::Xor, "xor", InstClass::IntAlu, 1);
            set(Op::Nor, "nor", InstClass::IntAlu, 1);
            set(Op::Slt, "slt", InstClass::IntAlu, 1);
            set(Op::Sltu, "sltu", InstClass::IntAlu, 1);
            set(Op::Sll, "sll", InstClass::IntAlu, 1);
            set(Op::Srl, "srl", InstClass::IntAlu, 1);
            set(Op::Sra, "sra", InstClass::IntAlu, 1);
            set(Op::Sllv, "sllv", InstClass::IntAlu, 1);
            set(Op::Srlv, "srlv", InstClass::IntAlu, 1);
            set(Op::Srav, "srav", InstClass::IntAlu, 1);
            set(Op::Mul, "mul", InstClass::IntMult, 3);
            set(Op::Mulu, "mulu", InstClass::IntMult, 3);
            set(Op::Div, "div", InstClass::IntDiv, 20);
            set(Op::Divu, "divu", InstClass::IntDiv, 20);
            set(Op::Rem, "rem", InstClass::IntDiv, 20);
            set(Op::Remu, "remu", InstClass::IntDiv, 20);
            set(Op::Addi, "addi", InstClass::IntAlu, 1);
            set(Op::Addiu, "addiu", InstClass::IntAlu, 1);
            set(Op::Slti, "slti", InstClass::IntAlu, 1);
            set(Op::Sltiu, "sltiu", InstClass::IntAlu, 1);
            set(Op::Andi, "andi", InstClass::IntAlu, 1);
            set(Op::Ori, "ori", InstClass::IntAlu, 1);
            set(Op::Xori, "xori", InstClass::IntAlu, 1);
            set(Op::Lui, "lui", InstClass::IntAlu, 1);
            set(Op::Lb, "lb", InstClass::Load, 1);
            set(Op::Lh, "lh", InstClass::Load, 1);
            set(Op::Lw, "lw", InstClass::Load, 1);
            set(Op::Lbu, "lbu", InstClass::Load, 1);
            set(Op::Lhu, "lhu", InstClass::Load, 1);
            set(Op::Sb, "sb", InstClass::Store, 1);
            set(Op::Sh, "sh", InstClass::Store, 1);
            set(Op::Sw, "sw", InstClass::Store, 1);
            set(Op::Lwc1, "lwc1", InstClass::Load, 1);
            set(Op::Swc1, "swc1", InstClass::Store, 1);
            set(Op::J, "j", InstClass::Jump, 1);
            set(Op::Jal, "jal", InstClass::Jump, 1);
            set(Op::Jr, "jr", InstClass::JumpReg, 1);
            set(Op::Jalr, "jalr", InstClass::JumpReg, 1);
            set(Op::Beq, "beq", InstClass::Branch, 1);
            set(Op::Bne, "bne", InstClass::Branch, 1);
            set(Op::Blez, "blez", InstClass::Branch, 1);
            set(Op::Bgtz, "bgtz", InstClass::Branch, 1);
            set(Op::Bltz, "bltz", InstClass::Branch, 1);
            set(Op::Bgez, "bgez", InstClass::Branch, 1);
            set(Op::Bc1t, "bc1t", InstClass::Branch, 1);
            set(Op::Bc1f, "bc1f", InstClass::Branch, 1);
            set(Op::AddS, "add.s", InstClass::FpAlu, 2);
            set(Op::SubS, "sub.s", InstClass::FpAlu, 2);
            set(Op::MulS, "mul.s", InstClass::FpMult, 4);
            set(Op::DivS, "div.s", InstClass::FpDiv, 12);
            set(Op::AbsS, "abs.s", InstClass::FpAlu, 2);
            set(Op::NegS, "neg.s", InstClass::FpAlu, 2);
            set(Op::MovS, "mov.s", InstClass::FpAlu, 2);
            set(Op::CvtSW, "cvt.s.w", InstClass::FpCvt, 2);
            set(Op::CvtWS, "cvt.w.s", InstClass::FpCvt, 2);
            set(Op::CEqS, "c.eq.s", InstClass::FpAlu, 2);
            set(Op::CLtS, "c.lt.s", InstClass::FpAlu, 2);
            set(Op::CLeS, "c.le.s", InstClass::FpAlu, 2);
            set(Op::Mtc1, "mtc1", InstClass::FpCvt, 1);
            set(Op::Mfc1, "mfc1", InstClass::FpCvt, 1);
            set(Op::Syscall, "syscall", InstClass::Syscall, 1);
            set(Op::Break, "break", InstClass::Syscall, 1);
            return t;
        }();
    return table[static_cast<size_t>(op)];
}

u32
rType(u32 funct, u32 rs, u32 rt, u32 rd, u32 shamt)
{
    u32 w = 0;
    w = insertBits(w, 26, 6, kOpSpecial);
    w = insertBits(w, 21, 5, rs);
    w = insertBits(w, 16, 5, rt);
    w = insertBits(w, 11, 5, rd);
    w = insertBits(w, 6, 5, shamt);
    w = insertBits(w, 0, 6, funct);
    return w;
}

u32
iType(u32 opcode, u32 rs, u32 rt, u32 imm)
{
    u32 w = 0;
    w = insertBits(w, 26, 6, opcode);
    w = insertBits(w, 21, 5, rs);
    w = insertBits(w, 16, 5, rt);
    w = insertBits(w, 0, 16, imm);
    return w;
}

u32
fpType(u32 fmt, u32 ft, u32 fs, u32 fd, u32 funct)
{
    u32 w = 0;
    w = insertBits(w, 26, 6, kOpCop1);
    w = insertBits(w, 21, 5, fmt);
    w = insertBits(w, 16, 5, ft);
    w = insertBits(w, 11, 5, fs);
    w = insertBits(w, 6, 5, fd);
    w = insertBits(w, 0, 6, funct);
    return w;
}

} // namespace

u32
encode(const Inst &inst)
{
    switch (inst.op) {
      case Op::Sll: return rType(kFnSll, 0, inst.rt, inst.rd, inst.shamt);
      case Op::Srl: return rType(kFnSrl, 0, inst.rt, inst.rd, inst.shamt);
      case Op::Sra: return rType(kFnSra, 0, inst.rt, inst.rd, inst.shamt);
      case Op::Sllv: return rType(kFnSllv, inst.rs, inst.rt, inst.rd, 0);
      case Op::Srlv: return rType(kFnSrlv, inst.rs, inst.rt, inst.rd, 0);
      case Op::Srav: return rType(kFnSrav, inst.rs, inst.rt, inst.rd, 0);
      case Op::Jr: return rType(kFnJr, inst.rs, 0, 0, 0);
      case Op::Jalr: return rType(kFnJalr, inst.rs, 0, inst.rd, 0);
      case Op::Syscall: return rType(kFnSyscall, 0, 0, 0, 0);
      case Op::Break: return rType(kFnBreak, 0, 0, 0, 0);
      case Op::Mul: return rType(kFnMul, inst.rs, inst.rt, inst.rd, 0);
      case Op::Mulu: return rType(kFnMulu, inst.rs, inst.rt, inst.rd, 0);
      case Op::Div: return rType(kFnDiv, inst.rs, inst.rt, inst.rd, 0);
      case Op::Divu: return rType(kFnDivu, inst.rs, inst.rt, inst.rd, 0);
      case Op::Rem: return rType(kFnRem, inst.rs, inst.rt, inst.rd, 0);
      case Op::Remu: return rType(kFnRemu, inst.rs, inst.rt, inst.rd, 0);
      case Op::Add: return rType(kFnAdd, inst.rs, inst.rt, inst.rd, 0);
      case Op::Addu: return rType(kFnAddu, inst.rs, inst.rt, inst.rd, 0);
      case Op::Sub: return rType(kFnSub, inst.rs, inst.rt, inst.rd, 0);
      case Op::Subu: return rType(kFnSubu, inst.rs, inst.rt, inst.rd, 0);
      case Op::And: return rType(kFnAnd, inst.rs, inst.rt, inst.rd, 0);
      case Op::Or: return rType(kFnOr, inst.rs, inst.rt, inst.rd, 0);
      case Op::Xor: return rType(kFnXor, inst.rs, inst.rt, inst.rd, 0);
      case Op::Nor: return rType(kFnNor, inst.rs, inst.rt, inst.rd, 0);
      case Op::Slt: return rType(kFnSlt, inst.rs, inst.rt, inst.rd, 0);
      case Op::Sltu: return rType(kFnSltu, inst.rs, inst.rt, inst.rd, 0);

      case Op::Bltz: return iType(kOpRegimm, inst.rs, 0, inst.imm);
      case Op::Bgez: return iType(kOpRegimm, inst.rs, 1, inst.imm);

      case Op::J: {
          u32 w = insertBits(0, 26, 6, kOpJ);
          return insertBits(w, 0, 26, inst.target);
      }
      case Op::Jal: {
          u32 w = insertBits(0, 26, 6, kOpJal);
          return insertBits(w, 0, 26, inst.target);
      }

      case Op::Beq: return iType(kOpBeq, inst.rs, inst.rt, inst.imm);
      case Op::Bne: return iType(kOpBne, inst.rs, inst.rt, inst.imm);
      case Op::Blez: return iType(kOpBlez, inst.rs, 0, inst.imm);
      case Op::Bgtz: return iType(kOpBgtz, inst.rs, 0, inst.imm);

      case Op::Addi: return iType(kOpAddi, inst.rs, inst.rt, inst.imm);
      case Op::Addiu: return iType(kOpAddiu, inst.rs, inst.rt, inst.imm);
      case Op::Slti: return iType(kOpSlti, inst.rs, inst.rt, inst.imm);
      case Op::Sltiu: return iType(kOpSltiu, inst.rs, inst.rt, inst.imm);
      case Op::Andi: return iType(kOpAndi, inst.rs, inst.rt, inst.imm);
      case Op::Ori: return iType(kOpOri, inst.rs, inst.rt, inst.imm);
      case Op::Xori: return iType(kOpXori, inst.rs, inst.rt, inst.imm);
      case Op::Lui: return iType(kOpLui, 0, inst.rt, inst.imm);

      case Op::Lb: return iType(kOpLb, inst.rs, inst.rt, inst.imm);
      case Op::Lh: return iType(kOpLh, inst.rs, inst.rt, inst.imm);
      case Op::Lw: return iType(kOpLw, inst.rs, inst.rt, inst.imm);
      case Op::Lbu: return iType(kOpLbu, inst.rs, inst.rt, inst.imm);
      case Op::Lhu: return iType(kOpLhu, inst.rs, inst.rt, inst.imm);
      case Op::Sb: return iType(kOpSb, inst.rs, inst.rt, inst.imm);
      case Op::Sh: return iType(kOpSh, inst.rs, inst.rt, inst.imm);
      case Op::Sw: return iType(kOpSw, inst.rs, inst.rt, inst.imm);
      case Op::Lwc1: return iType(kOpLwc1, inst.rs, inst.rt, inst.imm);
      case Op::Swc1: return iType(kOpSwc1, inst.rs, inst.rt, inst.imm);

      case Op::Bc1t: return iType(kOpCop1, kCopBc, 1, inst.imm);
      case Op::Bc1f: return iType(kOpCop1, kCopBc, 0, inst.imm);
      case Op::Mfc1: return fpType(kCopMfc1, inst.rt, inst.rd, 0, 0);
      case Op::Mtc1: return fpType(kCopMtc1, inst.rt, inst.rd, 0, 0);

      case Op::AddS:
        return fpType(kCopFmtS, inst.rt, inst.rd, inst.shamt, kFpAdd);
      case Op::SubS:
        return fpType(kCopFmtS, inst.rt, inst.rd, inst.shamt, kFpSub);
      case Op::MulS:
        return fpType(kCopFmtS, inst.rt, inst.rd, inst.shamt, kFpMul);
      case Op::DivS:
        return fpType(kCopFmtS, inst.rt, inst.rd, inst.shamt, kFpDiv);
      case Op::AbsS:
        return fpType(kCopFmtS, 0, inst.rd, inst.shamt, kFpAbs);
      case Op::MovS:
        return fpType(kCopFmtS, 0, inst.rd, inst.shamt, kFpMov);
      case Op::NegS:
        return fpType(kCopFmtS, 0, inst.rd, inst.shamt, kFpNeg);
      case Op::CvtWS:
        return fpType(kCopFmtS, 0, inst.rd, inst.shamt, kFpCvtWS);
      case Op::CvtSW:
        return fpType(kCopFmtW, 0, inst.rd, inst.shamt, kFpCvtSW);
      case Op::CEqS:
        return fpType(kCopFmtS, inst.rt, inst.rd, 0, kFpCEq);
      case Op::CLtS:
        return fpType(kCopFmtS, inst.rt, inst.rd, 0, kFpCLt);
      case Op::CLeS:
        return fpType(kCopFmtS, inst.rt, inst.rd, 0, kFpCLe);

      case Op::Invalid:
      case Op::kNumOps:
        break;
    }
    cps_panic("encode: unsupported op %d", static_cast<int>(inst.op));
}

Inst
decode(u32 word)
{
    Inst inst;
    inst.raw = word;
    inst.rs = static_cast<u8>(bitsOf(word, 21, 5));
    inst.rt = static_cast<u8>(bitsOf(word, 16, 5));
    inst.rd = static_cast<u8>(bitsOf(word, 11, 5));
    inst.shamt = static_cast<u8>(bitsOf(word, 6, 5));
    inst.imm = static_cast<u16>(bitsOf(word, 0, 16));
    inst.target = bitsOf(word, 0, 26);

    u32 opcode = bitsOf(word, 26, 6);
    u32 funct = bitsOf(word, 0, 6);

    switch (opcode) {
      case kOpSpecial:
        switch (funct) {
          case kFnSll: inst.op = Op::Sll; break;
          case kFnSrl: inst.op = Op::Srl; break;
          case kFnSra: inst.op = Op::Sra; break;
          case kFnSllv: inst.op = Op::Sllv; break;
          case kFnSrlv: inst.op = Op::Srlv; break;
          case kFnSrav: inst.op = Op::Srav; break;
          case kFnJr: inst.op = Op::Jr; break;
          case kFnJalr: inst.op = Op::Jalr; break;
          case kFnSyscall: inst.op = Op::Syscall; break;
          case kFnBreak: inst.op = Op::Break; break;
          case kFnMul: inst.op = Op::Mul; break;
          case kFnMulu: inst.op = Op::Mulu; break;
          case kFnDiv: inst.op = Op::Div; break;
          case kFnDivu: inst.op = Op::Divu; break;
          case kFnRem: inst.op = Op::Rem; break;
          case kFnRemu: inst.op = Op::Remu; break;
          case kFnAdd: inst.op = Op::Add; break;
          case kFnAddu: inst.op = Op::Addu; break;
          case kFnSub: inst.op = Op::Sub; break;
          case kFnSubu: inst.op = Op::Subu; break;
          case kFnAnd: inst.op = Op::And; break;
          case kFnOr: inst.op = Op::Or; break;
          case kFnXor: inst.op = Op::Xor; break;
          case kFnNor: inst.op = Op::Nor; break;
          case kFnSlt: inst.op = Op::Slt; break;
          case kFnSltu: inst.op = Op::Sltu; break;
          default: inst.op = Op::Invalid; break;
        }
        break;
      case kOpRegimm:
        inst.op = (inst.rt == 0) ? Op::Bltz
                : (inst.rt == 1) ? Op::Bgez : Op::Invalid;
        break;
      case kOpJ: inst.op = Op::J; break;
      case kOpJal: inst.op = Op::Jal; break;
      case kOpBeq: inst.op = Op::Beq; break;
      case kOpBne: inst.op = Op::Bne; break;
      case kOpBlez: inst.op = Op::Blez; break;
      case kOpBgtz: inst.op = Op::Bgtz; break;
      case kOpAddi: inst.op = Op::Addi; break;
      case kOpAddiu: inst.op = Op::Addiu; break;
      case kOpSlti: inst.op = Op::Slti; break;
      case kOpSltiu: inst.op = Op::Sltiu; break;
      case kOpAndi: inst.op = Op::Andi; break;
      case kOpOri: inst.op = Op::Ori; break;
      case kOpXori: inst.op = Op::Xori; break;
      case kOpLui: inst.op = Op::Lui; break;
      case kOpCop1:
        switch (inst.rs) {
          case kCopMfc1: inst.op = Op::Mfc1; break;
          case kCopMtc1: inst.op = Op::Mtc1; break;
          case kCopBc:
            inst.op = (inst.rt == 1) ? Op::Bc1t
                    : (inst.rt == 0) ? Op::Bc1f : Op::Invalid;
            break;
          case kCopFmtS:
            switch (funct) {
              case kFpAdd: inst.op = Op::AddS; break;
              case kFpSub: inst.op = Op::SubS; break;
              case kFpMul: inst.op = Op::MulS; break;
              case kFpDiv: inst.op = Op::DivS; break;
              case kFpAbs: inst.op = Op::AbsS; break;
              case kFpMov: inst.op = Op::MovS; break;
              case kFpNeg: inst.op = Op::NegS; break;
              case kFpCvtWS: inst.op = Op::CvtWS; break;
              case kFpCEq: inst.op = Op::CEqS; break;
              case kFpCLt: inst.op = Op::CLtS; break;
              case kFpCLe: inst.op = Op::CLeS; break;
              default: inst.op = Op::Invalid; break;
            }
            break;
          case kCopFmtW:
            inst.op = (funct == kFpCvtSW) ? Op::CvtSW : Op::Invalid;
            break;
          default: inst.op = Op::Invalid; break;
        }
        break;
      case kOpLb: inst.op = Op::Lb; break;
      case kOpLh: inst.op = Op::Lh; break;
      case kOpLw: inst.op = Op::Lw; break;
      case kOpLbu: inst.op = Op::Lbu; break;
      case kOpLhu: inst.op = Op::Lhu; break;
      case kOpSb: inst.op = Op::Sb; break;
      case kOpSh: inst.op = Op::Sh; break;
      case kOpSw: inst.op = Op::Sw; break;
      case kOpLwc1: inst.op = Op::Lwc1; break;
      case kOpSwc1: inst.op = Op::Swc1; break;
      default: inst.op = Op::Invalid; break;
    }
    return inst;
}

InstInfo
analyze(const Inst &inst)
{
    InstInfo info;
    const OpDesc &d = descFor(inst.op);
    info.cls = d.cls;
    info.latency = d.latency;

    auto gpr = [](unsigned r) { return static_cast<int>(r); };
    auto fpr = [](unsigned r) { return kRegFprBase + static_cast<int>(r); };

    switch (inst.op) {
      // rd <- rs op rt
      case Op::Add: case Op::Addu: case Op::Sub: case Op::Subu:
      case Op::And: case Op::Or: case Op::Xor: case Op::Nor:
      case Op::Slt: case Op::Sltu: case Op::Sllv: case Op::Srlv:
      case Op::Srav: case Op::Mul: case Op::Mulu: case Op::Div:
      case Op::Divu: case Op::Rem: case Op::Remu:
        info.dest = gpr(inst.rd);
        info.src1 = gpr(inst.rs);
        info.src2 = gpr(inst.rt);
        break;

      // rd <- rt shift shamt
      case Op::Sll: case Op::Srl: case Op::Sra:
        info.dest = gpr(inst.rd);
        info.src1 = gpr(inst.rt);
        break;

      // rt <- rs op imm
      case Op::Addi: case Op::Addiu: case Op::Slti: case Op::Sltiu:
      case Op::Andi: case Op::Ori: case Op::Xori:
        info.dest = gpr(inst.rt);
        info.src1 = gpr(inst.rs);
        break;

      case Op::Lui:
        info.dest = gpr(inst.rt);
        break;

      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu:
        info.dest = gpr(inst.rt);
        info.src1 = gpr(inst.rs);
        info.isMem = true;
        break;
      case Op::Lwc1:
        info.dest = fpr(inst.rt);
        info.src1 = gpr(inst.rs);
        info.isMem = true;
        break;
      case Op::Sb: case Op::Sh: case Op::Sw:
        info.src1 = gpr(inst.rs);
        info.src2 = gpr(inst.rt);
        info.isMem = true;
        break;
      case Op::Swc1:
        info.src1 = gpr(inst.rs);
        info.src2 = fpr(inst.rt);
        info.isMem = true;
        break;

      case Op::J:
        info.isControl = true;
        break;
      case Op::Jal:
        info.dest = gpr(kRegRa);
        info.isControl = true;
        break;
      case Op::Jr:
        info.src1 = gpr(inst.rs);
        info.isControl = true;
        break;
      case Op::Jalr:
        info.dest = gpr(inst.rd);
        info.src1 = gpr(inst.rs);
        info.isControl = true;
        break;

      case Op::Beq: case Op::Bne:
        info.src1 = gpr(inst.rs);
        info.src2 = gpr(inst.rt);
        info.isControl = true;
        break;
      case Op::Blez: case Op::Bgtz: case Op::Bltz: case Op::Bgez:
        info.src1 = gpr(inst.rs);
        info.isControl = true;
        break;
      case Op::Bc1t: case Op::Bc1f:
        info.src1 = kRegFcc;
        info.isControl = true;
        break;

      // fd <- fs op ft
      case Op::AddS: case Op::SubS: case Op::MulS: case Op::DivS:
        info.dest = fpr(inst.shamt);
        info.src1 = fpr(inst.rd);
        info.src2 = fpr(inst.rt);
        break;
      // fd <- op fs
      case Op::AbsS: case Op::NegS: case Op::MovS: case Op::CvtSW:
      case Op::CvtWS:
        info.dest = fpr(inst.shamt);
        info.src1 = fpr(inst.rd);
        break;
      // fcc <- fs cmp ft
      case Op::CEqS: case Op::CLtS: case Op::CLeS:
        info.dest = kRegFcc;
        info.src1 = fpr(inst.rd);
        info.src2 = fpr(inst.rt);
        break;
      case Op::Mtc1:
        info.dest = fpr(inst.rd);
        info.src1 = gpr(inst.rt);
        break;
      case Op::Mfc1:
        info.dest = gpr(inst.rt);
        info.src1 = fpr(inst.rd);
        break;

      case Op::Syscall:
        // Syscalls read/write GPRs by convention; pipelines serialise
        // around them, so precise register lists are not required.
        info.src1 = gpr(kRegV0);
        info.src2 = gpr(kRegA0);
        break;
      case Op::Break:
        break;

      case Op::Invalid:
      case Op::kNumOps:
        info.cls = InstClass::Invalid;
        break;
    }

    // Writes to $zero are discarded; drop the dependence edge too.
    if (info.dest == gpr(kRegZero))
        info.dest = kRegNone;
    // Reads of $zero never stall.
    if (info.src1 == gpr(kRegZero))
        info.src1 = kRegNone;
    if (info.src2 == gpr(kRegZero))
        info.src2 = kRegNone;

    // The canonical NOP (sll $zero, $zero, 0), detected structurally so
    // hand-built Inst values (raw == 0) classify correctly too.
    if (inst.op == Op::Sll && inst.rd == 0 && inst.rt == 0 &&
        inst.shamt == 0) {
        info.cls = InstClass::Nop;
    }

    return info;
}

const char *
mnemonic(Op op)
{
    return descFor(op).name;
}

std::optional<Op>
opFromMnemonic(const std::string &name)
{
    static const std::map<std::string, Op> table = [] {
        std::map<std::string, Op> m;
        for (unsigned i = 1; i < static_cast<unsigned>(Op::kNumOps); ++i) {
            Op op = static_cast<Op>(i);
            m[mnemonic(op)] = op;
        }
        return m;
    }();
    auto it = table.find(name);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

const char *
gprName(unsigned index)
{
    static const char *names[kNumGpr] = {
        "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
        "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
        "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
        "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
    };
    cps_assert(index < kNumGpr, "bad gpr index");
    return names[index];
}

bool
isLink(Op op)
{
    return op == Op::Jal || op == Op::Jalr;
}

bool
isFp(Op op)
{
    switch (op) {
      case Op::Lwc1: case Op::Swc1: case Op::Bc1t: case Op::Bc1f:
      case Op::AddS: case Op::SubS: case Op::MulS: case Op::DivS:
      case Op::AbsS: case Op::NegS: case Op::MovS: case Op::CvtSW:
      case Op::CvtWS: case Op::CEqS: case Op::CLtS: case Op::CLeS:
      case Op::Mtc1: case Op::Mfc1:
        return true;
      default:
        return false;
    }
}

} // namespace cps
