#include "ooo.hh"

#include <algorithm>
#include <optional>

#include "common/watchdog.hh"

namespace cps
{

OoOPipeline::OoOPipeline(const PipelineConfig &cfg, TraceSource &src,
                         FetchPath &fetch, DataPath &data, StatSet &stats)
    : cfg_(cfg), src_(src), fetch_(fetch), data_(data),
      frontend_(cfg.predictor, stats),
      statInsns_(stats.scalar("pipeline.insns")),
      statCycles_(stats.scalar("pipeline.cycles"))
{
    cps_assert(cfg.ruuSize >= cfg.width, "RUU smaller than machine width");
    ruu_.resize(cfg.ruuSize);
    fuFree_[kFuAlu].assign(cfg.numAlu, 0);
    fuFree_[kFuMult].assign(cfg.numMult, 0);
    fuFree_[kFuMem].assign(cfg.numMemPorts, 0);
    fuFree_[kFuFpAlu].assign(cfg.numFpAlu, 0);
    fuFree_[kFuFpMult].assign(cfg.numFpMult, 0);
    regProducer_.fill(kNoSeq);
}

OoOPipeline::OoOPipeline(const PipelineConfig &cfg, Executor &exec,
                         FetchPath &fetch, DataPath &data, StatSet &stats)
    : cfg_(cfg), ownedSrc_(std::make_unique<LiveTraceSource>(exec)),
      src_(*ownedSrc_), fetch_(fetch), data_(data),
      frontend_(cfg.predictor, stats),
      statInsns_(stats.scalar("pipeline.insns")),
      statCycles_(stats.scalar("pipeline.cycles"))
{
    cps_assert(cfg.ruuSize >= cfg.width, "RUU smaller than machine width");
    ruu_.resize(cfg.ruuSize);
    fuFree_[kFuAlu].assign(cfg.numAlu, 0);
    fuFree_[kFuMult].assign(cfg.numMult, 0);
    fuFree_[kFuMem].assign(cfg.numMemPorts, 0);
    fuFree_[kFuFpAlu].assign(cfg.numFpAlu, 0);
    fuFree_[kFuFpMult].assign(cfg.numFpMult, 0);
    regProducer_.fill(kNoSeq);
}

OoOPipeline::FuPool
OoOPipeline::poolFor(InstClass cls) const
{
    switch (cls) {
      case InstClass::IntMult:
      case InstClass::IntDiv:
        return kFuMult;
      case InstClass::Load:
      case InstClass::Store:
        return kFuMem;
      case InstClass::FpAlu:
      case InstClass::FpCvt:
        return kFuFpAlu;
      case InstClass::FpMult:
      case InstClass::FpDiv:
        return kFuFpMult;
      default:
        return kFuAlu;
    }
}

bool
OoOPipeline::nonPipelined(InstClass cls) const
{
    // Divides occupy their unit for the full latency (SimpleScalar's
    // default issue rates); everything else is fully pipelined.
    return cls == InstClass::IntDiv || cls == InstClass::FpDiv;
}

bool
OoOPipeline::producerDone(u64 seq, Cycle clock)
{
    if (seq == kNoSeq || seq < headSeq_)
        return true; // never tracked, or already committed
    const Entry &e = at(seq);
    return e.issued && e.doneAt <= clock;
}

RunResult
OoOPipeline::run(u64 max_insns)
{
    Cycle clock = 0;
    Cycle fetch_blocked_until = 0;
    u64 retired = 0;
    bool exited = false;
    std::optional<StepRecord> pending;

    headSeq_ = tailSeq_ = 0;
    lsqCount_ = 0;
    regProducer_.fill(kNoSeq);
    lastStoreToWord_.clear();

    auto ruu_empty = [&] { return headSeq_ == tailSeq_; };
    auto ruu_full = [&] { return tailSeq_ - headSeq_ == ruu_.size(); };

    // Livelock guard: the deadlock assert below catches a cycle that
    // cannot advance, but a bug where the clock advances forever with
    // nothing ever committing would spin silently. The watchdog turns
    // that into a structured, deterministic abort.
    ProgressWatchdog watchdog(cfg_.watchdogInterval,
                              cfg_.watchdogStallLimit);
    bool stalled = false;

    // Fires at the same commit-stage instant a serial run of
    // warmupInsns instructions would stop at, so cyclesAtGate equals
    // that shorter run's result exactly (the chunk engine's
    // telescoping identity).
    auto fireGate = [&] {
        gate_->fired = true;
        gate_->cyclesAtGate = clock;
        gate_->insnsAtGate = retired;
        if (gate_->onGate)
            gate_->onGate();
    };
    if (gate_ && !gate_->fired && gate_->warmupInsns == 0)
        fireGate();

    while (retired < max_insns) {
        if (watchdog.tick(retired)) {
            stalled = true;
            break;
        }
        bool progress = false;

        // ------------------------------------------------------- commit
        unsigned committed = 0;
        while (committed < cfg_.width && !ruu_empty()) {
            Entry &e = at(headSeq_);
            if (!e.issued || e.doneAt >= clock)
                break;
            if (trace_) {
                OooTraceEntry t;
                t.pc = e.pc;
                t.inst = e.inst;
                t.fetchedAt = e.fetchedAt;
                t.issuedAt = e.issuedAt;
                t.doneAt = e.doneAt;
                t.committedAt = clock;
                trace_->push_back(t);
            }
            if (e.info->cls == InstClass::Store) {
                // Stores update the cache at commit; the write buffer
                // hides the latency from the core.
                data_.access(e.memAddr, true, clock);
            }
            if (e.info->isMem)
                --lsqCount_;
            ++headSeq_;
            ++retired;
            ++committed;
            progress = true;
            if (gate_ && !gate_->fired && retired >= gate_->warmupInsns)
                fireGate();
            if (retired >= max_insns)
                break;
        }
        if (retired >= max_insns)
            break;

        // -------------------------------------------------------- issue
        unsigned issued = 0;
        for (u64 seq = headSeq_; seq < tailSeq_ && issued < cfg_.width;
             ++seq) {
            Entry &e = at(seq);
            if (e.issued)
                continue;
            if (!producerDone(e.src[0], clock) ||
                !producerDone(e.src[1], clock) ||
                !producerDone(e.src[2], clock)) {
                continue;
            }
            if (e.info->cls == InstClass::Load &&
                !producerDone(e.blockingStore, clock)) {
                continue; // memory-order dependence on an older store
            }

            // Function-unit availability.
            FuPool pool = poolFor(e.info->cls);
            Cycle *unit = nullptr;
            for (Cycle &f : fuFree_[pool]) {
                if (f <= clock) {
                    unit = &f;
                    break;
                }
            }
            if (!unit)
                continue;

            e.issued = true;
            e.issuedAt = clock;
            ++issued;
            progress = true;
            unsigned latency = e.info->latency;
            if (e.info->cls == InstClass::Load) {
                e.doneAt = data_.access(e.memAddr, false, clock);
            } else if (e.info->cls == InstClass::Store) {
                e.doneAt = clock + 1; // address + data into the LSQ
            } else {
                e.doneAt = clock + latency;
            }
            *unit = nonPipelined(e.info->cls) ? clock + latency : clock + 1;

            if (e.mispredict) {
                // Between now and resolution, fetch runs down the wrong
                // path (cache pollution + memory-channel occupancy).
                simulateWrongPath(fetch_, e.wrongPath,
                                  src_.text().base(), src_.text().end(),
                                  clock + 1, e.doneAt, cfg_.width);
                // The redirect reaches fetch the cycle after resolution,
                // plus front-end refill.
                fetch_blocked_until = e.doneAt + 1 + cfg_.mispredictExtra;
            }
            if (e.serialize)
                fetch_blocked_until = e.doneAt + 1;
        }

        // ----------------------------------------------- fetch/dispatch
        unsigned fetched = 0;
        while (clock >= fetch_blocked_until && fetched < cfg_.width) {
            if (!pending) {
                if (src_.halted()) {
                    exited = true;
                    break;
                }
                pending = src_.step();
            }
            if (ruu_full())
                break;
            const InstInfo &info = *pending->info;
            if (info.isMem && lsqCount_ >= cfg_.lsqSize)
                break;
            if (info.cls == InstClass::Syscall && !ruu_empty())
                break; // drain before a serialising op

            Cycle avail = fetch_.fetchWord(pending->pc, clock);
            if (avail > clock) {
                fetch_blocked_until = avail;
                break;
            }

            // Dispatch into the RUU.
            u64 seq = tailSeq_++;
            Entry &e = at(seq);
            e = Entry{};
            e.pc = pending->pc;
            e.info = pending->info;
            e.inst = *pending->inst;
            e.fetchedAt = clock;
            e.op = pending->inst->op;
            e.memAddr = pending->memAddr;

            auto bind = [&](int reg, unsigned slot) {
                if (reg == kRegNone)
                    return;
                u64 p = regProducer_[reg];
                if (p != kNoSeq && p >= headSeq_)
                    e.src[slot] = p;
            };
            bind(info.src1, 0);
            bind(info.src2, 1);
            bind(info.src3, 2);
            if (info.dest != kRegNone)
                regProducer_[info.dest] = seq;

            if (info.isMem) {
                ++lsqCount_;
                Addr word = pending->memAddr >> 2;
                if (info.cls == InstClass::Load) {
                    auto it = lastStoreToWord_.find(word);
                    if (it != lastStoreToWord_.end() &&
                        it->second >= headSeq_) {
                        e.blockingStore = it->second;
                    }
                } else {
                    lastStoreToWord_[word] = seq;
                }
            }

            bool is_control = info.isControl;
            StepRecord rec = *pending;
            pending.reset();
            ++fetched;
            progress = true;

            if (info.cls == InstClass::Syscall) {
                e.serialize = true;
                fetch_blocked_until = kCycleNever;
                break;
            }
            if (is_control) {
                ControlOutcome out = frontend_.handleControl(rec);
                if (out.mispredict) {
                    e.mispredict = true;
                    e.wrongPath = out.wrongPath;
                    fetch_blocked_until = kCycleNever; // until resolve
                    break;
                }
                if (out.minorBubble) {
                    fetch_blocked_until = clock + 2;
                    break;
                }
                if (rec.taken) {
                    // Cannot fetch past a taken branch in the same cycle.
                    fetch_blocked_until = clock + 1;
                    break;
                }
            }
        }

        // --------------------------------------------- termination test
        if (ruu_empty() && !pending && src_.halted()) {
            exited = true;
            break;
        }

        // -------------------------------------------------------- clock
        if (progress) {
            ++clock;
        } else {
            // Nothing moved: jump to the next event.
            Cycle next = kCycleNever;
            bool have_unissued = false;
            for (u64 seq = headSeq_; seq < tailSeq_; ++seq) {
                const Entry &e = at(seq);
                if (e.issued)
                    next = std::min(next, e.doneAt);
                else
                    have_unissued = true;
            }
            if (have_unissued) {
                // An unissued op may be waiting on a non-pipelined unit.
                for (const auto &pool : fuFree_) {
                    for (Cycle f : pool) {
                        if (f > clock)
                            next = std::min(next, f);
                    }
                }
            }
            if (fetch_blocked_until != kCycleNever &&
                (pending || !src_.halted()) && !ruu_full()) {
                next = std::min(next, fetch_blocked_until);
            }
            cps_assert(next != kCycleNever,
                       "pipeline deadlock at cycle %llu (ruu %llu..%llu)",
                       static_cast<unsigned long long>(clock),
                       static_cast<unsigned long long>(headSeq_),
                       static_cast<unsigned long long>(tailSeq_));
            clock = std::max(clock + 1, next);
        }
    }

    RunResult res;
    res.instructions = retired;
    res.cycles = clock;
    res.programExited = exited;
    if (stalled) {
        res.status = RunStatus::Stalled;
        res.statusDetail = strfmt(
            "no instruction retired for %u watchdog checks "
            "(%llu iterations each) at cycle %llu, %llu retired",
            watchdog.stalledChecks(),
            static_cast<unsigned long long>(cfg_.watchdogInterval),
            static_cast<unsigned long long>(clock),
            static_cast<unsigned long long>(retired));
    }
    statInsns_.set(retired);
    statCycles_.set(clock);
    return res;
}

} // namespace cps
