/**
 * @file
 * Main-memory model: a sparse functional backing store plus the bus
 * timing model of the paper's Table 2 ("memory latency: 10 cycle latency,
 * 2 cycle rate; memory width 64 bits").
 *
 * The timing side models a single memory channel: a burst transaction
 * occupies the channel from its (arbitrated) start until its last beat.
 * The first beat arrives @c firstAccess cycles after the start and each
 * subsequent beat @c beatRate cycles after the previous one. Both the
 * native cache-fill path and the CodePack decompressor issue bursts
 * through the same channel, so index fetches, code fetches and D-cache
 * fills contend naturally.
 */

#ifndef CPS_MEM_MAIN_MEMORY_HH
#define CPS_MEM_MAIN_MEMORY_HH

#include <unordered_map>
#include <vector>

#include "asmkit/program.hh"
#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cps
{

/** Bus/DRAM timing parameters (paper Table 2 defaults). */
struct MemTimingConfig
{
    unsigned busWidthBits = 64; ///< 16, 32, 64 or 128 in the paper
    Cycle firstAccess = 10;     ///< cycles until the first beat arrives
    Cycle beatRate = 2;         ///< cycles between subsequent beats

    unsigned busBytes() const { return busWidthBits / 8; }
};

/** Timing of one burst transaction. */
struct BurstResult
{
    Cycle start = 0;                ///< cycle the transaction was granted
    std::vector<Cycle> beatArrival; ///< arrival cycle of each beat
    Cycle done = 0;                 ///< arrival of the final beat

    /** Arrival time of the beat containing byte @p offset of the burst. */
    Cycle
    arrivalOfByte(unsigned offset, unsigned bus_bytes) const
    {
        unsigned beat = offset / bus_bytes;
        cps_assert(beat < beatArrival.size(), "byte beyond burst");
        return beatArrival[beat];
    }
};

/**
 * Functional sparse memory plus channel timing.
 *
 * Functional accesses (read/write) are free; they are used by the
 * loader, the functional executor, and the decompressor to obtain data.
 * Timing is modelled separately through burstRead()/singleRead(), which
 * advance the channel-busy horizon.
 */
class MainMemory
{
  public:
    explicit MainMemory(const MemTimingConfig &cfg = MemTimingConfig{})
        : cfg_(cfg)
    {}

    // ------------------------------------------------------------ timing

    const MemTimingConfig &timing() const { return cfg_; }
    void setTiming(const MemTimingConfig &cfg) { cfg_ = cfg; }

    /**
     * Performs a timed burst read of @p bytes starting at cycle @p now.
     * @return per-beat arrival times after channel arbitration
     */
    BurstResult
    burstRead(Cycle now, unsigned bytes)
    {
        cps_assert(bytes > 0, "zero-length burst");
        BurstResult r;
        r.start = std::max(now, busyUntil_);
        unsigned beats =
            static_cast<unsigned>(divCeil(bytes, cfg_.busBytes()));
        r.beatArrival.reserve(beats);
        for (unsigned b = 0; b < beats; ++b)
            r.beatArrival.push_back(r.start + cfg_.firstAccess +
                                    b * cfg_.beatRate);
        r.done = r.beatArrival.back();
        busyUntil_ = r.done;
        ++numBursts_;
        numBeats_ += beats;
        return r;
    }

    /** A single-beat timed access (e.g. one index-table entry). */
    BurstResult singleRead(Cycle now) { return burstRead(now, 1); }

    /**
     * A timed write burst (D-cache write-back). The writer does not wait
     * for completion; the channel is simply occupied.
     */
    Cycle
    burstWrite(Cycle now, unsigned bytes)
    {
        BurstResult r = burstRead(now, bytes);
        return r.done;
    }

    /** First cycle at which a new transaction could start. */
    Cycle busyUntil() const { return busyUntil_; }

    /** Resets timing state (not contents). */
    void
    resetTimingState()
    {
        busyUntil_ = 0;
        numBursts_ = 0;
        numBeats_ = 0;
    }

    u64 numBursts() const { return numBursts_; }
    u64 numBeats() const { return numBeats_; }

    // -------------------------------------------------------- functional

    u8
    read8(Addr addr) const
    {
        const Page *p = findPage(addr);
        return p ? (*p)[addr & kPageMask] : 0;
    }

    u16
    read16(Addr addr) const
    {
        return static_cast<u16>(read8(addr)) |
               (static_cast<u16>(read8(addr + 1)) << 8);
    }

    u32
    read32(Addr addr) const
    {
        return static_cast<u32>(read16(addr)) |
               (static_cast<u32>(read16(addr + 2)) << 16);
    }

    void
    write8(Addr addr, u8 value)
    {
        page(addr)[addr & kPageMask] = value;
    }

    void
    write16(Addr addr, u16 value)
    {
        write8(addr, static_cast<u8>(value));
        write8(addr + 1, static_cast<u8>(value >> 8));
    }

    void
    write32(Addr addr, u32 value)
    {
        write16(addr, static_cast<u16>(value));
        write16(addr + 2, static_cast<u16>(value >> 16));
    }

    /** Copies a program segment into memory. */
    void
    loadSegment(const Segment &seg)
    {
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            write8(seg.base + static_cast<Addr>(i), seg.bytes[i]);
    }

    /** Copies a raw byte vector to @p base. */
    void
    loadBytes(Addr base, const std::vector<u8> &bytes)
    {
        for (size_t i = 0; i < bytes.size(); ++i)
            write8(base + static_cast<Addr>(i), bytes[i]);
    }

  private:
    static constexpr unsigned kPageBits = 12;
    static constexpr Addr kPageMask = (1u << kPageBits) - 1;

    using Page = std::vector<u8>;

    const Page *
    findPage(Addr addr) const
    {
        auto it = pages_.find(addr >> kPageBits);
        return it == pages_.end() ? nullptr : &it->second;
    }

    Page &
    page(Addr addr)
    {
        Page &p = pages_[addr >> kPageBits];
        if (p.empty())
            p.resize(1u << kPageBits, 0);
        return p;
    }

    MemTimingConfig cfg_;
    Cycle busyUntil_ = 0;
    u64 numBursts_ = 0;
    u64 numBeats_ = 0;
    std::unordered_map<u32, Page> pages_;
};

} // namespace cps

#endif // CPS_MEM_MAIN_MEMORY_HH
