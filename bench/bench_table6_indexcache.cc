/**
 * @file
 * Reproduces Table 6: index-cache miss ratio for cc1 on the 4-issue
 * machine, sweeping fully-associative geometries (number of lines x
 * index entries per line). The paper's pick: 64 lines x 4 indexes gets
 * cc1 under 15% (and the other benchmarks far lower).
 */

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    const BenchProgram &bench = Suite::instance().get("cc1");

    const unsigned lines[] = {4, 16, 32, 64};
    const unsigned per_line[] = {1, 2, 4, 8};

    TextTable t;
    t.setTitle("Table 6: Index cache miss ratio for cc1 "
               "(during L1 misses, 4-issue, fully associative)");
    t.addHeader({"Lines \\ idx/line", "1", "2", "4", "8"});

    harness::Matrix m;
    for (unsigned nl : lines) {
        for (unsigned ipl : per_line) {
            MachineConfig cfg = baseline4Issue();
            cfg.codeModel = CodeModel::CodePackCustom;
            cfg.decomp.indexCacheLines = nl;
            cfg.decomp.indexesPerLine = ipl;
            cfg.decomp.burstIndexFill = true;
            m.add(bench, cfg, insns);
        }
    }
    m.run();

    for (unsigned nl : lines) {
        std::vector<std::string> row{TextTable::grouped(nl)};
        for (size_t i = 0; i < 4; ++i)
            row.push_back(m.fmtNext([](const RunOutcome &o) {
                return TextTable::pct(o.indexCacheMissRate);
            }));
        t.addRow(row);
    }
    t.addRule();
    t.addRow({"(paper, 64x4)", "", "", "< 15%", ""});
    t.print();
    return m.exitSummary();
}
