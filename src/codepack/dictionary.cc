#include "dictionary.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cps
{
namespace codepack
{

Dictionary::Dictionary(Kind kind)
    : kind_(kind),
      banks_(kind == Kind::High ? kHighBanks : kLowBanks),
      numBanks_(kind == Kind::High ? kNumHighBanks : kNumLowBanks)
{
    entries_.resize(numBanks_);
    buildLut();
}

Dictionary
Dictionary::build(Kind kind, const std::unordered_map<u16, u64> &counts)
{
    Dictionary dict(kind);

    std::vector<std::pair<u16, u64>> ranked;
    ranked.reserve(counts.size());
    for (const auto &kv : counts) {
        if (kind == Kind::Low && kv.first == 0)
            continue; // the zero value has its own codeword
        ranked.emplace_back(kv.first, kv.second);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });

    constexpr unsigned raw_bits = 3 + kRawLiteralBits;
    size_t cursor = 0;
    for (unsigned b = 0; b < dict.numBanks_ && cursor < ranked.size(); ++b) {
        const Bank &bank = dict.banks_[b];
        unsigned code_bits = bank.codeBits();
        while (dict.entries_[b].size() < bank.entries() &&
               cursor < ranked.size()) {
            auto [value, count] = ranked[cursor];
            // Admission test: stream savings must beat the 16 bits of
            // dictionary storage the entry costs.
            if (count * (raw_bits - code_bits) <= 16)
                break; // counts only get smaller from here
            u32 index = static_cast<u32>(dict.entries_[b].size());
            dict.entries_[b].push_back(value);
            HalfEncoding enc;
            enc.bank = b;
            enc.index = index;
            enc.tagBits = bank.tagBits;
            enc.tag = bank.tag;
            enc.indexBits = bank.indexBits;
            dict.lookup_[value] = enc;
            ++cursor;
        }
    }
    dict.buildLut();
    return dict;
}

Dictionary
Dictionary::fromBankEntries(Kind kind,
                            const std::vector<std::vector<u16>> &entries)
{
    Dictionary dict(kind);
    cps_assert(entries.size() == dict.numBanks_,
               "expected %u banks, got %zu", dict.numBanks_,
               entries.size());
    for (unsigned b = 0; b < dict.numBanks_; ++b) {
        const Bank &bank = dict.banks_[b];
        cps_assert(entries[b].size() <= bank.entries(),
                   "bank %u overpopulated: %zu > %u", b,
                   entries[b].size(), bank.entries());
        dict.entries_[b] = entries[b];
        for (u32 i = 0; i < entries[b].size(); ++i) {
            HalfEncoding enc;
            enc.bank = b;
            enc.index = i;
            enc.tagBits = bank.tagBits;
            enc.tag = bank.tag;
            enc.indexBits = bank.indexBits;
            dict.lookup_[entries[b][i]] = enc;
        }
    }
    dict.buildLut();
    return dict;
}

unsigned
Dictionary::totalEntries() const
{
    unsigned n = 0;
    for (const auto &bank : entries_)
        n += static_cast<unsigned>(bank.size());
    return n;
}

HalfEncoding
Dictionary::encode(u16 half) const
{
    if (kind_ == Kind::Low && half == 0) {
        HalfEncoding enc;
        enc.zeroSpecial = true;
        enc.tagBits = kLowZeroBits;
        enc.tag = kTag0;
        return enc;
    }
    auto it = lookup_.find(half);
    if (it != lookup_.end())
        return it->second;
    HalfEncoding enc;
    enc.raw = true;
    enc.tagBits = 3;
    enc.tag = kTagRaw;
    enc.indexBits = kRawLiteralBits;
    return enc;
}

u16
Dictionary::lookup(unsigned bank, u32 index) const
{
    cps_assert(bank < numBanks_, "dictionary bank out of range");
    cps_assert(index < entries_[bank].size(),
               "dictionary index %u beyond bank %u population %zu", index,
               bank, entries_[bank].size());
    return entries_[bank][index];
}

void
Dictionary::write(BitWriter &bw, u16 half) const
{
    writeEncoded(bw, encode(half), half);
}

u16
Dictionary::read(BitReader &br) const
{
    // Tags are prefix-free: 00 / 01 / 10 are complete after 2 bits;
    // 11x needs a third bit to split the long bank from the raw escape.
    u32 two = br.get(2);
    if (two == 0b11) {
        u32 third = br.get(1);
        if (third == 1)
            return static_cast<u16>(br.get(kRawLiteralBits)); // raw
        // kTag3 bank: the last bank of either dictionary.
        unsigned bank = numBanks_ - 1;
        u32 index = br.get(banks_[bank].indexBits);
        return lookup(bank, index);
    }
    if (kind_ == Kind::Low) {
        if (two == kTag0)
            return 0; // the special zero codeword
        unsigned bank = (two == kTag1) ? 0 : 1;
        u32 index = br.get(banks_[bank].indexBits);
        return lookup(bank, index);
    }
    // High dictionary: banks 0..2 map straight onto the 2-bit tags.
    unsigned bank = two;
    u32 index = br.get(banks_[bank].indexBits);
    return lookup(bank, index);
}

void
Dictionary::buildLut()
{
    // Match-path mirrors first: flat bank-ordered values, their
    // encodings, and the membership bitmap the compressor probes
    // before scanning.
    flat_.clear();
    flatEnc_.clear();
    member_.assign(65536 / 64, 0);
    for (unsigned b = 0; b < numBanks_; ++b) {
        const Bank &bank = banks_[b];
        for (u32 i = 0; i < entries_[b].size(); ++i) {
            u16 value = entries_[b][i];
            flat_.push_back(value);
            HalfEncoding enc;
            enc.bank = b;
            enc.index = i;
            enc.tagBits = bank.tagBits;
            enc.tag = bank.tag;
            enc.indexBits = bank.indexBits;
            flatEnc_.push_back(enc);
            member_[value >> 6] |= u64{1} << (value & 63);
        }
    }

    lut_.assign(1u << kLutBits, lutEntry(0, 0, kLutInvalid));
    // Every pattern whose top bits match `code` (length `len`) resolves
    // to `entry`: fill all 2^(kLutBits-len) suffix slots.
    auto fill = [&](u32 code, unsigned len, u32 entry) {
        unsigned shift = kLutBits - len;
        u32 base = code << shift;
        for (u32 s = 0; s < (1u << shift); ++s)
            lut_[base + s] = entry;
    };

    fill(kTagRaw, 3, lutEntry(0, 3, kLutRaw));
    if (kind_ == Kind::Low)
        fill(kTag0, kLowZeroBits, lutEntry(0, kLowZeroBits, kLutValue));
    for (unsigned b = 0; b < numBanks_; ++b) {
        const Bank &bank = banks_[b];
        unsigned len = bank.codeBits();
        for (u32 i = 0; i < bank.entries(); ++i) {
            u32 code = (bank.tag << bank.indexBits) | i;
            // Indexes beyond the bank's population are encodable bit
            // patterns that no valid stream contains; they go to the
            // checked path for its RangeError.
            u32 entry = i < entries_[b].size()
                            ? lutEntry(entries_[b][i], len, kLutValue)
                            : lutEntry(0, len, kLutInvalid);
            fill(code, len, entry);
        }
    }
}

Result<u16>
Dictionary::tryRead(BitReader &br) const
{
    // Mirrors read() exactly, but every get() is a checked tryRead and
    // every lookup is range-checked: this is the path fed by images we
    // did not produce ourselves.
    auto underrun = [&]() {
        return decodeErrorAtBit(DecodeStatus::Truncated, br.bitPos(),
                                "codeword truncated: %s dictionary "
                                "needed more bits",
                                kind_ == Kind::High ? "high" : "low");
    };
    auto checkedLookup = [&](unsigned bank, u32 index) -> Result<u16> {
        if (index >= entries_[bank].size())
            return decodeErrorAtBit(
                DecodeStatus::RangeError, br.bitPos(),
                "%s dictionary bank %u index %u beyond population %zu",
                kind_ == Kind::High ? "high" : "low", bank, index,
                entries_[bank].size());
        return entries_[bank][index];
    };

    u32 two = 0;
    if (!br.tryRead(2, two))
        return underrun();
    if (two == 0b11) {
        u32 third = 0;
        if (!br.tryRead(1, third))
            return underrun();
        if (third == 1) {
            u32 raw = 0;
            if (!br.tryRead(kRawLiteralBits, raw))
                return underrun();
            return static_cast<u16>(raw);
        }
        unsigned bank = numBanks_ - 1;
        u32 index = 0;
        if (!br.tryRead(banks_[bank].indexBits, index))
            return underrun();
        return checkedLookup(bank, index);
    }
    unsigned bank;
    if (kind_ == Kind::Low) {
        if (two == kTag0)
            return static_cast<u16>(0);
        bank = (two == kTag1) ? 0 : 1;
    } else {
        bank = two;
    }
    u32 index = 0;
    if (!br.tryRead(banks_[bank].indexBits, index))
        return underrun();
    return checkedLookup(bank, index);
}

const std::vector<u16> &
Dictionary::bankEntries(unsigned bank) const
{
    cps_assert(bank < numBanks_, "dictionary bank out of range");
    return entries_[bank];
}

PairLut::PairLut(const Dictionary &high, const Dictionary &low)
{
    constexpr unsigned kLut = Dictionary::kLutBits;
    constexpr u32 kMask = (1u << kBits) - 1;
    lut_.assign(size_t{1} << kBits, 0);
    const u32 *hlut = high.lutData();
    const u32 *llut = low.lutData();
    for (u32 p = 0; p <= kMask; ++p) {
        // The high probe sees the window's top kLutBits bits; every
        // high codeword fits there (max length == kLutBits).
        u32 eh = hlut[p >> (kBits - kLut)];
        if (!Dictionary::lutIsValue(eh))
            continue; // raw escape / unpopulated index: escape slot
        unsigned lh = Dictionary::lutLen(eh);
        u16 hi = Dictionary::lutValue(eh);
        lut_[p] = entry(hi, 0, lh, 1);
        unsigned visible = kBits - lh;
        // The window bits behind the high codeword, zero-padded up to a
        // full low-LUT index. A low codeword no longer than `visible`
        // is unambiguous from those bits alone (prefix-free code), so
        // the padded probe resolves it exactly; longer resolutions are
        // artifacts of the padding and stay single-symbol.
        u32 el = llut[((p << lh) & kMask) >> (kBits - kLut)];
        if (Dictionary::lutIsValue(el) &&
            Dictionary::lutLen(el) <= visible)
            lut_[p] = entry(hi, Dictionary::lutValue(el),
                            lh + Dictionary::lutLen(el), 2);
    }
}

unsigned
PairLut::pairSlots() const
{
    unsigned n = 0;
    for (u64 e : lut_)
        n += symbols(e) == 2;
    return n;
}

} // namespace codepack
} // namespace cps
