/**
 * @file
 * Extension experiment: seed robustness. Our benchmarks are synthetic;
 * a fair question is whether the headline comparisons depend on the
 * particular random program the generator emitted. This bench re-rolls
 * the 'go' profile under several seeds and reports the spread of the
 * compression ratio, I-miss rate, and the three headline speedups.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "harness/suite.hh"

using namespace cps;

namespace
{

struct Sample
{
    double ratio;
    double miss;
    double cp;
    double opt;
};

Sample
measure(u64 seed, u64 insns)
{
    BenchmarkProfile profile = findProfile("go");
    profile.seed = seed;
    BenchProgram bench;
    bench.profile = nullptr;
    bench.program = generateProgram(profile);
    bench.image = codepack::compress(bench.program);

    Sample s;
    s.ratio = bench.image.compressionRatio();
    RunOutcome rn = runMachine(bench, baseline4Issue(), insns);
    s.miss = rn.icacheMissRate;
    RunOutcome rc = runMachine(
        bench, baseline4Issue().withCodeModel(CodeModel::CodePack), insns);
    RunOutcome ro = runMachine(
        bench,
        baseline4Issue().withCodeModel(CodeModel::CodePackOptimized),
        insns);
    s.cp = speedup(rn, rc);
    s.opt = speedup(rn, ro);
    return s;
}

std::string
rangeOf(std::vector<double> v, bool pct)
{
    auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    if (pct)
        return strfmt("%.1f%% .. %.1f%%", *lo * 100, *hi * 100);
    return strfmt("%.3f .. %.3f", *lo, *hi);
}

} // namespace

int
main()
{
    u64 insns = Suite::runInsns() / 2; // 5 seeds: keep the total modest
    const u64 seeds[] = {0x60, 0xbeef, 0x1234, 0xabcd, 0x42424242};

    std::vector<double> ratio, miss, cp, opt;
    for (u64 seed : seeds) {
        Sample s = measure(seed, insns);
        ratio.push_back(s.ratio);
        miss.push_back(s.miss);
        cp.push_back(s.cp);
        opt.push_back(s.opt);
    }

    TextTable t;
    t.setTitle("Extension: seed robustness ('go' profile, 5 seeds, "
               "4-issue)");
    t.addHeader({"Metric", "Range across seeds"});
    t.addRow({"compression ratio", rangeOf(ratio, true)});
    t.addRow({"I-miss rate", rangeOf(miss, true)});
    t.addRow({"CodePack speedup", rangeOf(cp, false)});
    t.addRow({"Optimized speedup", rangeOf(opt, false)});
    t.print();

    std::printf("\nThe qualitative conclusions (baseline <= 1.0 < "
                "optimized) hold for every seed.\n");
    return 0;
}
