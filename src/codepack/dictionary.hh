/**
 * @file
 * CodePack halfword dictionaries.
 *
 * A dictionary assigns the most frequent 16-bit halfword values of a
 * program's text to short variable-length codewords, bank by bank (the
 * most frequent values land in the bank with the shortest codewords).
 * Dictionaries are fixed at program load time and shipped with the
 * compressed image (their bits are charged to the compressed size, as in
 * the paper's Table 4).
 */

#ifndef CPS_CODEPACK_DICTIONARY_HH
#define CPS_CODEPACK_DICTIONARY_HH

#include <unordered_map>
#include <vector>

#include "common/bitstream.hh"
#include "common/result.hh"
#include "common/types.hh"
#include "format.hh"

namespace cps
{
namespace codepack
{

/** How one halfword value is encoded. */
struct HalfEncoding
{
    bool raw = false;        ///< escape: 3-bit tag + 16 literal bits
    bool zeroSpecial = false; ///< low-half value 0: lone 2-bit tag
    unsigned bank = 0;       ///< dictionary bank (when !raw && !zeroSpecial)
    u32 index = 0;           ///< index within the bank
    unsigned tagBits = 0;
    u32 tag = 0;
    unsigned indexBits = 0;

    unsigned totalBits() const { return tagBits + indexBits; }
};

/** One of the two CodePack dictionaries (high or low halfwords). */
class Dictionary
{
  public:
    /** Which half of the instruction this dictionary serves. */
    enum class Kind { High, Low };

    /** Creates an empty dictionary (every halfword encodes raw). */
    explicit Dictionary(Kind kind);

    /**
     * Builds a dictionary from halfword frequency counts.
     *
     * Values are ranked by descending count (ties broken by value for
     * determinism) and poured into the banks in order. A value is only
     * admitted while doing so shrinks the program: admitting value v to a
     * bank with b-bit codewords saves count*(3+16-b) bits of stream and
     * costs 16 bits of dictionary storage.
     *
     * For Kind::Low the value 0 is never stored: it always has the
     * special 2-bit codeword.
     */
    static Dictionary build(Kind kind,
                            const std::unordered_map<u16, u64> &counts);

    /**
     * Reconstructs a dictionary from explicit per-bank entry lists
     * (deserialization). Bank populations must fit the bank widths.
     */
    static Dictionary fromBankEntries(
        Kind kind, const std::vector<std::vector<u16>> &entries);

    Kind kind() const { return kind_; }

    /** Number of banks (4 for high, 3 for low). */
    unsigned numBanks() const { return numBanks_; }

    /** The bank descriptors for this dictionary's kind. */
    const Bank *banks() const { return banks_; }

    /** Total entries stored across banks. */
    unsigned totalEntries() const;

    /** Bits of on-chip storage for the dictionary contents (16/entry). */
    u64 storageBits() const { return u64{totalEntries()} * 16; }

    /** How @p half would be encoded by this dictionary. */
    HalfEncoding encode(u16 half) const;

    /** The halfword stored at (@p bank, @p index). */
    u16 lookup(unsigned bank, u32 index) const;

    /** Appends the codeword for @p half to @p bw. */
    void write(BitWriter &bw, u16 half) const;

    /** Decodes one halfword from @p br (tag first, then index/raw). */
    u16 read(BitReader &br) const;

    /**
     * Single-pass LUT decode for trusted streams: peeks kLutBits bits
     * and resolves {value, codeword length} in one table hit (a raw
     * escape costs one extra 16-bit read). Returns false — consuming
     * nothing — when the stream needs the checked path instead: a
     * truncated codeword or an index beyond a bank's population. The
     * caller falls back to read()/tryRead(), which reproduce the exact
     * panic or DecodeStatus the bit-serial reference decoder gives.
     */
    bool
    readFast(BitReader &br, u16 &out) const
    {
        // Inline: this runs once per halfword on the trusted decode
        // path, and an out-of-line call here costs as much as the
        // table hit itself.
        u32 e = lut_[br.peekPadded(kLutBits)];
        unsigned kind = (e >> 24) & 0x7;
        unsigned len = (e >> 16) & 0xff;
        if (kind == kLutValue) {
            if (len > br.remaining())
                return false; // truncated codeword
            br.skip(len);
            out = static_cast<u16>(e & 0xffff);
            return true;
        }
        if (kind == kLutRaw) {
            if (3 + kRawLiteralBits > br.remaining())
                return false; // truncated literal
            br.skip(3);
            out = static_cast<u16>(br.get(kRawLiteralBits));
            return true;
        }
        return false; // unpopulated dictionary index
    }

    /**
     * Checked variant of read() for untrusted bitstreams: a truncated
     * codeword or a dictionary index beyond a bank's population comes
     * back as a structured error (with the failing bit offset) instead
     * of an assert. On error the reader cursor is left wherever the
     * failure was detected.
     */
    Result<u16> tryRead(BitReader &br) const;

    /** Entries of bank @p bank (for dumps and tests). */
    const std::vector<u16> &bankEntries(unsigned bank) const;

    /** Bits the decode LUT indexes on (the longest non-raw codeword). */
    static constexpr unsigned kLutBits = 11;

    /**
     * Raw decode-LUT probe for fused decoders that peek the bits for
     * several codewords at once (see Decompressor's block kernel):
     * @p bits are the next kLutBits of stream. Decode the returned
     * entry with lutIsValue()/lutLen()/lutValue(); anything that is not
     * a plain in-bank value (raw escape, unpopulated index) must be
     * re-decoded through readFast()/tryRead().
     */
    u32 lutProbe(u32 bits) const { return lut_[bits]; }

    /**
     * The LUT itself (1 << kLutBits entries), for decode loops that
     * want the table pointer hoisted out of the per-symbol path.
     */
    const u32 *lutData() const { return lut_.data(); }

    /** Whether LUT entry @p e resolved to an in-bank halfword value. */
    static constexpr bool
    lutIsValue(u32 e)
    {
        return ((e >> 24) & 0x7) == kLutValue;
    }

    /** Consumed codeword length of LUT entry @p e, in bits. */
    static constexpr unsigned lutLen(u32 e) { return (e >> 16) & 0xff; }

    /** Decoded halfword of a value-kind LUT entry @p e. */
    static constexpr u16
    lutValue(u32 e)
    {
        return static_cast<u16>(e & 0xffff);
    }

  private:
    // Decode-LUT entry layout: value in [15:0], consumed bit count in
    // [23:16], kind in [26:24].
    enum LutKind : u32 { kLutValue = 0, kLutRaw = 1, kLutInvalid = 2 };

    static constexpr u32
    lutEntry(u16 value, unsigned len, LutKind kind)
    {
        return static_cast<u32>(value) | (static_cast<u32>(len) << 16) |
               (static_cast<u32>(kind) << 24);
    }

    /** Rebuilds lut_ from entries_ (called whenever banks change). */
    void buildLut();

    Kind kind_;
    const Bank *banks_;
    unsigned numBanks_;
    std::vector<std::vector<u16>> entries_;       // per bank
    std::unordered_map<u16, HalfEncoding> lookup_; // value -> encoding
    std::vector<u32> lut_;                        // 1 << kLutBits entries
};

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_DICTIONARY_HH
