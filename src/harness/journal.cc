#include "journal.hh"

#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <sys/stat.h>
#include <unistd.h>

#include "common/byteio.hh"
#include "common/ipc_frame.hh"
#include "common/logging.hh"

namespace cps
{
namespace harness
{

namespace
{

constexpr u32 kFrameJournalHeader = 100;
constexpr u32 kFrameJournalRecord = 101;
/** Tombstone closing a fully-completed journal (see compact()). */
constexpr u32 kFrameJournalComplete = 102;

/** Length of ArtifactCache::keyHash output (hex FNV-1a 64). */
constexpr size_t kHashChars = 16;

/** Writes @p bytes to @p path in one append; best-effort. */
bool
appendOnce(const std::string &path, const std::vector<u8> &bytes)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return false;
    // One write(2) per record: a kill tears at most the file's tail,
    // and O_APPEND keeps concurrent appenders from interleaving.
    ssize_t w = ::write(fd, bytes.data(), bytes.size());
    // The journal is a durability promise — a checkpoint that only
    // reached the page cache is lost to the very host crash it exists
    // to survive. One fsync per completed cell is cheap next to the
    // simulation that produced it.
    ::fsync(fd);
    ::close(fd);
    return w == static_cast<ssize_t>(bytes.size());
}

} // namespace

bool
resumeEnabled()
{
    static const bool cached = [] {
        const char *env = std::getenv("CPS_RESUME");
        return env != nullptr && std::string(env) != "0";
    }();
    return cached;
}

std::string
journalDir()
{
    if (const char *env = std::getenv("CPS_CACHE_DIR"))
        if (*env != '\0')
            return env;
    return ".cps-cache";
}

MatrixJournal::MatrixJournal(std::string dir, std::string matrix_key,
                             size_t num_cells)
    : dir_(std::move(dir)), matrixKey_(std::move(matrix_key)),
      numCells_(num_cells)
{
    path_ = dir_ + "/" + ArtifactCache::keyHash(matrixKey_) + ".journal";
}

std::vector<std::optional<RunOutcome>>
MatrixJournal::load(const std::vector<RunRequest> &requests) const
{
    std::vector<std::optional<RunOutcome>> out(numCells_);
    auto bytes = readFileBytes(path_);
    if (!bytes)
        return out; // no journal yet

    size_t pos = 0;
    IpcFrame frame;

    // Header: the full matrix key defends the (hashed) file name
    // against collisions and the journal against a changed matrix.
    if (decodeFrameAt(*bytes, pos, frame) != FrameReadStatus::Ok ||
        frame.type != kFrameJournalHeader ||
        std::string(frame.payload.begin(), frame.payload.end()) !=
            matrixKey_) {
        return std::vector<std::optional<RunOutcome>>(numCells_);
    }

    while (decodeFrameAt(*bytes, pos, frame) == FrameReadStatus::Ok) {
        if (frame.type == kFrameJournalComplete) {
            complete_ = true;
            continue;
        }
        if (frame.type != kFrameJournalRecord)
            continue; // unknown record kind: skip, stay compatible
        ByteCursor cur(frame.payload);
        u32 index = cur.get32();
        std::string hash = cur.getString(kHashChars);
        if (!cur.ok() || index >= numCells_ || index >= requests.size())
            continue;
        if (hash != ArtifactCache::keyHash(cellKey(requests[index])))
            continue; // stale record for a changed cell
        Result<RunOutcome> env =
            decodeRunOutcomeChecked(cur.getBytes(cur.remaining()));
        if (!env)
            continue;
        out[index] = std::move(*env);
    }
    // decodeFrameAt stopping on Torn drops the (killed-mid-append)
    // tail; everything verified above it stands.
    return out;
}

void
MatrixJournal::append(size_t index, const std::string &cell_key,
                      const RunOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (complete_)
        return; // compacted: every cell's record is already on disk

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return;

    if (!headerWritten_) {
        struct stat st;
        bool empty = ::stat(path_.c_str(), &st) != 0 || st.st_size == 0;
        if (!empty && scanComplete()) {
            complete_ = true;
            return;
        }
        if (empty) {
            std::vector<u8> key_bytes(matrixKey_.begin(),
                                      matrixKey_.end());
            if (!appendOnce(path_,
                            encodeFrame(kFrameJournalHeader, key_bytes)))
                return;
        }
        headerWritten_ = true;
    }

    std::vector<u8> payload;
    put32(payload, static_cast<u32>(index));
    std::string hash = ArtifactCache::keyHash(cell_key);
    payload.insert(payload.end(), hash.begin(), hash.end());
    std::vector<u8> env = encodeRunOutcome(outcome);
    payload.insert(payload.end(), env.begin(), env.end());
    appendOnce(path_, encodeFrame(kFrameJournalRecord, payload));
}

bool
MatrixJournal::scanComplete() const
{
    auto bytes = readFileBytes(path_);
    if (!bytes)
        return false;
    size_t pos = 0;
    IpcFrame frame;
    while (decodeFrameAt(*bytes, pos, frame) == FrameReadStatus::Ok)
        if (frame.type == kFrameJournalComplete)
            return true;
    return false;
}

bool
MatrixJournal::complete() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // A fresh handle may not have touched the file yet; observe the
    // on-disk tombstone rather than reporting "unknown" as "no".
    if (!complete_ && scanComplete())
        complete_ = true;
    return complete_;
}

bool
MatrixJournal::compact(const std::vector<RunRequest> &requests)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (complete_)
        return true;

    std::vector<std::optional<RunOutcome>> records = load(requests);
    for (const std::optional<RunOutcome> &rec : records)
        if (!rec)
            return false; // incomplete journals keep appending

    // Closed form: header, one record per cell, tombstone. Written to
    // a private temp and renamed so a reader (or a kill) never sees a
    // half-rewritten journal.
    std::vector<u8> out = encodeFrame(
        kFrameJournalHeader,
        std::vector<u8>(matrixKey_.begin(), matrixKey_.end()));
    for (size_t i = 0; i < records.size(); ++i) {
        std::vector<u8> payload;
        put32(payload, static_cast<u32>(i));
        std::string hash = ArtifactCache::keyHash(cellKey(requests[i]));
        payload.insert(payload.end(), hash.begin(), hash.end());
        std::vector<u8> env = encodeRunOutcome(*records[i]);
        payload.insert(payload.end(), env.begin(), env.end());
        std::vector<u8> frame = encodeFrame(kFrameJournalRecord, payload);
        out.insert(out.end(), frame.begin(), frame.end());
    }
    std::vector<u8> tomb = encodeFrame(kFrameJournalComplete, {});
    out.insert(out.end(), tomb.begin(), tomb.end());

    std::string tmp = path_ + ".tmp." + std::to_string(::getpid());
    if (!writeFileBytes(tmp, out))
        return false;
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    complete_ = true;
    headerWritten_ = true;
    return true;
}

} // namespace harness
} // namespace cps
