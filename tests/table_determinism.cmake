# Runs a table binary twice — engine serial (CPS_THREADS=1) and on 8
# workers — and fails unless the two stdouts are byte-identical. This is
# the user-visible face of the runMatrix determinism contract.
#
# Expects: TABLE_BIN (the binary), WORK_DIR (scratch directory).

if (NOT TABLE_BIN OR NOT WORK_DIR)
    message(FATAL_ERROR "TABLE_BIN and WORK_DIR are required")
endif()

set(serial_out "${WORK_DIR}/table_det_serial.txt")
set(parallel_out "${WORK_DIR}/table_det_parallel.txt")

set(ENV{CPS_INSNS} "20000")

set(ENV{CPS_THREADS} "1")
execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${serial_out}
    RESULT_VARIABLE serial_rc)
if (NOT serial_rc EQUAL 0)
    message(FATAL_ERROR "serial run failed (rc=${serial_rc})")
endif()

set(ENV{CPS_THREADS} "8")
execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${parallel_out}
    RESULT_VARIABLE parallel_rc)
if (NOT parallel_rc EQUAL 0)
    message(FATAL_ERROR "parallel run failed (rc=${parallel_rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${serial_out} ${parallel_out}
    RESULT_VARIABLE diff_rc)
if (NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "table output differs between CPS_THREADS=1 and CPS_THREADS=8")
endif()
