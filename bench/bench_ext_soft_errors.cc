/**
 * @file
 * Extension experiment: soft-error resilience of compressed code.
 *
 * Compressed instruction memory concentrates more program per bit, so a
 * radiation-induced upset destroys more instructions per event than in
 * native code — and the decoder may expand one flipped codeword bit
 * into many wrong instructions without noticing. This bench measures
 * that exposure and what per-block protection buys back: for every
 * benchmark profile it runs seeded upset campaigns (stream flips,
 * index-table flips, two-bit bursts; memfault.hh) against a working
 * in-memory image in four protection modes (none / CRC-8 / CRC-16 /
 * SEC-DED), routing every fetch through the SoftErrorDomain recovery
 * path, and reports detection coverage, the silent-corruption rate,
 * the modeled recovery latency, and the storage cost of the check bits.
 *
 * With any protection on, a silently wrong decode is a bench failure:
 * the detect-and-refetch path exists so no upset in this fault model
 * can reach the pipeline unnoticed.
 *
 * Override the per-kind trial count with CPS_SOFT_TRIALS (default 600:
 * 1800 upsets per protection mode, 7200 per profile).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codepack/resilience.hh"
#include "codepack/timing.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "fault/soft_campaign.hh"
#include "harness/suite.hh"
#include "mem/main_memory.hh"

using namespace cps;

namespace
{

constexpr ProtectKind kModes[] = {ProtectKind::None, ProtectKind::Crc8,
                                  ProtectKind::Crc16, ProtectKind::SecDed};
constexpr unsigned kNumModes = 4;

unsigned
trialsPerKind()
{
    const char *env = std::getenv("CPS_SOFT_TRIALS");
    if (env && *env) {
        unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 600;
}

/** Storage overhead of @p kind on @p img, in percent of total bits. */
double
overheadPct(const codepack::CompressedImage &img, ProtectKind kind)
{
    codepack::CompressedImage copy = img;
    codepack::protectImage(copy, kind);
    u64 total = copy.comp.totalBits();
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(
                                    copy.comp.protectionBits) /
                            static_cast<double>(total);
}

/**
 * Modeled cycles to refetch one mean-sized block from backing store:
 * the detected-bad burst is discarded and re-read (main_memory.hh
 * defaults), then re-checked.
 */
double
refetchCycles(const codepack::CompressedImage &img,
              const codepack::DecompressorConfig &dcfg)
{
    MemTimingConfig mc;
    u64 bytes_total = 0;
    for (const codepack::BlockExtent &b : img.blocks)
        bytes_total += b.byteLen;
    double mean_bytes =
        img.blocks.empty()
            ? 0.0
            : static_cast<double>(bytes_total) / img.blocks.size();
    double beats = mean_bytes / mc.busBytes();
    return static_cast<double>(mc.firstAccess) +
           beats * static_cast<double>(mc.beatRate) + dcfg.eccCheckCycles;
}

/** Merges the "softerr" section into BENCH_simperf.json (no JSON
 *  parser: drop any previous softerr section, splice before the
 *  closing brace; a missing file gets a fresh schema-8 skeleton). */
bool
writeSoftErrJson(const std::string &section)
{
    const char *path = "BENCH_simperf.json";
    std::string base;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            base = ss.str();
        }
    }
    size_t prev = base.find(",\n  \"softerr\":");
    if (prev != std::string::npos)
        base = base.substr(0, prev) + "\n}\n";
    size_t close = base.rfind('}');
    std::string out;
    if (base.empty() || close == std::string::npos ||
        base.find("\"schema\"") == std::string::npos) {
        out = "{\n  \"schema\": 8" + section + "\n}\n";
    } else {
        std::string head = base.substr(0, close);
        while (!head.empty() &&
               (head.back() == '\n' || head.back() == ' '))
            head.pop_back();
        out = head + section + "\n}\n";
    }
    std::ofstream outf(path, std::ios::trunc);
    if (!outf)
        return false;
    outf << out;
    return outf.good();
}

} // namespace

int
main()
{
    Suite &suite = Suite::instance();
    suite.pregenerate();
    const std::vector<std::string> &names = suite.names();
    unsigned trials = trialsPerKind();
    unsigned per_mode = trials * fault::kNumMemFaultKinds;

    // One campaign per (profile, protection mode); each touches only
    // its own working copy, so they fan out across the pool.
    std::vector<fault::SoftCampaignResult> results(names.size() *
                                                   kNumModes);
    {
        ThreadPool pool;
        pool.parallelFor(results.size(), [&](size_t k) {
            const BenchProgram &bench = suite.get(names[k / kNumModes]);
            fault::SoftCampaignConfig cfg;
            cfg.protect = kModes[k % kNumModes];
            cfg.trials = trials;
            results[k] = fault::runSoftCampaign(bench.image, cfg);
        });
    }

    TextTable t;
    t.setTitle(strfmt("Extension: soft-error coverage (%u upsets per "
                      "kind x %u kinds per mode)",
                      trials, fault::kNumMemFaultKinds));
    t.addHeader({"Bench", "Protection", "Upsets", "clean", "corrected",
                 "refetched", "detected", "silent-wrong", "silent-rate"});

    unsigned protected_silent = 0;
    unsigned none_silent = 0;
    unsigned none_upsets = 0;
    bool all_counted = true;
    fault::SoftCampaignResult secded_total;
    for (size_t i = 0; i < names.size(); ++i) {
        for (unsigned m = 0; m < kNumModes; ++m) {
            const fault::SoftCampaignResult &r =
                results[i * kNumModes + m];
            ProtectKind kind = kModes[m];
            t.addRow({m == 0 ? names[i] : "", protectKindName(kind),
                      std::to_string(r.trials),
                      std::to_string(r.count(fault::SoftOutcome::Clean)),
                      std::to_string(
                          r.count(fault::SoftOutcome::Corrected)),
                      std::to_string(
                          r.count(fault::SoftOutcome::Refetched)),
                      std::to_string(r.count(
                          fault::SoftOutcome::DetectedUnrecoverable)),
                      std::to_string(r.silentWrong()),
                      strfmt("%.2f%%", 100.0 * r.silentWrong() /
                                           (r.trials ? r.trials : 1))});
            all_counted = all_counted && r.trials == per_mode;
            if (kind == ProtectKind::None) {
                none_silent += r.silentWrong();
                none_upsets += r.trials;
            } else {
                protected_silent += r.silentWrong();
            }
            if (kind == ProtectKind::SecDed) {
                for (unsigned o = 0; o < fault::kNumSoftOutcomes; ++o)
                    secded_total.byOutcome[o] += r.byOutcome[o];
                secded_total.trials += r.trials;
            }
            if (r.silentWrong() > 0 && kind != ProtectKind::None)
                std::printf("  !! %s/%s first escape: %s\n",
                            names[i].c_str(), protectKindName(kind),
                            r.firstSilentWrong.describe().c_str());
        }
    }
    t.print();

    // Storage cost of the check bits, charged honestly into the
    // composition tables (comp.protectionBits).
    codepack::DecompressorConfig dcfg;
    TextTable c;
    c.setTitle("Protection storage and modeled recovery latency");
    c.addHeader({"Bench", "crc8 cost", "crc16 cost", "secded cost",
                 "check", "correct", "refetch"});
    double secded_cost_sum = 0.0;
    double refetch_sum = 0.0;
    for (const std::string &name : names) {
        const BenchProgram &bench = suite.get(name);
        double c8 = overheadPct(bench.image, ProtectKind::Crc8);
        double c16 = overheadPct(bench.image, ProtectKind::Crc16);
        double sd = overheadPct(bench.image, ProtectKind::SecDed);
        double rf = refetchCycles(bench.image, dcfg);
        secded_cost_sum += sd;
        refetch_sum += rf;
        c.addRow({name, strfmt("%.2f%%", c8), strfmt("%.2f%%", c16),
                  strfmt("%.2f%%", sd),
                  strfmt("%u cyc", dcfg.eccCheckCycles),
                  strfmt("+%u cyc", dcfg.eccCorrectCycles),
                  strfmt("%.1f cyc", rf)});
    }
    c.print();

    std::string section = strfmt(
        ",\n  \"softerr\": {\n"
        "    \"trials_per_kind\": %u,\n"
        "    \"upsets_per_profile\": %u,\n"
        "    \"profiles\": %zu,\n"
        "    \"none_upsets\": %u,\n"
        "    \"none_silent_wrong\": %u,\n"
        "    \"none_silent_rate\": %.6f,\n"
        "    \"protected_silent_wrong\": %u,\n"
        "    \"secded_upsets\": %u,\n"
        "    \"secded_corrected\": %u,\n"
        "    \"secded_refetched\": %u,\n"
        "    \"secded_detected\": %u,\n"
        "    \"secded_cost_pct_mean\": %.4f,\n"
        "    \"check_cycles\": %u,\n"
        "    \"correct_cycles\": %u,\n"
        "    \"refetch_cycles_mean\": %.2f\n"
        "  }",
        trials, per_mode * kNumModes, names.size(), none_upsets,
        none_silent,
        static_cast<double>(none_silent) /
            (none_upsets ? none_upsets : 1),
        protected_silent, secded_total.trials,
        secded_total.count(fault::SoftOutcome::Corrected),
        secded_total.count(fault::SoftOutcome::Refetched),
        secded_total.count(fault::SoftOutcome::DetectedUnrecoverable),
        secded_cost_sum / names.size(), dcfg.eccCheckCycles,
        dcfg.eccCorrectCycles, refetch_sum / names.size());
    if (!writeSoftErrJson(section))
        std::fprintf(stderr, "could not write BENCH_simperf.json\n");
    else
        std::printf("\nMerged \"softerr\" into BENCH_simperf.json.\n");

    std::printf("\nReading: unprotected compressed code decodes %u of "
                "%u upsets to wrong instructions with no error raised; "
                "with per-block protection on, every modeled upset is "
                "corrected in place, recovered by refetch, or refused "
                "loudly (%u silent escapes). SEC-DED buys single-bit "
                "correction for a ~12%% storage premium; the CRCs "
                "detect-only for 1-2 bytes per block.\n",
                none_silent, none_upsets, protected_silent);
    return (all_counted && protected_silent == 0) ? 0 : 1;
}
