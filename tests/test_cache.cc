/**
 * @file
 * Set-associative cache tests: geometry, hits/misses, LRU replacement,
 * dirty-bit tracking, and parameterized sweeps over the paper's cache
 * configurations.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace cps
{
namespace
{

TEST(Cache, GeometryDerivation)
{
    CacheConfig cfg{16 * 1024, 32, 2};
    EXPECT_EQ(cfg.numSets(), 256u);
    Cache c(cfg);
    EXPECT_EQ(c.lineAddr(0x12345), 0x12340u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c({1024, 32, 2});
    EXPECT_FALSE(c.access(0x1000));
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x101f)); // same line
    EXPECT_FALSE(c.access(0x1020)); // next line
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c({64, 32, 2}); // 1 set, 2 ways
    c.fill(0x0);
    c.fill(0x1000);
    // Probing 0x0 must not refresh its LRU position.
    EXPECT_TRUE(c.probe(0x0));
    c.fill(0x2000); // evicts true-LRU 0x0
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_TRUE(c.probe(0x1000));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c({64, 32, 2}); // 1 set, 2 ways
    c.fill(0x0);
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x0)); // refresh 0x0; LRU is now 0x1000
    CacheVictim v = c.fill(0x2000);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0x1000u);
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, FillReportsInvalidVictimWhenWaysFree)
{
    Cache c({64, 32, 2});
    CacheVictim v = c.fill(0x0);
    EXPECT_FALSE(v.valid);
}

TEST(Cache, DirtyVictimReported)
{
    Cache c({64, 32, 2});
    c.fill(0x0);
    c.setDirty(0x0);
    c.fill(0x1000);
    CacheVictim v = c.fill(0x2000); // evicts 0x0 (LRU)
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.lineAddr, 0x0u);
}

TEST(Cache, CleanVictimNotDirty)
{
    Cache c({64, 32, 2});
    c.fill(0x0);
    c.fill(0x1000);
    CacheVictim v = c.fill(0x2000);
    EXPECT_TRUE(v.valid);
    EXPECT_FALSE(v.dirty);
}

TEST(Cache, DirtyBitClearedOnRefill)
{
    Cache c({64, 32, 2});
    c.fill(0x0);
    c.setDirty(0x0);
    c.fill(0x1000);
    c.fill(0x2000); // 0x0 evicted dirty
    c.fill(0x0);    // re-fill clean
    c.fill(0x3000); // hmm: evicts LRU
    // Either way, re-filled 0x0 must not be dirty if evicted now.
    CacheVictim v = c.fill(0x4000);
    if (v.valid && v.lineAddr == 0x0) {
        EXPECT_FALSE(v.dirty);
    }
}

TEST(Cache, SetsIsolateAddresses)
{
    Cache c({1024, 32, 2}); // 16 sets
    // Same set index (bits 5..8): addresses 0x0 and 0x200 differ in set.
    c.fill(0x0);
    c.fill(0x20);
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_TRUE(c.probe(0x20));
}

TEST(Cache, InvalidateAllEmptiesCache)
{
    Cache c({1024, 32, 2});
    c.fill(0x0);
    c.fill(0x100);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, DirectMappedConflicts)
{
    Cache c({256, 32, 1}); // 8 sets, direct mapped
    c.fill(0x0);
    EXPECT_TRUE(c.probe(0x0));
    c.fill(0x100); // same set (0x100/32 = 8 -> set 0)
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_TRUE(c.probe(0x100));
}

/** Working sets up to the cache size never miss after warmup (LRU). */
class CacheSweep
    : public ::testing::TestWithParam<std::tuple<u32, u32>>
{};

TEST_P(CacheSweep, ResidentWorkingSetHasNoSteadyStateMisses)
{
    auto [size_kb, assoc] = GetParam();
    CacheConfig cfg{size_kb * 1024, 32, assoc};
    Cache c(cfg);
    u32 lines = cfg.sizeBytes / cfg.lineBytes;
    // Warmup: touch every line once.
    for (u32 i = 0; i < lines; ++i) {
        if (!c.access(i * 32))
            c.fill(i * 32);
    }
    // Steady state: everything hits, in any order.
    for (u32 round = 0; round < 3; ++round) {
        for (u32 i = 0; i < lines; ++i)
            EXPECT_TRUE(c.access(((lines - 1 - i) * 32)));
    }
}

TEST_P(CacheSweep, OverCapacityWorkingSetThrashes)
{
    auto [size_kb, assoc] = GetParam();
    CacheConfig cfg{size_kb * 1024, 32, assoc};
    Cache c(cfg);
    u32 lines = 2 * cfg.sizeBytes / cfg.lineBytes; // 2x capacity
    u64 misses = 0;
    for (u32 round = 0; round < 3; ++round) {
        for (u32 i = 0; i < lines; ++i) {
            if (!c.access(i * 32)) {
                ++misses;
                c.fill(i * 32);
            }
        }
    }
    // Sequential sweep of 2x capacity under LRU misses every access.
    EXPECT_EQ(misses, static_cast<u64>(lines) * 3);
}


// ------------------------------------------------- replacement policies

TEST(CachePolicy, FifoIgnoresRecency)
{
    CacheConfig cfg{64, 32, 2};
    cfg.policy = ReplPolicy::Fifo;
    Cache c(cfg);
    c.fill(0x0);
    c.fill(0x1000);
    // Touch 0x0: under LRU this would protect it; FIFO evicts it anyway
    // (it was inserted first).
    EXPECT_TRUE(c.access(0x0));
    c.fill(0x2000);
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_TRUE(c.probe(0x1000));
}

TEST(CachePolicy, RandomIsDeterministicAcrossRuns)
{
    auto run = [] {
        CacheConfig cfg{256, 32, 4};
        cfg.policy = ReplPolicy::Random;
        Cache c(cfg);
        u64 misses = 0;
        for (int round = 0; round < 8; ++round) {
            for (Addr a = 0; a < 0x800; a += 32) {
                if (!c.access(a)) {
                    ++misses;
                    c.fill(a);
                }
            }
        }
        return misses;
    };
    EXPECT_EQ(run(), run());
}

TEST(CachePolicy, LruBeatsRandomOnLoopingWorkingSet)
{
    // A working set slightly over capacity, revisited cyclically:
    // random replacement keeps some lines by luck; LRU evicts exactly
    // the line about to be used (pathological) -- so here random should
    // not be *worse* than 100% missing, while LRU is.
    auto misses_with = [](ReplPolicy policy) {
        CacheConfig cfg{256, 32, 8}; // fully assoc: 8 lines
        cfg.policy = policy;
        Cache c(cfg);
        u64 misses = 0;
        for (int round = 0; round < 50; ++round) {
            for (Addr a = 0; a < 9 * 32; a += 32) { // 9 lines > 8 ways
                if (!c.access(a)) {
                    ++misses;
                    c.fill(a);
                }
            }
        }
        return misses;
    };
    u64 lru = misses_with(ReplPolicy::Lru);
    u64 rnd = misses_with(ReplPolicy::Random);
    EXPECT_EQ(lru, 50u * 9u); // LRU thrashes completely
    EXPECT_LT(rnd, lru);      // random retains some of the set
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, CacheSweep,
    ::testing::Values(std::make_tuple(1u, 2u), std::make_tuple(4u, 2u),
                      std::make_tuple(8u, 2u), std::make_tuple(16u, 2u),
                      std::make_tuple(32u, 2u), std::make_tuple(64u, 2u),
                      std::make_tuple(16u, 1u), std::make_tuple(16u, 4u)));

} // namespace
} // namespace cps
