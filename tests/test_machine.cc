/**
 * @file
 * End-to-end machine tests: the three Table 2 machines under the three
 * code models, architectural equivalence of compressed execution, and
 * the qualitative performance relations the paper reports.
 */

#include <gtest/gtest.h>

#include "codepack/resilience.hh"
#include "harness/suite.hh"

namespace cps
{
namespace
{

TEST(MachineConfigs, Table2Presets)
{
    MachineConfig c1 = baseline1Issue();
    EXPECT_TRUE(c1.pipeline.inOrder);
    EXPECT_EQ(c1.pipeline.width, 1u);
    EXPECT_EQ(c1.icache.sizeBytes, 8u * 1024);
    EXPECT_EQ(c1.dcache.lineBytes, 16u);
    EXPECT_EQ(c1.pipeline.predictor, PredictorKind::Bimodal2k);

    MachineConfig c4 = baseline4Issue();
    EXPECT_FALSE(c4.pipeline.inOrder);
    EXPECT_EQ(c4.pipeline.width, 4u);
    EXPECT_EQ(c4.icache.sizeBytes, 16u * 1024);
    EXPECT_EQ(c4.pipeline.numAlu, 4u);
    EXPECT_EQ(c4.pipeline.numMemPorts, 2u);
    EXPECT_EQ(c4.pipeline.predictor, PredictorKind::Gshare14);

    MachineConfig c8 = baseline8Issue();
    EXPECT_EQ(c8.pipeline.width, 8u);
    EXPECT_EQ(c8.icache.sizeBytes, 32u * 1024);
    EXPECT_EQ(c8.pipeline.predictor, PredictorKind::Hybrid1k);

    // Shared memory system (Table 2: same for all three).
    EXPECT_EQ(c1.mem.busWidthBits, 64u);
    EXPECT_EQ(c1.mem.firstAccess, 10u);
    EXPECT_EQ(c1.mem.beatRate, 2u);
}

TEST(Machine, CodePackModelsNeedAnImage)
{
    EXPECT_DEATH(
        {
            const BenchProgram &b = Suite::instance().get("pegwit");
            Machine m(b.program,
                      baseline4Issue().withCodeModel(CodeModel::CodePack),
                      nullptr);
        },
        "compressed image");
}

class CodeModelTest : public ::testing::TestWithParam<CodeModel>
{};

TEST_P(CodeModelTest, ExecutionIsArchitecturallyIdentical)
{
    const BenchProgram &b = Suite::instance().get("pegwit");
    MachineConfig cfg = baseline4Issue().withCodeModel(GetParam());
    Machine m(b.program, cfg, &b.image);
    RunResult r = m.run(50000);
    EXPECT_GE(r.instructions, 50000u);
    // Compare architectural state with a plain native run.
    Machine ref(b.program, baseline4Issue(), nullptr);
    RunResult rr = ref.run(50000);
    EXPECT_EQ(r.instructions, rr.instructions);
    EXPECT_EQ(m.executor().state().gpr, ref.executor().state().gpr);
    EXPECT_EQ(m.executor().state().pc, ref.executor().state().pc);
}

INSTANTIATE_TEST_SUITE_P(AllModels, CodeModelTest,
                         ::testing::Values(CodeModel::Native,
                                           CodeModel::CodePack,
                                           CodeModel::CodePackOptimized));

TEST(Machine, DeterministicCycles)
{
    const BenchProgram &b = Suite::instance().get("go");
    for (CodeModel model : {CodeModel::Native, CodeModel::CodePack}) {
        MachineConfig cfg = baseline4Issue().withCodeModel(model);
        RunOutcome a = runMachine(b, cfg, 100000);
        RunOutcome c = runMachine(b, cfg, 100000);
        EXPECT_EQ(a.result.cycles, c.result.cycles);
    }
}

TEST(Machine, MissCountsIdenticalAcrossCodeModels)
{
    // The I-cache sees the same access stream whichever way misses are
    // filled, so miss counts must match between native and CodePack.
    const BenchProgram &b = Suite::instance().get("go");
    RunOutcome native = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::Native), 150000);
    RunOutcome cp = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::CodePack), 150000);
    EXPECT_EQ(native.icacheMisses, cp.icacheMisses);
}

TEST(Machine, OptimizedBeatsBaselineDecompressor)
{
    // Paper §5.3: the index cache + wider decoder always help.
    const BenchProgram &b = Suite::instance().get("cc1");
    RunOutcome cp = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::CodePack), 200000);
    RunOutcome opt = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::CodePackOptimized),
        200000);
    EXPECT_LT(opt.result.cycles, cp.result.cycles);
}

TEST(Machine, BaselineCodePackSlowerThanNativeOnCc1)
{
    // Paper §5.2: compressed code loses to native on the miss-heavy
    // benchmarks with the baseline decompressor.
    const BenchProgram &b = Suite::instance().get("cc1");
    RunOutcome native = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::Native), 200000);
    RunOutcome cp = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::CodePack), 200000);
    EXPECT_GT(cp.result.cycles, native.result.cycles);
    // ... but the loss is bounded (paper: < 18% at 4-issue).
    EXPECT_LT(speedup(native, cp), 1.0);
    EXPECT_GT(speedup(native, cp), 0.78);
}

TEST(Machine, LowMissBenchmarksAreInsensitive)
{
    // Paper §5.2: mpeg2enc and pegwit show no significant difference.
    const BenchProgram &b = Suite::instance().get("mpeg2enc");
    RunOutcome native = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::Native), 200000);
    RunOutcome cp = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::CodePack), 200000);
    double s = speedup(native, cp);
    EXPECT_GT(s, 0.97);
    EXPECT_LT(s, 1.03);
}

TEST(Machine, PerfectIndexCacheAtLeastAsGoodAsReal)
{
    const BenchProgram &b = Suite::instance().get("go");
    MachineConfig real = baseline4Issue();
    real.codeModel = CodeModel::CodePackCustom;
    real.decomp = codepack::DecompressorConfig::optimized();
    MachineConfig perfect = real;
    perfect.decomp.perfectIndexCache = true;
    RunOutcome r = runMachine(b, real, 150000);
    RunOutcome p = runMachine(b, perfect, 150000);
    EXPECT_LE(p.result.cycles, r.result.cycles);
}

TEST(Machine, NarrowBusFavoursCompression)
{
    // Paper Table 11: on a 16-bit bus the optimized decompressor beats
    // native code on miss-heavy benchmarks.
    const BenchProgram &b = Suite::instance().get("go");
    MachineConfig native = baseline4Issue();
    native.mem.busWidthBits = 16;
    MachineConfig opt = native.withCodeModel(CodeModel::CodePackOptimized);
    RunOutcome rn = runMachine(b, native, 150000);
    RunOutcome ro = runMachine(b, opt, 150000);
    EXPECT_GT(speedup(rn, ro), 1.0);
}

TEST(Machine, SmallCachePenalizesBaselineCodePack)
{
    // Paper Table 10 at 1KB: baseline CodePack loses clearly; the
    // optimized decompressor wins clearly.
    const BenchProgram &b = Suite::instance().get("cc1");
    MachineConfig native = baseline4Issue();
    native.icache = CacheConfig{1024, 32, 2};
    MachineConfig cp = native.withCodeModel(CodeModel::CodePack);
    MachineConfig opt = native.withCodeModel(CodeModel::CodePackOptimized);
    RunOutcome rn = runMachine(b, native, 150000);
    RunOutcome rc = runMachine(b, cp, 150000);
    RunOutcome ro = runMachine(b, opt, 150000);
    EXPECT_LT(speedup(rn, rc), 0.97);
    EXPECT_GT(speedup(rn, ro), 1.10);
}

TEST(Machine, StatsExposeDecompressorBehaviour)
{
    const BenchProgram &b = Suite::instance().get("go");
    MachineConfig cfg = baseline4Issue().withCodeModel(CodeModel::CodePack);
    Machine m(b.program, cfg, &b.image);
    m.run(100000);
    EXPECT_GT(m.stats().value("decomp.misses"), 0u);
    EXPECT_GT(m.stats().value("decomp.buffer_hits"), 0u);
    EXPECT_GT(m.stats().value("decomp.index_lookups"), 0u);
    ASSERT_NE(m.decompressor(), nullptr);
    EXPECT_EQ(m.decompressor()->config().decodeRate, 1u);
}

TEST(Machine, NativeMachineHasNoDecompressor)
{
    const BenchProgram &b = Suite::instance().get("go");
    Machine m(b.program, baseline4Issue(), nullptr);
    EXPECT_EQ(m.decompressor(), nullptr);
}

TEST(Machine, SoftwareDecompressionIsArchitecturallyExact)
{
    const BenchProgram &b = Suite::instance().get("pegwit");
    MachineConfig cfg =
        baseline1Issue().withCodeModel(CodeModel::CodePackSoftware);
    Machine m(b.program, cfg, &b.image);
    RunResult r = m.run(50000);
    Machine ref(b.program, baseline1Issue(), nullptr);
    RunResult rr = ref.run(50000);
    EXPECT_EQ(r.instructions, rr.instructions);
    EXPECT_EQ(m.executor().state().gpr, ref.executor().state().gpr);
    EXPECT_GT(m.stats().value("swdecomp.traps"), 0u);
}

TEST(Machine, SoftwareDecompressionSlowerThanHardware)
{
    // The trap + serial software decode must cost more per miss than
    // the hardware engine on a miss-heavy benchmark.
    const BenchProgram &b = Suite::instance().get("cc1");
    RunOutcome hw = runMachine(
        b, baseline1Issue().withCodeModel(CodeModel::CodePack), 150000);
    RunOutcome sw = runMachine(
        b, baseline1Issue().withCodeModel(CodeModel::CodePackSoftware),
        150000);
    EXPECT_GT(sw.result.cycles, hw.result.cycles);
}

TEST(Machine, SoftwareHandlerCostScalesWithDecodeRate)
{
    const BenchProgram &b = Suite::instance().get("go");
    MachineConfig fast =
        baseline1Issue().withCodeModel(CodeModel::CodePackSoftware);
    fast.software.cyclesPerInsn = 2;
    MachineConfig slow = fast;
    slow.software.cyclesPerInsn = 16;
    RunOutcome rf = runMachine(b, fast, 150000);
    RunOutcome rs = runMachine(b, slow, 150000);
    EXPECT_LT(rf.result.cycles, rs.result.cycles);
}

TEST(Machine, SoftwareScratchpadServesOtherLine)
{
    const BenchProgram &b = Suite::instance().get("go");
    MachineConfig cfg =
        baseline1Issue().withCodeModel(CodeModel::CodePackSoftware);
    Machine m(b.program, cfg, &b.image);
    m.run(150000);
    EXPECT_GT(m.stats().value("swdecomp.buffer_hits"), 0u);
}

TEST(Machine, SlowMemoryFavoursOptimizedCodePack)
{
    // Paper Table 12: with 8x memory latency the optimized decompressor
    // beats native (fewer, costlier accesses).
    const BenchProgram &b = Suite::instance().get("cc1");
    MachineConfig native = baseline4Issue();
    native.mem.firstAccess = 80;
    native.mem.beatRate = 16;
    RunOutcome rn = runMachine(b, native, 150000);
    RunOutcome ro = runMachine(
        b, native.withCodeModel(CodeModel::CodePackOptimized), 150000);
    EXPECT_GT(speedup(rn, ro), 1.02);
}

TEST(Machine, WideBusErodesCodePackAdvantage)
{
    // Paper Table 11: the baseline decompressor degrades relative to
    // native as the bus widens.
    const BenchProgram &b = Suite::instance().get("cc1");
    double s_narrow, s_wide;
    {
        MachineConfig native = baseline4Issue();
        native.mem.busWidthBits = 16;
        RunOutcome rn = runMachine(b, native, 150000);
        RunOutcome rc = runMachine(
            b, native.withCodeModel(CodeModel::CodePack), 150000);
        s_narrow = speedup(rn, rc);
    }
    {
        MachineConfig native = baseline4Issue();
        native.mem.busWidthBits = 128;
        RunOutcome rn = runMachine(b, native, 150000);
        RunOutcome rc = runMachine(
            b, native.withCodeModel(CodeModel::CodePack), 150000);
        s_wide = speedup(rn, rc);
    }
    EXPECT_GT(s_narrow, s_wide);
}


TEST(Machine, EightIssueArchitecturallyExactUnderCodePack)
{
    const BenchProgram &b = Suite::instance().get("pegwit");
    Machine m(b.program,
              baseline8Issue().withCodeModel(CodeModel::CodePackOptimized),
              &b.image);
    RunResult r = m.run(50000);
    Machine ref(b.program, baseline8Issue(), nullptr);
    RunResult rr = ref.run(50000);
    EXPECT_EQ(r.instructions, rr.instructions);
    EXPECT_EQ(m.executor().state().gpr, ref.executor().state().gpr);
}

TEST(Machine, InOrderCodePackRunsAndLoses)
{
    // 1-issue embedded machine: baseline CodePack must run exactly and
    // lose a little on the miss-heavy benchmark (paper: < 14% loss).
    const BenchProgram &b = Suite::instance().get("cc1");
    RunOutcome native = runMachine(b, baseline1Issue(), 150000);
    RunOutcome cp = runMachine(
        b, baseline1Issue().withCodeModel(CodeModel::CodePack), 150000);
    double s = speedup(native, cp);
    EXPECT_LT(s, 1.0);
    EXPECT_GT(s, 0.86);
}

TEST(Machine, MissLatencyStatTracksFigure2)
{
    // Average critical-word latency must sit at or above the Figure 2
    // native anchor (10 cycles) and be finite.
    const BenchProgram &b = Suite::instance().get("go");
    Machine m(b.program, baseline4Issue(), nullptr);
    m.run(150000);
    u64 misses = m.stats().value("icache.misses");
    u64 latency = m.stats().value("icache.miss_latency_total");
    ASSERT_GT(misses, 0u);
    double avg = static_cast<double>(latency) /
                 static_cast<double>(misses);
    EXPECT_GE(avg, 10.0);
    EXPECT_LT(avg, 100.0);
}


/** Optimized CodePack must never lose to baseline on any benchmark. */
class BenchSweep : public ::testing::TestWithParam<const char *>
{};

TEST_P(BenchSweep, OptimizedNeverSlowerThanBaselineCodePack)
{
    const BenchProgram &b = Suite::instance().get(GetParam());
    RunOutcome cp = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::CodePack), 100000);
    RunOutcome opt = runMachine(
        b, baseline4Issue().withCodeModel(CodeModel::CodePackOptimized),
        100000);
    EXPECT_LE(opt.result.cycles, cp.result.cycles);
}

TEST_P(BenchSweep, CompressedRunsAreArchitecturallyExact)
{
    const BenchProgram &b = Suite::instance().get(GetParam());
    Machine m(b.program,
              baseline4Issue().withCodeModel(CodeModel::CodePack),
              &b.image);
    m.run(60000);
    Machine ref(b.program, baseline4Issue(), nullptr);
    ref.run(60000);
    EXPECT_EQ(m.executor().state().gpr, ref.executor().state().gpr);
    EXPECT_EQ(m.executor().state().fpr, ref.executor().state().fpr);
    EXPECT_EQ(m.executor().state().pc, ref.executor().state().pc);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchSweep,
                         ::testing::Values("cc1", "go", "mpeg2enc",
                                           "pegwit", "perl", "vortex"));

TEST(Machine, ProtectedZeroCheckCyclesMatchesUnprotectedCycles)
{
    // SEC-DED on, zero upsets, zero modeled check latency: the run
    // must be cycle-identical to the unprotected machine — protection
    // changes nothing but the verify pass it charges for.
    const BenchProgram &b = Suite::instance().get("pegwit");
    MachineConfig cfg = baseline4Issue();
    cfg.codeModel = CodeModel::CodePackCustom;
    cfg.decomp = codepack::DecompressorConfig::optimized();
    RunOutcome plain = runMachineSerial(b, cfg, 50000);

    codepack::CompressedImage img = b.image;
    codepack::protectImage(img, ProtectKind::SecDed);
    codepack::SoftErrorDomain domain(img, /*seed=*/5,
                                     /*flip_rate_ppm=*/0, 2);
    cfg.decomp.protect = ProtectKind::SecDed;
    cfg.decomp.eccCheckCycles = 0;
    cfg.decomp.softErrorDomain = &domain;
    Machine machine(b.program, cfg, &img);
    RunResult res = machine.run(50000);
    EXPECT_EQ(res.status, RunStatus::Ok);
    EXPECT_EQ(res.cycles, plain.result.cycles);
    EXPECT_EQ(res.instructions, plain.result.instructions);
    EXPECT_EQ(domain.stats().unrecoverable, 0u);
    EXPECT_EQ(domain.stats().corrected, 0u);
}

TEST(Machine, UnrecoverableUpsetReportsDecodeFault)
{
    // Corrupt every block in both the working memory and the refetch
    // source under a detect-only CRC: whichever block the run fetches
    // first is refused, and the machine condemns the whole run instead
    // of executing wrong instructions.
    const BenchProgram &b = Suite::instance().get("pegwit");
    codepack::CompressedImage img = b.image;
    codepack::protectImage(img, ProtectKind::Crc8);
    codepack::SoftErrorDomain domain(img, /*seed=*/5,
                                     /*flip_rate_ppm=*/0, 1);
    for (u32 f = 0; f < img.numBlocks(); ++f) {
        if (img.blocks[f].byteLen == 0)
            continue;
        img.bytes[img.blocks[f].byteOffset] ^= 0x01;
        domain.corruptBacking(f, 0);
    }
    domain.noteCorruption();
    MachineConfig cfg = baseline4Issue();
    cfg.codeModel = CodeModel::CodePackCustom;
    cfg.decomp = codepack::DecompressorConfig::optimized();
    cfg.decomp.protect = ProtectKind::Crc8;
    cfg.decomp.softErrorDomain = &domain;
    Machine machine(b.program, cfg, &img);
    RunResult res = machine.run(50000);
    EXPECT_EQ(res.status, RunStatus::DecodeFault);
    EXPECT_NE(res.statusDetail.find("group"), std::string::npos)
        << res.statusDetail;
    EXPECT_NE(res.statusDetail.find("bit"), std::string::npos)
        << res.statusDetail;
    EXPECT_GE(domain.stats().unrecoverable, 1u);
}

TEST(Suite, CachesGeneratedBenchmarks)
{
    const BenchProgram &a = Suite::instance().get("pegwit");
    const BenchProgram &b = Suite::instance().get("pegwit");
    EXPECT_EQ(&a, &b);
}

TEST(Suite, RunInsnsDefaultsToOneMillion)
{
    // (Environment overrides are exercised manually; the default must
    // hold when CPS_INSNS is unset.)
    if (getenv("CPS_INSNS") == nullptr) {
        EXPECT_EQ(Suite::runInsns(), 1000000u);
    }
}

} // namespace
} // namespace cps
