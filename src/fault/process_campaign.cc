#include "process_campaign.hh"

#include "common/logging.hh"

namespace cps
{
namespace fault
{

using harness::CellFault;
using harness::CellOutcome;
using harness::CellRunner;
using harness::CellRunnerConfig;
using harness::CellState;
using harness::RunRequest;

namespace
{

/** Byte-for-byte equality of the fields a table could print. */
bool
sameOutcome(const RunOutcome &a, const RunOutcome &b)
{
    return a.result.instructions == b.result.instructions &&
           a.result.cycles == b.result.cycles &&
           a.result.programExited == b.result.programExited &&
           a.result.status == b.result.status &&
           a.icacheMissRate == b.icacheMissRate &&
           a.indexCacheMissRate == b.indexCacheMissRate &&
           a.icacheMisses == b.icacheMisses &&
           a.bufferHits == b.bufferHits &&
           a.missLatencyTotal == b.missLatencyTotal;
}

} // namespace

harness::CellState
expectedStateFor(harness::CellFault fault)
{
    switch (fault) {
      case CellFault::None:
        return CellState::Ok;
      case CellFault::Crash:
        return CellState::Crashed;
      case CellFault::KillSelf:
        return CellState::Crashed;
      case CellFault::Hang:
        return CellState::Timeout;
      case CellFault::Garble:
        return CellState::ProtocolError;
      case CellFault::ExitNonzero:
        return CellState::ExitedError;
      case CellFault::CrashOnce:
        // With at least one retry the second attempt succeeds.
        return CellState::Ok;
    }
    return CellState::Ok;
}

ProcessCampaignResult
runProcessCampaign(const BenchProgram &bench, const MachineConfig &cfg,
                   const ProcessCampaignConfig &ccfg)
{
    // The faults are applied honestly: running them inline would crash
    // or hang this process, which is exactly what isolation prevents.
    CellRunnerConfig inline_cfg;
    CellRunner baseline_runner(inline_cfg);

    RunRequest healthy{&bench, cfg, ccfg.insns, ReplayMode::Auto,
                       CellFault::None};
    CellOutcome baseline = baseline_runner.run(healthy);
    cps_assert(baseline.status.ok(),
               "process campaign baseline cell failed: %s",
               baseline.status.describe().c_str());

    CellRunnerConfig iso_cfg;
    iso_cfg.isolate = true;
    iso_cfg.timeoutMs = ccfg.timeoutMs;
    iso_cfg.retries = ccfg.retries;
    iso_cfg.backoffMs = ccfg.backoffMs;
    CellRunner runner(iso_cfg);

    // CrashOnce only recovers when a retry exists; grant it one even
    // in a fail-fast campaign so the retry path itself is exercised.
    CellRunnerConfig retry_cfg = iso_cfg;
    if (retry_cfg.retries == 0)
        retry_cfg.retries = 1;
    CellRunner retry_runner(retry_cfg);

    const CellFault kFaults[] = {CellFault::Crash, CellFault::KillSelf,
                                 CellFault::Hang, CellFault::Garble,
                                 CellFault::ExitNonzero,
                                 CellFault::CrashOnce};

    ProcessCampaignResult res;
    for (CellFault fault : kFaults) {
        ProcessFaultRecord rec;
        rec.fault = fault;
        rec.expected = expectedStateFor(fault);

        const CellRunner &r =
            fault == CellFault::CrashOnce ? retry_runner : runner;

        // Healthy cells on either side of the faulted one: their
        // results must be untouched by the neighbour's death.
        CellOutcome before = r.run(healthy);
        RunRequest faulted = healthy;
        faulted.injectFault = fault;
        CellOutcome out = r.run(faulted);
        CellOutcome after = r.run(healthy);

        rec.observed = out.status.state;
        rec.asExpected = rec.observed == rec.expected;
        rec.detail = out.status.describe();
        rec.cleanMatched = before.status.ok() && after.status.ok() &&
                           sameOutcome(before.outcome, baseline.outcome) &&
                           sameOutcome(after.outcome, baseline.outcome);
        if (fault == CellFault::CrashOnce && rec.asExpected) {
            // The whole point of the retry: attempt 1 died, attempt 2
            // delivered the identical deterministic result.
            rec.asExpected = out.status.attempts == 2 &&
                             sameOutcome(out.outcome, baseline.outcome);
        }

        if (!rec.asExpected)
            ++res.mismatches;
        if (!rec.cleanMatched)
            ++res.cleanMismatches;
        res.records.push_back(std::move(rec));
    }
    return res;
}

} // namespace fault
} // namespace cps
