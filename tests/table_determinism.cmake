# Runs a table binary eight ways — engine serial (CPS_THREADS=1), on 8
# workers, on 8 workers with trace replay disabled (CPS_REPLAY=0), on 8
# workers against a cold then warm artifact cache, on 8 forked workers
# (CPS_ISOLATE=1), killed mid-matrix and resumed (CPS_RESUME=1), and
# with every run chunk-parallel in exact mode (CPS_CHUNK_EXACT=1) — and
# fails unless all eight stdouts are byte-identical. This is the
# user-visible face of five contracts: runMatrix determinism at any
# worker count, trace-replay equivalence with live execution,
# artifact-cache transparency, resilience transparency (worker
# isolation and journal replay change how cells execute, never what the
# table prints), and the chunk engine's exact-mode guarantee (stitched
# per-chunk deltas telescope to the serial totals).
#
# Expects: TABLE_BIN (the binary), WORK_DIR (scratch directory).
# Optional: OUT_PREFIX (scratch-file prefix, default "table_det").

if (NOT TABLE_BIN OR NOT WORK_DIR)
    message(FATAL_ERROR "TABLE_BIN and WORK_DIR are required")
endif()
if (NOT OUT_PREFIX)
    set(OUT_PREFIX "table_det")
endif()

set(serial_out "${WORK_DIR}/${OUT_PREFIX}_serial.txt")
set(parallel_out "${WORK_DIR}/${OUT_PREFIX}_parallel.txt")
set(live_out "${WORK_DIR}/${OUT_PREFIX}_live.txt")
set(cache_cold_out "${WORK_DIR}/${OUT_PREFIX}_cache_cold.txt")
set(cache_warm_out "${WORK_DIR}/${OUT_PREFIX}_cache_warm.txt")
set(cache_dir "${WORK_DIR}/${OUT_PREFIX}_cache")

set(ENV{CPS_INSNS} "20000")

# The three baseline runs pregenerate from scratch every time (cache
# disabled), as the suite did before the artifact cache existed.
set(ENV{CPS_ARTIFACT_CACHE} "0")

set(ENV{CPS_THREADS} "1")
execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${serial_out}
    RESULT_VARIABLE serial_rc)
if (NOT serial_rc EQUAL 0)
    message(FATAL_ERROR "serial run failed (rc=${serial_rc})")
endif()

set(ENV{CPS_THREADS} "8")
execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${parallel_out}
    RESULT_VARIABLE parallel_rc)
if (NOT parallel_rc EQUAL 0)
    message(FATAL_ERROR "parallel run failed (rc=${parallel_rc})")
endif()

set(ENV{CPS_REPLAY} "0")
execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${live_out}
    RESULT_VARIABLE live_rc)
if (NOT live_rc EQUAL 0)
    message(FATAL_ERROR "live (CPS_REPLAY=0) run failed (rc=${live_rc})")
endif()
unset(ENV{CPS_REPLAY})

# Cache runs: cold (fresh directory, computes and stores) then warm
# (loads everything back). Both must reproduce the baseline bytes.
set(ENV{CPS_ARTIFACT_CACHE} "1")
set(ENV{CPS_CACHE_DIR} "${cache_dir}")
file(REMOVE_RECURSE ${cache_dir})

execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${cache_cold_out}
    RESULT_VARIABLE cache_cold_rc)
if (NOT cache_cold_rc EQUAL 0)
    message(FATAL_ERROR "cache-cold run failed (rc=${cache_cold_rc})")
endif()

execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${cache_warm_out}
    RESULT_VARIABLE cache_warm_rc)
if (NOT cache_warm_rc EQUAL 0)
    message(FATAL_ERROR "cache-warm run failed (rc=${cache_warm_rc})")
endif()

# Isolated leg: every cell in a forked worker. The resilience layer
# must be invisible in the output — same bytes, pure overhead.
set(isolated_out "${WORK_DIR}/${OUT_PREFIX}_isolated.txt")
set(ENV{CPS_ISOLATE} "1")
execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${isolated_out}
    RESULT_VARIABLE isolated_rc)
if (NOT isolated_rc EQUAL 0)
    message(FATAL_ERROR "isolated (CPS_ISOLATE=1) run failed "
        "(rc=${isolated_rc})")
endif()
unset(ENV{CPS_ISOLATE})

# Interrupted/resumed leg: the first run journals each completed cell
# (CPS_RESUME=1) and the engine's test hook kills the process from
# inside runMatrix after 5 newly executed cells (exit 42, no cleanup —
# exactly what an external SIGKILL leaves behind). The rerun must
# replay the journaled cells, execute only the rest, and print the
# same bytes an uninterrupted run prints.
set(interrupted_out "${WORK_DIR}/${OUT_PREFIX}_interrupted.txt")
set(resumed_out "${WORK_DIR}/${OUT_PREFIX}_resumed.txt")
set(ENV{CPS_RESUME} "1")
set(ENV{CPS_TEST_EXIT_AFTER_CELLS} "5")
execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${interrupted_out}
    RESULT_VARIABLE interrupted_rc)
if (NOT interrupted_rc EQUAL 42)
    message(FATAL_ERROR "interrupted run was expected to die mid-matrix "
        "with exit 42, got rc=${interrupted_rc}")
endif()
unset(ENV{CPS_TEST_EXIT_AFTER_CELLS})

execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${resumed_out}
    RESULT_VARIABLE resumed_rc)
if (NOT resumed_rc EQUAL 0)
    message(FATAL_ERROR "resumed (CPS_RESUME=1) run failed "
        "(rc=${resumed_rc})")
endif()
unset(ENV{CPS_RESUME})

# Chunked-exact leg: every cell's run is split into ~4000-instruction
# chunks simulated in parallel with full-prefix warm-up. Exact mode is
# byte-identical to serial by construction; this leg enforces it at the
# whole-table level, on top of the 8-worker cell fan-out.
set(chunked_out "${WORK_DIR}/${OUT_PREFIX}_chunked.txt")
set(ENV{CPS_CHUNK_EXACT} "1")
set(ENV{CPS_CHUNK_INSNS} "4000")
execute_process(COMMAND ${TABLE_BIN}
    OUTPUT_FILE ${chunked_out}
    RESULT_VARIABLE chunked_rc)
if (NOT chunked_rc EQUAL 0)
    message(FATAL_ERROR "chunked (CPS_CHUNK_EXACT=1) run failed "
        "(rc=${chunked_rc})")
endif()
unset(ENV{CPS_CHUNK_EXACT})
unset(ENV{CPS_CHUNK_INSNS})

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${serial_out} ${parallel_out}
    RESULT_VARIABLE diff_rc)
if (NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "table output differs between CPS_THREADS=1 and CPS_THREADS=8")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${parallel_out} ${live_out}
    RESULT_VARIABLE replay_diff_rc)
if (NOT replay_diff_rc EQUAL 0)
    message(FATAL_ERROR
        "table output differs between trace replay and CPS_REPLAY=0")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${serial_out} ${cache_cold_out}
    RESULT_VARIABLE cold_diff_rc)
if (NOT cold_diff_rc EQUAL 0)
    message(FATAL_ERROR
        "table output differs between disabled and cold artifact cache")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${serial_out} ${cache_warm_out}
    RESULT_VARIABLE warm_diff_rc)
if (NOT warm_diff_rc EQUAL 0)
    message(FATAL_ERROR
        "table output differs between disabled and warm artifact cache")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${serial_out} ${isolated_out}
    RESULT_VARIABLE iso_diff_rc)
if (NOT iso_diff_rc EQUAL 0)
    message(FATAL_ERROR
        "table output differs between inline and CPS_ISOLATE=1 workers")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${serial_out} ${resumed_out}
    RESULT_VARIABLE resume_diff_rc)
if (NOT resume_diff_rc EQUAL 0)
    message(FATAL_ERROR "table output differs between an uninterrupted "
        "run and a killed-then-resumed (CPS_RESUME=1) run")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${serial_out} ${chunked_out}
    RESULT_VARIABLE chunk_diff_rc)
if (NOT chunk_diff_rc EQUAL 0)
    message(FATAL_ERROR "table output differs between serial runs and "
        "chunk-parallel exact mode (CPS_CHUNK_EXACT=1)")
endif()
