#include "chunked.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace cps
{
namespace harness
{

namespace
{

u64
envU64(const char *name, u64 dflt)
{
    const char *env = std::getenv(name);
    if (!env)
        return dflt;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end && *end == '\0')
        return static_cast<u64>(v);
    envWarnOnce(name, env, "an unsigned integer");
    return dflt;
}

/**
 * Retired-instruction count of the serial run the plan must
 * partition: a complete trace ends with the program's halt, so the
 * run stops at the shorter of the budget and the trace.
 */
u64
runLength(const TraceBuffer &trace, u64 max_insns)
{
    return trace.complete() ? std::min<u64>(max_insns, trace.size())
                            : max_insns;
}

} // namespace

const ChunkOptions &
ChunkOptions::fromEnv()
{
    static const ChunkOptions cached = [] {
        ChunkOptions opt;
        opt.chunkInsns = envU64("CPS_CHUNK_INSNS", 0);
        opt.warmupInsns = envU64("CPS_CHUNK_WARMUP", opt.warmupInsns);
        const char *exact = std::getenv("CPS_CHUNK_EXACT");
        opt.exact = exact != nullptr && std::string(exact) != "0";
        return opt;
    }();
    return cached;
}

std::vector<ChunkSpan>
planChunks(u64 run_insns, u64 min_body, const ChunkOptions &opt)
{
    std::vector<ChunkSpan> plan;
    if (run_insns == 0)
        return plan;
    if (min_body == 0)
        min_body = 1;

    unsigned threads = opt.threads ? opt.threads : defaultThreadCount();
    u64 body = opt.chunkInsns;
    if (body == 0)
        body = (run_insns + threads - 1) / std::max(1u, threads);
    // Fetch-ahead clamp: the OoO front end dispatches up to
    // replayLookahead entries past its retire budget, so a body
    // shorter than that would start inside the previous boundary's
    // fetch-ahead window. Round short bodies up...
    body = std::max(body, min_body);

    u64 start = 0;
    while (start < run_insns) {
        u64 end = std::min(run_insns, start + body);
        // ...and merge a short tail into its predecessor for the same
        // reason.
        if (end < run_insns && run_insns - end < min_body)
            end = run_insns;
        ChunkSpan s;
        s.bodyStart = start;
        s.end = end;
        s.warmStart = opt.exact ? 0
                      : start > opt.warmupInsns ? start - opt.warmupInsns
                                                : 0;
        plan.push_back(s);
        start = end;
    }
    return plan;
}

bool
chunkableRun(const BenchProgram &bench, const MachineConfig &cfg,
             u64 max_insns, const ChunkOptions &opt)
{
    if (!opt.enabled() || !Suite::replayEnabled() || !bench.trace)
        return false;
    const u64 lookahead = replayLookahead(cfg);
    if (!bench.trace->covers(max_insns, lookahead))
        return false;
    u64 n = runLength(*bench.trace, max_insns);
    return planChunks(n, lookahead + 1, opt).size() > 1;
}

RunOutcome
runMachineChunked(const BenchProgram &bench, const MachineConfig &cfg,
                  u64 max_insns, const ChunkOptions &opt)
{
    // Short traces, disabled replay, or a single-chunk plan: the
    // serial path is the result, not an approximation of it.
    if (!chunkableRun(bench, cfg, max_insns, opt))
        return runMachineSerial(bench, cfg, max_insns, ReplayMode::Auto);

    const TraceBuffer &trace = *bench.trace;
    const u64 lookahead = replayLookahead(cfg);
    const u64 n = runLength(trace, max_insns);
    const std::vector<ChunkSpan> plan =
        planChunks(n, lookahead + 1, opt);

    // Each chunk gets a fresh, self-contained Machine; slots are
    // pre-sized and indexed by chunk, so completion order (and thread
    // count) cannot affect the stitched result.
    struct Slot
    {
        ChunkRunResult chunk;
        std::vector<std::pair<std::string, u64>> finalStats;
    };
    std::vector<Slot> slots(plan.size());
    auto runOne = [&](size_t i) {
        const ChunkSpan &s = plan[i];
        Machine m(bench.program, cfg,
                  cfg.codeModel == CodeModel::Native ? nullptr
                                                     : &bench.image,
                  &trace);
        slots[i].chunk =
            m.runChunk({s.warmStart, s.warmupInsns(), s.bodyInsns()});
        slots[i].finalStats = m.stats().snapshot();
    };
    unsigned threads = opt.threads ? opt.threads : defaultThreadCount();
    if (threads <= 1 || plan.size() <= 1) {
        for (size_t i = 0; i < plan.size(); ++i)
            runOne(i);
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<size_t>(threads, plan.size())));
        pool.parallelFor(plan.size(), runOne);
    }

    // Stitch in chunk order. Every total is a sum of per-chunk body
    // deltas (final minus gate snapshot); in exact mode each gate
    // snapshot equals the serial state at that boundary, so the sums
    // telescope to the serial totals — byte-identical by construction.
    std::map<std::string, u64> totals;
    RunResult res;
    for (const Slot &slot : slots) {
        res.instructions += slot.chunk.body.instructions;
        res.cycles += slot.chunk.body.cycles;
        if (res.status == RunStatus::Ok &&
            slot.chunk.body.status != RunStatus::Ok) {
            res.status = slot.chunk.body.status;
            res.statusDetail = slot.chunk.body.statusDetail;
        }
        // Both snapshots come from the same StatSet (sorted by name);
        // names missing from the gate snapshot count from zero.
        auto gate = slot.chunk.statsAtGate.begin();
        const auto gate_end = slot.chunk.statsAtGate.end();
        for (const auto &kv : slot.finalStats) {
            while (gate != gate_end && gate->first < kv.first)
                ++gate;
            u64 at_gate =
                gate != gate_end && gate->first == kv.first ? gate->second
                                                            : 0;
            totals[kv.first] += kv.second - at_gate;
        }
    }
    res.programExited = slots.back().chunk.body.programExited;

    // The pipelines set their insn/cycle counters to whole-window
    // values at the end of each chunk; the run's numbers are the
    // stitched body sums.
    totals["pipeline.insns"] = res.instructions;
    totals["pipeline.cycles"] = res.cycles;

    auto value = [&](const char *name) {
        auto it = totals.find(name);
        return it == totals.end() ? u64{0} : it->second;
    };

    RunOutcome out;
    out.result = std::move(res);
    u64 line_accesses = value("icache.line_accesses");
    out.icacheMissRate =
        line_accesses == 0
            ? 0.0
            : static_cast<double>(value("icache.misses")) /
                  static_cast<double>(line_accesses);
    u64 lookups = value("decomp.index_lookups");
    out.indexCacheMissRate =
        lookups == 0
            ? 0.0
            : static_cast<double>(lookups - value("decomp.index_hits")) /
                  static_cast<double>(lookups);
    out.icacheMisses = value("icache.misses");
    out.bufferHits = value("decomp.buffer_hits");
    out.missLatencyTotal = value("icache.miss_latency_total");
    out.prefetchIssued = value("decomp.prefetch_issued") +
                         value("swdecomp.prefetch_issued");
    out.prefetchHits = value("decomp.prefetch_hits") +
                       value("swdecomp.prefetch_hits");
    return out;
}

} // namespace harness
} // namespace cps
