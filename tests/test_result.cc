/**
 * @file
 * Tests for the recoverable-error plumbing: Result<T>, Result<void>,
 * DecodeError formatting, and the CRC-32 used by the image format.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/crc32.hh"
#include "common/result.hh"

namespace cps
{
namespace
{

TEST(Result, OkCarriesValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(*r, 42);
    EXPECT_EQ(r.valueOr(7), 42);
}

TEST(Result, ErrorCarriesDiagnosis)
{
    Result<int> r = decodeErrorAtByte(DecodeStatus::Truncated, 132,
                                      "file ends at %s", "the header");
    ASSERT_FALSE(r.ok());
    EXPECT_FALSE(static_cast<bool>(r));
    EXPECT_EQ(r.error().status, DecodeStatus::Truncated);
    EXPECT_EQ(r.error().byteOffset(), 132u);
    EXPECT_EQ(r.error().bitOffset, 132u * 8);
    EXPECT_EQ(r.error().message, "file ends at the header");
    EXPECT_EQ(r.valueOr(7), 7);
}

TEST(Result, BitGranularOffsets)
{
    DecodeError err = decodeErrorAtBit(DecodeStatus::RangeError, 43,
                                       "index out of range");
    EXPECT_EQ(err.bitOffset, 43u);
    EXPECT_EQ(err.byteOffset(), 5u); // bit 43 lives in byte 5
}

TEST(Result, DescribeNamesStatusAndOffset)
{
    DecodeError err =
        decodeErrorAtByte(DecodeStatus::BadCrc, 20, "header mismatch");
    std::string s = err.describe();
    EXPECT_NE(s.find("bad-crc"), std::string::npos) << s;
    EXPECT_NE(s.find("byte 20"), std::string::npos) << s;
    EXPECT_NE(s.find("header mismatch"), std::string::npos) << s;
}

TEST(Result, VoidSpecialization)
{
    Result<void> ok;
    EXPECT_TRUE(ok.ok());
    Result<void> bad =
        decodeErrorAtByte(DecodeStatus::Malformed, 0, "nope");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().status, DecodeStatus::Malformed);
}

TEST(Result, MovesNonCopyablePayloads)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> taken = std::move(r.value());
    EXPECT_EQ(*taken, 9);
}

TEST(Result, EveryStatusHasAName)
{
    for (DecodeStatus s :
         {DecodeStatus::Ok, DecodeStatus::BadMagic,
          DecodeStatus::BadVersion, DecodeStatus::Truncated,
          DecodeStatus::BadCrc, DecodeStatus::BadHeader,
          DecodeStatus::RangeError, DecodeStatus::Malformed}) {
        EXPECT_STRNE(decodeStatusName(s), "unknown");
    }
}

// ------------------------------------------------------------- crc32

TEST(Crc32, KnownVectors)
{
    // The classic check value for CRC-32/IEEE.
    const u8 check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(crc32(check, sizeof(check)), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, ChainingMatchesOneShot)
{
    std::vector<u8> data;
    for (int i = 0; i < 300; ++i)
        data.push_back(static_cast<u8>(i * 7));
    u32 oneshot = crc32(data);
    u32 chained = crc32(data.data(), 100);
    chained = crc32(data.data() + 100, 200, chained);
    EXPECT_EQ(chained, oneshot);
}

TEST(Crc32, SensitiveToSingleBitFlips)
{
    std::vector<u8> data(64, 0xA5);
    u32 base = crc32(data);
    for (size_t bit = 0; bit < data.size() * 8; bit += 37) {
        std::vector<u8> mut = data;
        mut[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        EXPECT_NE(crc32(mut), base) << "bit " << bit;
    }
}

} // namespace
} // namespace cps
