/**
 * @file
 * Chunk-parallel simulation of a single run (speculative trace
 * chunking).
 *
 * The matrix engine parallelizes *across* cells; a single long run was
 * still strictly serial. This component parallelizes *within* one run,
 * transposing rapidgzip's chunked-decode architecture to simulation:
 * the recorded trace is split into N chunk bodies, each body is
 * simulated on its own thread-pool worker by a fresh Machine that
 * first replays a warm-up prefix of W preceding trace entries (caches,
 * predictors, and decompressor state heat up with statistics gated
 * off), and the per-chunk body deltas — instructions, cycles, and
 * every StatSet counter — are stitched in chunk order into one
 * RunOutcome.
 *
 * Two modes:
 *
 *  - Exact (`CPS_CHUNK_EXACT=1`): warm-up = the full preceding prefix.
 *    Every chunk's gate snapshot then equals the state a serial run
 *    has at that boundary, so the stitched sums telescope to the
 *    serial totals — byte-identical tables by construction, at any
 *    thread count (enforced by test_chunked_run and the
 *    table_determinism eight-way diff). Total simulated work is
 *    O(N·chunks/2), so exact mode trades throughput for a
 *    parallelism-tolerant correctness oracle.
 *
 *  - Speculative (`CPS_CHUNK_INSNS` / `CPS_CHUNK_WARMUP`): warm-up is
 *    a bounded W-entry prefix, SimPoint-style. Total work is
 *    N + chunks·W, so wall clock drops nearly linearly with workers;
 *    stitched stats differ from serial only by cold-boundary effects,
 *    which shrink as W grows (bench_ext_simperf reports the IPC and
 *    miss-rate deltas versus W). Deterministic at fixed knobs for any
 *    thread count: chunk boundaries depend only on the plan, never on
 *    scheduling.
 *
 * Runs that cannot chunk — replay disabled, no/short trace, or a plan
 * that collapses to one chunk — fall back to the serial path and are
 * indistinguishable from it.
 */

#ifndef CPS_HARNESS_CHUNKED_HH
#define CPS_HARNESS_CHUNKED_HH

#include <vector>

#include "suite.hh"

namespace cps
{
namespace harness
{

/** Chunk-parallel run policy (see CPS_CHUNK_* knobs in the README). */
struct ChunkOptions
{
    /** Target chunk-body length in instructions; 0 = split the run
     *  evenly across the workers. */
    u64 chunkInsns = 0;
    /** Speculative warm-up length in trace entries ahead of each chunk
     *  body (ignored in exact mode). */
    u64 warmupInsns = 4096;
    /** Warm up over the full preceding prefix: byte-identical to
     *  serial by construction. */
    bool exact = false;
    /** Worker threads for the per-chunk fan-out; 0 = defaultThreadCount. */
    unsigned threads = 0;

    /** True when any knob asks for chunked execution. */
    bool enabled() const { return exact || chunkInsns > 0; }

    /** The process-wide policy: CPS_CHUNK_INSNS, CPS_CHUNK_WARMUP,
     *  CPS_CHUNK_EXACT, read once. Disabled unless a knob is set. */
    static const ChunkOptions &fromEnv();
};

/** One chunk of a planned run: trace-entry indices, half-open. */
struct ChunkSpan
{
    u64 warmStart = 0; ///< replay starts here (cold machine state)
    u64 bodyStart = 0; ///< statistics gate: counting starts here
    u64 end = 0;       ///< replay (and counting) stop here

    u64 warmupInsns() const { return bodyStart - warmStart; }
    u64 bodyInsns() const { return end - bodyStart; }
};

/**
 * Splits a run of @p run_insns retired instructions into chunk spans
 * under @p opt. Bodies partition [0, run_insns); each body is at least
 * @p min_body instructions long (the OoO fetch-ahead clamp: a chunk
 * must never start inside the previous boundary's replayLookahead
 * window, so short tails merge into their predecessor). Returns a
 * single full-range span when the run is too short to split.
 */
std::vector<ChunkSpan> planChunks(u64 run_insns, u64 min_body,
                                  const ChunkOptions &opt);

/**
 * True when runMachineChunked would actually chunk this run: replay
 * enabled, the trace covers the run under the config's lookahead, and
 * the plan yields more than one chunk.
 */
bool chunkableRun(const BenchProgram &bench, const MachineConfig &cfg,
                  u64 max_insns, const ChunkOptions &opt);

/**
 * Runs @p bench under @p cfg for @p max_insns instructions by
 * simulating trace chunks in parallel and stitching the per-chunk
 * contributions (see file comment). Falls back to the serial
 * runMachineSerial path when the run cannot chunk.
 */
RunOutcome runMachineChunked(const BenchProgram &bench,
                             const MachineConfig &cfg, u64 max_insns,
                             const ChunkOptions &opt);

} // namespace harness
} // namespace cps

#endif // CPS_HARNESS_CHUNKED_HH
