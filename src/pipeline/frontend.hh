/**
 * @file
 * Control-flow prediction front end shared by both pipeline models:
 * direction predictor (per Table 2), branch target buffer, and return
 * address stack.
 *
 * The simulator is timing-directed along the correct path: on a
 * misprediction, fetch stalls until the branch resolves instead of
 * running the wrong path (a standard trace-driven approximation; the
 * penalty in cycles matches, wrong-path cache pollution is not
 * modelled).
 */

#ifndef CPS_PIPELINE_FRONTEND_HH
#define CPS_PIPELINE_FRONTEND_HH

#include <memory>

#include "branch/predictors.hh"
#include "common/bitops.hh"
#include "common/stats.hh"
#include "config.hh"
#include "core/executor.hh"

namespace cps
{

/** What the front end concluded about one control instruction. */
struct ControlOutcome
{
    bool mispredict = false; ///< full redirect: stall fetch until resolve
    bool minorBubble = false; ///< target computed at decode: 1-cycle hole
    /**
     * Where fetch runs until the branch resolves (the wrong path).
     * kAddrInvalid when the front end had no target to follow.
     */
    Addr wrongPath = kAddrInvalid;
};

/** Direction predictor + BTB + RAS, with paper-accurate configurations. */
class FrontEnd
{
  public:
    FrontEnd(PredictorKind kind, StatSet &stats)
        : dir_(makePredictor(kind)),
          statBranches_(stats.scalar("bpred.cond_branches")),
          statDirMiss_(stats.scalar("bpred.dir_mispredicts")),
          statIndirect_(stats.scalar("bpred.indirect_jumps")),
          statTargetMiss_(stats.scalar("bpred.target_mispredicts"))
    {}

    /**
     * Runs prediction for the control instruction described by @p rec
     * and trains all structures with the actual outcome.
     */
    ControlOutcome
    handleControl(const StepRecord &rec)
    {
        ControlOutcome out;
        const Inst &inst = *rec.inst;
        switch (rec.info->cls) {
          case InstClass::Branch: {
            statBranches_.inc();
            bool pred = dir_->predict(rec.pc);
            dir_->update(rec.pc, rec.taken);
            if (pred != rec.taken) {
                statDirMiss_.inc();
                out.mispredict = true;
                if (rec.taken) {
                    // Predicted not-taken: fetch runs sequentially.
                    out.wrongPath = rec.pc + 4;
                } else {
                    // Predicted taken: fetch runs at the branch target.
                    out.wrongPath =
                        rec.pc + 4 +
                        (static_cast<u32>(signExtend(inst.imm, 16)) << 2);
                }
            } else if (rec.taken) {
                // Correct direction; the target still has to come from
                // somewhere. A BTB miss costs one fetch bubble (target
                // available after decode).
                if (btb_.lookup(rec.pc) != rec.nextPc)
                    out.minorBubble = true;
            }
            if (rec.taken)
                btb_.update(rec.pc, rec.nextPc);
            break;
          }
          case InstClass::Jump: {
            // Direct j/jal: always taken, target in the instruction.
            if (btb_.lookup(rec.pc) != rec.nextPc)
                out.minorBubble = true;
            btb_.update(rec.pc, rec.nextPc);
            if (inst.op == Op::Jal)
                ras_.push(rec.pc + 4);
            break;
          }
          case InstClass::JumpReg: {
            statIndirect_.inc();
            Addr predicted;
            bool is_return = inst.op == Op::Jr && inst.rs == kRegRa;
            if (is_return)
                predicted = ras_.pop();
            else
                predicted = btb_.lookup(rec.pc);
            if (predicted != rec.nextPc) {
                statTargetMiss_.inc();
                out.mispredict = true;
                out.wrongPath = predicted; // may be kAddrInvalid (no pred)
            }
            if (!is_return)
                btb_.update(rec.pc, rec.nextPc);
            if (inst.op == Op::Jalr)
                ras_.push(rec.pc + 4);
            break;
          }
          default:
            break;
        }
        return out;
    }

    DirectionPredictor &predictor() { return *dir_; }

  private:
    static std::unique_ptr<DirectionPredictor>
    makePredictor(PredictorKind kind)
    {
        switch (kind) {
          case PredictorKind::Bimodal2k:
            return std::make_unique<BimodalPredictor>(2048);
          case PredictorKind::Gshare14:
            return std::make_unique<GsharePredictor>(14);
          case PredictorKind::Hybrid1k:
            return std::make_unique<HybridPredictor>(1024);
        }
        cps_panic("unknown predictor kind");
    }

    std::unique_ptr<DirectionPredictor> dir_;
    Btb btb_;
    ReturnAddressStack ras_;
    Counter &statBranches_;
    Counter &statDirMiss_;
    Counter &statIndirect_;
    Counter &statTargetMiss_;
};

} // namespace cps

#endif // CPS_PIPELINE_FRONTEND_HH
