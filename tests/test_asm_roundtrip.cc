/**
 * @file
 * Property test: disassembling a program and re-assembling the text at
 * the same base address reproduces the original encodings bit for bit.
 * This cross-checks the encoder, decoder, disassembler and assembler
 * against each other over randomly generated instruction streams.
 */

#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "common/rng.hh"
#include "isa/isa.hh"

namespace cps
{
namespace
{

/** Generates one random, re-assemblable instruction. */
u32
randomInst(Rng &rng, size_t index, size_t total)
{
    Inst inst;
    auto reg = [&rng] { return static_cast<u8>(rng.below(32)); };
    auto fpr = [&rng] { return static_cast<u8>(rng.below(32)); };

    switch (rng.below(12)) {
      case 0: {
        static const Op rrr[] = {Op::Add, Op::Addu, Op::Subu, Op::And,
                                 Op::Or, Op::Xor, Op::Nor, Op::Slt,
                                 Op::Sltu, Op::Mul, Op::Div, Op::Rem};
        inst.op = rrr[rng.below(12)];
        inst.rd = reg();
        inst.rs = reg();
        inst.rt = reg();
        break;
      }
      case 1:
        inst.op = rng.chancePercent(50) ? Op::Sll : Op::Sra;
        inst.rd = reg();
        inst.rt = reg();
        inst.shamt = static_cast<u8>(rng.below(32));
        break;
      case 2: {
        static const Op imm[] = {Op::Addiu, Op::Addi, Op::Slti};
        inst.op = imm[rng.below(3)];
        inst.rt = reg();
        inst.rs = reg();
        inst.imm = static_cast<u16>(rng.next());
        break;
      }
      case 3: {
        static const Op logical[] = {Op::Andi, Op::Ori, Op::Xori};
        inst.op = logical[rng.below(3)];
        inst.rt = reg();
        inst.rs = reg();
        inst.imm = static_cast<u16>(rng.next());
        break;
      }
      case 4:
        inst.op = Op::Lui;
        inst.rt = reg();
        inst.imm = static_cast<u16>(rng.next());
        break;
      case 5: {
        static const Op mem[] = {Op::Lb, Op::Lh, Op::Lw, Op::Lbu,
                                 Op::Lhu, Op::Sb, Op::Sh, Op::Sw};
        inst.op = mem[rng.below(8)];
        inst.rt = reg();
        inst.rs = reg();
        inst.imm = static_cast<u16>(rng.next());
        break;
      }
      case 6: {
        // Branch with an in-text target so re-assembly can resolve it.
        static const Op br[] = {Op::Beq, Op::Bne, Op::Blez, Op::Bgtz,
                                Op::Bltz, Op::Bgez};
        inst.op = br[rng.below(6)];
        inst.rs = reg();
        if (inst.op == Op::Beq || inst.op == Op::Bne)
            inst.rt = reg();
        s64 target = static_cast<s64>(rng.below(total));
        s64 disp = target - (static_cast<s64>(index) + 1);
        inst.imm = static_cast<u16>(disp);
        break;
      }
      case 7: {
        // Direct jump within the text.
        inst.op = rng.chancePercent(50) ? Op::J : Op::Jal;
        Addr target = kTextBase + 4 * static_cast<u32>(rng.below(total));
        inst.target = target >> 2;
        break;
      }
      case 8:
        inst.op = rng.chancePercent(50) ? Op::Jr : Op::Jalr;
        inst.rs = reg();
        if (inst.op == Op::Jalr)
            inst.rd = reg();
        break;
      case 9: {
        static const Op fp3[] = {Op::AddS, Op::SubS, Op::MulS, Op::DivS};
        inst.op = fp3[rng.below(4)];
        inst.shamt = fpr();
        inst.rd = fpr();
        inst.rt = fpr();
        break;
      }
      case 10: {
        static const Op fp2[] = {Op::AbsS, Op::NegS, Op::MovS,
                                 Op::CvtSW, Op::CvtWS};
        inst.op = fp2[rng.below(5)];
        inst.shamt = fpr();
        inst.rd = fpr();
        break;
      }
      default:
        inst.op = rng.chancePercent(50) ? Op::Mtc1 : Op::Mfc1;
        inst.rt = reg();
        inst.rd = fpr();
        break;
    }
    return encode(inst);
}

class AsmRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(AsmRoundTrip, DisassembleReassembleIsIdentity)
{
    Rng rng(static_cast<u64>(GetParam()) * 7919 + 13);
    const size_t n = 200;

    std::vector<u32> words;
    for (size_t i = 0; i < n; ++i)
        words.push_back(randomInst(rng, i, n));

    // Disassemble at the canonical base; first line gets a 'main' label
    // so the entry point stays put.
    std::string source = "main:\n";
    for (size_t i = 0; i < n; ++i) {
        Addr pc = kTextBase + static_cast<Addr>(i * 4);
        source += disassemble(words[i], pc);
        source += '\n';
    }

    AsmResult res = assembleSource(source);
    ASSERT_TRUE(res.ok()) << (res.errors.empty() ? "" : res.errors[0]);
    ASSERT_EQ(res.program.textWords(), n);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(res.program.word(i), words[i])
            << "insn " << i << ": "
            << disassemble(words[i],
                           kTextBase + static_cast<Addr>(i * 4));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsmRoundTrip, ::testing::Range(1, 17));

TEST(AsmRoundTrip, NopIsStable)
{
    AsmResult res = assembleSource("main:\n" + disassemble(kNopWord) +
                                   "\n");
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.program.word(0), kNopWord);
}

TEST(AsmRoundTrip, SyscallAndBreakStable)
{
    Inst sc;
    sc.op = Op::Syscall;
    Inst brk;
    brk.op = Op::Break;
    std::string src = "main:\n" + disassemble(encode(sc)) + "\n" +
                      disassemble(encode(brk)) + "\n";
    AsmResult res = assembleSource(src);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.program.word(0), encode(sc));
    EXPECT_EQ(res.program.word(1), encode(brk));
}

} // namespace
} // namespace cps
