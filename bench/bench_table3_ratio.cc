/**
 * @file
 * Reproduces Table 3: compression ratio of the .text section (compressed
 * size includes index table and dictionaries, per Eq. 1 of the paper).
 *
 * Paper values: cc1 60.5%, go 58.9%, mpeg2enc 63.1%, pegwit 61.1%,
 * perl 60.6%, vortex 55.4% (sizes as printed in Table 3).
 */

#include "common/table.hh"
#include "harness/suite.hh"

using namespace cps;

int
main()
{
    Suite &suite = Suite::instance();
    suite.pregenerate(); // generate + compress the suite in parallel

    TextTable t;
    t.setTitle("Table 3: Compression ratio of .text section");
    t.addHeader({"Bench", "Original (bytes)", "Compressed (bytes)",
                 "Ratio (smaller is better)", "Paper ratio"});

    const char *paper[] = {"60.5%", "58.9%", "63.1%",
                           "61.1%", "60.6%", "55.4%"};
    int row = 0;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        const codepack::CompressedImage &img = bench.image;
        t.addRow({name, TextTable::grouped(img.origTextBytes),
                  TextTable::grouped(img.comp.totalBytes()),
                  TextTable::pct(img.compressionRatio()),
                  paper[row++]});
    }
    t.print();
    return 0;
}
