#include "block_fetcher.hh"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.hh"

namespace cps
{
namespace codepack
{

BlockFetcher::Options
BlockFetcher::Options::fromEnv()
{
    Options o;
    o.slots = defaultBlockCacheSlots();
    if (const char *env = std::getenv("CPS_BLOCK_PREFETCH")) {
        std::string v(env);
        if (v == "0" || v == "off")
            o.prefetch = false;
        else if (v == "async")
            o.async = true;
        else if (!v.empty() && v != "1" && v != "sync")
            envWarnOnce("CPS_BLOCK_PREFETCH", env, "0|off|sync|async");
    }
    return o;
}

BlockFetcher::BlockFetcher(const Decompressor &decomp, Options opts,
                           StatSet *stats, SoftErrorDomain *domain)
    : decomp_(decomp), opts_(opts), domain_(domain)
{
    if (opts_.slots < 1)
        opts_.slots = 1;
    slab_.resize(opts_.slots);
    map_.assign(decomp_.image().numBlocks(), kInvalid);
    if (stats) {
        statHits_ = &stats->scalar("hostpf.hits");
        statFills_ = &stats->scalar("hostpf.fills");
        statPfIssued_ = &stats->scalar("hostpf.prefetch_issued");
        statPfHits_ = &stats->scalar("hostpf.prefetch_hits");
        // Registered only alongside a domain: the default stat roster
        // (and thus every existing table/report) is untouched when
        // protection is off.
        if (domain_)
            statPoisons_ = &stats->scalar("hostpf.poisons");
    }
}

BlockFetcher::~BlockFetcher()
{
    // Draining the pool runs every remaining task; a span the consumer
    // stole leaves its task a no-op. After the join nothing touches
    // span storage.
    pool_.reset();
    inflight_.clear();
}

const DecodedBlock &
BlockFetcher::get(u32 group, u32 block)
{
    return getFlat(group * kBlocksPerGroup + block);
}

const DecodedBlock &
BlockFetcher::getFlat(u32 flat)
{
    if (domain_) {
        Result<const DecodedBlock *> r = tryGetFlat(flat);
        if (!r)
            cps_panic("getFlat on a failed soft-error domain: %s",
                      r.error().describe().c_str());
        return **r;
    }
    train(flat);
    u32 i = map_[flat];
    if (i != kInvalid) {
        if (head_ != i) {
            unlink(i);
            pushFront(i);
        }
        Entry &e = slab_[i];
        const DecodedBlock *blk = &e.blk;
        if (e.span) {
            SpecSpan &s = *e.span;
            if (!s.done)
                resolveSpan(s);
            blk = &s.blks[e.lane];
        }
        if (e.prefetched) {
            // First touch of a speculatively decoded block.
            e.prefetched = false;
            ++pfHits_;
            if (statPfHits_)
                statPfHits_->inc();
        } else {
            ++hits_;
            if (statHits_)
                statHits_->inc();
        }
        // The entry stays MRU through the speculative round (at most
        // slots-1 inserts), so the returned reference — slab storage
        // or span storage pinned by e.span — outlives the round.
        issuePrefetches(flat);
        return *blk;
    }

    u32 slot = claimSlot(flat);
    Entry &e = slab_[slot];
    e.blk = decomp_.decompressFlatBlock(flat);
    pushFront(slot);
    ++fills_;
    if (statFills_)
        statFills_->inc();
    issuePrefetches(flat);
    return e.blk;
}

Result<const DecodedBlock *>
BlockFetcher::tryGetFlat(u32 flat)
{
    lastCheck_ = FetchCheck::Clean;
    if (domain_) {
        lastCheck_ = domain_->verifyBlock(flat);
        if (lastCheck_ == FetchCheck::Unrecoverable) {
            // Whatever copy the cache holds was fetched from memory
            // now known corrupt beyond repair; never serve it.
            poisonSlot(flat);
            return domain_->lastError();
        }
    }
    train(flat);
    u32 i = map_[flat];
    if (i != kInvalid) {
        Entry &e = slab_[i];
        bool stale = lastCheck_ != FetchCheck::Clean;
        if (e.span && !e.span->done)
            resolveSpan(*e.span);
        if (domain_ && e.span && !e.span->ok[e.lane])
            stale = true; // speculative decode of corrupt bytes failed
        if (!stale) {
            if (head_ != i) {
                unlink(i);
                pushFront(i);
            }
            const DecodedBlock *blk =
                e.span ? &e.span->blks[e.lane] : &e.blk;
            if (e.prefetched) {
                e.prefetched = false;
                ++pfHits_;
                if (statPfHits_)
                    statPfHits_->inc();
            } else {
                ++hits_;
                if (statHits_)
                    statHits_->inc();
            }
            issuePrefetches(flat);
            return blk;
        }
        // The cached decode predates the repair (correction/refetch)
        // of this block's memory: poison it and demand-decode the
        // repaired bytes below. The access accounts as a fill — the
        // decode really runs — so hits+fills+prefetchHits still sum
        // to successful accesses.
        poisonSlot(flat);
    }

    u32 slot = claimSlot(flat);
    Entry &e = slab_[slot];
    if (domain_) {
        // Checked even though verification passed: a weak detect-only
        // code (CRC-8 especially) can miss a multi-bit pattern, and
        // the decoder must then fail structurally, not panic.
        Result<DecodedBlock> blk = decomp_.tryDecompressBlock(
            flat / kBlocksPerGroup, flat % kBlocksPerGroup);
        if (!blk) {
            poisonSlot(flat);
            return blk.error();
        }
        e.blk = *blk;
    } else {
        e.blk = decomp_.decompressFlatBlock(flat);
    }
    pushFront(slot);
    ++fills_;
    if (statFills_)
        statFills_->inc();
    issuePrefetches(flat);
    return &e.blk;
}

void
BlockFetcher::poisonSlot(u32 flat)
{
    u32 i = map_[flat];
    if (i == kInvalid)
        return;
    unlink(i);
    Entry &e = slab_[i];
    map_[flat] = kInvalid;
    e.flat = kInvalid;
    e.prefetched = false;
    e.span.reset();
    // Park at the LRU tail: the invalidated slot is the next victim,
    // so poisoning never shrinks the effective cache.
    e.prev = tail_;
    e.next = kInvalid;
    if (tail_ != kInvalid)
        slab_[tail_].next = i;
    else
        head_ = i;
    tail_ = i;
    ++poisons_;
    if (statPoisons_)
        statPoisons_->inc();
}

void
BlockFetcher::quiesce()
{
    for (auto &span : inflight_)
        if (!span->done)
            resolveSpan(*span);
    inflight_.clear();
}

void
BlockFetcher::unlink(u32 i)
{
    Entry &e = slab_[i];
    if (e.prev != kInvalid)
        slab_[e.prev].next = e.next;
    else
        head_ = e.next;
    if (e.next != kInvalid)
        slab_[e.next].prev = e.prev;
    else
        tail_ = e.prev;
    e.prev = e.next = kInvalid;
}

void
BlockFetcher::pushFront(u32 i)
{
    Entry &e = slab_[i];
    e.prev = kInvalid;
    e.next = head_;
    if (head_ != kInvalid)
        slab_[head_].prev = i;
    head_ = i;
    if (tail_ == kInvalid)
        tail_ = i;
}

u32
BlockFetcher::claimSlot(u32 flat)
{
    u32 i = map_[flat];
    if (i != kInvalid) {
        // Replacing a resident block (a frontier-tracked span can
        // cover one that survived an earlier run): reuse its slot so
        // the map stays one-slot-per-flat.
        unlink(i);
    } else if (live_ < opts_.slots) {
        i = live_++;
    } else {
        i = tail_;
        unlink(i);
        if (slab_[i].flat != kInvalid) // poisoned victims left no map entry
            map_[slab_[i].flat] = kInvalid;
    }
    Entry &e = slab_[i];
    e.flat = flat;
    e.prefetched = false;
    e.span.reset();
    map_[flat] = i;
    return i;
}

void
BlockFetcher::train(u32 flat)
{
    if (haveLast_ && lastFlat_ == flat)
        return;
    if (haveLast_) {
        s64 s = static_cast<s64>(flat) - static_cast<s64>(lastFlat_);
        if (s == stride_)
            ++conf_;
        else {
            stride_ = s;
            conf_ = 1;
            frontier_ = 0; // new run: re-anchor at the next trigger
        }
    }
    haveLast_ = true;
    lastFlat_ = flat;
}

void
BlockFetcher::issuePrefetches(u32 flat)
{
    if (!opts_.prefetch || conf_ < 2 || stride_ == 0)
        return;
    // Clamp the window to half the cache. Beyond that, speculative
    // inserts land on top of predicted-but-unclaimed entries — the
    // next blocks the caller will ask for — and the whole window
    // becomes wasted decode (measured: a 48-deep window in a 64-slot
    // cache turns ~100% of predictions into evict-before-claim). The
    // clamp also keeps the entry the caller holds a reference to MRU
    // through the round.
    unsigned depth = std::min(opts_.depth, opts_.slots / 2);
    if (depth == 0)
        return;

    s64 nblocks = static_cast<s64>(map_.size());

    // Unit stride (sequential code) is the hot shape: a frontier marks
    // how far the current run has already been covered, so each access
    // extends coverage instead of rescanning the cache, and decodes
    // are dispatched only in full spans to amortize task-dispatch
    // overhead (the partial tail re-qualifies once the window slides).
    if (stride_ == 1) {
        s64 lo = std::max<s64>(frontier_, static_cast<s64>(flat) + 1);
        s64 hi =
            std::min<s64>(nblocks, static_cast<s64>(flat) + 1 + depth);
        u32 flats[kSpanBlocks];
        while (hi - lo >= kSpanBlocks) {
            for (unsigned l = 0; l < kSpanBlocks; ++l)
                flats[l] = static_cast<u32>(lo) + l;
            issueSpan(flats, kSpanBlocks, true);
            lo += kSpanBlocks;
        }
        frontier_ = static_cast<u32>(std::max<s64>(frontier_, lo));
        return;
    }

    // Non-unit strides predict far fewer blocks per round; gather the
    // not-yet-resident predictions into one (non-contiguous) span.
    u32 preds[kSpanBlocks];
    unsigned n = 0;
    unsigned ndepth = std::min(depth, kSpanBlocks);
    for (unsigned k = 1; k <= ndepth; ++k) {
        s64 p = static_cast<s64>(flat) + stride_ * static_cast<s64>(k);
        if (p < 0 || p >= nblocks)
            break;
        if (map_[static_cast<u32>(p)] == kInvalid)
            preds[n++] = static_cast<u32>(p);
    }
    if (n > 0)
        issueSpan(preds, n, false);
}

void
BlockFetcher::decodeInto(const u32 *flats, unsigned count,
                         bool contiguous, DecodedBlock *out, u8 *ok) const
{
    if (domain_) {
        // Speculative decodes race ahead of verification, so they may
        // chew on corrupt bytes; the checked decoder turns that into a
        // per-lane failure the claim path re-verifies, never a panic.
        for (unsigned l = 0; l < count; ++l) {
            Result<DecodedBlock> r = decomp_.tryDecompressBlock(
                flats[l] / kBlocksPerGroup, flats[l] % kBlocksPerGroup);
            ok[l] = r.ok() ? 1 : 0;
            out[l] = r.ok() ? *r : DecodedBlock{};
        }
        return;
    }
    if (ok)
        std::fill(ok, ok + count, u8{1});
    if (contiguous)
        decomp_.decompressBlocks(flats[0], count, out);
    else
        for (unsigned l = 0; l < count; ++l)
            out[l] = decomp_.decompressFlatBlock(flats[l]);
}

void
BlockFetcher::resolveSpan(SpecSpan &s)
{
    int st = s.state.load(std::memory_order_acquire);
    if (st == SpecSpan::Queued &&
        s.state.compare_exchange_strong(st, SpecSpan::Running,
                                        std::memory_order_acq_rel)) {
        decodeInto(s.flats.data(), s.count, s.contiguous,
                   s.blks.data(), s.ok.data());
        s.state.store(SpecSpan::Done, std::memory_order_release);
    } else {
        // The worker is mid-decode: at most a few microseconds away.
        // Spin politely; fall back to yielding only if it drags on
        // (e.g. the worker got descheduled).
        unsigned spins = 0;
        while (s.state.load(std::memory_order_acquire) !=
               SpecSpan::Done) {
            if (++spins > 4096) {
                std::this_thread::yield();
                spins = 0;
            }
        }
    }
    s.done = true;
}

void
BlockFetcher::issueSpan(const u32 *flats, unsigned count,
                        bool contiguous)
{
    pfIssued_ += count;
    if (statPfIssued_)
        statPfIssued_->inc(count);

    if (!opts_.async) {
        // Inline speculation: batched decode into the reusable
        // scratch, then park each block in its slab entry. No
        // allocation, no atomics. Lanes whose checked decode failed
        // (domain mode, corrupt bytes) are simply not parked — the
        // demand fetch will verify, repair, and decode them.
        decodeInto(flats, count, contiguous, scratch_.data(),
                   scratchOk_.data());
        for (unsigned l = 0; l < count; ++l) {
            if (!scratchOk_[l])
                continue;
            u32 slot = claimSlot(flats[l]);
            Entry &e = slab_[slot];
            e.prefetched = true;
            e.blk = scratch_[l];
            pushFront(slot);
        }
        return;
    }

    auto span = std::make_shared<SpecSpan>();
    std::copy(flats, flats + count, span->flats.begin());
    span->count = count;
    span->contiguous = contiguous;
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(
            std::min(4u, defaultThreadCount()));
    while (inflight_.size() >= kMaxInflight) {
        resolveSpan(*inflight_.front());
        inflight_.pop_front();
    }
    inflight_.push_back(span);
    const BlockFetcher *self = this;
    pool_->submit([span, self] {
        int st = SpecSpan::Queued;
        if (!span->state.compare_exchange_strong(
                st, SpecSpan::Running, std::memory_order_acq_rel))
            return; // the consumer stole it
        self->decodeInto(span->flats.data(), span->count,
                         span->contiguous, span->blks.data(),
                         span->ok.data());
        span->state.store(SpecSpan::Done, std::memory_order_release);
    });

    for (unsigned l = 0; l < count; ++l) {
        u32 slot = claimSlot(span->flats[l]);
        Entry &e = slab_[slot];
        e.prefetched = true;
        e.span = span;
        e.lane = l;
        pushFront(slot);
    }
}

} // namespace codepack
} // namespace cps
