#include "compressor.hh"

#include <algorithm>
#include <memory>

#include "common/bitstream.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "common/threadpool.hh"
#include "isa/isa.hh"

namespace cps
{
namespace codepack
{

namespace
{

/** Result of compressing one 16-instruction block. */
struct BlockBits
{
    std::vector<u8> bytes;
    bool raw = false;
    // Table 4 accounting for this block.
    u64 compressedTagBits = 0;
    u64 dictIndexBits = 0;
    u64 rawTagBits = 0;
    u64 rawBits = 0;
    u64 padBits = 0;
};

BlockBits
compressBlock(const u32 *insns, const Dictionary &high,
              const Dictionary &low, bool allow_raw_blocks,
              bool use_simd)
{
    BlockBits out;
    BitWriter bw;
    // A useful block never exceeds the raw escape size by much; one
    // upfront reservation keeps the put() loop allocation-free.
    bw.reserve(kRawBlockBytes + 8);

    // The match loop: deinterleave the block's halfwords into dense
    // lanes, then resolve each encoding once — by vectorized
    // dictionary match (membership bitmap + CAM-style scan) on the
    // simd path, by the reference hash lookup on the scalar path —
    // and reuse it for both the emit and the Table 4 accounting.
    u16 his[kBlockInsns], los[kBlockInsns];
    if (use_simd)
        simd::splitHalves(insns, kBlockInsns, his, los);
    else
        simd::scalar::splitHalves(insns, kBlockInsns, his, los);
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        HalfEncoding he = use_simd ? high.matchEncode(his[i])
                                   : high.encode(his[i]);
        Dictionary::writeEncoded(bw, he, his[i]);
        if (he.raw) {
            out.rawTagBits += he.tagBits;
            out.rawBits += kRawLiteralBits;
        } else {
            out.compressedTagBits += he.tagBits;
            out.dictIndexBits += he.indexBits;
        }

        HalfEncoding le = use_simd ? low.matchEncode(los[i])
                                   : low.encode(los[i]);
        Dictionary::writeEncoded(bw, le, los[i]);
        if (le.raw) {
            out.rawTagBits += le.tagBits;
            out.rawBits += kRawLiteralBits;
        } else {
            out.compressedTagBits += le.tagBits;
            out.dictIndexBits += le.indexBits;
        }
    }
    out.padBits = bw.alignByte();
    out.bytes = bw.take();

    if (allow_raw_blocks && out.bytes.size() > kRawBlockBytes) {
        // Escape: the block expands under compression; store it native.
        BlockBits raw;
        raw.raw = true;
        raw.bytes.reserve(kRawBlockBytes);
        for (unsigned i = 0; i < kBlockInsns; ++i) {
            raw.bytes.push_back(static_cast<u8>(insns[i]));
            raw.bytes.push_back(static_cast<u8>(insns[i] >> 8));
            raw.bytes.push_back(static_cast<u8>(insns[i] >> 16));
            raw.bytes.push_back(static_cast<u8>(insns[i] >> 24));
        }
        raw.rawBits = u64{kRawBlockBytes} * 8;
        return raw;
    }
    return out;
}

/**
 * Halfword frequencies over @p words: one full-range count array per
 * half. With a pool, each worker histograms a contiguous chunk into
 * private counters which are then summed in chunk order — the totals
 * are exactly the serial ones (counts are order-independent), so the
 * dictionaries built from them are too.
 */
void
histogramHalves(const std::vector<u32> &words, ThreadPool *pool,
                bool use_simd, std::vector<u64> &hi, std::vector<u64> &lo)
{
    hi.assign(65536, 0);
    lo.assign(65536, 0);
    auto accumulate = [use_simd](const u32 *w, size_t n, u64 *h,
                                 u64 *l) {
        if (use_simd)
            simd::histogramHalves(w, n, h, l);
        else
            simd::scalar::histogramHalves(w, n, h, l);
    };
    size_t chunks = pool ? std::min<size_t>(pool->size(), 16) : 1;
    if (chunks > 1 && words.size() >= 4096) {
        std::vector<std::vector<u64>> hi_part(chunks), lo_part(chunks);
        size_t per = (words.size() + chunks - 1) / chunks;
        pool->parallelFor(chunks, [&](size_t c) {
            std::vector<u64> &h = hi_part[c];
            std::vector<u64> &l = lo_part[c];
            h.assign(65536, 0);
            l.assign(65536, 0);
            size_t begin = c * per;
            size_t end = std::min(words.size(), begin + per);
            accumulate(words.data() + begin, end - begin, h.data(),
                       l.data());
        });
        for (size_t c = 0; c < chunks; ++c)
            for (size_t v = 0; v < 65536; ++v) {
                hi[v] += hi_part[c][v];
                lo[v] += lo_part[c][v];
            }
    } else {
        accumulate(words.data(), words.size(), hi.data(), lo.data());
    }
}

} // namespace

CompressedImage
compressWords(const std::vector<u32> &words, Addr text_base,
              const CompressorConfig &cfg)
{
    CompressedImage img;
    img.textBase = text_base;
    img.origTextBytes = static_cast<u32>(words.size() * 4);

    // Pad to a whole compression group with NOPs.
    std::vector<u32> padded = words;
    while (padded.size() % kGroupInsns != 0)
        padded.push_back(kNopWord);
    img.paddedInsns = static_cast<u32>(padded.size());

    u32 num_groups = img.paddedInsns / kGroupInsns;
    size_t num_blocks = size_t{num_groups} * kBlocksPerGroup;

    unsigned threads = cfg.threads ? cfg.threads : defaultThreadCount();
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1 && num_blocks > 1)
        pool = std::make_unique<ThreadPool>(threads);

    // Phase 1: halfword frequencies over the (padded) text, reduced
    // from per-chunk counters when a pool is available.
    std::vector<u64> hi_arr, lo_arr;
    histogramHalves(padded, pool.get(), cfg.simd, hi_arr, lo_arr);
    std::unordered_map<u16, u64> hi_counts, lo_counts;
    for (u32 v = 0; v < 65536; ++v) {
        if (hi_arr[v])
            hi_counts[static_cast<u16>(v)] = hi_arr[v];
        if (lo_arr[v])
            lo_counts[static_cast<u16>(v)] = lo_arr[v];
    }
    img.highDict = Dictionary::build(Dictionary::Kind::High, hi_counts);
    img.lowDict = Dictionary::build(Dictionary::Kind::Low, lo_counts);

    // Phase 2: per-block encode. Blocks are independently indexed by
    // construction (each starts byte-aligned and is located through the
    // index table), so they encode in parallel; stitching below is the
    // only order-dependent step, which keeps the output byte-identical
    // to the serial path at any worker count.
    std::vector<BlockBits> encoded(num_blocks);
    auto encodeOne = [&](size_t b) {
        encoded[b] = compressBlock(padded.data() + b * kBlockInsns,
                                   img.highDict, img.lowDict,
                                   cfg.allowRawBlocks, cfg.simd);
    };
    if (pool)
        pool->parallelFor(num_blocks, encodeOne);
    else
        for (size_t b = 0; b < num_blocks; ++b)
            encodeOne(b);

    // Phase 3 (serial): concatenate the blocks, build the index table
    // and sum the Table 4 accounting in group order.
    u64 stream_bytes = 0;
    for (const BlockBits &bb : encoded)
        stream_bytes += bb.bytes.size();
    img.bytes.reserve(stream_bytes);
    img.indexTable.reserve(num_groups);
    img.blocks.reserve(num_blocks);

    for (u32 g = 0; g < num_groups; ++g) {
        u32 first_off = static_cast<u32>(img.bytes.size());
        cps_assert(first_off <= kIdxFirstOffsetMask,
                   "compressed region exceeds the %u-bit index offset",
                   kIdxFirstOffsetBits);

        bool flags[kBlocksPerGroup] = {};
        u32 lens[kBlocksPerGroup] = {};
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            BlockBits &bb =
                encoded[size_t{g} * kBlocksPerGroup + b];
            BlockExtent ext;
            ext.byteOffset = static_cast<u32>(img.bytes.size());
            ext.byteLen = static_cast<u32>(bb.bytes.size());
            ext.raw = bb.raw;
            img.blocks.push_back(ext);
            img.bytes.insert(img.bytes.end(), bb.bytes.begin(),
                             bb.bytes.end());
            flags[b] = bb.raw;
            lens[b] = ext.byteLen;

            img.comp.compressedTagBits += bb.compressedTagBits;
            img.comp.dictIndexBits += bb.dictIndexBits;
            img.comp.rawTagBits += bb.rawTagBits;
            img.comp.rawBits += bb.rawBits;
            img.comp.padBits += bb.padBits;
        }

        u32 second_off = lens[0];
        cps_assert(second_off < (1u << kIdxSecondOffsetBits),
                   "block 0 of group %u too long (%u bytes) for the "
                   "second-block offset field", g, second_off);
        img.indexTable.push_back(
            makeIndexEntry(first_off, flags[0], second_off, flags[1]));
    }

    img.comp.indexTableBits = u64{num_groups} * 32;
    img.comp.dictionaryBits =
        img.highDict.storageBits() + img.lowDict.storageBits();
    return img;
}

CompressedImage
compress(const Program &prog, const CompressorConfig &cfg)
{
    std::vector<u32> words;
    words.reserve(prog.textWords());
    for (size_t i = 0; i < prog.textWords(); ++i)
        words.push_back(prog.word(i));
    return compressWords(words, prog.text.base, cfg);
}

} // namespace codepack
} // namespace cps
