/**
 * @file
 * Experiment harness shared by every benchmark binary: generates and
 * compresses each synthetic benchmark once per process, runs machines,
 * and computes the speedup numbers the paper's tables report.
 */

#ifndef CPS_HARNESS_SUITE_HH
#define CPS_HARNESS_SUITE_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/artifact_cache.hh"
#include "sim/machine.hh"

namespace cps
{

/** A generated benchmark with its compressed image and, when tracing is
 *  enabled, the recorded instruction stream every machine configuration
 *  replays instead of re-executing the functional core. */
struct BenchProgram
{
    const BenchmarkProfile *profile = nullptr;
    Program program;
    codepack::CompressedImage image;
    /** Immutable after generation; null when tracing is disabled. */
    std::unique_ptr<const TraceBuffer> trace;
};

/**
 * Process-wide cache of generated benchmarks. Thread-safe: get() and
 * pregenerate() may be called from any thread. Each benchmark has its
 * own once-flag slot (fixed at construction, stable addresses), so
 * concurrent builds of *different* benchmarks never serialize against
 * each other and concurrent get()s of the *same* benchmark build it
 * exactly once.
 */
class Suite
{
  public:
    static Suite &instance();

    /** The six paper benchmarks, in Table 1 order. */
    const std::vector<std::string> &names() const { return names_; }

    /** Generates (once) and returns a benchmark by name. */
    const BenchProgram &get(const std::string &name);

    /**
     * Generates and compresses every standard benchmark, fanning the
     * independent builds out across the thread pool (each profile has
     * its own RNG seed, so the result is identical to serial
     * generation; per-benchmark once-flags make repeat calls free).
     * Table binaries that touch the whole suite call this once up
     * front. With a warm artifact cache the builds load verified
     * images/traces from disk instead of recomputing.
     * @param threads worker count; 0 means defaultThreadCount()
     */
    void pregenerate(unsigned threads = 0);

    /**
     * Dynamic instructions per timing run. Defaults to 1,000,000;
     * override with the CPS_INSNS environment variable, which is read
     * once (the first call caches the value). (The paper ran >1e9
     * instructions; our synthetic workloads reach steady state within
     * well under 1e6 — see DESIGN.md "Substitutions".)
     */
    static u64 runInsns();

    /**
     * Trace-entry cap per benchmark (the trace-replay memory knob, 16
     * bytes per entry). Defaults to runInsns() plus enough slack to
     * cover the deepest OoO fetch-ahead; override with CPS_TRACE_INSNS
     * (0 disables recording entirely). Runs longer than the recorded
     * trace fall back to live execution.
     */
    static u64 traceInsns();

    /**
     * Whether timed runs replay pregenerated traces (CPS_REPLAY; any
     * value but "0" — default — enables). Disabling also skips
     * recording, so CPS_REPLAY=0 restores the pre-trace behaviour.
     */
    static bool replayEnabled();

  private:
    Suite();

    /** One benchmark's build-once slot. The map is immutable after
     *  construction, so lookups need no lock; call_once publishes the
     *  built BenchProgram to every waiter. */
    struct Slot
    {
        std::once_flag once;
        std::unique_ptr<BenchProgram> bench;
    };

    std::vector<std::string> names_;
    std::map<std::string, Slot> slots_;
};

/**
 * Cache keys for one benchmark's pregeneration artifacts. Each key
 * embeds every input the artifact is a function of — the full profile
 * (including its seed), the producing component's config, and a
 * format/code version tag — so any change invalidates by construction.
 */
std::string benchProgramKey(const BenchmarkProfile &profile);
std::string benchImageKey(const BenchmarkProfile &profile,
                          const codepack::CompressorConfig &cfg);
std::string benchTraceKey(const BenchmarkProfile &profile, u64 trace_cap);

/**
 * Builds one benchmark — program, CodePack image, recorded trace —
 * through @p cache: verified artifacts load from disk, anything missing
 * or corrupt is recomputed (and stored back). The result is identical
 * to an uncached build either way. Suite::get() wraps this with the
 * process-wide cache; benches use private cache instances to measure
 * cold against warm.
 * @param trace_cap recorded-trace entry cap; 0 means Suite::traceInsns()
 */
std::unique_ptr<BenchProgram> buildBenchProgram(
    const std::string &name, const ArtifactCache &cache, u64 trace_cap = 0);

/** Everything a table needs from one timed run. */
struct RunOutcome
{
    RunResult result;
    double icacheMissRate = 0.0;
    double indexCacheMissRate = 0.0;
    u64 icacheMisses = 0;
    u64 bufferHits = 0;
    u64 missLatencyTotal = 0; ///< sum of critical-word miss latencies
    /** Modeled prefetcher activity (decomp.* or swdecomp.*, whichever
     *  code model ran; zero under PrefetchKind::None). */
    u64 prefetchIssued = 0;
    u64 prefetchHits = 0;
};

/** How runMachine sources the instruction stream. */
enum class ReplayMode
{
    Auto,      ///< replay the recorded trace when it covers the run
    ForceLive, ///< always re-execute the functional core
};

/** Builds a machine for @p bench under @p cfg and runs it. With a
 *  recorded trace that covers the run (and replay enabled), the timing
 *  models replay it — same tables, one functional execution total.
 *  When the CPS_CHUNK_* knobs enable chunk-parallel execution (and
 *  @p mode is Auto), dispatches to harness::runMachineChunked. */
RunOutcome runMachine(const BenchProgram &bench, const MachineConfig &cfg,
                      u64 max_insns, ReplayMode mode = ReplayMode::Auto);

/** The single-machine path runMachine dispatches to: one Machine, one
 *  serial run, no chunking regardless of the CPS_CHUNK_* knobs. */
RunOutcome runMachineSerial(const BenchProgram &bench,
                            const MachineConfig &cfg, u64 max_insns,
                            ReplayMode mode = ReplayMode::Auto);

/** Convenience: cycles(native) / cycles(model) on identical inputs. */
inline double
speedup(const RunOutcome &native, const RunOutcome &other)
{
    if (other.result.cycles == 0)
        return 0.0;
    return static_cast<double>(native.result.cycles) /
           static_cast<double>(other.result.cycles);
}

} // namespace cps

#endif // CPS_HARNESS_SUITE_HH
