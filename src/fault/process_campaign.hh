/**
 * @file
 * Process-level fault campaign: prove the crash-isolated experiment
 * harness survives misbehaving workers.
 *
 * Where the byte-level campaigns (campaign.hh) corrupt an encoded
 * image and check the decode path, this campaign corrupts the
 * *processes*: it runs a small experiment matrix in which selected
 * cells' forked workers crash, get SIGKILLed, hang past the deadline,
 * garble their result frame, or exit nonzero — and asserts that the
 * parent (a) never dies, (b) classifies each fault into the expected
 * structured CellStatus, and (c) returns results for every healthy
 * cell that are identical to an inline, fault-free run.
 */

#ifndef CPS_FAULT_PROCESS_CAMPAIGN_HH
#define CPS_FAULT_PROCESS_CAMPAIGN_HH

#include <string>
#include <vector>

#include "harness/cell_runner.hh"

namespace cps
{
namespace fault
{

/** Campaign parameters. */
struct ProcessCampaignConfig
{
    u64 insns = 20000;     ///< per-cell instruction budget
    long timeoutMs = 3000; ///< deadline that converts Hang into Timeout
    unsigned retries = 0;  ///< retry budget under test (0: fail fast)
    unsigned backoffMs = 10;
};

/** One injected fault and how the harness handled it. */
struct ProcessFaultRecord
{
    harness::CellFault fault = harness::CellFault::None;
    harness::CellState expected = harness::CellState::Ok;
    harness::CellState observed = harness::CellState::Ok;
    bool asExpected = false;
    bool cleanMatched = true; ///< healthy-cell outcome == inline run
    std::string detail;
};

/** Aggregated campaign outcome. */
struct ProcessCampaignResult
{
    std::vector<ProcessFaultRecord> records;
    unsigned mismatches = 0;     ///< faults not classified as expected
    unsigned cleanMismatches = 0; ///< healthy cells differing from inline

    bool ok() const { return mismatches == 0 && cleanMismatches == 0; }
};

/** The CellState each injected CellFault must be classified as. */
harness::CellState expectedStateFor(harness::CellFault fault);

/**
 * Runs the campaign: for every fault kind, a 3-cell matrix (healthy,
 * faulted, healthy) through an isolating CellRunner, checked against
 * an inline fault-free baseline. Requires fork(2); always isolates
 * regardless of CPS_ISOLATE.
 */
ProcessCampaignResult
runProcessCampaign(const BenchProgram &bench, const MachineConfig &cfg,
                   const ProcessCampaignConfig &ccfg);

} // namespace fault
} // namespace cps

#endif // CPS_FAULT_PROCESS_CAMPAIGN_HH
