/**
 * @file
 * Plain-text table formatter used by every benchmark binary to print the
 * paper's tables with aligned columns.
 */

#ifndef CPS_COMMON_TABLE_HH
#define CPS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace cps
{

/**
 * Accumulates rows of strings and renders them with per-column alignment.
 *
 * Usage:
 *   TextTable t;
 *   t.setTitle("Table 3: Compression ratio of .text section");
 *   t.addHeader({"Bench", "Original", "Compressed", "Ratio"});
 *   t.addRow({"cc1", "1083808", "654999", "60.4%"});
 *   t.print();
 */
class TextTable
{
  public:
    /** Sets the title line printed above the table. */
    void setTitle(const std::string &title) { title_ = title; }

    /** Adds the header row; a rule is drawn beneath it. */
    void addHeader(const std::vector<std::string> &cells);

    /** Adds a data row. Rows may be ragged; missing cells print empty. */
    void addRow(const std::vector<std::string> &cells);

    /** Adds a horizontal rule between data rows. */
    void addRule();

    /** Renders the table to a string. */
    std::string render() const;

    /** Renders the table as CSV (title as a comment line). */
    std::string renderCsv() const;

    /**
     * Prints the rendered table to stdout. When the CPS_CSV environment
     * variable is set (non-empty), prints CSV instead, so bench output
     * can feed plotting scripts directly.
     */
    void print() const;

    /** Formats a double with @p decimals places. */
    static std::string fmt(double value, int decimals = 2);

    /** Formats a percentage ("12.3%") with @p decimals places. */
    static std::string pct(double fraction, int decimals = 1);

    /** Formats an integer with thousands separators ("1,083,808"). */
    static std::string grouped(unsigned long long value);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool isRule = false;
        bool isHeader = false;
    };

    std::string title_;
    std::vector<Row> rows_;
};

} // namespace cps

#endif // CPS_COMMON_TABLE_HH
