/**
 * @file
 * Soft-error protection codes for compressed code resident in memory:
 * SEC-DED Hamming(72,64) over 64-bit words (single-error correct,
 * double-error detect — the DRAM-style code) plus cheaper detect-only
 * CRC-8 (SMBus polynomial 0x07) and CRC-16 (CCITT 0x1021) per-block
 * checks. Table-driven like crc32.hh; no dependency beyond types.hh
 * and the logging helpers.
 *
 * The codeword layout is the classic extended Hamming code: 64 data
 * bits occupy the non-power-of-two positions of 1..71, parity bits sit
 * at positions 1,2,4,...,64, and an overall-parity bit extends single
 * correction to double detection. One check byte therefore protects
 * one 64-bit word, an 8/64 = 12.5% storage overhead on protected
 * payloads (charged into the compression ratio by protectImage).
 */

#ifndef CPS_COMMON_ECC_HH
#define CPS_COMMON_ECC_HH

#include <array>
#include <cstddef>

#include "types.hh"

namespace cps
{

/** Per-block protection scheme for compressed images in memory. */
enum class ProtectKind : u8
{
    None = 0,   ///< unprotected (the pre-resilience format, .cpi v2)
    Crc8 = 1,   ///< detect-only: 1 check byte per block
    Crc16 = 2,  ///< detect-only: 2 check bytes per block
    SecDed = 3, ///< Hamming(72,64): 1 check byte per 8 data bytes
};

constexpr unsigned kNumProtectKinds = 4;

/** Knob spelling ("off"/"crc8"/"crc16"/"secded"). */
const char *protectKindName(ProtectKind kind);

/** Parses a knob spelling; returns false on an unknown value. */
bool parseProtectKind(const char *name, ProtectKind &out);

/**
 * The CPS_ECC environment knob (off|crc8|crc16|secded), read afresh on
 * every call so tests can flip it between constructions; unset or
 * malformed values mean None (malformed warns once per process).
 */
ProtectKind defaultProtectKind();

namespace detail
{

constexpr std::array<u8, 256>
makeCrc8Table()
{
    std::array<u8, 256> table{};
    for (unsigned i = 0; i < 256; ++i) {
        u8 c = static_cast<u8>(i);
        for (int k = 0; k < 8; ++k)
            c = static_cast<u8>((c & 0x80u) ? (c << 1) ^ 0x07u
                                            : (c << 1));
        table[i] = c;
    }
    return table;
}

constexpr std::array<u16, 256>
makeCrc16Table()
{
    std::array<u16, 256> table{};
    for (unsigned i = 0; i < 256; ++i) {
        u16 c = static_cast<u16>(i << 8);
        for (int k = 0; k < 8; ++k)
            c = static_cast<u16>((c & 0x8000u) ? (c << 1) ^ 0x1021u
                                               : (c << 1));
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<u8, 256> kCrc8Table = makeCrc8Table();
inline constexpr std::array<u16, 256> kCrc16Table = makeCrc16Table();

} // namespace detail

/** CRC-8 (poly 0x07, init 0) of @p size bytes. */
inline u8
crc8(const u8 *data, size_t size)
{
    u8 crc = 0;
    for (size_t i = 0; i < size; ++i)
        crc = detail::kCrc8Table[crc ^ data[i]];
    return crc;
}

/** CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) of @p size bytes. */
inline u16
crc16(const u8 *data, size_t size)
{
    u16 crc = 0xFFFF;
    for (size_t i = 0; i < size; ++i)
        crc = static_cast<u16>((crc << 8) ^
                               detail::kCrc16Table[(crc >> 8) ^ data[i]]);
    return crc;
}

/** The SEC-DED check byte for one 64-bit data word. */
u8 secDedEncode(u64 data);

/** What a SEC-DED (or CRC) check of received data concluded. */
enum class EccOutcome : u8
{
    Clean,     ///< data and check agree
    Corrected, ///< a single-bit error was corrected in place
    Detected,  ///< uncorrectable: multi-bit error or detect-only code
};

/**
 * Checks (and corrects) one received 64-bit word against its received
 * check byte. Single-bit errors — in the data or in the check byte —
 * are fixed in place; double-bit errors and invalid syndromes return
 * Detected with @p data and @p check unspecified-but-unchanged.
 */
EccOutcome secDedCorrect(u64 &data, u8 &check);

/** Check bytes a block of @p dataLen bytes needs under @p kind. */
inline size_t
blockCheckBytes(ProtectKind kind, size_t dataLen)
{
    switch (kind) {
      case ProtectKind::None:
        return 0;
      case ProtectKind::Crc8:
        return 1;
      case ProtectKind::Crc16:
        return 2;
      case ProtectKind::SecDed:
        return (dataLen + 7) / 8;
    }
    return 0;
}

/** Check bytes one u32 index-table entry needs under @p kind. */
inline size_t
indexCheckBytes(ProtectKind kind)
{
    switch (kind) {
      case ProtectKind::None:
        return 0;
      case ProtectKind::Crc8:
        return 1;
      case ProtectKind::Crc16:
        return 2;
      case ProtectKind::SecDed:
        return 1; // one code word: the entry zero-extended to 64 bits
    }
    return 0;
}

/**
 * Computes the check bytes for a data buffer into @p out (which must
 * hold blockCheckBytes(kind, len) bytes). SEC-DED treats the buffer as
 * little-endian 64-bit words, the last zero-padded.
 */
void computeBlockCheck(ProtectKind kind, const u8 *data, size_t len,
                       u8 *out);

/**
 * Verifies — and for SEC-DED, corrects in place — a data buffer
 * against its stored check bytes. Returns the strongest statement the
 * code supports: Clean, Corrected (SEC-DED only; @p correctedBits, when
 * non-null, counts the repaired bits), or Detected. A correction that
 * would touch the zero padding of the final partial word is reported
 * as Detected: the stored data cannot have flipped a bit it does not
 * have, so the syndrome is a multi-bit alias.
 */
EccOutcome checkBlock(ProtectKind kind, u8 *data, size_t len,
                      const u8 *check, unsigned *correctedBits = nullptr);

/** Computes the check bytes for one index entry into @p out. */
void computeIndexCheck(ProtectKind kind, u32 entry, u8 *out);

/** Verifies (and for SEC-DED corrects) one index entry in place. */
EccOutcome checkIndexEntry(ProtectKind kind, u32 &entry, const u8 *check);

} // namespace cps

#endif // CPS_COMMON_ECC_HH
