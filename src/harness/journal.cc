#include "journal.hh"

#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <sys/stat.h>
#include <unistd.h>

#include "common/byteio.hh"
#include "common/ipc_frame.hh"
#include "common/logging.hh"

namespace cps
{
namespace harness
{

namespace
{

constexpr u32 kFrameJournalHeader = 100;
constexpr u32 kFrameJournalRecord = 101;

/** Length of ArtifactCache::keyHash output (hex FNV-1a 64). */
constexpr size_t kHashChars = 16;

/** Writes @p bytes to @p path in one append; best-effort. */
bool
appendOnce(const std::string &path, const std::vector<u8> &bytes)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return false;
    // One write(2) per record: a kill tears at most the file's tail,
    // and O_APPEND keeps concurrent appenders from interleaving.
    ssize_t w = ::write(fd, bytes.data(), bytes.size());
    ::close(fd);
    return w == static_cast<ssize_t>(bytes.size());
}

} // namespace

bool
resumeEnabled()
{
    static const bool cached = [] {
        const char *env = std::getenv("CPS_RESUME");
        return env != nullptr && std::string(env) != "0";
    }();
    return cached;
}

std::string
journalDir()
{
    if (const char *env = std::getenv("CPS_CACHE_DIR"))
        if (*env != '\0')
            return env;
    return ".cps-cache";
}

MatrixJournal::MatrixJournal(std::string dir, std::string matrix_key,
                             size_t num_cells)
    : dir_(std::move(dir)), matrixKey_(std::move(matrix_key)),
      numCells_(num_cells)
{
    path_ = dir_ + "/" + ArtifactCache::keyHash(matrixKey_) + ".journal";
}

std::vector<std::optional<RunOutcome>>
MatrixJournal::load(const std::vector<RunRequest> &requests) const
{
    std::vector<std::optional<RunOutcome>> out(numCells_);
    auto bytes = readFileBytes(path_);
    if (!bytes)
        return out; // no journal yet

    size_t pos = 0;
    IpcFrame frame;

    // Header: the full matrix key defends the (hashed) file name
    // against collisions and the journal against a changed matrix.
    if (decodeFrameAt(*bytes, pos, frame) != FrameReadStatus::Ok ||
        frame.type != kFrameJournalHeader ||
        std::string(frame.payload.begin(), frame.payload.end()) !=
            matrixKey_) {
        return std::vector<std::optional<RunOutcome>>(numCells_);
    }

    while (decodeFrameAt(*bytes, pos, frame) == FrameReadStatus::Ok) {
        if (frame.type != kFrameJournalRecord)
            continue; // unknown record kind: skip, stay compatible
        ByteCursor cur(frame.payload);
        u32 index = cur.get32();
        std::string hash = cur.getString(kHashChars);
        if (!cur.ok() || index >= numCells_ || index >= requests.size())
            continue;
        if (hash != ArtifactCache::keyHash(cellKey(requests[index])))
            continue; // stale record for a changed cell
        Result<RunOutcome> env =
            decodeRunOutcomeChecked(cur.getBytes(cur.remaining()));
        if (!env)
            continue;
        out[index] = std::move(*env);
    }
    // decodeFrameAt stopping on Torn drops the (killed-mid-append)
    // tail; everything verified above it stands.
    return out;
}

void
MatrixJournal::append(size_t index, const std::string &cell_key,
                      const RunOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return;

    if (!headerWritten_) {
        struct stat st;
        bool empty = ::stat(path_.c_str(), &st) != 0 || st.st_size == 0;
        if (empty) {
            std::vector<u8> key_bytes(matrixKey_.begin(),
                                      matrixKey_.end());
            if (!appendOnce(path_,
                            encodeFrame(kFrameJournalHeader, key_bytes)))
                return;
        }
        headerWritten_ = true;
    }

    std::vector<u8> payload;
    put32(payload, static_cast<u32>(index));
    std::string hash = ArtifactCache::keyHash(cell_key);
    payload.insert(payload.end(), hash.begin(), hash.end());
    std::vector<u8> env = encodeRunOutcome(outcome);
    payload.insert(payload.end(), env.begin(), env.end());
    appendOnce(path_, encodeFrame(kFrameJournalRecord, payload));
}

} // namespace harness
} // namespace cps
