/**
 * @file
 * Instruction-to-text rendering. Kept in its own translation unit so the
 * hot simulation paths never pull in string formatting.
 */

#include <string>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa.hh"

namespace cps
{

namespace
{

std::string
fpName(unsigned index)
{
    return strfmt("$f%u", index);
}

/** Branch destination: PC + 4 + (imm << 2), MIPS style. */
Addr
branchTarget(Addr pc, u16 imm)
{
    return pc + 4 + (static_cast<u32>(signExtend(imm, 16)) << 2);
}

} // namespace

std::string
disassemble(const Inst &inst, Addr pc)
{
    const char *m = mnemonic(inst.op);
    s32 simm = signExtend(inst.imm, 16);

    if (inst.raw == kNopWord)
        return "nop";

    switch (inst.op) {
      case Op::Add: case Op::Addu: case Op::Sub: case Op::Subu:
      case Op::And: case Op::Or: case Op::Xor: case Op::Nor:
      case Op::Slt: case Op::Sltu: case Op::Sllv: case Op::Srlv:
      case Op::Srav: case Op::Mul: case Op::Mulu: case Op::Div:
      case Op::Divu: case Op::Rem: case Op::Remu:
        return strfmt("%s %s, %s, %s", m, gprName(inst.rd),
                      gprName(inst.rs), gprName(inst.rt));
      case Op::Sll: case Op::Srl: case Op::Sra:
        return strfmt("%s %s, %s, %u", m, gprName(inst.rd),
                      gprName(inst.rt), inst.shamt);
      case Op::Addi: case Op::Addiu: case Op::Slti: case Op::Sltiu:
        return strfmt("%s %s, %s, %d", m, gprName(inst.rt),
                      gprName(inst.rs), simm);
      case Op::Andi: case Op::Ori: case Op::Xori:
        return strfmt("%s %s, %s, 0x%x", m, gprName(inst.rt),
                      gprName(inst.rs), inst.imm);
      case Op::Lui:
        return strfmt("%s %s, 0x%x", m, gprName(inst.rt), inst.imm);
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu:
      case Op::Sb: case Op::Sh: case Op::Sw:
        return strfmt("%s %s, %d(%s)", m, gprName(inst.rt), simm,
                      gprName(inst.rs));
      case Op::Lwc1: case Op::Swc1:
        return strfmt("%s %s, %d(%s)", m, fpName(inst.rt).c_str(), simm,
                      gprName(inst.rs));
      case Op::J: case Op::Jal:
        return strfmt("%s 0x%x", m, inst.target << 2);
      case Op::Jr:
        return strfmt("%s %s", m, gprName(inst.rs));
      case Op::Jalr:
        return strfmt("%s %s, %s", m, gprName(inst.rd), gprName(inst.rs));
      case Op::Beq: case Op::Bne:
        return strfmt("%s %s, %s, 0x%x", m, gprName(inst.rs),
                      gprName(inst.rt), branchTarget(pc, inst.imm));
      case Op::Blez: case Op::Bgtz: case Op::Bltz: case Op::Bgez:
        return strfmt("%s %s, 0x%x", m, gprName(inst.rs),
                      branchTarget(pc, inst.imm));
      case Op::Bc1t: case Op::Bc1f:
        return strfmt("%s 0x%x", m, branchTarget(pc, inst.imm));
      case Op::AddS: case Op::SubS: case Op::MulS: case Op::DivS:
        return strfmt("%s %s, %s, %s", m, fpName(inst.shamt).c_str(),
                      fpName(inst.rd).c_str(), fpName(inst.rt).c_str());
      case Op::AbsS: case Op::NegS: case Op::MovS: case Op::CvtSW:
      case Op::CvtWS:
        return strfmt("%s %s, %s", m, fpName(inst.shamt).c_str(),
                      fpName(inst.rd).c_str());
      case Op::CEqS: case Op::CLtS: case Op::CLeS:
        return strfmt("%s %s, %s", m, fpName(inst.rd).c_str(),
                      fpName(inst.rt).c_str());
      case Op::Mtc1:
        return strfmt("%s %s, %s", m, gprName(inst.rt),
                      fpName(inst.rd).c_str());
      case Op::Mfc1:
        return strfmt("%s %s, %s", m, gprName(inst.rt),
                      fpName(inst.rd).c_str());
      case Op::Syscall: case Op::Break:
        return m;
      case Op::Invalid:
      case Op::kNumOps:
        break;
    }
    return strfmt(".word 0x%08x", inst.raw);
}

std::string
disassemble(u32 word, Addr pc)
{
    return disassemble(decode(word), pc);
}

} // namespace cps
