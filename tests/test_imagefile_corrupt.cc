/**
 * @file
 * Corrupted-image rejection tests: truncation, bad magic, unsupported
 * version, CRC mismatches, oversize header fields, and trailing
 * garbage all come back as structured DecodeErrors — never a crash,
 * never an allocation driven by an unvalidated size field.
 */

#include <gtest/gtest.h>

#include "codepack/compressor.hh"
#include "codepack/decompressor.hh"
#include "codepack/imagefile.hh"
#include "progen/progen.hh"

namespace cps
{
namespace
{

using codepack::CompressedImage;
using codepack::decodeImageChecked;
using codepack::encodeImage;

CompressedImage
sampleImage()
{
    static CompressedImage img =
        codepack::compress(generateProgram(findProfile("pegwit")));
    return img;
}

/** Patches a little-endian u32 into @p bytes at @p at. */
void
patch32(std::vector<u8> &bytes, size_t at, u32 v)
{
    for (unsigned i = 0; i < 4; ++i)
        bytes[at + i] = static_cast<u8>(v >> (8 * i));
}

TEST(ImageFileCorrupt, PristineImageRoundTrips)
{
    CompressedImage img = sampleImage();
    auto r = decodeImageChecked(encodeImage(img));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->bytes, img.bytes);
    EXPECT_EQ(r->indexTable, img.indexTable);
    codepack::Decompressor a(img), b(*r);
    EXPECT_EQ(a.decompressAll(), b.decompressAll());
}

TEST(ImageFileCorrupt, BadMagicIsDiagnosed)
{
    std::vector<u8> junk{'N', 'O', 'T', 'A', 'N', 'I', 'M', 'G', 0, 0};
    auto r = decodeImageChecked(junk);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::BadMagic);
}

TEST(ImageFileCorrupt, OldVersionIsDiagnosedDistinctly)
{
    auto bytes = encodeImage(sampleImage());
    bytes[6] = '1'; // regress the version char in "CPSCPK2\0"
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::BadVersion);
    EXPECT_NE(r.error().message.find("version"), std::string::npos);
}

TEST(ImageFileCorrupt, EveryTruncationIsRejected)
{
    auto bytes = encodeImage(sampleImage());
    // Every prefix shorter than the file must fail cleanly. Walk a
    // stride for speed plus the interesting boundaries.
    for (size_t cut = 0; cut < bytes.size();
         cut += (bytes.size() / 97) + 1) {
        std::vector<u8> trunc(bytes.begin(),
                              bytes.begin() + static_cast<long>(cut));
        auto r = decodeImageChecked(trunc);
        ASSERT_FALSE(r.ok()) << "cut " << cut;
    }
    for (size_t cut : {bytes.size() - 1, bytes.size() - 4}) {
        std::vector<u8> trunc(bytes.begin(),
                              bytes.begin() + static_cast<long>(cut));
        EXPECT_FALSE(decodeImageChecked(trunc).ok()) << "cut " << cut;
    }
}

TEST(ImageFileCorrupt, TrailingGarbageIsRejected)
{
    auto bytes = encodeImage(sampleImage());
    bytes.push_back(0xEE);
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::Malformed);
}

TEST(ImageFileCorrupt, StreamBitFlipFailsItsCrc)
{
    CompressedImage img = sampleImage();
    auto bytes = encodeImage(img);
    // Flip one bit in the middle of the compressed stream section.
    size_t mid = bytes.size() / 2;
    bytes[mid] ^= 0x10;
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::BadCrc);

    // With verification off the bytes load (the flip is inside some
    // section's payload, structurally plausible or rejected later —
    // but it must never crash).
    codepack::ImageLoadOptions opts;
    opts.verifyCrc = false;
    auto loose = decodeImageChecked(bytes, opts);
    if (loose.ok()) {
        codepack::Decompressor d(*loose);
        (void)d.tryDecompressAll(); // any result is fine; no abort
    }
}

TEST(ImageFileCorrupt, OversizeGroupCountRejectedBeforeAllocation)
{
    auto bytes = encodeImage(sampleImage());
    // The index-table count lives at a fixed offset in the v2 layout.
    patch32(bytes, codepack::kImageIndexCountOffset, 0x40000000u);
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    // Caught as a header inconsistency (count disagrees with
    // paddedInsns) — decisively before any 4GB reserve.
    EXPECT_EQ(r.error().status, DecodeStatus::BadHeader);
}

TEST(ImageFileCorrupt, OversizePaddedInsnsRejected)
{
    auto bytes = encodeImage(sampleImage());
    // paddedInsns is the third header field (magic + 2 u32s before it).
    patch32(bytes, 8 + 8, 0xFFFFFFE0u);
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    // The header CRC catches the edit first; with CRCs off the
    // header/count cross-checks must catch it instead.
    codepack::ImageLoadOptions opts;
    opts.verifyCrc = false;
    auto loose = decodeImageChecked(bytes, opts);
    ASSERT_FALSE(loose.ok());
    EXPECT_TRUE(loose.error().status == DecodeStatus::BadHeader ||
                loose.error().status == DecodeStatus::Truncated)
        << loose.error().describe();
}

TEST(ImageFileCorrupt, IndexEntryCorruptionIsNeverSilent)
{
    CompressedImage img = sampleImage();
    auto bytes = encodeImage(img);
    // Scribble the first index entry with an out-of-range offset.
    patch32(bytes, codepack::kImageIndexEntriesOffset, 0x007FFFFFu);
    ASSERT_FALSE(decodeImageChecked(bytes).ok()); // CRC

    codepack::ImageLoadOptions opts;
    opts.verifyCrc = false;
    auto loose = decodeImageChecked(bytes, opts);
    // Without the CRC the structural validation must still see the
    // entry pointing past the compressed region.
    ASSERT_FALSE(loose.ok());
    EXPECT_EQ(loose.error().status, DecodeStatus::RangeError);
}

TEST(ImageFileCorrupt, CheckedLoaderReportsMissingFile)
{
    auto r = codepack::loadImageChecked("/nonexistent/file.cpi");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("/nonexistent/file.cpi"),
              std::string::npos);
}

TEST(ImageFileCorrupt, ValidateImageFlagsBadExtents)
{
    CompressedImage img = sampleImage();
    ASSERT_TRUE(codepack::validateImage(img).ok());

    CompressedImage bad = img;
    bad.blocks[0].byteOffset =
        static_cast<u32>(bad.bytes.size()) + 100;
    auto r = codepack::validateImage(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::RangeError);

    CompressedImage odd = img;
    odd.origTextBytes = odd.paddedInsns * 4 + 4;
    EXPECT_FALSE(codepack::validateImage(odd).ok());
}

TEST(ImageFileCorrupt, DictionaryOverpopulationRejected)
{
    auto bytes = encodeImage(sampleImage());
    // Find the dictionary section: it follows the stream section.
    // Rather than hand-computing offsets, corrupt every byte of the
    // file one at a time would be slow; instead assert the checked
    // decoder's global contract on a representative sample: no byte
    // position, when set to 0xFF, may crash the decoder.
    for (size_t at = 0; at < bytes.size();
         at += (bytes.size() / 211) + 1) {
        std::vector<u8> mut = bytes;
        if (mut[at] == 0xFF)
            continue;
        mut[at] = 0xFF;
        (void)decodeImageChecked(mut); // must return, never abort
        codepack::ImageLoadOptions opts;
        opts.verifyCrc = false;
        auto loose = decodeImageChecked(mut, opts);
        if (loose.ok())
            (void)codepack::Decompressor(*loose).tryDecompressAll();
    }
}

} // namespace
} // namespace cps
