#include "compressor.hh"

#include "common/bitstream.hh"
#include "common/logging.hh"
#include "isa/isa.hh"

namespace cps
{
namespace codepack
{

namespace
{

/** Result of compressing one 16-instruction block. */
struct BlockBits
{
    std::vector<u8> bytes;
    bool raw = false;
    // Table 4 accounting for this block.
    u64 compressedTagBits = 0;
    u64 dictIndexBits = 0;
    u64 rawTagBits = 0;
    u64 rawBits = 0;
    u64 padBits = 0;
};

BlockBits
compressBlock(const u32 *insns, const Dictionary &high,
              const Dictionary &low, bool allow_raw_blocks)
{
    BlockBits out;
    BitWriter bw;
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        u16 hi = static_cast<u16>(insns[i] >> 16);
        u16 lo = static_cast<u16>(insns[i] & 0xffff);

        HalfEncoding he = high.encode(hi);
        high.write(bw, hi);
        if (he.raw) {
            out.rawTagBits += he.tagBits;
            out.rawBits += kRawLiteralBits;
        } else {
            out.compressedTagBits += he.tagBits;
            out.dictIndexBits += he.indexBits;
        }

        HalfEncoding le = low.encode(lo);
        low.write(bw, lo);
        if (le.raw) {
            out.rawTagBits += le.tagBits;
            out.rawBits += kRawLiteralBits;
        } else {
            out.compressedTagBits += le.tagBits;
            out.dictIndexBits += le.indexBits;
        }
    }
    out.padBits = bw.alignByte();
    out.bytes = bw.take();

    if (allow_raw_blocks && out.bytes.size() > kRawBlockBytes) {
        // Escape: the block expands under compression; store it native.
        BlockBits raw;
        raw.raw = true;
        raw.bytes.reserve(kRawBlockBytes);
        for (unsigned i = 0; i < kBlockInsns; ++i) {
            raw.bytes.push_back(static_cast<u8>(insns[i]));
            raw.bytes.push_back(static_cast<u8>(insns[i] >> 8));
            raw.bytes.push_back(static_cast<u8>(insns[i] >> 16));
            raw.bytes.push_back(static_cast<u8>(insns[i] >> 24));
        }
        raw.rawBits = u64{kRawBlockBytes} * 8;
        return raw;
    }
    return out;
}

} // namespace

CompressedImage
compressWords(const std::vector<u32> &words, Addr text_base,
              const CompressorConfig &cfg)
{
    CompressedImage img;
    img.textBase = text_base;
    img.origTextBytes = static_cast<u32>(words.size() * 4);

    // Pad to a whole compression group with NOPs.
    std::vector<u32> padded = words;
    while (padded.size() % kGroupInsns != 0)
        padded.push_back(kNopWord);
    img.paddedInsns = static_cast<u32>(padded.size());

    // Pass 1: halfword frequencies over the (padded) text.
    std::unordered_map<u16, u64> hi_counts, lo_counts;
    for (u32 w : padded) {
        ++hi_counts[static_cast<u16>(w >> 16)];
        ++lo_counts[static_cast<u16>(w & 0xffff)];
    }
    img.highDict = Dictionary::build(Dictionary::Kind::High, hi_counts);
    img.lowDict = Dictionary::build(Dictionary::Kind::Low, lo_counts);

    // Pass 2: compress block by block, build the index table.
    u32 num_groups = img.paddedInsns / kGroupInsns;
    img.indexTable.reserve(num_groups);
    img.blocks.reserve(static_cast<size_t>(num_groups) * kBlocksPerGroup);

    for (u32 g = 0; g < num_groups; ++g) {
        u32 first_off = static_cast<u32>(img.bytes.size());
        cps_assert(first_off <= kIdxFirstOffsetMask,
                   "compressed region exceeds the %u-bit index offset",
                   kIdxFirstOffsetBits);

        bool flags[kBlocksPerGroup] = {};
        u32 lens[kBlocksPerGroup] = {};
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            const u32 *insns =
                padded.data() + (static_cast<size_t>(g) * kBlocksPerGroup +
                                 b) * kBlockInsns;
            BlockBits bb = compressBlock(insns, img.highDict, img.lowDict,
                                         cfg.allowRawBlocks);
            BlockExtent ext;
            ext.byteOffset = static_cast<u32>(img.bytes.size());
            ext.byteLen = static_cast<u32>(bb.bytes.size());
            ext.raw = bb.raw;
            img.blocks.push_back(ext);
            img.bytes.insert(img.bytes.end(), bb.bytes.begin(),
                             bb.bytes.end());
            flags[b] = bb.raw;
            lens[b] = ext.byteLen;

            img.comp.compressedTagBits += bb.compressedTagBits;
            img.comp.dictIndexBits += bb.dictIndexBits;
            img.comp.rawTagBits += bb.rawTagBits;
            img.comp.rawBits += bb.rawBits;
            img.comp.padBits += bb.padBits;
        }

        u32 second_off = lens[0];
        cps_assert(second_off < (1u << kIdxSecondOffsetBits),
                   "block 0 of group %u too long (%u bytes) for the "
                   "second-block offset field", g, second_off);
        img.indexTable.push_back(
            makeIndexEntry(first_off, flags[0], second_off, flags[1]));
    }

    img.comp.indexTableBits = u64{num_groups} * 32;
    img.comp.dictionaryBits =
        img.highDict.storageBits() + img.lowDict.storageBits();
    return img;
}

CompressedImage
compress(const Program &prog, const CompressorConfig &cfg)
{
    std::vector<u32> words;
    words.reserve(prog.textWords());
    for (size_t i = 0; i < prog.textWords(); ++i)
        words.push_back(prog.word(i));
    return compressWords(words, prog.text.base, cfg);
}

} // namespace codepack
} // namespace cps
