/**
 * @file
 * Functional-executor tests: instruction semantics, control flow,
 * memory, FP, and syscalls, all through small assembled programs.
 */

#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "core/executor.hh"

namespace cps
{
namespace
{

/** Runs an assembled program to completion; returns the executor. */
struct RunEnv
{
    Program prog;
    MainMemory mem;
    DecodedText text;
    Executor exec;

    explicit RunEnv(const std::string &src)
        : prog(assembleOrDie(src)), text(prog), exec(text, mem)
    {
        mem.loadSegment(prog.text);
        mem.loadSegment(prog.data);
        exec.reset(prog);
    }

    void
    run(u64 max_steps = 1000000)
    {
        while (!exec.halted() && exec.instCount() < max_steps)
            exec.step();
        ASSERT_TRUE(exec.halted()) << "program did not halt";
    }

    u32 gpr(unsigned r) const { return exec.state().readGpr(r); }
};

TEST(Executor, ArithmeticBasics)
{
    RunEnv env(R"(
main:
    li $t0, 7
    li $t1, 5
    addu $t2, $t0, $t1   # 12
    subu $t3, $t0, $t1   # 2
    mul $t4, $t0, $t1    # 35
    div $t5, $t0, $t1    # 1
    rem $t6, $t0, $t1    # 2
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(10), 12u);
    EXPECT_EQ(env.gpr(11), 2u);
    EXPECT_EQ(env.gpr(12), 35u);
    EXPECT_EQ(env.gpr(13), 1u);
    EXPECT_EQ(env.gpr(14), 2u);
}

TEST(Executor, SignedVsUnsignedCompare)
{
    RunEnv env(R"(
main:
    li $t0, -1
    li $t1, 1
    slt $t2, $t0, $t1    # signed: -1 < 1 -> 1
    sltu $t3, $t0, $t1   # unsigned: 0xffffffff < 1 -> 0
    slti $t4, $t0, 0     # 1
    sltiu $t5, $t1, 2    # 1
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(10), 1u);
    EXPECT_EQ(env.gpr(11), 0u);
    EXPECT_EQ(env.gpr(12), 1u);
    EXPECT_EQ(env.gpr(13), 1u);
}

TEST(Executor, ShiftsAndLogic)
{
    RunEnv env(R"(
main:
    li $t0, 0xf0f0
    li $t1, 0x0ff0
    and $t2, $t0, $t1    # 0x0ff0 & 0xf0f0 = 0x00f0
    or $t3, $t0, $t1     # 0xfff0
    xor $t4, $t0, $t1    # 0xff00
    nor $t5, $t0, $zero  # ~0xf0f0
    sll $t6, $t1, 4      # 0xff00
    srl $t7, $t0, 4      # 0x0f0f
    li $t8, -16
    sra $t9, $t8, 2      # -4
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(10), 0x00f0u);
    EXPECT_EQ(env.gpr(11), 0xfff0u);
    EXPECT_EQ(env.gpr(12), 0xff00u);
    EXPECT_EQ(env.gpr(13), ~0xf0f0u);
    EXPECT_EQ(env.gpr(14), 0xff00u);
    EXPECT_EQ(env.gpr(15), 0x0f0fu);
    EXPECT_EQ(env.gpr(25), static_cast<u32>(-4));
}

TEST(Executor, VariableShifts)
{
    RunEnv env(R"(
main:
    li $t0, 1
    li $t1, 35           # shift amounts use low 5 bits: 35 & 31 = 3
    sllv $t2, $t0, $t1   # 8
    li $t3, 0x80000000
    srlv $t4, $t3, $t1   # 0x10000000
    srav $t5, $t3, $t1   # 0xf0000000
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(10), 8u);
    EXPECT_EQ(env.gpr(12), 0x10000000u);
    EXPECT_EQ(env.gpr(13), 0xf0000000u);
}

TEST(Executor, DivisionByZeroIsZero)
{
    RunEnv env(R"(
main:
    li $t0, 42
    div $t1, $t0, $zero
    rem $t2, $t0, $zero
    divu $t3, $t0, $zero
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(9), 0u);
    EXPECT_EQ(env.gpr(10), 0u);
    EXPECT_EQ(env.gpr(11), 0u);
}

TEST(Executor, ZeroRegisterIsImmutable)
{
    RunEnv env(R"(
main:
    li $t0, 5
    addu $zero, $t0, $t0
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(0), 0u);
}

TEST(Executor, LoadStoreAllWidths)
{
    RunEnv env(R"(
.data
buf: .space 16
.text
main:
    la $t0, buf
    li $t1, 0x80
    sb $t1, 0($t0)
    lb $t2, 0($t0)       # sign-extends: 0xffffff80
    lbu $t3, 0($t0)      # 0x80
    li $t4, 0x8000
    sh $t4, 4($t0)
    lh $t5, 4($t0)       # 0xffff8000
    lhu $t6, 4($t0)      # 0x8000
    li $t7, 0x12345678
    sw $t7, 8($t0)
    lw $t8, 8($t0)
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(10), 0xffffff80u);
    EXPECT_EQ(env.gpr(11), 0x80u);
    EXPECT_EQ(env.gpr(13), 0xffff8000u);
    EXPECT_EQ(env.gpr(14), 0x8000u);
    EXPECT_EQ(env.gpr(24), 0x12345678u);
}

TEST(Executor, LoopSumsCorrectly)
{
    RunEnv env(R"(
main:
    li $t0, 0          # sum
    li $t1, 100        # i
loop:
    addu $t0, $t0, $t1
    addiu $t1, $t1, -1
    bgtz $t1, loop
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(8), 5050u);
}

TEST(Executor, CallAndReturn)
{
    RunEnv env(R"(
main:
    li $a0, 20
    jal double_it
    move $s0, $v0
    li $v0, 10
    syscall
double_it:
    addu $v0, $a0, $a0
    jr $ra
)");
    env.run();
    EXPECT_EQ(env.gpr(16), 40u);
}

TEST(Executor, RecursiveFactorial)
{
    RunEnv env(R"(
main:
    li $a0, 6
    jal fact
    move $s0, $v0
    li $v0, 10
    syscall
fact:
    addiu $sp, $sp, -8
    sw $ra, 4($sp)
    sw $a0, 0($sp)
    li $v0, 1
    blez $a0, fact_done
    addiu $a0, $a0, -1
    jal fact
    lw $a0, 0($sp)
    mul $v0, $v0, $a0
fact_done:
    lw $ra, 4($sp)
    addiu $sp, $sp, 8
    jr $ra
)");
    env.run();
    EXPECT_EQ(env.gpr(16), 720u);
}

TEST(Executor, IndirectCallThroughTable)
{
    RunEnv env(R"(
.data
table: .word f1, f2
.text
main:
    la $t0, table
    lw $t1, 4($t0)
    jalr $t1
    move $s0, $v0
    li $v0, 10
    syscall
f1: li $v0, 111
    jr $ra
f2: li $v0, 222
    jr $ra
)");
    env.run();
    EXPECT_EQ(env.gpr(16), 222u);
}

TEST(Executor, BranchVariants)
{
    RunEnv env(R"(
main:
    li $t0, -3
    li $s0, 0
    bltz $t0, a
    li $s0, 99
a:  bgez $t0, bad
    addiu $s0, $s0, 1    # executed
    li $t1, 0
    blez $t1, b
bad:
    li $s0, 99
b:  bgtz $t1, bad2
    addiu $s0, $s0, 1
bad2:
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(16), 2u);
}

TEST(Executor, FloatingPoint)
{
    RunEnv env(R"(
main:
    li $t0, 3
    mtc1 $t0, $f0
    cvt.s.w $f0, $f0     # 3.0
    li $t1, 4
    mtc1 $t1, $f1
    cvt.s.w $f1, $f1     # 4.0
    add.s $f2, $f0, $f1  # 7.0
    mul.s $f3, $f0, $f1  # 12.0
    sub.s $f4, $f1, $f0  # 1.0
    div.s $f5, $f3, $f1  # 3.0
    neg.s $f6, $f2       # -7.0
    abs.s $f7, $f6       # 7.0
    cvt.w.s $f8, $f3
    mfc1 $s0, $f8        # 12
    c.lt.s $f0, $f1      # true
    bc1t ok
    li $s1, 99
ok: li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(16), 12u);
    EXPECT_EQ(env.gpr(17), 0u);
    EXPECT_FLOAT_EQ(env.exec.state().fprAsFloat(2), 7.0f);
    EXPECT_FLOAT_EQ(env.exec.state().fprAsFloat(6), -7.0f);
    EXPECT_FLOAT_EQ(env.exec.state().fprAsFloat(7), 7.0f);
}

TEST(Executor, FpMemoryAndCompares)
{
    RunEnv env(R"(
.data
vals: .word 0x40490fdb    # pi as float bits
.text
main:
    la $t0, vals
    lwc1 $f0, 0($t0)
    mov.s $f1, $f0
    swc1 $f1, 4($t0)
    lw $s0, 4($t0)
    c.eq.s $f0, $f1
    bc1f bad
    li $s1, 1
bad:
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.gpr(16), 0x40490fdbu);
    EXPECT_EQ(env.gpr(17), 1u);
}

TEST(Executor, SyscallPrintOutput)
{
    RunEnv env(R"(
.data
msg: .asciiz "sum="
.text
main:
    li $v0, 4
    la $a0, msg
    syscall
    li $v0, 1
    li $a0, -42
    syscall
    li $v0, 11
    li $a0, 10      # '\n'
    syscall
    li $v0, 10
    syscall
)");
    env.run();
    EXPECT_EQ(env.exec.output(), "sum=-42\n");
}

TEST(Executor, StepRecordsDescribeControlFlow)
{
    RunEnv env(R"(
main:
    li $t0, 1
    beq $t0, $zero, skip
    addiu $t1, $zero, 5
skip:
    li $v0, 10
    syscall
)");
    StepRecord r1 = env.exec.step(); // li
    EXPECT_FALSE(r1.taken);
    EXPECT_EQ(r1.nextPc, r1.pc + 4);
    StepRecord r2 = env.exec.step(); // beq (not taken)
    EXPECT_FALSE(r2.taken);
    EXPECT_TRUE(r2.info->isControl);
    StepRecord r3 = env.exec.step(); // addiu
    EXPECT_EQ(r3.inst->op, Op::Addiu);
}

TEST(Executor, StepRecordMemAddr)
{
    RunEnv env(R"(
.data
x: .word 7
.text
main:
    la $t0, x
    lw $t1, 0($t0)
    li $v0, 10
    syscall
)");
    env.exec.step(); // lui
    env.exec.step(); // ori
    StepRecord lw = env.exec.step();
    EXPECT_TRUE(lw.info->isMem);
    EXPECT_EQ(lw.memAddr, kDataBase);
    EXPECT_EQ(env.gpr(9), 7u);
}

TEST(Executor, HaltSetsFlagsAndRecord)
{
    RunEnv env("main:\n li $v0, 10\n syscall\n");
    env.exec.step();
    StepRecord r = env.exec.step();
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(env.exec.halted());
    EXPECT_EQ(env.exec.instCount(), 2u);
}

TEST(Executor, ResetRestoresInitialState)
{
    RunEnv env("main:\n li $t0, 9\n li $v0, 10\n syscall\n");
    env.run();
    EXPECT_EQ(env.gpr(8), 9u);
    env.exec.reset(env.prog);
    EXPECT_FALSE(env.exec.halted());
    EXPECT_EQ(env.exec.instCount(), 0u);
    EXPECT_EQ(env.gpr(8), 0u);
    EXPECT_EQ(env.exec.state().pc, env.prog.entry);
    EXPECT_EQ(env.gpr(kRegSp), kStackTop);
}

TEST(Executor, JalSetsRaPastCall)
{
    RunEnv env(R"(
main:
    jal f
    li $v0, 10
    syscall
f:  move $s0, $ra
    jr $ra
)");
    env.run();
    EXPECT_EQ(env.gpr(16), env.prog.symbol("main") + 4);
}


TEST(Executor, MixStatsCountClasses)
{
    RunEnv env(R"(
.data
b: .word 0
.text
main:
    li $t0, 3          # IntAlu
    la $t1, b          # 2x IntAlu (lui+ori)
    lw $t2, 0($t1)     # Load
    sw $t0, 0($t1)     # Store
    mul $t3, $t0, $t0  # IntMult
    jal f              # Jump
    li $v0, 10
    syscall            # Syscall
f2: nop
    jr $ra
f:  beq $t0, $zero, f2 # Branch (not taken)
    jr $ra             # JumpReg
)");
    env.run();
    const Executor::MixStats &mix = env.exec.mix();
    EXPECT_EQ(mix.of(InstClass::Load), 1u);
    EXPECT_EQ(mix.of(InstClass::Store), 1u);
    EXPECT_EQ(mix.of(InstClass::IntMult), 1u);
    EXPECT_EQ(mix.of(InstClass::Jump), 1u);
    EXPECT_EQ(mix.of(InstClass::Branch), 1u);
    EXPECT_EQ(mix.of(InstClass::JumpReg), 1u);
    EXPECT_EQ(mix.of(InstClass::Syscall), 1u);
    EXPECT_EQ(mix.memOps(), 2u);
    EXPECT_EQ(mix.controlOps(), 3u);
    EXPECT_EQ(mix.total(), env.exec.instCount());
}

TEST(Executor, MixSharesSumToOne)
{
    RunEnv env(R"(
main:
    li $t0, 50
loop:
    addiu $t0, $t0, -1
    bgtz $t0, loop
    li $v0, 10
    syscall
)");
    env.run();
    const Executor::MixStats &mix = env.exec.mix();
    double sum = 0;
    for (int c = 0; c < 16; ++c)
        sum += mix.share(static_cast<InstClass>(c));
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(mix.share(InstClass::Branch), 0.3);
}

} // namespace
} // namespace cps
