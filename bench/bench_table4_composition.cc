/**
 * @file
 * Reproduces Table 4: composition of the compressed region. Each column
 * is the share of the total compressed bits spent on the index table,
 * the dictionaries, compressed tags, dictionary indices, raw tags, raw
 * bits, and block-alignment padding.
 *
 * Paper shape: index table ~5%, dictionary 0.3-3.4%, compressed tags
 * 22-26%, dictionary indices 46-51%, raw tags 2.7-3.9%, raw bits
 * 14-21%, pad ~1.1%. The paper highlights that a "surprising" 19-25% of
 * the compressed program (raw tags + raw bits) is not compressed at all.
 */

#include "common/table.hh"
#include "harness/suite.hh"

using namespace cps;

int
main()
{
    Suite &suite = Suite::instance();
    suite.pregenerate(); // generate + compress the suite in parallel

    TextTable t;
    t.setTitle("Table 4: Composition of compressed region");
    t.addHeader({"Bench", "Index table", "Dictionary", "Compressed tags",
                 "Dict indices", "Raw tags", "Raw bits", "Pad",
                 "Total (bytes)"});

    for (const std::string &name : suite.names()) {
        const codepack::Composition &c = suite.get(name).image.comp;
        double total = static_cast<double>(c.totalBits());
        auto share = [&](u64 bits) {
            return TextTable::pct(static_cast<double>(bits) / total);
        };
        t.addRow({name, share(c.indexTableBits), share(c.dictionaryBits),
                  share(c.compressedTagBits), share(c.dictIndexBits),
                  share(c.rawTagBits), share(c.rawBits), share(c.padBits),
                  TextTable::grouped(c.totalBytes())});
    }
    t.addRule();
    t.addRow({"(paper)", "5.0-5.6%", "0.3-3.4%", "21.9-26.3%",
              "46.0-50.9%", "2.7-3.9%", "14.2-20.9%", "1.1-1.2%", ""});
    t.print();
    return 0;
}
