#!/usr/bin/env python3
"""Validate BENCH_simperf.json against its schema.

Runs as a ctest test (label `perf`) ordered after perf_simperf_smoke,
which writes the file. Pure stdlib on purpose: CI validates the bench's
trajectory record without any package installs.
"""

import json
import sys

EXPECTED_SCHEMA = 8

# section -> keys that must be present (values are checked to be of the
# right shape, not of any particular magnitude: wall-clock numbers are
# machine-dependent by design).
REQUIRED = {
    "pregen": ["cold_seconds", "warm_seconds", "warm_speedup"],
    "compress": [
        "serial_seconds",
        "parallel_seconds",
        "scalar_seconds",
        "workers",
        "speedup",
        "simd_backend",
        "simd_speedup",
    ],
    "decode": [
        "kernel_default",
        "checked_blocks_per_sec",
        "lut_blocks_per_sec",
        "lut2_blocks_per_sec",
        "batched_blocks_per_sec",
        "checked_ns_per_block",
        "lut_ns_per_block",
        "lut2_ns_per_block",
        "batched_ns_per_block",
        "batched_speedup",
    ],
    "hostpf": [
        "slots",
        "direct_blocks_per_sec",
        "lru_blocks_per_sec",
        "fetcher_blocks_per_sec",
        "warm_refill_speedup",
        "prefetch_issued",
        "prefetch_hits",
        "prefetch_hit_rate",
    ],
    "simulation": [
        "native_insns_per_sec",
        "native_replay_insns_per_sec",
        "codepack_opt_insns_per_sec",
        "codepack_opt_replay_insns_per_sec",
        "inorder_insns_per_sec",
        "inorder_replay_insns_per_sec",
    ],
    "matrix": [
        "runs",
        "insns_per_run",
        "serial_seconds",
        "parallel_seconds",
        "workers",
        "speedup",
        "live_seconds",
        "replay_seconds",
        "replay_speedup",
    ],
    "chunked": [
        "chunk_insns",
        "insns_per_sec_1t",
        "insns_per_sec_2t",
        "insns_per_sec_4t",
        "insns_per_sec_8t",
        "speedup_8t_vs_serial_replay",
        "accuracy",
    ],
}


def fail(msg):
    print("check_simperf_schema: FAIL: " + msg)
    sys.exit(1)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_simperf.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        fail(path + " not found (did perf_simperf_smoke run here?)")
    except json.JSONDecodeError as e:
        fail(path + " is not valid JSON: " + str(e))

    if doc.get("schema") != EXPECTED_SCHEMA:
        fail(
            "schema is %r, expected %d"
            % (doc.get("schema"), EXPECTED_SCHEMA)
        )

    for section, keys in REQUIRED.items():
        if section not in doc:
            fail("missing section %r" % section)
        for key in keys:
            if key not in doc[section]:
                fail("missing key %r in section %r" % (key, section))

    dec = doc["decode"]
    if dec["kernel_default"] not in ("checked", "lut", "lut2"):
        fail("decode.kernel_default %r is not a known kernel"
             % dec["kernel_default"])
    if doc["compress"]["simd_backend"] not in ("sse2", "neon", "scalar"):
        fail("compress.simd_backend %r is not a known backend"
             % doc["compress"]["simd_backend"])
    for key in (
        "checked_blocks_per_sec",
        "lut_blocks_per_sec",
        "lut2_blocks_per_sec",
        "batched_blocks_per_sec",
    ):
        if not (isinstance(dec[key], (int, float)) and dec[key] > 0):
            fail("decode.%s should be a positive number, got %r"
                 % (key, dec[key]))

    pf = doc["hostpf"]
    for key in (
        "slots",
        "direct_blocks_per_sec",
        "lru_blocks_per_sec",
        "fetcher_blocks_per_sec",
        "warm_refill_speedup",
    ):
        if not (isinstance(pf[key], (int, float)) and pf[key] > 0):
            fail("hostpf.%s should be a positive number, got %r"
                 % (key, pf[key]))
    if pf["prefetch_hits"] > pf["prefetch_issued"]:
        fail("hostpf claims more prefetch hits than issued")
    if not 0.0 <= pf["prefetch_hit_rate"] <= 1.0:
        fail("hostpf.prefetch_hit_rate %r outside [0, 1]"
             % pf["prefetch_hit_rate"])

    # The "softerr" section is merged by bench_ext_soft_errors, which
    # runs separately from the smoke bench; validate it when present.
    if "softerr" in doc:
        se = doc["softerr"]
        for key in (
            "trials_per_kind",
            "upsets_per_profile",
            "profiles",
            "none_upsets",
            "none_silent_wrong",
            "none_silent_rate",
            "protected_silent_wrong",
            "secded_upsets",
            "secded_corrected",
            "secded_refetched",
            "secded_detected",
            "secded_cost_pct_mean",
            "check_cycles",
            "correct_cycles",
            "refetch_cycles_mean",
        ):
            if key not in se:
                fail("missing key %r in section 'softerr'" % key)
        if se["protected_silent_wrong"] != 0:
            fail("softerr.protected_silent_wrong is %r: protection "
                 "must kill every silent escape" % se["protected_silent_wrong"])
        if not 0.0 <= se["none_silent_rate"] <= 1.0:
            fail("softerr.none_silent_rate %r outside [0, 1]"
                 % se["none_silent_rate"])

    acc = doc["chunked"]["accuracy"]
    if not (isinstance(acc, list) and len(acc) == 3):
        fail("chunked.accuracy should be a list of 3 entries")
    for entry in acc:
        for key in ("warmup", "max_ipc_delta", "max_missrate_delta"):
            if key not in entry:
                fail("missing key %r in chunked.accuracy entry" % key)

    print("check_simperf_schema: OK (schema %d)" % EXPECTED_SCHEMA)


if __name__ == "__main__":
    main()
