#include "timing.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace cps
{
namespace codepack
{

DecompressorModel::DecompressorModel(const CompressedImage &img,
                                     MainMemory &mem,
                                     const DecompressorConfig &cfg,
                                     StatSet &stats)
    : img_(img), decomp_(img),
      fetcher_(decomp_, BlockFetcher::Options::fromEnv(), &stats,
               cfg.softErrorDomain),
      mem_(mem), cfg_(cfg),
      idxCache_(cfg.indexCacheLines, cfg.indexesPerLine,
                cfg.indexReplacement, cfg.indexCacheSets),
      statMisses_(stats.scalar("decomp.misses")),
      statBufferHits_(stats.scalar("decomp.buffer_hits")),
      statIdxLookups_(stats.scalar("decomp.index_lookups")),
      statIdxHits_(stats.scalar("decomp.index_hits")),
      statInsnsDecoded_(stats.scalar("decomp.insns_decoded")),
      statPfIssued_(stats.scalar("decomp.prefetch_issued")),
      statPfHits_(stats.scalar("decomp.prefetch_hits"))
{
    cps_assert(cfg.decodeRate >= 1 && cfg.decodeRate <= kBlockInsns,
               "decode rate %u out of range", cfg.decodeRate);
    cps_assert(cfg.prefetch == PrefetchKind::None || cfg.prefetchDepth >= 1,
               "prefetch depth must be at least 1");
    cps_assert(!cfg.softErrorDomain ||
                   &cfg.softErrorDomain->memory() == &img,
               "soft-error domain wraps a different image than the model");
    unsigned pf_slots =
        cfg.prefetch == PrefetchKind::None ? 0 : cfg.prefetchDepth;
    buffers_.resize(1 + pf_slots);
}

void
DecompressorModel::reset()
{
    for (BlockBuffer &b : buffers_)
        b = BlockBuffer{};
    pfRotor_ = 0;
    havePrevReq_ = false;
    prevReqFlat_ = 0;
    lastStride_ = 0;
    strideConf_ = 0;
    engineBusyUntil_ = 0;
    idxCache_.invalidateAll();
}

/**
 * Bursts one block's code and serially decodes it at the configured
 * rate, no earlier than @p idx_ready (index available) and the engine
 * becoming free. Returns per-instruction ready cycles and advances
 * engineBusyUntil_.
 */
std::array<Cycle, kBlockInsns>
DecompressorModel::decodeTiming(u32 group, u32 block, Cycle idx_ready,
                                BurstResult *code_out)
{
    // Burst-read the compressed block. The burst starts at the bus
    // boundary containing the block's first byte.
    const DecodedBlock *blkp;
    if (fetcher_.domain()) {
        Result<const DecodedBlock *> r = fetcher_.tryGetFlat(
            group * kBlocksPerGroup + block);
        if (!r) {
            // Unrecoverable corruption: latch the fault and hand back a
            // trivially-finite fill so the pipeline drains instead of
            // deadlocking; the machine aborts the run off the latch.
            softError_ = true;
            softErrorDetail_ = r.error();
            std::array<Cycle, kBlockInsns> ready;
            ready.fill(idx_ready + 1);
            if (code_out)
                *code_out = BurstResult{};
            return ready;
        }
        blkp = *r;
    } else {
        blkp = &fetcher_.get(group, block);
    }
    const DecodedBlock &blk = *blkp;
    unsigned bus_bytes = mem_.timing().busBytes();
    u32 start = static_cast<u32>(roundDown(blk.byteOffset, bus_bytes));
    u32 end = blk.byteOffset + std::max<u32>(blk.byteLen, 1);
    BurstResult code = mem_.burstRead(idx_ready, end - start);

    // Protection cost: the pipelined ECC/CRC check sits between the
    // memory channel and the decoder, delaying every beat by its fixed
    // latency. A single-bit repair adds the correction pass; a detected
    // error discards the burst and re-reads the block from backing
    // storage (a second full burst) before checking again.
    Cycle check_lat = 0;
    if (cfg_.protect != ProtectKind::None) {
        check_lat = cfg_.eccCheckCycles;
        switch (fetcher_.lastCheck()) {
          case FetchCheck::Clean:
            break;
          case FetchCheck::Corrected:
            check_lat += cfg_.eccCorrectCycles;
            break;
          case FetchCheck::Refetched:
            code = mem_.burstRead(code.done + cfg_.eccCheckCycles,
                                  end - start);
            break;
          case FetchCheck::Unrecoverable:
            // tryGetFlat already failed above; unreachable here.
            break;
        }
    }

    // Arrival time of each instruction's final codeword bit.
    std::array<Cycle, kBlockInsns> arrival;
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        u32 end_byte = blk.byteOffset + (blk.endBit[i] + 7) / 8; // 1 past
        u32 in_burst = end_byte - 1 - start;
        arrival[i] = code.arrivalOfByte(in_burst, bus_bytes) + check_lat;
    }

    // Serial decode at decodeRate instructions per cycle, overlapped
    // with the arriving beats. An instruction decoded during cycle t
    // is available (forwarded) at t; its input bits must have arrived
    // by t-1. The single decode engine handles one block at a time, so
    // speculative decodes queue behind whatever it is still working on.
    std::array<Cycle, kBlockInsns> ready;
    unsigned decoded = 0;
    // Engine occupancy only matters once speculative decodes can be in
    // flight; without a prefetcher there is a single blocking miss at a
    // time and the paper's timing is reproduced exactly.
    Cycle busy =
        cfg_.prefetch == PrefetchKind::None ? 0 : engineBusyUntil_;
    Cycle t = std::max(code.beatArrival.front() + check_lat, busy);
    while (decoded < kBlockInsns) {
        // Skip idle cycles while waiting for data.
        t = std::max(t + 1, arrival[decoded] + 1);
        unsigned issued = 0;
        while (decoded < kBlockInsns && issued < cfg_.decodeRate &&
               arrival[decoded] <= t - 1) {
            ready[decoded] = t;
            ++decoded;
            ++issued;
        }
    }
    statInsnsDecoded_.inc(kBlockInsns);
    engineBusyUntil_ = ready[kBlockInsns - 1];
    if (code_out)
        *code_out = std::move(code);
    return ready;
}

/**
 * Predicts the blocks to fetch after a demand for flat block @p flat
 * and speculatively decodes them into the prefetch buffers. Prefetch
 * bursts share the single memory channel (they queue behind demand
 * traffic) and the decode engine serializes behind the demand decode.
 */
void
DecompressorModel::issuePrefetches(u32 flat, Cycle now)
{
    s64 stride = 1;
    unsigned depth = cfg_.prefetchDepth;
    if (cfg_.prefetch == PrefetchKind::Stride) {
        // Only act on a twice-confirmed non-zero stride.
        if (strideConf_ < 2 || lastStride_ == 0)
            return;
        stride = lastStride_;
    }

    for (unsigned k = 1; k <= depth; ++k) {
        s64 pred = static_cast<s64>(flat) + stride * static_cast<s64>(k);
        if (pred < 0 || pred >= static_cast<s64>(img_.numBlocks()))
            continue;
        u32 pgroup = static_cast<u32>(pred) / kBlocksPerGroup;
        u32 pblock = static_cast<u32>(pred) % kBlocksPerGroup;
        bool resident = false;
        for (const BlockBuffer &b : buffers_)
            if (b.valid && b.group == pgroup && b.block == pblock)
                resident = true;
        if (resident)
            continue;

        // Index lookup for the predicted group, same path as demand.
        Cycle idx_ready = now;
        if (!cfg_.perfectIndexCache) {
            statIdxLookups_.inc();
            if (idxCache_.access(pgroup)) {
                statIdxHits_.inc();
            } else {
                unsigned bytes =
                    cfg_.burstIndexFill ? 4 * cfg_.indexesPerLine : 4;
                BurstResult r = mem_.burstRead(now, bytes);
                idx_ready = r.done;
                idxCache_.fill(pgroup);
            }
        }

        BlockBuffer &slot = buffers_[1 + (pfRotor_++ % depth)];
        slot.valid = true;
        slot.prefetched = true;
        slot.group = pgroup;
        slot.block = pblock;
        slot.ready = decodeTiming(pgroup, pblock, idx_ready, nullptr);
        statPfIssued_.inc();
    }
}

LineFill
DecompressorModel::handleMiss(Addr line_addr, Cycle now)
{
    cps_assert((line_addr & 31) == 0, "miss address not line aligned");
    statMisses_.inc();

    u32 insn_idx = img_.insnIndexOf(line_addr);
    u32 group = insn_idx / kGroupInsns;
    u32 block = (insn_idx / kBlockInsns) % kBlocksPerGroup;
    u32 flat = insn_idx / kBlockInsns;
    unsigned half = (insn_idx % kBlockInsns) / kLineWords;

    trace_ = MissTrace{};
    trace_.requestCycle = now;
    trace_.criticalInsn = half * kLineWords;

    // Train the prefetcher on transitions of the demanded block (the
    // second line of a block must not look like a new stride sample).
    bool new_block = false;
    if (cfg_.prefetch != PrefetchKind::None &&
        (!havePrevReq_ || prevReqFlat_ != flat)) {
        new_block = true;
        if (havePrevReq_) {
            s64 stride =
                static_cast<s64>(flat) - static_cast<s64>(prevReqFlat_);
            if (stride == lastStride_) {
                ++strideConf_;
            } else {
                lastStride_ = stride;
                strideConf_ = 1;
            }
        }
        havePrevReq_ = true;
        prevReqFlat_ = flat;
    }

    LineFill fill;

    // 1. Output-buffer probe: the previous miss always decompressed the
    //    whole 16-instruction block, so the block's other line (and
    //    re-requests of the same line) stream straight out of the buffer.
    //    With a prefetcher, speculatively decoded blocks hit here too.
    for (BlockBuffer &buf : buffers_) {
        if (!buf.valid || buf.group != group || buf.block != block)
            continue;
        statBufferHits_.inc();
        if (buf.prefetched) {
            statPfHits_.inc();
            buf.prefetched = false; // count each useful prefetch once
        }
        trace_.bufferHit = true;
        // Words stream out of the buffer at the decompressor's output
        // rate (its port runs at the decode rate), and no earlier than
        // the original decode produced them.
        Cycle done = now;
        for (unsigned w = 0; w < kLineWords; ++w) {
            Cycle port = now + 1 + w / cfg_.decodeRate;
            fill.wordReady[w] =
                std::max(port, buf.ready[half * kLineWords + w]);
            done = std::max(done, fill.wordReady[w]);
        }
        fill.fillDone = done;
        fill.fromBuffer = true;
        if (new_block)
            issuePrefetches(flat, now);
        return fill;
    }

    // 2. Index-table lookup. The index cache is probed in parallel with
    //    the L1 lookup, so a hit contributes no extra latency.
    Cycle idx_ready = now;
    trace_.indexStart = now;
    if (cfg_.perfectIndexCache) {
        trace_.indexPerfect = true;
        trace_.indexHit = true;
    } else {
        statIdxLookups_.inc();
        if (idxCache_.access(group)) {
            statIdxHits_.inc();
            trace_.indexHit = true;
        } else {
            unsigned bytes = cfg_.burstIndexFill
                                 ? 4 * cfg_.indexesPerLine : 4;
            BurstResult r = mem_.burstRead(now, bytes);
            idx_ready = r.done;
            idxCache_.fill(group);
        }
    }
    trace_.indexDone = idx_ready;

    // 3+4. Burst the compressed block and decode it serially (the
    //      demand decode preempts nothing: the engine is free by
    //      construction on the no-prefetch path, and queues behind any
    //      in-flight speculative decode otherwise).
    BurstResult code;
    std::array<Cycle, kBlockInsns> ready =
        decodeTiming(group, block, idx_ready, &code);
    trace_.codeBeats = code.beatArrival;
    trace_.decodeDone = ready;

    // 5. Fill the demand output buffer with the complete block
    //    (prefetch of the block's other line) and report the requested
    //    line's words.
    buffers_[0].valid = true;
    buffers_[0].prefetched = false;
    buffers_[0].group = group;
    buffers_[0].block = block;
    buffers_[0].ready = ready;

    Cycle done = now;
    for (unsigned w = 0; w < kLineWords; ++w) {
        fill.wordReady[w] = ready[half * kLineWords + w];
        done = std::max(done, fill.wordReady[w]);
    }
    fill.fillDone = done;
    if (new_block)
        issuePrefetches(flat, now);
    return fill;
}

} // namespace codepack
} // namespace cps
