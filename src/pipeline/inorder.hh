/**
 * @file
 * The 1-issue in-order 5-stage pipeline model (paper Table 2, "1-issue").
 *
 * A timing-directed event-timeline model: the functional executor
 * supplies the retired instruction stream; for each instruction the model
 * computes its fetch, execute and result times under the structural and
 * data constraints of a classic scalar 5-stage pipe with full bypassing:
 *
 *   - one fetch per cycle, through the FetchPath (I-cache + miss path);
 *   - one instruction enters EX per cycle; multi-cycle EX blocks the pipe;
 *   - load results available after MEM (one load-use bubble on a hit);
 *   - conditional branches resolve in EX; a misprediction restarts fetch
 *     the following cycle; direct-jump targets resolve in decode.
 */

#ifndef CPS_PIPELINE_INORDER_HH
#define CPS_PIPELINE_INORDER_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "config.hh"
#include "core/trace.hh"
#include "frontend.hh"
#include "paths.hh"

namespace cps
{

/** Per-instruction timing record (optional tracing; see setTraceSink). */
struct PipeTraceEntry
{
    Addr pc = 0;
    Inst inst;           ///< by value: the trace may outlive the machine
    Cycle fetchDone = 0; ///< cycle IF completed
    Cycle execute = 0;   ///< cycle the op entered EX
    Cycle resultAt = 0;  ///< cycle the result (or store accept) was ready
};

/** Scalar in-order pipeline timing model. */
class InOrderPipeline
{
  public:
    /** Drives an arbitrary instruction stream (live or replayed). */
    InOrderPipeline(const PipelineConfig &cfg, TraceSource &src,
                    FetchPath &fetch, DataPath &data, StatSet &stats);

    /** Convenience: drives @p exec through an owned live source. */
    InOrderPipeline(const PipelineConfig &cfg, Executor &exec,
                    FetchPath &fetch, DataPath &data, StatSet &stats);

    /**
     * Runs until @p max_insns instructions retire or the program exits.
     */
    RunResult run(u64 max_insns);

    /**
     * Streams per-instruction timing into @p sink while running (the
     * pipeline-viewer example uses this). Pass nullptr to disable.
     * The sink must outlive the run.
     */
    void setTraceSink(std::vector<PipeTraceEntry> *sink) { trace_ = sink; }

    /**
     * Arms a warm-up gate for the next run (chunk-parallel engine):
     * the pipeline records cycle/insn counts and fires gate->onGate
     * when gate->warmupInsns instructions have retired. Pass nullptr
     * to disable. The gate must outlive the run.
     */
    void setWarmupGate(WarmupGate *gate) { gate_ = gate; }

  private:
    std::vector<PipeTraceEntry> *trace_ = nullptr;
    WarmupGate *gate_ = nullptr;
    PipelineConfig cfg_;
    std::unique_ptr<LiveTraceSource> ownedSrc_; ///< Executor-ctor wrapper
    TraceSource &src_;
    FetchPath &fetch_;
    DataPath &data_;
    FrontEnd frontend_;
    Counter &statInsns_;
    Counter &statCycles_;
};

} // namespace cps

#endif // CPS_PIPELINE_INORDER_HH
