/**
 * @file
 * Reproduces Table 11: sensitivity to main-memory bus width (16/32/64/
 * 128 bits) on the 4-issue machine; speedup over native with the same
 * bus.
 *
 * Paper shape: compression wins on narrow buses (fewer bytes to move);
 * as the bus widens native code catches up and eventually wins (the
 * decompression latency stops being hidden by fetch).
 */

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    const unsigned widths[] = {16, 32, 64, 128};

    TextTable t;
    t.setTitle("Table 11: Performance change by memory width "
               "(speedup over native with the same bus, 4-issue)");
    t.addHeader({"Bench", "16b CP", "16b Opt", "32b CP", "32b Opt",
                 "64b CP", "64b Opt", "128b CP", "128b Opt"});

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        for (unsigned w : widths) {
            MachineConfig native = baseline4Issue();
            native.mem.busWidthBits = w;
            m.add(bench, native, insns);
            m.add(bench, native.withCodeModel(CodeModel::CodePack), insns);
            m.add(bench,
                  native.withCodeModel(CodeModel::CodePackOptimized),
                  insns);
        }
    }
    m.run();

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };
    for (const std::string &name : suite.names()) {
        std::vector<std::string> row{name};
        for (size_t i = 0; i < 4; ++i) {
            harness::CellOutcome cn = m.nextCell();
            harness::CellOutcome cc = m.nextCell();
            harness::CellOutcome co = m.nextCell();
            row.push_back(harness::fmtCells(cn, cc, fmtSpd));
            row.push_back(harness::fmtCells(cn, co, fmtSpd));
        }
        t.addRow(row);
    }
    t.print();
    return m.exitSummary();
}
