#include "objfile.hh"

#include "common/byteio.hh"
#include "common/logging.hh"

namespace cps
{

namespace
{

constexpr char kMagic[8] = {'C', 'P', 'S', 'O', 'B', 'J', '1', '\0'};

} // namespace

std::vector<u8>
encodeProgram(const Program &prog)
{
    std::vector<u8> out;
    for (char c : kMagic)
        out.push_back(static_cast<u8>(c));
    put32(out, prog.entry);
    put32(out, prog.text.base);
    put32(out, static_cast<u32>(prog.text.bytes.size()));
    put32(out, prog.data.base);
    put32(out, static_cast<u32>(prog.data.bytes.size()));
    put32(out, static_cast<u32>(prog.symbols.size()));
    out.insert(out.end(), prog.text.bytes.begin(), prog.text.bytes.end());
    out.insert(out.end(), prog.data.bytes.begin(), prog.data.bytes.end());
    for (const auto &[name, addr] : prog.symbols) {
        put32(out, addr);
        put16(out, static_cast<u16>(name.size()));
        out.insert(out.end(), name.begin(), name.end());
    }
    return out;
}

std::optional<Program>
decodeProgram(const std::vector<u8> &bytes)
{
    ByteCursor cur(bytes);
    if (!cur.expectMagic(kMagic, sizeof(kMagic)))
        return std::nullopt;
    Program prog;
    prog.entry = cur.get32();
    prog.text.base = cur.get32();
    u32 text_len = cur.get32();
    prog.data.base = cur.get32();
    u32 data_len = cur.get32();
    u32 sym_count = cur.get32();
    prog.text.bytes = cur.getBytes(text_len);
    prog.data.bytes = cur.getBytes(data_len);
    for (u32 i = 0; cur.ok() && i < sym_count; ++i) {
        u32 addr = cur.get32();
        u16 len = cur.get16();
        std::string name = cur.getString(len);
        if (cur.ok())
            prog.symbols[name] = addr;
    }
    if (!cur.ok())
        return std::nullopt;
    return prog;
}

bool
saveProgram(const Program &prog, const std::string &path)
{
    return writeFileBytes(path, encodeProgram(prog));
}

std::optional<Program>
loadProgram(const std::string &path)
{
    auto bytes = readFileBytes(path);
    if (!bytes)
        return std::nullopt;
    return decodeProgram(*bytes);
}

} // namespace cps
