/**
 * @file
 * Small bit-manipulation helpers used by the ISA encoders, the CodePack
 * bitstream codec, and the cache index math.
 */

#ifndef CPS_COMMON_BITOPS_HH
#define CPS_COMMON_BITOPS_HH

#include <bit>

#include "logging.hh"
#include "types.hh"

namespace cps
{

/** Extracts bits [lo, lo+width) of @p value (lo = bit 0 is the LSB). */
constexpr u32
bitsOf(u32 value, unsigned lo, unsigned width)
{
    return (width >= 32) ? (value >> lo)
                         : ((value >> lo) & ((1u << width) - 1u));
}

/** Inserts the low @p width bits of @p field at bit position @p lo. */
constexpr u32
insertBits(u32 value, unsigned lo, unsigned width, u32 field)
{
    u32 mask = (width >= 32) ? ~0u : ((1u << width) - 1u);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extends the low @p width bits of @p value to 32 bits. */
constexpr s32
signExtend(u32 value, unsigned width)
{
    u32 shift = 32 - width;
    return static_cast<s32>(value << shift) >> shift;
}

/** True when @p value is a power of two (0 excluded). */
constexpr bool
isPow2(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(u64 value)
{
    return static_cast<unsigned>(std::countr_zero(value));
}

/** Rounds @p value up to the next multiple of the power-of-two @p align. */
constexpr u64
roundUp(u64 value, u64 align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Rounds @p value down to a multiple of the power-of-two @p align. */
constexpr u64
roundDown(u64 value, u64 align)
{
    return value & ~(align - 1);
}

/** Integer division rounding up. */
constexpr u64
divCeil(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

} // namespace cps

#endif // CPS_COMMON_BITOPS_HH
