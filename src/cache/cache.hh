/**
 * @file
 * Set-associative cache tag store with true-LRU replacement.
 *
 * This models tags and replacement only; data always lives in the
 * functional MainMemory (the simulator is timing-directed, so the caches
 * never need to hold bytes). The I-cache and D-cache of every simulated
 * machine are instances of this class; write-back state is tracked with
 * per-line dirty bits.
 *
 * Layout: the tag store is structure-of-arrays — parallel flat vectors
 * of flags, tags and LRU timestamps — so a set scan walks a handful of
 * adjacent bytes instead of striding over 24-byte way records. The
 * timing loops probe a cache once or twice per simulated instruction,
 * which makes this one of the hottest data structures in the simulator.
 * accessFill() serves the common lookup-then-fill sequence with a
 * single set walk.
 */

#ifndef CPS_CACHE_CACHE_HH
#define CPS_CACHE_CACHE_HH

#include <algorithm>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace cps
{

/** Replacement policy (the paper's machines use LRU; the others exist
 *  for the replacement-policy ablation). */
enum class ReplPolicy : u8
{
    Lru,
    Fifo,
    Random,
};

/** Geometry of one cache. */
struct CacheConfig
{
    u32 sizeBytes = 16 * 1024;
    u32 lineBytes = 32;
    u32 assoc = 2;
    ReplPolicy policy = ReplPolicy::Lru;

    u32 numSets() const { return sizeBytes / (lineBytes * assoc); }
};

/** Result of inserting a line: describes the victim, if any. */
struct CacheVictim
{
    bool valid = false;   ///< a line was evicted
    bool dirty = false;   ///< ... and it needs writing back
    Addr lineAddr = 0;    ///< base address of the evicted line
};

/** A set-associative tag store with LRU replacement and dirty bits. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg) : cfg_(cfg)
    {
        cps_assert(isPow2(cfg.lineBytes), "line size must be a power of 2");
        cps_assert(cfg.assoc >= 1, "associativity must be >= 1");
        cps_assert(cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) == 0,
                   "cache size not divisible into sets");
        cps_assert(isPow2(cfg.numSets()), "set count must be a power of 2");
        lineShift_ = log2i(cfg.lineBytes);
        setMask_ = cfg.numSets() - 1;
        size_t ways = static_cast<size_t>(cfg.numSets()) * cfg.assoc;
        flags_.assign(ways, 0);
        tags_.assign(ways, 0);
        lastUse_.assign(ways, 0);
    }

    const CacheConfig &config() const { return cfg_; }

    /** Base address of the line containing @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~(cfg_.lineBytes - 1); }

    /**
     * Looks @p addr up; updates LRU on hit.
     * @return true on hit
     */
    bool
    access(Addr addr)
    {
        size_t w = findWay(addr);
        if (w == kNoWay)
            return false;
        if (cfg_.policy == ReplPolicy::Lru)
            lastUse_[w] = ++useClock_;
        return true;
    }

    /** Tag probe with no LRU side effect. */
    bool probe(Addr addr) const { return findWay(addr) != kNoWay; }

    /** Marks the line containing @p addr dirty (it must be present). */
    void
    setDirty(Addr addr)
    {
        size_t w = findWay(addr);
        cps_assert(w != kNoWay, "setDirty on absent line");
        flags_[w] |= kDirty;
    }

    /**
     * Inserts the line containing @p addr, evicting the set's LRU way.
     * @return the victim line (valid+dirty => caller writes it back)
     */
    CacheVictim
    fill(Addr addr)
    {
        return fillWay(victimWay(setIndex(addr)), addr, false);
    }

    /**
     * Combined lookup-and-fill: one set walk decides hit/miss, updates
     * LRU (and the dirty bit, for stores) on a hit, and fills the line
     * on a miss. Behaviour (LRU clocking, victim choice, replacement
     * RNG sequence) is identical to access() + fill() [+ setDirty()].
     * @param make_dirty store semantics: the line ends up dirty
     * @param victim miss only: the evicted line, as fill() reports it
     * @return true on hit
     */
    bool
    accessFill(Addr addr, bool make_dirty, CacheVictim &victim)
    {
        size_t set = setIndex(addr);
        size_t base = set * cfg_.assoc;
        Addr tag = tagOf(addr);
        size_t invalid = kNoWay;
        size_t lru = kNoWay;
        for (size_t w = base; w < base + cfg_.assoc; ++w) {
            if (!(flags_[w] & kValid)) {
                if (invalid == kNoWay)
                    invalid = w;
                continue;
            }
            if (tags_[w] == tag) {
                if (cfg_.policy == ReplPolicy::Lru)
                    lastUse_[w] = ++useClock_;
                if (make_dirty)
                    flags_[w] |= kDirty;
                return true;
            }
            if (lru == kNoWay || lastUse_[w] < lastUse_[lru])
                lru = w;
        }
        victim = fillWay(invalid != kNoWay ? invalid : lru, addr,
                         make_dirty);
        return false;
    }

    /** Invalidates every line (dirty contents are discarded). */
    void
    invalidateAll()
    {
        std::fill(flags_.begin(), flags_.end(), u8{0});
        useClock_ = 0;
        rngState_ = 0x9e3779b97f4a7c15ULL;
    }

  private:
    static constexpr size_t kNoWay = ~static_cast<size_t>(0);
    static constexpr u8 kValid = 1;
    static constexpr u8 kDirty = 2;

    size_t
    setIndex(Addr addr) const
    {
        return (addr >> lineShift_) & setMask_;
    }

    Addr tagOf(Addr addr) const { return addr >> lineShift_; }

    size_t
    findWay(Addr addr) const
    {
        size_t base = setIndex(addr) * cfg_.assoc;
        Addr tag = tagOf(addr);
        for (size_t w = base; w < base + cfg_.assoc; ++w) {
            if ((flags_[w] & kValid) && tags_[w] == tag)
                return w;
        }
        return kNoWay;
    }

    /** Replacement choice for @p set: first invalid way, else LRU
     *  (FIFO shares the timestamp rule; it only stamps at fill). */
    size_t
    victimWay(size_t set) const
    {
        size_t base = set * cfg_.assoc;
        size_t victim = kNoWay;
        for (size_t w = base; w < base + cfg_.assoc; ++w) {
            if (!(flags_[w] & kValid))
                return w;
            if (victim == kNoWay || lastUse_[w] < lastUse_[victim])
                victim = w;
        }
        return victim;
    }

    /** Installs @p addr's line in way @p w, reporting the evictee. */
    CacheVictim
    fillWay(size_t w, Addr addr, bool make_dirty)
    {
        if ((flags_[w] & kValid) && cfg_.policy == ReplPolicy::Random) {
            // Deterministic xorshift over the set: reproducible runs.
            rngState_ ^= rngState_ << 13;
            rngState_ ^= rngState_ >> 7;
            rngState_ ^= rngState_ << 17;
            w = setIndex(addr) * cfg_.assoc + (rngState_ % cfg_.assoc);
        }

        CacheVictim out;
        if (flags_[w] & kValid) {
            out.valid = true;
            out.dirty = (flags_[w] & kDirty) != 0;
            out.lineAddr = tags_[w] << lineShift_; // tag includes set bits
        }
        flags_[w] = kValid | (make_dirty ? kDirty : u8{0});
        tags_[w] = tagOf(addr);
        lastUse_[w] = ++useClock_;
        return out;
    }

    CacheConfig cfg_;
    unsigned lineShift_ = 0;
    Addr setMask_ = 0;
    u64 useClock_ = 0;
    u64 rngState_ = 0x9e3779b97f4a7c15ULL;
    // Structure-of-arrays tag store: flags_[w] holds kValid/kDirty bits.
    std::vector<u8> flags_;
    std::vector<Addr> tags_;
    std::vector<u64> lastUse_;
};

} // namespace cps

#endif // CPS_CACHE_CACHE_HH
