/**
 * @file
 * cpack — the CodePack build-chain tool (the simulator-side analogue of
 * IBM's "CodePack PowerPC Code Compression Utility").
 *
 *   cpack <input.s|input.cpo|@bench> [options]
 *     -o <file.cpo>      write the assembled/loaded program
 *     -c <file.cpi>      write the compressed image
 *     --report           print the Table 3/4 style report (default)
 *     --no-raw-blocks    disable the raw-block escape
 *     --disasm <n>       disassemble the first n instructions
 *     --ecc <kind>       per-block soft-error protection: off, crc8,
 *                        crc16, secded (default from CPS_ECC, else off;
 *                        protected images write `.cpi` version 3)
 *
 * Inputs: an assembly file, a saved program object, or '@name' for one
 * of the built-in benchmark profiles (e.g. @go).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "asmkit/assembler.hh"
#include "common/byteio.hh"
#include "isa/isa.hh"
#include "asmkit/objfile.hh"
#include "codepack/compressor.hh"
#include "codepack/imagefile.hh"
#include "common/ecc.hh"
#include "common/table.hh"
#include "progen/progen.hh"

using namespace cps;

namespace
{

std::optional<std::string>
readTextFile(const std::string &path)
{
    auto bytes = readFileBytes(path);
    if (!bytes)
        return std::nullopt;
    return std::string(bytes->begin(), bytes->end());
}

void
report(const codepack::CompressedImage &img)
{
    std::printf("text: %u bytes -> compressed %llu bytes "
                "(ratio %.1f%%)\n\n",
                img.origTextBytes,
                static_cast<unsigned long long>(img.comp.totalBytes()),
                100.0 * img.compressionRatio());

    const codepack::Composition &c = img.comp;
    double total = static_cast<double>(c.totalBits());
    TextTable t;
    t.setTitle("Composition of compressed region");
    t.addHeader({"Component", "Bits", "Share"});
    auto row = [&](const char *label, u64 bits) {
        t.addRow({label, TextTable::grouped(bits),
                  TextTable::pct(static_cast<double>(bits) / total)});
    };
    row("index table", c.indexTableBits);
    row("dictionaries", c.dictionaryBits);
    row("compressed tags", c.compressedTagBits);
    row("dictionary indices", c.dictIndexBits);
    row("raw tags", c.rawTagBits);
    row("raw bits", c.rawBits);
    row("pad", c.padBits);
    t.print();

    std::printf("\ndictionaries: high %u entries, low %u entries; "
                "%u groups, %u blocks",
                img.highDict.totalEntries(), img.lowDict.totalEntries(),
                img.numGroups(), img.numBlocks());
    u32 raw_blocks = 0;
    for (const codepack::BlockExtent &b : img.blocks)
        raw_blocks += b.raw;
    std::printf(" (%u stored raw)\n", raw_blocks);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: cpack <input.s|input.cpo|@bench> "
                     "[-o out.cpo] [-c out.cpi] [--no-raw-blocks] "
                     "[--disasm N] [--ecc off|crc8|crc16|secded]\n");
        return 1;
    }

    std::string input = argv[1];
    std::string obj_out, img_out;
    bool raw_blocks = true;
    unsigned disasm_count = 0;
    ProtectKind protect = defaultProtectKind();
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc)
            obj_out = argv[++i];
        else if (arg == "-c" && i + 1 < argc)
            img_out = argv[++i];
        else if (arg == "--no-raw-blocks")
            raw_blocks = false;
        else if (arg == "--disasm" && i + 1 < argc)
            disasm_count = static_cast<unsigned>(atoi(argv[++i]));
        else if (arg == "--ecc" && i + 1 < argc) {
            if (!parseProtectKind(argv[++i], protect))
                cps_fatal("unknown protection kind '%s' (off, crc8, "
                          "crc16, secded)",
                          argv[i]);
        } else if (arg != "--report")
            cps_fatal("unknown option '%s'", arg.c_str());
    }

    // Load / assemble / generate.
    Program prog;
    if (!input.empty() && input[0] == '@') {
        prog = generateProgram(findProfile(input.substr(1)));
    } else if (input.size() > 4 &&
               input.compare(input.size() - 4, 4, ".cpo") == 0) {
        auto loaded = loadProgram(input);
        if (!loaded)
            cps_fatal("cannot load program '%s'", input.c_str());
        prog = std::move(*loaded);
    } else {
        auto source = readTextFile(input);
        if (!source)
            cps_fatal("cannot read '%s'", input.c_str());
        prog = assembleOrDie(*source);
    }

    codepack::CompressorConfig ccfg;
    ccfg.allowRawBlocks = raw_blocks;
    codepack::CompressedImage img = codepack::compress(prog, ccfg);
    if (protect != ProtectKind::None)
        codepack::protectImage(img, protect);

    if (disasm_count > 0) {
        std::printf("disassembly (first %u instructions):\n",
                    disasm_count);
        for (unsigned i = 0;
             i < disasm_count && i < prog.textWords(); ++i) {
            Addr pc = prog.text.base + i * 4;
            std::printf("  %08x: %08x  %s\n", pc, prog.word(i),
                        disassemble(prog.word(i), pc).c_str());
        }
        std::printf("\n");
    }

    report(img);

    if (!obj_out.empty()) {
        if (!saveProgram(prog, obj_out))
            cps_fatal("cannot write '%s'", obj_out.c_str());
        std::printf("\nwrote program object: %s\n", obj_out.c_str());
    }
    if (!img_out.empty()) {
        if (!codepack::saveImage(img, img_out))
            cps_fatal("cannot write '%s'", img_out.c_str());
        std::printf("wrote compressed image: %s\n", img_out.c_str());
    }
    return 0;
}
