#include "soft_campaign.hh"

#include "codepack/block_fetcher.hh"
#include "codepack/decompressor.hh"
#include "common/logging.hh"

namespace cps
{
namespace fault
{

using codepack::BlockFetcher;
using codepack::CompressedImage;
using codepack::DecodedBlock;
using codepack::Decompressor;
using codepack::FetchCheck;
using codepack::kBlocksPerGroup;
using codepack::SoftErrorDomain;

const char *
softOutcomeName(SoftOutcome outcome)
{
    switch (outcome) {
      case SoftOutcome::Clean:
        return "clean";
      case SoftOutcome::Corrected:
        return "corrected";
      case SoftOutcome::Refetched:
        return "refetched";
      case SoftOutcome::DetectedUnrecoverable:
        return "detected";
      case SoftOutcome::SilentWrong:
        return "silent-wrong";
    }
    return "unknown";
}

namespace
{

FetchCheck
worse(FetchCheck a, FetchCheck b)
{
    return static_cast<u8>(a) >= static_cast<u8>(b) ? a : b;
}

} // namespace

SoftCampaignResult
runSoftCampaign(const CompressedImage &img, const SoftCampaignConfig &cfg)
{
    cps_assert(img.numBlocks() > 0, "soft campaign needs a real image");

    // Reference decode of every block from the pristine image, so each
    // trial's comparison is a plain word-array check.
    Decompressor ref(img);
    std::vector<DecodedBlock> reference(img.numBlocks());
    for (u32 f = 0; f < img.numBlocks(); ++f)
        reference[f] = ref.decompressFlatBlock(f);

    // The working image is what the "memory system" serves; protect it
    // per the campaign mode. Its decode is bit-identical to the
    // pristine image (protection lives in side arrays).
    CompressedImage working = img;
    codepack::protectImage(working, cfg.protect);
    const std::vector<u8> pristine_bytes = working.bytes;
    const std::vector<u32> pristine_index = working.indexTable;

    SoftErrorDomain domain(working, cfg.seed ^ 0xd0117a11ull,
                           /*flip_rate_ppm=*/0, cfg.maxRetries);
    Decompressor decomp(working);
    BlockFetcher::Options opts;
    opts.async = cfg.asyncFetch;

    SoftCampaignResult res;
    for (unsigned ki = 0; ki < kNumMemFaultKinds; ++ki) {
        MemFaultKind kind = kAllMemFaultKinds[ki];
        for (unsigned t = 0; t < cfg.trials; ++t) {
            working.bytes = pristine_bytes;
            working.indexTable = pristine_index;
            domain.noteCorruption();

            MemoryFaultInjector inj(working, cfg.seed + t);
            MemFaultRecord rec = inj.inject(kind);
            domain.noteCorruption();

            // A fresh fetcher per trial: an unprotected run must not be
            // saved by a stale pristine copy cached from a prior trial.
            BlockFetcher fetcher(decomp, opts, nullptr, &domain);
            FetchCheck check = FetchCheck::Clean;
            bool refused = false;
            bool wrong = false;
            u32 base = rec.group * kBlocksPerGroup;
            for (u32 b = 0; b < kBlocksPerGroup &&
                            base + b < working.numBlocks();
                 ++b) {
                u32 flat = base + b;
                Result<const DecodedBlock *> r = fetcher.tryGetFlat(flat);
                if (!r) {
                    refused = true;
                    break;
                }
                check = worse(check, fetcher.lastCheck());
                if ((*r)->words != reference[flat].words)
                    wrong = true;
            }

            SoftOutcome o;
            if (refused) {
                o = SoftOutcome::DetectedUnrecoverable;
            } else if (wrong) {
                // Wrong words with no error raised — including a
                // SEC-DED miscorrection — is silent corruption.
                o = SoftOutcome::SilentWrong;
                if (res.silentWrong() == 0)
                    res.firstSilentWrong = rec;
            } else if (check == FetchCheck::Corrected) {
                o = SoftOutcome::Corrected;
            } else if (check == FetchCheck::Refetched) {
                o = SoftOutcome::Refetched;
            } else {
                o = SoftOutcome::Clean;
            }
            ++res.byOutcome[static_cast<unsigned>(o)];
            ++res.byKindOutcome[ki][static_cast<unsigned>(o)];
            ++res.trials;
        }
    }
    res.domainStats = domain.stats();
    return res;
}

} // namespace fault
} // namespace cps
