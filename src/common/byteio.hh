/**
 * @file
 * Little-endian byte serialization helpers shared by the object-file
 * and compressed-image file formats: bounds-checked reading, appending
 * writers, and whole-file I/O.
 */

#ifndef CPS_COMMON_BYTEIO_HH
#define CPS_COMMON_BYTEIO_HH

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "types.hh"

namespace cps
{

inline void
put8(std::vector<u8> &out, u8 v)
{
    out.push_back(v);
}

inline void
put16(std::vector<u8> &out, u16 v)
{
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
}

inline void
put32(std::vector<u8> &out, u32 v)
{
    put16(out, static_cast<u16>(v));
    put16(out, static_cast<u16>(v >> 16));
}

inline void
put64(std::vector<u8> &out, u64 v)
{
    put32(out, static_cast<u32>(v));
    put32(out, static_cast<u32>(v >> 32));
}

/** Bounds-checked little-endian reader over a byte vector. */
class ByteCursor
{
  public:
    explicit ByteCursor(const std::vector<u8> &bytes) : bytes_(bytes) {}

    bool ok() const { return ok_; }

    u8
    get8()
    {
        if (pos_ + 1 > bytes_.size()) {
            ok_ = false;
            return 0;
        }
        return bytes_[pos_++];
    }

    u16
    get16()
    {
        u16 lo = get8();
        u16 hi = get8();
        return static_cast<u16>(lo | (hi << 8));
    }

    u32
    get32()
    {
        u32 lo = get16();
        u32 hi = get16();
        return lo | (hi << 16);
    }

    u64
    get64()
    {
        u64 lo = get32();
        u64 hi = get32();
        return lo | (hi << 32);
    }

    std::vector<u8>
    getBytes(size_t n)
    {
        if (pos_ + n > bytes_.size()) {
            ok_ = false;
            return {};
        }
        std::vector<u8> out(bytes_.begin() + static_cast<long>(pos_),
                            bytes_.begin() + static_cast<long>(pos_ + n));
        pos_ += n;
        return out;
    }

    std::string
    getString(size_t n)
    {
        auto raw = getBytes(n);
        return std::string(raw.begin(), raw.end());
    }

    bool
    expectMagic(const char *magic, size_t n)
    {
        auto raw = getBytes(n);
        if (!ok_ || raw.size() != n ||
            std::memcmp(raw.data(), magic, n) != 0) {
            ok_ = false;
            return false;
        }
        return true;
    }

    size_t remaining() const { return bytes_.size() - pos_; }

    /** Byte offset of the next read (for error reports and CRC spans). */
    size_t pos() const { return pos_; }

  private:
    const std::vector<u8> &bytes_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** Writes @p bytes to @p path. @return false on I/O failure. */
bool writeFileBytes(const std::string &path, const std::vector<u8> &bytes);

/** Reads all of @p path; nullopt on failure. */
std::optional<std::vector<u8>> readFileBytes(const std::string &path);

} // namespace cps

#endif // CPS_COMMON_BYTEIO_HH
