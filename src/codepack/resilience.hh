/**
 * @file
 * The soft-error recovery domain for compressed code held in memory.
 *
 * A SoftErrorDomain pairs a working CompressedImage (the bytes the
 * modeled memory system actually serves, which bit-flip injectors
 * mutate) with a pristine backing copy (the image as it exists in
 * non-volatile storage). Every block fetch is funnelled through
 * verifyBlock, which re-derives the fetched data's ECC/CRC verdict:
 *
 *   Clean         data and checks agree (or an earlier verification in
 *                 the current corruption epoch already vouched for it)
 *   Corrected     SEC-DED repaired a single-bit error in place
 *   Refetched     the check detected an uncorrectable pattern and the
 *                 block (or its index entry) was re-read from backing
 *   Unrecoverable detection persisted through the bounded refetch
 *                 budget — the caller must surface a structured
 *                 DecodeError, never decoded garbage
 *
 * The check arrays themselves are modeled as the ECC spare bits of a
 * protected memory: injectors never flip them, and refetches re-read
 * only data. Verification results are memoized per corruption epoch
 * (noteCorruption starts a new epoch), so steady-state fetches of
 * already-vouched blocks cost one array lookup.
 */

#ifndef CPS_CODEPACK_RESILIENCE_HH
#define CPS_CODEPACK_RESILIENCE_HH

#include <vector>

#include "common/result.hh"
#include "common/rng.hh"
#include "compressor.hh"

namespace cps
{
namespace codepack
{

/** Verdict of routing one block fetch through a SoftErrorDomain. */
enum class FetchCheck : u8
{
    Clean = 0,
    Corrected = 1,
    Refetched = 2,
    Unrecoverable = 3,
};

/** Stable knob/report spelling ("clean"/"corrected"/...). */
const char *fetchCheckName(FetchCheck check);

/**
 * Refetch budget before a detected error is declared unrecoverable:
 * CPS_ECC_RETRIES when set to an unsigned integer (0 disables
 * refetching entirely), otherwise 2. Read afresh per call.
 */
unsigned defaultEccRetries();

/**
 * Background flip rate in flips per million verified fetches:
 * CPS_FLIP_RATE when set (an unsigned integer), otherwise 0. Read
 * afresh per call.
 */
unsigned defaultFlipRatePpm();

class SoftErrorDomain
{
  public:
    struct Stats
    {
        u64 blockChecks = 0;   ///< block verifications actually run
        u64 indexChecks = 0;   ///< index-entry verifications run
        u64 corrected = 0;     ///< single-bit errors repaired in place
        u64 correctedBits = 0; ///< total bits repaired
        u64 detected = 0;      ///< uncorrectable detections (pre-refetch)
        u64 refetches = 0;     ///< re-reads from the backing image
        u64 unrecoverable = 0; ///< detections that exhausted the budget
        u64 flipsInjected = 0; ///< background self-injected flips
    };

    /**
     * @param mem the working image faults mutate; must be protected
     *        (protectImage) for verification to detect anything, and
     *        must outlive the domain. A pristine backing copy of the
     *        stream and index table is taken here.
     */
    explicit SoftErrorDomain(CompressedImage &mem,
                             u64 seed = 0x50f7e220ull,
                             unsigned flip_rate_ppm = defaultFlipRatePpm(),
                             unsigned max_retries = defaultEccRetries());

    /** The working image (injectors flip bits here). */
    CompressedImage &memory() { return mem_; }

    /**
     * Verifies everything block @p flat is decoded from — its group's
     * index entry, then its stream bytes — repairing or refetching in
     * place. Returns the worst verdict encountered; after
     * Unrecoverable, lastError() holds the structured diagnosis.
     */
    FetchCheck verifyBlock(u32 flat);

    /** Diagnosis of the most recent Unrecoverable verdict. */
    const DecodeError &lastError() const { return lastError_; }

    /**
     * An external injector mutated the working image: every memoized
     * verification is stale. Starts a new corruption epoch.
     */
    void noteCorruption() { ++epoch_; }

    /**
     * Test hook: flips @p bit_in_block of block @p flat in the BACKING
     * copy, making a detected error in that block unrecoverable (the
     * refetch source itself is damaged).
     */
    void corruptBacking(u32 flat, u32 bit_in_block);

    ProtectKind kind() const { return mem_.protectKind; }
    unsigned maxRetries() const { return maxRetries_; }
    const Stats &stats() const { return stats_; }

  private:
    FetchCheck verifyIndexEntry(u32 group);
    FetchCheck verifyBlockBytes(u32 flat);
    void maybeSelfInject(u32 flat);

    CompressedImage &mem_;
    std::vector<u8> backingBytes_;      ///< pristine stream copy
    std::vector<u32> backingIndex_;     ///< pristine index-table copy
    Stats stats_;
    Rng rng_;
    unsigned flipRatePpm_;
    unsigned maxRetries_;
    u64 epoch_ = 1;
    std::vector<u64> verifiedEpoch_;    ///< per flat block; 0 = never
    DecodeError lastError_;
};

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_RESILIENCE_HH
