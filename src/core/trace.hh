/**
 * @file
 * Trace-once / replay-many execution.
 *
 * Every timed run of the same benchmark retires the same architected
 * instruction stream — the machine configuration changes only *when*
 * instructions move, never *which* instructions move. A full experiment
 * matrix (Table 5 runs each benchmark under 9+ configurations) therefore
 * re-executes the functional core N times for identical answers.
 *
 * This component batches that work: one functional pass records each
 * retired instruction as a compact 16-byte TraceEntry, and any number of
 * timing runs replay the immutable buffer instead of driving the
 * Executor. Both pipelines consume the stream through the TraceSource
 * interface, so live and replayed runs are cycle-for-cycle identical by
 * construction (test_trace_replay asserts it stat-for-stat).
 *
 * Thread safety: a TraceBuffer is immutable after recording; publishing
 * it under a lock (harness::Suite does) makes concurrent replays safe.
 */

#ifndef CPS_CORE_TRACE_HH
#define CPS_CORE_TRACE_HH

#include <vector>

#include "common/result.hh"
#include "executor.hh"

namespace cps
{

/**
 * One retired instruction, 16 bytes. The decoded Inst/InstInfo are not
 * stored: the word index recovers both from the (shared, read-only)
 * DecodedText at replay time.
 */
struct TraceEntry
{
    Addr pc = 0;
    Addr nextPc = 0;
    Addr memAddr = 0; ///< effective address when the op is a memory op
    /** Text word index << 2 | halted << 1 | taken. */
    u32 meta = 0;

    static constexpr u32 kTakenBit = 1u;
    static constexpr u32 kHaltedBit = 2u;

    u32 wordIndex() const { return meta >> 2; }
    bool taken() const { return (meta & kTakenBit) != 0; }
    bool halted() const { return (meta & kHaltedBit) != 0; }
};

static_assert(sizeof(TraceEntry) == 16, "TraceEntry must stay compact");
static_assert(std::is_trivially_copyable_v<TraceEntry>,
              "TraceEntry must be POD");

/** An immutable (after recording) sequence of retired instructions. */
class TraceBuffer
{
  public:
    /** Appends the record of one executed instruction. */
    void
    append(const StepRecord &rec, Addr text_base)
    {
        u32 idx = (rec.pc - text_base) >> 2;
        cps_assert(idx < (1u << 30), "text too large for TraceEntry meta");
        TraceEntry e;
        e.pc = rec.pc;
        e.nextPc = rec.nextPc;
        e.memAddr = rec.memAddr;
        e.meta = (idx << 2) | (rec.taken ? TraceEntry::kTakenBit : 0) |
                 (rec.halted ? TraceEntry::kHaltedBit : 0);
        entries_.push_back(e);
    }

    /** Appends an already-packed entry (trace deserialization). */
    void appendEntry(const TraceEntry &e) { entries_.push_back(e); }

    /** Marks that the trace ends because the program exited. */
    void markComplete() { complete_ = true; }

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    const TraceEntry &entry(size_t i) const { return entries_[i]; }

    /** True when the recorded program halted within the recording cap. */
    bool complete() const { return complete_; }

    /**
     * True when a replayed run that retires up to @p max_insns
     * instructions can never read past the end of the buffer.
     * @param lookahead functional steps a pipeline may consume beyond
     *        the retired count (OoO fetch-ahead: RUU depth + 1)
     */
    bool
    covers(u64 max_insns, u64 lookahead) const
    {
        return complete_ || entries_.size() >= max_insns + lookahead;
    }

    /** Heap bytes held by the entry storage (memory-cap accounting). */
    size_t byteSize() const { return entries_.capacity() * sizeof(TraceEntry); }

    void reserve(size_t n) { entries_.reserve(n); }

  private:
    std::vector<TraceEntry> entries_;
    bool complete_ = false;
};

/**
 * The instruction stream a timing pipeline consumes: either a live
 * Executor or a pre-recorded trace. Mirrors the three Executor calls the
 * pipelines make, no more.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** True once the program has exited. */
    virtual bool halted() const = 0;

    /** Produces the next retired instruction. */
    virtual StepRecord step() = 0;

    /** The decoded text the stream runs over (wrong-path bounds). */
    virtual const DecodedText &text() const = 0;
};

/** Live source: each step() functionally executes one instruction. */
class LiveTraceSource final : public TraceSource
{
  public:
    explicit LiveTraceSource(Executor &exec) : exec_(exec) {}

    bool halted() const override { return exec_.halted(); }
    StepRecord step() override { return exec_.step(); }
    const DecodedText &text() const override { return exec_.text(); }

  private:
    Executor &exec_;
};

/**
 * Replay source: step() streams pre-recorded entries, rebuilding each
 * StepRecord from the trace and the decoded text. The caller must have
 * checked TraceBuffer::covers() for its run length; stepping past the
 * end of a truncated trace is a harness bug and panics.
 */
class TraceReplaySource final : public TraceSource
{
  public:
    /**
     * @param trace recorded stream (must outlive the source)
     * @param text decoded text of the same program the trace was
     *        recorded from (indices must agree)
     */
    TraceReplaySource(const TraceBuffer &trace, const DecodedText &text)
        : trace_(trace), text_(text)
    {}

    bool halted() const override { return halted_; }

    StepRecord
    step() override
    {
        cps_assert(cursor_ < trace_.size(),
                   "replay ran past the end of a truncated trace "
                   "(%zu entries)", trace_.size());
        const TraceEntry &e = trace_.entry(cursor_++);
        size_t idx = e.wordIndex();
        StepRecord rec;
        rec.pc = e.pc;
        rec.inst = &text_.instAt(idx);
        rec.info = &text_.infoAt(idx);
        rec.nextPc = e.nextPc;
        rec.taken = e.taken();
        rec.memAddr = e.memAddr;
        rec.halted = e.halted();
        halted_ = rec.halted;
        return rec;
    }

    const DecodedText &text() const override { return text_; }

    /** Restarts the stream from the first entry. */
    void
    rewind()
    {
        cursor_ = 0;
        halted_ = false;
    }

    /**
     * Positions the stream so the next step() yields entry @p entry.
     * The chunk-parallel engine uses this to start a worker's replay at
     * its warm-up prefix instead of the beginning of the trace.
     */
    void
    seek(size_t entry)
    {
        cps_assert(entry <= trace_.size(),
                   "seek past the end of a %zu-entry trace", trace_.size());
        cursor_ = entry;
        halted_ = false;
    }

    /** Index of the entry the next step() will yield. */
    size_t cursor() const { return cursor_; }

  private:
    const TraceBuffer &trace_;
    const DecodedText &text_;
    size_t cursor_ = 0;
    bool halted_ = false;
};

/**
 * Runs @p prog functionally (a fresh Executor over a fresh memory, the
 * same initial state every Machine builds) and records up to
 * @p max_entries retired instructions. The result is complete() when the
 * program exited within the cap; otherwise it is truncated and only
 * covers() shorter timed runs.
 */
TraceBuffer recordTrace(const Program &prog, u64 max_entries);

/**
 * Serializes @p trace for the on-disk artifact cache (little-endian:
 * magic "CPSTRC1", entry count, completeness flag, packed entries, then
 * a CRC-32 over everything before it).
 */
std::vector<u8> encodeTrace(const TraceBuffer &trace);

/**
 * Checked inverse of encodeTrace. Cached traces are untrusted input
 * (another process wrote them; the disk may have corrupted them), so
 * rejection is a structured DecodeError and the declared entry count is
 * validated against the bytes present before anything is allocated.
 */
Result<TraceBuffer> decodeTraceChecked(const std::vector<u8> &bytes);

} // namespace cps

#endif // CPS_CORE_TRACE_HH
