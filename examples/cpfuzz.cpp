/**
 * @file
 * cpfuzz — fault-injection fuzzer for the compressed-image decode path.
 *
 * Compresses a program (built-in benchmark, assembly source, or saved
 * object), then corrupts the encoded image with seeded faults and
 * checks that every corruption is either detected at load (CRC/bounds)
 * or rejected during decode with a structured error — never a crash.
 *
 *   cpfuzz [@bench|input.s|input.cpo] [options]
 *     --trials N      corruptions per fault kind   (default 200)
 *     --seed S        base seed                    (default 0x600d5eed)
 *     --no-crc        skip CRC verification at load (stress the decode
 *                     path's own structural defences)
 *     --runtime-flips fuzz the *fetch* path instead of the loader:
 *                     seeded in-memory upsets (stream / index / burst)
 *                     against a running image, routed through the
 *                     per-block protection and detect-and-refetch
 *                     recovery of SoftErrorDomain
 *     --ecc KIND      protection for --runtime-flips: off, crc8,
 *                     crc16, secded               (default secded)
 *     --self-test-crash  crash deliberately (SIGSEGV) before fuzzing;
 *                     lets process-level fault campaigns verify that a
 *                     crashing fuzzer is reported as a crash
 *
 * Exit status (distinct codes so process-level campaigns can assert on
 * the ways a fuzz run ends):
 *   0  clean — every corruption was detected, rejected, corrected,
 *      recovered, or benign
 *   1  fatal — bad usage or unloadable input (cps_fatal)
 *   2  corruption escaped — at least one silently-wrong decode while
 *      the relevant defence (load CRC, or runtime protection) was on;
 *      the defect this fuzzer exists to surface
 *   3  detected-unrecoverable — --runtime-flips only: no silent
 *      escapes, but some upsets exhausted the refetch budget and were
 *      refused loudly (memory and backing store both corrupted)
 *   death by signal — the decode path itself crashed (or
 *      --self-test-crash); the wait status carries the signal
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "asmkit/assembler.hh"
#include "asmkit/objfile.hh"
#include "codepack/compressor.hh"
#include "common/byteio.hh"
#include "common/table.hh"
#include "fault/campaign.hh"
#include "fault/soft_campaign.hh"
#include "progen/progen.hh"

using namespace cps;

namespace
{

/** Exit codes, kept distinct so wait-status assertions are unambiguous
 *  (1 is cps_fatal's code; signal deaths have no exit code at all). */
constexpr int kExitClean = 0;
constexpr int kExitCorruptionEscaped = 2;
constexpr int kExitDetectedUnrecoverable = 3;

/** Seeded runtime-upset campaign against the fetch path. */
int
runRuntimeFlips(const codepack::CompressedImage &img, ProtectKind protect,
                unsigned trials, u64 seed)
{
    fault::SoftCampaignConfig cfg;
    cfg.protect = protect;
    cfg.trials = trials;
    cfg.seed = seed;
    std::printf("cpfuzz: runtime flips, protection %s, %u trials x %u "
                "upset kinds\n",
                protectKindName(protect), cfg.trials,
                fault::kNumMemFaultKinds);
    fault::SoftCampaignResult res = fault::runSoftCampaign(img, cfg);

    TextTable t;
    t.setTitle(strfmt("Runtime-upset coverage (%u upsets)", res.trials));
    t.addHeader({"Upset kind", "clean", "corrected", "refetched",
                 "detected", "silently-wrong"});
    for (unsigned k = 0; k < fault::kNumMemFaultKinds; ++k) {
        fault::MemFaultKind kind = fault::kAllMemFaultKinds[k];
        auto cell = [&](fault::SoftOutcome o) {
            return std::to_string(
                res.byKindOutcome[k][static_cast<unsigned>(o)]);
        };
        t.addRow({memFaultKindName(kind),
                  cell(fault::SoftOutcome::Clean),
                  cell(fault::SoftOutcome::Corrected),
                  cell(fault::SoftOutcome::Refetched),
                  cell(fault::SoftOutcome::DetectedUnrecoverable),
                  cell(fault::SoftOutcome::SilentWrong)});
    }
    t.addRule();
    t.addRow({"total", std::to_string(res.count(fault::SoftOutcome::Clean)),
              std::to_string(res.count(fault::SoftOutcome::Corrected)),
              std::to_string(res.count(fault::SoftOutcome::Refetched)),
              std::to_string(
                  res.count(fault::SoftOutcome::DetectedUnrecoverable)),
              std::to_string(res.silentWrong())});
    t.print();

    if (res.silentWrong() > 0) {
        std::printf("\nfirst silently-wrong upset: %s\n",
                    res.firstSilentWrong.describe().c_str());
        if (protect != ProtectKind::None)
            return kExitCorruptionEscaped;
        std::printf("(protection was off; silent corruption of "
                    "unprotected memory is expected there)\n");
    }
    if (protect != ProtectKind::None &&
        res.count(fault::SoftOutcome::DetectedUnrecoverable) > 0)
        return kExitDetectedUnrecoverable;
    return kExitClean;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input = "@go";
    fault::CampaignConfig cfg;
    bool runtime_flips = false;
    ProtectKind protect = ProtectKind::SecDed;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                cps_fatal("option '%s' needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--trials") {
            cfg.trials = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--no-crc") {
            cfg.verifyCrc = false;
        } else if (arg == "--runtime-flips") {
            runtime_flips = true;
        } else if (arg == "--ecc") {
            std::string kind = next();
            if (!parseProtectKind(kind.c_str(), protect))
                cps_fatal("unknown protection kind '%s' (off, crc8, "
                          "crc16, secded)",
                          kind.c_str());
        } else if (arg == "--self-test-crash") {
            std::fprintf(stderr, "cpfuzz: --self-test-crash: raising "
                                 "SIGSEGV\n");
            ::raise(SIGSEGV);
            return 1; // not reached (unless the signal is blocked)
        } else if (!arg.empty() && arg[0] == '-') {
            cps_fatal("unknown option '%s'", arg.c_str());
        } else {
            input = arg;
        }
    }

    Program prog;
    if (!input.empty() && input[0] == '@') {
        prog = generateProgram(findProfile(input.substr(1)));
    } else if (input.size() > 4 &&
               input.compare(input.size() - 4, 4, ".cpo") == 0) {
        auto loaded = loadProgram(input);
        if (!loaded)
            cps_fatal("cannot load program '%s'", input.c_str());
        prog = std::move(*loaded);
    } else {
        auto bytes = readFileBytes(input);
        if (!bytes)
            cps_fatal("cannot read '%s'", input.c_str());
        prog = assembleOrDie(std::string(bytes->begin(), bytes->end()));
    }

    codepack::CompressedImage img = codepack::compress(prog);
    if (runtime_flips)
        return runRuntimeFlips(img, protect, cfg.trials, cfg.seed);
    std::printf("cpfuzz: %s, %u bytes compressed, %u trials x %u fault "
                "kinds, CRC %s\n",
                input.c_str(), static_cast<unsigned>(img.bytes.size()),
                cfg.trials, fault::kNumFaultKinds,
                cfg.verifyCrc ? "on" : "off");

    fault::CampaignResult res = fault::runCampaign(img, cfg);

    TextTable t;
    t.setTitle(strfmt("Fault coverage (%u corruptions)", res.trials));
    t.addHeader({"Fault kind", "detected@load", "rejected", "benign",
                 "silently-wrong"});
    for (unsigned k = 0; k < fault::kNumFaultKinds; ++k) {
        fault::FaultKind kind = fault::kAllFaultKinds[k];
        t.addRow({faultKindName(kind),
                  std::to_string(
                      res.count(kind, fault::Outcome::DetectedAtLoad)),
                  std::to_string(
                      res.count(kind, fault::Outcome::RejectedInDecode)),
                  std::to_string(
                      res.count(kind, fault::Outcome::SilentlyCorrect)),
                  std::to_string(
                      res.count(kind, fault::Outcome::SilentlyWrong))});
    }
    t.addRule();
    t.addRow({"total",
              std::to_string(res.count(fault::Outcome::DetectedAtLoad)),
              std::to_string(
                  res.count(fault::Outcome::RejectedInDecode)),
              std::to_string(res.count(fault::Outcome::SilentlyCorrect)),
              std::to_string(res.silentlyWrong())});
    t.print();

    if (res.silentlyWrong() > 0) {
        std::printf("\nfirst silently-wrong fault: %s\n",
                    res.firstSilentWrong.describe().c_str());
        if (cfg.verifyCrc) {
            // CRCs on: silent acceptance is a real failure, and its
            // exit code must stay distinct from cps_fatal's 1.
            return kExitCorruptionEscaped;
        }
        std::printf("(CRC verification was off; silent corruption of "
                    "the stream is expected there)\n");
    }
    return kExitClean;
}
