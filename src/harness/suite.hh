/**
 * @file
 * Experiment harness shared by every benchmark binary: generates and
 * compresses each synthetic benchmark once per process, runs machines,
 * and computes the speedup numbers the paper's tables report.
 */

#ifndef CPS_HARNESS_SUITE_HH
#define CPS_HARNESS_SUITE_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace cps
{

/** A generated benchmark with its compressed image. */
struct BenchProgram
{
    const BenchmarkProfile *profile = nullptr;
    Program program;
    codepack::CompressedImage image;
};

/**
 * Process-wide cache of generated benchmarks. Thread-safe: get() and
 * pregenerate() may be called from any thread (the cache is
 * mutex-guarded and entries have stable addresses once published).
 */
class Suite
{
  public:
    static Suite &instance();

    /** The six paper benchmarks, in Table 1 order. */
    const std::vector<std::string> &names() const { return names_; }

    /** Generates (once) and returns a benchmark by name. */
    const BenchProgram &get(const std::string &name);

    /**
     * Generates and compresses every standard benchmark that is not in
     * the cache yet, fanning the independent generations out across the
     * thread pool (each profile has its own RNG seed, so the result is
     * identical to serial generation). Table binaries that touch the
     * whole suite call this once up front.
     * @param threads worker count; 0 means defaultThreadCount()
     */
    void pregenerate(unsigned threads = 0);

    /**
     * Dynamic instructions per timing run. Defaults to 1,000,000;
     * override with the CPS_INSNS environment variable, which is read
     * once (the first call caches the value). (The paper ran >1e9
     * instructions; our synthetic workloads reach steady state within
     * well under 1e6 — see DESIGN.md "Substitutions".)
     */
    static u64 runInsns();

  private:
    Suite();

    /** Builds (without publishing) the benchmark for @p name. */
    static std::unique_ptr<BenchProgram> build(const std::string &name);

    std::vector<std::string> names_;
    std::mutex mutex_; // guards cache_
    std::map<std::string, std::unique_ptr<BenchProgram>> cache_;
};

/** Everything a table needs from one timed run. */
struct RunOutcome
{
    RunResult result;
    double icacheMissRate = 0.0;
    double indexCacheMissRate = 0.0;
    u64 icacheMisses = 0;
    u64 bufferHits = 0;
    u64 missLatencyTotal = 0; ///< sum of critical-word miss latencies
};

/** Builds a machine for @p bench under @p cfg and runs it. */
RunOutcome runMachine(const BenchProgram &bench, const MachineConfig &cfg,
                      u64 max_insns);

/** Convenience: cycles(native) / cycles(model) on identical inputs. */
inline double
speedup(const RunOutcome &native, const RunOutcome &other)
{
    if (other.result.cycles == 0)
        return 0.0;
    return static_cast<double>(native.result.cycles) /
           static_cast<double>(other.result.cycles);
}

} // namespace cps

#endif // CPS_HARNESS_SUITE_HH
