#include "ccrp.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa/isa.hh"

namespace cps
{
namespace compress
{

CcrpImage
CcrpImage::compress(const std::vector<u32> &words, Addr text_base)
{
    CcrpImage img;
    img.textBase_ = text_base;
    img.origTextBytes_ = static_cast<u32>(words.size() * 4);

    // Pad to a whole cache line of 8 instructions.
    std::vector<u32> padded = words;
    while (padded.size() % 8 != 0)
        padded.push_back(kNopWord);

    // Pass 1: byte frequencies over the padded text.
    std::array<u64, 256> counts{};
    for (u32 w : padded) {
        ++counts[w & 0xff];
        ++counts[(w >> 8) & 0xff];
        ++counts[(w >> 16) & 0xff];
        ++counts[(w >> 24) & 0xff];
    }
    img.code_ = HuffmanCode::build(counts);

    // Pass 2: encode line by line; lines are byte aligned so that the
    // LAT can address them.
    u32 num_lines = static_cast<u32>(padded.size() / 8);
    img.lineOffsets_.reserve(num_lines);
    img.insnEnds_.reserve(num_lines);
    BitWriter bw;
    for (u32 line = 0; line < num_lines; ++line) {
        img.lineOffsets_.push_back(static_cast<u32>(bw.byteSize()));
        std::array<u32, 8> ends{};
        for (unsigned i = 0; i < 8; ++i) {
            u32 w = padded[line * 8 + i];
            img.code_.encode(bw, static_cast<u8>(w));
            img.code_.encode(bw, static_cast<u8>(w >> 8));
            img.code_.encode(bw, static_cast<u8>(w >> 16));
            img.code_.encode(bw, static_cast<u8>(w >> 24));
            ends[i] = static_cast<u32>((bw.bitSize() + 7) / 8);
        }
        bw.alignByte();
        img.insnEnds_.push_back(ends);
    }
    img.bytes_ = bw.take();
    return img;
}

LineExtent
CcrpImage::extent(u32 line) const
{
    cps_assert(line < numLines(), "CCRP line %u out of range", line);
    LineExtent ext;
    ext.byteOffset = lineOffsets_[line];
    u32 end = line + 1 < numLines() ? lineOffsets_[line + 1]
                                    : static_cast<u32>(bytes_.size());
    ext.byteLen = end - ext.byteOffset;
    return ext;
}

std::array<u32, 8>
CcrpImage::insnEndBytes(u32 line) const
{
    cps_assert(line < numLines(), "CCRP line %u out of range", line);
    return insnEnds_[line];
}

std::vector<u32>
CcrpImage::decompressAll() const
{
    std::vector<u32> out;
    out.reserve(static_cast<size_t>(numLines()) * 8);
    for (u32 line = 0; line < numLines(); ++line) {
        LineExtent ext = extent(line);
        BitReader br(bytes_.data() + ext.byteOffset,
                     bytes_.size() - ext.byteOffset);
        for (unsigned i = 0; i < 8; ++i) {
            u32 w = code_.decode(br);
            w |= static_cast<u32>(code_.decode(br)) << 8;
            w |= static_cast<u32>(code_.decode(br)) << 16;
            w |= static_cast<u32>(code_.decode(br)) << 24;
            out.push_back(w);
        }
    }
    out.resize(origTextBytes_ / 4);
    return out;
}

double
CcrpImage::compressionRatio() const
{
    u64 total_bits = streamBits() + latBits() + tableBits();
    return static_cast<double>(total_bits / 8) /
           static_cast<double>(origTextBytes_);
}

} // namespace compress
} // namespace cps
