/**
 * @file
 * Parallel, crash-isolated, resumable experiment engine: fans a matrix
 * of independent, deterministic (benchmark x machine-config) timed runs
 * out across a thread pool and returns the outcomes in submission
 * order.
 *
 * Determinism contract: every Machine is self-contained (its own stats,
 * memory, caches and decompressor state), each run writes only its own
 * pre-allocated outcome slot, and the caller does all printing after
 * collection — so a table binary's stdout is byte-identical at any
 * CPS_THREADS value, including 1 (which runs inline with no pool), with
 * or without worker isolation, and whether cells were executed or
 * replayed from a resume journal.
 *
 * Resilience layer (see cell_runner.hh / journal.hh):
 *   CPS_ISOLATE=1  runs each cell in a forked worker; a crash, hang or
 *                  garbled result becomes a structured CellStatus
 *                  instead of killing the whole table run
 *   CPS_RESUME=1   journals each completed cell; a killed binary rerun
 *                  with the same matrix replays completed cells and
 *                  executes only the missing ones
 * Cells that exhaust their retries surface as FAILED(reason)
 * placeholders in the table (Matrix::fmtNext) and a nonzero exit
 * summary (Matrix::exitSummary) instead of aborting the binary.
 */

#ifndef CPS_HARNESS_ENGINE_HH
#define CPS_HARNESS_ENGINE_HH

#include <functional>
#include <vector>

#include "cell_runner.hh"

namespace cps
{
namespace harness
{

/**
 * Runs every request under the process-wide resilience policy
 * (CellRunnerConfig::fromEnv + CPS_RESUME journaling) and returns
 * result + status per cell, in submission order.
 * @param requests the matrix cells; each bench pointer must be valid
 * @param threads worker count; 0 means defaultThreadCount()
 */
std::vector<CellOutcome>
runMatrixCells(const std::vector<RunRequest> &requests,
               unsigned threads = 0);

/**
 * Compatibility shape of runMatrixCells: outcomes only. A failed
 * cell's outcome is zero-valued — callers that need to distinguish use
 * runMatrixCells (or Matrix).
 */
std::vector<RunOutcome> runMatrix(const std::vector<RunRequest> &requests,
                                  unsigned threads = 0);

/**
 * Formats a metric derived from two cells (a speedup numerator and
 * denominator, say), degrading to the first failed cell's
 * FAILED(reason) placeholder when either produced no result.
 */
/**
 * Formats a metric of one already-fetched cell, degrading to its
 * FAILED(reason) placeholder when the cell produced no result.
 */
inline std::string
fmtCell(const CellOutcome &c,
        const std::function<std::string(const RunOutcome &)> &fmt)
{
    return c.status.ok() ? fmt(c.outcome) : failLabel(c.status);
}

inline std::string
fmtCells(const CellOutcome &a, const CellOutcome &b,
         const std::function<std::string(const RunOutcome &,
                                         const RunOutcome &)> &fmt)
{
    if (!a.status.ok())
        return failLabel(a.status);
    if (!b.status.ok())
        return failLabel(b.status);
    return fmt(a.outcome, b.outcome);
}

/**
 * A request batch that keeps the submit-then-consume shape of the table
 * binaries readable: add() cells inside the same nested loops that will
 * later format the rows, run() once, then take() the outcomes in the
 * same order. fmtNext() renders a FAILED(reason) placeholder for cells
 * that exhausted their retries; exitSummary() turns any failures into
 * a diagnosable nonzero exit.
 */
class Matrix
{
  public:
    /** Queues one run; returns its slot index. */
    size_t
    add(const BenchProgram &bench, const MachineConfig &cfg, u64 max_insns)
    {
        requests_.push_back(RunRequest{&bench, cfg, max_insns});
        return requests_.size() - 1;
    }

    /** Queues one fully specified request; returns its slot index. */
    size_t
    add(const RunRequest &req)
    {
        requests_.push_back(req);
        return requests_.size() - 1;
    }

    /** Executes all queued runs (parallel; see runMatrixCells). */
    void
    run(unsigned threads = 0)
    {
        cells_ = runMatrixCells(requests_, threads);
        cursor_ = 0;
    }

    /** Number of queued requests. */
    size_t size() const { return requests_.size(); }

    /** The outcome of slot @p i (valid after run()). */
    const RunOutcome &outcome(size_t i) const
    {
        return cells_.at(i).outcome;
    }

    /** Result + status of slot @p i (valid after run()). */
    const CellOutcome &cell(size_t i) const { return cells_.at(i); }

    /** The next outcome in submission order (valid after run()). */
    const RunOutcome &
    next()
    {
        return cells_.at(cursor_++).outcome;
    }

    /** The next result + status in submission order. */
    const CellOutcome &
    nextCell()
    {
        return cells_.at(cursor_++);
    }

    /**
     * Formats the next cell for a table: @p fmt on a successful
     * outcome, the FAILED(reason) placeholder otherwise.
     */
    std::string
    fmtNext(const std::function<std::string(const RunOutcome &)> &fmt)
    {
        return fmtCell(nextCell(), fmt);
    }

    /** Cells whose final attempt failed (valid after run()). */
    unsigned
    failedCount() const
    {
        unsigned n = 0;
        for (const CellOutcome &c : cells_)
            if (!c.status.ok())
                ++n;
        return n;
    }

    /**
     * Exit code for a table binary: 0 when every cell succeeded,
     * otherwise 1 after printing one stderr line per failed cell.
     */
    int exitSummary() const;

  private:
    std::vector<RunRequest> requests_;
    std::vector<CellOutcome> cells_;
    size_t cursor_ = 0;
};

} // namespace harness
} // namespace cps

#endif // CPS_HARNESS_ENGINE_HH
