#include "service_campaign.hh"

#include <csignal>
#include <cstring>
#include <fstream>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/socket.hh"
#include "harness/suite.hh"
#include "service/client.hh"
#include "service/daemon_harness.hh"

namespace cps
{
namespace fault
{

namespace
{

using service::CellResultMsg;
using service::CellSpec;
using service::DaemonProcess;
using service::MatrixReply;
using service::MatrixRequestMsg;
using service::ResultSource;
using service::ServiceClient;
using service::ServiceConfig;

/** Baseline daemon policy for a scenario; tweak per scenario. */
ServiceConfig
baseDaemon(const ServiceChaosConfig &cfg, const std::string &name)
{
    ServiceConfig c;
    c.socketPath = cfg.scratchDir + "/" + name + ".sock";
    c.workers = 2;
    c.queueMax = 64;
    c.deadlineMs = 60000;
    c.stallMs = 30000;
    c.allowFaultInjection = true;
    c.runner.isolate = true;
    c.runner.timeoutMs = 5000;
    c.runner.retries = 0;
    c.runner.backoffMs = 10;
    c.resume = false;
    return c;
}

CellSpec
makeSpec(u64 insns, harness::CellFault fault = harness::CellFault::None)
{
    CellSpec spec;
    spec.bench = "go";
    spec.base = service::BaseMachine::Issue4;
    spec.codeModel = static_cast<u8>(CodeModel::CodePack);
    spec.maxInsns = insns;
    spec.injectFault = static_cast<u8>(fault);
    return spec;
}

/** Health probe on a fresh connection. */
bool
daemonAlive(const std::string &socket_path)
{
    ServiceClient probe;
    return probe.connect(socket_path, 2000) && probe.ping(5000);
}

/** Extracts one "key=value" integer from the daemon's stats text. */
long
statValue(const std::string &stats, const std::string &key)
{
    size_t pos = stats.find(key + "=");
    if (pos == std::string::npos)
        return -1;
    return std::atol(stats.c_str() + pos + key.size() + 1);
}

ServiceChaosRecord
record(const std::string &name, bool pass, std::string detail)
{
    ServiceChaosRecord r;
    r.name = name;
    r.pass = pass;
    r.detail = std::move(detail);
    return r;
}

// ---------------------------------------------------------------
// Scenario: a worker misbehaves mid-cell; the daemon contains it.
// ---------------------------------------------------------------
ServiceChaosRecord
workerFaultScenario(const ServiceChaosConfig &cfg, const std::string &name,
                    harness::CellFault fault,
                    harness::CellState expected, long cell_timeout_ms)
{
    ServiceConfig dc = baseDaemon(cfg, name);
    dc.runner.timeoutMs = cell_timeout_ms;
    DaemonProcess daemon = service::spawnDaemon(dc);
    if (!daemon.running())
        return record(name, false, "daemon failed to spawn");

    MatrixRequestMsg msg;
    msg.requestId = 1;
    msg.cells = {makeSpec(cfg.insns + 1), makeSpec(cfg.insns + 2, fault),
                 makeSpec(cfg.insns + 3)};

    ServiceClient client;
    if (!client.connect(dc.socketPath, 2000))
        return record(name, false, "connect failed");
    MatrixReply reply = client.runMatrix(msg, 30000);

    std::string detail;
    bool pass = true;
    if (!reply.ended) {
        pass = false;
        detail = "stream did not end: " + reply.error;
    } else if (reply.end.okCells != 2 || reply.end.failedCells != 1) {
        pass = false;
        detail = strfmt("ok=%u failed=%u (want 2/1)", reply.end.okCells,
                        reply.end.failedCells);
    } else {
        for (const CellResultMsg &cell : reply.cells)
            if (cell.cellIndex == 1 && cell.status.state != expected) {
                pass = false;
                detail = strfmt(
                    "faulted cell classified %s (want %s)",
                    harness::cellStateName(cell.status.state),
                    harness::cellStateName(expected));
            }
    }
    if (pass && !daemonAlive(dc.socketPath)) {
        pass = false;
        detail = "daemon unresponsive after fault";
    }
    if (pass)
        detail = strfmt("contained as %s; daemon alive",
                        harness::cellStateName(expected));
    return record(name, pass, detail);
}

// ---------------------------------------------------------------
// Scenario: client tears a frame / sends garbage; daemon shrugs.
// ---------------------------------------------------------------
ServiceChaosRecord
brokenClientScenario(const ServiceChaosConfig &cfg,
                     const std::string &name, bool garbage)
{
    ServiceConfig dc = baseDaemon(cfg, name);
    DaemonProcess daemon = service::spawnDaemon(dc);
    if (!daemon.running())
        return record(name, false, "daemon failed to spawn");

    int fd = connectUnix(dc.socketPath, 2000);
    if (fd < 0)
        return record(name, false, "connect failed");
    if (garbage) {
        u8 junk[64];
        std::memset(junk, 0xA5, sizeof(junk));
        (void)!::write(fd, junk, sizeof(junk));
    } else {
        MatrixRequestMsg msg;
        msg.requestId = 7;
        msg.cells = {makeSpec(cfg.insns)};
        std::vector<u8> bytes = encodeFrame(
            service::kMsgMatrixRequest, encodeMatrixRequest(msg));
        (void)!::write(fd, bytes.data(), bytes.size() / 2); // torn
    }
    ::close(fd);
    ::usleep(100 * 1000); // let the daemon reap the wreck

    if (!daemonAlive(dc.socketPath))
        return record(name, false, "daemon unresponsive");
    return record(name, true, "client dropped; daemon alive");
}

// ---------------------------------------------------------------
// Scenario: slow-loris client trickling a frame one byte at a time.
// ---------------------------------------------------------------
ServiceChaosRecord
slowLorisScenario(const ServiceChaosConfig &cfg)
{
    const std::string name = "slow-loris client";
    ServiceConfig dc = baseDaemon(cfg, "loris");
    dc.stallMs = 150; // tight: the whole point is a fast cutoff
    DaemonProcess daemon = service::spawnDaemon(dc);
    if (!daemon.running())
        return record(name, false, "daemon failed to spawn");

    int fd = connectUnix(dc.socketPath, 2000);
    if (fd < 0)
        return record(name, false, "connect failed");
    MatrixRequestMsg msg;
    msg.requestId = 9;
    msg.cells = {makeSpec(cfg.insns)};
    std::vector<u8> bytes =
        encodeFrame(service::kMsgMatrixRequest, encodeMatrixRequest(msg));

    // One byte every 30 ms: a legitimate frame, hostile pacing. The
    // daemon must cut us off rather than hold a connection slot (and a
    // parse buffer) forever.
    bool disconnected = false;
    for (size_t i = 0; i < bytes.size() && !disconnected; ++i) {
        if (::write(fd, bytes.data() + i, 1) < 0) {
            disconnected = true;
            break;
        }
        struct pollfd p = {fd, POLLIN, 0};
        if (::poll(&p, 1, 30) > 0) {
            u8 buf[16];
            if (::recv(fd, buf, sizeof(buf), 0) == 0)
                disconnected = true;
        }
    }
    if (!disconnected) {
        // Writes can outlive the drop (socket buffers); the EOF is
        // authoritative.
        struct pollfd p = {fd, POLLIN, 0};
        if (::poll(&p, 1, 2000) > 0) {
            u8 buf[16];
            disconnected = ::recv(fd, buf, sizeof(buf), 0) == 0;
        }
    }
    ::close(fd);

    if (!disconnected)
        return record(name, false, "daemon never dropped the loris");
    if (!daemonAlive(dc.socketPath))
        return record(name, false, "daemon unresponsive");
    return record(name, true, "loris cut off; daemon alive");
}

// ---------------------------------------------------------------
// Scenario: overload past the admission bound -> structured shed.
// ---------------------------------------------------------------
ServiceChaosRecord
overloadScenario(const ServiceChaosConfig &cfg)
{
    const std::string name = "overload (admission control)";
    ServiceConfig dc = baseDaemon(cfg, "overload");
    dc.workers = 1;
    dc.queueMax = 4; // the plug below fills it exactly
    dc.runner.timeoutMs = 800; // hangs convert to timeouts quickly
    DaemonProcess daemon = service::spawnDaemon(dc);
    if (!daemon.running())
        return record(name, false, "daemon failed to spawn");

    // Fill the queue with hanging cells...
    MatrixRequestMsg plug;
    plug.requestId = 11;
    for (u64 k = 0; k < 4; ++k)
        plug.cells.push_back(
            makeSpec(cfg.insns + 10 + k, harness::CellFault::Hang));
    ServiceClient filler;
    if (!filler.connect(dc.socketPath, 2000) ||
        !filler.sendRequest(plug))
        return record(name, false, "filler connect/send failed");
    ::usleep(150 * 1000); // let the daemon admit and enqueue

    // ...then ask for more: must be shed, not queued.
    MatrixRequestMsg extra;
    extra.requestId = 12;
    extra.cells = {makeSpec(cfg.insns + 20)};
    ServiceClient victim;
    if (!victim.connect(dc.socketPath, 2000))
        return record(name, false, "victim connect failed");
    MatrixReply shed = victim.runMatrix(extra, 10000);
    if (!shed.overloaded)
        return record(name, false,
                      "expected OVERLOADED, got " +
                          (shed.error.empty() ? "a result stream"
                                              : shed.error));
    if (shed.overload.queueMax != dc.queueMax ||
        shed.overload.reason.empty())
        return record(name, false, "overload reply not structured");

    // The plugging request must still complete (as timeouts), and the
    // daemon must survive all of it.
    MatrixReply plugged = filler.collect(plug.requestId, 30000);
    if (!plugged.ended || plugged.end.failedCells != 4)
        return record(name, false,
                      strfmt("plug request: ended=%d failed=%u",
                             plugged.ended ? 1 : 0,
                             plugged.ended ? plugged.end.failedCells
                                           : 0));
    if (!daemonAlive(dc.socketPath))
        return record(name, false, "daemon unresponsive");
    return record(name, true,
                  strfmt("shed with reason \"%s\"; plug drained as "
                         "timeouts",
                         shed.overload.reason.c_str()));
}

// ---------------------------------------------------------------
// Scenario: journal directory is unwritable (disk-full stand-in).
// ---------------------------------------------------------------
ServiceChaosRecord
diskFullScenario(const ServiceChaosConfig &cfg)
{
    const std::string name = "unwritable journal dir";
    // A regular file where the cache directory should be: every
    // create_directories/open under it fails, exactly like ENOSPC
    // without needing a full disk.
    std::string blocker = cfg.scratchDir + "/cache-blocker";
    { std::ofstream(blocker) << "not a directory"; }

    ServiceConfig dc = baseDaemon(cfg, "diskfull");
    dc.resume = true;
    dc.cacheDir = blocker;
    DaemonProcess daemon = service::spawnDaemon(dc);
    if (!daemon.running())
        return record(name, false, "daemon failed to spawn");

    MatrixRequestMsg msg;
    msg.requestId = 13;
    msg.cells = {makeSpec(cfg.insns + 30), makeSpec(cfg.insns + 31)};
    ServiceClient client;
    if (!client.connect(dc.socketPath, 2000))
        return record(name, false, "connect failed");
    MatrixReply reply = client.runMatrix(msg, 30000);
    if (!reply.allOk())
        return record(name, false,
                      "request failed under unwritable journal: " +
                          reply.error);
    if (!daemonAlive(dc.socketPath))
        return record(name, false, "daemon unresponsive");
    return record(name, true, "journaling degraded silently; results ok");
}

// ---------------------------------------------------------------
// Scenario: kill -9 mid-matrix, restart, resume from the journal.
// ---------------------------------------------------------------
ServiceChaosRecord
killRestartScenario(const ServiceChaosConfig &cfg)
{
    const std::string name = "kill -9 + journaled restart";
    std::string cache = cfg.scratchDir + "/kr-cache";

    ServiceConfig dc = baseDaemon(cfg, "killrestart");
    dc.workers = 1; // deterministic: exactly N cells journal before death
    dc.resume = true;
    dc.cacheDir = cache;
    dc.exitAfterCells = 2; // the "kill": _exit(42) after 2 completions
    DaemonProcess first = service::spawnDaemon(dc);
    if (!first.running())
        return record(name, false, "daemon failed to spawn");

    MatrixRequestMsg msg;
    msg.requestId = 17;
    for (u64 k = 0; k < 4; ++k)
        msg.cells.push_back(makeSpec(cfg.insns + 40 + k));

    ServiceClient client;
    if (!client.connect(dc.socketPath, 2000))
        return record(name, false, "connect failed");
    MatrixReply cut = client.runMatrix(msg, 30000);
    if (cut.error.empty())
        return record(name, false, "stream survived the kill?");
    int code = first.wait(30000);
    if (code != 42)
        return record(name, false,
                      strfmt("first daemon exited %d (want 42)", code));

    // Restart on the same socket and journal dir; nothing completed
    // may be recomputed.
    dc.exitAfterCells = -1;
    DaemonProcess second = service::spawnDaemon(dc);
    if (!second.running())
        return record(name, false, "restart failed to spawn");
    ServiceClient retry;
    if (!retry.connect(dc.socketPath, 2000))
        return record(name, false, "reconnect failed");
    MatrixReply reply = retry.runMatrix(msg, 60000);
    if (!reply.allOk())
        return record(name, false, "resumed request failed: " +
                                       reply.error);
    unsigned from_journal = 0;
    for (const CellResultMsg &cell : reply.cells)
        if (cell.source == ResultSource::Journal)
            ++from_journal;
    if (from_journal != 2)
        return record(
            name, false,
            strfmt("%u cells from journal (want exactly 2)",
                   from_journal));
    return record(name, true,
                  "2 cells replayed from journal, 2 executed; no "
                  "completed work lost");
}

// ---------------------------------------------------------------
// Scenario: client vanishes with work queued -> orphans cancelled.
// ---------------------------------------------------------------
ServiceChaosRecord
disconnectScenario(const ServiceChaosConfig &cfg)
{
    const std::string name = "client disconnect cancels orphans";
    ServiceConfig dc = baseDaemon(cfg, "disconnect");
    dc.workers = 1;
    dc.runner.timeoutMs = 800;
    DaemonProcess daemon = service::spawnDaemon(dc);
    if (!daemon.running())
        return record(name, false, "daemon failed to spawn");

    {
        ServiceClient deserter;
        if (!deserter.connect(dc.socketPath, 2000))
            return record(name, false, "connect failed");
        MatrixRequestMsg msg;
        msg.requestId = 19;
        for (u64 k = 0; k < 3; ++k)
            msg.cells.push_back(
                makeSpec(cfg.insns + 50 + k, harness::CellFault::Hang));
        if (!deserter.sendRequest(msg))
            return record(name, false, "send failed");
        ::usleep(100 * 1000);
        // Scope exit closes the socket with one cell running and two
        // queued.
    }
    ::usleep(300 * 1000); // daemon notices the EOF, cancels the queue

    ServiceClient observer;
    if (!observer.connect(dc.socketPath, 2000))
        return record(name, false, "reconnect failed");
    std::string stats = observer.stats(5000);
    long cancelled = statValue(stats, "cellsCancelled");
    if (cancelled < 2)
        return record(name, false,
                      strfmt("cellsCancelled=%ld (want >= 2)",
                             cancelled));
    if (!observer.ping(5000))
        return record(name, false, "daemon unresponsive");
    return record(name, true,
                  strfmt("orphans cancelled (%ld); daemon alive",
                         cancelled));
}

// ---------------------------------------------------------------
// Scenario: SIGTERM mid-request -> drain finishes admitted work.
// ---------------------------------------------------------------
ServiceChaosRecord
drainScenario(const ServiceChaosConfig &cfg)
{
    const std::string name = "SIGTERM graceful drain";
    ServiceConfig dc = baseDaemon(cfg, "drain");
    DaemonProcess daemon = service::spawnDaemon(dc);
    if (!daemon.running())
        return record(name, false, "daemon failed to spawn");

    MatrixRequestMsg msg;
    msg.requestId = 23;
    for (u64 k = 0; k < 3; ++k)
        msg.cells.push_back(makeSpec(cfg.insns + 60 + k));
    ServiceClient client;
    if (!client.connect(dc.socketPath, 2000) ||
        !client.sendRequest(msg))
        return record(name, false, "connect/send failed");
    ::usleep(150 * 1000); // admitted, cells executing
    ::kill(daemon.pid(), SIGTERM);

    MatrixReply reply = client.collect(msg.requestId, 30000);
    if (!reply.allOk())
        return record(name, false,
                      "drain truncated admitted work: " + reply.error);
    int code = daemon.wait(30000);
    if (code != 0)
        return record(name, false,
                      strfmt("daemon exited %d (want 0)", code));
    // Post-drain the socket must be gone: refuse-new-work is visible.
    if (connectUnix(dc.socketPath, 200) >= 0)
        return record(name, false, "socket still accepting after drain");
    return record(name, true,
                  "admitted cells finished, clean exit, socket removed");
}

} // namespace

ServiceChaosResult
runServiceCampaign(const ServiceChaosConfig &cfg)
{
    // Warm the benchmark before any fork: every daemon inherits the
    // built program/image/trace instead of regenerating it.
    Suite::instance().get("go");

    ServiceChaosResult result;
    auto add = [&result](ServiceChaosRecord rec) {
        if (!rec.pass)
            ++result.failures;
        result.records.push_back(std::move(rec));
    };

    add(workerFaultScenario(cfg, "worker crash (abort)",
                            harness::CellFault::Crash,
                            harness::CellState::Crashed, 5000));
    add(workerFaultScenario(cfg, "worker kill -9",
                            harness::CellFault::KillSelf,
                            harness::CellState::Crashed, 5000));
    add(workerFaultScenario(cfg, "worker hang",
                            harness::CellFault::Hang,
                            harness::CellState::Timeout, 1000));
    add(workerFaultScenario(cfg, "worker garbled frame",
                            harness::CellFault::Garble,
                            harness::CellState::ProtocolError, 5000));
    add(brokenClientScenario(cfg, "torn client frame", false));
    add(brokenClientScenario(cfg, "garbage client bytes", true));
    add(slowLorisScenario(cfg));
    add(overloadScenario(cfg));
    add(diskFullScenario(cfg));
    add(killRestartScenario(cfg));
    add(disconnectScenario(cfg));
    add(drainScenario(cfg));
    return result;
}

} // namespace fault
} // namespace cps
