/**
 * @file
 * Functional CodePack decompression (the bit-exact inverse of the
 * compressor) plus the per-instruction bit positions the timing model
 * needs to know which memory beat completes which instruction.
 */

#ifndef CPS_CODEPACK_DECOMPRESSOR_HH
#define CPS_CODEPACK_DECOMPRESSOR_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "compressor.hh"

namespace cps
{
namespace codepack
{

/** One decompressed 16-instruction block. */
struct DecodedBlock
{
    std::array<u32, kBlockInsns> words{};
    /**
     * For each instruction, the bit offset (from the start of the block's
     * bytes) just past its final codeword bit. The serial decoder cannot
     * emit instruction i before the beat carrying this bit arrives.
     */
    std::array<u32, kBlockInsns> endBit{};
    u32 byteOffset = 0; ///< of the block within the compressed region
    u32 byteLen = 0;
    bool raw = false;
};

/** Stateless functional decompressor over a CompressedImage. */
class Decompressor
{
  public:
    explicit Decompressor(const CompressedImage &img) : img_(img) {}

    /**
     * Decompresses block @p block (0/1) of compression group @p group.
     * Walks the index table exactly as the hardware would.
     */
    DecodedBlock decompressBlock(u32 group, u32 block) const;

    /** Decompresses the flat block number @p flat_block. */
    DecodedBlock
    decompressFlatBlock(u32 flat_block) const
    {
        return decompressBlock(flat_block / kBlocksPerGroup,
                               flat_block % kBlocksPerGroup);
    }

    /** Decompresses the whole image back to instruction words. */
    std::vector<u32> decompressAll() const;

    const CompressedImage &image() const { return img_; }

  private:
    const CompressedImage &img_;
};

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_DECOMPRESSOR_HH
