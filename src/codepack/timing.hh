/**
 * @file
 * Cycle-level model of the CodePack decompression unit on the L1 I-cache
 * miss path (paper §3.2 and Figure 2).
 *
 * Modelled behaviours:
 *   - index-table lookup in main memory, with an index cache probed in
 *     parallel with the L1 (a hit adds no latency). The paper's baseline
 *     CodePack caches the single last-used entry (1 line x 1 index);
 *     the optimized model uses 64 lines x 4 indexes, and a "perfect"
 *     mode never misses (Table 7);
 *   - burst read of the compressed block from main memory;
 *   - serial decode at a configurable rate (1/2/16 instructions per
 *     cycle, Table 8), overlapped with the arriving beats;
 *   - a 16-instruction output buffer that is always filled completely,
 *     acting as a prefetch of the block's other cache line;
 *   - instruction forwarding: the missed word is ready the cycle it is
 *     decoded, not when the whole line is filled.
 */

#ifndef CPS_CODEPACK_TIMING_HH
#define CPS_CODEPACK_TIMING_HH

#include <array>

#include "cache/index_cache.hh"
#include "common/stats.hh"
#include "decompressor.hh"
#include "mem/main_memory.hh"

namespace cps
{
namespace codepack
{

/** Decompressor hardware configuration. */
struct DecompressorConfig
{
    /** Index cache geometry; the baseline is the last-used entry. */
    unsigned indexCacheLines = 1;
    unsigned indexesPerLine = 1;
    /** A perfect index cache never misses (index table in on-chip ROM). */
    bool perfectIndexCache = false;
    /** Fetch the whole index-cache line in one burst on an index miss. */
    bool burstIndexFill = false;
    /** Decode bandwidth in instructions per cycle (1, 2, ... 16). */
    unsigned decodeRate = 1;

    /** The paper's optimized configuration (§5.3). */
    static DecompressorConfig
    optimized()
    {
        DecompressorConfig cfg;
        cfg.indexCacheLines = 64;
        cfg.indexesPerLine = 4;
        cfg.burstIndexFill = true;
        cfg.decodeRate = 2;
        return cfg;
    }
};

/** Words per I-cache line (32-byte lines of 4-byte instructions). */
constexpr unsigned kLineWords = 8;

/** Timing of one I-cache line fill produced by the decompressor. */
struct LineFill
{
    /** Cycle each word of the requested line becomes available. */
    std::array<Cycle, kLineWords> wordReady{};
    /** When the complete line has been delivered. */
    Cycle fillDone = 0;
    /** The request was served from the output buffer (prefetch hit). */
    bool fromBuffer = false;
};

/** Event trace of the most recent miss (drives the Figure 2 bench). */
struct MissTrace
{
    Cycle requestCycle = 0;
    bool bufferHit = false;
    bool indexHit = false;
    bool indexPerfect = false;
    Cycle indexStart = 0;
    Cycle indexDone = 0;          ///< when the index entry was available
    std::vector<Cycle> codeBeats; ///< arrival of each compressed-code beat
    std::array<Cycle, kBlockInsns> decodeDone{};
    unsigned criticalInsn = 0;    ///< block-relative index of missed word
};

/** The decompression engine's timing model. */
class DecompressorModel
{
  public:
    /**
     * @param img compressed image of the running program
     * @param mem the memory channel shared with the rest of the machine
     * @param cfg hardware configuration
     * @param stats counters registered under "decomp."
     */
    DecompressorModel(const CompressedImage &img, MainMemory &mem,
                      const DecompressorConfig &cfg, StatSet &stats);

    /**
     * Services an I-cache miss for the 32-byte line at @p line_addr.
     * @param now cycle the miss was detected
     * @return per-word availability of the requested line
     */
    LineFill handleMiss(Addr line_addr, Cycle now);

    /** Clears buffer and index-cache state (not statistics). */
    void reset();

    /** Trace of the most recent handleMiss (for timeline dumps). */
    const MissTrace &lastTrace() const { return trace_; }

    const DecompressorConfig &config() const { return cfg_; }

  private:
    const CompressedImage &img_;
    Decompressor decomp_;
    // Host-side memo: simulated hardware re-decodes a block on every
    // miss, but the functional result never changes, so the host reuses
    // it. reset() deliberately leaves the memo alone — it holds pure
    // functions of the (immutable) image, not simulated state.
    BlockCache blockCache_;
    MainMemory &mem_;
    DecompressorConfig cfg_;
    IndexCache idxCache_;

    // Output buffer: the most recently decompressed block.
    bool bufValid_ = false;
    u32 bufGroup_ = 0;
    u32 bufBlock_ = 0;
    std::array<Cycle, kBlockInsns> bufReady_{};

    MissTrace trace_;

    Counter &statMisses_;
    Counter &statBufferHits_;
    Counter &statIdxLookups_;
    Counter &statIdxHits_;
    Counter &statInsnsDecoded_;
};

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_TIMING_HH
