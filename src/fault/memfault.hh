/**
 * @file
 * Deterministic soft-error injection into a decoded in-memory image.
 *
 * Where FaultInjector corrupts the encoded .cpi container (storage and
 * toolchain faults), MemoryFaultInjector models radiation-style upsets
 * in the RAM holding an already-loaded CompressedImage: single bit
 * flips in the compressed stream, flips in the index table the
 * decompressor chases, and two-bit adjacent bursts. The same (kind,
 * seed) pair always reproduces the same upset.
 *
 * Burst errors flip exactly two adjacent bits: SEC-DED corrects the
 * pair when it straddles two codewords and detects it inside one, and
 * every CRC in the protection palette detects bursts up to its degree,
 * so no modeled fault can be silently miscorrected. Wider bursts would
 * alias under SEC-DED and belong to the detect-only CRC story.
 */

#ifndef CPS_FAULT_MEMFAULT_HH
#define CPS_FAULT_MEMFAULT_HH

#include <string>

#include "codepack/compressor.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace cps
{
namespace fault
{

/** The in-memory upset models the injector can apply. */
enum class MemFaultKind
{
    StreamFlip, ///< one bit in a block's compressed stream bytes
    IndexFlip,  ///< one bit in an index-table entry
    BurstError, ///< two adjacent bits in a block's stream bytes
};

constexpr unsigned kNumMemFaultKinds = 3;

/** All kinds, for sweeps. */
extern const MemFaultKind kAllMemFaultKinds[kNumMemFaultKinds];

/** Short stable name ("stream-flip", "index-flip", "burst-error"). */
const char *memFaultKindName(MemFaultKind kind);

/** Record of one applied upset: enough to describe and replay it. */
struct MemFaultRecord
{
    MemFaultKind kind = MemFaultKind::StreamFlip;
    u64 seed = 0;       ///< injector seed that produced this upset
    u32 group = 0;      ///< affected group (index entry's for IndexFlip)
    u32 flatBlock = 0;  ///< affected flat block (group's first for index)
    u64 bitOffset = 0;  ///< first flipped bit within the block / entry
    unsigned flips = 1; ///< bits flipped (2 for BurstError)

    /** "burst-error seed 0x2a: group 3 block 1, 2 flips from bit 17" */
    std::string describe() const;
};

/**
 * Applies seeded upsets to a live CompressedImage.
 *
 * Mutates only what a soft error can reach — the stream bytes and the
 * index table, never the check arrays (modeled as the ECC spare bits of
 * a protected memory) and never the dictionaries (assumed latched
 * inside the decompressor). Callers sharing the image with a
 * SoftErrorDomain must call noteCorruption() after injecting, and
 * quiesce any BlockFetcher speculating over the image first.
 */
class MemoryFaultInjector
{
  public:
    /** @param img live image to upset; must outlive the injector. */
    MemoryFaultInjector(codepack::CompressedImage &img, u64 seed);

    /** Applies one upset of @p kind. */
    MemFaultRecord inject(MemFaultKind kind);

    /** Applies one upset of a seeded-random kind. */
    MemFaultRecord injectAny();

  private:
    /** A seeded-random flat block with a non-empty stream extent. */
    u32 pickBlock(u64 min_bits);

    codepack::CompressedImage &img_;
    u64 seed_;
    Rng rng_;
};

} // namespace fault
} // namespace cps

#endif // CPS_FAULT_MEMFAULT_HH
