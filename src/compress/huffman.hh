/**
 * @file
 * Canonical Huffman coding over bytes.
 *
 * Substrate for the CCRP baseline (Wolfe & Chanin): CCRP Huffman-encodes
 * the bytes of each I-cache line. We build a length-limited canonical
 * code so decode tables are compact and deterministic.
 */

#ifndef CPS_COMPRESS_HUFFMAN_HH
#define CPS_COMPRESS_HUFFMAN_HH

#include <array>
#include <vector>

#include "common/bitstream.hh"
#include "common/types.hh"

namespace cps
{
namespace compress
{

/** A canonical Huffman code over the 256 byte values. */
class HuffmanCode
{
  public:
    static constexpr unsigned kMaxLen = 16;

    /**
     * Builds a code from byte frequencies. Symbols with zero counts get
     * codes too (longest), so any byte remains encodable.
     * @param counts per-byte-value occurrence counts
     */
    static HuffmanCode build(const std::array<u64, 256> &counts);

    /** Appends the codeword for @p symbol to @p bw. */
    void
    encode(BitWriter &bw, u8 symbol) const
    {
        bw.put(code_[symbol], length_[symbol]);
    }

    /** Decodes one symbol from @p br. */
    u8 decode(BitReader &br) const;

    /** Codeword length of @p symbol in bits. */
    unsigned length(u8 symbol) const { return length_[symbol]; }

    /**
     * Exact encoded size, in bits, of a stream with byte histogram
     * @p counts (excluding any per-line alignment padding). Encoders
     * use it to pre-size their output buffers.
     */
    u64
    streamBits(const std::array<u64, 256> &counts) const
    {
        u64 bits = 0;
        for (unsigned s = 0; s < 256; ++s)
            bits += counts[s] * length_[s];
        return bits;
    }

    /**
     * Bits needed to ship the code itself (one 4-bit length per symbol,
     * canonical reconstruction needs nothing else).
     */
    u64 tableBits() const { return 256 * 4; }

  private:
    std::array<u16, 256> code_{};
    std::array<u8, 256> length_{};

    // Canonical decode acceleration: for each length, the first code
    // value and the index of its first symbol in sorted order.
    std::array<u32, kMaxLen + 2> firstCode_{};
    std::array<u16, kMaxLen + 2> firstSymbolIndex_{};
    std::array<u16, 256> sortedSymbols_{};
};

} // namespace compress
} // namespace cps

#endif // CPS_COMPRESS_HUFFMAN_HH
