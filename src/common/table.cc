#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace cps
{

void
TextTable::addHeader(const std::vector<std::string> &cells)
{
    Row r;
    r.cells = cells;
    r.isHeader = true;
    rows_.push_back(std::move(r));
}

void
TextTable::addRow(const std::vector<std::string> &cells)
{
    Row r;
    r.cells = cells;
    rows_.push_back(std::move(r));
}

void
TextTable::addRule()
{
    Row r;
    r.isRule = true;
    rows_.push_back(std::move(r));
}

std::string
TextTable::render() const
{
    size_t ncols = 0;
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.cells.size());

    std::vector<size_t> width(ncols, 0);
    for (const auto &r : rows_) {
        for (size_t c = 0; c < r.cells.size(); ++c)
            width[c] = std::max(width[c], r.cells[c].size());
    }

    size_t total = 0;
    for (size_t w : width)
        total += w + 2;
    if (total >= 2)
        total -= 2;

    std::string out;
    if (!title_.empty()) {
        out += title_;
        out += '\n';
        out.append(std::min(total, title_.size()), '=');
        out += '\n';
    }

    for (const auto &r : rows_) {
        if (r.isRule) {
            out.append(total, '-');
            out += '\n';
            continue;
        }
        for (size_t c = 0; c < ncols; ++c) {
            std::string cell = c < r.cells.size() ? r.cells[c] : "";
            // First column left-aligned, the rest right-aligned: the
            // first column is invariably the benchmark name.
            if (c == 0) {
                out += cell;
                out.append(width[c] - cell.size(), ' ');
            } else {
                out.append(width[c] - cell.size(), ' ');
                out += cell;
            }
            if (c + 1 < ncols)
                out += "  ";
        }
        out += '\n';
        if (r.isHeader) {
            out.append(total, '-');
            out += '\n';
        }
    }
    return out;
}

std::string
TextTable::renderCsv() const
{
    std::string out;
    if (!title_.empty()) {
        out += "# ";
        out += title_;
        out += '\n';
    }
    for (const Row &r : rows_) {
        if (r.isRule)
            continue;
        for (size_t c = 0; c < r.cells.size(); ++c) {
            if (c)
                out += ',';
            // Quote cells containing commas (thousands separators).
            if (r.cells[c].find(',') != std::string::npos) {
                out += '"';
                out += r.cells[c];
                out += '"';
            } else {
                out += r.cells[c];
            }
        }
        out += '\n';
    }
    return out;
}

void
TextTable::print() const
{
    const char *csv = std::getenv("CPS_CSV");
    std::string s = (csv && *csv) ? renderCsv() : render();
    std::fwrite(s.data(), 1, s.size(), stdout);
    std::fflush(stdout);
}

std::string
TextTable::fmt(double value, int decimals)
{
    return strfmt("%.*f", decimals, value);
}

std::string
TextTable::pct(double fraction, int decimals)
{
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

std::string
TextTable::grouped(unsigned long long value)
{
    std::string digits = strfmt("%llu", value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace cps
