/**
 * @file
 * Fork-a-daemon harness shared by the service tests, the chaos
 * campaign, and the service benchmark.
 *
 * Each caller needs a real cpserved process — separate pid, own event
 * loop, killable with real signals — without depending on the build
 * layout to exec a binary. spawnDaemon() forks and runs CampaignServer
 * in the child with an explicit ServiceConfig; because the fork
 * inherits the parent's warmed Suite (generate the benchmarks *before*
 * spawning), the daemon starts serving instantly instead of
 * regenerating benchmarks per scenario.
 *
 * The harness is deliberately blunt about teardown: stop() SIGTERMs
 * and escalates to SIGKILL on a deadline, and kill9() is a first-class
 * operation — the daemon's crash-only design is the thing under test.
 */

#ifndef CPS_SERVICE_DAEMON_HARNESS_HH
#define CPS_SERVICE_DAEMON_HARNESS_HH

#include <sys/types.h>

#include "server.hh"

namespace cps
{
namespace service
{

/** One forked daemon process. */
class DaemonProcess
{
  public:
    DaemonProcess() = default;
    ~DaemonProcess(); ///< stop() if still running
    DaemonProcess(const DaemonProcess &) = delete;
    DaemonProcess &operator=(const DaemonProcess &) = delete;
    DaemonProcess(DaemonProcess &&other) noexcept;
    DaemonProcess &operator=(DaemonProcess &&other) noexcept;

    bool running() const { return pid_ > 0; }
    pid_t pid() const { return pid_; }

    /**
     * SIGTERM, wait up to @p timeout_ms for a clean exit, then
     * SIGKILL. @return the daemon's exit code, or -1 when it had to be
     * killed (or died by a signal).
     */
    int stop(long timeout_ms = 10000);

    /** SIGKILL immediately and reap. Crash-only restart is a feature:
     *  nothing journaled is lost. */
    void kill9();

    /** Reaps a daemon expected to exit on its own (e.g. the
     *  exitAfterCells hook). @return exit code, or -1 on
     *  timeout/signal-death. */
    int wait(long timeout_ms = 30000);

  private:
    friend DaemonProcess spawnDaemon(const ServiceConfig &cfg);
    pid_t pid_ = -1;
};

/**
 * Forks a child that runs CampaignServer(cfg) until drained, then
 * exits 0 (startup failure: exits 9). Returns once the daemon's socket
 * accepts connections, so the caller can connect immediately.
 * running() is false when the spawn failed.
 */
DaemonProcess spawnDaemon(const ServiceConfig &cfg);

} // namespace service
} // namespace cps

#endif // CPS_SERVICE_DAEMON_HARNESS_HH
