#include "engine.hh"

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace cps
{
namespace harness
{

std::vector<RunOutcome>
runMatrix(const std::vector<RunRequest> &requests, unsigned threads)
{
    for (const RunRequest &r : requests)
        cps_assert(r.bench != nullptr, "runMatrix request without bench");

    std::vector<RunOutcome> outcomes(requests.size());
    if (threads == 0)
        threads = defaultThreadCount();
    if (threads <= 1 || requests.size() <= 1) {
        for (size_t i = 0; i < requests.size(); ++i)
            outcomes[i] = runMachine(*requests[i].bench, requests[i].cfg,
                                     requests[i].maxInsns, requests[i].mode);
        return outcomes;
    }

    ThreadPool pool(threads);
    pool.parallelFor(requests.size(), [&](size_t i) {
        outcomes[i] = runMachine(*requests[i].bench, requests[i].cfg,
                                 requests[i].maxInsns, requests[i].mode);
    });
    return outcomes;
}

} // namespace harness
} // namespace cps
