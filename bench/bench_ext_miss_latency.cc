/**
 * @file
 * Extension experiment: the steady-state version of Figure 2 — the
 * average critical-word latency of an I-cache miss under each code
 * model on the 4-issue baseline. This is the per-miss cost the paper's
 * Figure 2 illustrates for a single event, measured over every miss of
 * a full run (output-buffer hits and index-cache hits included).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

namespace
{

std::string
avgMissLatency(const RunOutcome &out)
{
    if (out.icacheMisses == 0)
        return "-";
    double avg = static_cast<double>(out.missLatencyTotal) /
                 static_cast<double>(out.icacheMisses);
    return TextTable::fmt(avg, 1);
}

} // namespace

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    TextTable t;
    t.setTitle("Extension: average critical-word I-miss latency in "
               "cycles (4-issue; Figure 2 over a full run)");
    t.addHeader({"Bench", "Native", "CodePack", "Optimized",
                 "Software (8 cyc/insn)"});

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        m.add(bench, baseline4Issue(), insns);
        m.add(bench, baseline4Issue().withCodeModel(CodeModel::CodePack),
              insns);
        m.add(bench,
              baseline4Issue().withCodeModel(CodeModel::CodePackOptimized),
              insns);
        m.add(bench,
              baseline4Issue().withCodeModel(CodeModel::CodePackSoftware),
              insns);
    }
    m.run();

    for (const std::string &name : suite.names()) {
        t.addRow({name, m.fmtNext(avgMissLatency),
                  m.fmtNext(avgMissLatency), m.fmtNext(avgMissLatency),
                  m.fmtNext(avgMissLatency)});
    }
    t.print();

    std::printf("\n(Single-event anchors from Figure 2: native 10, "
                "baseline CodePack 25 on an\nindex miss; averages fall "
                "below the anchors because output-buffer hits and\n"
                "index-cache hits are cheap.)\n");
    return m.exitSummary();
}
