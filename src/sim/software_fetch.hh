/**
 * @file
 * Software-managed CodePack decompression — the paper's future-work
 * suggestion (§6): "Even completely software-managed decompression may
 * be an attractive option to resource limited computers."
 *
 * Model: an I-cache miss traps to a handler running on the core. The
 * handler loads the index entry (a real memory access; software keeps
 * the last entry in a register, mirroring the hardware baseline),
 * burst-reads the compressed block, decodes it at a software rate of
 * several cycles per instruction, and keeps the decompressed block in a
 * scratchpad buffer so the block's other line costs only a short copy
 * loop. Decode cannot overlap the memory transfer the way the hardware
 * engine does: the handler starts only after the burst completes (it
 * reads the compressed bytes from a DMA buffer).
 *
 * Optional software prefetch (bench_ext_prefetch_adapt): before
 * returning, the handler can queue DMA bursts for predicted next blocks
 * and decode them into extra scratchpad slots. The model charges the
 * memory channel for the bursts and full decode latency before a
 * prefetched slot becomes usable, but assumes the decode work itself
 * hides in core idle cycles (an optimistic "free decode slack"
 * assumption — see DESIGN.md). A trap that lands on a still-cooking
 * slot waits for its ready cycle, then pays only the copy loop.
 */

#ifndef CPS_SIM_SOFTWARE_FETCH_HH
#define CPS_SIM_SOFTWARE_FETCH_HH

#include <vector>

#include "codepack/block_fetcher.hh"
#include "codepack/decompressor.hh"
#include "codepack/timing.hh"
#include "pipeline/paths.hh"

namespace cps
{

/** Cost parameters of the software decompression handler. */
struct SoftwareDecompressConfig
{
    /** Trap entry + register save + dispatch, cycles. */
    Cycle trapOverhead = 24;
    /** Handler decode cost per instruction (bit twiddling + table
     *  lookups + store), cycles. */
    Cycle cyclesPerInsn = 8;
    /** Copy cost per instruction when the block is already in the
     *  scratchpad buffer. */
    Cycle copyCyclesPerInsn = 2;
    /** Trap return, cycles. */
    Cycle returnOverhead = 8;
    /** Software prefetch into extra scratchpad slots; None = paper. */
    codepack::PrefetchKind prefetch = codepack::PrefetchKind::None;
    /** Blocks predicted per trap; also the extra scratchpad slots. */
    unsigned prefetchDepth = 1;
};

/** Fetch path whose miss handler is a software routine on the core. */
class SoftwareCodePackFetchPath : public CachedFetchPath
{
  public:
    SoftwareCodePackFetchPath(const CacheConfig &icache_cfg,
                              const codepack::CompressedImage &img,
                              MainMemory &mem,
                              const SoftwareDecompressConfig &cfg,
                              StatSet &stats)
        : CachedFetchPath(icache_cfg, stats), img_(img), decomp_(img),
          fetcher_(decomp_, codepack::BlockFetcher::Options::fromEnv(),
                   &stats),
          mem_(mem), cfg_(cfg),
          statTraps_(stats.scalar("swdecomp.traps")),
          statBufferHits_(stats.scalar("swdecomp.buffer_hits")),
          statPfIssued_(stats.scalar("swdecomp.prefetch_issued")),
          statPfHits_(stats.scalar("swdecomp.prefetch_hits"))
    {
        unsigned pf_slots =
            cfg.prefetch == codepack::PrefetchKind::None
                ? 0 : cfg.prefetchDepth;
        bufs_.resize(1 + pf_slots);
    }

  protected:
    std::array<Cycle, 8>
    fillLine(Addr addr, Cycle now) override
    {
        statTraps_.inc();
        u32 insn_idx = img_.insnIndexOf(addr & ~31u);
        u32 group = insn_idx / codepack::kGroupInsns;
        u32 block =
            (insn_idx / codepack::kBlockInsns) % codepack::kBlocksPerGroup;
        u32 flat = insn_idx / codepack::kBlockInsns;
        unsigned half = (insn_idx % codepack::kBlockInsns) / 8;

        // Train the predictor on transitions of the demanded block.
        bool new_block = false;
        if (cfg_.prefetch != codepack::PrefetchKind::None &&
            (!havePrevReq_ || prevReqFlat_ != flat)) {
            new_block = true;
            if (havePrevReq_) {
                s64 stride = static_cast<s64>(flat) -
                             static_cast<s64>(prevReqFlat_);
                if (stride == lastStride_)
                    ++strideConf_;
                else {
                    lastStride_ = stride;
                    strideConf_ = 1;
                }
            }
            havePrevReq_ = true;
            prevReqFlat_ = flat;
        }

        Cycle t = now + cfg_.trapOverhead;
        std::array<Cycle, 8> ready{};

        for (Scratch &buf : bufs_) {
            if (!buf.valid || buf.group != group || buf.block != block)
                continue;
            // Scratchpad hit: wait out any still-cooking prefetch fill,
            // then copy the requested line out.
            statBufferHits_.inc();
            if (buf.prefetched) {
                statPfHits_.inc();
                buf.prefetched = false;
            }
            t = std::max(t, buf.readyAt);
            for (unsigned w = 0; w < 8; ++w) {
                t += cfg_.copyCyclesPerInsn;
                ready[w] = t;
            }
            for (Cycle &r : ready)
                r += cfg_.returnOverhead;
            if (new_block)
                issuePrefetches(flat, ready[7]);
            return ready;
        }

        // Index entry: software keeps the last-used entry in a register.
        if (!(idxValid_ && idxGroup_ == group)) {
            BurstResult idx = mem_.burstRead(t, 4);
            t = idx.done + 1; // the load's use
            idxValid_ = true;
            idxGroup_ = group;
        }

        // Burst the compressed block into the DMA buffer; the handler
        // only starts decoding once the transfer is complete. The host
        // memoizes the functional decode by (group, block); the
        // simulated handler still pays full decode cycles below.
        const codepack::DecodedBlock &blk = fetcher_.get(group, block);
        BurstResult burst =
            mem_.burstRead(t, std::max<u32>(blk.byteLen, 1));
        t = burst.done;

        // Serial software decode.
        std::array<Cycle, codepack::kBlockInsns> done{};
        for (unsigned i = 0; i < codepack::kBlockInsns; ++i) {
            t += cfg_.cyclesPerInsn;
            done[i] = t;
        }
        bufs_[0].valid = true;
        bufs_[0].prefetched = false;
        bufs_[0].group = group;
        bufs_[0].block = block;
        bufs_[0].readyAt = t;

        for (unsigned w = 0; w < 8; ++w)
            ready[w] = done[half * 8 + w] + cfg_.returnOverhead;
        if (new_block) {
            Cycle end = ready[0];
            for (Cycle r : ready)
                end = std::max(end, r);
            issuePrefetches(flat, end);
        }
        return ready;
    }

    void
    resetMissPath() override
    {
        for (Scratch &b : bufs_)
            b = Scratch{};
        idxValid_ = false;
        pfRotor_ = 0;
        havePrevReq_ = false;
        prevReqFlat_ = 0;
        lastStride_ = 0;
        strideConf_ = 0;
    }

  private:
    /** One scratchpad slot holding a decompressed 16-insn block. */
    struct Scratch
    {
        bool valid = false;
        bool prefetched = false; ///< speculative fill, not yet claimed
        u32 group = 0;
        u32 block = 0;
        Cycle readyAt = 0; ///< when the slot's contents are usable
    };

    /** Queues predicted-block fills after the trap returns at @p start. */
    void
    issuePrefetches(u32 flat, Cycle start)
    {
        s64 stride = 1;
        if (cfg_.prefetch == codepack::PrefetchKind::Stride) {
            if (strideConf_ < 2 || lastStride_ == 0)
                return;
            stride = lastStride_;
        }
        Cycle t = start;
        for (unsigned k = 1; k <= cfg_.prefetchDepth; ++k) {
            s64 pred =
                static_cast<s64>(flat) + stride * static_cast<s64>(k);
            if (pred < 0 || pred >= static_cast<s64>(img_.numBlocks()))
                continue;
            u32 pgroup = static_cast<u32>(pred) / codepack::kBlocksPerGroup;
            u32 pblock = static_cast<u32>(pred) % codepack::kBlocksPerGroup;
            bool resident = false;
            for (const Scratch &b : bufs_)
                if (b.valid && b.group == pgroup && b.block == pblock)
                    resident = true;
            if (resident)
                continue;
            if (!(idxValid_ && idxGroup_ == pgroup)) {
                BurstResult idx = mem_.burstRead(t, 4);
                t = idx.done + 1;
                idxValid_ = true;
                idxGroup_ = pgroup;
            }
            const codepack::DecodedBlock &blk =
                fetcher_.get(pgroup, pblock);
            BurstResult burst =
                mem_.burstRead(t, std::max<u32>(blk.byteLen, 1));
            t = burst.done;
            Scratch &slot = bufs_[1 + (pfRotor_++ % cfg_.prefetchDepth)];
            slot.valid = true;
            slot.prefetched = true;
            slot.group = pgroup;
            slot.block = pblock;
            // Decode latency is charged before the slot is usable, but
            // the decode work itself is assumed to hide in idle cycles.
            slot.readyAt =
                t + codepack::kBlockInsns * cfg_.cyclesPerInsn;
            statPfIssued_.inc();
        }
    }

    const codepack::CompressedImage &img_;
    codepack::Decompressor decomp_;
    codepack::BlockFetcher fetcher_;
    MainMemory &mem_;
    SoftwareDecompressConfig cfg_;

    std::vector<Scratch> bufs_; ///< [0] = demand; rest = prefetch slots
    unsigned pfRotor_ = 0;
    bool idxValid_ = false;
    u32 idxGroup_ = 0;
    bool havePrevReq_ = false;
    u32 prevReqFlat_ = 0;
    s64 lastStride_ = 0;
    unsigned strideConf_ = 0;

    Counter &statTraps_;
    Counter &statBufferHits_;
    Counter &statPfIssued_;
    Counter &statPfHits_;
};

} // namespace cps

#endif // CPS_SIM_SOFTWARE_FETCH_HH
