/**
 * @file
 * Extension experiment: is CodePack's speedup "just prefetching"?
 *
 * The paper attributes part of the optimized decompressor's win to its
 * implicit block prefetch ("CodePack implements prefetching behavior
 * that the underlying processor does not have"). Here native code gets a
 * sequential next-line prefetcher of its own, so the four-way
 * comparison separates the bandwidth effect of compression from the
 * prefetching effect:
 *
 *   native | native+prefetch | CodePack optimized     (4-issue)
 *
 * If compression itself matters, optimized CodePack should keep an edge
 * over native+prefetch on narrow/slow memory systems even though both
 * now prefetch.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    TextTable t;
    t.setTitle("Extension: native next-line prefetch vs CodePack "
               "(speedup over plain native, 4-issue)");
    t.addHeader({"Bench", "Native+prefetch (64b)", "CP opt (64b)",
                 "Native+prefetch (16b)", "CP opt (16b)"});

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        for (unsigned bus : {64u, 16u}) {
            MachineConfig native = baseline4Issue();
            native.mem.busWidthBits = bus;
            m.add(bench, native, insns);
            m.add(bench, native.withCodeModel(CodeModel::NativePrefetch),
                  insns);
            m.add(bench,
                  native.withCodeModel(CodeModel::CodePackOptimized),
                  insns);
        }
    }
    m.run();

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };
    for (const std::string &name : suite.names()) {
        std::vector<std::string> row{name};
        for (size_t i = 0; i < 2; ++i) {
            harness::CellOutcome rn = m.nextCell();
            harness::CellOutcome rp = m.nextCell();
            harness::CellOutcome ro = m.nextCell();
            row.push_back(harness::fmtCells(rn, rp, fmtSpd));
            row.push_back(harness::fmtCells(rn, ro, fmtSpd));
        }
        t.addRow(row);
    }
    t.print();

    std::printf("\nReading: where native+prefetch matches optimized "
                "CodePack, the win was\nprefetching; where CodePack "
                "stays ahead (narrow buses), compression's\nbandwidth "
                "advantage is doing real work.\n");
    return m.exitSummary();
}
