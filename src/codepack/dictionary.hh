/**
 * @file
 * CodePack halfword dictionaries.
 *
 * A dictionary assigns the most frequent 16-bit halfword values of a
 * program's text to short variable-length codewords, bank by bank (the
 * most frequent values land in the bank with the shortest codewords).
 * Dictionaries are fixed at program load time and shipped with the
 * compressed image (their bits are charged to the compressed size, as in
 * the paper's Table 4).
 */

#ifndef CPS_CODEPACK_DICTIONARY_HH
#define CPS_CODEPACK_DICTIONARY_HH

#include <unordered_map>
#include <vector>

#include "common/bitstream.hh"
#include "common/result.hh"
#include "common/simd.hh"
#include "common/types.hh"
#include "format.hh"

namespace cps
{
namespace codepack
{

/** How one halfword value is encoded. */
struct HalfEncoding
{
    bool raw = false;        ///< escape: 3-bit tag + 16 literal bits
    bool zeroSpecial = false; ///< low-half value 0: lone 2-bit tag
    unsigned bank = 0;       ///< dictionary bank (when !raw && !zeroSpecial)
    u32 index = 0;           ///< index within the bank
    unsigned tagBits = 0;
    u32 tag = 0;
    unsigned indexBits = 0;

    unsigned totalBits() const { return tagBits + indexBits; }
};

/** One of the two CodePack dictionaries (high or low halfwords). */
class Dictionary
{
  public:
    /** Which half of the instruction this dictionary serves. */
    enum class Kind { High, Low };

    /** Creates an empty dictionary (every halfword encodes raw). */
    explicit Dictionary(Kind kind);

    /**
     * Builds a dictionary from halfword frequency counts.
     *
     * Values are ranked by descending count (ties broken by value for
     * determinism) and poured into the banks in order. A value is only
     * admitted while doing so shrinks the program: admitting value v to a
     * bank with b-bit codewords saves count*(3+16-b) bits of stream and
     * costs 16 bits of dictionary storage.
     *
     * For Kind::Low the value 0 is never stored: it always has the
     * special 2-bit codeword.
     */
    static Dictionary build(Kind kind,
                            const std::unordered_map<u16, u64> &counts);

    /**
     * Reconstructs a dictionary from explicit per-bank entry lists
     * (deserialization). Bank populations must fit the bank widths.
     */
    static Dictionary fromBankEntries(
        Kind kind, const std::vector<std::vector<u16>> &entries);

    Kind kind() const { return kind_; }

    /** Number of banks (4 for high, 3 for low). */
    unsigned numBanks() const { return numBanks_; }

    /** The bank descriptors for this dictionary's kind. */
    const Bank *banks() const { return banks_; }

    /** Total entries stored across banks. */
    unsigned totalEntries() const;

    /** Bits of on-chip storage for the dictionary contents (16/entry). */
    u64 storageBits() const { return u64{totalEntries()} * 16; }

    /** How @p half would be encoded by this dictionary. */
    HalfEncoding encode(u16 half) const;

    /** The halfword stored at (@p bank, @p index). */
    u16 lookup(unsigned bank, u32 index) const;

    /** Appends the codeword for @p half to @p bw. */
    void write(BitWriter &bw, u16 half) const;

    /**
     * Appends the codeword for @p half when its encoding @p enc is
     * already in hand (the compressor's match loop resolves the
     * encoding once for both the accounting and the emit).
     */
    static void
    writeEncoded(BitWriter &bw, const HalfEncoding &enc, u16 half)
    {
        bw.put(enc.tag, enc.tagBits);
        if (enc.zeroSpecial)
            return;
        if (enc.raw) {
            bw.put(half, kRawLiteralBits);
            return;
        }
        bw.put(enc.index, enc.indexBits);
    }

    /**
     * encode() by dictionary match instead of hash lookup: a 64-Kbit
     * membership bitmap rejects raw halves in one probe, and members
     * resolve by scanning the flat bank-ordered entry array — the
     * software analogue of the hardware CAM, vectorized through the
     * simd wrapper (@p vectorized false pins the scalar scan for
     * ablation; the result is identical either way, and identical to
     * encode()). Frequency ranking puts the dynamically common values
     * in the first cachelines of the scan, so the expected match is a
     * couple of vector compares.
     */
    HalfEncoding
    matchEncode(u16 half, bool vectorized = true) const
    {
        if (kind_ == Kind::Low && half == 0) {
            HalfEncoding enc;
            enc.zeroSpecial = true;
            enc.tagBits = kLowZeroBits;
            enc.tag = kTag0;
            return enc;
        }
        if (!((member_[half >> 6] >> (half & 63)) & 1)) {
            HalfEncoding enc;
            enc.raw = true;
            enc.tagBits = 3;
            enc.tag = kTagRaw;
            enc.indexBits = kRawLiteralBits;
            return enc;
        }
        size_t idx =
            vectorized
                ? simd::findU16(flat_.data(), flat_.size(), half)
                : simd::scalar::findU16(flat_.data(), flat_.size(),
                                        half);
        cps_assert(idx < flat_.size(),
                   "membership bitmap admitted value 0x%04x the flat "
                   "entry array does not hold", half);
        return flatEnc_[idx];
    }

    /** Decodes one halfword from @p br (tag first, then index/raw). */
    u16 read(BitReader &br) const;

    /**
     * Single-pass LUT decode for trusted streams: peeks kLutBits bits
     * and resolves {value, codeword length} in one table hit (a raw
     * escape costs one extra 16-bit read). Returns false — consuming
     * nothing — when the stream needs the checked path instead: a
     * truncated codeword or an index beyond a bank's population. The
     * caller falls back to read()/tryRead(), which reproduce the exact
     * panic or DecodeStatus the bit-serial reference decoder gives.
     */
    bool
    readFast(BitReader &br, u16 &out) const
    {
        // Inline: this runs once per halfword on the trusted decode
        // path, and an out-of-line call here costs as much as the
        // table hit itself.
        u32 e = lut_[br.peekPadded(kLutBits)];
        unsigned kind = (e >> 24) & 0x7;
        unsigned len = (e >> 16) & 0xff;
        if (kind == kLutValue) {
            if (len > br.remaining())
                return false; // truncated codeword
            br.skip(len);
            out = static_cast<u16>(e & 0xffff);
            return true;
        }
        if (kind == kLutRaw) {
            if (3 + kRawLiteralBits > br.remaining())
                return false; // truncated literal
            br.skip(3);
            out = static_cast<u16>(br.get(kRawLiteralBits));
            return true;
        }
        return false; // unpopulated dictionary index
    }

    /**
     * Checked variant of read() for untrusted bitstreams: a truncated
     * codeword or a dictionary index beyond a bank's population comes
     * back as a structured error (with the failing bit offset) instead
     * of an assert. On error the reader cursor is left wherever the
     * failure was detected.
     */
    Result<u16> tryRead(BitReader &br) const;

    /** Entries of bank @p bank (for dumps and tests). */
    const std::vector<u16> &bankEntries(unsigned bank) const;

    /** Bits the decode LUT indexes on (the longest non-raw codeword). */
    static constexpr unsigned kLutBits = 11;

    /**
     * Raw decode-LUT probe for fused decoders that peek the bits for
     * several codewords at once (see Decompressor's block kernel):
     * @p bits are the next kLutBits of stream. Decode the returned
     * entry with lutIsValue()/lutLen()/lutValue(); anything that is not
     * a plain in-bank value (raw escape, unpopulated index) must be
     * re-decoded through readFast()/tryRead().
     */
    u32 lutProbe(u32 bits) const { return lut_[bits]; }

    /**
     * The LUT itself (1 << kLutBits entries), for decode loops that
     * want the table pointer hoisted out of the per-symbol path.
     */
    const u32 *lutData() const { return lut_.data(); }

    /** Whether LUT entry @p e resolved to an in-bank halfword value. */
    static constexpr bool
    lutIsValue(u32 e)
    {
        return ((e >> 24) & 0x7) == kLutValue;
    }

    /** Whether LUT entry @p e is the raw escape (tag 111 + literal). */
    static constexpr bool
    lutIsRaw(u32 e)
    {
        return ((e >> 24) & 0x7) == kLutRaw;
    }

    /** Consumed codeword length of LUT entry @p e, in bits. */
    static constexpr unsigned lutLen(u32 e) { return (e >> 16) & 0xff; }

    /** Decoded halfword of a value-kind LUT entry @p e. */
    static constexpr u16
    lutValue(u32 e)
    {
        return static_cast<u16>(e & 0xffff);
    }

  private:
    // Decode-LUT entry layout: value in [15:0], consumed bit count in
    // [23:16], kind in [26:24].
    enum LutKind : u32 { kLutValue = 0, kLutRaw = 1, kLutInvalid = 2 };

    static constexpr u32
    lutEntry(u16 value, unsigned len, LutKind kind)
    {
        return static_cast<u32>(value) | (static_cast<u32>(len) << 16) |
               (static_cast<u32>(kind) << 24);
    }

    /** Rebuilds lut_ from entries_ (called whenever banks change). */
    void buildLut();

    Kind kind_;
    const Bank *banks_;
    unsigned numBanks_;
    std::vector<std::vector<u16>> entries_;       // per bank
    std::unordered_map<u16, HalfEncoding> lookup_; // value -> encoding
    std::vector<u32> lut_;                        // 1 << kLutBits entries
    // Match-path mirrors of entries_, rebuilt with the LUT: the flat
    // bank-ordered value array the vector scan walks, its per-index
    // encodings, and a 64-Kbit membership bitmap (one u64 per 64
    // values) that rejects raw halves without scanning.
    std::vector<u16> flat_;
    std::vector<HalfEncoding> flatEnc_;
    std::vector<u64> member_;
};

/**
 * Fused high+low decode LUT: the double-symbol rung of the decode
 * kernel ladder (see DESIGN.md, "Decode kernels"). One 4096-entry
 * table keyed on the next kBits bits of stream at an instruction
 * boundary; a slot resolves
 *
 *   - both codewords of the instruction (symbols() == 2) when the high
 *     codeword and the following low codeword together fit inside the
 *     kBits index window — prefix-freedom makes the low codeword
 *     unambiguous from the window's remaining bits alone;
 *   - the high codeword only (symbols() == 1) when it fits but the low
 *     codeword spills past the window; the caller finishes with one
 *     probe of the low dictionary's own LUT;
 *   - nothing (symbols() == 0, an escape marker) when the window opens
 *     with a raw escape or an unpopulated index pattern — those
 *     re-decode through readFast()/tryRead() exactly as before.
 *
 * Entry layout: high half in [15:0], low half in [31:16], consumed bit
 * count in [39:32] (both codewords for a pair, the high codeword alone
 * otherwise), symbol count in [41:40]. Escape slots are the all-zero
 * word, so a plain truth test skips them.
 */
class PairLut
{
  public:
    /**
     * Window width in bits, and the log2 table size. One bit wider
     * than the per-dictionary LUT: the most common instruction shape
     * is a bank-0 high codeword (6 bits) followed by a bank-0 low
     * codeword (6 bits), which at 12 bits just misses an 11-bit
     * window. The extra bit lifts double-pack coverage from only
     * {6,8,9}-bit highs before the 2-bit low zero code to every
     * bank-0×bank-0 pair, for a 32 KiB table that still sits in L1.
     */
    static constexpr unsigned kBits = 12;

    /** Creates an empty (never-matching) table. */
    PairLut() = default;

    /** Builds the fused table for @p high followed by @p low. */
    PairLut(const Dictionary &high, const Dictionary &low);

    bool empty() const { return lut_.empty(); }

    /** Raw probe with the next kBits bits of stream. */
    u64 probe(u32 bits) const { return lut_[bits]; }

    /** The table pointer, hoisted out of per-instruction decode loops. */
    const u64 *data() const { return lut_.data(); }

    /** Symbols entry @p e resolves: 0 (escape), 1 (high), 2 (both). */
    static constexpr unsigned
    symbols(u64 e)
    {
        return static_cast<unsigned>(e >> 40) & 0x3;
    }

    /** Consumed bits: the pair for 2-symbol slots, else the high code. */
    static constexpr unsigned
    lenBits(u64 e)
    {
        return static_cast<unsigned>(e >> 32) & 0xff;
    }

    static constexpr u16 highHalf(u64 e) { return static_cast<u16>(e); }
    static constexpr u16 lowHalf(u64 e) { return static_cast<u16>(e >> 16); }

    /** The full instruction word of a 2-symbol entry. */
    static constexpr u32
    word(u64 e)
    {
        return (static_cast<u32>(highHalf(e)) << 16) | lowHalf(e);
    }

    /** Number of slots that resolve a whole instruction (for tests). */
    unsigned pairSlots() const;

  private:
    static constexpr u64
    entry(u16 hi, u16 lo, unsigned len, unsigned syms)
    {
        return static_cast<u64>(hi) | (static_cast<u64>(lo) << 16) |
               (static_cast<u64>(len) << 32) |
               (static_cast<u64>(syms) << 40);
    }

    std::vector<u64> lut_; // 1 << kBits entries, or empty
};

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_DICTIONARY_HH
