/**
 * @file
 * CRC'd message framing for byte streams between cooperating processes.
 *
 * The crash-isolated experiment harness runs each matrix cell in a
 * forked worker and ships the result back over a pipe. The bytes on
 * that pipe are untrusted in exactly the way cached artifacts are: the
 * writer may have been killed mid-frame, crashed after writing half a
 * payload, or (in fault-campaign runs) deliberately garbled the stream.
 * Every frame therefore carries its own length and a CRC-32 over the
 * whole frame, and the reader classifies what it saw — a verified
 * frame, a clean EOF, a torn/garbled frame, or a deadline expiry —
 * instead of trusting any byte.
 *
 * Frame layout (little-endian):
 *   magic "CPFR"            4 bytes
 *   u32 type                caller-defined message type
 *   u32 payloadLen, payload
 *   u32 CRC-32 over everything above
 *
 * The same encoding doubles as the on-disk record format of the matrix
 * journal (an append-only file of frames): a process killed mid-append
 * leaves a torn final frame, which decodeFrames() cleanly stops at.
 */

#ifndef CPS_COMMON_IPC_FRAME_HH
#define CPS_COMMON_IPC_FRAME_HH

#include <string>
#include <vector>

#include "types.hh"

namespace cps
{

/** One framed message. */
struct IpcFrame
{
    u32 type = 0;
    std::vector<u8> payload;
};

/** Serializes one frame (magic, type, length, payload, CRC). */
std::vector<u8> encodeFrame(u32 type, const std::vector<u8> &payload);

/**
 * Default upper bound on a frame's declared payload length. A peer is
 * in the same trust domain as a cache file: the declared length must
 * be bounded before it is believed. Callers with a known message
 * economy (a result envelope, a matrix request) pass a far tighter
 * bound to readFrame()/gatherFrame().
 */
constexpr size_t kMaxFramePayload = 64u << 20;

/** How a stream read ended. */
enum class FrameReadStatus
{
    Ok,      ///< a complete, CRC-verified frame
    Eof,     ///< clean end of stream at a frame boundary
    Torn,    ///< stream ended mid-frame (writer died), or bad magic/CRC
    Timeout, ///< the deadline expired before a full frame arrived
    IoError, ///< read(2)/poll(2) failed
};

/** Short stable name for a status ("ok", "eof", "torn", ...). */
const char *frameReadStatusName(FrameReadStatus status);

/**
 * Decodes consecutive frames from @p bytes starting at @p pos,
 * advancing @p pos past each verified frame. Returns Ok and fills
 * @p out for each frame; Eof exactly at the end; Torn on a damaged or
 * truncated frame (pos is left at the damaged frame's start).
 */
FrameReadStatus decodeFrameAt(const std::vector<u8> &bytes, size_t &pos,
                              IpcFrame &out);

/**
 * Writes one frame to @p fd, retrying short writes and EINTR. Socket
 * fds are written with MSG_NOSIGNAL so a disconnected peer surfaces as
 * a clean failure; pipe writers additionally call ignoreSigpipe()
 * (common/socket.hh) so EPIPE never arrives as a signal there either.
 * @return false on any unrecoverable write error (EPIPE included)
 */
bool writeFrame(int fd, u32 type, const std::vector<u8> &payload);

/**
 * Reads one frame from @p fd, blocking up to @p timeout_ms
 * (negative = no deadline). On Timeout/Torn/IoError the stream
 * position is unspecified — the caller is expected to give up on the
 * peer, not resynchronize. A frame declaring a payload larger than
 * @p max_payload is classified Torn without being read.
 */
FrameReadStatus readFrame(int fd, IpcFrame &out, long timeout_ms,
                          size_t max_payload = kMaxFramePayload);

/** Incremental decode over a growing receive buffer. */
enum class FrameGather
{
    Frame,    ///< a complete, CRC-verified frame was extracted
    NeedMore, ///< the buffer ends inside a plausible frame — keep reading
    Damaged,  ///< bad magic, oversized length, or CRC mismatch: give up
};

/**
 * Attempts to extract one frame from @p buffer starting at @p pos.
 * Unlike decodeFrameAt (whole-stream decode, where a short tail means
 * a dead writer), this distinguishes "not arrived yet" from
 * "verifiably damaged", which is what a nonblocking server loop
 * accumulating bytes from a live — possibly slow, possibly hostile —
 * client needs. On Frame, @p pos advances past the frame.
 */
FrameGather gatherFrame(const std::vector<u8> &buffer, size_t &pos,
                        IpcFrame &out,
                        size_t max_payload = kMaxFramePayload);

} // namespace cps

#endif // CPS_COMMON_IPC_FRAME_HH
