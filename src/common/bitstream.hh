/**
 * @file
 * MSB-first bitstream reader/writer.
 *
 * CodePack codewords are variable-length bit strings packed back to back;
 * blocks are then padded out to a byte boundary. The writer emits bits
 * most-significant-first within each byte (the natural order for a
 * hardware shifter scanning a byte stream), and the reader consumes them
 * in the same order.
 */

#ifndef CPS_COMMON_BITSTREAM_HH
#define CPS_COMMON_BITSTREAM_HH

#include <bit>
#include <cstddef>
#include <cstring>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace cps
{

/** Appends variable-width bit fields to a growing byte vector. */
class BitWriter
{
  public:
    BitWriter() = default;

    /**
     * Pre-sizes the backing byte vector for @p bytes bytes of output.
     * Encoders that can bound their output from a symbol histogram use
     * this to take the reallocation churn out of the hot put() loop.
     */
    void reserve(size_t bytes) { bytes_.reserve(bytes); }

    /**
     * Appends the low @p width bits of @p value, MSB first. Emits a
     * byte-sized chunk per iteration rather than a bit at a time —
     * this is the single hot loop of the whole compressor.
     * @param value field to append (upper bits beyond width are ignored)
     * @param width number of bits, 0..32
     */
    void
    put(u32 value, unsigned width)
    {
        cps_assert(width <= 32, "bit width out of range");
        while (width > 0) {
            if (bitPos_ == 0)
                bytes_.push_back(0);
            unsigned room = 8 - bitPos_;
            unsigned n = width < room ? width : room;
            u32 chunk =
                (value >> (width - n)) & ((1u << n) - 1);
            bytes_.back() |=
                static_cast<u8>(chunk << (room - n));
            bitPos_ = (bitPos_ + n) & 7;
            width -= n;
        }
    }

    /** Appends a single bit. */
    void
    putBit(unsigned bit)
    {
        if (bitPos_ == 0)
            bytes_.push_back(0);
        if (bit)
            bytes_.back() |= static_cast<u8>(1u << (7 - bitPos_));
        bitPos_ = (bitPos_ + 1) & 7;
    }

    /**
     * Pads with zero bits up to the next byte boundary.
     * @return the number of padding bits emitted (0..7)
     */
    unsigned
    alignByte()
    {
        unsigned pad = (8 - bitPos_) & 7;
        for (unsigned i = 0; i < pad; ++i)
            putBit(0);
        return pad;
    }

    /** Total number of bits written so far. */
    size_t bitSize() const { return bytes_.size() * 8 - ((8 - bitPos_) & 7); }

    /** Byte size (including any partially filled trailing byte). */
    size_t byteSize() const { return bytes_.size(); }

    /** True when the stream currently ends on a byte boundary. */
    bool byteAligned() const { return bitPos_ == 0; }

    /** The accumulated bytes. The final byte is zero-padded. */
    const std::vector<u8> &bytes() const { return bytes_; }

    /** Moves the accumulated bytes out and resets the writer. */
    std::vector<u8>
    take()
    {
        bitPos_ = 0;
        return std::move(bytes_);
    }

  private:
    std::vector<u8> bytes_;
    unsigned bitPos_ = 0; // 0..7, next bit position within bytes_.back()
};

/** Reads variable-width bit fields from a byte span, MSB first. */
class BitReader
{
  public:
    /**
     * @param data backing bytes (not owned; must outlive the reader)
     * @param size number of valid bytes at @p data
     */
    BitReader(const u8 *data, size_t size) : data_(data), bitCount_(size * 8)
    {}

    explicit BitReader(const std::vector<u8> &bytes)
        : BitReader(bytes.data(), bytes.size())
    {}

    /** Reads @p width bits as an unsigned value. */
    u32
    get(unsigned width)
    {
        cps_assert(width <= 32, "bit width out of range");
        cps_assert(width <= remaining(), "bitstream underrun");
        u32 out = extract(cursor_, width);
        cursor_ += width;
        return out;
    }

    /**
     * Checked read for untrusted input: reads @p width bits into
     * @p out. On underrun (or a width above 32) returns false and
     * leaves the cursor where it was, so the caller can report the
     * exact failing bit offset via bitPos().
     */
    [[nodiscard]] bool
    tryRead(unsigned width, u32 &out)
    {
        if (width > 32 || width > remaining())
            return false;
        out = get(width);
        return true;
    }

    /** Reads a single bit. */
    unsigned
    getBit()
    {
        cps_assert(cursor_ < bitCount_, "bitstream underrun");
        unsigned byte = static_cast<unsigned>(cursor_ >> 3);
        unsigned bit = 7 - static_cast<unsigned>(cursor_ & 7);
        ++cursor_;
        return (data_[byte] >> bit) & 1u;
    }

    /** Peeks @p width bits without consuming them (must be available). */
    u32
    peek(unsigned width)
    {
        cps_assert(width <= 32, "bit width out of range");
        cps_assert(width <= remaining(), "bitstream underrun");
        return extract(cursor_, width);
    }

    /**
     * Peeks @p width bits without consuming them; bits beyond the end of
     * the stream read as zero. This is the single-pass decode-LUT probe:
     * the decoder peeks the longest possible codeword unconditionally and
     * only afterwards checks the resolved length against remaining().
     */
    u32
    peekPadded(unsigned width)
    {
        cps_assert(width <= 32, "bit width out of range");
        if (cursor_ >= bitCount_)
            return 0;
        return extract(cursor_, width);
    }

    /** Skips @p width bits (they must be available). */
    void
    skip(unsigned width)
    {
        cps_assert(width <= remaining(), "bitstream underrun");
        cursor_ += width;
    }

    /**
     * Skips @p width bits when available; returns false (cursor
     * unmoved) on underrun. The check-and-consume step of LUT-resolved
     * codewords, fused so the decode loop pays one compare.
     */
    [[nodiscard]] bool
    trySkip(unsigned width)
    {
        if (width > remaining())
            return false;
        cursor_ += width;
        return true;
    }

    /** Skips forward to the next byte boundary. */
    void skipToByte() { cursor_ = (cursor_ + 7) & ~static_cast<size_t>(7); }

    /**
     * Repositions the read cursor to an absolute bit offset. An offset
     * beyond the end of the stream is rejected (the cursor does not
     * move) rather than asserted: seek targets come from index tables,
     * which are untrusted input.
     * @return false when @p bit_offset is out of range
     */
    [[nodiscard]] bool
    seekBit(size_t bit_offset)
    {
        if (bit_offset > bitCount_)
            return false;
        cursor_ = bit_offset;
        return true;
    }

    /** Absolute bit offset of the next bit to be read. */
    size_t bitPos() const { return cursor_; }

    /** Number of bits remaining. */
    size_t bitsLeft() const { return bitCount_ - cursor_; }

    /** Number of bits remaining (alias for the decode-path idiom). */
    size_t remaining() const { return bitsLeft(); }

  private:
    /**
     * Extracts @p width bits starting at absolute bit @p bit from a
     * cached 64-bit big-endian window anchored at byte windowByte_. The
     * window is only refilled when the requested field is not fully
     * inside it (or lies before it, after a backward seek); a refill
     * anchors the window at the field's first byte, so the in-window
     * offset is at most 7 and one 8-byte load always covers a field of
     * up to 32 bits. Consecutive reads therefore share one load for
     * ~32+ bits of stream instead of refilling per symbol. Bits beyond
     * the end of the stream read as zero.
     */
    u32
    extract(size_t bit, unsigned width)
    {
        if (width == 0)
            return 0;
        size_t byte = bit >> 3;
        if (byte < windowByte_ ||
            bit + width > (windowByte_ << 3) + 64) {
            window_ = loadWindow(byte);
            windowByte_ = byte;
        }
        unsigned off = static_cast<unsigned>(bit - (windowByte_ << 3));
        return static_cast<u32>((window_ << off) >> (64 - width));
    }

    /** Loads 8 bytes at @p byte as a big-endian word, zero-padded. */
    u64
    loadWindow(size_t byte) const
    {
        size_t bytes = (bitCount_ + 7) / 8;
        u64 w = 0;
        if (byte + 8 <= bytes) {
            std::memcpy(&w, data_ + byte, 8);
            if constexpr (std::endian::native == std::endian::little)
                w = __builtin_bswap64(w);
        } else {
            for (size_t i = 0; byte + i < bytes && i < 8; ++i)
                w |= static_cast<u64>(data_[byte + i]) << (56 - 8 * i);
        }
        return w;
    }

    const u8 *data_;
    size_t bitCount_;
    size_t cursor_ = 0;
    u64 window_ = 0;
    size_t windowByte_ = static_cast<size_t>(-1); ///< byte window_ covers
};

} // namespace cps

#endif // CPS_COMMON_BITSTREAM_HH
