/**
 * @file
 * The CodePack instruction-fetch path: an I-cache whose misses are
 * serviced by the cycle-level decompressor model instead of a plain
 * burst read. There is no critical-word-first (decode is serial), but
 * the decompressor's 16-instruction output buffer acts as a prefetch of
 * the block's other cache line (paper §3.2).
 */

#ifndef CPS_SIM_CODEPACK_FETCH_HH
#define CPS_SIM_CODEPACK_FETCH_HH

#include "codepack/timing.hh"
#include "pipeline/paths.hh"

namespace cps
{

/** Fetch path whose miss handler is the CodePack decompressor. */
class CodePackFetchPath : public CachedFetchPath
{
  public:
    CodePackFetchPath(const CacheConfig &icache_cfg,
                      const codepack::CompressedImage &img, MainMemory &mem,
                      const codepack::DecompressorConfig &dcfg,
                      StatSet &stats)
        : CachedFetchPath(icache_cfg, stats),
          model_(img, mem, dcfg, stats)
    {}

    codepack::DecompressorModel &model() { return model_; }

  protected:
    std::array<Cycle, 8>
    fillLine(Addr addr, Cycle now) override
    {
        codepack::LineFill fill = model_.handleMiss(addr & ~31u, now);
        return fill.wordReady;
    }

    void resetMissPath() override { model_.reset(); }

  private:
    codepack::DecompressorModel model_;
};

} // namespace cps

#endif // CPS_SIM_CODEPACK_FETCH_HH
