#include "decompressor.hh"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/bitstream.hh"
#include "common/logging.hh"

namespace cps
{
namespace codepack
{

DecodeKernel
defaultDecodeKernel()
{
    static const DecodeKernel kernel = [] {
        const char *env = std::getenv("CPS_DECODE_KERNEL");
        if (!env || !*env)
            return DecodeKernel::Lut2;
        std::string v(env);
        if (v == "checked")
            return DecodeKernel::Checked;
        if (v == "lut")
            return DecodeKernel::Lut;
        if (v == "lut2")
            return DecodeKernel::Lut2;
        envWarnOnce("CPS_DECODE_KERNEL", env, "checked|lut|lut2");
        return DecodeKernel::Lut2;
    }();
    return kernel;
}

const char *
decodeKernelName(DecodeKernel kernel)
{
    switch (kernel) {
      case DecodeKernel::Checked:
        return "checked";
      case DecodeKernel::Lut:
        return "lut";
      case DecodeKernel::Lut2:
        return "lut2";
    }
    return "?";
}

Result<DecodedBlock>
Decompressor::tryDecompressBlock(u32 group, u32 block) const
{
    if (group >= img_.numGroups())
        return decodeErrorAtByte(DecodeStatus::RangeError, 0,
                                 "group %u block %u: group out of range "
                                 "(image has %u groups)",
                                 group, block, img_.numGroups());
    if (block >= kBlocksPerGroup)
        return decodeErrorAtByte(DecodeStatus::RangeError, 0,
                                 "group %u block %u: block out of range "
                                 "(groups hold %u blocks)",
                                 group, block, kBlocksPerGroup);

    u32 entry = img_.indexTable[group];
    DecodedBlock out;
    u32 first = idxFirstOffset(entry);
    if (block == 0) {
        out.byteOffset = first;
        out.raw = idxFirstRaw(entry);
        out.byteLen = idxSecondOffset(entry);
        // A raw first block always occupies exactly 64 bytes.
        if (out.raw)
            out.byteLen = kRawBlockBytes;
    } else {
        out.byteOffset = first + idxSecondOffset(entry);
        out.raw = idxSecondRaw(entry);
        // The second block's length is not in the index entry; the
        // hardware just decodes 16 instructions. We recover the length
        // from decoding below (raw blocks are fixed-size).
        out.byteLen = out.raw ? kRawBlockBytes : 0;
    }

    if (out.byteOffset > img_.bytes.size())
        return decodeErrorAtByte(
            DecodeStatus::RangeError, out.byteOffset,
            "group %u block %u offset %u beyond compressed region "
            "(%zu bytes)",
            group, block, out.byteOffset, img_.bytes.size());

    if (out.raw) {
        if (out.byteOffset + kRawBlockBytes > img_.bytes.size())
            return decodeErrorAtByte(
                DecodeStatus::Truncated, out.byteOffset,
                "group %u block %u raw extent [%u, %u) beyond "
                "compressed region (%zu bytes)",
                group, block, out.byteOffset,
                out.byteOffset + kRawBlockBytes, img_.bytes.size());
        const u8 *p = img_.bytes.data() + out.byteOffset;
        for (unsigned i = 0; i < kBlockInsns; ++i) {
            out.words[i] = static_cast<u32>(p[i * 4]) |
                           (static_cast<u32>(p[i * 4 + 1]) << 8) |
                           (static_cast<u32>(p[i * 4 + 2]) << 16) |
                           (static_cast<u32>(p[i * 4 + 3]) << 24);
            out.endBit[i] = (i + 1) * 32;
        }
        return out;
    }

    BitReader br(img_.bytes.data() + out.byteOffset,
                 img_.bytes.size() - out.byteOffset);
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        Result<u16> hi = img_.highDict.tryRead(br);
        if (!hi) {
            DecodeError err = hi.error();
            err.bitOffset += u64{out.byteOffset} * 8;
            err.message = strfmt("group %u block %u insn %u: %s", group,
                                 block, i, err.message.c_str());
            return err;
        }
        Result<u16> lo = img_.lowDict.tryRead(br);
        if (!lo) {
            DecodeError err = lo.error();
            err.bitOffset += u64{out.byteOffset} * 8;
            err.message = strfmt("group %u block %u insn %u: %s", group,
                                 block, i, err.message.c_str());
            return err;
        }
        out.words[i] = (static_cast<u32>(*hi) << 16) | *lo;
        out.endBit[i] = static_cast<u32>(br.bitPos());
    }
    u32 used_bytes = static_cast<u32>((br.bitPos() + 7) / 8);
    if (block == 0) {
        // Cross-check: the index entry's second-block offset doubles as
        // the first block's length. A disagreement means either the
        // entry or the stream is corrupt.
        if (out.byteLen != used_bytes)
            return decodeErrorAtByte(
                DecodeStatus::Malformed,
                u64{out.byteOffset} + used_bytes,
                "group %u block 0: index entry says first block is "
                "%u bytes but decode consumed %u",
                group, out.byteLen, used_bytes);
    } else {
        out.byteLen = used_bytes;
    }
    return out;
}

bool
Decompressor::frameFastBlock(u32 group, u32 block, DecodedBlock &out,
                             bool &done) const
{
    done = false;
    if (group >= img_.numGroups() || block >= kBlocksPerGroup)
        return false;

    u32 entry = img_.indexTable[group];
    u32 first = idxFirstOffset(entry);
    if (block == 0) {
        out.byteOffset = first;
        out.raw = idxFirstRaw(entry);
        out.byteLen = out.raw ? kRawBlockBytes : idxSecondOffset(entry);
    } else {
        out.byteOffset = first + idxSecondOffset(entry);
        out.raw = idxSecondRaw(entry);
        out.byteLen = out.raw ? kRawBlockBytes : 0;
    }
    if (out.byteOffset > img_.bytes.size())
        return false;

    if (out.raw) {
        if (out.byteOffset + kRawBlockBytes > img_.bytes.size())
            return false;
        const u8 *p = img_.bytes.data() + out.byteOffset;
        for (unsigned i = 0; i < kBlockInsns; ++i) {
            u32 w;
            std::memcpy(&w, p + i * 4, 4);
            if constexpr (std::endian::native == std::endian::big)
                w = __builtin_bswap32(w);
            out.words[i] = w;
            out.endBit[i] = (i + 1) * 32;
        }
        done = true;
    }
    return true;
}

bool
Decompressor::fastDecompressBlock(u32 group, u32 block,
                                  DecodedBlock &out) const
{
    bool done = false;
    if (!frameFastBlock(group, block, out, done))
        return false;
    if (done)
        return true;

    BitReader br(img_.bytes.data() + out.byteOffset,
                 img_.bytes.size() - out.byteOffset);
    constexpr unsigned kLut = Dictionary::kLutBits;
    const u32 *hlut = img_.highDict.lutData();
    const u32 *llut = img_.lowDict.lutData();
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        // Fused probe: one peek covers both halfword codewords (the
        // high codeword is at most kLut bits, so the low probe always
        // fits inside a 2*kLut-bit window). Raw escapes, unpopulated
        // indexes and end-of-stream truncation drop to the per-symbol
        // readFast path, which re-peeks from the same position.
        u32 bits = br.peekPadded(2 * kLut);
        u32 eh = hlut[bits >> kLut];
        if (Dictionary::lutIsValue(eh)) {
            unsigned lh = Dictionary::lutLen(eh);
            u32 el = llut[(bits >> (kLut - lh)) & ((1u << kLut) - 1)];
            if (Dictionary::lutIsValue(el)) {
                unsigned ll = Dictionary::lutLen(el);
                if (br.trySkip(lh + ll)) {
                    out.words[i] =
                        (static_cast<u32>(Dictionary::lutValue(eh))
                         << 16) |
                        Dictionary::lutValue(el);
                    out.endBit[i] = static_cast<u32>(br.bitPos());
                    continue;
                }
            }
        }
        u16 hi, lo;
        if (!img_.highDict.readFast(br, hi) ||
            !img_.lowDict.readFast(br, lo))
            return false;
        out.words[i] = (static_cast<u32>(hi) << 16) | lo;
        out.endBit[i] = static_cast<u32>(br.bitPos());
    }
    u32 used_bytes = static_cast<u32>((br.bitPos() + 7) / 8);
    if (block == 0) {
        if (out.byteLen != used_bytes)
            return false; // index/stream disagreement
    } else {
        out.byteLen = used_bytes;
    }
    return true;
}

bool
Decompressor::fastDecompressBlock2(u32 group, u32 block,
                                   DecodedBlock &out) const
{
    bool done = false;
    if (!frameFastBlock(group, block, out, done))
        return false;
    if (done)
        return true;

    // The batched kernel holds the bitstream in a register-resident
    // 64-bit window (next bits MSB-aligned in `buf`, `have` of them
    // valid, low bits zero) instead of going through BitReader: every
    // instruction needs at most 19 + 19 bits, and the refill keeps
    // >= 56 valid while bytes remain, so a whole instruction — pair
    // probe, low probe, even both raw literals — always resolves from
    // the window without a reload in between.
    const u8 *p = img_.bytes.data() + out.byteOffset;
    const size_t byte_count = img_.bytes.size() - out.byteOffset;
    u64 buf = 0;
    unsigned have = 0;
    size_t next_byte = 0;
    u32 used = 0;
    auto refill = [&] {
        if (next_byte + 8 <= byte_count) {
            // Branch-light top-up: append the next 8 bytes below the
            // valid bits and advance by the whole bytes that fit; the
            // fractional-byte overlap re-ORs identical bits next time.
            u64 w;
            std::memcpy(&w, p + next_byte, 8);
            if constexpr (std::endian::native == std::endian::little)
                w = __builtin_bswap64(w);
            buf |= w >> have;
            next_byte += (63 - have) >> 3;
            have |= 56;
        } else {
            while (have <= 56 && next_byte < byte_count) {
                buf |= u64{p[next_byte++]} << (56 - have);
                have += 8;
            }
        }
    };

    constexpr unsigned kLut = Dictionary::kLutBits;
    constexpr unsigned kRawLen = 3 + kRawLiteralBits;
    constexpr unsigned kMaxInsnBits = 2 * kRawLen;
    // The four possible non-raw high codeword lengths, fixed by the
    // bank layout. The low-LUT probe index depends on how many bits
    // the high codeword consumed, which arrives only after the pair
    // probe's load resolves; probing speculatively at all four
    // lengths keeps those loads independent of the pair load, so the
    // resolved high length picks a ready value (a short cmov chain)
    // instead of starting a second dependent load.
    constexpr unsigned kHL0 = kHighBanks[0].codeBits();
    constexpr unsigned kHL1 = kHighBanks[1].codeBits();
    constexpr unsigned kHL2 = kHighBanks[2].codeBits();
    constexpr unsigned kHL3 = kHighBanks[3].codeBits();
    const u64 *pair = pair_.data();
    const u32 *hlut = img_.highDict.lutData();
    const u32 *llut = img_.lowDict.lutData();
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        // Top up only once the window can no longer cover a worst-case
        // (double-raw) instruction: typical codewords run ~11 bits, so
        // the 8-byte load amortizes over several instructions.
        if (have < kMaxInsnBits)
            refill();
        // The top PairLut::kBits window bits probe the fused pair
        // table; escape slots are the all-zero word, so the populated
        // (1- or 2-symbol) fast path branches on a plain truth test.
        u64 e = pair[static_cast<u32>(buf >> (64 - PairLut::kBits))];
        u32 word;
        unsigned need;
        if (e != 0) [[likely]] {
            u32 el0 =
                llut[static_cast<u32>((buf << kHL0) >> (64 - kLut))];
            u32 el1 =
                llut[static_cast<u32>((buf << kHL1) >> (64 - kLut))];
            u32 el2 =
                llut[static_cast<u32>((buf << kHL2) >> (64 - kLut))];
            u32 el3 =
                llut[static_cast<u32>((buf << kHL3) >> (64 - kLut))];
            need = PairLut::lenBits(e);
            if (PairLut::symbols(e) == 2) {
                word = PairLut::word(e);
            } else {
                unsigned lh = need;
                u32 el = lh == kHL0   ? el0
                         : lh == kHL1 ? el1
                         : lh == kHL2 ? el2
                                      : el3;
                u32 hi16 = static_cast<u32>(PairLut::highHalf(e))
                           << 16;
                if (Dictionary::lutIsValue(el)) [[likely]] {
                    word = hi16 | Dictionary::lutValue(el);
                    need = lh + Dictionary::lutLen(el);
                } else if (Dictionary::lutIsRaw(el)) {
                    word = hi16 |
                           static_cast<u16>((buf << (lh + 3)) >> 48);
                    need = lh + kRawLen;
                } else {
                    return false;
                }
            }
        } else {
            // Escape slot: a raw high halfword decodes inline from
            // the window; an unpopulated index goes to the checked
            // path for its diagnostic.
            u32 wh = static_cast<u32>(buf >> (64 - kLut));
            if (!Dictionary::lutIsRaw(hlut[wh]))
                return false;
            u32 hi16 =
                static_cast<u32>((buf << 3) >> 48) << 16;
            u32 el = llut[static_cast<u32>((buf << kRawLen) >>
                                           (64 - kLut))];
            if (Dictionary::lutIsValue(el)) {
                word = hi16 | Dictionary::lutValue(el);
                need = kRawLen + Dictionary::lutLen(el);
            } else if (Dictionary::lutIsRaw(el)) {
                word = hi16 | static_cast<u16>(
                                  (buf << (kRawLen + 3)) >> 48);
                need = 2 * kRawLen;
            } else {
                return false;
            }
        }
        if (need > have)
            return false; // truncated: the checked path names the bit
        buf <<= need;
        have -= need;
        used += need;
        out.words[i] = word;
        out.endBit[i] = used;
    }
    u32 used_bytes = (used + 7) / 8;
    if (block == 0) {
        if (out.byteLen != used_bytes)
            return false; // index/stream disagreement
    } else {
        out.byteLen = used_bytes;
    }
    return true;
}

namespace
{

/**
 * Interleaved register-buffer decode of @p W independent block
 * bitstreams. Each lane carries the same state as the single-block
 * fast kernel (64-bit MSB-aligned window, valid-bit count, byte
 * cursor); the lanes' load chains (bit window -> high-LUT probe ->
 * low-LUT probe -> window advance) are serial within a lane but
 * independent across lanes, so the round-robin loop keeps W chains in
 * flight and the per-block latency approaches 1/W of the solo kernel.
 * Lanes probe the per-dictionary LUTs rather than the PairLut: two 8
 * KiB tables stay L1-resident under W-way pressure where the 32 KiB
 * pair table does not, and measured throughput favors them.
 *
 * Preconditions (enforced by the caller): all W blocks framed, none
 * raw. Returns false when any lane hits a pattern the checked decoder
 * owns (unpopulated index, truncation, length cross-check failure).
 */
template <unsigned W>
bool
decodeInterleaved(const CompressedImage &img, DecodedBlock *outs,
                  const bool *is_first)
{
    constexpr unsigned kLut = Dictionary::kLutBits;
    constexpr unsigned kRawLen = 3 + kRawLiteralBits;
    const u32 *hlut = img.highDict.lutData();
    const u32 *llut = img.lowDict.lutData();
    const u8 *base = img.bytes.data();
    const size_t total = img.bytes.size();

    const u8 *p[W];
    size_t cnt[W], next_byte[W];
    u64 buf[W];
    unsigned have[W];
    u32 used[W];
    for (unsigned w = 0; w < W; ++w) {
        p[w] = base + outs[w].byteOffset;
        cnt[w] = total - outs[w].byteOffset;
        next_byte[w] = 0;
        buf[w] = 0;
        have[w] = 0;
        used[w] = 0;
    }
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        for (unsigned w = 0; w < W; ++w) {
            if (next_byte[w] + 8 <= cnt[w]) {
                u64 x;
                std::memcpy(&x, p[w] + next_byte[w], 8);
                if constexpr (std::endian::native ==
                              std::endian::little)
                    x = __builtin_bswap64(x);
                buf[w] |= x >> have[w];
                next_byte[w] += (63 - have[w]) >> 3;
                have[w] |= 56;
            } else {
                while (have[w] <= 56 && next_byte[w] < cnt[w]) {
                    buf[w] |= u64{p[w][next_byte[w]++]}
                              << (56 - have[w]);
                    have[w] += 8;
                }
            }
            u64 b = buf[w];
            u32 eh = hlut[static_cast<u32>(b >> (64 - kLut))];
            u16 hi;
            unsigned lh;
            if (Dictionary::lutIsValue(eh)) [[likely]] {
                hi = Dictionary::lutValue(eh);
                lh = Dictionary::lutLen(eh);
            } else if (Dictionary::lutIsRaw(eh)) {
                hi = static_cast<u16>((b << 3) >> 48);
                lh = kRawLen;
            } else {
                return false;
            }
            u32 el = llut[static_cast<u32>((b << lh) >> (64 - kLut))];
            u16 lo;
            unsigned ll;
            if (Dictionary::lutIsValue(el)) [[likely]] {
                lo = Dictionary::lutValue(el);
                ll = Dictionary::lutLen(el);
            } else if (Dictionary::lutIsRaw(el)) {
                lo = static_cast<u16>((b << (lh + 3)) >> 48);
                ll = kRawLen;
            } else {
                return false;
            }
            unsigned need = lh + ll;
            if (need > have[w])
                return false;
            buf[w] = b << need;
            have[w] -= need;
            used[w] += need;
            outs[w].words[i] = (static_cast<u32>(hi) << 16) | lo;
            outs[w].endBit[i] = used[w];
        }
    }
    for (unsigned w = 0; w < W; ++w) {
        u32 used_bytes = (used[w] + 7) / 8;
        if (is_first[w]) {
            if (outs[w].byteLen != used_bytes)
                return false; // index/stream disagreement
        } else {
            outs[w].byteLen = used_bytes;
        }
    }
    return true;
}

} // namespace

bool
Decompressor::fastDecodeBatch(u32 first, unsigned width,
                              DecodedBlock *outs) const
{
    bool is_first[4];
    for (unsigned w = 0; w < width; ++w) {
        u32 flat = first + w;
        bool done = false;
        if (!frameFastBlock(flat / kBlocksPerGroup,
                            flat % kBlocksPerGroup, outs[w], done))
            return false;
        if (done)
            return false; // raw block: the per-block path handles it
        is_first[w] = flat % kBlocksPerGroup == 0;
    }
    switch (width) {
      case 2:
        return decodeInterleaved<2>(img_, outs, is_first);
      case 4:
        return decodeInterleaved<4>(img_, outs, is_first);
    }
    return false;
}

void
Decompressor::decompressBlocks(u32 first, u32 count,
                               DecodedBlock *outs) const
{
    auto solo = [&](u32 at, u32 n) {
        for (u32 w = 0; w < n; ++w)
            outs[at + w] = decompressFlatBlock(first + at + w);
    };
    u32 i = 0;
    if (kernel_ == DecodeKernel::Lut2) {
        for (; i + 4 <= count; i += 4)
            if (!fastDecodeBatch(first + i, 4, outs + i))
                solo(i, 4); // raw block or checked-path decline
        if (i + 2 <= count) {
            if (!fastDecodeBatch(first + i, 2, outs + i))
                solo(i, 2);
            i += 2;
        }
    }
    solo(i, count - i);
}

DecodedBlock
Decompressor::decompressBlock(u32 group, u32 block) const
{
    DecodedBlock out;
    switch (kernel_) {
      case DecodeKernel::Lut2:
        if (fastDecompressBlock2(group, block, out))
            return out;
        break;
      case DecodeKernel::Lut:
        if (fastDecompressBlock(group, block, out))
            return out;
        break;
      case DecodeKernel::Checked:
        break;
    }
    // The fast kernel bailed (or was never selected): decode through
    // the checked bit-serial reference path. Trusted path: the image
    // was produced in-process, so a decode failure here is a simulator
    // bug, not bad input — panic with the checked diagnostic.
    Result<DecodedBlock> r = tryDecompressBlock(group, block);
    if (!r)
        cps_panic("decompressBlock on corrupt image: %s",
                  r.error().describe().c_str());
    return *r;
}

std::vector<u32>
Decompressor::decompressAll() const
{
    std::vector<u32> out;
    out.reserve(img_.paddedInsns);
    for (u32 g = 0; g < img_.numGroups(); ++g) {
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            DecodedBlock blk = decompressBlock(g, b);
            out.insert(out.end(), blk.words.begin(), blk.words.end());
        }
    }
    out.resize(img_.origTextBytes / 4); // drop the NOP padding
    return out;
}

Result<std::vector<u32>>
Decompressor::tryDecompressAll() const
{
    Result<void> valid = validateImage(img_);
    if (!valid)
        return valid.error();
    std::vector<u32> out;
    out.reserve(img_.paddedInsns);
    for (u32 g = 0; g < img_.numGroups(); ++g) {
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            Result<DecodedBlock> blk = tryDecompressBlock(g, b);
            if (!blk)
                return blk.error();
            out.insert(out.end(), blk->words.begin(), blk->words.end());
        }
    }
    out.resize(img_.origTextBytes / 4); // drop the NOP padding
    return out;
}

unsigned
defaultBlockCacheSlots()
{
    const char *env = std::getenv("CPS_BLOCK_CACHE_SLOTS");
    if (!env || !*env)
        return 64;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (!end || *end || v < 1 || v > (1 << 20)) {
        envWarnOnce("CPS_BLOCK_CACHE_SLOTS", env, "a positive integer");
        return 64;
    }
    return static_cast<unsigned>(v);
}

BlockCache::BlockCache(const Decompressor &decomp, unsigned slots)
    : decomp_(decomp)
{
    if (slots == 0)
        slots = defaultBlockCacheSlots();
    unsigned n = 1;
    while (n < slots)
        n <<= 1;
    slots_.resize(n);
    mask_ = n - 1;
}

const DecodedBlock &
BlockCache::get(u32 group, u32 block)
{
    u32 flat = group * kBlocksPerGroup + block;
    Slot &slot = slots_[flat & mask_];
    if (slot.flat == flat) {
        ++hits_;
        return slot.blk;
    }
    slot.blk = decomp_.decompressBlock(group, block);
    slot.flat = flat;
    ++fills_;
    return slot.blk;
}

Result<void>
validateImage(const CompressedImage &img)
{
    if (img.paddedInsns % kGroupInsns != 0)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "paddedInsns %u is not a multiple of "
                                 "the group size %u",
                                 img.paddedInsns, kGroupInsns);
    u32 groups = img.paddedInsns / kGroupInsns;
    if (img.numGroups() != groups)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "index table has %u entries for %u "
                                 "groups",
                                 img.numGroups(), groups);
    if (!img.blocks.empty() &&
        img.blocks.size() != size_t{groups} * kBlocksPerGroup)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "%zu block extents for %u groups",
                                 img.blocks.size(), groups);
    if (img.origTextBytes % 4 != 0 ||
        img.origTextBytes > u64{img.paddedInsns} * 4)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "origTextBytes %u inconsistent with "
                                 "%u padded instructions",
                                 img.origTextBytes, img.paddedInsns);
    if (img.textBase % 4 != 0)
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "text base 0x%x is not word aligned",
                                 img.textBase);

    for (u32 g = 0; g < groups; ++g) {
        u32 entry = img.indexTable[g];
        u64 first = idxFirstOffset(entry);
        u64 second = first + idxSecondOffset(entry);
        if (first > img.bytes.size() || second > img.bytes.size())
            return decodeErrorAtByte(
                DecodeStatus::RangeError, first,
                "index entry %u points beyond the compressed region "
                "(%zu bytes)",
                g, img.bytes.size());
    }
    for (size_t i = 0; i < img.blocks.size(); ++i) {
        const BlockExtent &b = img.blocks[i];
        if (u64{b.byteOffset} + b.byteLen > img.bytes.size())
            return decodeErrorAtByte(
                DecodeStatus::RangeError, b.byteOffset,
                "block extent %zu [%u, %u) beyond the compressed "
                "region (%zu bytes)",
                i, b.byteOffset, b.byteOffset + b.byteLen,
                img.bytes.size());
    }

    // Protection annex consistency: every block and index entry owns
    // exactly the check bytes its kind dictates, and the offset table
    // matches the extents it was derived from.
    if (img.isProtected()) {
        std::vector<u32> off = blockCheckOffsets(img.protectKind,
                                                 img.blocks);
        if (img.blockCheckOff != off ||
            img.blockCheck.size() != off.back())
            return decodeErrorAtByte(
                DecodeStatus::BadHeader, 0,
                "%s block-check array (%zu bytes) inconsistent with "
                "the block extents (%u expected)",
                protectKindName(img.protectKind), img.blockCheck.size(),
                off.back());
        if (img.indexCheck.size() !=
            img.indexTable.size() * indexCheckBytes(img.protectKind))
            return decodeErrorAtByte(
                DecodeStatus::BadHeader, 0,
                "%s index-check array (%zu bytes) inconsistent with "
                "%u index entries",
                protectKindName(img.protectKind), img.indexCheck.size(),
                img.numGroups());
    } else if (!img.blockCheck.empty() || !img.indexCheck.empty()) {
        return decodeErrorAtByte(DecodeStatus::BadHeader, 0,
                                 "check arrays present on an "
                                 "unprotected image");
    }
    return {};
}

} // namespace codepack
} // namespace cps
