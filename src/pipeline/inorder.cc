#include "inorder.hh"

#include <algorithm>
#include <array>

namespace cps
{

InOrderPipeline::InOrderPipeline(const PipelineConfig &cfg, TraceSource &src,
                                 FetchPath &fetch, DataPath &data,
                                 StatSet &stats)
    : cfg_(cfg), src_(src), fetch_(fetch), data_(data),
      frontend_(cfg.predictor, stats),
      statInsns_(stats.scalar("pipeline.insns")),
      statCycles_(stats.scalar("pipeline.cycles"))
{}

InOrderPipeline::InOrderPipeline(const PipelineConfig &cfg, Executor &exec,
                                 FetchPath &fetch, DataPath &data,
                                 StatSet &stats)
    : cfg_(cfg), ownedSrc_(std::make_unique<LiveTraceSource>(exec)),
      src_(*ownedSrc_), fetch_(fetch), data_(data),
      frontend_(cfg.predictor, stats),
      statInsns_(stats.scalar("pipeline.insns")),
      statCycles_(stats.scalar("pipeline.cycles"))
{}

RunResult
InOrderPipeline::run(u64 max_insns)
{
    // Result-availability time per unified register (bypass network).
    std::array<Cycle, kNumUnifiedRegs> reg_ready{};
    reg_ready.fill(0);

    Cycle fetch_slot = 0; ///< earliest cycle of the next fetch
    Cycle last_ex = 0;    ///< EX-stage structural hazard horizon
    Cycle end_time = 0;   ///< latest completion seen
    u64 retired = 0;
    bool exited = false;

    // The gate fires at the retired count a serial run of warmupInsns
    // instructions would stop at, so cyclesAtGate equals that shorter
    // run's result exactly (the chunk engine's telescoping identity).
    auto fireGate = [&] {
        gate_->fired = true;
        gate_->cyclesAtGate = end_time;
        gate_->insnsAtGate = retired;
        if (gate_->onGate)
            gate_->onGate();
    };
    if (gate_ && !gate_->fired && gate_->warmupInsns == 0)
        fireGate();

    while (retired < max_insns) {
        if (src_.halted()) {
            exited = true;
            break;
        }
        StepRecord rec = src_.step();
        const InstInfo &info = *rec.info;

        // IF: one instruction per cycle through the I-cache.
        Cycle avail = fetch_.fetchWord(rec.pc, fetch_slot);
        Cycle fetch_done = std::max(fetch_slot, avail);
        fetch_slot = fetch_done + 1;

        // EX: wait for decode (+1), operands, and the EX stage itself.
        Cycle ex = std::max(fetch_done + 2, last_ex + 1);
        auto need = [&](int reg) {
            if (reg != kRegNone)
                ex = std::max(ex, reg_ready[reg]);
        };
        need(info.src1);
        need(info.src2);
        need(info.src3);

        Cycle result_at = ex + info.latency;
        if (info.isMem) {
            Cycle mem_done =
                data_.access(rec.memAddr, info.cls == InstClass::Store,
                             ex + 1);
            if (info.cls == InstClass::Load)
                result_at = mem_done;
            else
                result_at = ex + 1; // store: write buffer absorbs it
        }

        if (info.dest != kRegNone)
            reg_ready[info.dest] = result_at;

        // A multi-cycle EX blocks the single pipe.
        last_ex = ex + (info.latency > 1 ? info.latency - 1 : 0);

        if (info.isControl) {
            ControlOutcome out = frontend_.handleControl(rec);
            if (out.mispredict) {
                // Fetch runs the wrong path until the branch resolves in
                // EX, then restarts the next cycle.
                simulateWrongPath(fetch_, out.wrongPath,
                                  src_.text().base(), src_.text().end(),
                                  fetch_done + 1, ex + 1, 1);
                fetch_slot = std::max(fetch_slot,
                                      ex + 1 + cfg_.mispredictExtra);
            } else if (out.minorBubble) {
                // Target produced by decode: one lost fetch slot.
                fetch_slot = std::max(fetch_slot, fetch_done + 2);
            } else if (rec.taken) {
                // Correctly predicted taken: fetch continues at the
                // target next cycle (no penalty beyond the slot shift).
                fetch_slot = std::max(fetch_slot, fetch_done + 1);
            }
        }

        if (info.cls == InstClass::Syscall) {
            // Syscalls serialise the pipe.
            fetch_slot = std::max(fetch_slot, result_at + 1);
        }

        if (trace_) {
            PipeTraceEntry entry;
            entry.pc = rec.pc;
            entry.inst = *rec.inst;
            entry.fetchDone = fetch_done;
            entry.execute = ex;
            entry.resultAt = result_at;
            trace_->push_back(entry);
        }

        end_time = std::max({end_time, result_at, fetch_done + 4});
        ++retired;
        if (gate_ && !gate_->fired && retired >= gate_->warmupInsns)
            fireGate();
        if (rec.halted)
            exited = true;
    }

    RunResult res;
    res.instructions = retired;
    res.cycles = end_time;
    res.programExited = exited;
    statInsns_.set(retired);
    statCycles_.set(end_time);
    return res;
}

} // namespace cps
