/**
 * @file
 * Reproduces Table 8: speedup over native from widening the decoder
 * alone (1 = baseline, 2, and 16 decompressors per cycle; 16 is the
 * fastest possible since a block holds 16 instructions).
 *
 * Paper shape: most of the available benefit arrives with just 2
 * decoders; 16 adds almost nothing (fetch dominates decode).
 */

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    TextTable t;
    t.setTitle("Table 8: Speedup due to decompression rate "
               "(over native, 4-issue)");
    t.addHeader({"Bench", "CodePack (1)", "2 decoders", "16 decoders"});

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        m.add(bench, baseline4Issue(), insns);
        for (unsigned rate : {1u, 2u, 16u}) {
            MachineConfig cfg = baseline4Issue();
            cfg.codeModel = CodeModel::CodePackCustom;
            cfg.decomp = codepack::DecompressorConfig{}; // baseline idx
            cfg.decomp.decodeRate = rate;
            m.add(bench, cfg, insns);
        }
    }
    m.run();

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };
    for (const std::string &name : suite.names()) {
        harness::CellOutcome native = m.nextCell();
        std::vector<std::string> row{name};
        for (size_t i = 0; i < 3; ++i)
            row.push_back(harness::fmtCells(native, m.nextCell(), fmtSpd));
        t.addRow(row);
    }
    t.print();
    return m.exitSummary();
}
