/**
 * @file
 * Pipeline configuration mirroring the paper's Table 2.
 */

#ifndef CPS_PIPELINE_CONFIG_HH
#define CPS_PIPELINE_CONFIG_HH

#include <functional>
#include <string>

#include "common/types.hh"

namespace cps
{

/** Which Table 2 direction predictor to instantiate. */
enum class PredictorKind
{
    Bimodal2k,   ///< 1-issue: bimodal, 2048 entries
    Gshare14,    ///< 4-issue: gshare, 14-bit history
    Hybrid1k,    ///< 8-issue: hybrid, 1024-entry meta table
};

/** Machine-width and resource parameters (Table 2). */
struct PipelineConfig
{
    bool inOrder = false;
    unsigned width = 4;        ///< fetch/decode/issue/commit width
    unsigned fetchQueue = 8;   ///< fetch-queue entries
    unsigned ruuSize = 64;     ///< register update unit entries
    unsigned lsqSize = 32;     ///< load/store queue entries

    unsigned numAlu = 4;
    unsigned numMult = 1;      ///< integer multiply/divide units
    unsigned numMemPorts = 2;
    unsigned numFpAlu = 4;
    unsigned numFpMult = 1;    ///< FP multiply/divide units

    PredictorKind predictor = PredictorKind::Gshare14;

    /**
     * Extra cycles of front-end refill charged on a full misprediction
     * (fetch redirect + decode refill in a 5+-stage front end).
     */
    unsigned mispredictExtra = 2;

    /**
     * Progress-watchdog heartbeat: loop iterations between checks of
     * the retired-instruction counter. Iteration counts (not wall
     * clock) keep the trip point deterministic at any host speed.
     */
    u64 watchdogInterval = u64{1} << 22;
    /**
     * Consecutive heartbeat checks without a retirement before the run
     * aborts with RunStatus::Stalled instead of spinning forever.
     * 0 disables the watchdog.
     */
    unsigned watchdogStallLimit = 4;
};

/** Whether a timed run completed or was cut short. */
enum class RunStatus : u8
{
    Ok = 0,
    Stalled = 1, ///< the progress watchdog saw no retirement for too long
    /** The decompressor hit an unrecoverable in-memory corruption
     *  (ECC/CRC detected, refetch budget exhausted); cycle counts after
     *  the fault are meaningless and the run must not be trusted. */
    DecodeFault = 2,
};

/** Short stable name for a status ("ok", "stalled", "decode-fault"). */
inline const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok:
        return "ok";
      case RunStatus::Stalled:
        return "stalled";
      case RunStatus::DecodeFault:
        return "decode-fault";
    }
    return "?";
}

/**
 * Warm-up gate for windowed (chunk-parallel) runs. The pipeline fires
 * the gate exactly once, at the moment the warm-up budget of retired
 * instructions is reached: it records the cycle and retired counts at
 * that instant and invokes onGate (the chunk engine snapshots the
 * machine's StatSet there). Everything simulated before the gate is
 * warm-up — caches, predictors, and decompressor state heat up, but the
 * chunk's reported body is the post-gate delta. A warmupInsns of 0
 * fires before the first instruction (cold-start accounting).
 */
struct WarmupGate
{
    u64 warmupInsns = 0;          ///< retirements before counting starts
    std::function<void()> onGate; ///< stat-snapshot hook; may be empty
    Cycle cyclesAtGate = 0;       ///< pipeline cycle metric at the gate
    u64 insnsAtGate = 0;          ///< retired count at the gate
    bool fired = false;
};

/** Result of a timed run. */
struct RunResult
{
    u64 instructions = 0;
    Cycle cycles = 0;
    bool programExited = false;
    RunStatus status = RunStatus::Ok;
    std::string statusDetail; ///< diagnosis when status != Ok

    bool ok() const { return status == RunStatus::Ok; }

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

} // namespace cps

#endif // CPS_PIPELINE_CONFIG_HH
