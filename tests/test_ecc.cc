/**
 * @file
 * Unit tests for the soft-error protection codes (SEC-DED Hamming,
 * CRC-8/16 block checks) and the once-per-process env-knob warning.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/ecc.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace cps
{
namespace
{

/** Scoped environment override, restored on destruction. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            old_ = old;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (old_)
            setenv(name_, old_->c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    std::optional<std::string> old_;
};

TEST(ProtectKind, NamesRoundTrip)
{
    for (unsigned k = 0; k < kNumProtectKinds; ++k) {
        ProtectKind kind = static_cast<ProtectKind>(k);
        ProtectKind parsed;
        ASSERT_TRUE(parseProtectKind(protectKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    ProtectKind parsed;
    EXPECT_TRUE(parseProtectKind("none", parsed));
    EXPECT_EQ(parsed, ProtectKind::None);
    EXPECT_TRUE(parseProtectKind("0", parsed));
    EXPECT_EQ(parsed, ProtectKind::None);
    EXPECT_FALSE(parseProtectKind("hamming", parsed));
    EXPECT_FALSE(parseProtectKind("", parsed));
}

TEST(ProtectKind, DefaultReadsEnvAfresh)
{
    {
        EnvGuard guard("CPS_ECC", nullptr);
        EXPECT_EQ(defaultProtectKind(), ProtectKind::None);
    }
    {
        EnvGuard guard("CPS_ECC", "secded");
        EXPECT_EQ(defaultProtectKind(), ProtectKind::SecDed);
    }
    {
        EnvGuard guard("CPS_ECC", "crc16");
        EXPECT_EQ(defaultProtectKind(), ProtectKind::Crc16);
    }
    {
        // Malformed: warns (once per process) and falls back to None.
        EnvGuard guard("CPS_ECC", "bogus");
        unsigned long before = warnCount();
        EXPECT_EQ(defaultProtectKind(), ProtectKind::None);
        EXPECT_EQ(defaultProtectKind(), ProtectKind::None);
        EXPECT_EQ(warnCount(), before + 1);
    }
}

TEST(EnvWarnOnce, WarnsOncePerName)
{
    unsigned long before = warnCount();
    envWarnOnce("CPS_TEST_KNOB_A", "junk", "an integer");
    envWarnOnce("CPS_TEST_KNOB_A", "junk", "an integer");
    envWarnOnce("CPS_TEST_KNOB_A", "other-junk", "an integer");
    EXPECT_EQ(warnCount(), before + 1);
    envWarnOnce("CPS_TEST_KNOB_B", "junk", "an integer");
    EXPECT_EQ(warnCount(), before + 2);
}

TEST(Crc, KnownVectors)
{
    // CRC-8 poly 0x07 of "123456789" is 0xF4; CRC-16/CCITT-FALSE of the
    // same string is 0x29B1 (the standard check values).
    const u8 msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(crc8(msg, sizeof(msg)), 0xF4);
    EXPECT_EQ(crc16(msg, sizeof(msg)), 0x29B1);
}

TEST(Crc, DetectsEverySingleBitFlip)
{
    Rng rng(1);
    std::vector<u8> data(37);
    for (u8 &b : data)
        b = static_cast<u8>(rng.next());
    const u8 c8 = crc8(data.data(), data.size());
    const u16 c16 = crc16(data.data(), data.size());
    for (size_t bit = 0; bit < data.size() * 8; ++bit) {
        data[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        EXPECT_NE(crc8(data.data(), data.size()), c8) << "bit " << bit;
        EXPECT_NE(crc16(data.data(), data.size()), c16) << "bit " << bit;
        data[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    }
}

TEST(Crc, DetectsAdjacentDoubleFlips)
{
    // The runtime BurstError fault is exactly two adjacent flipped
    // bits; any CRC with (1+x) | poly catches all bursts <= width.
    Rng rng(2);
    std::vector<u8> data(64);
    for (u8 &b : data)
        b = static_cast<u8>(rng.next());
    const u8 c8 = crc8(data.data(), data.size());
    const u16 c16 = crc16(data.data(), data.size());
    for (size_t bit = 0; bit + 1 < data.size() * 8; ++bit) {
        data[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        data[(bit + 1) / 8] ^= static_cast<u8>(1u << ((bit + 1) % 8));
        EXPECT_NE(crc8(data.data(), data.size()), c8) << "bit " << bit;
        EXPECT_NE(crc16(data.data(), data.size()), c16) << "bit " << bit;
        data[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        data[(bit + 1) / 8] ^= static_cast<u8>(1u << ((bit + 1) % 8));
    }
}

TEST(SecDed, CleanWordPasses)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        u64 data = rng.next();
        u8 check = secDedEncode(data);
        u64 got = data;
        u8 c = check;
        EXPECT_EQ(secDedCorrect(got, c), EccOutcome::Clean);
        EXPECT_EQ(got, data);
        EXPECT_EQ(c, check);
    }
}

TEST(SecDed, CorrectsEverySingleDataBit)
{
    Rng rng(4);
    for (int i = 0; i < 32; ++i) {
        u64 data = rng.next();
        u8 check = secDedEncode(data);
        for (unsigned bit = 0; bit < 64; ++bit) {
            u64 got = data ^ (u64{1} << bit);
            u8 c = check;
            EXPECT_EQ(secDedCorrect(got, c), EccOutcome::Corrected);
            EXPECT_EQ(got, data) << "bit " << bit;
            EXPECT_EQ(c, check) << "bit " << bit;
        }
    }
}

TEST(SecDed, CorrectsEverySingleCheckBit)
{
    Rng rng(5);
    for (int i = 0; i < 32; ++i) {
        u64 data = rng.next();
        u8 check = secDedEncode(data);
        for (unsigned bit = 0; bit < 8; ++bit) {
            u64 got = data;
            u8 c = static_cast<u8>(check ^ (1u << bit));
            EXPECT_EQ(secDedCorrect(got, c), EccOutcome::Corrected);
            EXPECT_EQ(got, data) << "check bit " << bit;
            EXPECT_EQ(c, check) << "check bit " << bit;
        }
    }
}

TEST(SecDed, DetectsEveryDoubleBitError)
{
    // The 72-bit codeword has C(72,2) = 2556 double-error patterns;
    // sweep them all for a handful of words. None may be miscorrected
    // back to "Clean" or "Corrected" — that would be silent corruption.
    Rng rng(6);
    for (int i = 0; i < 4; ++i) {
        u64 data = rng.next();
        u8 check = secDedEncode(data);
        for (unsigned a = 0; a < 72; ++a) {
            for (unsigned b = a + 1; b < 72; ++b) {
                u64 got = data;
                u8 c = check;
                if (a < 64)
                    got ^= u64{1} << a;
                else
                    c = static_cast<u8>(c ^ (1u << (a - 64)));
                if (b < 64)
                    got ^= u64{1} << b;
                else
                    c = static_cast<u8>(c ^ (1u << (b - 64)));
                EXPECT_EQ(secDedCorrect(got, c), EccOutcome::Detected)
                    << "bits " << a << "," << b;
            }
        }
    }
}

TEST(BlockCheck, SizesMatchKind)
{
    EXPECT_EQ(blockCheckBytes(ProtectKind::None, 64), 0u);
    EXPECT_EQ(blockCheckBytes(ProtectKind::Crc8, 64), 1u);
    EXPECT_EQ(blockCheckBytes(ProtectKind::Crc16, 64), 2u);
    EXPECT_EQ(blockCheckBytes(ProtectKind::SecDed, 64), 8u);
    EXPECT_EQ(blockCheckBytes(ProtectKind::SecDed, 1), 1u);
    EXPECT_EQ(blockCheckBytes(ProtectKind::SecDed, 9), 2u);
    EXPECT_EQ(indexCheckBytes(ProtectKind::None), 0u);
    EXPECT_EQ(indexCheckBytes(ProtectKind::Crc8), 1u);
    EXPECT_EQ(indexCheckBytes(ProtectKind::Crc16), 2u);
    EXPECT_EQ(indexCheckBytes(ProtectKind::SecDed), 1u);
}

TEST(BlockCheck, CleanRoundTripAllKinds)
{
    Rng rng(7);
    for (size_t len : {1u, 7u, 8u, 9u, 33u, 64u}) {
        std::vector<u8> data(len);
        for (u8 &b : data)
            b = static_cast<u8>(rng.next());
        for (unsigned k = 0; k < kNumProtectKinds; ++k) {
            ProtectKind kind = static_cast<ProtectKind>(k);
            std::vector<u8> check(blockCheckBytes(kind, len));
            computeBlockCheck(kind, data.data(), len, check.data());
            std::vector<u8> got = data;
            EXPECT_EQ(checkBlock(kind, got.data(), len, check.data()),
                      EccOutcome::Clean);
            EXPECT_EQ(got, data);
        }
    }
}

TEST(BlockCheck, SecDedCorrectsSingleBitAnywhere)
{
    Rng rng(8);
    for (size_t len : {8u, 9u, 24u, 61u}) {
        std::vector<u8> data(len);
        for (u8 &b : data)
            b = static_cast<u8>(rng.next());
        std::vector<u8> check(blockCheckBytes(ProtectKind::SecDed, len));
        computeBlockCheck(ProtectKind::SecDed, data.data(), len,
                          check.data());
        for (size_t bit = 0; bit < len * 8; ++bit) {
            std::vector<u8> got = data;
            got[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
            unsigned corrected = 0;
            EXPECT_EQ(checkBlock(ProtectKind::SecDed, got.data(), len,
                                 check.data(), &corrected),
                      EccOutcome::Corrected)
                << "len " << len << " bit " << bit;
            EXPECT_EQ(corrected, 1u);
            EXPECT_EQ(got, data);
        }
    }
}

TEST(BlockCheck, SecDedCorrectsOneBitPerWord)
{
    // Independent words carry independent code words: one flip in each
    // of three words is three corrections, not an uncorrectable error.
    Rng rng(9);
    std::vector<u8> data(24);
    for (u8 &b : data)
        b = static_cast<u8>(rng.next());
    std::vector<u8> check(blockCheckBytes(ProtectKind::SecDed, 24));
    computeBlockCheck(ProtectKind::SecDed, data.data(), 24, check.data());
    std::vector<u8> got = data;
    got[3] ^= 0x10;
    got[11] ^= 0x01;
    got[20] ^= 0x80;
    unsigned corrected = 0;
    EXPECT_EQ(checkBlock(ProtectKind::SecDed, got.data(), 24, check.data(),
                         &corrected),
              EccOutcome::Corrected);
    EXPECT_EQ(corrected, 3u);
    EXPECT_EQ(got, data);
}

TEST(BlockCheck, SecDedDetectsDoubleBitInOneWord)
{
    Rng rng(10);
    std::vector<u8> data(16);
    for (u8 &b : data)
        b = static_cast<u8>(rng.next());
    std::vector<u8> check(blockCheckBytes(ProtectKind::SecDed, 16));
    computeBlockCheck(ProtectKind::SecDed, data.data(), 16, check.data());
    std::vector<u8> got = data;
    got[4] ^= 0x03; // two adjacent bits in the same 64-bit word
    std::vector<u8> before = got;
    EXPECT_EQ(checkBlock(ProtectKind::SecDed, got.data(), 16, check.data()),
              EccOutcome::Detected);
}

TEST(BlockCheck, SecDedPaddingAliasDetected)
{
    // A syndrome pointing into the zero padding of a partial final word
    // cannot be a real single-bit flip (those bits are not stored), so
    // it must surface as Detected, never as a "correction" that writes
    // out of bounds. Forge one by encoding a word with a padding bit
    // set, then presenting the truncated buffer.
    u64 word = 0x0123456789ABCDEFull;
    const size_t len = 5; // 3 padding bytes in the final word
    u64 padded = word & 0x000000FFFFFFFFFFull;
    u64 alias = padded | (u64{1} << 47); // a bit the buffer cannot hold
    u8 check = secDedEncode(alias);
    std::vector<u8> data(len);
    for (size_t i = 0; i < len; ++i)
        data[i] = static_cast<u8>(padded >> (8 * i));
    std::vector<u8> before = data;
    EXPECT_EQ(checkBlock(ProtectKind::SecDed, data.data(), len, &check),
              EccOutcome::Detected);
    EXPECT_EQ(data, before);
}

TEST(IndexCheck, CleanAndSingleBitAllKinds)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        u32 entry = static_cast<u32>(rng.next());
        for (unsigned k = 1; k < kNumProtectKinds; ++k) {
            ProtectKind kind = static_cast<ProtectKind>(k);
            u8 check[2] = {0, 0};
            computeIndexCheck(kind, entry, check);
            u32 got = entry;
            EXPECT_EQ(checkIndexEntry(kind, got, check), EccOutcome::Clean);
            EXPECT_EQ(got, entry);
            for (unsigned bit = 0; bit < 32; ++bit) {
                got = entry ^ (1u << bit);
                EccOutcome r = checkIndexEntry(kind, got, check);
                if (kind == ProtectKind::SecDed) {
                    EXPECT_EQ(r, EccOutcome::Corrected) << "bit " << bit;
                    EXPECT_EQ(got, entry) << "bit " << bit;
                } else {
                    EXPECT_EQ(r, EccOutcome::Detected) << "bit " << bit;
                }
            }
        }
    }
}

TEST(IndexCheck, SecDedDetectsDoubleBit)
{
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        u32 entry = static_cast<u32>(rng.next());
        u8 check[1];
        computeIndexCheck(ProtectKind::SecDed, entry, check);
        for (unsigned a = 0; a < 32; ++a) {
            u32 got = entry ^ (1u << a) ^ (1u << ((a + 1) % 32));
            EXPECT_EQ(checkIndexEntry(ProtectKind::SecDed, got, check),
                      EccOutcome::Detected)
                << "bits " << a << "," << (a + 1) % 32;
        }
    }
}

} // namespace
} // namespace cps
