/**
 * @file
 * Extension experiment: I-cache replacement policy (LRU / FIFO /
 * random). The paper's machines are all 2-way LRU; this sweep shows how
 * robust the CodePack comparison is to that choice — the miss *rate*
 * moves with policy, but the native-vs-compressed relation barely does
 * (both sides see the same miss stream).
 */

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    struct Pol { const char *label; ReplPolicy policy; };
    const Pol pols[] = {{"LRU", ReplPolicy::Lru},
                        {"FIFO", ReplPolicy::Fifo},
                        {"random", ReplPolicy::Random}};

    TextTable t;
    t.setTitle("Extension: I-cache replacement policy "
               "(4-issue, 4KB 2-way I-cache)");
    t.addHeader({"Bench", "LRU miss", "LRU CPopt", "FIFO miss",
                 "FIFO CPopt", "rand miss", "rand CPopt"});

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        for (const Pol &p : pols) {
            MachineConfig native = baseline4Issue();
            native.icache = CacheConfig{4 * 1024, 32, 2, p.policy};
            m.add(bench, native, insns);
            m.add(bench,
                  native.withCodeModel(CodeModel::CodePackOptimized),
                  insns);
        }
    }
    m.run();

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };
    for (const std::string &name : suite.names()) {
        std::vector<std::string> row{name};
        for (size_t i = 0; i < 3; ++i) {
            harness::CellOutcome rn = m.nextCell();
            harness::CellOutcome ro = m.nextCell();
            row.push_back(harness::fmtCell(rn, [](const RunOutcome &o) {
                return TextTable::pct(o.icacheMissRate);
            }));
            row.push_back(harness::fmtCells(rn, ro, fmtSpd));
        }
        t.addRow(row);
    }
    t.print();
    return m.exitSummary();
}
