/**
 * @file
 * Soft-error protection of compressed images: computes the per-block
 * and per-index-entry check arrays a protected memory system would
 * hold alongside the compressed region. The stream and index table are
 * never modified — protection is a pure annex — so a protected image
 * decodes bit-identically to its unprotected self when no fault is
 * injected.
 */

#include "compressor.hh"

namespace cps
{
namespace codepack
{

std::vector<u32>
blockCheckOffsets(ProtectKind kind, const std::vector<BlockExtent> &blocks)
{
    std::vector<u32> off;
    off.reserve(blocks.size() + 1);
    u32 at = 0;
    off.push_back(at);
    for (const BlockExtent &b : blocks) {
        at += static_cast<u32>(blockCheckBytes(kind, b.byteLen));
        off.push_back(at);
    }
    return off;
}

void
protectImage(CompressedImage &img, ProtectKind kind)
{
    img.protectKind = kind;
    img.blockCheck.clear();
    img.blockCheckOff.clear();
    img.indexCheck.clear();
    img.comp.protectionBits = 0;
    if (kind == ProtectKind::None)
        return;

    img.blockCheckOff = blockCheckOffsets(kind, img.blocks);
    img.blockCheck.resize(img.blockCheckOff.back());
    for (size_t i = 0; i < img.blocks.size(); ++i) {
        const BlockExtent &b = img.blocks[i];
        computeBlockCheck(kind, img.bytes.data() + b.byteOffset,
                          b.byteLen,
                          img.blockCheck.data() + img.blockCheckOff[i]);
    }

    const size_t stride = indexCheckBytes(kind);
    img.indexCheck.resize(img.indexTable.size() * stride);
    for (size_t i = 0; i < img.indexTable.size(); ++i)
        computeIndexCheck(kind, img.indexTable[i],
                          img.indexCheck.data() + i * stride);

    img.comp.protectionBits =
        (u64{img.blockCheck.size()} + img.indexCheck.size()) * 8;
}

} // namespace codepack
} // namespace cps
