/**
 * @file
 * The simulated 32-bit RISC instruction set.
 *
 * The paper re-encoded SimpleScalar's loosely packed 64-bit PISA
 * instructions into a dense 32-bit format "resembling the MIPS IV
 * encoding" so that compression results would be representative of real
 * microprocessors. We do the same: this ISA is a classic MIPS-flavoured
 * three-format (R/I/J) 32-bit encoding with 32 integer registers, 32
 * single-precision FP registers and one FP condition flag.
 */

#ifndef CPS_ISA_ISA_HH
#define CPS_ISA_ISA_HH

#include <optional>
#include <string>

#include "common/types.hh"

namespace cps
{

/** Number of architected integer registers. */
constexpr unsigned kNumGpr = 32;
/** Number of architected floating-point registers. */
constexpr unsigned kNumFpr = 32;

/** Unified register-index space used for dependence tracking. */
constexpr int kRegNone = -1;
constexpr int kRegGprBase = 0;  ///< GPRs occupy [0, 32)
constexpr int kRegFprBase = 32; ///< FPRs occupy [32, 64)
constexpr int kRegFcc = 64;     ///< the FP condition flag
constexpr int kNumUnifiedRegs = 65;

/** Conventional MIPS register aliases used by the assembler and progen. */
enum GprAlias : u8
{
    kRegZero = 0, kRegAt = 1, kRegV0 = 2, kRegV1 = 3,
    kRegA0 = 4, kRegA1 = 5, kRegA2 = 6, kRegA3 = 7,
    kRegT0 = 8, kRegT7 = 15, kRegS0 = 16, kRegS7 = 23,
    kRegT8 = 24, kRegT9 = 25, kRegK0 = 26, kRegK1 = 27,
    kRegGp = 28, kRegSp = 29, kRegFp = 30, kRegRa = 31,
};

/** Semantic operations; the encoding maps each to a unique bit pattern. */
enum class Op : u8
{
    Invalid = 0,

    // Integer register-register ALU.
    Add, Addu, Sub, Subu, And, Or, Xor, Nor, Slt, Sltu,
    Sll, Srl, Sra, Sllv, Srlv, Srav,
    Mul, Mulu, Div, Divu, Rem, Remu,

    // Integer immediate ALU.
    Addi, Addiu, Slti, Sltiu, Andi, Ori, Xori, Lui,

    // Memory.
    Lb, Lh, Lw, Lbu, Lhu, Sb, Sh, Sw, Lwc1, Swc1,

    // Control transfer.
    J, Jal, Jr, Jalr, Beq, Bne, Blez, Bgtz, Bltz, Bgez, Bc1t, Bc1f,

    // Single-precision floating point.
    AddS, SubS, MulS, DivS, AbsS, NegS, MovS, CvtSW, CvtWS,
    CEqS, CLtS, CLeS, Mtc1, Mfc1,

    // System.
    Syscall, Break,

    kNumOps,
};

/** Broad functional classes; each maps to a function-unit pool. */
enum class InstClass : u8
{
    Nop,
    IntAlu,
    IntMult,
    IntDiv,
    Load,
    Store,
    Branch,  ///< conditional, PC-relative
    Jump,    ///< unconditional direct (j / jal)
    JumpReg, ///< unconditional indirect (jr / jalr)
    FpAlu,
    FpMult,
    FpDiv,
    FpCvt,
    Syscall,
    Invalid,
};

/** A fully decoded instruction. */
struct Inst
{
    Op op = Op::Invalid;
    u8 rs = 0;     ///< R/I-type source register (FP: fmt field)
    u8 rt = 0;     ///< R/I-type second source / I-type dest (FP: ft)
    u8 rd = 0;     ///< R-type destination (FP: fs)
    u8 shamt = 0;  ///< shift amount (FP: fd)
    u16 imm = 0;   ///< I-type immediate, raw (sign extension is per-op)
    u32 target = 0; ///< J-type 26-bit word target
    u32 raw = 0;   ///< original 32-bit encoding

    bool operator==(const Inst &o) const = default;
};

/** Static properties derived from a decoded instruction. */
struct InstInfo
{
    InstClass cls = InstClass::Invalid;
    int dest = kRegNone;  ///< unified destination register
    int src1 = kRegNone;  ///< unified source registers
    int src2 = kRegNone;
    int src3 = kRegNone;
    unsigned latency = 1; ///< execute latency in cycles
    bool isControl = false;
    bool isMem = false;
};

/** Encodes a decoded instruction into its 32-bit representation. */
u32 encode(const Inst &inst);

/** Decodes a 32-bit word. Unrecognised patterns yield Op::Invalid. */
Inst decode(u32 word);

/** Derives class, registers and latency for a decoded instruction. */
InstInfo analyze(const Inst &inst);

/** The canonical mnemonic for an operation ("addu", "c.lt.s", ...). */
const char *mnemonic(Op op);

/** Looks up an operation by mnemonic; nullopt when unknown. */
std::optional<Op> opFromMnemonic(const std::string &name);

/** Conventional name of integer register @p index ("$sp", "$t0", ...). */
const char *gprName(unsigned index);

/** Renders one instruction as assembly text. @p pc resolves branches. */
std::string disassemble(const Inst &inst, Addr pc = 0);

/** Convenience: decode then disassemble a raw word. */
std::string disassemble(u32 word, Addr pc = 0);

/** The canonical no-op encoding (sll $zero, $zero, 0). */
constexpr u32 kNopWord = 0;

/** True when @p op writes the link register (jal / jalr). */
bool isLink(Op op);

/** True when the operation reads or writes FP state. */
bool isFp(Op op);

} // namespace cps

#endif // CPS_ISA_ISA_HH
