/**
 * @file
 * Checkpoint/resume journal for experiment matrices.
 *
 * With CPS_RESUME=1 every completed matrix cell's result envelope is
 * appended to an on-disk journal keyed (artifact-cache style) over the
 * whole matrix — every cell key, in order, plus an engine version tag.
 * A table binary killed mid-matrix and rerun replays the journaled
 * cells and executes only the missing ones; the final table is
 * byte-identical to an uninterrupted run because the envelopes hold
 * exactly what runMachine returned.
 *
 * File layout: a header frame carrying the full (uncollided) matrix
 * key, then one record frame per completed cell:
 *   record payload = u32 cellIndex, u64 fnv1a64(cellKey), envelope
 * Frames are CRC'd (common/ipc_frame) and appended with a single
 * write(2) each, so a kill can only tear the final record — loading
 * stops cleanly at the first damaged frame and everything before it is
 * still usable. Only successful cells are journaled; failed cells are
 * re-executed on resume.
 */

#ifndef CPS_HARNESS_JOURNAL_HH
#define CPS_HARNESS_JOURNAL_HH

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cell_runner.hh"

namespace cps
{
namespace harness
{

/** Whether matrix journaling/resume is enabled (CPS_RESUME=1). */
bool resumeEnabled();

/** The journal directory: CPS_CACHE_DIR or ".cps-cache" (shared with
 *  the artifact cache, but independent of CPS_ARTIFACT_CACHE). */
std::string journalDir();

/** One matrix's append-only completion journal. */
class MatrixJournal
{
  public:
    /**
     * @param dir directory holding the journal file
     * @param matrix_key full matrix key (see harness::matrixKey)
     * @param num_cells matrix size; records outside [0, num_cells)
     *        are ignored on load
     */
    MatrixJournal(std::string dir, std::string matrix_key,
                  size_t num_cells);

    /** Path of the journal file. */
    const std::string &path() const { return path_; }

    /**
     * Loads every intact record. Verification failures (wrong matrix
     * key, torn tail, CRC damage, stale cell-key hash) silently drop
     * the affected record and everything after it — a damaged journal
     * costs recomputation, never a wrong table.
     * @return per-cell envelopes; nullopt where the journal has none
     */
    std::vector<std::optional<RunOutcome>>
    load(const std::vector<RunRequest> &requests) const;

    /**
     * Appends one completed cell. Thread-safe; each record is one
     * write(2) + fsync so a checkpoint survives a host crash, and
     * concurrent appends and kills cannot interleave partial records
     * anywhere but the tail. Failures are non-fatal (the cell simply
     * re-executes on resume). Appending to a compacted (complete)
     * journal is a no-op — the record is already there.
     */
    void append(size_t index, const std::string &cell_key,
                const RunOutcome &outcome);

    /**
     * Rewrites a fully-completed journal as its minimal closed form:
     * header, exactly one record per cell, and a completion tombstone
     * frame. A daemon replaying the same matrix across many requests
     * would otherwise append a duplicate record set per request and
     * grow the file without bound; after compaction, further appends
     * are suppressed (see append) and loads stay O(cells). Atomic
     * (temp + rename); best-effort like every journal write.
     * @return true when the journal is complete (already or now)
     */
    bool compact(const std::vector<RunRequest> &requests);

    /** Whether a completion tombstone has been observed/written. */
    bool complete() const;

  private:
    /** Scans the file for a completion tombstone (mutex_ held). */
    bool scanComplete() const;

    std::string dir_;
    std::string matrixKey_;
    std::string path_;
    size_t numCells_;
    mutable std::mutex mutex_;
    bool headerWritten_ = false;
    mutable bool complete_ = false; ///< tombstone seen or written
};

} // namespace harness
} // namespace cps

#endif // CPS_HARNESS_JOURNAL_HH
