/**
 * @file
 * Embedded-system trade-off study: the scenario the paper's introduction
 * motivates. A cost-sensitive controller has a small I-cache, a narrow
 * flash/ROM bus and slow memory; how do code size and performance trade
 * off if we adopt CodePack?
 *
 * Sweeps the go benchmark over bus widths and memory latencies on a
 * 1-issue embedded core, printing code-size savings and the performance
 * of baseline/optimized CodePack relative to native code.
 *
 * Build & run:  ./build/examples/embedded_tradeoff [bench]
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/suite.hh"

using namespace cps;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "go";
    const BenchProgram &bench = Suite::instance().get(name);
    u64 insns = Suite::runInsns();

    std::printf("Embedded trade-off for '%s': CodePack cuts the ROM "
                "footprint to %.1f%% of native.\n\n",
                name, 100.0 * bench.image.compressionRatio());

    TextTable t;
    t.setTitle("1-issue embedded core: speedup over native code "
               "(same memory system)");
    t.addHeader({"Memory system", "CodePack", "Optimized", "Verdict"});

    struct Scenario
    {
        const char *label;
        unsigned bus;
        Cycle first, rate;
    };
    const Scenario scenarios[] = {
        {"16-bit bus, slow ROM (20/4)", 16, 20, 4},
        {"16-bit bus, 10/2", 16, 10, 2},
        {"32-bit bus, 10/2", 32, 10, 2},
        {"64-bit bus, 10/2 (paper baseline)", 64, 10, 2},
        {"64-bit bus, fast RAM (5/1)", 64, 5, 1},
        {"128-bit bus, fast RAM (5/1)", 128, 5, 1},
    };

    for (const Scenario &s : scenarios) {
        MachineConfig native = baseline1Issue();
        native.mem.busWidthBits = s.bus;
        native.mem.firstAccess = s.first;
        native.mem.beatRate = s.rate;

        RunOutcome rn = runMachine(bench, native, insns);
        RunOutcome rc = runMachine(
            bench, native.withCodeModel(CodeModel::CodePack), insns);
        RunOutcome ro = runMachine(
            bench, native.withCodeModel(CodeModel::CodePackOptimized),
            insns);

        double sc = speedup(rn, rc);
        double so = speedup(rn, ro);
        const char *verdict =
            so >= 1.02 ? "compress: smaller AND faster"
            : so >= 0.98 ? "compress: smaller, ~same speed"
                         : "compress only if size-bound";
        t.addRow({s.label, TextTable::fmt(sc, 3), TextTable::fmt(so, 3),
                  verdict});
    }
    t.print();

    std::printf("\nThe paper's conclusion in action: on narrow buses "
                "and slow memories the\ncompressed program is faster "
                "than native code because each miss moves fewer\nbytes "
                "and the decompressor prefetches whole 16-instruction "
                "blocks.\n");
    return 0;
}
