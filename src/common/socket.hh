/**
 * @file
 * Unix-domain socket and event-loop helpers for the campaign service.
 *
 * The daemon (service/server) and its clients speak the CRC-framed
 * ipc_frame protocol over SOCK_STREAM Unix sockets. These helpers keep
 * the raw fd plumbing — stale-socket cleanup, nonblocking mode, the
 * self-pipe trick for signal-safe wakeups — in one place so the server
 * loop reads as scheduling logic, not syscall boilerplate.
 *
 * Every function is EINTR-safe and reports failure by return value;
 * none of them throws or aborts. SIGPIPE is the one piece of global
 * state touched (see ignoreSigpipe): a peer that disconnects mid-write
 * must surface as a write error, never as a process-killing signal.
 */

#ifndef CPS_COMMON_SOCKET_HH
#define CPS_COMMON_SOCKET_HH

#include <string>

namespace cps
{

/**
 * Idempotently sets SIGPIPE to SIG_IGN process-wide so a disconnected
 * peer turns writeFrame() into a clean failure (EPIPE) instead of a
 * fatal signal. Called by the daemon, clients, and forked cell workers
 * before their first socket/pipe write.
 */
void ignoreSigpipe();

/**
 * Creates, binds and listens on a Unix-domain stream socket at @p path,
 * removing any stale socket file a killed daemon left behind.
 * @return listening fd, or -1 (with @p err filled) on failure
 */
int listenUnix(const std::string &path, int backlog, std::string *err);

/**
 * Connects to the Unix-domain socket at @p path, retrying (10 ms
 * apart) until @p timeout_ms elapses — a client racing a daemon that
 * is still binding its socket should wait, not fail.
 * @return connected fd, or -1 on timeout/failure
 */
int connectUnix(const std::string &path, long timeout_ms);

/** Accepts one pending connection; -1 when none/failed (EINTR-safe). */
int acceptConnection(int listen_fd);

/** Switches @p fd between blocking and nonblocking mode. */
bool setNonBlocking(int fd, bool nonblocking);

/**
 * A pipe whose write end is safe to use from a signal handler: the
 * canonical self-pipe wakeup for a poll(2) loop. Writes never block
 * (the write end is nonblocking; a full pipe is already a wakeup).
 */
class WakeupPipe
{
  public:
    WakeupPipe();
    ~WakeupPipe();
    WakeupPipe(const WakeupPipe &) = delete;
    WakeupPipe &operator=(const WakeupPipe &) = delete;

    bool valid() const { return readFd_ >= 0; }
    int readFd() const { return readFd_; }
    int writeFd() const { return writeFd_; }

    /** Async-signal-safe: one byte into the pipe (best-effort). */
    void notify() const;

    /** Drains every pending byte (nonblocking). */
    void drain() const;

  private:
    int readFd_ = -1;
    int writeFd_ = -1;
};

} // namespace cps

#endif // CPS_COMMON_SOCKET_HH
