/**
 * @file
 * BlockFetcher tests: byte-identity of every cached/speculated block
 * against the checked bit-serial reference across all suite profiles
 * and worker counts, LRU aliasing/eviction edge cases, counter
 * conservation, sync-vs-async equivalence, and the environment knobs.
 * The async cases double as the TSan workload for the span claim/steal
 * protocol.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "codepack/block_fetcher.hh"
#include "harness/suite.hh"

namespace cps
{
namespace codepack
{
namespace
{

/** Scoped setenv/unsetenv so knob tests cannot leak into each other. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            hadOld_ = true;
            old_ = old;
        }
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (hadOld_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool hadOld_ = false;
    std::string old_;
};

void
expectBlockEq(const DecodedBlock &got, const DecodedBlock &want,
              u32 flat)
{
    ASSERT_EQ(got.words, want.words) << "flat block " << flat;
    ASSERT_EQ(got.endBit, want.endBit) << "flat block " << flat;
    ASSERT_EQ(got.byteOffset, want.byteOffset) << "flat block " << flat;
    ASSERT_EQ(got.byteLen, want.byteLen) << "flat block " << flat;
}

/**
 * Sweeps @p fetcher over every block of @p img — forward, then a
 * strided revisit — checking each returned block against the checked
 * bit-serial reference decoder.
 */
void
checkByteIdentity(const CompressedImage &img, BlockFetcher &fetcher)
{
    Decompressor ref(img, DecodeKernel::Checked);
    u32 n = img.numBlocks();
    for (u32 f = 0; f < n; ++f) {
        Result<DecodedBlock> want =
            ref.tryDecompressBlock(f / kBlocksPerGroup,
                                   f % kBlocksPerGroup);
        ASSERT_TRUE(want.ok());
        expectBlockEq(fetcher.getFlat(f), *want, f);
    }
    // A non-unit revisit exercises the strided prediction path and
    // claims of still-resident entries.
    for (u32 f = 0; f + 3 < n; f += 3) {
        Result<DecodedBlock> want =
            ref.tryDecompressBlock(f / kBlocksPerGroup,
                                   f % kBlocksPerGroup);
        ASSERT_TRUE(want.ok());
        expectBlockEq(fetcher.getFlat(f), *want, f);
    }
}

TEST(BlockFetcher, ByteIdenticalToReferenceOnAllProfiles)
{
    for (const std::string &name : Suite::instance().names()) {
        SCOPED_TRACE(name);
        const BenchProgram &bench = Suite::instance().get(name);
        Decompressor d(bench.image);
        BlockFetcher::Options opts; // default: inline speculation
        BlockFetcher fetcher(d, opts);
        checkByteIdentity(bench.image, fetcher);
        EXPECT_GT(fetcher.prefetchHits(), 0u);
    }
}

TEST(BlockFetcher, ByteIdenticalAsyncAcrossWorkerCounts)
{
    const BenchProgram &bench = Suite::instance().get("go");
    Decompressor d(bench.image);
    for (const char *threads : {"1", "2", "8"}) {
        SCOPED_TRACE(threads);
        EnvGuard env("CPS_THREADS", threads);
        BlockFetcher::Options opts;
        opts.async = true;
        BlockFetcher fetcher(d, opts); // pool sized on first issue
        checkByteIdentity(bench.image, fetcher);
        EXPECT_GT(fetcher.prefetchHits(), 0u);
    }
}

TEST(BlockFetcher, GroupBlockKeyMatchesFlatKey)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    Decompressor d(bench.image);
    BlockFetcher fetcher(d);
    for (u32 g = 0; g < std::min<u32>(bench.image.numGroups(), 64);
         ++g) {
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            DecodedBlock got = fetcher.get(g, b);
            expectBlockEq(fetcher.getFlat(g * kBlocksPerGroup + b), got,
                          g * kBlocksPerGroup + b);
        }
    }
}

TEST(BlockFetcher, TinyCacheEvictsLeastRecentlyUsed)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    Decompressor d(bench.image);
    BlockFetcher::Options opts;
    opts.slots = 2;
    opts.prefetch = false;
    BlockFetcher f(d, opts);
    ASSERT_GE(bench.image.numBlocks(), 3u);

    f.getFlat(0); // fill {0}
    f.getFlat(1); // fill {0,1}
    f.getFlat(0); // hit, 0 becomes MRU
    f.getFlat(2); // fill, evicts LRU=1 -> {0,2}
    f.getFlat(0); // hit
    f.getFlat(1); // fill again (was evicted) -> evicts 2
    f.getFlat(2); // fill again
    EXPECT_EQ(f.fills(), 5u);
    EXPECT_EQ(f.hits(), 2u);
    EXPECT_EQ(f.prefetchIssued(), 0u);
}

TEST(BlockFetcher, SingleSlotCacheStaysCorrect)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    Decompressor d(bench.image);
    Decompressor ref(bench.image, DecodeKernel::Checked);
    BlockFetcher::Options opts;
    opts.slots = 1;
    BlockFetcher f(d, opts); // prefetch on, but depth clamps to 0
    u32 n = std::min<u32>(bench.image.numBlocks(), 64);
    for (int pass = 0; pass < 2; ++pass) {
        for (u32 b = 0; b < n; ++b) {
            Result<DecodedBlock> want = ref.tryDecompressBlock(
                b / kBlocksPerGroup, b % kBlocksPerGroup);
            ASSERT_TRUE(want.ok());
            expectBlockEq(f.getFlat(b), *want, b);
        }
    }
    EXPECT_EQ(f.prefetchIssued(), 0u);
    EXPECT_EQ(f.fills(), static_cast<u64>(2 * n));
}

TEST(BlockFetcher, CountersConserveAccesses)
{
    const BenchProgram &bench = Suite::instance().get("go");
    Decompressor d(bench.image);
    u32 n = bench.image.numBlocks();
    for (bool async : {false, true}) {
        SCOPED_TRACE(async ? "async" : "sync");
        BlockFetcher::Options opts;
        opts.async = async;
        BlockFetcher f(d, opts);
        u64 accesses = 0;
        // Sequential, strided, and pseudo-random phases.
        for (u32 b = 0; b < n; ++b, ++accesses)
            f.getFlat(b);
        for (u32 b = 0; b + 7 < n; b += 7, ++accesses)
            f.getFlat(b);
        for (u32 i = 0; i < 1000; ++i, ++accesses)
            f.getFlat((i * 2654435761u) % n);
        EXPECT_EQ(f.hits() + f.fills() + f.prefetchHits(), accesses);
        EXPECT_LE(f.prefetchHits(), f.prefetchIssued());
    }
}

TEST(BlockFetcher, SyncAndAsyncProduceIdenticalCounters)
{
    const BenchProgram &bench = Suite::instance().get("cc1");
    Decompressor d(bench.image);
    u32 n = bench.image.numBlocks();
    auto walk = [n](BlockFetcher &f) {
        for (u32 b = 0; b < n; ++b)
            f.getFlat(b);
        for (u32 b = n; b-- > 0;)
            f.getFlat(b);
        for (u32 i = 0; i < 500; ++i)
            f.getFlat((i * 40503u) % n);
    };
    BlockFetcher::Options sync_opts;
    sync_opts.async = false;
    BlockFetcher sync_f(d, sync_opts);
    walk(sync_f);
    BlockFetcher::Options async_opts;
    async_opts.async = true;
    BlockFetcher async_f(d, async_opts);
    walk(async_f);
    EXPECT_EQ(sync_f.hits(), async_f.hits());
    EXPECT_EQ(sync_f.fills(), async_f.fills());
    EXPECT_EQ(sync_f.prefetchIssued(), async_f.prefetchIssued());
    EXPECT_EQ(sync_f.prefetchHits(), async_f.prefetchHits());
}

TEST(BlockFetcher, SlotsEnvKnobSetsCapacity)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    Decompressor d(bench.image);
    {
        EnvGuard env("CPS_BLOCK_CACHE_SLOTS", "8");
        EXPECT_EQ(BlockFetcher::Options::fromEnv().slots, 8u);
        BlockFetcher f(d);
        EXPECT_EQ(f.slots(), 8u);
    }
    {
        EnvGuard env("CPS_BLOCK_CACHE_SLOTS", nullptr);
        EXPECT_EQ(BlockFetcher::Options::fromEnv().slots, 64u);
    }
}

TEST(BlockFetcher, PrefetchEnvKnobSelectsMode)
{
    {
        EnvGuard env("CPS_BLOCK_PREFETCH", "off");
        BlockFetcher::Options o = BlockFetcher::Options::fromEnv();
        EXPECT_FALSE(o.prefetch);
    }
    {
        EnvGuard env("CPS_BLOCK_PREFETCH", "async");
        BlockFetcher::Options o = BlockFetcher::Options::fromEnv();
        EXPECT_TRUE(o.prefetch);
        EXPECT_TRUE(o.async);
    }
    {
        EnvGuard env("CPS_BLOCK_PREFETCH", nullptr);
        BlockFetcher::Options o = BlockFetcher::Options::fromEnv();
        EXPECT_TRUE(o.prefetch);
        EXPECT_FALSE(o.async);
    }
}

TEST(BlockFetcher, ConcurrentFetchersShareOneDecompressor)
{
    // Several async fetchers (each single-consumer, as required) over
    // the same decompressor, running concurrently: exercises parallel
    // decompressBlocks plus the claim/steal protocol under TSan.
    const BenchProgram &bench = Suite::instance().get("go");
    Decompressor d(bench.image);
    Decompressor ref(bench.image, DecodeKernel::Checked);
    u32 n = bench.image.numBlocks();
    std::vector<std::thread> threads;
    std::vector<int> failures(4, 0);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            BlockFetcher::Options opts;
            opts.async = true;
            BlockFetcher f(d, opts);
            for (u32 b = 0; b < n; ++b) {
                u32 flat = (b + static_cast<u32>(t) * 17) % n;
                const DecodedBlock &got = f.getFlat(flat);
                Result<DecodedBlock> want = ref.tryDecompressBlock(
                    flat / kBlocksPerGroup, flat % kBlocksPerGroup);
                if (!want.ok() || got.words != (*want).words)
                    ++failures[t];
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(failures[t], 0) << "thread " << t;
}

} // namespace
} // namespace codepack
} // namespace cps
