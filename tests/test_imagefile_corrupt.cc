/**
 * @file
 * Corrupted-image rejection tests: truncation, bad magic, unsupported
 * version, CRC mismatches, oversize header fields, and trailing
 * garbage all come back as structured DecodeErrors — never a crash,
 * never an allocation driven by an unvalidated size field.
 */

#include <gtest/gtest.h>

#include "codepack/compressor.hh"
#include "codepack/decompressor.hh"
#include "codepack/imagefile.hh"
#include "progen/progen.hh"

namespace cps
{
namespace
{

using codepack::CompressedImage;
using codepack::decodeImageChecked;
using codepack::encodeImage;

CompressedImage
sampleImage()
{
    static CompressedImage img =
        codepack::compress(generateProgram(findProfile("pegwit")));
    return img;
}

/** Patches a little-endian u32 into @p bytes at @p at. */
void
patch32(std::vector<u8> &bytes, size_t at, u32 v)
{
    for (unsigned i = 0; i < 4; ++i)
        bytes[at + i] = static_cast<u8>(v >> (8 * i));
}

TEST(ImageFileCorrupt, PristineImageRoundTrips)
{
    CompressedImage img = sampleImage();
    auto r = decodeImageChecked(encodeImage(img));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->bytes, img.bytes);
    EXPECT_EQ(r->indexTable, img.indexTable);
    codepack::Decompressor a(img), b(*r);
    EXPECT_EQ(a.decompressAll(), b.decompressAll());
}

TEST(ImageFileCorrupt, BadMagicIsDiagnosed)
{
    std::vector<u8> junk{'N', 'O', 'T', 'A', 'N', 'I', 'M', 'G', 0, 0};
    auto r = decodeImageChecked(junk);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::BadMagic);
}

TEST(ImageFileCorrupt, OldVersionIsDiagnosedDistinctly)
{
    auto bytes = encodeImage(sampleImage());
    bytes[6] = '1'; // regress the version char in "CPSCPK2\0"
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::BadVersion);
    EXPECT_NE(r.error().message.find("version"), std::string::npos);
}

TEST(ImageFileCorrupt, EveryTruncationIsRejected)
{
    auto bytes = encodeImage(sampleImage());
    // Every prefix shorter than the file must fail cleanly. Walk a
    // stride for speed plus the interesting boundaries.
    for (size_t cut = 0; cut < bytes.size();
         cut += (bytes.size() / 97) + 1) {
        std::vector<u8> trunc(bytes.begin(),
                              bytes.begin() + static_cast<long>(cut));
        auto r = decodeImageChecked(trunc);
        ASSERT_FALSE(r.ok()) << "cut " << cut;
    }
    for (size_t cut : {bytes.size() - 1, bytes.size() - 4}) {
        std::vector<u8> trunc(bytes.begin(),
                              bytes.begin() + static_cast<long>(cut));
        EXPECT_FALSE(decodeImageChecked(trunc).ok()) << "cut " << cut;
    }
}

TEST(ImageFileCorrupt, TrailingGarbageIsRejected)
{
    auto bytes = encodeImage(sampleImage());
    bytes.push_back(0xEE);
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::Malformed);
}

TEST(ImageFileCorrupt, StreamBitFlipFailsItsCrc)
{
    CompressedImage img = sampleImage();
    auto bytes = encodeImage(img);
    // Flip one bit in the middle of the compressed stream section.
    size_t mid = bytes.size() / 2;
    bytes[mid] ^= 0x10;
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::BadCrc);

    // With verification off the bytes load (the flip is inside some
    // section's payload, structurally plausible or rejected later —
    // but it must never crash).
    codepack::ImageLoadOptions opts;
    opts.verifyCrc = false;
    auto loose = decodeImageChecked(bytes, opts);
    if (loose.ok()) {
        codepack::Decompressor d(*loose);
        (void)d.tryDecompressAll(); // any result is fine; no abort
    }
}

TEST(ImageFileCorrupt, OversizeGroupCountRejectedBeforeAllocation)
{
    auto bytes = encodeImage(sampleImage());
    // The index-table count lives at a fixed offset in the v2 layout.
    patch32(bytes, codepack::kImageIndexCountOffset, 0x40000000u);
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    // Caught as a header inconsistency (count disagrees with
    // paddedInsns) — decisively before any 4GB reserve.
    EXPECT_EQ(r.error().status, DecodeStatus::BadHeader);
}

TEST(ImageFileCorrupt, OversizePaddedInsnsRejected)
{
    auto bytes = encodeImage(sampleImage());
    // paddedInsns is the third header field (magic + 2 u32s before it).
    patch32(bytes, 8 + 8, 0xFFFFFFE0u);
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    // The header CRC catches the edit first; with CRCs off the
    // header/count cross-checks must catch it instead.
    codepack::ImageLoadOptions opts;
    opts.verifyCrc = false;
    auto loose = decodeImageChecked(bytes, opts);
    ASSERT_FALSE(loose.ok());
    EXPECT_TRUE(loose.error().status == DecodeStatus::BadHeader ||
                loose.error().status == DecodeStatus::Truncated)
        << loose.error().describe();
}

TEST(ImageFileCorrupt, IndexEntryCorruptionIsNeverSilent)
{
    CompressedImage img = sampleImage();
    auto bytes = encodeImage(img);
    // Scribble the first index entry with an out-of-range offset.
    patch32(bytes, codepack::kImageIndexEntriesOffset, 0x007FFFFFu);
    ASSERT_FALSE(decodeImageChecked(bytes).ok()); // CRC

    codepack::ImageLoadOptions opts;
    opts.verifyCrc = false;
    auto loose = decodeImageChecked(bytes, opts);
    // Without the CRC the structural validation must still see the
    // entry pointing past the compressed region.
    ASSERT_FALSE(loose.ok());
    EXPECT_EQ(loose.error().status, DecodeStatus::RangeError);
}

TEST(ImageFileCorrupt, CheckedLoaderReportsMissingFile)
{
    auto r = codepack::loadImageChecked("/nonexistent/file.cpi");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("/nonexistent/file.cpi"),
              std::string::npos);
}

TEST(ImageFileCorrupt, ValidateImageFlagsBadExtents)
{
    CompressedImage img = sampleImage();
    ASSERT_TRUE(codepack::validateImage(img).ok());

    CompressedImage bad = img;
    bad.blocks[0].byteOffset =
        static_cast<u32>(bad.bytes.size()) + 100;
    auto r = codepack::validateImage(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::RangeError);

    CompressedImage odd = img;
    odd.origTextBytes = odd.paddedInsns * 4 + 4;
    EXPECT_FALSE(codepack::validateImage(odd).ok());
}

TEST(ImageFileCorrupt, DictionaryOverpopulationRejected)
{
    auto bytes = encodeImage(sampleImage());
    // Find the dictionary section: it follows the stream section.
    // Rather than hand-computing offsets, corrupt every byte of the
    // file one at a time would be slow; instead assert the checked
    // decoder's global contract on a representative sample: no byte
    // position, when set to 0xFF, may crash the decoder.
    for (size_t at = 0; at < bytes.size();
         at += (bytes.size() / 211) + 1) {
        std::vector<u8> mut = bytes;
        if (mut[at] == 0xFF)
            continue;
        mut[at] = 0xFF;
        (void)decodeImageChecked(mut); // must return, never abort
        codepack::ImageLoadOptions opts;
        opts.verifyCrc = false;
        auto loose = decodeImageChecked(mut, opts);
        if (loose.ok())
            (void)codepack::Decompressor(*loose).tryDecompressAll();
    }
}

TEST(ImageFileProtect, ProtectedImageRoundTripsEveryKind)
{
    CompressedImage img = sampleImage();
    for (ProtectKind kind : {ProtectKind::Crc8, ProtectKind::Crc16,
                             ProtectKind::SecDed}) {
        CompressedImage prot = img;
        codepack::protectImage(prot, kind);
        auto bytes = encodeImage(prot);
        EXPECT_EQ(bytes[6], '3') << protectKindName(kind);
        auto r = decodeImageChecked(bytes);
        ASSERT_TRUE(r.ok()) << r.error().describe();
        EXPECT_EQ(r->protectKind, kind);
        EXPECT_EQ(r->blockCheck, prot.blockCheck);
        EXPECT_EQ(r->blockCheckOff, prot.blockCheckOff);
        EXPECT_EQ(r->indexCheck, prot.indexCheck);
        EXPECT_EQ(r->comp.protectionBits, prot.comp.protectionBits);
        // Protection never changes what the image decodes to.
        codepack::Decompressor a(img), b(*r);
        EXPECT_EQ(a.decompressAll(), b.decompressAll());
    }
}

TEST(ImageFileProtect, UnprotectedImageEncodesAsV2)
{
    CompressedImage img = sampleImage();
    auto plain = encodeImage(img);
    EXPECT_EQ(plain[6], '2');
    // Protecting and then stripping protection must reproduce the v2
    // encoding byte for byte (the protection section is purely
    // additive).
    CompressedImage cycled = img;
    codepack::protectImage(cycled, ProtectKind::SecDed);
    codepack::protectImage(cycled, ProtectKind::None);
    EXPECT_EQ(encodeImage(cycled), plain);
}

TEST(ImageFileProtect, ProtectionSectionCorruptionFailsItsCrc)
{
    CompressedImage prot = sampleImage();
    codepack::protectImage(prot, ProtectKind::SecDed);
    auto bytes = encodeImage(prot);
    // The protection section is the file's final section; a flip in
    // its payload (or its CRC) must be caught at load.
    bytes[bytes.size() - 7] ^= 0x04;
    auto r = decodeImageChecked(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::BadCrc);
}

TEST(ImageFileProtect, BadProtectionKindAndLengthsRejected)
{
    CompressedImage prot = sampleImage();
    codepack::protectImage(prot, ProtectKind::SecDed);
    auto bytes = encodeImage(prot);
    // Layout from the back: kind(1) + len(4) + blockCheck + len(4) +
    // indexCheck + sectionCrc(4).
    size_t kind_at = bytes.size() - 4 - prot.indexCheck.size() - 4 -
                     prot.blockCheck.size() - 4 - 1;
    codepack::ImageLoadOptions loose;
    loose.verifyCrc = false;

    std::vector<u8> bad_kind = bytes;
    bad_kind[kind_at] = 0xEE;
    auto r = decodeImageChecked(bad_kind, loose);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::Malformed);
    EXPECT_NE(r.error().message.find("protection kind"),
              std::string::npos);

    std::vector<u8> bad_len = bytes;
    patch32(bad_len, kind_at + 1,
            static_cast<u32>(prot.blockCheck.size()) + 3);
    auto r2 = decodeImageChecked(bad_len, loose);
    ASSERT_FALSE(r2.ok());
    EXPECT_TRUE(r2.error().status == DecodeStatus::Malformed ||
                r2.error().status == DecodeStatus::Truncated)
        << r2.error().describe();
}

TEST(ImageFileProtect, ValidateImageChecksProtectionConsistency)
{
    CompressedImage prot = sampleImage();
    codepack::protectImage(prot, ProtectKind::Crc16);
    ASSERT_TRUE(codepack::validateImage(prot).ok());

    CompressedImage short_checks = prot;
    short_checks.blockCheck.pop_back();
    auto r = codepack::validateImage(short_checks);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, DecodeStatus::BadHeader);

    CompressedImage stray = sampleImage();
    stray.blockCheck.assign(4, 0);
    EXPECT_FALSE(codepack::validateImage(stray).ok());
}

// Decode-path corruption diagnostics must identify the block uniformly:
// every message names "group G block B" and the error carries the bit
// offset of the failure (describe() renders both).
TEST(ImageFileProtect, DecodeErrorsNameGroupBlockAndBitOffset)
{
    CompressedImage img = sampleImage();
    codepack::Decompressor d(img);

    auto oob = d.tryDecompressBlock(999999, 0);
    ASSERT_FALSE(oob.ok());
    EXPECT_NE(oob.error().message.find("group 999999 block 0"),
              std::string::npos)
        << oob.error().message;

    auto oob_block = d.tryDecompressBlock(0, codepack::kBlocksPerGroup);
    ASSERT_FALSE(oob_block.ok());
    EXPECT_NE(oob_block.error().message.find("group 0 block"),
              std::string::npos)
        << oob_block.error().message;

    // Point an index entry past the compressed region: the structured
    // error must name the block and carry a bit offset.
    CompressedImage bent = img;
    bent.indexTable[1] = 0x00FFFFFFu;
    codepack::Decompressor db(bent);
    auto r = db.tryDecompressBlock(1, 0);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("group 1 block 0"),
              std::string::npos)
        << r.error().message;
    EXPECT_NE(r.error().describe().find("bit "), std::string::npos);

    // Sweep stream corruptions; every rejection must follow the
    // "group G block B" convention.
    CompressedImage mut = img;
    unsigned rejected = 0;
    for (size_t at = 0; at < mut.bytes.size() && rejected < 25;
         at += (mut.bytes.size() / 131) + 1) {
        u8 saved = mut.bytes[at];
        mut.bytes[at] = static_cast<u8>(~saved);
        codepack::Decompressor dm(mut);
        for (u32 g = 0; g < mut.numGroups(); ++g) {
            for (u32 b = 0; b < codepack::kBlocksPerGroup; ++b) {
                auto res = dm.tryDecompressBlock(g, b);
                if (res.ok())
                    continue;
                ++rejected;
                EXPECT_NE(res.error().message.find("group "),
                          std::string::npos)
                    << res.error().message;
                EXPECT_NE(res.error().message.find("block "),
                          std::string::npos)
                    << res.error().message;
            }
        }
        mut.bytes[at] = saved;
    }
}

} // namespace
} // namespace cps
