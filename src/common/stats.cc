#include "stats.hh"

#include <cstdio>

namespace cps
{

Counter &
StatSet::scalar(const std::string &name)
{
    return counters_[name];
}

u64
StatSet::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.find(name) != counters_.end();
}

double
StatSet::ratio(const std::string &num, const std::string &den) const
{
    u64 d = value(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(value(num)) / static_cast<double>(d);
}

void
StatSet::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
}

std::vector<std::pair<std::string, u64>>
StatSet::snapshot() const
{
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(counters_.size());
    for (const auto &kv : counters_)
        out.emplace_back(kv.first, kv.second.value());
    return out;
}

void
StatSet::dump(const std::string &prefix) const
{
    for (const auto &kv : counters_) {
        std::printf("%s%-40s %20llu\n", prefix.c_str(), kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second.value()));
    }
}

} // namespace cps
