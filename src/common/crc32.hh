/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
 * checksum stored per section in compressed image files. Table-driven,
 * with the table built at compile time; no dependency beyond types.hh.
 */

#ifndef CPS_COMMON_CRC32_HH
#define CPS_COMMON_CRC32_HH

#include <array>
#include <cstddef>
#include <vector>

#include "types.hh"

namespace cps
{

namespace detail
{

constexpr std::array<u32, 256>
makeCrc32Table()
{
    std::array<u32, 256> table{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<u32, 256> kCrc32Table = makeCrc32Table();

} // namespace detail

/**
 * Updates a running CRC-32 with @p size bytes. Start (and finish) a
 * fresh checksum by passing/keeping the default @p crc of 0; chain
 * calls by feeding the previous return value back in.
 */
inline u32
crc32(const u8 *data, size_t size, u32 crc = 0)
{
    crc = ~crc;
    for (size_t i = 0; i < size; ++i)
        crc = detail::kCrc32Table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return ~crc;
}

/** CRC-32 of a whole byte vector. */
inline u32
crc32(const std::vector<u8> &bytes)
{
    return crc32(bytes.data(), bytes.size());
}

} // namespace cps

#endif // CPS_COMMON_CRC32_HH
