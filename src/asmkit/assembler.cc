#include "assembler.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa/isa.hh"

namespace cps
{

namespace
{

/** A parsed operand. */
struct Operand
{
    enum class Kind { Gpr, Fpr, Imm, Sym, Mem };

    Kind kind = Kind::Imm;
    unsigned reg = 0;   // Gpr/Fpr register number; Mem base register
    s64 value = 0;      // Imm value; Mem offset
    std::string sym;    // Sym name
};

/** One source line after lexing. */
struct Line
{
    int number = 0;
    std::vector<std::string> labels;
    std::string mnemonic; // empty for label-only lines
    std::vector<std::string> operandText;
    std::string rawOperands; // original operand substring (for .asciiz)
};

std::optional<unsigned>
parseGpr(const std::string &t)
{
    static const std::map<std::string, unsigned> aliases = [] {
        std::map<std::string, unsigned> m;
        for (unsigned i = 0; i < kNumGpr; ++i)
            m[gprName(i)] = i;
        return m;
    }();
    auto it = aliases.find(t);
    if (it != aliases.end())
        return it->second;
    if (t.size() >= 2 && t[0] == '$' &&
        std::isdigit(static_cast<unsigned char>(t[1]))) {
        char *end = nullptr;
        long v = std::strtol(t.c_str() + 1, &end, 10);
        if (*end == '\0' && v >= 0 && v < static_cast<long>(kNumGpr))
            return static_cast<unsigned>(v);
    }
    return std::nullopt;
}

std::optional<unsigned>
parseFpr(const std::string &t)
{
    if (t.size() >= 3 && t[0] == '$' && t[1] == 'f' &&
        std::isdigit(static_cast<unsigned char>(t[2]))) {
        char *end = nullptr;
        long v = std::strtol(t.c_str() + 2, &end, 10);
        if (*end == '\0' && v >= 0 && v < static_cast<long>(kNumFpr))
            return static_cast<unsigned>(v);
    }
    return std::nullopt;
}

std::optional<s64>
parseNumber(const std::string &t)
{
    if (t.empty())
        return std::nullopt;
    char *end = nullptr;
    long long v = std::strtoll(t.c_str(), &end, 0);
    if (*end != '\0')
        return std::nullopt;
    return v;
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** The assembler proper: lexes, sizes (pass 1), then emits (pass 2). */
class Assembler
{
  public:
    AsmResult
    run(const std::string &source)
    {
        lex(source);
        pass1();
        if (result_.errors.empty())
            pass2();
        result_.program.text.base = kTextBase;
        result_.program.data.base = kDataBase;
        result_.program.symbols = symbols_;
        auto main_it = symbols_.find("main");
        result_.program.entry =
            main_it != symbols_.end() ? main_it->second : kTextBase;
        return std::move(result_);
    }

  private:
    enum class Section { Text, Data };

    std::vector<Line> lines_;
    std::map<std::string, Addr> symbols_;
    AsmResult result_;

    // Location counters.
    Section section_ = Section::Text;
    Addr textPos_ = kTextBase;
    Addr dataPos_ = kDataBase;
    bool emitting_ = false; // pass 2?

    void
    error(const Line &line, const std::string &msg)
    {
        result_.errors.push_back(
            strfmt("line %d: %s", line.number, msg.c_str()));
    }

    // ---------------------------------------------------------- lexing

    void
    lex(const std::string &source)
    {
        size_t pos = 0;
        int lineno = 0;
        while (pos < source.size()) {
            size_t eol = source.find('\n', pos);
            if (eol == std::string::npos)
                eol = source.size();
            std::string text = source.substr(pos, eol - pos);
            pos = eol + 1;
            ++lineno;

            // Strip comments, but not a '#' inside a string literal.
            bool in_str = false;
            for (size_t i = 0; i < text.size(); ++i) {
                if (text[i] == '"' && (i == 0 || text[i - 1] != '\\'))
                    in_str = !in_str;
                else if (text[i] == '#' && !in_str) {
                    text.resize(i);
                    break;
                }
            }
            text = trim(text);
            if (text.empty())
                continue;

            Line line;
            line.number = lineno;

            // Peel off leading labels.
            for (;;) {
                size_t colon = text.find(':');
                if (colon == std::string::npos)
                    break;
                std::string head = trim(text.substr(0, colon));
                if (head.empty() || !isIdentStart(head[0]))
                    break;
                bool ident = true;
                for (char c : head)
                    ident = ident && isIdentChar(c);
                if (!ident)
                    break;
                line.labels.push_back(head);
                text = trim(text.substr(colon + 1));
            }

            if (!text.empty()) {
                size_t sp = text.find_first_of(" \t");
                line.mnemonic = sp == std::string::npos
                                    ? text : text.substr(0, sp);
                std::string ops = sp == std::string::npos
                                      ? "" : trim(text.substr(sp + 1));
                line.rawOperands = ops;
                line.operandText = splitOperands(ops);
            }
            lines_.push_back(std::move(line));
        }
    }

    static std::vector<std::string>
    splitOperands(const std::string &ops)
    {
        std::vector<std::string> out;
        std::string cur;
        bool in_str = false;
        for (char c : ops) {
            if (c == '"')
                in_str = !in_str;
            if (c == ',' && !in_str) {
                out.push_back(trim(cur));
                cur.clear();
            } else {
                cur += c;
            }
        }
        cur = trim(cur);
        if (!cur.empty())
            out.push_back(cur);
        return out;
    }

    // ---------------------------------------------------------- passes

    void
    resetCounters()
    {
        section_ = Section::Text;
        textPos_ = kTextBase;
        dataPos_ = kDataBase;
    }

    Addr &pos() { return section_ == Section::Text ? textPos_ : dataPos_; }

    void
    pass1()
    {
        emitting_ = false;
        resetCounters();
        for (const Line &line : lines_)
            handleLine(line);
    }

    void
    pass2()
    {
        emitting_ = true;
        resetCounters();
        for (const Line &line : lines_)
            handleLine(line);
    }

    void
    handleLine(const Line &line)
    {
        for (const std::string &label : line.labels) {
            if (!emitting_) {
                if (symbols_.count(label)) {
                    error(line, "duplicate label '" + label + "'");
                } else {
                    symbols_[label] = pos();
                }
            }
        }
        if (line.mnemonic.empty())
            return;
        if (line.mnemonic[0] == '.')
            handleDirective(line);
        else
            handleInstruction(line);
    }

    // ------------------------------------------------------ directives

    void
    emitByte(u8 b)
    {
        std::vector<u8> &seg = section_ == Section::Text
                                   ? result_.program.text.bytes
                                   : result_.program.data.bytes;
        seg.push_back(b);
    }

    void
    putBytes(const Line &line, std::initializer_list<u8> bytes)
    {
        (void)line;
        if (emitting_) {
            for (u8 b : bytes)
                emitByte(b);
        }
        pos() += static_cast<Addr>(bytes.size());
    }

    void
    putWord(u32 w)
    {
        if (emitting_) {
            emitByte(static_cast<u8>(w));
            emitByte(static_cast<u8>(w >> 8));
            emitByte(static_cast<u8>(w >> 16));
            emitByte(static_cast<u8>(w >> 24));
        }
        pos() += 4;
    }

    std::optional<s64>
    valueOf(const Line &line, const std::string &t)
    {
        if (auto num = parseNumber(t))
            return *num;
        // Symbol; only resolvable during pass 2.
        if (!emitting_)
            return 0;
        auto it = symbols_.find(t);
        if (it == symbols_.end()) {
            error(line, "undefined symbol '" + t + "'");
            return std::nullopt;
        }
        return it->second;
    }

    void
    handleDirective(const Line &line)
    {
        const std::string &d = line.mnemonic;
        if (d == ".text") {
            section_ = Section::Text;
        } else if (d == ".data") {
            section_ = Section::Data;
        } else if (d == ".globl" || d == ".global" || d == ".ent" ||
                   d == ".end") {
            // Accepted for compatibility; we export every label anyway.
        } else if (d == ".word") {
            for (const std::string &t : line.operandText) {
                auto v = valueOf(line, t);
                putWord(static_cast<u32>(v.value_or(0)));
            }
        } else if (d == ".half") {
            for (const std::string &t : line.operandText) {
                auto v = valueOf(line, t);
                u16 h = static_cast<u16>(v.value_or(0));
                putBytes(line, {static_cast<u8>(h), static_cast<u8>(h >> 8)});
            }
        } else if (d == ".byte") {
            for (const std::string &t : line.operandText) {
                auto v = valueOf(line, t);
                putBytes(line, {static_cast<u8>(v.value_or(0))});
            }
        } else if (d == ".space") {
            auto v = line.operandText.empty()
                         ? std::nullopt
                         : parseNumber(line.operandText[0]);
            if (!v || *v < 0) {
                error(line, ".space needs a non-negative size");
                return;
            }
            for (s64 i = 0; i < *v; ++i)
                putBytes(line, {0});
        } else if (d == ".align") {
            auto v = line.operandText.empty()
                         ? std::nullopt
                         : parseNumber(line.operandText[0]);
            if (!v || *v < 0 || *v > 12) {
                error(line, ".align needs an exponent 0..12");
                return;
            }
            Addr align = 1u << *v;
            while (pos() % align)
                putBytes(line, {0});
        } else if (d == ".ascii" || d == ".asciiz") {
            std::string s = line.rawOperands;
            size_t b = s.find('"');
            size_t e = s.rfind('"');
            if (b == std::string::npos || e <= b) {
                error(line, d + " needs a quoted string");
                return;
            }
            std::string body = s.substr(b + 1, e - b - 1);
            for (size_t i = 0; i < body.size(); ++i) {
                char c = body[i];
                if (c == '\\' && i + 1 < body.size()) {
                    ++i;
                    switch (body[i]) {
                      case 'n': c = '\n'; break;
                      case 't': c = '\t'; break;
                      case '0': c = '\0'; break;
                      case '\\': c = '\\'; break;
                      case '"': c = '"'; break;
                      default: c = body[i]; break;
                    }
                }
                putBytes(line, {static_cast<u8>(c)});
            }
            if (d == ".asciiz")
                putBytes(line, {0});
        } else {
            error(line, "unknown directive '" + d + "'");
        }
    }

    // ---------------------------------------------------- instructions

    std::optional<Operand>
    parseOperand(const Line &line, const std::string &t)
    {
        Operand op;
        if (auto g = parseGpr(t)) {
            op.kind = Operand::Kind::Gpr;
            op.reg = *g;
            return op;
        }
        if (auto f = parseFpr(t)) {
            op.kind = Operand::Kind::Fpr;
            op.reg = *f;
            return op;
        }
        // Memory operand: offset($reg)
        size_t lp = t.find('(');
        if (lp != std::string::npos && t.back() == ')') {
            std::string off = trim(t.substr(0, lp));
            std::string base = trim(t.substr(lp + 1, t.size() - lp - 2));
            auto reg = parseGpr(base);
            if (!reg) {
                error(line, "bad base register in '" + t + "'");
                return std::nullopt;
            }
            s64 offval = 0;
            if (!off.empty()) {
                auto n = parseNumber(off);
                if (!n) {
                    error(line, "bad offset in '" + t + "'");
                    return std::nullopt;
                }
                offval = *n;
            }
            op.kind = Operand::Kind::Mem;
            op.reg = *reg;
            op.value = offval;
            return op;
        }
        if (auto n = parseNumber(t)) {
            op.kind = Operand::Kind::Imm;
            op.value = *n;
            return op;
        }
        if (!t.empty() && isIdentStart(t[0])) {
            op.kind = Operand::Kind::Sym;
            op.sym = t;
            return op;
        }
        error(line, "cannot parse operand '" + t + "'");
        return std::nullopt;
    }

    /** Emits one encoded instruction word (and advances the counter). */
    void
    emitInst(const Inst &inst)
    {
        putWord(encode(inst));
    }

    bool
    checkOperands(const Line &line, const std::vector<Operand> &ops,
                  std::initializer_list<Operand::Kind> kinds)
    {
        if (ops.size() != kinds.size())
            return false;
        (void)line;
        size_t i = 0;
        for (Operand::Kind k : kinds) {
            // Imm positions also accept symbols.
            bool cell_ok = ops[i].kind == k ||
                (k == Operand::Kind::Imm &&
                 ops[i].kind == Operand::Kind::Sym);
            if (!cell_ok)
                return false;
            ++i;
        }
        return true;
    }

    /** Resolves a symbol-or-immediate operand to a value. */
    std::optional<s64>
    resolve(const Line &line, const Operand &op)
    {
        if (op.kind == Operand::Kind::Imm)
            return op.value;
        if (op.kind == Operand::Kind::Sym) {
            if (!emitting_)
                return 0;
            auto it = symbols_.find(op.sym);
            if (it == symbols_.end()) {
                error(line, "undefined symbol '" + op.sym + "'");
                return std::nullopt;
            }
            return it->second;
        }
        error(line, "expected immediate or symbol operand");
        return std::nullopt;
    }

    /** Computes a 16-bit branch displacement to @p target. */
    std::optional<u16>
    branchDisp(const Line &line, s64 target)
    {
        s64 delta = target - (static_cast<s64>(pos()) + 4);
        if (delta & 3) {
            error(line, "branch target not word aligned");
            return std::nullopt;
        }
        s64 words = delta >> 2;
        if (emitting_ && (words < -32768 || words > 32767)) {
            error(line, "branch target out of range");
            return std::nullopt;
        }
        return static_cast<u16>(words);
    }

    void
    handleInstruction(const Line &line)
    {
        const std::string &m = line.mnemonic;

        std::vector<Operand> ops;
        for (const std::string &t : line.operandText) {
            auto op = parseOperand(line, t);
            if (!op)
                return;
            ops.push_back(*op);
        }

        if (handlePseudo(line, m, ops))
            return;

        auto opcode = opFromMnemonic(m);
        if (!opcode) {
            error(line, "unknown mnemonic '" + m + "'");
            return;
        }
        encodeReal(line, *opcode, ops);
    }

    /** @return true when @p m was a pseudo-instruction (handled here). */
    bool
    handlePseudo(const Line &line, const std::string &m,
                 std::vector<Operand> &ops)
    {
        using K = Operand::Kind;

        auto gpr3 = [&](Op op, unsigned rd, unsigned rs, unsigned rt) {
            Inst i;
            i.op = op;
            i.rd = static_cast<u8>(rd);
            i.rs = static_cast<u8>(rs);
            i.rt = static_cast<u8>(rt);
            emitInst(i);
        };

        if (m == "nop") {
            putWord(kNopWord);
            return true;
        }
        if (m == "move") {
            if (!checkOperands(line, ops, {K::Gpr, K::Gpr})) {
                error(line, "move needs 2 registers");
                return true;
            }
            gpr3(Op::Addu, ops[0].reg, ops[1].reg, kRegZero);
            return true;
        }
        if (m == "neg") {
            if (!checkOperands(line, ops, {K::Gpr, K::Gpr})) {
                error(line, "neg needs 2 registers");
                return true;
            }
            gpr3(Op::Subu, ops[0].reg, kRegZero, ops[1].reg);
            return true;
        }
        if (m == "not") {
            if (!checkOperands(line, ops, {K::Gpr, K::Gpr})) {
                error(line, "not needs 2 registers");
                return true;
            }
            gpr3(Op::Nor, ops[0].reg, ops[1].reg, kRegZero);
            return true;
        }
        if (m == "li") {
            if (ops.size() != 2 || ops[0].kind != K::Gpr ||
                ops[1].kind != K::Imm) {
                error(line, "li needs register, constant");
                return true;
            }
            s64 v = ops[1].value;
            Inst i;
            if (v >= -32768 && v <= 32767) {
                i.op = Op::Addiu;
                i.rt = static_cast<u8>(ops[0].reg);
                i.rs = kRegZero;
                i.imm = static_cast<u16>(v);
                emitInst(i);
            } else if (v >= 0 && v <= 0xffff) {
                i.op = Op::Ori;
                i.rt = static_cast<u8>(ops[0].reg);
                i.rs = kRegZero;
                i.imm = static_cast<u16>(v);
                emitInst(i);
            } else {
                u32 uv = static_cast<u32>(v);
                i.op = Op::Lui;
                i.rt = static_cast<u8>(ops[0].reg);
                i.imm = static_cast<u16>(uv >> 16);
                emitInst(i);
                Inst j;
                j.op = Op::Ori;
                j.rt = static_cast<u8>(ops[0].reg);
                j.rs = static_cast<u8>(ops[0].reg);
                j.imm = static_cast<u16>(uv & 0xffff);
                emitInst(j);
            }
            return true;
        }
        if (m == "la") {
            if (ops.size() != 2 || ops[0].kind != K::Gpr ||
                (ops[1].kind != K::Sym && ops[1].kind != K::Imm)) {
                error(line, "la needs register, symbol");
                return true;
            }
            auto v = resolve(line, ops[1]);
            u32 uv = static_cast<u32>(v.value_or(0));
            Inst i;
            i.op = Op::Lui;
            i.rt = static_cast<u8>(ops[0].reg);
            i.imm = static_cast<u16>(uv >> 16);
            emitInst(i);
            Inst j;
            j.op = Op::Ori;
            j.rt = static_cast<u8>(ops[0].reg);
            j.rs = static_cast<u8>(ops[0].reg);
            j.imm = static_cast<u16>(uv & 0xffff);
            emitInst(j);
            return true;
        }
        if (m == "b") {
            if (ops.size() != 1) {
                error(line, "b needs a target");
                return true;
            }
            auto v = resolve(line, ops[0]);
            if (!v)
                return true;
            auto disp = branchDisp(line, *v);
            if (!disp)
                return true;
            Inst i;
            i.op = Op::Beq;
            i.rs = kRegZero;
            i.rt = kRegZero;
            i.imm = *disp;
            emitInst(i);
            return true;
        }
        if (m == "beqz" || m == "bnez") {
            if (ops.size() != 2 || ops[0].kind != K::Gpr) {
                error(line, m + " needs register, target");
                return true;
            }
            auto v = resolve(line, ops[1]);
            if (!v)
                return true;
            auto disp = branchDisp(line, *v);
            if (!disp)
                return true;
            Inst i;
            i.op = m == "beqz" ? Op::Beq : Op::Bne;
            i.rs = static_cast<u8>(ops[0].reg);
            i.rt = kRegZero;
            i.imm = *disp;
            emitInst(i);
            return true;
        }
        if (m == "blt" || m == "bge" || m == "bgt" || m == "ble") {
            if (ops.size() != 3 || ops[0].kind != K::Gpr ||
                ops[1].kind != K::Gpr) {
                error(line, m + " needs 2 registers and a target");
                return true;
            }
            bool swap = (m == "bgt" || m == "ble");
            unsigned rs = swap ? ops[1].reg : ops[0].reg;
            unsigned rt = swap ? ops[0].reg : ops[1].reg;
            gpr3(Op::Slt, kRegAt, rs, rt);
            auto v = resolve(line, ops[2]);
            if (!v)
                return true;
            auto disp = branchDisp(line, *v);
            if (!disp)
                return true;
            Inst i;
            i.op = (m == "blt" || m == "bgt") ? Op::Bne : Op::Beq;
            i.rs = kRegAt;
            i.rt = kRegZero;
            i.imm = *disp;
            emitInst(i);
            return true;
        }
        return false;
    }

    void
    encodeReal(const Line &line, Op op, std::vector<Operand> &ops)
    {
        using K = Operand::Kind;
        Inst i;
        i.op = op;

        auto needs = [&](std::initializer_list<K> kinds) {
            if (checkOperands(line, ops, kinds))
                return true;
            error(line,
                  strfmt("bad operands for '%s'", mnemonic(op)));
            return false;
        };

        switch (op) {
          case Op::Add: case Op::Addu: case Op::Sub: case Op::Subu:
          case Op::And: case Op::Or: case Op::Xor: case Op::Nor:
          case Op::Slt: case Op::Sltu: case Op::Mul: case Op::Mulu:
          case Op::Div: case Op::Divu: case Op::Rem: case Op::Remu:
            if (!needs({K::Gpr, K::Gpr, K::Gpr}))
                return;
            i.rd = static_cast<u8>(ops[0].reg);
            i.rs = static_cast<u8>(ops[1].reg);
            i.rt = static_cast<u8>(ops[2].reg);
            break;

          // Variable shifts use MIPS operand order: value in rt, shift
          // amount in rs ("sllv rd, rt, rs").
          case Op::Sllv: case Op::Srlv: case Op::Srav:
            if (!needs({K::Gpr, K::Gpr, K::Gpr}))
                return;
            i.rd = static_cast<u8>(ops[0].reg);
            i.rt = static_cast<u8>(ops[1].reg);
            i.rs = static_cast<u8>(ops[2].reg);
            break;

          case Op::Sll: case Op::Srl: case Op::Sra:
            if (!needs({K::Gpr, K::Gpr, K::Imm}))
                return;
            i.rd = static_cast<u8>(ops[0].reg);
            i.rt = static_cast<u8>(ops[1].reg);
            i.shamt = static_cast<u8>(ops[2].value & 31);
            break;

          case Op::Addi: case Op::Addiu: case Op::Slti: case Op::Sltiu:
          case Op::Andi: case Op::Ori: case Op::Xori:
            if (!needs({K::Gpr, K::Gpr, K::Imm}))
                return;
            i.rt = static_cast<u8>(ops[0].reg);
            i.rs = static_cast<u8>(ops[1].reg);
            i.imm = static_cast<u16>(ops[2].value);
            break;

          case Op::Lui:
            if (!needs({K::Gpr, K::Imm}))
                return;
            i.rt = static_cast<u8>(ops[0].reg);
            i.imm = static_cast<u16>(ops[1].value);
            break;

          case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu:
          case Op::Lhu: case Op::Sb: case Op::Sh: case Op::Sw:
            if (!needs({K::Gpr, K::Mem}))
                return;
            i.rt = static_cast<u8>(ops[0].reg);
            i.rs = static_cast<u8>(ops[1].reg);
            i.imm = static_cast<u16>(ops[1].value);
            break;

          case Op::Lwc1: case Op::Swc1:
            if (!needs({K::Fpr, K::Mem}))
                return;
            i.rt = static_cast<u8>(ops[0].reg);
            i.rs = static_cast<u8>(ops[1].reg);
            i.imm = static_cast<u16>(ops[1].value);
            break;

          case Op::J: case Op::Jal: {
            if (ops.size() != 1) {
                error(line, "j/jal need one target");
                return;
            }
            auto v = resolve(line, ops[0]);
            if (!v)
                return;
            if (*v & 3) {
                error(line, "jump target not word aligned");
                return;
            }
            i.target = static_cast<u32>(*v) >> 2;
            break;
          }

          case Op::Jr:
            if (!needs({K::Gpr}))
                return;
            i.rs = static_cast<u8>(ops[0].reg);
            break;

          case Op::Jalr:
            if (ops.size() == 1 && ops[0].kind == K::Gpr) {
                i.rd = kRegRa;
                i.rs = static_cast<u8>(ops[0].reg);
            } else if (needs({K::Gpr, K::Gpr})) {
                i.rd = static_cast<u8>(ops[0].reg);
                i.rs = static_cast<u8>(ops[1].reg);
            } else {
                return;
            }
            break;

          case Op::Beq: case Op::Bne: {
            if (!needs({K::Gpr, K::Gpr, K::Imm}))
                return;
            auto v = resolve(line, ops[2]);
            if (!v)
                return;
            auto disp = branchDisp(line, *v);
            if (!disp)
                return;
            i.rs = static_cast<u8>(ops[0].reg);
            i.rt = static_cast<u8>(ops[1].reg);
            i.imm = *disp;
            break;
          }

          case Op::Blez: case Op::Bgtz: case Op::Bltz: case Op::Bgez: {
            if (!needs({K::Gpr, K::Imm}))
                return;
            auto v = resolve(line, ops[1]);
            if (!v)
                return;
            auto disp = branchDisp(line, *v);
            if (!disp)
                return;
            i.rs = static_cast<u8>(ops[0].reg);
            i.imm = *disp;
            break;
          }

          case Op::Bc1t: case Op::Bc1f: {
            if (ops.size() != 1) {
                error(line, "bc1t/bc1f need a target");
                return;
            }
            auto v = resolve(line, ops[0]);
            if (!v)
                return;
            auto disp = branchDisp(line, *v);
            if (!disp)
                return;
            i.imm = *disp;
            break;
          }

          case Op::AddS: case Op::SubS: case Op::MulS: case Op::DivS:
            if (!needs({K::Fpr, K::Fpr, K::Fpr}))
                return;
            i.shamt = static_cast<u8>(ops[0].reg);
            i.rd = static_cast<u8>(ops[1].reg);
            i.rt = static_cast<u8>(ops[2].reg);
            break;

          case Op::AbsS: case Op::NegS: case Op::MovS: case Op::CvtSW:
          case Op::CvtWS:
            if (!needs({K::Fpr, K::Fpr}))
                return;
            i.shamt = static_cast<u8>(ops[0].reg);
            i.rd = static_cast<u8>(ops[1].reg);
            break;

          case Op::CEqS: case Op::CLtS: case Op::CLeS:
            if (!needs({K::Fpr, K::Fpr}))
                return;
            i.rd = static_cast<u8>(ops[0].reg);
            i.rt = static_cast<u8>(ops[1].reg);
            break;

          case Op::Mtc1: case Op::Mfc1:
            if (!needs({K::Gpr, K::Fpr}))
                return;
            i.rt = static_cast<u8>(ops[0].reg);
            i.rd = static_cast<u8>(ops[1].reg);
            break;

          case Op::Syscall: case Op::Break:
            break;

          case Op::Invalid:
          case Op::kNumOps:
            error(line, "unencodable operation");
            return;
        }

        emitInst(i);
    }
};

} // namespace

AsmResult
assembleSource(const std::string &source)
{
    Assembler as;
    return as.run(source);
}

Program
assembleOrDie(const std::string &source)
{
    AsmResult res = assembleSource(source);
    if (!res.ok()) {
        for (const std::string &e : res.errors)
            std::fprintf(stderr, "asm error: %s\n", e.c_str());
        cps_fatal("assembly failed with %zu error(s)", res.errors.size());
    }
    return std::move(res.program);
}

} // namespace cps
