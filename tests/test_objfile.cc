/**
 * @file
 * Serialization tests: program objects (.cpo) and compressed images
 * (.cpi) round-trip exactly, and corrupted inputs are rejected rather
 * than crashing.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "asmkit/assembler.hh"
#include "asmkit/objfile.hh"
#include "codepack/decompressor.hh"
#include "codepack/imagefile.hh"
#include "progen/progen.hh"

namespace cps
{
namespace
{

Program
sampleProgram()
{
    return assembleOrDie(R"(
.data
msg: .asciiz "hello"
tab: .word main, fn
.text
main:
    jal fn
    li $v0, 10
    syscall
fn:
    addiu $v0, $zero, 7
    jr $ra
)");
}

TEST(ObjFile, EncodeDecodeRoundTrip)
{
    Program prog = sampleProgram();
    auto bytes = encodeProgram(prog);
    auto back = decodeProgram(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->entry, prog.entry);
    EXPECT_EQ(back->text.base, prog.text.base);
    EXPECT_EQ(back->text.bytes, prog.text.bytes);
    EXPECT_EQ(back->data.base, prog.data.base);
    EXPECT_EQ(back->data.bytes, prog.data.bytes);
    EXPECT_EQ(back->symbols, prog.symbols);
}

TEST(ObjFile, FileRoundTrip)
{
    Program prog = sampleProgram();
    std::string path = ::testing::TempDir() + "cps_test_prog.cpo";
    ASSERT_TRUE(saveProgram(prog, path));
    auto back = loadProgram(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->text.bytes, prog.text.bytes);
    EXPECT_EQ(back->symbols.at("fn"), prog.symbols.at("fn"));
    std::remove(path.c_str());
}

TEST(ObjFile, RejectsBadMagic)
{
    std::vector<u8> junk{'N', 'O', 'P', 'E', 0, 0, 0, 0, 1, 2, 3};
    EXPECT_FALSE(decodeProgram(junk).has_value());
}

TEST(ObjFile, RejectsTruncation)
{
    Program prog = sampleProgram();
    auto bytes = encodeProgram(prog);
    for (size_t cut : {size_t{4}, bytes.size() / 2, bytes.size() - 1}) {
        std::vector<u8> trunc(bytes.begin(),
                              bytes.begin() + static_cast<long>(cut));
        EXPECT_FALSE(decodeProgram(trunc).has_value()) << cut;
    }
}

TEST(ObjFile, MissingFileIsNullopt)
{
    EXPECT_FALSE(loadProgram("/nonexistent/path/prog.cpo").has_value());
}

TEST(ObjFile, BenchmarkProgramRoundTrips)
{
    Program prog = generateProgram(findProfile("pegwit"));
    auto back = decodeProgram(encodeProgram(prog));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->text.bytes, prog.text.bytes);
    EXPECT_EQ(back->data.bytes.size(), prog.data.bytes.size());
}

// ------------------------------------------------------ image files

TEST(ImageFile, EncodeDecodeRoundTrip)
{
    Program prog = generateProgram(findProfile("pegwit"));
    codepack::CompressedImage img = codepack::compress(prog);
    auto back = codepack::decodeImage(codepack::encodeImage(img));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->textBase, img.textBase);
    EXPECT_EQ(back->origTextBytes, img.origTextBytes);
    EXPECT_EQ(back->paddedInsns, img.paddedInsns);
    EXPECT_EQ(back->bytes, img.bytes);
    EXPECT_EQ(back->indexTable, img.indexTable);
    EXPECT_EQ(back->comp.totalBits(), img.comp.totalBits());
    EXPECT_EQ(back->highDict.totalEntries(),
              img.highDict.totalEntries());
    EXPECT_EQ(back->lowDict.totalEntries(), img.lowDict.totalEntries());
}

TEST(ImageFile, ReloadedImageDecompressesIdentically)
{
    Program prog = generateProgram(findProfile("pegwit"));
    codepack::CompressedImage img = codepack::compress(prog);
    auto back = codepack::decodeImage(codepack::encodeImage(img));
    ASSERT_TRUE(back.has_value());
    codepack::Decompressor a(img), b(*back);
    EXPECT_EQ(a.decompressAll(), b.decompressAll());
}

TEST(ImageFile, FileRoundTrip)
{
    Program prog = sampleProgram();
    codepack::CompressedImage img = codepack::compress(prog);
    std::string path = ::testing::TempDir() + "cps_test_img.cpi";
    ASSERT_TRUE(codepack::saveImage(img, path));
    auto back = codepack::loadImage(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->bytes, img.bytes);
    std::remove(path.c_str());
}

TEST(ImageFile, RejectsBadMagic)
{
    std::vector<u8> junk{'X', 'X', 'X', 'X', 0, 0, 0, 0};
    EXPECT_FALSE(codepack::decodeImage(junk).has_value());
}

TEST(ImageFile, RejectsTruncation)
{
    Program prog = sampleProgram();
    codepack::CompressedImage img = codepack::compress(prog);
    auto bytes = codepack::encodeImage(img);
    for (size_t cut : {size_t{10}, bytes.size() / 3, bytes.size() - 2}) {
        std::vector<u8> trunc(bytes.begin(),
                              bytes.begin() + static_cast<long>(cut));
        EXPECT_FALSE(codepack::decodeImage(trunc).has_value()) << cut;
    }
}

TEST(ImageFile, DictionaryReconstruction)
{
    using codepack::Dictionary;
    std::vector<std::vector<u16>> entries(codepack::kNumHighBanks);
    entries[0] = {0x1111, 0x2222};
    entries[3] = {0x3333};
    Dictionary d =
        Dictionary::fromBankEntries(Dictionary::Kind::High, entries);
    EXPECT_EQ(d.totalEntries(), 3u);
    EXPECT_EQ(d.encode(0x1111).bank, 0u);
    EXPECT_EQ(d.encode(0x1111).index, 0u);
    EXPECT_EQ(d.encode(0x3333).bank, 3u);
    EXPECT_TRUE(d.encode(0x4444).raw);
    EXPECT_EQ(d.lookup(0, 1), 0x2222);
}

} // namespace
} // namespace cps
