/**
 * @file
 * On-"disk" format constants for our CodePack reconstruction.
 *
 * The paper (MICRO-32 §3.1) pins these properties of IBM's scheme:
 *   - each 32-bit instruction splits into 16-bit high and low halves;
 *   - two dictionaries (< 512 entries each, ~2KB on chip) translate
 *     halves to variable codewords of 2..11 bits = 2-3 bit tag + index;
 *   - the low half value 0 is encoded with a lone 2-bit tag;
 *   - halves absent from a dictionary are emitted raw behind a 3-bit tag;
 *   - 16 instructions form a compression block; 2 blocks form a
 *     compression group; blocks are byte aligned;
 *   - one 32-bit index-table entry per group maps the group to its
 *     compressed location (first block byte offset + short second-block
 *     offset);
 *   - a block whose compressed form would be larger than its native form
 *     may be stored uncompressed.
 *
 * The exact tag/bank split below is our reconstruction (the IBM manual is
 * out of print); every published constraint above is honoured. See
 * DESIGN.md "CodePack encoding - reconstruction notes".
 */

#ifndef CPS_CODEPACK_FORMAT_HH
#define CPS_CODEPACK_FORMAT_HH

#include "common/bitops.hh"
#include "common/types.hh"

namespace cps
{
namespace codepack
{

/** Instructions per compression block. */
constexpr unsigned kBlockInsns = 16;
/** Blocks per compression group (one index entry per group). */
constexpr unsigned kBlocksPerGroup = 2;
/** Instructions per compression group. */
constexpr unsigned kGroupInsns = kBlockInsns * kBlocksPerGroup;
/** Native bytes covered by one compression group. */
constexpr unsigned kGroupNativeBytes = kGroupInsns * 4;
/** Native bytes of one block stored raw (escape). */
constexpr unsigned kRawBlockBytes = kBlockInsns * 4;

/** Tag values (MSB-first bit patterns). */
constexpr u32 kTag0 = 0b00;   ///< 2 bits
constexpr u32 kTag1 = 0b01;   ///< 2 bits
constexpr u32 kTag2 = 0b10;   ///< 2 bits
constexpr u32 kTag3 = 0b110;  ///< 3 bits
constexpr u32 kTagRaw = 0b111; ///< 3 bits, followed by 16 literal bits

/** Number of literal bits behind a raw tag. */
constexpr unsigned kRawLiteralBits = 16;

/** One dictionary bank: a tag plus a fixed-width index. */
struct Bank
{
    unsigned tagBits;
    u32 tag;
    unsigned indexBits;

    constexpr unsigned entries() const { return 1u << indexBits; }
    constexpr unsigned codeBits() const { return tagBits + indexBits; }
};

/**
 * High-halfword banks: 16 + 64 + 128 + 256 = 464 entries (< 512),
 * codewords of 6, 8, 9 and 11 bits.
 */
constexpr Bank kHighBanks[] = {
    {2, kTag0, 4},
    {2, kTag1, 6},
    {2, kTag2, 7},
    {3, kTag3, 8},
};
constexpr unsigned kNumHighBanks = 4;

/**
 * Low-halfword banks: kTag0 is the special "value 0" codeword (2 bits,
 * no index); the dictionary proper is 16 + 128 + 256 = 400 entries
 * (< 512) with codewords of 6, 9 and 11 bits.
 */
constexpr Bank kLowBanks[] = {
    {2, kTag1, 4},
    {2, kTag2, 7},
    {3, kTag3, 8},
};
constexpr unsigned kNumLowBanks = 3;

/** Bits of the lone low-half "zero" codeword. */
constexpr unsigned kLowZeroBits = 2;

/**
 * Index-table entry layout (32 bits per compression group):
 *   bits [22:0]  first-block byte offset into the compressed region
 *   bit  [23]    first block stored raw (escape)
 *   bits [30:24] second-block byte offset relative to the first block
 *   bit  [31]    second block stored raw (escape)
 */
constexpr unsigned kIdxFirstOffsetBits = 23;
constexpr unsigned kIdxSecondOffsetBits = 7;
constexpr u32 kIdxFirstOffsetMask = (1u << kIdxFirstOffsetBits) - 1;

constexpr u32
makeIndexEntry(u32 first_off, bool first_raw, u32 second_off,
               bool second_raw)
{
    return (first_off & kIdxFirstOffsetMask) |
           (static_cast<u32>(first_raw) << 23) |
           ((second_off & ((1u << kIdxSecondOffsetBits) - 1)) << 24) |
           (static_cast<u32>(second_raw) << 31);
}

constexpr u32 idxFirstOffset(u32 e) { return e & kIdxFirstOffsetMask; }
constexpr bool idxFirstRaw(u32 e) { return (e >> 23) & 1u; }
constexpr u32
idxSecondOffset(u32 e)
{
    return (e >> 24) & ((1u << kIdxSecondOffsetBits) - 1);
}
constexpr bool idxSecondRaw(u32 e) { return (e >> 31) & 1u; }

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_FORMAT_HH
