#include "suite.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace cps
{

Suite::Suite()
{
    for (const BenchmarkProfile &p : standardProfiles())
        names_.push_back(p.name);
}

Suite &
Suite::instance()
{
    static Suite suite;
    return suite;
}

const BenchProgram &
Suite::get(const std::string &name)
{
    auto it = cache_.find(name);
    if (it != cache_.end())
        return *it->second;

    auto bench = std::make_unique<BenchProgram>();
    bench->profile = &findProfile(name);
    bench->program = generateProgram(*bench->profile);
    bench->image = codepack::compress(bench->program);
    const BenchProgram &ref = *bench;
    cache_.emplace(name, std::move(bench));
    return ref;
}

u64
Suite::runInsns()
{
    if (const char *env = std::getenv("CPS_INSNS")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return v;
        cps_warn("ignoring malformed CPS_INSNS='%s'", env);
    }
    return 1000000;
}

RunOutcome
runMachine(const BenchProgram &bench, const MachineConfig &cfg,
           u64 max_insns)
{
    Machine machine(bench.program, cfg,
                    cfg.codeModel == CodeModel::Native ? nullptr
                                                       : &bench.image);
    RunOutcome out;
    out.result = machine.run(max_insns);
    out.icacheMissRate = machine.icacheMissRate();
    out.indexCacheMissRate = machine.indexCacheMissRate();
    out.icacheMisses = machine.stats().value("icache.misses");
    out.bufferHits = machine.stats().value("decomp.buffer_hits");
    return out;
}

} // namespace cps
