/**
 * @file
 * Reproduces Table 9: the two optimizations individually and combined,
 * as speedup over native on the 4-issue machine.
 *
 * Paper shape: the index cache helps more than the wider decoder; both
 * together ("All") recover (and for go/perl/vortex slightly exceed)
 * native performance.
 */

#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    TextTable t;
    t.setTitle("Table 9: Comparison of optimizations "
               "(speedup over native, 4-issue)");
    t.addHeader({"Bench", "CodePack", "Index", "Decompress", "All"});

    MachineConfig idx_cfg = baseline4Issue();
    idx_cfg.codeModel = CodeModel::CodePackCustom;
    idx_cfg.decomp.indexCacheLines = 64;
    idx_cfg.decomp.indexesPerLine = 4;
    idx_cfg.decomp.burstIndexFill = true;

    MachineConfig dec_cfg = baseline4Issue();
    dec_cfg.codeModel = CodeModel::CodePackCustom;
    dec_cfg.decomp.decodeRate = 2;

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        m.add(bench, baseline4Issue(), insns);
        m.add(bench, baseline4Issue().withCodeModel(CodeModel::CodePack),
              insns);
        m.add(bench, idx_cfg, insns);
        m.add(bench, dec_cfg, insns);
        m.add(bench,
              baseline4Issue().withCodeModel(CodeModel::CodePackOptimized),
              insns);
    }
    m.run();

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };
    for (const std::string &name : suite.names()) {
        harness::CellOutcome native = m.nextCell();
        harness::CellOutcome base = m.nextCell();
        harness::CellOutcome idx = m.nextCell();
        harness::CellOutcome dec = m.nextCell();
        harness::CellOutcome all = m.nextCell();
        t.addRow({name, harness::fmtCells(native, base, fmtSpd),
                  harness::fmtCells(native, idx, fmtSpd),
                  harness::fmtCells(native, dec, fmtSpd),
                  harness::fmtCells(native, all, fmtSpd)});
    }
    t.print();
    return m.exitSummary();
}
