/**
 * @file
 * cpsim — the simulator driver: runs a program (assembly source, saved
 * object, or built-in benchmark) on one of the paper's machines under
 * any code model, and dumps timing results and statistics.
 *
 *   cpsim <input.s|input.cpo|@bench> [options]
 *     --machine 1issue|4issue|8issue      (default 4issue)
 *     --model native|codepack|optimized|software   (default native)
 *     --insns N                           (default 1000000)
 *     --icache KB  --bus BITS  --memlat FIRST,RATE
 *     --image file.cpi     use a pre-built compressed image
 *     --stats              dump every counter
 *     --output             print the program's syscall output
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "asmkit/assembler.hh"
#include "common/byteio.hh"
#include "asmkit/objfile.hh"
#include "codepack/imagefile.hh"
#include "harness/suite.hh"

using namespace cps;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(
            stderr,
            "usage: cpsim <input.s|input.cpo|@bench> [--machine "
            "1issue|4issue|8issue] [--model native|codepack|optimized|"
            "software] [--insns N] [--icache KB] [--bus BITS] "
            "[--memlat FIRST,RATE] [--image f.cpi] [--stats] "
            "[--output]\n");
        return 1;
    }

    std::string input = argv[1];
    MachineConfig cfg = baseline4Issue();
    CodeModel model = CodeModel::Native;
    u64 insns = 1000000;
    std::string image_path;
    bool dump_stats = false, show_output = false;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                cps_fatal("option '%s' needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--machine") {
            std::string m = next();
            if (m == "1issue")
                cfg = baseline1Issue();
            else if (m == "4issue")
                cfg = baseline4Issue();
            else if (m == "8issue")
                cfg = baseline8Issue();
            else
                cps_fatal("unknown machine '%s'", m.c_str());
        } else if (arg == "--model") {
            std::string m = next();
            if (m == "native")
                model = CodeModel::Native;
            else if (m == "codepack")
                model = CodeModel::CodePack;
            else if (m == "optimized")
                model = CodeModel::CodePackOptimized;
            else if (m == "software")
                model = CodeModel::CodePackSoftware;
            else
                cps_fatal("unknown code model '%s'", m.c_str());
        } else if (arg == "--insns") {
            insns = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--icache") {
            cfg.icache.sizeBytes =
                static_cast<u32>(std::strtoul(next().c_str(), nullptr,
                                              10)) * 1024;
        } else if (arg == "--bus") {
            cfg.mem.busWidthBits =
                static_cast<unsigned>(std::strtoul(next().c_str(),
                                                   nullptr, 10));
        } else if (arg == "--memlat") {
            std::string v = next();
            size_t comma = v.find(',');
            if (comma == std::string::npos)
                cps_fatal("--memlat wants FIRST,RATE");
            cfg.mem.firstAccess = std::strtoull(v.c_str(), nullptr, 10);
            cfg.mem.beatRate =
                std::strtoull(v.c_str() + comma + 1, nullptr, 10);
        } else if (arg == "--image") {
            image_path = next();
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--output") {
            show_output = true;
        } else {
            cps_fatal("unknown option '%s'", arg.c_str());
        }
    }

    // Load the program.
    Program prog;
    if (!input.empty() && input[0] == '@') {
        prog = generateProgram(findProfile(input.substr(1)));
    } else if (input.size() > 4 &&
               input.compare(input.size() - 4, 4, ".cpo") == 0) {
        auto loaded = loadProgram(input);
        if (!loaded)
            cps_fatal("cannot load program '%s'", input.c_str());
        prog = std::move(*loaded);
    } else {
        auto bytes = readFileBytes(input);
        if (!bytes)
            cps_fatal("cannot read '%s'", input.c_str());
        prog = assembleOrDie(std::string(bytes->begin(), bytes->end()));
    }

    // The compressed image, if any code model needs it.
    codepack::CompressedImage image;
    const codepack::CompressedImage *image_ptr = nullptr;
    if (model != CodeModel::Native) {
        if (!image_path.empty()) {
            auto loaded = codepack::loadImageChecked(image_path);
            if (!loaded)
                cps_fatal("cannot load image '%s': %s",
                          image_path.c_str(),
                          loaded.error().describe().c_str());
            image = std::move(*loaded);
        } else {
            image = codepack::compress(prog);
        }
        image_ptr = &image;
    }

    cfg.codeModel = model;
    Machine machine(prog, cfg, image_ptr);
    RunResult r = machine.run(insns);

    std::printf("machine: %s, model %d, %llu instructions\n",
                cfg.name.c_str(), static_cast<int>(model),
                static_cast<unsigned long long>(r.instructions));
    std::printf("cycles:  %llu (IPC %.3f)%s\n",
                static_cast<unsigned long long>(r.cycles), r.ipc(),
                r.programExited ? " [program exited]" : "");
    std::printf("I-cache: %.2f%% miss rate (%llu misses)\n",
                100.0 * machine.icacheMissRate(),
                static_cast<unsigned long long>(
                    machine.stats().value("icache.misses")));
    if (model != CodeModel::Native && image_ptr) {
        std::printf("codepack: ratio %.1f%%, buffer hits %llu, index "
                    "miss rate %.1f%%\n",
                    100.0 * image.compressionRatio(),
                    static_cast<unsigned long long>(
                        machine.stats().value("decomp.buffer_hits")),
                    100.0 * machine.indexCacheMissRate());
    }
    if (show_output)
        std::printf("program output:\n%s\n",
                    machine.executor().output().c_str());
    if (dump_stats) {
        std::printf("\nstatistics:\n");
        machine.stats().dump("  ");
    }
    return 0;
}
