/**
 * @file
 * On-disk format for compressed images, mirroring what a CodePack build
 * chain would ship to a target: the compressed byte region, the index
 * table, both dictionaries, and the compression metadata.
 */

#ifndef CPS_CODEPACK_IMAGEFILE_HH
#define CPS_CODEPACK_IMAGEFILE_HH

#include <optional>
#include <string>

#include "compressor.hh"

namespace cps
{
namespace codepack
{

/** Serializes @p img to @p path. @return false on I/O failure. */
bool saveImage(const CompressedImage &img, const std::string &path);

/** Loads an image saved by saveImage. nullopt on error/corruption. */
std::optional<CompressedImage> loadImage(const std::string &path);

/** In-memory encode/decode counterparts. */
std::vector<u8> encodeImage(const CompressedImage &img);
std::optional<CompressedImage> decodeImage(const std::vector<u8> &bytes);

} // namespace codepack
} // namespace cps

#endif // CPS_CODEPACK_IMAGEFILE_HH
