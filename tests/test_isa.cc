/**
 * @file
 * ISA encode/decode round-trip tests and instruction-attribute checks.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/isa.hh"

namespace cps
{
namespace
{

/** Ops that use the full 3-register R-type shape. */
const Op kRRR[] = {Op::Add, Op::Addu, Op::Sub, Op::Subu, Op::And, Op::Or,
                   Op::Xor, Op::Nor, Op::Slt, Op::Sltu, Op::Sllv,
                   Op::Srlv, Op::Srav, Op::Mul, Op::Mulu, Op::Div,
                   Op::Divu, Op::Rem, Op::Remu};

const Op kImmOps[] = {Op::Addi, Op::Addiu, Op::Slti, Op::Sltiu, Op::Andi,
                      Op::Ori, Op::Xori};

const Op kMemOps[] = {Op::Lb, Op::Lh, Op::Lw, Op::Lbu, Op::Lhu,
                      Op::Sb, Op::Sh, Op::Sw, Op::Lwc1, Op::Swc1};

const Op kBranchOps[] = {Op::Beq, Op::Bne, Op::Blez, Op::Bgtz, Op::Bltz,
                         Op::Bgez, Op::Bc1t, Op::Bc1f};

const Op kFp3[] = {Op::AddS, Op::SubS, Op::MulS, Op::DivS};
const Op kFp2[] = {Op::AbsS, Op::NegS, Op::MovS, Op::CvtSW, Op::CvtWS};

class RoundTrip : public ::testing::TestWithParam<int>
{};

TEST(IsaRoundTrip, RRROps)
{
    Rng rng(1);
    for (Op op : kRRR) {
        for (int i = 0; i < 20; ++i) {
            Inst in;
            in.op = op;
            in.rd = static_cast<u8>(rng.below(32));
            in.rs = static_cast<u8>(rng.below(32));
            in.rt = static_cast<u8>(rng.below(32));
            u32 word = encode(in);
            Inst out = decode(word);
            EXPECT_EQ(out.op, op) << mnemonic(op);
            EXPECT_EQ(out.rd, in.rd);
            EXPECT_EQ(out.rs, in.rs);
            EXPECT_EQ(out.rt, in.rt);
        }
    }
}

TEST(IsaRoundTrip, ShiftOps)
{
    Rng rng(2);
    for (Op op : {Op::Sll, Op::Srl, Op::Sra}) {
        for (int i = 0; i < 20; ++i) {
            Inst in;
            in.op = op;
            in.rd = static_cast<u8>(rng.below(32));
            in.rt = static_cast<u8>(rng.below(32));
            in.shamt = static_cast<u8>(rng.below(32));
            // sll $zero, $zero, 0 is the canonical NOP; skip it so the
            // op compare below stays meaningful.
            if (encode(in) == kNopWord)
                continue;
            Inst out = decode(encode(in));
            EXPECT_EQ(out.op, op);
            EXPECT_EQ(out.rd, in.rd);
            EXPECT_EQ(out.rt, in.rt);
            EXPECT_EQ(out.shamt, in.shamt);
        }
    }
}

TEST(IsaRoundTrip, ImmediateOps)
{
    Rng rng(3);
    for (Op op : kImmOps) {
        for (int i = 0; i < 20; ++i) {
            Inst in;
            in.op = op;
            in.rt = static_cast<u8>(rng.below(32));
            in.rs = static_cast<u8>(rng.below(32));
            in.imm = static_cast<u16>(rng.next());
            Inst out = decode(encode(in));
            EXPECT_EQ(out.op, op);
            EXPECT_EQ(out.rt, in.rt);
            EXPECT_EQ(out.rs, in.rs);
            EXPECT_EQ(out.imm, in.imm);
        }
    }
}

TEST(IsaRoundTrip, LuiIgnoresRs)
{
    Inst in;
    in.op = Op::Lui;
    in.rt = 5;
    in.imm = 0x1234;
    Inst out = decode(encode(in));
    EXPECT_EQ(out.op, Op::Lui);
    EXPECT_EQ(out.rt, 5);
    EXPECT_EQ(out.imm, 0x1234);
    EXPECT_EQ(out.rs, 0);
}

TEST(IsaRoundTrip, MemOps)
{
    Rng rng(4);
    for (Op op : kMemOps) {
        for (int i = 0; i < 20; ++i) {
            Inst in;
            in.op = op;
            in.rt = static_cast<u8>(rng.below(32));
            in.rs = static_cast<u8>(rng.below(32));
            in.imm = static_cast<u16>(rng.next());
            Inst out = decode(encode(in));
            EXPECT_EQ(out.op, op) << mnemonic(op);
            EXPECT_EQ(out.rt, in.rt);
            EXPECT_EQ(out.rs, in.rs);
            EXPECT_EQ(out.imm, in.imm);
        }
    }
}

TEST(IsaRoundTrip, Branches)
{
    Rng rng(5);
    for (Op op : kBranchOps) {
        for (int i = 0; i < 20; ++i) {
            Inst in;
            in.op = op;
            bool uses_rs = op != Op::Bc1t && op != Op::Bc1f;
            bool uses_rt = op == Op::Beq || op == Op::Bne;
            if (uses_rs)
                in.rs = static_cast<u8>(rng.below(32));
            if (uses_rt)
                in.rt = static_cast<u8>(rng.below(32));
            in.imm = static_cast<u16>(rng.next());
            Inst out = decode(encode(in));
            EXPECT_EQ(out.op, op) << mnemonic(op);
            EXPECT_EQ(out.imm, in.imm);
            if (uses_rs) {
                EXPECT_EQ(out.rs, in.rs);
            }
        }
    }
}

TEST(IsaRoundTrip, Jumps)
{
    Rng rng(6);
    for (Op op : {Op::J, Op::Jal}) {
        for (int i = 0; i < 20; ++i) {
            Inst in;
            in.op = op;
            in.target = static_cast<u32>(rng.next()) & 0x03ffffff;
            Inst out = decode(encode(in));
            EXPECT_EQ(out.op, op);
            EXPECT_EQ(out.target, in.target);
        }
    }
    Inst jr;
    jr.op = Op::Jr;
    jr.rs = 31;
    EXPECT_EQ(decode(encode(jr)).op, Op::Jr);
    EXPECT_EQ(decode(encode(jr)).rs, 31);

    Inst jalr;
    jalr.op = Op::Jalr;
    jalr.rs = 9;
    jalr.rd = 31;
    Inst out = decode(encode(jalr));
    EXPECT_EQ(out.op, Op::Jalr);
    EXPECT_EQ(out.rs, 9);
    EXPECT_EQ(out.rd, 31);
}

TEST(IsaRoundTrip, FpOps)
{
    Rng rng(7);
    for (Op op : kFp3) {
        Inst in;
        in.op = op;
        in.shamt = static_cast<u8>(rng.below(32)); // fd
        in.rd = static_cast<u8>(rng.below(32));    // fs
        in.rt = static_cast<u8>(rng.below(32));    // ft
        Inst out = decode(encode(in));
        EXPECT_EQ(out.op, op) << mnemonic(op);
        EXPECT_EQ(out.shamt, in.shamt);
        EXPECT_EQ(out.rd, in.rd);
        EXPECT_EQ(out.rt, in.rt);
    }
    for (Op op : kFp2) {
        Inst in;
        in.op = op;
        in.shamt = static_cast<u8>(rng.below(32));
        in.rd = static_cast<u8>(rng.below(32));
        Inst out = decode(encode(in));
        EXPECT_EQ(out.op, op) << mnemonic(op);
        EXPECT_EQ(out.shamt, in.shamt);
        EXPECT_EQ(out.rd, in.rd);
    }
    for (Op op : {Op::CEqS, Op::CLtS, Op::CLeS, Op::Mtc1, Op::Mfc1}) {
        Inst in;
        in.op = op;
        in.rd = static_cast<u8>(rng.below(32));
        in.rt = static_cast<u8>(rng.below(32));
        Inst out = decode(encode(in));
        EXPECT_EQ(out.op, op) << mnemonic(op);
        EXPECT_EQ(out.rd, in.rd);
        EXPECT_EQ(out.rt, in.rt);
    }
}

TEST(IsaRoundTrip, System)
{
    Inst sc;
    sc.op = Op::Syscall;
    EXPECT_EQ(decode(encode(sc)).op, Op::Syscall);
    Inst brk;
    brk.op = Op::Break;
    EXPECT_EQ(decode(encode(brk)).op, Op::Break);
}

TEST(IsaDecode, NopIsSllZero)
{
    Inst nop = decode(kNopWord);
    EXPECT_EQ(nop.op, Op::Sll);
    EXPECT_EQ(analyze(nop).cls, InstClass::Nop);
}

TEST(IsaDecode, GarbageIsInvalid)
{
    // Primary opcode 63 is unassigned.
    Inst bad = decode(0xfc000000);
    EXPECT_EQ(bad.op, Op::Invalid);
    EXPECT_EQ(analyze(bad).cls, InstClass::Invalid);
}

// ------------------------------------------------------------ analyze()

TEST(IsaAnalyze, AluRegisters)
{
    Inst add;
    add.op = Op::Addu;
    add.rd = 3;
    add.rs = 4;
    add.rt = 5;
    InstInfo info = analyze(add);
    EXPECT_EQ(info.cls, InstClass::IntAlu);
    EXPECT_EQ(info.dest, 3);
    EXPECT_EQ(info.src1, 4);
    EXPECT_EQ(info.src2, 5);
    EXPECT_EQ(info.latency, 1u);
    EXPECT_FALSE(info.isControl);
    EXPECT_FALSE(info.isMem);
}

TEST(IsaAnalyze, WritesToZeroAreDiscarded)
{
    Inst add;
    add.op = Op::Addu;
    add.rd = 0;
    add.rs = 4;
    add.rt = 5;
    EXPECT_EQ(analyze(add).dest, kRegNone);
}

TEST(IsaAnalyze, ReadsOfZeroDontTrack)
{
    Inst add;
    add.op = Op::Addu;
    add.rd = 1;
    add.rs = 0;
    add.rt = 0;
    InstInfo info = analyze(add);
    EXPECT_EQ(info.src1, kRegNone);
    EXPECT_EQ(info.src2, kRegNone);
}

TEST(IsaAnalyze, LoadIsMemWithDest)
{
    Inst lw;
    lw.op = Op::Lw;
    lw.rt = 8;
    lw.rs = 29;
    InstInfo info = analyze(lw);
    EXPECT_EQ(info.cls, InstClass::Load);
    EXPECT_TRUE(info.isMem);
    EXPECT_EQ(info.dest, 8);
    EXPECT_EQ(info.src1, 29);
}

TEST(IsaAnalyze, StoreHasNoDest)
{
    Inst sw;
    sw.op = Op::Sw;
    sw.rt = 8;
    sw.rs = 29;
    InstInfo info = analyze(sw);
    EXPECT_EQ(info.cls, InstClass::Store);
    EXPECT_EQ(info.dest, kRegNone);
    EXPECT_EQ(info.src1, 29);
    EXPECT_EQ(info.src2, 8);
}

TEST(IsaAnalyze, FpRegistersLiveInUpperSpace)
{
    Inst add;
    add.op = Op::AddS;
    add.shamt = 2; // fd
    add.rd = 4;    // fs
    add.rt = 6;    // ft
    InstInfo info = analyze(add);
    EXPECT_EQ(info.cls, InstClass::FpAlu);
    EXPECT_EQ(info.dest, kRegFprBase + 2);
    EXPECT_EQ(info.src1, kRegFprBase + 4);
    EXPECT_EQ(info.src2, kRegFprBase + 6);
}

TEST(IsaAnalyze, CompareWritesFcc)
{
    Inst c;
    c.op = Op::CLtS;
    c.rd = 1;
    c.rt = 2;
    EXPECT_EQ(analyze(c).dest, kRegFcc);
    Inst b;
    b.op = Op::Bc1t;
    InstInfo info = analyze(b);
    EXPECT_EQ(info.src1, kRegFcc);
    EXPECT_TRUE(info.isControl);
}

TEST(IsaAnalyze, ControlClasses)
{
    Inst j;
    j.op = Op::J;
    EXPECT_EQ(analyze(j).cls, InstClass::Jump);
    Inst jal;
    jal.op = Op::Jal;
    EXPECT_EQ(analyze(jal).dest, static_cast<int>(kRegRa));
    Inst jr;
    jr.op = Op::Jr;
    jr.rs = 31;
    EXPECT_EQ(analyze(jr).cls, InstClass::JumpReg);
    Inst beq;
    beq.op = Op::Beq;
    beq.rs = 1;
    beq.rt = 2;
    EXPECT_EQ(analyze(beq).cls, InstClass::Branch);
}

TEST(IsaAnalyze, LatenciesMatchClasses)
{
    Inst mul;
    mul.op = Op::Mul;
    mul.rd = 1;
    EXPECT_EQ(analyze(mul).latency, 3u);
    Inst div;
    div.op = Op::Div;
    div.rd = 1;
    EXPECT_EQ(analyze(div).latency, 20u);
    Inst fdiv;
    fdiv.op = Op::DivS;
    EXPECT_EQ(analyze(fdiv).latency, 12u);
    Inst fmul;
    fmul.op = Op::MulS;
    EXPECT_EQ(analyze(fmul).latency, 4u);
}

// ----------------------------------------------------------- mnemonics

TEST(IsaNames, MnemonicLookupRoundTrips)
{
    for (unsigned i = 1; i < static_cast<unsigned>(Op::kNumOps); ++i) {
        Op op = static_cast<Op>(i);
        auto back = opFromMnemonic(mnemonic(op));
        ASSERT_TRUE(back.has_value()) << mnemonic(op);
        EXPECT_EQ(*back, op);
    }
    EXPECT_FALSE(opFromMnemonic("bogus").has_value());
}

TEST(IsaNames, GprNames)
{
    EXPECT_STREQ(gprName(0), "$zero");
    EXPECT_STREQ(gprName(29), "$sp");
    EXPECT_STREQ(gprName(31), "$ra");
    EXPECT_STREQ(gprName(kRegAt), "$at");
}

TEST(IsaNames, Helpers)
{
    EXPECT_TRUE(isLink(Op::Jal));
    EXPECT_TRUE(isLink(Op::Jalr));
    EXPECT_FALSE(isLink(Op::Jr));
    EXPECT_TRUE(isFp(Op::AddS));
    EXPECT_TRUE(isFp(Op::Lwc1));
    EXPECT_FALSE(isFp(Op::Lw));
}

/** Property: decode(encode(x)) == x for randomly generated valid insts. */
TEST(IsaRoundTrip, RandomizedAllFormats)
{
    Rng rng(77);
    std::vector<Op> all;
    for (Op op : kRRR) all.push_back(op);
    for (Op op : kImmOps) all.push_back(op);
    for (Op op : kMemOps) all.push_back(op);
    for (int i = 0; i < 2000; ++i) {
        Inst in;
        in.op = all[rng.below(all.size())];
        in.rd = static_cast<u8>(rng.below(32));
        in.rs = static_cast<u8>(rng.below(32));
        in.rt = static_cast<u8>(rng.below(32));
        in.imm = static_cast<u16>(rng.next());
        u32 w1 = encode(in);
        Inst mid = decode(w1);
        u32 w2 = encode(mid);
        EXPECT_EQ(w1, w2) << mnemonic(in.op);
    }
}

} // namespace
} // namespace cps
