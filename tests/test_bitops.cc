/**
 * @file
 * Unit tests for the bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace cps
{
namespace
{

TEST(BitOps, BitsOfExtractsField)
{
    EXPECT_EQ(bitsOf(0xdeadbeef, 0, 4), 0xfu);
    EXPECT_EQ(bitsOf(0xdeadbeef, 4, 4), 0xeu);
    EXPECT_EQ(bitsOf(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bitsOf(0xffffffff, 0, 32), 0xffffffffu);
    EXPECT_EQ(bitsOf(0x80000000, 31, 1), 1u);
}

TEST(BitOps, BitsOfZeroWidthIsZero)
{
    EXPECT_EQ(bitsOf(0xffffffff, 5, 0), 0u);
}

TEST(BitOps, InsertBitsPlacesField)
{
    EXPECT_EQ(insertBits(0, 0, 4, 0xf), 0xfu);
    EXPECT_EQ(insertBits(0, 28, 4, 0xf), 0xf0000000u);
    EXPECT_EQ(insertBits(0xffffffff, 8, 8, 0), 0xffff00ffu);
    // Field wider than width is masked.
    EXPECT_EQ(insertBits(0, 0, 4, 0x123), 0x3u);
}

TEST(BitOps, InsertThenExtractRoundTrips)
{
    Rng rng(42);
    for (int i = 0; i < 1000; ++i) {
        unsigned width = 1 + static_cast<unsigned>(rng.below(31));
        unsigned lo = static_cast<unsigned>(rng.below(32 - width + 1));
        u32 field = static_cast<u32>(rng.next()) &
                    ((width >= 32) ? ~0u : ((1u << width) - 1));
        u32 base = static_cast<u32>(rng.next());
        u32 out = insertBits(base, lo, width, field);
        EXPECT_EQ(bitsOf(out, lo, width), field);
    }
}

TEST(BitOps, SignExtendPositive)
{
    EXPECT_EQ(signExtend(0x7fff, 16), 0x7fff);
    EXPECT_EQ(signExtend(0x0001, 16), 1);
    EXPECT_EQ(signExtend(0, 16), 0);
}

TEST(BitOps, SignExtendNegative)
{
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x80, 8), -128);
}

TEST(BitOps, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(BitOps, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(32), 5u);
    EXPECT_EQ(log2i(1ull << 33), 33u);
}

TEST(BitOps, RoundUpDown)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
    EXPECT_EQ(roundDown(9, 8), 8u);
    EXPECT_EQ(roundDown(7, 8), 0u);
    EXPECT_EQ(roundDown(16, 8), 16u);
}

TEST(BitOps, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(39, 8), 5u);
}

/** Property: roundUp(x, a) is the least multiple of a that is >= x. */
TEST(BitOps, RoundUpProperty)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        u64 a = 1ull << rng.below(16);
        u64 x = rng.below(1ull << 40);
        u64 r = roundUp(x, a);
        EXPECT_GE(r, x);
        EXPECT_EQ(r % a, 0u);
        EXPECT_LT(r - x, a);
    }
}

} // namespace
} // namespace cps
