/**
 * @file
 * Cycle-level decompressor-model tests.
 *
 * The central fixture reproduces the arithmetic of the paper's Figure 2:
 * with the baseline memory (10-cycle first access, 2-cycle beat rate,
 * 64-bit bus) and a block that streams in at ~21 bits per instruction,
 * the baseline decompressor delivers the 5th instruction of a block at
 * exactly t=25 after an index miss at t=0 — the very number the paper
 * quotes — and the optimized engine's index-cache hit plus doubled
 * decode rate pull the critical word into the t=11..15 range.
 */

#include <gtest/gtest.h>

#include "codepack/resilience.hh"
#include "codepack/timing.hh"
#include "common/rng.hh"
#include "isa/isa.hh"

namespace cps
{
namespace codepack
{
namespace
{

/**
 * Builds an image whose every instruction encodes in exactly 21 bits:
 * a unique (raw, 3+16 bits) high halfword plus the 2-bit low-zero
 * codeword. @p groups compression groups are generated.
 */
CompressedImage
rawHiImage(u32 groups)
{
    std::vector<u32> words;
    for (u32 i = 0; i < groups * kGroupInsns; ++i)
        words.push_back(((0x4000u + i) << 16) | 0x0000u);
    CompressedImage img = compressWords(words, kTextBase);
    // Sanity: the construction must give 21-bit instructions.
    EXPECT_EQ(img.highDict.totalEntries(), 0u);
    EXPECT_EQ(img.blocks[0].byteLen, (kBlockInsns * 21 + 7) / 8);
    return img;
}

struct Fixture
{
    CompressedImage img;
    MainMemory mem;
    StatSet stats;

    explicit Fixture(u32 groups = 4) : img(rawHiImage(groups)) {}

    DecompressorModel
    model(const DecompressorConfig &cfg)
    {
        return DecompressorModel(img, mem, cfg, stats);
    }
};

TEST(DecompTiming, Figure2BaselineIndexMiss)
{
    Fixture f;
    DecompressorModel m = f.model(DecompressorConfig{});
    LineFill fill = m.handleMiss(kTextBase, 0);

    // Index entry arrives at t=10 (one memory access); compressed beats
    // at t=20,22,24,...; serial decode at 1/cycle delivers instruction
    // k at 20+k. The paper's Figure 2-b example: critical instruction
    // number 5 available at t=25.
    std::array<Cycle, 8> expect{21, 22, 23, 24, 25, 26, 27, 28};
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(fill.wordReady[w], expect[w]) << "word " << w;
    EXPECT_EQ(fill.wordReady[4], 25u) << "the paper's t=25 anchor";
    EXPECT_FALSE(fill.fromBuffer);
    EXPECT_EQ(fill.fillDone, 28u);

    const MissTrace &t = m.lastTrace();
    EXPECT_FALSE(t.bufferHit);
    EXPECT_FALSE(t.indexHit);
    EXPECT_EQ(t.indexDone, 10u);
    ASSERT_FALSE(t.codeBeats.empty());
    EXPECT_EQ(t.codeBeats[0], 20u);
    EXPECT_EQ(t.codeBeats[1], 22u);
}

TEST(DecompTiming, PerfectIndexCacheSkipsTheIndexFetch)
{
    Fixture f;
    DecompressorConfig cfg;
    cfg.perfectIndexCache = true;
    DecompressorModel m = f.model(cfg);
    LineFill fill = m.handleMiss(kTextBase, 0);
    // Beats at t=10,12,...; decode at 1/cycle -> word k ready at 10+k+1.
    std::array<Cycle, 8> expect{11, 12, 13, 14, 15, 16, 17, 18};
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(fill.wordReady[w], expect[w]);
    EXPECT_TRUE(m.lastTrace().indexPerfect);
}

TEST(DecompTiming, TwoDecodersOverlapWithBeats)
{
    Fixture f;
    DecompressorConfig cfg;
    cfg.perfectIndexCache = true;
    cfg.decodeRate = 2;
    DecompressorModel m = f.model(cfg);
    LineFill fill = m.handleMiss(kTextBase, 0);
    // Beats: insns 1-3 at t=10, 4-6 at t=12, 7-8 at t=14. Two decoders:
    // t=11: {1,2}; t=12: {3}; t=13: {4,5}; t=14: {6}; t=15: {7,8}.
    std::array<Cycle, 8> expect{11, 11, 12, 13, 13, 14, 15, 15};
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(fill.wordReady[w], expect[w]) << "word " << w;
}

TEST(DecompTiming, SixteenDecodersAreArrivalLimited)
{
    Fixture f;
    DecompressorConfig cfg;
    cfg.perfectIndexCache = true;
    cfg.decodeRate = 16;
    DecompressorModel m = f.model(cfg);
    LineFill fill = m.handleMiss(kTextBase, 0);
    // Decode is now purely limited by beat arrival + 1 cycle.
    std::array<Cycle, 8> expect{11, 11, 11, 13, 13, 13, 15, 15};
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(fill.wordReady[w], expect[w]) << "word " << w;
}

TEST(DecompTiming, OutputBufferServesTheBlocksOtherLine)
{
    Fixture f;
    DecompressorModel m = f.model(DecompressorConfig{});
    m.handleMiss(kTextBase, 0); // decodes the whole first block
    // The block's second line streams from the buffer at the output
    // port rate (1/cycle), with no memory traffic.
    u64 bursts_before = f.mem.numBursts();
    LineFill fill = m.handleMiss(kTextBase + 32, 100);
    EXPECT_TRUE(fill.fromBuffer);
    EXPECT_EQ(f.mem.numBursts(), bursts_before);
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(fill.wordReady[w], 101u + w);
    EXPECT_EQ(f.stats.value("decomp.buffer_hits"), 1u);
}

TEST(DecompTiming, BufferHitWaitsForOngoingDecode)
{
    Fixture f;
    DecompressorModel m = f.model(DecompressorConfig{});
    m.handleMiss(kTextBase, 0); // line-1 insns decode at t=29..36
    LineFill fill = m.handleMiss(kTextBase + 32, 5);
    EXPECT_TRUE(fill.fromBuffer);
    // Port would deliver at 6..13 but decode finishes at 29..36.
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(fill.wordReady[w], 29u + w);
}

TEST(DecompTiming, BufferMissesAcrossBlocks)
{
    Fixture f;
    DecompressorModel m = f.model(DecompressorConfig{});
    m.handleMiss(kTextBase, 0);
    // The group's other *block* is not in the buffer.
    LineFill fill = m.handleMiss(kTextBase + 64, 100);
    EXPECT_FALSE(fill.fromBuffer);
    EXPECT_EQ(f.stats.value("decomp.buffer_hits"), 0u);
}

TEST(DecompTiming, BaselineIndexCacheRemembersLastGroup)
{
    Fixture f;
    DecompressorModel m = f.model(DecompressorConfig{});
    m.handleMiss(kTextBase, 0);        // group 0: index miss
    m.handleMiss(kTextBase + 64, 100); // group 0, block 1: index hit
    EXPECT_EQ(f.stats.value("decomp.index_lookups"), 2u);
    EXPECT_EQ(f.stats.value("decomp.index_hits"), 1u);
    m.handleMiss(kTextBase + 128, 200); // group 1: index miss
    m.handleMiss(kTextBase, 300);       // group 0 again: displaced
    EXPECT_EQ(f.stats.value("decomp.index_lookups"), 4u);
    EXPECT_EQ(f.stats.value("decomp.index_hits"), 1u);
}

TEST(DecompTiming, IndexHitAddsNoLatency)
{
    Fixture f;
    DecompressorModel m = f.model(DecompressorConfig{});
    m.handleMiss(kTextBase, 0);
    // Same group, other block, long after the channel quiesced: the
    // index probe is parallel with the L1 so beats start at now+10.
    LineFill fill = m.handleMiss(kTextBase + 64, 1000);
    EXPECT_EQ(m.lastTrace().indexDone, 1000u);
    EXPECT_EQ(m.lastTrace().codeBeats[0], 1010u);
    EXPECT_EQ(fill.wordReady[0], 1011u);
}

TEST(DecompTiming, BurstIndexFillFetchesWholeLine)
{
    Fixture f;
    DecompressorConfig cfg;
    cfg.indexCacheLines = 4;
    cfg.indexesPerLine = 4;
    cfg.burstIndexFill = true;
    DecompressorModel m = f.model(cfg);
    m.handleMiss(kTextBase, 0);
    // 16 bytes of indexes = 2 beats on the 64-bit bus: ready at t=12,
    // so code beats start at 22.
    EXPECT_EQ(m.lastTrace().indexDone, 12u);
    // Groups 1..3 are now covered by the fetched line.
    m.handleMiss(kTextBase + 128, 1000);
    EXPECT_TRUE(m.lastTrace().indexHit);
    m.handleMiss(kTextBase + 3 * 128, 2000);
    EXPECT_TRUE(m.lastTrace().indexHit);
}

TEST(DecompTiming, OptimizedConfigMatchesPaperSection53)
{
    DecompressorConfig cfg = DecompressorConfig::optimized();
    EXPECT_EQ(cfg.indexCacheLines, 64u);
    EXPECT_EQ(cfg.indexesPerLine, 4u);
    EXPECT_EQ(cfg.decodeRate, 2u);
    EXPECT_FALSE(cfg.perfectIndexCache);
}

TEST(DecompTiming, SharedChannelSerializesWithOtherTraffic)
{
    Fixture f;
    DecompressorModel m = f.model(DecompressorConfig{});
    // Another agent (e.g. a D-cache fill) holds the channel until t=50.
    f.mem.burstRead(0, 320); // 40 beats: done at 10+39*2 = 88
    Cycle channel_free = f.mem.busyUntil();
    LineFill fill = m.handleMiss(kTextBase, 20);
    EXPECT_GT(fill.wordReady[0], channel_free);
}

TEST(DecompTiming, NarrowBusStretchesDecode)
{
    Fixture f;
    f.mem.setTiming(MemTimingConfig{16, 10, 2}); // 16-bit bus
    DecompressorConfig cfg;
    cfg.perfectIndexCache = true;
    DecompressorModel m = f.model(cfg);
    LineFill fill = m.handleMiss(kTextBase, 0);
    // 42 bytes over a 2-byte bus: 21 beats, last at 10+20*2=50. The
    // requested line's 8th instruction ends at byte 21 -> beat 10
    // (t=30), decoded at t=31.
    EXPECT_EQ(fill.wordReady[7], 31u);
    // Insn 1 ends at byte 3 -> beat 1 (t=12), decoded t=13.
    EXPECT_EQ(fill.wordReady[0], 13u);
}

TEST(DecompTiming, RawEscapedBlockStillDecodes)
{
    // An image of incompressible words: blocks stored raw (64 bytes).
    Rng rng(5);
    std::vector<u32> words;
    for (u32 i = 0; i < kGroupInsns; ++i)
        words.push_back(static_cast<u32>(rng.next()));
    CompressedImage img = compressWords(words, kTextBase);
    ASSERT_TRUE(img.blocks[0].raw);
    MainMemory mem;
    StatSet stats;
    DecompressorConfig cfg;
    cfg.perfectIndexCache = true;
    DecompressorModel m(img, mem, cfg, stats);
    LineFill fill = m.handleMiss(kTextBase, 0);
    // 64 bytes = 8 beats at t=10..24; insns pass through at 1/cycle:
    // insn k ends at byte 4k -> beat (4k-1)/8.
    EXPECT_EQ(fill.wordReady[0], 11u);
    EXPECT_GE(fill.fillDone, fill.wordReady[0]);
}

TEST(DecompTiming, ResetClearsBufferAndIndexCache)
{
    Fixture f;
    DecompressorModel m = f.model(DecompressorConfig{});
    m.handleMiss(kTextBase, 0);
    m.reset();
    LineFill fill = m.handleMiss(kTextBase + 32, 100);
    EXPECT_FALSE(fill.fromBuffer);
    EXPECT_FALSE(m.lastTrace().indexHit);
}

TEST(DecompTiming, StatsCountEveryMiss)
{
    Fixture f;
    DecompressorModel m = f.model(DecompressorConfig{});
    m.handleMiss(kTextBase, 0);
    m.handleMiss(kTextBase + 32, 50);  // buffer hit
    m.handleMiss(kTextBase + 64, 100); // new block
    EXPECT_EQ(f.stats.value("decomp.misses"), 3u);
    EXPECT_EQ(f.stats.value("decomp.buffer_hits"), 1u);
    EXPECT_EQ(f.stats.value("decomp.insns_decoded"), 2u * kBlockInsns);
}

TEST(DecompTiming, ProtectionChargesCheckLatencyUniformly)
{
    // A clean checked fetch delays every word by exactly
    // eccCheckCycles relative to the paper's unprotected timing —
    // and charging zero check cycles reproduces it bit-identically.
    Fixture base_f;
    LineFill base =
        base_f.model(DecompressorConfig{}).handleMiss(kTextBase, 0);
    for (unsigned check : {0u, 1u, 3u}) {
        Fixture f;
        protectImage(f.img, ProtectKind::SecDed);
        DecompressorConfig cfg;
        cfg.protect = ProtectKind::SecDed;
        cfg.eccCheckCycles = check;
        DecompressorModel m = f.model(cfg);
        LineFill fill = m.handleMiss(kTextBase, 0);
        for (unsigned w = 0; w < 8; ++w)
            EXPECT_EQ(fill.wordReady[w], base.wordReady[w] + check)
                << "check=" << check << " word " << w;
        EXPECT_FALSE(m.softError());
    }
}

TEST(DecompTiming, CorrectedUpsetPaysCorrectLatency)
{
    Fixture base_f;
    LineFill base =
        base_f.model(DecompressorConfig{}).handleMiss(kTextBase, 0);

    Fixture f;
    protectImage(f.img, ProtectKind::SecDed);
    SoftErrorDomain domain(f.img, /*seed=*/3, /*flip_rate_ppm=*/0, 2);
    DecompressorConfig cfg;
    cfg.protect = ProtectKind::SecDed;
    cfg.softErrorDomain = &domain;
    // Upset the first stream bit of block 0: SEC-DED corrects it in
    // place during the fetch, costing check + correct cycles.
    f.img.bytes[f.img.blocks[0].byteOffset] ^= 0x01;
    domain.noteCorruption();
    DecompressorModel m = f.model(cfg);
    LineFill fill = m.handleMiss(kTextBase, 0);
    Cycle lat = cfg.eccCheckCycles + cfg.eccCorrectCycles;
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(fill.wordReady[w], base.wordReady[w] + lat);
    EXPECT_EQ(domain.stats().corrected, 1u);
    EXPECT_FALSE(m.softError());
}

TEST(DecompTiming, UnrecoverableUpsetLatchesSoftError)
{
    Fixture f;
    protectImage(f.img, ProtectKind::Crc8);
    SoftErrorDomain domain(f.img, /*seed=*/3, /*flip_rate_ppm=*/0, 1);
    DecompressorConfig cfg;
    cfg.protect = ProtectKind::Crc8;
    cfg.softErrorDomain = &domain;
    // Same upset in the working copy and the refetch source: CRC-8
    // detects on every retry and the model must refuse the block.
    f.img.bytes[f.img.blocks[0].byteOffset] ^= 0x01;
    domain.corruptBacking(0, 0);
    domain.noteCorruption();
    DecompressorModel m = f.model(cfg);
    LineFill fill = m.handleMiss(kTextBase, 0);
    EXPECT_TRUE(m.softError());
    EXPECT_NE(m.softErrorDetail().describe().find("group 0 block 0"),
              std::string::npos)
        << m.softErrorDetail().describe();
    // The fill is still finite so the pipeline drains; the machine
    // layer condemns the run to RunStatus::DecodeFault afterwards.
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_GT(fill.wordReady[w], 0u);
    EXPECT_EQ(domain.stats().unrecoverable, 1u);
}


/** Model invariants must hold for every bus width. */
class DecompTimingBusSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(DecompTimingBusSweep, InvariantsHoldAcrossBusWidths)
{
    Fixture f;
    f.mem.setTiming(MemTimingConfig{GetParam(), 10, 2});
    DecompressorModel m = f.model(DecompressorConfig{});

    Cycle now = 0;
    for (u32 line = 0; line < 8; ++line) {
        LineFill fill = m.handleMiss(kTextBase + line * 32, now);
        // Serial decode: word availability is non-decreasing within a
        // non-buffer fill, and every word is ready no earlier than the
        // request.
        for (unsigned w = 0; w < kLineWords; ++w) {
            EXPECT_GE(fill.wordReady[w], now);
            if (w > 0 && !fill.fromBuffer) {
                EXPECT_GE(fill.wordReady[w], fill.wordReady[w - 1]);
            }
            EXPECT_LE(fill.wordReady[w], fill.fillDone);
        }
        // Alternating lines of a block hit the output buffer.
        EXPECT_EQ(fill.fromBuffer, line % 2 == 1);
        now = fill.fillDone + 50;
    }
}

INSTANTIATE_TEST_SUITE_P(BusWidths, DecompTimingBusSweep,
                         ::testing::Values(16u, 32u, 64u, 128u));

/** Wider decode never delivers any word later. */
class DecompTimingRateSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(DecompTimingRateSweep, MoreDecodersNeverSlower)
{
    Fixture base_f, fast_f;
    DecompressorConfig base_cfg;
    base_cfg.perfectIndexCache = true;
    DecompressorConfig fast_cfg = base_cfg;
    fast_cfg.decodeRate = GetParam();
    DecompressorModel base = base_f.model(base_cfg);
    DecompressorModel fast = fast_f.model(fast_cfg);
    LineFill a = base.handleMiss(kTextBase, 0);
    LineFill b = fast.handleMiss(kTextBase, 0);
    for (unsigned w = 0; w < kLineWords; ++w)
        EXPECT_LE(b.wordReady[w], a.wordReady[w]) << "word " << w;
}

INSTANTIATE_TEST_SUITE_P(Rates, DecompTimingRateSweep,
                         ::testing::Values(2u, 4u, 8u, 16u));

} // namespace
} // namespace codepack
} // namespace cps
