/**
 * @file
 * Fixed-size worker thread pool for host-side parallelism.
 *
 * The simulator itself stays single-threaded per Machine; the pool
 * exists so independent (benchmark x machine-config) runs — and other
 * embarrassingly parallel host work like benchmark generation — can use
 * every core. Tasks carry no return value; callers write results into
 * pre-sized slots so completion order never affects output order.
 */

#ifndef CPS_COMMON_THREADPOOL_HH
#define CPS_COMMON_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cps
{

/**
 * Worker count policy: the CPS_THREADS environment variable when set to
 * a positive integer, otherwise std::thread::hardware_concurrency()
 * (minimum 1). Malformed values warn once and fall back to the default.
 */
unsigned defaultThreadCount();

/** A fixed pool of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Starts the workers.
     * @param threads worker count; 0 means defaultThreadCount()
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Waits for all submitted tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueues @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Blocks until every submitted task has finished. */
    void wait();

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Runs fn(0..n-1) across the pool and waits for completion. Tasks
     * are claimed in index order; any slot-indexed output the callback
     * writes is therefore deterministic regardless of thread count.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    size_t pending_ = 0; // queued + running tasks
    bool stopping_ = false;
};

} // namespace cps

#endif // CPS_COMMON_THREADPOOL_HH
