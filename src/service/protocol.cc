#include "protocol.hh"

#include "common/byteio.hh"
#include "common/logging.hh"
#include "harness/suite.hh"

namespace cps
{
namespace service
{

namespace
{

void
putString(std::vector<u8> &out, const std::string &s)
{
    put32(out, static_cast<u32>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

std::string
getString32(ByteCursor &cur, size_t max_len)
{
    u32 len = cur.get32();
    if (!cur.ok() || len > max_len || len > cur.remaining())
        return std::string();
    return cur.getString(len);
}

/** Per-string sanity bounds: no legitimate name or detail is longer. */
constexpr size_t kMaxNameLen = 256;
constexpr size_t kMaxDetailLen = 4096;
constexpr size_t kMaxReasonLen = 4096;
/** A request may not name more cells than the daemon would ever admit. */
constexpr u32 kMaxCellsPerRequest = 4096;

} // namespace

const char *
resultSourceName(ResultSource source)
{
    switch (source) {
    case ResultSource::Executed:
        return "executed";
    case ResultSource::Shared:
        return "shared";
    case ResultSource::Memo:
        return "memo";
    case ResultSource::Journal:
        return "journal";
    }
    return "?";
}

std::vector<u8>
encodeMatrixRequest(const MatrixRequestMsg &msg)
{
    std::vector<u8> out;
    put8(out, kProtocolVersion);
    put32(out, msg.requestId);
    put64(out, msg.deadlineMs);
    put32(out, static_cast<u32>(msg.cells.size()));
    for (const CellSpec &cell : msg.cells) {
        putString(out, cell.bench);
        put8(out, static_cast<u8>(cell.base));
        put8(out, cell.codeModel);
        put8(out, cell.injectFault);
        put64(out, cell.maxInsns);
    }
    return out;
}

bool
decodeMatrixRequest(const std::vector<u8> &payload, MatrixRequestMsg *out)
{
    ByteCursor cur(payload);
    if (cur.get8() != kProtocolVersion)
        return false;
    out->requestId = cur.get32();
    out->deadlineMs = cur.get64();
    u32 n = cur.get32();
    if (!cur.ok() || n > kMaxCellsPerRequest)
        return false;
    out->cells.clear();
    out->cells.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        CellSpec cell;
        cell.bench = getString32(cur, kMaxNameLen);
        cell.base = static_cast<BaseMachine>(cur.get8());
        cell.codeModel = cur.get8();
        cell.injectFault = cur.get8();
        cell.maxInsns = cur.get64();
        if (!cur.ok() || cell.bench.empty())
            return false;
        out->cells.push_back(std::move(cell));
    }
    return cur.ok() && cur.remaining() == 0;
}

std::vector<u8>
encodeCellResult(const CellResultMsg &msg)
{
    std::vector<u8> out;
    put8(out, kProtocolVersion);
    put32(out, msg.requestId);
    put32(out, msg.cellIndex);
    put8(out, static_cast<u8>(msg.status.state));
    put8(out, static_cast<u8>(msg.source));
    put32(out, msg.status.attempts);
    put32(out, static_cast<u32>(msg.status.termSignal));
    put32(out, static_cast<u32>(msg.status.exitCode));
    putString(out, msg.status.detail);
    if (msg.status.ok()) {
        // The exact envelope bytes a batch run journals — byte equality
        // with runMatrixCells() is a protocol invariant, not luck.
        std::vector<u8> env = harness::encodeRunOutcome(msg.outcome);
        out.insert(out.end(), env.begin(), env.end());
    }
    return out;
}

bool
decodeCellResult(const std::vector<u8> &payload, CellResultMsg *out)
{
    ByteCursor cur(payload);
    if (cur.get8() != kProtocolVersion)
        return false;
    out->requestId = cur.get32();
    out->cellIndex = cur.get32();
    out->status = harness::CellStatus();
    out->status.state = static_cast<harness::CellState>(cur.get8());
    out->source = static_cast<ResultSource>(cur.get8());
    out->status.attempts = cur.get32();
    out->status.termSignal = static_cast<int>(cur.get32());
    out->status.exitCode = static_cast<int>(cur.get32());
    out->status.detail = getString32(cur, kMaxDetailLen);
    if (!cur.ok())
        return false;
    out->outcome = RunOutcome();
    if (out->status.ok()) {
        Result<RunOutcome> env = harness::decodeRunOutcomeChecked(
            cur.getBytes(cur.remaining()));
        if (!env)
            return false;
        out->outcome = std::move(*env);
    }
    return cur.ok() && cur.remaining() == 0;
}

std::vector<u8>
encodeMatrixEnd(const MatrixEndMsg &msg)
{
    std::vector<u8> out;
    put8(out, kProtocolVersion);
    put32(out, msg.requestId);
    put8(out, static_cast<u8>(msg.status));
    put32(out, msg.okCells);
    put32(out, msg.failedCells);
    put32(out, msg.cancelledCells);
    return out;
}

bool
decodeMatrixEnd(const std::vector<u8> &payload, MatrixEndMsg *out)
{
    ByteCursor cur(payload);
    if (cur.get8() != kProtocolVersion)
        return false;
    out->requestId = cur.get32();
    out->status = static_cast<MatrixEndStatus>(cur.get8());
    out->okCells = cur.get32();
    out->failedCells = cur.get32();
    out->cancelledCells = cur.get32();
    return cur.ok() && cur.remaining() == 0;
}

std::vector<u8>
encodeOverloaded(const OverloadedMsg &msg)
{
    std::vector<u8> out;
    put8(out, kProtocolVersion);
    put32(out, msg.requestId);
    put32(out, msg.queuedCells);
    put32(out, msg.queueMax);
    putString(out, msg.reason);
    return out;
}

bool
decodeOverloaded(const std::vector<u8> &payload, OverloadedMsg *out)
{
    ByteCursor cur(payload);
    if (cur.get8() != kProtocolVersion)
        return false;
    out->requestId = cur.get32();
    out->queuedCells = cur.get32();
    out->queueMax = cur.get32();
    out->reason = getString32(cur, kMaxReasonLen);
    return cur.ok() && cur.remaining() == 0;
}

bool
resolveCellSpec(const CellSpec &spec, bool allow_faults,
                harness::RunRequest *out, std::string *err)
{
    Suite &suite = Suite::instance();
    bool known = false;
    for (const std::string &name : suite.names())
        known = known || name == spec.bench;
    if (!known) {
        *err = strfmt("unknown benchmark \"%s\"", spec.bench.c_str());
        return false;
    }

    MachineConfig base;
    switch (spec.base) {
    case BaseMachine::Issue1:
        base = baseline1Issue();
        break;
    case BaseMachine::Issue4:
        base = baseline4Issue();
        break;
    case BaseMachine::Issue8:
        base = baseline8Issue();
        break;
    default:
        *err = strfmt("unknown base machine %u",
                      static_cast<unsigned>(spec.base));
        return false;
    }

    // CodePackCustom needs a DecompressorConfig the wire doesn't carry;
    // running it with the default would silently compute a different
    // cell than the client meant.
    const CodeModel model = static_cast<CodeModel>(spec.codeModel);
    switch (model) {
    case CodeModel::Native:
    case CodeModel::CodePack:
    case CodeModel::CodePackOptimized:
    case CodeModel::CodePackSoftware:
    case CodeModel::NativePrefetch:
        break;
    default:
        *err = strfmt("unsupported code model %u",
                      static_cast<unsigned>(spec.codeModel));
        return false;
    }

    const auto fault = static_cast<harness::CellFault>(spec.injectFault);
    if (fault != harness::CellFault::None) {
        if (!allow_faults) {
            *err = "fault injection not permitted by this server";
            return false;
        }
        if (spec.injectFault >
            static_cast<u8>(harness::CellFault::SlowResult)) {
            *err = strfmt("unknown fault %u",
                          static_cast<unsigned>(spec.injectFault));
            return false;
        }
    }

    out->bench = &suite.get(spec.bench);
    out->cfg = base.withCodeModel(model);
    out->maxInsns = spec.maxInsns != 0 ? spec.maxInsns : Suite::runInsns();
    out->mode = ReplayMode::Auto;
    out->injectFault = fault;
    out->faultDelayMs = 0;
    return true;
}

} // namespace service
} // namespace cps
