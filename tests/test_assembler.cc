/**
 * @file
 * Assembler tests: syntax, directives, pseudo-instruction expansion,
 * label resolution, and error reporting.
 */

#include <gtest/gtest.h>

#include "asmkit/assembler.hh"
#include "isa/isa.hh"

namespace cps
{
namespace
{

Program
ok(const std::string &src)
{
    AsmResult res = assembleSource(src);
    EXPECT_TRUE(res.ok());
    for (const auto &e : res.errors)
        ADD_FAILURE() << e;
    return std::move(res.program);
}

std::vector<std::string>
errorsOf(const std::string &src)
{
    return assembleSource(src).errors;
}

TEST(Assembler, EmptySourceIsEmptyProgram)
{
    Program p = ok("");
    EXPECT_EQ(p.textWords(), 0u);
    EXPECT_TRUE(p.data.bytes.empty());
}

TEST(Assembler, CommentsAndBlankLinesIgnored)
{
    Program p = ok("# a comment\n\n   \n.text\n  nop # trailing\n");
    EXPECT_EQ(p.textWords(), 1u);
    EXPECT_EQ(p.word(0), kNopWord);
}

TEST(Assembler, BasicEncoding)
{
    Program p = ok("addu $v0, $a0, $a1\n");
    Inst i = decode(p.word(0));
    EXPECT_EQ(i.op, Op::Addu);
    EXPECT_EQ(i.rd, 2);
    EXPECT_EQ(i.rs, 4);
    EXPECT_EQ(i.rt, 5);
}

TEST(Assembler, NumericRegisters)
{
    Program p = ok("addu $2, $4, $5\n");
    Inst i = decode(p.word(0));
    EXPECT_EQ(i.rd, 2);
    EXPECT_EQ(i.rs, 4);
    EXPECT_EQ(i.rt, 5);
}

TEST(Assembler, MemoryOperands)
{
    Program p = ok("lw $t0, 16($sp)\nsw $t0, -4($gp)\nlw $t1, ($a0)\n");
    Inst lw = decode(p.word(0));
    EXPECT_EQ(lw.op, Op::Lw);
    EXPECT_EQ(lw.imm, 16);
    Inst sw = decode(p.word(1));
    EXPECT_EQ(static_cast<s16>(sw.imm), -4);
    Inst lw2 = decode(p.word(2));
    EXPECT_EQ(lw2.imm, 0);
    EXPECT_EQ(lw2.rs, 4);
}

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    Program p = ok(R"(
top:
    addiu $t0, $t0, 1
    bne $t0, $t1, top
    beq $t0, $t1, done
    nop
done:
    nop
)");
    // bne at word 1 targets word 0: disp = -2.
    Inst bne = decode(p.word(1));
    EXPECT_EQ(static_cast<s16>(bne.imm), -2);
    // beq at word 2 targets word 4: disp = +1.
    Inst beq = decode(p.word(2));
    EXPECT_EQ(static_cast<s16>(beq.imm), 1);
}

TEST(Assembler, JumpTargets)
{
    Program p = ok("main:\n  j main\n  jal main\n");
    Inst j = decode(p.word(0));
    EXPECT_EQ(j.target, kTextBase >> 2);
    EXPECT_EQ(p.entry, kTextBase);
}

TEST(Assembler, EntryDefaultsToMainLabel)
{
    Program p = ok("nop\nmain:\n  nop\n");
    EXPECT_EQ(p.entry, kTextBase + 4);
}

TEST(Assembler, DataDirectives)
{
    Program p = ok(R"(
.data
w:  .word 1, 2, 0x10
h:  .half 3, 4
b:  .byte 5
    .align 2
w2: .word 6
s:  .asciiz "hi"
)");
    EXPECT_EQ(p.symbol("w"), kDataBase);
    EXPECT_EQ(p.data.bytes[0], 1);
    EXPECT_EQ(p.data.bytes[4], 2);
    EXPECT_EQ(p.data.bytes[8], 0x10);
    EXPECT_EQ(p.symbol("h"), kDataBase + 12);
    EXPECT_EQ(p.data.bytes[12], 3);
    EXPECT_EQ(p.data.bytes[14], 4);
    EXPECT_EQ(p.symbol("b"), kDataBase + 16);
    EXPECT_EQ(p.symbol("w2") % 4, 0u);
    Addr s = p.symbol("s") - kDataBase;
    EXPECT_EQ(p.data.bytes[s], 'h');
    EXPECT_EQ(p.data.bytes[s + 1], 'i');
    EXPECT_EQ(p.data.bytes[s + 2], 0);
}

TEST(Assembler, SpaceReservesZeroes)
{
    Program p = ok(".data\nbuf: .space 64\nend: .word 1\n");
    EXPECT_EQ(p.symbol("end") - p.symbol("buf"), 64u);
}

TEST(Assembler, WordWithSymbolValue)
{
    Program p = ok(R"(
.text
fn: nop
.data
tab: .word fn
)");
    u32 stored = static_cast<u32>(p.data.bytes[0]) |
                 (static_cast<u32>(p.data.bytes[1]) << 8) |
                 (static_cast<u32>(p.data.bytes[2]) << 16) |
                 (static_cast<u32>(p.data.bytes[3]) << 24);
    EXPECT_EQ(stored, kTextBase);
}

// ------------------------------------------------------------- pseudos

TEST(Assembler, PseudoMove)
{
    Program p = ok("move $t0, $t1\n");
    Inst i = decode(p.word(0));
    EXPECT_EQ(i.op, Op::Addu);
    EXPECT_EQ(i.rd, 8);
    EXPECT_EQ(i.rs, 9);
    EXPECT_EQ(i.rt, 0);
}

TEST(Assembler, PseudoLiSmall)
{
    Program p = ok("li $t0, 42\nli $t1, -5\n");
    EXPECT_EQ(p.textWords(), 2u);
    Inst a = decode(p.word(0));
    EXPECT_EQ(a.op, Op::Addiu);
    EXPECT_EQ(a.imm, 42);
    Inst b = decode(p.word(1));
    EXPECT_EQ(static_cast<s16>(b.imm), -5);
}

TEST(Assembler, PseudoLiUnsigned16)
{
    Program p = ok("li $t0, 0xbeef\n");
    EXPECT_EQ(p.textWords(), 1u);
    Inst i = decode(p.word(0));
    EXPECT_EQ(i.op, Op::Ori);
    EXPECT_EQ(i.imm, 0xbeef);
}

TEST(Assembler, PseudoLiLargeExpandsToTwo)
{
    Program p = ok("li $t0, 0x12345678\n");
    EXPECT_EQ(p.textWords(), 2u);
    Inst lui = decode(p.word(0));
    EXPECT_EQ(lui.op, Op::Lui);
    EXPECT_EQ(lui.imm, 0x1234);
    Inst ori = decode(p.word(1));
    EXPECT_EQ(ori.op, Op::Ori);
    EXPECT_EQ(ori.imm, 0x5678);
}

TEST(Assembler, PseudoLaAlwaysTwoWords)
{
    Program p = ok(".data\nx: .word 0\n.text\nla $t0, x\n");
    EXPECT_EQ(p.textWords(), 2u);
    Inst lui = decode(p.word(0));
    EXPECT_EQ(lui.op, Op::Lui);
    EXPECT_EQ(lui.imm, kDataBase >> 16);
}

TEST(Assembler, PseudoBranches)
{
    Program p = ok(R"(
t:  nop
    b t
    beqz $t0, t
    bnez $t0, t
)");
    EXPECT_EQ(decode(p.word(1)).op, Op::Beq);
    EXPECT_EQ(decode(p.word(2)).op, Op::Beq);
    EXPECT_EQ(decode(p.word(3)).op, Op::Bne);
}

TEST(Assembler, PseudoCompareBranchesExpandToTwo)
{
    Program p = ok("x: blt $t0, $t1, x\nbge $t0, $t1, x\n");
    EXPECT_EQ(p.textWords(), 4u);
    Inst slt = decode(p.word(0));
    EXPECT_EQ(slt.op, Op::Slt);
    EXPECT_EQ(slt.rd, static_cast<u8>(kRegAt));
    EXPECT_EQ(decode(p.word(1)).op, Op::Bne);
    EXPECT_EQ(decode(p.word(3)).op, Op::Beq);
}

TEST(Assembler, PseudoSizesStableAcrossPasses)
{
    // A branch over a pseudo that expands: if pass-1 sizes disagreed
    // with pass-2 emission, this displacement would be wrong.
    Program p = ok(R"(
    beq $zero, $zero, after
    li $t0, 0x12345678
after:
    nop
)");
    Inst beq = decode(p.word(0));
    EXPECT_EQ(static_cast<s16>(beq.imm), 2); // skips both li words
}

TEST(Assembler, JalrForms)
{
    Program p = ok("jalr $t0\njalr $v0, $t1\n");
    Inst a = decode(p.word(0));
    EXPECT_EQ(a.op, Op::Jalr);
    EXPECT_EQ(a.rd, static_cast<u8>(kRegRa));
    Inst b = decode(p.word(1));
    EXPECT_EQ(b.rd, 2);
}

TEST(Assembler, FpInstructions)
{
    Program p = ok("add.s $f2, $f4, $f6\nlwc1 $f1, 8($sp)\nmtc1 $t0, $f3\n");
    EXPECT_EQ(decode(p.word(0)).op, Op::AddS);
    EXPECT_EQ(decode(p.word(1)).op, Op::Lwc1);
    EXPECT_EQ(decode(p.word(2)).op, Op::Mtc1);
}

// -------------------------------------------------------------- errors

TEST(AssemblerErrors, UnknownMnemonic)
{
    auto errs = errorsOf("frobnicate $t0\n");
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_NE(errs[0].find("unknown mnemonic"), std::string::npos);
    EXPECT_NE(errs[0].find("line 1"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    auto errs = errorsOf("j nowhere\n");
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("undefined symbol"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    auto errs = errorsOf("x: nop\nx: nop\n");
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("duplicate label"), std::string::npos);
}

TEST(AssemblerErrors, BadOperandCount)
{
    auto errs = errorsOf("addu $t0, $t1\n");
    ASSERT_FALSE(errs.empty());
}

TEST(AssemblerErrors, BadRegisterName)
{
    auto errs = errorsOf("addu $t0, $t1, $nope\n");
    ASSERT_FALSE(errs.empty());
}

TEST(AssemblerErrors, ErrorsCarryLineNumbers)
{
    auto errs = errorsOf("nop\nnop\nbogus\n");
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("line 3"), std::string::npos);
}

TEST(AssemblerErrors, UnknownDirective)
{
    auto errs = errorsOf(".frob 1\n");
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("unknown directive"), std::string::npos);
}

} // namespace
} // namespace cps
