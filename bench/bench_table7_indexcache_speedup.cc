/**
 * @file
 * Reproduces Table 7: speedup over native code from the index-cache
 * optimization alone, on the 4-issue machine — baseline CodePack, a
 * 64x4 fully-associative index cache, and a perfect index cache.
 *
 * Paper shape: the index cache recovers most of baseline CodePack's
 * loss; the perfect cache adds only a little more (its benefit is
 * bounded by how often indexes are re-fetched).
 */

#include "common/table.hh"
#include "harness/suite.hh"

using namespace cps;

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();

    TextTable t;
    t.setTitle("Table 7: Speedup due to index cache "
               "(over native, 4-issue)");
    t.addHeader({"Bench", "CodePack", "Index Cache (64x4)", "Perfect"});

    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        RunOutcome native = runMachine(bench, baseline4Issue(), insns);

        RunOutcome base = runMachine(
            bench, baseline4Issue().withCodeModel(CodeModel::CodePack),
            insns);

        MachineConfig idx_cfg = baseline4Issue();
        idx_cfg.codeModel = CodeModel::CodePackCustom;
        idx_cfg.decomp.indexCacheLines = 64;
        idx_cfg.decomp.indexesPerLine = 4;
        idx_cfg.decomp.burstIndexFill = true;
        RunOutcome idx = runMachine(bench, idx_cfg, insns);

        MachineConfig perf_cfg = baseline4Issue();
        perf_cfg.codeModel = CodeModel::CodePackCustom;
        perf_cfg.decomp.perfectIndexCache = true;
        RunOutcome perf = runMachine(bench, perf_cfg, insns);

        t.addRow({name, TextTable::fmt(speedup(native, base), 3),
                  TextTable::fmt(speedup(native, idx), 3),
                  TextTable::fmt(speedup(native, perf), 3)});
    }
    t.print();
    return 0;
}
