#include "suite.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/threadpool.hh"

namespace cps
{

Suite::Suite()
{
    for (const BenchmarkProfile &p : standardProfiles())
        names_.push_back(p.name);
}

Suite &
Suite::instance()
{
    static Suite suite;
    return suite;
}

std::unique_ptr<BenchProgram>
Suite::build(const std::string &name)
{
    auto bench = std::make_unique<BenchProgram>();
    bench->profile = &findProfile(name);
    bench->program = generateProgram(*bench->profile);
    bench->image = codepack::compress(bench->program);
    // Trace once here; every machine configuration replays the same
    // immutable buffer (published with the BenchProgram under the
    // cache mutex, so cross-thread reads are safe).
    if (replayEnabled() && traceInsns() > 0) {
        bench->trace = std::make_unique<const TraceBuffer>(
            recordTrace(bench->program, traceInsns()));
    }
    return bench;
}

const BenchProgram &
Suite::get(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(name);
        if (it != cache_.end())
            return *it->second;
    }
    // Generate outside the lock so concurrent get()s of different
    // benchmarks don't serialize; if two threads race on the same name
    // the second result is discarded (generation is deterministic).
    std::unique_ptr<BenchProgram> bench = build(name);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cache_.emplace(name, std::move(bench));
    (void)inserted;
    return *it->second;
}

void
Suite::pregenerate(unsigned threads)
{
    std::vector<std::string> missing;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const std::string &name : names_)
            if (cache_.find(name) == cache_.end())
                missing.push_back(name);
    }
    if (missing.empty())
        return;
    if (threads == 0)
        threads = defaultThreadCount();
    if (threads <= 1 || missing.size() <= 1) {
        for (const std::string &name : missing)
            get(name);
        return;
    }
    ThreadPool pool(threads);
    pool.parallelFor(missing.size(),
                     [&](size_t i) { get(missing[i]); });
}

u64
Suite::runInsns()
{
    static const u64 cached = [] {
        if (const char *env = std::getenv("CPS_INSNS")) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(env, &end, 10);
            if (end && *end == '\0' && v > 0)
                return static_cast<u64>(v);
            cps_warn("ignoring malformed CPS_INSNS='%s'", env);
        }
        return u64{1000000};
    }();
    return cached;
}

u64
Suite::traceInsns()
{
    static const u64 cached = [] {
        if (const char *env = std::getenv("CPS_TRACE_INSNS")) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(env, &end, 10);
            if (end && *end == '\0')
                return static_cast<u64>(v);
            cps_warn("ignoring malformed CPS_TRACE_INSNS='%s'", env);
        }
        // Slack past runInsns() so an OoO front end fetching ahead of
        // its commit budget never outruns a truncated trace (see
        // replayLookahead; 4096 covers any plausible RUU depth).
        return runInsns() + 4096;
    }();
    return cached;
}

bool
Suite::replayEnabled()
{
    static const bool cached = [] {
        const char *env = std::getenv("CPS_REPLAY");
        return env == nullptr || std::string(env) != "0";
    }();
    return cached;
}

RunOutcome
runMachine(const BenchProgram &bench, const MachineConfig &cfg,
           u64 max_insns, ReplayMode mode)
{
    const TraceBuffer *trace = nullptr;
    if (mode == ReplayMode::Auto && bench.trace &&
        bench.trace->covers(max_insns, replayLookahead(cfg)) &&
        Suite::replayEnabled()) {
        trace = bench.trace.get();
    }
    Machine machine(bench.program, cfg,
                    cfg.codeModel == CodeModel::Native ? nullptr
                                                       : &bench.image,
                    trace);
    RunOutcome out;
    out.result = machine.run(max_insns);
    out.icacheMissRate = machine.icacheMissRate();
    out.indexCacheMissRate = machine.indexCacheMissRate();
    out.icacheMisses = machine.stats().value("icache.misses");
    out.bufferHits = machine.stats().value("decomp.buffer_hits");
    out.missLatencyTotal = machine.stats().value("icache.miss_latency_total");
    return out;
}

} // namespace cps
