/**
 * @file
 * Software-managed CodePack decompression — the paper's future-work
 * suggestion (§6): "Even completely software-managed decompression may
 * be an attractive option to resource limited computers."
 *
 * Model: an I-cache miss traps to a handler running on the core. The
 * handler loads the index entry (a real memory access; software keeps
 * the last entry in a register, mirroring the hardware baseline),
 * burst-reads the compressed block, decodes it at a software rate of
 * several cycles per instruction, and keeps the decompressed block in a
 * scratchpad buffer so the block's other line costs only a short copy
 * loop. Decode cannot overlap the memory transfer the way the hardware
 * engine does: the handler starts only after the burst completes (it
 * reads the compressed bytes from a DMA buffer).
 */

#ifndef CPS_SIM_SOFTWARE_FETCH_HH
#define CPS_SIM_SOFTWARE_FETCH_HH

#include "codepack/decompressor.hh"
#include "pipeline/paths.hh"

namespace cps
{

/** Cost parameters of the software decompression handler. */
struct SoftwareDecompressConfig
{
    /** Trap entry + register save + dispatch, cycles. */
    Cycle trapOverhead = 24;
    /** Handler decode cost per instruction (bit twiddling + table
     *  lookups + store), cycles. */
    Cycle cyclesPerInsn = 8;
    /** Copy cost per instruction when the block is already in the
     *  scratchpad buffer. */
    Cycle copyCyclesPerInsn = 2;
    /** Trap return, cycles. */
    Cycle returnOverhead = 8;
};

/** Fetch path whose miss handler is a software routine on the core. */
class SoftwareCodePackFetchPath : public CachedFetchPath
{
  public:
    SoftwareCodePackFetchPath(const CacheConfig &icache_cfg,
                              const codepack::CompressedImage &img,
                              MainMemory &mem,
                              const SoftwareDecompressConfig &cfg,
                              StatSet &stats)
        : CachedFetchPath(icache_cfg, stats), img_(img), decomp_(img),
          blockCache_(decomp_), mem_(mem), cfg_(cfg),
          statTraps_(stats.scalar("swdecomp.traps")),
          statBufferHits_(stats.scalar("swdecomp.buffer_hits"))
    {}

  protected:
    std::array<Cycle, 8>
    fillLine(Addr addr, Cycle now) override
    {
        statTraps_.inc();
        u32 insn_idx = img_.insnIndexOf(addr & ~31u);
        u32 group = insn_idx / codepack::kGroupInsns;
        u32 block =
            (insn_idx / codepack::kBlockInsns) % codepack::kBlocksPerGroup;
        unsigned half = (insn_idx % codepack::kBlockInsns) / 8;

        Cycle t = now + cfg_.trapOverhead;
        std::array<Cycle, 8> ready{};

        if (bufValid_ && bufGroup_ == group && bufBlock_ == block) {
            // Scratchpad hit: copy the requested line out.
            statBufferHits_.inc();
            for (unsigned w = 0; w < 8; ++w) {
                t += cfg_.copyCyclesPerInsn;
                ready[w] = t;
            }
            for (Cycle &r : ready)
                r += cfg_.returnOverhead;
            return ready;
        }

        // Index entry: software keeps the last-used entry in a register.
        if (!(idxValid_ && idxGroup_ == group)) {
            BurstResult idx = mem_.burstRead(t, 4);
            t = idx.done + 1; // the load's use
            idxValid_ = true;
            idxGroup_ = group;
        }

        // Burst the compressed block into the DMA buffer; the handler
        // only starts decoding once the transfer is complete. The host
        // memoizes the functional decode by (group, block); the
        // simulated handler still pays full decode cycles below.
        const codepack::DecodedBlock &blk = blockCache_.get(group, block);
        BurstResult burst =
            mem_.burstRead(t, std::max<u32>(blk.byteLen, 1));
        t = burst.done;

        // Serial software decode.
        std::array<Cycle, codepack::kBlockInsns> done{};
        for (unsigned i = 0; i < codepack::kBlockInsns; ++i) {
            t += cfg_.cyclesPerInsn;
            done[i] = t;
        }
        bufValid_ = true;
        bufGroup_ = group;
        bufBlock_ = block;

        for (unsigned w = 0; w < 8; ++w)
            ready[w] = done[half * 8 + w] + cfg_.returnOverhead;
        return ready;
    }

    void
    resetMissPath() override
    {
        bufValid_ = false;
        idxValid_ = false;
    }

  private:
    const codepack::CompressedImage &img_;
    codepack::Decompressor decomp_;
    codepack::BlockCache blockCache_;
    MainMemory &mem_;
    SoftwareDecompressConfig cfg_;

    bool bufValid_ = false;
    u32 bufGroup_ = 0;
    u32 bufBlock_ = 0;
    bool idxValid_ = false;
    u32 idxGroup_ = 0;

    Counter &statTraps_;
    Counter &statBufferHits_;
};

} // namespace cps

#endif // CPS_SIM_SOFTWARE_FETCH_HH
