/**
 * @file
 * Component microbenchmarks (google-benchmark): raw throughput of the
 * pieces the tables exercise end to end — the CodePack compressor and
 * functional decompressor, the Huffman coder, cache and predictor
 * lookups, the functional executor, and both timing pipelines.
 */

#include <algorithm>

#include <benchmark/benchmark.h>

#include "branch/predictors.hh"
#include "cache/cache.hh"
#include "codepack/decompressor.hh"
#include "common/rng.hh"
#include "compress/ccrp.hh"
#include "compress/dict32.hh"
#include "harness/suite.hh"

namespace cps
{
namespace
{

const BenchProgram &
goBench()
{
    return Suite::instance().get("go");
}

std::vector<u32>
goWords()
{
    const Program &prog = goBench().program;
    std::vector<u32> words;
    for (size_t i = 0; i < prog.textWords(); ++i)
        words.push_back(prog.word(i));
    return words;
}

void
BM_CodePackCompress(benchmark::State &state)
{
    auto words = goWords();
    for (auto _ : state) {
        auto img = codepack::compressWords(words, kTextBase);
        benchmark::DoNotOptimize(img.bytes.data());
    }
    state.SetBytesProcessed(static_cast<s64>(state.iterations()) *
                            static_cast<s64>(words.size() * 4));
}
BENCHMARK(BM_CodePackCompress)->Unit(benchmark::kMillisecond);

void
BM_CodePackDecompress(benchmark::State &state)
{
    const BenchProgram &bench = goBench();
    codepack::Decompressor d(bench.image);
    u32 blocks = bench.image.numBlocks();
    u32 next = 0;
    for (auto _ : state) {
        auto blk = d.decompressFlatBlock(next);
        benchmark::DoNotOptimize(blk.words[0]);
        next = (next + 1) % blocks;
    }
    state.SetItemsProcessed(static_cast<s64>(state.iterations()) * 16);
}
BENCHMARK(BM_CodePackDecompress);

void
BM_CodePackDecompressChecked(benchmark::State &state)
{
    // The bit-serial checked decoder, for comparison against the LUT
    // fast path that BM_CodePackDecompress exercises.
    const BenchProgram &bench = goBench();
    codepack::Decompressor d(bench.image);
    u32 blocks = bench.image.numBlocks();
    u32 next = 0;
    for (auto _ : state) {
        auto blk = d.tryDecompressBlock(next / codepack::kBlocksPerGroup,
                                        next % codepack::kBlocksPerGroup);
        benchmark::DoNotOptimize(blk.value().words[0]);
        next = (next + 1) % blocks;
    }
    state.SetItemsProcessed(static_cast<s64>(state.iterations()) * 16);
}
BENCHMARK(BM_CodePackDecompressChecked);

void
BM_BlockCacheFetch(benchmark::State &state)
{
    // Re-fetching a small hot set through the memoized block cache —
    // the common pattern in the software-decompression fetch path.
    const BenchProgram &bench = goBench();
    codepack::Decompressor d(bench.image);
    codepack::BlockCache cache(d);
    u32 blocks = std::min<u32>(bench.image.numBlocks(), 16);
    u32 next = 0;
    for (auto _ : state) {
        const codepack::DecodedBlock &blk =
            cache.get(next / codepack::kBlocksPerGroup,
                      next % codepack::kBlocksPerGroup);
        benchmark::DoNotOptimize(blk.words[0]);
        next = (next + 1) % blocks;
    }
    state.SetItemsProcessed(static_cast<s64>(state.iterations()) * 16);
}
BENCHMARK(BM_BlockCacheFetch);

void
BM_CcrpCompress(benchmark::State &state)
{
    auto words = goWords();
    for (auto _ : state) {
        auto img = compress::CcrpImage::compress(words, kTextBase);
        benchmark::DoNotOptimize(img.compressionRatio());
    }
    state.SetBytesProcessed(static_cast<s64>(state.iterations()) *
                            static_cast<s64>(words.size() * 4));
}
BENCHMARK(BM_CcrpCompress)->Unit(benchmark::kMillisecond);

void
BM_Dict32Compress(benchmark::State &state)
{
    auto words = goWords();
    for (auto _ : state) {
        auto img = compress::Dict32Image::compress(words, kTextBase);
        benchmark::DoNotOptimize(img.compressionRatio());
    }
    state.SetBytesProcessed(static_cast<s64>(state.iterations()) *
                            static_cast<s64>(words.size() * 4));
}
BENCHMARK(BM_Dict32Compress)->Unit(benchmark::kMillisecond);

void
BM_IsaDecode(benchmark::State &state)
{
    auto words = goWords();
    size_t i = 0;
    for (auto _ : state) {
        Inst inst = decode(words[i]);
        benchmark::DoNotOptimize(inst.op);
        i = (i + 1) % words.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IsaDecode);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{16 * 1024, 32, 2});
    Rng rng(1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(static_cast<Addr>(rng.below(64 * 1024)) & ~3u);
    size_t i = 0;
    for (auto _ : state) {
        if (!cache.access(addrs[i]))
            cache.fill(addrs[i]);
        i = (i + 1) % addrs.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_GsharePredict(benchmark::State &state)
{
    GsharePredictor pred(14);
    Rng rng(2);
    Addr pc = 0x1000;
    for (auto _ : state) {
        bool taken = rng.chancePercent(60);
        benchmark::DoNotOptimize(pred.predict(pc));
        pred.update(pc, taken);
        pc += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredict);

void
BM_FunctionalExecution(benchmark::State &state)
{
    const BenchProgram &bench = goBench();
    MainMemory mem;
    mem.loadSegment(bench.program.text);
    mem.loadSegment(bench.program.data);
    DecodedText text(bench.program);
    Executor exec(text, mem);
    exec.reset(bench.program);
    for (auto _ : state) {
        if (exec.halted())
            exec.reset(bench.program);
        benchmark::DoNotOptimize(exec.step().pc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalExecution);

void
BM_OoOSimulation(benchmark::State &state)
{
    // Simulated instructions per wall-clock second on the 4-issue model.
    const BenchProgram &bench = goBench();
    for (auto _ : state) {
        RunOutcome out = runMachine(bench, baseline4Issue(), 50000);
        benchmark::DoNotOptimize(out.result.cycles);
    }
    state.SetItemsProcessed(static_cast<s64>(state.iterations()) * 50000);
    state.SetLabel("simulated insns/s");
}
BENCHMARK(BM_OoOSimulation)->Unit(benchmark::kMillisecond);

void
BM_InOrderSimulation(benchmark::State &state)
{
    const BenchProgram &bench = goBench();
    for (auto _ : state) {
        RunOutcome out = runMachine(bench, baseline1Issue(), 50000);
        benchmark::DoNotOptimize(out.result.cycles);
    }
    state.SetItemsProcessed(static_cast<s64>(state.iterations()) * 50000);
    state.SetLabel("simulated insns/s");
}
BENCHMARK(BM_InOrderSimulation)->Unit(benchmark::kMillisecond);

void
BM_CodePackSimulation(benchmark::State &state)
{
    const BenchProgram &bench = goBench();
    MachineConfig cfg =
        baseline4Issue().withCodeModel(CodeModel::CodePackOptimized);
    for (auto _ : state) {
        RunOutcome out = runMachine(bench, cfg, 50000);
        benchmark::DoNotOptimize(out.result.cycles);
    }
    state.SetItemsProcessed(static_cast<s64>(state.iterations()) * 50000);
    state.SetLabel("simulated insns/s");
}
BENCHMARK(BM_CodePackSimulation)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace cps
