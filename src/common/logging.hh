/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated: a simulator bug. Aborts.
 * fatal()  - the user asked for something impossible (bad configuration,
 *            malformed input). Exits with an error code.
 * warn()   - something questionable happened but simulation can continue.
 * inform() - a status message with no negative connotation.
 */

#ifndef CPS_COMMON_LOGGING_HH
#define CPS_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace cps
{

/** Formats printf-style arguments into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);

/** Formats printf-style arguments into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Count of warn() calls so far, exposed so tests can assert on warnings. */
unsigned long warnCount();

/**
 * Warns about a malformed environment knob exactly once per process per
 * variable name, no matter how many constructions re-read it:
 * "ignoring malformed NAME='VALUE' (expected EXPECTED)". Knob parsers
 * are re-run per construction by design (tests flip knobs between
 * constructions), so their diagnostics must be deduplicated here rather
 * than by call-site statics.
 */
void envWarnOnce(const char *name, const char *value,
                 const char *expected);

/** Silence warn()/inform() output (counters still advance). */
void setQuiet(bool quiet);

} // namespace cps

// The macros live outside the namespace so call sites read naturally.

#define cps_panic(...) ::cps::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cps_fatal(...) ::cps::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cps_warn(...) ::cps::warnImpl(__VA_ARGS__)
#define cps_inform(...) ::cps::informImpl(__VA_ARGS__)

/**
 * Assert that is kept in release builds; reports via panic(). A printf
 * message (with arguments) is required: cps_assert(x > 0, "bad x: %d", x).
 */
#define cps_assert(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::cps::panicImpl(__FILE__, __LINE__, __VA_ARGS__);               \
        }                                                                    \
    } while (0)

#endif // CPS_COMMON_LOGGING_HH
