/**
 * @file
 * Extension experiment: adaptive decompression prefetch (ROADMAP open
 * item grown from the paper's single output-buffer evaluation, §3.2).
 *
 * Four tables on the 4-issue machine (software handler on the 1-issue
 * embedded machine, matching bench_ext_software_decompress):
 *
 *   1. Speedup over native with next-block and stride prefetchers of
 *      varying depth ahead of the optimized hardware decompressor.
 *   2. Prefetch accuracy: useful prefetches / issued prefetches.
 *   3. Index-cache replacement and geometry ablation (LRU/FIFO/random
 *      victim selection, set-associative partitions): index miss rate.
 *   4. Software-managed decompression with trap-time prefetch into
 *      extra scratchpad slots.
 */

#include <string>
#include <vector>

#include "codepack/timing.hh"
#include "common/table.hh"
#include "harness/engine.hh"

using namespace cps;

namespace
{

/** Optimized hardware decompressor + the given prefetcher. */
MachineConfig
hwCfg(codepack::PrefetchKind kind, unsigned depth)
{
    MachineConfig cfg = baseline4Issue();
    cfg.codeModel = CodeModel::CodePackCustom;
    cfg.decomp = codepack::DecompressorConfig::optimized();
    cfg.decomp.prefetch = kind;
    cfg.decomp.prefetchDepth = depth;
    return cfg;
}

/** Optimized decompressor with an index-cache ablation. */
MachineConfig
idxCfg(unsigned lines, IndexReplacement repl, unsigned sets)
{
    MachineConfig cfg = baseline4Issue();
    cfg.codeModel = CodeModel::CodePackCustom;
    cfg.decomp = codepack::DecompressorConfig::optimized();
    cfg.decomp.indexCacheLines = lines;
    cfg.decomp.indexReplacement = repl;
    cfg.decomp.indexCacheSets = sets;
    return cfg;
}

/** Software handler with the given trap-time prefetcher. */
MachineConfig
swCfg(codepack::PrefetchKind kind, unsigned depth)
{
    MachineConfig cfg = baseline1Issue();
    cfg.codeModel = CodeModel::CodePackSoftware;
    cfg.software.prefetch = kind;
    cfg.software.prefetchDepth = depth;
    return cfg;
}

std::string
fmtAccuracy(const RunOutcome &o)
{
    if (o.prefetchIssued == 0)
        return "-";
    return TextTable::pct(static_cast<double>(o.prefetchHits) /
                          static_cast<double>(o.prefetchIssued));
}

} // namespace

int
main()
{
    u64 insns = Suite::runInsns();
    Suite &suite = Suite::instance();
    suite.pregenerate();

    using codepack::PrefetchKind;

    const std::vector<std::pair<PrefetchKind, unsigned>> kPf = {
        {PrefetchKind::NextBlock, 1},
        {PrefetchKind::NextBlock, 2},
        {PrefetchKind::Stride, 2},
        {PrefetchKind::Stride, 4},
    };
    const std::vector<std::tuple<unsigned, IndexReplacement, unsigned>>
        kIdx = {
            {64, IndexReplacement::Fifo, 1},
            {64, IndexReplacement::Random, 1},
            {64, IndexReplacement::Lru, 8},
            {16, IndexReplacement::Lru, 1},
            {16, IndexReplacement::Lru, 4},
        };
    const std::vector<std::pair<PrefetchKind, unsigned>> kSwPf = {
        {PrefetchKind::NextBlock, 1},
        {PrefetchKind::NextBlock, 2},
        {PrefetchKind::Stride, 2},
    };

    harness::Matrix m;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        m.add(bench, baseline4Issue(), insns);
        m.add(bench, hwCfg(PrefetchKind::None, 1), insns);
        for (auto [kind, depth] : kPf)
            m.add(bench, hwCfg(kind, depth), insns);
        for (auto [lines, repl, sets] : kIdx)
            m.add(bench, idxCfg(lines, repl, sets), insns);
        m.add(bench, baseline1Issue(), insns);
        m.add(bench, swCfg(PrefetchKind::None, 1), insns);
        for (auto [kind, depth] : kSwPf)
            m.add(bench, swCfg(kind, depth), insns);
    }
    m.run();

    // Collect per-bench cells in submission order.
    struct Cells
    {
        harness::CellOutcome native4, hwNone;
        std::vector<harness::CellOutcome> hwPf;
        std::vector<harness::CellOutcome> idx;
        harness::CellOutcome native1, swNone;
        std::vector<harness::CellOutcome> swPf;
    };
    std::vector<Cells> rows;
    for (size_t b = 0; b < suite.names().size(); ++b) {
        Cells c;
        c.native4 = m.nextCell();
        c.hwNone = m.nextCell();
        for (size_t i = 0; i < kPf.size(); ++i)
            c.hwPf.push_back(m.nextCell());
        for (size_t i = 0; i < kIdx.size(); ++i)
            c.idx.push_back(m.nextCell());
        c.native1 = m.nextCell();
        c.swNone = m.nextCell();
        for (size_t i = 0; i < kSwPf.size(); ++i)
            c.swPf.push_back(m.nextCell());
        rows.push_back(std::move(c));
    }

    auto fmtSpd = [](const RunOutcome &n, const RunOutcome &o) {
        return TextTable::fmt(speedup(n, o), 3);
    };

    TextTable t1;
    t1.setTitle("Extension: hardware block prefetch ahead of the "
                "optimized decompressor (speedup over native, 4-issue)");
    t1.addHeader({"Bench", "No prefetch", "Next-1", "Next-2", "Stride-2",
                  "Stride-4"});
    for (size_t b = 0; b < rows.size(); ++b) {
        const Cells &c = rows[b];
        std::vector<std::string> row{suite.names()[b]};
        row.push_back(harness::fmtCells(c.native4, c.hwNone, fmtSpd));
        for (const harness::CellOutcome &cell : c.hwPf)
            row.push_back(harness::fmtCells(c.native4, cell, fmtSpd));
        t1.addRow(row);
    }
    t1.print();

    TextTable t2;
    t2.setTitle("Prefetch accuracy (useful / issued)");
    t2.addHeader({"Bench", "Next-1", "Next-2", "Stride-2", "Stride-4"});
    for (size_t b = 0; b < rows.size(); ++b) {
        std::vector<std::string> row{suite.names()[b]};
        for (const harness::CellOutcome &cell : rows[b].hwPf)
            row.push_back(harness::fmtCell(cell, fmtAccuracy));
        t2.addRow(row);
    }
    t2.print();

    TextTable t3;
    t3.setTitle("Index-cache replacement/geometry ablation "
                "(index miss rate, 4-issue)");
    t3.addHeader({"Bench", "LRU 64x4", "FIFO 64x4", "Rand 64x4",
                  "LRU 64x4/8s", "LRU 16x4", "LRU 16x4/4s"});
    auto fmtIdx = [](const RunOutcome &o) {
        return TextTable::pct(o.indexCacheMissRate);
    };
    for (size_t b = 0; b < rows.size(); ++b) {
        const Cells &c = rows[b];
        std::vector<std::string> row{suite.names()[b]};
        row.push_back(harness::fmtCell(c.hwNone, fmtIdx));
        for (const harness::CellOutcome &cell : c.idx)
            row.push_back(harness::fmtCell(cell, fmtIdx));
        t3.addRow(row);
    }
    t3.print();

    TextTable t4;
    t4.setTitle("Software-managed decompression with trap-time prefetch "
                "(speedup over native, 1-issue embedded machine)");
    t4.addHeader({"Bench", "No prefetch", "Next-1", "Next-2", "Stride-2",
                  "Stride-2 acc"});
    for (size_t b = 0; b < rows.size(); ++b) {
        const Cells &c = rows[b];
        std::vector<std::string> row{suite.names()[b]};
        row.push_back(harness::fmtCells(c.native1, c.swNone, fmtSpd));
        for (const harness::CellOutcome &cell : c.swPf)
            row.push_back(harness::fmtCells(c.native1, cell, fmtSpd));
        row.push_back(harness::fmtCell(c.swPf.back(), fmtAccuracy));
        t4.addRow(row);
    }
    t4.print();

    return m.exitSummary();
}
