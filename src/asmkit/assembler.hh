/**
 * @file
 * A two-pass assembler for the simulated ISA.
 *
 * Supported syntax (a practical subset of classic MIPS assembler syntax):
 *
 *   - comments: '#' to end of line
 *   - labels:   'name:'
 *   - directives: .text .data .word .half .byte .space .align .asciiz
 *                 .globl (accepted, ignored)
 *   - registers: $0..$31, conventional aliases ($sp, $t0, ...), $f0..$f31
 *   - memory operands: offset($reg)
 *   - pseudo-instructions: nop, move, li, la, b, beqz, bnez, blt, bgt,
 *     ble, bge, neg, not, subi (expanded deterministically so that pass-1
 *     sizes always match pass-2 emission)
 *
 * There are no branch delay slots in this ISA.
 */

#ifndef CPS_ASMKIT_ASSEMBLER_HH
#define CPS_ASMKIT_ASSEMBLER_HH

#include <string>
#include <vector>

#include "program.hh"

namespace cps
{

/** Result of assembling a source buffer. */
struct AsmResult
{
    Program program;
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

/** Assembles @p source into a program image. Never exits; errors are
 *  collected with line numbers in the result. */
AsmResult assembleSource(const std::string &source);

/** Assembles @p source, calling fatal() on any error (for tools). */
Program assembleOrDie(const std::string &source);

} // namespace cps

#endif // CPS_ASMKIT_ASSEMBLER_HH
