/**
 * @file
 * The CodePack index cache (paper §5.3, Table 6).
 *
 * The index table lives in main memory; the decompressor caches recently
 * used entries. The paper's baseline CodePack keeps exactly the last-used
 * entry (1 line x 1 index); the optimized configuration is a
 * fully-associative cache of 64 lines with 4 index entries per line
 * ("1KB of index entries and 88 bytes of tag storage").
 *
 * Lookup is by compression-group number. A line covers @c indexesPerLine
 * consecutive groups, so a single fill maps indexesPerLine * 128 bytes of
 * native text.
 */

#ifndef CPS_CACHE_INDEX_CACHE_HH
#define CPS_CACHE_INDEX_CACHE_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace cps
{

/** Fully-associative cache over index-table entries, true LRU. */
class IndexCache
{
  public:
    /**
     * @param lines number of cache lines (fully associative)
     * @param indexes_per_line consecutive index entries per line
     */
    IndexCache(unsigned lines, unsigned indexes_per_line)
        : indexesPerLine_(indexes_per_line), lines_(lines)
    {
        cps_assert(lines >= 1 && indexes_per_line >= 1,
                   "index cache needs at least one line and one index");
    }

    unsigned numLines() const { return static_cast<unsigned>(lines_.size()); }
    unsigned indexesPerLine() const { return indexesPerLine_; }

    /** Total bytes of index entries held (each entry is 32 bits). */
    unsigned
    dataBytes() const
    {
        return numLines() * indexesPerLine_ * 4;
    }

    /**
     * Looks up the line covering compression group @p group.
     * @return true on hit (LRU updated)
     */
    bool
    access(u32 group)
    {
        Line *l = find(group);
        if (!l)
            return false;
        l->lastUse = ++useClock_;
        return true;
    }

    /** Inserts the line covering @p group, evicting LRU. */
    void
    fill(u32 group)
    {
        Line *victim = nullptr;
        for (Line &l : lines_) {
            if (!l.valid) {
                victim = &l;
                break;
            }
            if (!victim || l.lastUse < victim->lastUse)
                victim = &l;
        }
        victim->valid = true;
        victim->tag = group / indexesPerLine_;
        victim->lastUse = ++useClock_;
    }

    /** Invalidates all lines. */
    void
    invalidateAll()
    {
        for (Line &l : lines_)
            l = Line{};
        useClock_ = 0;
    }

  private:
    struct Line
    {
        bool valid = false;
        u32 tag = 0;
        u64 lastUse = 0;
    };

    Line *
    find(u32 group)
    {
        u32 tag = group / indexesPerLine_;
        for (Line &l : lines_) {
            if (l.valid && l.tag == tag)
                return &l;
        }
        return nullptr;
    }

    unsigned indexesPerLine_;
    u64 useClock_ = 0;
    std::vector<Line> lines_;
};

} // namespace cps

#endif // CPS_CACHE_INDEX_CACHE_HH
