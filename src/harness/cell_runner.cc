#include "cell_runner.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "chunked.hh"
#include "common/byteio.hh"
#include "common/ipc_frame.hh"
#include "common/logging.hh"
#include "common/socket.hh"

namespace cps
{
namespace harness
{

namespace
{

/** Frame type of a worker's result envelope. */
constexpr u32 kFrameResult = 1;

/** Result envelopes are ~100 bytes; anything past this is garbage. */
constexpr size_t kMaxResultPayload = 1u << 20;

/** Envelope format version (bump on any field change). */
constexpr u8 kEnvelopeVersion = 2;

/**
 * fork(2) from a threaded parent is safe for the child only if no
 * other thread is mid-fork mutating shared process state at that
 * instant; serializing the forks (workers still run concurrently)
 * keeps the window as small as possible.
 */
std::mutex forkMutex;

/**
 * Write ends of every in-flight cell's result pipe, guarded by
 * forkMutex. A worker forked while another cell's pipe is open
 * inherits that pipe's write end; unless each new child closes these
 * foreign fds, a long-lived worker keeps a dead sibling's pipe from
 * ever reaching EOF, and the dead cell's parent waits out its whole
 * deadline and misreports the crash as a timeout.
 */
std::vector<int> liveResultPipes;

/**
 * Parent-process fds (listening sockets, client connections, event
 * pipes) that every forked worker must close — see
 * registerWorkerCloseFd. Guarded by forkMutex like liveResultPipes.
 */
std::vector<int> workerCloseFds;

/** Closes and deregisters a result-pipe write end (parent side). */
void
closeResultPipe(int fd)
{
    std::lock_guard<std::mutex> lock(forkMutex);
    ::close(fd);
    liveResultPipes.erase(std::remove(liveResultPipes.begin(),
                                      liveResultPipes.end(), fd),
                          liveResultPipes.end());
}

u64
bitsOfDouble(double v)
{
    u64 bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
doubleOfBits(u64 bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** Runs the cell's simulation in this process (worker or inline). */
RunOutcome
executeCell(const RunRequest &req)
{
    return runMachine(*req.bench, req.cfg, req.maxInsns, req.mode);
}

/** Dies by SIGABRT with the default disposition restored: a
 *  sanitizer's SIGABRT report handler would run on the forked child's
 *  inherited lock state and can deadlock instead of dying, turning an
 *  injected crash into a timeout. */
[[noreturn]] void
hardAbort()
{
    ::signal(SIGABRT, SIG_DFL);
    std::abort();
}

/** Applies a worker-side injected fault; may never return. */
void
applyWorkerFault(CellFault fault, unsigned attempt, u32 delay_ms)
{
    switch (fault) {
      case CellFault::None:
      case CellFault::Garble: // handled at result-write time
        return;
      case CellFault::SlowResult:
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        return;
      case CellFault::Crash:
        hardAbort();
      case CellFault::CrashOnce:
        if (attempt == 0)
            hardAbort();
        return;
      case CellFault::KillSelf:
        ::kill(::getpid(), SIGKILL);
        // The signal is not guaranteed to be delivered before the next
        // instruction; wait for it rather than racing on.
        for (;;)
            ::pause();
      case CellFault::Hang:
        for (;;)
            ::pause();
      case CellFault::ExitNonzero:
        ::_exit(3);
    }
}

/** Reaps @p pid, blocking. Returns the raw wait status (or -1). */
int
reap(pid_t pid)
{
    int status = -1;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR)
            return -1;
    }
    return status;
}

/** Kills @p pid with SIGKILL and reaps it. */
void
killAndReap(pid_t pid)
{
    ::kill(pid, SIGKILL);
    reap(pid);
}

CellOutcome
failure(CellState state, unsigned attempt, std::string detail)
{
    CellOutcome out;
    out.status.state = state;
    out.status.attempts = attempt + 1;
    out.status.detail = std::move(detail);
    return out;
}

/** Folds a completed RunOutcome into a CellOutcome, surfacing an
 *  in-simulator watchdog stall as a structured failure. */
CellOutcome
fromRunOutcome(RunOutcome run, unsigned attempt)
{
    CellOutcome out;
    out.outcome = std::move(run);
    out.status.attempts = attempt + 1;
    if (out.outcome.result.status == RunStatus::Stalled) {
        out.status.state = CellState::Stalled;
        out.status.detail = out.outcome.result.statusDetail;
    } else if (out.outcome.result.status == RunStatus::DecodeFault) {
        out.status.state = CellState::DecodeFault;
        out.status.detail = out.outcome.result.statusDetail;
    }
    return out;
}

} // namespace

void
registerWorkerCloseFd(int fd)
{
    std::lock_guard<std::mutex> lock(forkMutex);
    if (std::find(workerCloseFds.begin(), workerCloseFds.end(), fd) ==
        workerCloseFds.end())
        workerCloseFds.push_back(fd);
}

void
unregisterWorkerCloseFd(int fd)
{
    std::lock_guard<std::mutex> lock(forkMutex);
    workerCloseFds.erase(std::remove(workerCloseFds.begin(),
                                     workerCloseFds.end(), fd),
                         workerCloseFds.end());
}

const char *
cellStateName(CellState state)
{
    switch (state) {
      case CellState::Ok:
        return "ok";
      case CellState::Crashed:
        return "crashed";
      case CellState::ExitedError:
        return "exited";
      case CellState::Timeout:
        return "timeout";
      case CellState::ProtocolError:
        return "protocol-error";
      case CellState::Stalled:
        return "stalled";
      case CellState::DecodeFault:
        return "decode-fault";
    }
    return "?";
}

std::string
CellStatus::describe() const
{
    std::string what;
    switch (state) {
      case CellState::Ok:
        what = fromJournal ? "ok (journal)" : "ok";
        break;
      case CellState::Crashed:
        what = strfmt("crashed (signal %d)", termSignal);
        break;
      case CellState::ExitedError:
        what = strfmt("exited (code %d)", exitCode);
        break;
      case CellState::Timeout:
        what = "timed out";
        break;
      case CellState::ProtocolError:
        what = "protocol error";
        break;
      case CellState::Stalled:
        what = "stalled";
        break;
      case CellState::DecodeFault:
        what = "decode fault";
        break;
    }
    if (attempts > 1)
        what += strfmt(" after %u attempts", attempts);
    if (!detail.empty())
        what += ": " + detail;
    return what;
}

std::string
failLabel(const CellStatus &status)
{
    switch (status.state) {
      case CellState::Ok:
        return "ok";
      case CellState::Crashed:
        return strfmt("FAILED(sig=%d)", status.termSignal);
      case CellState::ExitedError:
        return strfmt("FAILED(exit=%d)", status.exitCode);
      case CellState::Timeout:
        return "FAILED(timeout)";
      case CellState::ProtocolError:
        return "FAILED(protocol)";
      case CellState::Stalled:
        return "FAILED(stall)";
      case CellState::DecodeFault:
        return "FAILED(decode-fault)";
    }
    return "FAILED(?)";
}

const CellRunnerConfig &
CellRunnerConfig::fromEnv()
{
    static const CellRunnerConfig cached = [] {
        CellRunnerConfig cfg;
        auto readUnsigned = [](const char *name, unsigned long long max,
                               unsigned long long fallback) {
            const char *env = std::getenv(name);
            if (!env)
                return fallback;
            char *end = nullptr;
            unsigned long long v = std::strtoull(env, &end, 10);
            if (!end || *end != '\0' || v > max) {
                envWarnOnce(name, env, "an unsigned integer");
                return fallback;
            }
            return v;
        };
        if (const char *env = std::getenv("CPS_ISOLATE"))
            cfg.isolate = std::string(env) != "0";
        cfg.timeoutMs = static_cast<long>(
            readUnsigned("CPS_CELL_TIMEOUT_MS", 1ull << 40, 0));
        cfg.retries = static_cast<unsigned>(
            readUnsigned("CPS_CELL_RETRIES", 100, 1));
        cfg.backoffMs = static_cast<unsigned>(
            readUnsigned("CPS_CELL_BACKOFF_MS", 1ull << 20, 100));
        return cfg;
    }();
    return cached;
}

std::vector<u8>
encodeRunOutcome(const RunOutcome &out)
{
    std::vector<u8> bytes;
    put8(bytes, kEnvelopeVersion);
    put64(bytes, out.result.instructions);
    put64(bytes, out.result.cycles);
    put8(bytes, out.result.programExited ? 1 : 0);
    put8(bytes, static_cast<u8>(out.result.status));
    put32(bytes, static_cast<u32>(out.result.statusDetail.size()));
    bytes.insert(bytes.end(), out.result.statusDetail.begin(),
                 out.result.statusDetail.end());
    put64(bytes, bitsOfDouble(out.icacheMissRate));
    put64(bytes, bitsOfDouble(out.indexCacheMissRate));
    put64(bytes, out.icacheMisses);
    put64(bytes, out.bufferHits);
    put64(bytes, out.missLatencyTotal);
    put64(bytes, out.prefetchIssued);
    put64(bytes, out.prefetchHits);
    return bytes;
}

Result<RunOutcome>
decodeRunOutcomeChecked(const std::vector<u8> &bytes)
{
    ByteCursor cur(bytes);
    u8 version = cur.get8();
    if (!cur.ok() || version != kEnvelopeVersion) {
        return decodeErrorAtByte(DecodeStatus::BadVersion, 0,
                                 "result envelope version %u (want %u)",
                                 version, kEnvelopeVersion);
    }
    RunOutcome out;
    out.result.instructions = cur.get64();
    out.result.cycles = cur.get64();
    out.result.programExited = cur.get8() != 0;
    u8 status = cur.get8();
    if (!cur.ok() || status > static_cast<u8>(RunStatus::DecodeFault)) {
        return decodeErrorAtByte(DecodeStatus::Malformed, cur.pos(),
                                 "bad run status %u", status);
    }
    out.result.status = static_cast<RunStatus>(status);
    u32 detail_len = cur.get32();
    out.result.statusDetail = cur.getString(detail_len);
    out.icacheMissRate = doubleOfBits(cur.get64());
    out.indexCacheMissRate = doubleOfBits(cur.get64());
    out.icacheMisses = cur.get64();
    out.bufferHits = cur.get64();
    out.missLatencyTotal = cur.get64();
    out.prefetchIssued = cur.get64();
    out.prefetchHits = cur.get64();
    if (!cur.ok() || cur.remaining() != 0) {
        return decodeErrorAtByte(DecodeStatus::Truncated, cur.pos(),
                                 "result envelope truncated or oversized");
    }
    return out;
}

std::string
cellKey(const RunRequest &req)
{
    cps_assert(req.bench != nullptr && req.bench->profile != nullptr,
               "cellKey on request without bench");
    const MachineConfig &c = req.cfg;
    const PipelineConfig &p = c.pipeline;
    // Note: decomp keys the protection kind and its cycle costs, not
    // the soft-error domain pointer — a run with live fault injection
    // is not cacheable and must bypass the journal.
    std::string key = strfmt(
        "cell3;insns=%llu;mode=%u;machine=%s;"
        "pipe=%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u;"
        "ic=%u,%u,%u,%u;dc=%u,%u,%u,%u;mem=%u,%llu,%llu;model=%u;"
        "decomp=%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u;"
        "sw=%llu,%llu,%llu,%llu,%u,%u;",
        static_cast<unsigned long long>(req.maxInsns),
        static_cast<unsigned>(req.mode), c.name.c_str(),
        p.inOrder ? 1u : 0u, p.width, p.fetchQueue, p.ruuSize, p.lsqSize,
        p.numAlu, p.numMult, p.numMemPorts, p.numFpAlu, p.numFpMult,
        static_cast<unsigned>(p.predictor), p.mispredictExtra,
        c.icache.sizeBytes, c.icache.lineBytes, c.icache.assoc,
        static_cast<unsigned>(c.icache.policy),
        c.dcache.sizeBytes, c.dcache.lineBytes, c.dcache.assoc,
        static_cast<unsigned>(c.dcache.policy),
        c.mem.busWidthBits,
        static_cast<unsigned long long>(c.mem.firstAccess),
        static_cast<unsigned long long>(c.mem.beatRate),
        static_cast<unsigned>(c.codeModel),
        c.decomp.indexCacheLines, c.decomp.indexesPerLine,
        c.decomp.perfectIndexCache ? 1u : 0u,
        c.decomp.burstIndexFill ? 1u : 0u, c.decomp.decodeRate,
        static_cast<unsigned>(c.decomp.prefetch), c.decomp.prefetchDepth,
        static_cast<unsigned>(c.decomp.indexReplacement),
        c.decomp.indexCacheSets,
        static_cast<unsigned>(c.decomp.protect), c.decomp.eccCheckCycles,
        c.decomp.eccCorrectCycles,
        static_cast<unsigned long long>(c.software.trapOverhead),
        static_cast<unsigned long long>(c.software.cyclesPerInsn),
        static_cast<unsigned long long>(c.software.copyCyclesPerInsn),
        static_cast<unsigned long long>(c.software.returnOverhead),
        static_cast<unsigned>(c.software.prefetch),
        c.software.prefetchDepth);
    // The watchdog can change a cell's outcome (a stall aborts), so its
    // knobs are inputs too.
    key += strfmt("wd=%llu,%u;",
                  static_cast<unsigned long long>(p.watchdogInterval),
                  p.watchdogStallLimit);
    // Speculative chunking changes the numbers (exact mode does not,
    // but keying it too keeps one journal entry per execution policy).
    const harness::ChunkOptions &chunk = harness::ChunkOptions::fromEnv();
    if (req.mode == ReplayMode::Auto && chunk.enabled()) {
        key += strfmt("chunk=%llu,%llu,%u;",
                      static_cast<unsigned long long>(chunk.chunkInsns),
                      static_cast<unsigned long long>(chunk.warmupInsns),
                      chunk.exact ? 1u : 0u);
    }
    return key + benchProgramKey(*req.bench->profile);
}

std::string
matrixKey(const std::vector<RunRequest> &requests)
{
    // Full cell keys would make the matrix key megabytes long; their
    // hashes spread just as well, and each journal record re-checks its
    // own cell-key hash anyway.
    std::string key =
        strfmt("matrix1;cells=%zu;", requests.size());
    for (const RunRequest &req : requests)
        key += ArtifactCache::keyHash(cellKey(req)) + ";";
    return key;
}

CellOutcome
CellRunner::run(const RunRequest &req) const
{
    CellOutcome out;
    for (unsigned attempt = 0;; ++attempt) {
        out = runAttempt(req, attempt);
        if (out.status.ok())
            return out;
        // A watchdog stall or a decode fault is a deterministic
        // property of the cell; re-running it would fail identically.
        if (out.status.state == CellState::Stalled ||
            out.status.state == CellState::DecodeFault)
            return out;
        if (attempt >= cfg_.retries)
            return out;
        unsigned delay = cfg_.backoffMs << attempt;
        if (cfg_.backoffMs > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
}

CellOutcome
CellRunner::runAttempt(const RunRequest &req, unsigned attempt) const
{
    cps_assert(req.bench != nullptr, "cell run without bench");
    return cfg_.isolate ? runIsolated(req, attempt)
                        : runInline(req, attempt);
}

CellOutcome
CellRunner::runInline(const RunRequest &req, unsigned attempt) const
{
    // Inline faults are applied honestly — a crash really crashes the
    // process. Tests inject faults only under isolation; the fault
    // campaign refuses to run inline.
    applyWorkerFault(req.injectFault, attempt, req.faultDelayMs);
    return fromRunOutcome(executeCell(req), attempt);
}

CellOutcome
CellRunner::runIsolated(const RunRequest &req, unsigned attempt) const
{
    int fds[2];
    pid_t pid;
    {
        // Pipe creation, write-end registration and fork happen under
        // one lock so every child sees a complete registry of the
        // write ends it inherited.
        std::lock_guard<std::mutex> lock(forkMutex);
        if (::pipe(fds) != 0) {
            return failure(CellState::ProtocolError, attempt,
                           strfmt("pipe: %s", std::strerror(errno)));
        }
        liveResultPipes.push_back(fds[1]);
        pid = ::fork();
        if (pid == 0) {
            for (int fd : liveResultPipes)
                if (fd != fds[1])
                    ::close(fd);
            for (int fd : workerCloseFds)
                ::close(fd);
        }
    }
    if (pid < 0) {
        int err = errno;
        ::close(fds[0]);
        closeResultPipe(fds[1]);
        return failure(CellState::ProtocolError, attempt,
                       strfmt("fork: %s", std::strerror(err)));
    }

    if (pid == 0) {
        // ------------------------------------------------------ worker
        ::close(fds[0]);
        // A parent that timed out and closed its read end must turn
        // the result write into a plain failed write, not SIGPIPE.
        ignoreSigpipe();
        applyWorkerFault(req.injectFault, attempt, req.faultDelayMs);
        RunOutcome run = executeCell(req);
        std::vector<u8> payload = encodeRunOutcome(run);
        if (req.injectFault == CellFault::Garble) {
            // Ship a frame whose payload byte was flipped after the CRC
            // was computed: structurally present, verifiably wrong.
            std::vector<u8> frame = encodeFrame(kFrameResult, payload);
            frame[frame.size() / 2] ^= 0xA5;
            size_t sent = 0;
            while (sent < frame.size()) {
                ssize_t w = ::write(fds[1], frame.data() + sent,
                                    frame.size() - sent);
                if (w <= 0)
                    break;
                sent += static_cast<size_t>(w);
            }
            ::_exit(0);
        }
        writeFrame(fds[1], kFrameResult, payload);
        // _exit keeps the forked copy from re-running atexit handlers
        // and static destructors that belong to the parent.
        ::_exit(0);
    }

    // ------------------------------------------------------- parent
    closeResultPipe(fds[1]);
    IpcFrame frame;
    FrameReadStatus rst =
        readFrame(fds[0], frame, cfg_.timeoutMs > 0 ? cfg_.timeoutMs : -1,
                  kMaxResultPayload);
    ::close(fds[0]);

    switch (rst) {
      case FrameReadStatus::Ok: {
        if (frame.type != kFrameResult) {
            killAndReap(pid);
            return failure(CellState::ProtocolError, attempt,
                           strfmt("unexpected frame type %u", frame.type));
        }
        Result<RunOutcome> decoded = decodeRunOutcomeChecked(frame.payload);
        if (!decoded) {
            killAndReap(pid);
            return failure(CellState::ProtocolError, attempt,
                           "bad result envelope: " +
                               decoded.error().describe());
        }
        int wait_status = reap(pid);
        if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
            // The result arrived but the worker then died — e.g. a
            // sanitizer failing the process during teardown. Trust the
            // exit status over the bytes.
            if (WIFSIGNALED(wait_status)) {
                CellOutcome out = failure(
                    CellState::Crashed, attempt,
                    "worker died after writing its result");
                out.status.termSignal = WTERMSIG(wait_status);
                return out;
            }
            CellOutcome out = failure(CellState::ExitedError, attempt,
                                      "worker exited nonzero after "
                                      "writing its result");
            out.status.exitCode =
                WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
            return out;
        }
        return fromRunOutcome(std::move(*decoded), attempt);
      }
      case FrameReadStatus::Eof: {
        int wait_status = reap(pid);
        if (WIFSIGNALED(wait_status)) {
            CellOutcome out =
                failure(CellState::Crashed, attempt,
                        strfmt("worker killed by signal %d",
                               WTERMSIG(wait_status)));
            out.status.termSignal = WTERMSIG(wait_status);
            return out;
        }
        if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) != 0) {
            CellOutcome out =
                failure(CellState::ExitedError, attempt,
                        strfmt("worker exited with code %d",
                               WEXITSTATUS(wait_status)));
            out.status.exitCode = WEXITSTATUS(wait_status);
            return out;
        }
        return failure(CellState::ProtocolError, attempt,
                       "worker exited cleanly without a result");
      }
      case FrameReadStatus::Timeout:
        killAndReap(pid);
        return failure(CellState::Timeout, attempt,
                       strfmt("no result within %ld ms", cfg_.timeoutMs));
      case FrameReadStatus::Torn:
        killAndReap(pid);
        return failure(CellState::ProtocolError, attempt,
                       "result stream torn or garbled");
      case FrameReadStatus::IoError:
        killAndReap(pid);
        return failure(CellState::ProtocolError, attempt,
                       "result stream I/O error");
    }
    killAndReap(pid);
    return failure(CellState::ProtocolError, attempt, "unreachable");
}

} // namespace harness
} // namespace cps
