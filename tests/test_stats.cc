/**
 * @file
 * Tests for the statistics registry.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace cps
{
namespace
{

TEST(Stats, CountersStartAtZero)
{
    StatSet s;
    EXPECT_EQ(s.scalar("a").value(), 0u);
    EXPECT_EQ(s.value("a"), 0u);
}

TEST(Stats, IncAndSet)
{
    StatSet s;
    Counter &c = s.scalar("x");
    c.inc();
    c.inc(10);
    EXPECT_EQ(s.value("x"), 11u);
    c.set(3);
    EXPECT_EQ(s.value("x"), 3u);
}

TEST(Stats, ReferencesAreStable)
{
    StatSet s;
    Counter &a = s.scalar("a");
    // Creating many more counters must not invalidate 'a'.
    for (int i = 0; i < 1000; ++i)
        s.scalar(strfmt("c%d", i));
    a.inc(5);
    EXPECT_EQ(s.value("a"), 5u);
}

TEST(Stats, UnknownCounterReadsZero)
{
    StatSet s;
    EXPECT_EQ(s.value("never"), 0u);
    EXPECT_FALSE(s.has("never"));
    s.scalar("known");
    EXPECT_TRUE(s.has("known"));
}

TEST(Stats, RatioHandlesZeroDenominator)
{
    StatSet s;
    s.scalar("num").set(5);
    EXPECT_EQ(s.ratio("num", "den"), 0.0);
    s.scalar("den").set(10);
    EXPECT_DOUBLE_EQ(s.ratio("num", "den"), 0.5);
}

TEST(Stats, ResetAllZeroesEverything)
{
    StatSet s;
    s.scalar("a").set(1);
    s.scalar("b").set(2);
    s.resetAll();
    EXPECT_EQ(s.value("a"), 0u);
    EXPECT_EQ(s.value("b"), 0u);
}

TEST(Stats, SnapshotIsSortedByName)
{
    StatSet s;
    s.scalar("zeta").set(1);
    s.scalar("alpha").set(2);
    s.scalar("mid").set(3);
    auto snap = s.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "alpha");
    EXPECT_EQ(snap[1].first, "mid");
    EXPECT_EQ(snap[2].first, "zeta");
}

} // namespace
} // namespace cps
