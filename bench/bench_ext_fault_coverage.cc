/**
 * @file
 * Extension experiment: fault coverage of the hardened decode path.
 *
 * Embedded flash is subject to bit errors and interrupted programming;
 * a production decompressor must turn any such corruption into a
 * diagnosable rejection, never a crash or a silent wrong decode. This
 * bench sweeps seeded corruptions (bit flips, byte rewrites,
 * truncations, index-entry scribbles) over every benchmark profile's
 * compressed image and reports how each one was handled, with section
 * CRCs verified at load and again with CRCs disabled (isolating the
 * decode path's own structural defences). It also measures what the
 * CRC verification costs at load time.
 *
 * Override the per-kind trial count with CPS_FAULT_TRIALS (default 200,
 * i.e. 1000 corruptions per profile per CRC mode).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <vector>

#include "codepack/imagefile.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "fault/campaign.hh"
#include "harness/suite.hh"

using namespace cps;

namespace
{

unsigned
trialsPerKind()
{
    const char *env = std::getenv("CPS_FAULT_TRIALS");
    if (env && *env) {
        unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 200;
}

void
addCampaignRows(TextTable &t, const std::string &name,
                const fault::CampaignResult &res, const char *mode)
{
    t.addRow({name, mode, std::to_string(res.trials),
              std::to_string(res.count(fault::Outcome::DetectedAtLoad)),
              std::to_string(
                  res.count(fault::Outcome::RejectedInDecode)),
              std::to_string(res.count(fault::Outcome::SilentlyCorrect)),
              std::to_string(res.silentlyWrong())});
}

/** Mean decode time of @p bytes over @p iters runs, in microseconds. */
double
loadMicros(const std::vector<u8> &bytes, bool verify_crc, int iters)
{
    codepack::ImageLoadOptions opts;
    opts.verifyCrc = verify_crc;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
        auto img = codepack::decodeImageChecked(bytes, opts);
        if (!img)
            cps_fatal("pristine image failed to load: %s",
                      img.error().describe().c_str());
    }
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(end - start)
               .count() /
           iters;
}

} // namespace

int
main()
{
    Suite &suite = Suite::instance();
    suite.pregenerate();
    const std::vector<std::string> &names = suite.names();
    unsigned trials = trialsPerKind();

    TextTable t;
    t.setTitle(strfmt("Extension: fault coverage (%u corruptions per "
                      "fault kind, %u kinds)",
                      trials, fault::kNumFaultKinds));
    t.addHeader({"Bench", "CRC", "Corruptions", "detected@load",
                 "rejected", "benign", "silently-wrong"});

    // Each profile runs two campaigns (CRC on / CRC off); the campaigns
    // are seeded and touch only private copies of the encoded image, so
    // they fan out across the pool — one task per (profile, CRC mode).
    std::vector<fault::CampaignResult> withCrc(names.size());
    std::vector<fault::CampaignResult> noCrc(names.size());
    {
        ThreadPool pool;
        pool.parallelFor(names.size() * 2, [&](size_t k) {
            size_t i = k / 2;
            const BenchProgram &bench = suite.get(names[i]);
            fault::CampaignConfig cfg;
            cfg.trials = trials;
            if (k % 2 == 0) {
                withCrc[i] = fault::runCampaign(bench.image, cfg);
            } else {
                cfg.verifyCrc = false;
                noCrc[i] = fault::runCampaign(bench.image, cfg);
            }
        });
    }

    unsigned total_silent_crc = 0;
    bool all_handled = true;
    for (size_t i = 0; i < names.size(); ++i) {
        const fault::CampaignResult &with_crc = withCrc[i];
        addCampaignRows(t, names[i], with_crc, "on");
        total_silent_crc += with_crc.silentlyWrong();
        addCampaignRows(t, "", noCrc[i], "off");

        all_handled = all_handled &&
                      with_crc.count(fault::Outcome::DetectedAtLoad) +
                              with_crc.count(
                                  fault::Outcome::RejectedInDecode) +
                              with_crc.count(
                                  fault::Outcome::SilentlyCorrect) +
                              with_crc.silentlyWrong() ==
                          with_crc.trials;
    }
    t.print();

    // CRC cost at load time, on the largest image of the suite.
    const BenchProgram *largest = nullptr;
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        if (!largest ||
            bench.image.bytes.size() > largest->image.bytes.size())
            largest = &bench;
    }
    std::vector<u8> encoded = codepack::encodeImage(largest->image);
    double with = loadMicros(encoded, true, 50);
    double without = loadMicros(encoded, false, 50);

    TextTable c;
    c.setTitle(strfmt("CRC-32 load-time overhead (%s, %zu-byte file, "
                      "mean of 50 loads)",
                      largest->profile->name.c_str(), encoded.size()));
    c.addHeader({"Verification", "Load time", "Overhead"});
    c.addRow({"CRC off", strfmt("%.1f us", without), "-"});
    c.addRow({"CRC on", strfmt("%.1f us", with),
              strfmt("%+.1f%%", 100.0 * (with - without) /
                                    (without > 0 ? without : 1.0))});
    c.print();

    std::printf("\nReading: with section CRCs every corruption is "
                "caught before it can matter (%u silently wrong); "
                "without them the structural checks still reject "
                "out-of-range indices and truncations, and only "
                "in-stream codeword damage decodes to wrong words — "
                "exactly the gap the CRC closes. No corruption "
                "crashed the decoder.\n",
                total_silent_crc);
    return (all_handled && total_silent_crc == 0) ? 0 : 1;
}
