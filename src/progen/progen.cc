#include "progen.hh"

#include <algorithm>

#include "asmkit/assembler.hh"
#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace cps
{

namespace
{

/** Builds the assembly text for one profile. */
class SourceBuilder
{
  public:
    explicit SourceBuilder(const BenchmarkProfile &p)
        : p_(p), rng_(p.seed)
    {
        cps_assert(isPow2(p.hotFuncs), "hotFuncs must be a power of two");
        cps_assert(p.hotFuncs <= p.numFuncs,
                   "hotFuncs cannot exceed numFuncs");
        cps_assert(isPow2(p.dataArrays), "dataArrays must be a power of 2");
    }

    std::string
    build()
    {
        emitData();
        out_ += ".text\n";
        emitDriver();
        for (u32 h = 0; h < p_.numHelpers; ++h)
            emitHelper(h);
        // Interleave pool functions and subs in memory so call targets
        // scatter across the text the way a real linker layout does.
        u32 subs_emitted = 0;
        for (u32 f = 0; f < p_.numFuncs; ++f) {
            emitFunction(f);
            while (subs_emitted * std::max(p_.numFuncs, 1u) <
                   p_.numSubs * (f + 1) && subs_emitted < p_.numSubs) {
                emitSub(subs_emitted++);
            }
        }
        while (subs_emitted < p_.numSubs)
            emitSub(subs_emitted++);
        return std::move(out_);
    }

  private:
    // ----------------------------------------------------------- pieces

    void
    line(const std::string &s)
    {
        out_ += "    ";
        out_ += s;
        out_ += '\n';
    }

    void
    label(const std::string &s)
    {
        out_ += s;
        out_ += ":\n";
    }

    std::string
    arr(u32 index) const
    {
        return strfmt("garr%u", index & (p_.dataArrays - 1));
    }

    /** A scratch integer register from the chunk working set. */
    std::string
    tmp()
    {
        static const char *regs[] = {"$t0", "$t1", "$t2", "$t3",
                                     "$t4", "$t5", "$t6", "$t7"};
        return regs[rng_.below(8)];
    }

    /** A "live-ish" source: mostly temps, sometimes args/saved. */
    std::string
    src()
    {
        static const char *regs[] = {"$t0", "$t1", "$t2", "$t3", "$t4",
                                     "$t5", "$t6", "$t7", "$a0", "$a1",
                                     "$s0", "$v1"};
        return regs[rng_.below(12)];
    }

    std::string
    fpreg()
    {
        return strfmt("$f%u", 2 + static_cast<unsigned>(rng_.below(8)));
    }

    /** A realistic small immediate (stack offsets, strides, masks). */
    s32
    smallImm()
    {
        if (rng_.chancePercent(p_.oddConstPercent)) {
            // A one-off constant: becomes a raw halfword under CodePack.
            return static_cast<s32>(rng_.range(0, 0x7fff));
        }
        static const s32 common[] = {0, 1, 2, 3, 4, 8, 12, 16, 24, 32,
                                     -1, -4, 255, 1024};
        return common[rng_.below(sizeof(common) / sizeof(common[0]))];
    }

    // ------------------------------------------------------------- data

    void
    emitData()
    {
        out_ += ".data\n";
        // The function-pointer table the driver indexes with its LCG.
        label("fn_table");
        for (u32 f = 0; f < p_.hotFuncs; ++f)
            line(strfmt(".word fn%u", f));
        // Shared global arrays (integer) and one FP array.
        for (u32 a = 0; a < p_.dataArrays; ++a) {
            label(strfmt("garr%u", a));
            line(strfmt(".space %u", p_.dataArrayBytes));
        }
        label("farr");
        line(strfmt(".space %u", 4096u));
    }

    // ----------------------------------------------------------- driver

    void
    emitDriver()
    {
        label("main");
        line("la $s7, fn_table");
        line(strfmt("li $s5, %llu",
                    static_cast<unsigned long long>(p_.seed | 1)));
        line("li $s6, 1000000000"); // effectively "run forever"
        label("outer");
        for (u32 c = 0; c < p_.callsPerIter; ++c) {
            // s5 = s5 * 1664525 + 1013904223 (Numerical Recipes LCG).
            line("li $t0, 1664525");
            line("mul $s5, $s5, $t0");
            line("li $t1, 1013904223");
            line("addu $s5, $s5, $t1");
            line("srl $t2, $s5, 16");
            line(strfmt("andi $t2, $t2, %u", p_.hotFuncs - 1));
            line("sll $t2, $t2, 2");
            line("addu $t3, $s7, $t2");
            line("lw $t4, 0($t3)");
            line("move $a0, $s5");
            line("jalr $t4");
        }
        line("addiu $s6, $s6, -1");
        line("bgtz $s6, outer");
        line("li $v0, 10");
        line("syscall");
    }

    // ---------------------------------------------------------- helpers

    void
    emitHelper(u32 h)
    {
        // Small leaf functions: hash-and-store kernels.
        label(strfmt("helper%u", h));
        line(strfmt("la $t8, %s", arr(static_cast<u32>(rng_.next())).c_str()));
        u32 n = 4 + static_cast<u32>(rng_.below(6));
        for (u32 i = 0; i < n; ++i) {
            switch (rng_.below(4)) {
              case 0:
                line(strfmt("xor %s, %s, %s", tmp().c_str(), src().c_str(),
                            src().c_str()));
                break;
              case 1:
                line(strfmt("addiu %s, %s, %d", tmp().c_str(), src().c_str(),
                            smallImm()));
                break;
              case 2:
                line(strfmt("lw %s, %u($t8)", tmp().c_str(), wordOff()));
                break;
              default:
                line(strfmt("srl %s, %s, %u", tmp().c_str(), src().c_str(),
                            1 + static_cast<unsigned>(rng_.below(8))));
                break;
            }
        }
        line(strfmt("sw $t0, %u($t8)", wordOff()));
        line("jr $ra");
    }

    u32
    wordOff()
    {
        return 4 * static_cast<u32>(
                       rng_.below(p_.dataArrayBytes / 4));
    }

    /**
     * A second-tier leaf routine: a cold, mostly straight-line body with
     * a couple of data-dependent diamonds. Subs never call anything, so
     * the call depth is bounded (main -> fn -> sub).
     */
    void
    emitSub(u32 s)
    {
        label(strfmt("sub%u", s));
        line(strfmt("la $t8, %s",
                    arr(static_cast<u32>(rng_.next())).c_str()));
        u32 remaining = p_.subInsns;
        u32 diamond = 0;
        while (remaining > 0) {
            u32 run = std::min<u32>(remaining,
                                    4 + static_cast<u32>(rng_.below(6)));
            for (u32 i = 0; i < run; ++i) {
                switch (rng_.below(5)) {
                  case 0:
                    line(strfmt("lw %s, %u($t8)", tmp().c_str(),
                                wordOff()));
                    break;
                  case 1:
                    line(strfmt("sw %s, %u($t8)", src().c_str(),
                                wordOff()));
                    break;
                  case 2:
                    line(strfmt("addiu %s, %s, %d", tmp().c_str(),
                                src().c_str(), smallImm()));
                    break;
                  case 3:
                    line(strfmt("xor %s, %s, %s", tmp().c_str(),
                                src().c_str(), src().c_str()));
                    break;
                  default:
                    line(strfmt("sll %s, %s, %u", tmp().c_str(),
                                src().c_str(),
                                1 + static_cast<unsigned>(rng_.below(6))));
                    break;
                }
            }
            remaining -= run;
            if (remaining > 4) {
                // A short forward skip keeps the sub branchy.
                std::string l = strfmt("sub%u_d%u", s, diamond++);
                line(strfmt("srl $t6, %s, %u", src().c_str(),
                            static_cast<unsigned>(rng_.below(8))));
                line("andi $t6, $t6, 1");
                line(strfmt("beqz $t6, %s", l.c_str()));
                u32 skip = std::min<u32>(remaining - 2,
                                         2 + static_cast<u32>(
                                                 rng_.below(4)));
                for (u32 i = 0; i < skip; ++i) {
                    line(strfmt("addu %s, %s, %s", tmp().c_str(),
                                src().c_str(), src().c_str()));
                }
                label(l);
                remaining -= skip;
            }
        }
        line("jr $ra");
    }

    // --------------------------------------------------------- functions

    void
    emitFunction(u32 f)
    {
        curFunc_ = f;
        blockCounter_ = 0;
        label(strfmt("fn%u", f));
        // Prologue: a realistic frame with common small stack offsets.
        line("addiu $sp, $sp, -32");
        line("sw $ra, 28($sp)");
        line("sw $s0, 24($sp)");
        line("sw $s1, 20($sp)");
        line("move $s0, $a0");
        line(strfmt("li $s1, %u", p_.innerTrips));
        label(strfmt("fn%u_loop", f));
        for (u32 b = 0; b < p_.blocksPerFunc; ++b)
            emitChunk();
        line("addiu $s1, $s1, -1");
        line(strfmt("bgtz $s1, fn%u_loop", f));
        // Epilogue.
        line("lw $ra, 28($sp)");
        line("lw $s0, 24($sp)");
        line("lw $s1, 20($sp)");
        line("addiu $sp, $sp, 32");
        line("move $v0, $t0");
        line("jr $ra");
    }

    void
    emitChunk()
    {
        // Optionally guard the whole chunk with a data-dependent skip.
        // The tested bit comes from the per-call argument ($s0), so the
        // skip pattern is fixed within one call's loop trips (history
        // predictors learn it) but varies call to call.
        bool skipped = p_.skipPercent && rng_.chancePercent(p_.skipPercent);
        std::string skip_label;
        if (skipped) {
            skip_label = strfmt("fn%u_s%u", curFunc_, blockCounter_++);
            unsigned bit = static_cast<unsigned>(rng_.below(16));
            line(strfmt("srl $t6, $s0, %u", bit));
            line("andi $t6, $t6, 1");
            line(strfmt("bnez $t6, %s", skip_label.c_str()));
        }

        if (p_.fpPercent && rng_.chancePercent(p_.fpPercent)) {
            emitFpChunk();
        } else {
            // Weighted mix tuned for compiled-code branch density:
            // roughly one conditional branch every 6-8 instructions.
            switch (rng_.below(10)) {
              case 0: case 1: case 2: emitAluChunk(); break;
              case 3: case 4: case 5: emitMemChunk(); break;
              default: emitDiamondChunk(); break;
            }
            if (p_.numSubs && rng_.chancePercent(p_.subCallPercent)) {
                line(strfmt("jal sub%u",
                            static_cast<u32>(rng_.below(p_.numSubs))));
            } else if (rng_.chancePercent(p_.helperCallPercent)) {
                line(strfmt("jal helper%u",
                            static_cast<u32>(rng_.below(p_.numHelpers))));
            }
        }

        if (skipped)
            label(skip_label);
    }

    void
    emitAluChunk()
    {
        for (u32 i = 0; i < p_.chunkInsns; ++i) {
            switch (rng_.below(10)) {
              case 0:
                line(strfmt("addu %s, %s, %s", tmp().c_str(), src().c_str(),
                            src().c_str()));
                break;
              case 1:
                line(strfmt("subu %s, %s, %s", tmp().c_str(), src().c_str(),
                            src().c_str()));
                break;
              case 2:
                line(strfmt("xor %s, %s, %s", tmp().c_str(), src().c_str(),
                            src().c_str()));
                break;
              case 3:
                line(strfmt("and %s, %s, %s", tmp().c_str(), src().c_str(),
                            src().c_str()));
                break;
              case 4:
                line(strfmt("or %s, %s, %s", tmp().c_str(), src().c_str(),
                            src().c_str()));
                break;
              case 5:
                line(strfmt("addiu %s, %s, %d", tmp().c_str(), src().c_str(),
                            smallImm()));
                break;
              case 6:
                line(strfmt("sll %s, %s, %u", tmp().c_str(), src().c_str(),
                            1 + static_cast<unsigned>(rng_.below(8))));
                break;
              case 7:
                line(strfmt("slti %s, %s, %d", tmp().c_str(), src().c_str(),
                            smallImm()));
                break;
              case 8:
                if (rng_.chancePercent(25)) {
                    line(strfmt("mul %s, %s, %s", tmp().c_str(),
                                src().c_str(), src().c_str()));
                } else {
                    line(strfmt("sra %s, %s, %u", tmp().c_str(),
                                src().c_str(),
                                1 + static_cast<unsigned>(rng_.below(8))));
                }
                break;
              default:
                line(strfmt("ori %s, %s, %d", tmp().c_str(), src().c_str(),
                            smallImm()));
                break;
            }
        }
    }

    void
    emitMemChunk()
    {
        line(strfmt("la $t8, %s",
                    arr(static_cast<u32>(rng_.next())).c_str()));
        for (u32 i = 0; i < p_.chunkInsns; ++i) {
            switch (rng_.below(8)) {
              case 0: case 1: case 2:
                line(strfmt("lw %s, %u($t8)", tmp().c_str(), wordOff()));
                break;
              case 3:
                line(strfmt("sw %s, %u($t8)", src().c_str(), wordOff()));
                break;
              case 4:
                line(strfmt("lbu %s, %u($t8)", tmp().c_str(),
                            wordOff() + static_cast<u32>(rng_.below(4))));
                break;
              case 5:
                line(strfmt("lw %s, %u($sp)", tmp().c_str(),
                            4 * static_cast<u32>(rng_.below(5)))); // 0..16
                break;
              case 6:
                line(strfmt("addiu %s, %s, %d", tmp().c_str(), src().c_str(),
                            smallImm()));
                break;
              default:
                line(strfmt("addu %s, %s, %s", tmp().c_str(), src().c_str(),
                            src().c_str()));
                break;
            }
        }
    }

    void
    emitDiamondChunk()
    {
        u32 id = blockCounter_++;
        std::string la = strfmt("fn%u_d%u_a", curFunc_, id);
        std::string lb = strfmt("fn%u_d%u_b", curFunc_, id);
        // A data-dependent two-way split. Half the diamonds test bits of
        // the loop counter (periodic, learnable by history predictors);
        // the rest test pseudo-random data (hard to predict) — real
        // integer code shows a similar mix.
        unsigned bit = static_cast<unsigned>(rng_.below(6));
        std::string subject =
            rng_.chancePercent(50) ? std::string("$s1") : src();
        line(strfmt("srl $t6, %s, %u", subject.c_str(), bit));
        line("andi $t6, $t6, 1");
        line(strfmt("beqz $t6, %s", la.c_str()));
        u32 then_n = 2 + static_cast<u32>(rng_.below(4));
        for (u32 i = 0; i < then_n; ++i) {
            line(strfmt("addiu %s, %s, %d", tmp().c_str(), src().c_str(),
                        smallImm()));
        }
        line(strfmt("b %s", lb.c_str()));
        label(la);
        u32 else_n = 2 + static_cast<u32>(rng_.below(4));
        for (u32 i = 0; i < else_n; ++i) {
            line(strfmt("xor %s, %s, %s", tmp().c_str(), src().c_str(),
                        src().c_str()));
        }
        label(lb);
        // Pad with straight-line work so chunks stay comparable in size.
        u32 rest = p_.chunkInsns > (then_n + 6) ? p_.chunkInsns - then_n - 6
                                                : 2;
        for (u32 i = 0; i < rest; ++i) {
            line(strfmt("addu %s, %s, %s", tmp().c_str(), src().c_str(),
                        src().c_str()));
        }
    }

    void
    emitFpChunk()
    {
        line("la $t9, farr");
        line(strfmt("lwc1 %s, %u($t9)", fpreg().c_str(),
                    4 * static_cast<u32>(rng_.below(64))));
        line(strfmt("lwc1 %s, %u($t9)", fpreg().c_str(),
                    4 * static_cast<u32>(rng_.below(64))));
        for (u32 i = 0; i + 4 < p_.chunkInsns; ++i) {
            switch (rng_.below(4)) {
              case 0:
                line(strfmt("add.s %s, %s, %s", fpreg().c_str(),
                            fpreg().c_str(), fpreg().c_str()));
                break;
              case 1:
                line(strfmt("mul.s %s, %s, %s", fpreg().c_str(),
                            fpreg().c_str(), fpreg().c_str()));
                break;
              case 2:
                line(strfmt("sub.s %s, %s, %s", fpreg().c_str(),
                            fpreg().c_str(), fpreg().c_str()));
                break;
              default:
                line(strfmt("mov.s %s, %s", fpreg().c_str(),
                            fpreg().c_str()));
                break;
            }
        }
        line(strfmt("swc1 %s, %u($t9)", fpreg().c_str(),
                    4 * static_cast<u32>(rng_.below(64))));
    }

    const BenchmarkProfile &p_;
    Rng rng_;
    std::string out_;
    u32 curFunc_ = 0;
    u32 blockCounter_ = 0;
};

} // namespace

const std::vector<BenchmarkProfile> &
standardProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = [] {
        std::vector<BenchmarkProfile> v;

        // cc1: the biggest text, heavy call graph, worst I-cache miss
        // rate of the suite (Table 1: 6.7% at 16KB).
        BenchmarkProfile cc1;
        cc1.name = "cc1";
        cc1.numFuncs = 512;
        cc1.hotFuncs = 512;
        cc1.blocksPerFunc = 32;
        cc1.chunkInsns = 8;
        cc1.innerTrips = 40;
        cc1.callsPerIter = 8;
        cc1.oddConstPercent = 12;
        cc1.skipPercent = 45;
        cc1.helperCallPercent = 7;
        cc1.numSubs = 512;
        cc1.subCallPercent = 20;
        cc1.seed = 0xcc1;
        v.push_back(cc1);

        // go: mid-size text, miss rate close to cc1 (6.2%).
        BenchmarkProfile go;
        go.name = "go";
        go.numFuncs = 160;
        go.hotFuncs = 128;
        go.blocksPerFunc = 32;
        go.chunkInsns = 8;
        go.innerTrips = 20;
        go.callsPerIter = 6;
        go.oddConstPercent = 8;
        go.skipPercent = 40;
        go.helperCallPercent = 7;
        go.numSubs = 192;
        go.subCallPercent = 18;
        go.seed = 0x60;
        v.push_back(go);

        // mpeg2enc: loop-dominated media kernel; essentially no misses.
        BenchmarkProfile mpeg;
        mpeg.name = "mpeg2enc";
        mpeg.numFuncs = 72;
        mpeg.hotFuncs = 4;
        mpeg.blocksPerFunc = 26;
        mpeg.chunkInsns = 12;
        mpeg.innerTrips = 64;
        mpeg.callsPerIter = 4;
        mpeg.fpPercent = 20;
        mpeg.oddConstPercent = 12;
        mpeg.helperCallPercent = 4;
        mpeg.skipPercent = 10;
        mpeg.seed = 0x3e6;
        v.push_back(mpeg);

        // pegwit: small crypto kernel; near-zero miss rate.
        BenchmarkProfile pegwit;
        pegwit.name = "pegwit";
        pegwit.numFuncs = 56;
        pegwit.hotFuncs = 4;
        pegwit.blocksPerFunc = 28;
        pegwit.chunkInsns = 12;
        pegwit.innerTrips = 48;
        pegwit.callsPerIter = 4;
        pegwit.oddConstPercent = 8;
        pegwit.helperCallPercent = 5;
        pegwit.skipPercent = 10;
        pegwit.seed = 0x9e6;
        v.push_back(pegwit);

        // perl: interpreter-flavoured, moderate miss rate (4.4%).
        BenchmarkProfile perl;
        perl.name = "perl";
        perl.numFuncs = 144;
        perl.hotFuncs = 128;
        perl.blocksPerFunc = 28;
        perl.chunkInsns = 8;
        perl.innerTrips = 26;
        perl.callsPerIter = 8;
        perl.oddConstPercent = 12;
        perl.skipPercent = 40;
        perl.helperCallPercent = 7;
        perl.numSubs = 192;
        perl.subCallPercent = 18;
        perl.seed = 0x9e71;
        v.push_back(perl);

        // vortex: large OO database benchmark, 4.6% miss rate.
        BenchmarkProfile vortex;
        vortex.name = "vortex";
        vortex.numFuncs = 272;
        vortex.hotFuncs = 256;
        vortex.blocksPerFunc = 26;
        vortex.chunkInsns = 8;
        vortex.innerTrips = 33;
        vortex.callsPerIter = 8;
        vortex.oddConstPercent = 8;
        vortex.skipPercent = 35;
        vortex.helperCallPercent = 7;
        vortex.numSubs = 384;
        vortex.subCallPercent = 18;
        vortex.seed = 0xdb;
        v.push_back(vortex);

        return v;
    }();
    return profiles;
}

const BenchmarkProfile &
findProfile(const std::string &name)
{
    for (const BenchmarkProfile &p : standardProfiles()) {
        if (p.name == name)
            return p;
    }
    cps_fatal("unknown benchmark profile '%s'", name.c_str());
}

std::string
generateSource(const BenchmarkProfile &profile)
{
    SourceBuilder builder(profile);
    return builder.build();
}

Program
generateProgram(const BenchmarkProfile &profile)
{
    return assembleOrDie(generateSource(profile));
}

} // namespace cps
