#include "logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace cps
{

namespace
{

std::atomic<unsigned long> numWarnings{0};
std::atomic<bool> quietMode{false};

// Diagnostics from worker threads must not interleave: each message is
// fully formatted first, then written to stderr in a single fputs under
// this mutex.
std::mutex stderrMutex;

void
writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(stderrMutex);
    std::fputs(line.c_str(), stderr);
}

} // namespace

std::string
vstrfmt(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vstrfmt(fmt, ap);
    va_end(ap);
    return out;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    writeLine(strfmt("panic: %s (%s:%d)\n", msg.c_str(), file, line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    writeLine(strfmt("fatal: %s (%s:%d)\n", msg.c_str(), file, line));
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    numWarnings.fetch_add(1, std::memory_order_relaxed);
    if (quietMode.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    writeLine("warn: " + msg + "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (quietMode.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    writeLine("info: " + msg + "\n");
}

unsigned long
warnCount()
{
    return numWarnings.load(std::memory_order_relaxed);
}

void
envWarnOnce(const char *name, const char *value, const char *expected)
{
    static std::mutex mutex;
    static std::set<std::string> warned;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!warned.insert(name).second)
            return;
    }
    warnImpl("ignoring malformed %s='%s' (expected %s)", name, value,
             expected);
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

} // namespace cps
