#include "decompressor.hh"

#include "common/bitstream.hh"
#include "common/logging.hh"

namespace cps
{
namespace codepack
{

DecodedBlock
Decompressor::decompressBlock(u32 group, u32 block) const
{
    cps_assert(group < img_.numGroups(), "group %u out of range", group);
    cps_assert(block < kBlocksPerGroup, "block %u out of range", block);

    u32 entry = img_.indexTable[group];
    DecodedBlock out;
    u32 first = idxFirstOffset(entry);
    if (block == 0) {
        out.byteOffset = first;
        out.raw = idxFirstRaw(entry);
        out.byteLen = idxSecondOffset(entry);
        // A raw first block always occupies exactly 64 bytes.
        if (out.raw)
            out.byteLen = kRawBlockBytes;
    } else {
        out.byteOffset = first + idxSecondOffset(entry);
        out.raw = idxSecondRaw(entry);
        // The second block's length is not in the index entry; the
        // hardware just decodes 16 instructions. We recover the length
        // from decoding below (raw blocks are fixed-size).
        out.byteLen = out.raw ? kRawBlockBytes : 0;
    }

    cps_assert(out.byteOffset <= img_.bytes.size(),
               "block offset beyond compressed region");

    if (out.raw) {
        const u8 *p = img_.bytes.data() + out.byteOffset;
        for (unsigned i = 0; i < kBlockInsns; ++i) {
            out.words[i] = static_cast<u32>(p[i * 4]) |
                           (static_cast<u32>(p[i * 4 + 1]) << 8) |
                           (static_cast<u32>(p[i * 4 + 2]) << 16) |
                           (static_cast<u32>(p[i * 4 + 3]) << 24);
            out.endBit[i] = (i + 1) * 32;
        }
        return out;
    }

    BitReader br(img_.bytes.data() + out.byteOffset,
                 img_.bytes.size() - out.byteOffset);
    for (unsigned i = 0; i < kBlockInsns; ++i) {
        u16 hi = img_.highDict.read(br);
        u16 lo = img_.lowDict.read(br);
        out.words[i] = (static_cast<u32>(hi) << 16) | lo;
        out.endBit[i] = static_cast<u32>(br.bitPos());
    }
    u32 used_bytes = static_cast<u32>((br.bitPos() + 7) / 8);
    if (block == 0) {
        cps_assert(out.byteLen == used_bytes,
                   "index entry length %u disagrees with decode %u",
                   out.byteLen, used_bytes);
    } else {
        out.byteLen = used_bytes;
    }
    return out;
}

std::vector<u32>
Decompressor::decompressAll() const
{
    std::vector<u32> out;
    out.reserve(img_.paddedInsns);
    for (u32 g = 0; g < img_.numGroups(); ++g) {
        for (u32 b = 0; b < kBlocksPerGroup; ++b) {
            DecodedBlock blk = decompressBlock(g, b);
            out.insert(out.end(), blk.words.begin(), blk.words.end());
        }
    }
    out.resize(img_.origTextBytes / 4); // drop the NOP padding
    return out;
}

} // namespace codepack
} // namespace cps
