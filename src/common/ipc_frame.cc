#include "ipc_frame.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "byteio.hh"
#include "crc32.hh"

namespace cps
{

namespace
{

constexpr char kMagic[4] = {'C', 'P', 'F', 'R'};
constexpr size_t kHeaderBytes = 4 + 4 + 4; // magic, type, payloadLen
constexpr size_t kTrailerBytes = 4;        // CRC

/** Milliseconds left until @p deadline, clamped at 0; -1 when none. */
long
remainingMs(bool have_deadline,
            std::chrono::steady_clock::time_point deadline)
{
    if (!have_deadline)
        return -1;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    return left < 0 ? 0 : static_cast<long>(left);
}

/**
 * Reads exactly @p n bytes into @p dst, honouring the deadline.
 * @return Ok, or Eof when the stream ended after @p got_any==false and
 *         zero bytes (a clean boundary is the caller's concern)
 */
FrameReadStatus
readFully(int fd, u8 *dst, size_t n, bool have_deadline,
          std::chrono::steady_clock::time_point deadline, bool *got_any)
{
    size_t got = 0;
    while (got < n) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        int rc = ::poll(&pfd, 1, static_cast<int>(
                                     remainingMs(have_deadline, deadline)));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return FrameReadStatus::IoError;
        }
        if (rc == 0)
            return FrameReadStatus::Timeout;
        ssize_t r = ::read(fd, dst + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return FrameReadStatus::IoError;
        }
        if (r == 0)
            return FrameReadStatus::Eof;
        got += static_cast<size_t>(r);
        if (got_any)
            *got_any = true;
    }
    return FrameReadStatus::Ok;
}

} // namespace

const char *
frameReadStatusName(FrameReadStatus status)
{
    switch (status) {
      case FrameReadStatus::Ok:
        return "ok";
      case FrameReadStatus::Eof:
        return "eof";
      case FrameReadStatus::Torn:
        return "torn";
      case FrameReadStatus::Timeout:
        return "timeout";
      case FrameReadStatus::IoError:
        return "io-error";
    }
    return "?";
}

std::vector<u8>
encodeFrame(u32 type, const std::vector<u8> &payload)
{
    std::vector<u8> out;
    out.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
    for (char c : kMagic)
        out.push_back(static_cast<u8>(c));
    put32(out, type);
    put32(out, static_cast<u32>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    put32(out, crc32(out));
    return out;
}

FrameReadStatus
decodeFrameAt(const std::vector<u8> &bytes, size_t &pos, IpcFrame &out)
{
    if (pos == bytes.size())
        return FrameReadStatus::Eof;
    if (bytes.size() - pos < kHeaderBytes + kTrailerBytes)
        return FrameReadStatus::Torn;
    if (std::memcmp(bytes.data() + pos, kMagic, sizeof(kMagic)) != 0)
        return FrameReadStatus::Torn;
    u32 type = static_cast<u32>(bytes[pos + 4]) |
               (static_cast<u32>(bytes[pos + 5]) << 8) |
               (static_cast<u32>(bytes[pos + 6]) << 16) |
               (static_cast<u32>(bytes[pos + 7]) << 24);
    u32 len = static_cast<u32>(bytes[pos + 8]) |
              (static_cast<u32>(bytes[pos + 9]) << 8) |
              (static_cast<u32>(bytes[pos + 10]) << 16) |
              (static_cast<u32>(bytes[pos + 11]) << 24);
    size_t total = kHeaderBytes + size_t{len} + kTrailerBytes;
    if (bytes.size() - pos < total)
        return FrameReadStatus::Torn;
    const u8 *frame = bytes.data() + pos;
    u32 stored = static_cast<u32>(frame[total - 4]) |
                 (static_cast<u32>(frame[total - 3]) << 8) |
                 (static_cast<u32>(frame[total - 2]) << 16) |
                 (static_cast<u32>(frame[total - 1]) << 24);
    if (crc32(frame, total - 4) != stored)
        return FrameReadStatus::Torn;
    out.type = type;
    out.payload.assign(frame + kHeaderBytes, frame + total - kTrailerBytes);
    pos += total;
    return FrameReadStatus::Ok;
}

bool
writeFrame(int fd, u32 type, const std::vector<u8> &payload)
{
    std::vector<u8> bytes = encodeFrame(type, payload);
    // Prefer send(MSG_NOSIGNAL): on a socket whose peer is gone this
    // fails with EPIPE instead of raising SIGPIPE. Pipes reject send()
    // with ENOTSOCK, so fall back to write(2) for them once.
    bool use_send = true;
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t w =
            use_send ? ::send(fd, bytes.data() + sent,
                              bytes.size() - sent, MSG_NOSIGNAL)
                     : ::write(fd, bytes.data() + sent,
                               bytes.size() - sent);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (use_send && errno == ENOTSOCK) {
                use_send = false;
                continue;
            }
            return false;
        }
        sent += static_cast<size_t>(w);
    }
    return true;
}

FrameGather
gatherFrame(const std::vector<u8> &buffer, size_t &pos, IpcFrame &out,
            size_t max_payload)
{
    const size_t have = buffer.size() - pos;
    if (have == 0)
        return FrameGather::NeedMore;
    // Validate the magic as soon as any of it is visible: garbage is
    // rejected immediately instead of after max_payload bytes of it.
    size_t magic_seen = have < sizeof(kMagic) ? have : sizeof(kMagic);
    if (std::memcmp(buffer.data() + pos, kMagic, magic_seen) != 0)
        return FrameGather::Damaged;
    if (have < kHeaderBytes)
        return FrameGather::NeedMore;
    const u8 *hdr = buffer.data() + pos;
    u32 len = static_cast<u32>(hdr[8]) | (static_cast<u32>(hdr[9]) << 8) |
              (static_cast<u32>(hdr[10]) << 16) |
              (static_cast<u32>(hdr[11]) << 24);
    if (size_t{len} > max_payload)
        return FrameGather::Damaged;
    size_t total = kHeaderBytes + size_t{len} + kTrailerBytes;
    if (have < total)
        return FrameGather::NeedMore;
    size_t scan = pos;
    switch (decodeFrameAt(buffer, scan, out)) {
      case FrameReadStatus::Ok:
        pos = scan;
        return FrameGather::Frame;
      default:
        // The full frame is present but failed verification.
        return FrameGather::Damaged;
    }
}

FrameReadStatus
readFrame(int fd, IpcFrame &out, long timeout_ms, size_t max_payload)
{
    const bool have_deadline = timeout_ms >= 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms < 0
                                                        ? 0
                                                        : timeout_ms);

    u8 header[kHeaderBytes];
    bool got_any = false;
    FrameReadStatus st = readFully(fd, header, sizeof(header),
                                   have_deadline, deadline, &got_any);
    if (st == FrameReadStatus::Eof)
        return got_any ? FrameReadStatus::Torn : FrameReadStatus::Eof;
    if (st != FrameReadStatus::Ok)
        return st;
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        return FrameReadStatus::Torn;
    u32 type = static_cast<u32>(header[4]) |
               (static_cast<u32>(header[5]) << 8) |
               (static_cast<u32>(header[6]) << 16) |
               (static_cast<u32>(header[7]) << 24);
    u32 len = static_cast<u32>(header[8]) |
              (static_cast<u32>(header[9]) << 8) |
              (static_cast<u32>(header[10]) << 16) |
              (static_cast<u32>(header[11]) << 24);
    // A pipe peer is in the same trust domain as a cache file: bound
    // the allocation before believing the declared length.
    if (size_t{len} > max_payload)
        return FrameReadStatus::Torn;

    std::vector<u8> body(size_t{len} + kTrailerBytes);
    st = readFully(fd, body.data(), body.size(), have_deadline, deadline,
                   nullptr);
    if (st == FrameReadStatus::Eof)
        return FrameReadStatus::Torn; // died mid-frame
    if (st != FrameReadStatus::Ok)
        return st;

    u32 stored = static_cast<u32>(body[body.size() - 4]) |
                 (static_cast<u32>(body[body.size() - 3]) << 8) |
                 (static_cast<u32>(body[body.size() - 2]) << 16) |
                 (static_cast<u32>(body[body.size() - 1]) << 24);
    u32 crc = crc32(header, sizeof(header));
    crc = crc32(body.data(), body.size() - kTrailerBytes, crc);
    if (crc != stored)
        return FrameReadStatus::Torn;
    out.type = type;
    out.payload.assign(body.begin(),
                       body.end() - static_cast<long>(kTrailerBytes));
    return FrameReadStatus::Ok;
}

} // namespace cps
