/**
 * @file
 * Deterministic fault injection for encoded compressed images.
 *
 * Models the failure modes compressed code meets in the field —
 * bit-flips in flash, a programming cycle that stopped early, a
 * toolchain that scribbled an index entry — as seeded, reproducible
 * mutations of the encoded image bytes. The same seed always produces
 * the same corruption, so any campaign failure can be replayed from
 * its (kind, seed) pair alone.
 */

#ifndef CPS_FAULT_INJECTOR_HH
#define CPS_FAULT_INJECTOR_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace cps
{
namespace fault
{

/** The corruption models the injector can apply. */
enum class FaultKind
{
    BitFlip,      ///< one bit, anywhere in the image
    MultiBitFlip, ///< 2..8 independent bit flips
    ByteCorrupt,  ///< one byte replaced by a different random value
    Truncate,     ///< image cut short at a random point
    IndexCorrupt, ///< one index-table entry overwritten
};

constexpr unsigned kNumFaultKinds = 5;

/** All kinds, for sweeps. */
extern const FaultKind kAllFaultKinds[kNumFaultKinds];

/** Short stable name ("bit-flip", "truncate", ...). */
const char *faultKindName(FaultKind kind);

/** Record of one applied fault, sufficient to describe and replay it. */
struct FaultRecord
{
    FaultKind kind = FaultKind::BitFlip;
    u64 seed = 0;        ///< injector seed that produced this fault
    size_t offset = 0;   ///< first affected byte (cut point for Truncate)
    unsigned flips = 0;  ///< bit flips applied (0 for non-flip kinds)

    /** "multi-bit-flip seed 0x2a: 3 flips from byte 132" */
    std::string describe() const;
};

/**
 * Applies seeded corruptions to encoded image bytes.
 *
 * Determinism contract: the sequence of mutations depends only on the
 * constructor seed, the image size, and the order of calls. Every
 * mutation really changes the bytes (a byte rewrite re-rolls until the
 * value differs; a truncation always removes at least one byte).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(u64 seed) : seed_(seed), rng_(seed) {}

    /** Mutates @p bytes in place with one fault of @p kind. */
    FaultRecord inject(std::vector<u8> &bytes, FaultKind kind);

    /** Mutates @p bytes with a seeded-random kind. */
    FaultRecord injectAny(std::vector<u8> &bytes);

  private:
    u64 seed_;
    Rng rng_;
};

} // namespace fault
} // namespace cps

#endif // CPS_FAULT_INJECTOR_HH
