/**
 * @file
 * Chunk-parallel single-run engine: exact mode must be byte-identical
 * to the serial path (RunOutcome integers AND derived doubles) for
 * every benchmark, pipeline, and code model at any thread count;
 * speculative mode must be deterministic across thread counts at fixed
 * knobs; runs that cannot chunk must fall back to serial. Also covers
 * the chunk planner, including the OoO fetch-ahead clamp (a chunk body
 * must never start inside the previous boundary's replayLookahead
 * window).
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/chunked.hh"
#include "harness/suite.hh"

namespace cps
{
namespace
{

using harness::ChunkOptions;
using harness::ChunkSpan;
using harness::chunkableRun;
using harness::planChunks;
using harness::runMachineChunked;

constexpr u64 kInsns = 20000;

ChunkOptions
exactOpts(u64 chunk_insns, unsigned threads)
{
    ChunkOptions opt;
    opt.exact = true;
    opt.chunkInsns = chunk_insns;
    opt.threads = threads;
    return opt;
}

ChunkOptions
specOpts(u64 chunk_insns, u64 warmup, unsigned threads)
{
    ChunkOptions opt;
    opt.chunkInsns = chunk_insns;
    opt.warmupInsns = warmup;
    opt.threads = threads;
    return opt;
}

/** Byte-identity across every field a table can print: the derived
 *  doubles are recomputed from the same stitched integers with the
 *  same formulas, so even they must compare bit-equal. */
void
expectSameOutcome(const RunOutcome &a, const RunOutcome &b,
                  const std::string &what)
{
    EXPECT_EQ(a.result.instructions, b.result.instructions) << what;
    EXPECT_EQ(a.result.cycles, b.result.cycles) << what;
    EXPECT_EQ(a.result.programExited, b.result.programExited) << what;
    EXPECT_EQ(a.result.status, b.result.status) << what;
    EXPECT_EQ(a.icacheMisses, b.icacheMisses) << what;
    EXPECT_EQ(a.bufferHits, b.bufferHits) << what;
    EXPECT_EQ(a.missLatencyTotal, b.missLatencyTotal) << what;
    EXPECT_EQ(a.icacheMissRate, b.icacheMissRate) << what;
    EXPECT_EQ(a.indexCacheMissRate, b.indexCacheMissRate) << what;
}

// ---------------------------------------------------------------- plan

TEST(ChunkPlan, EmptyRunPlansNothing)
{
    EXPECT_TRUE(planChunks(0, 1, exactOpts(100, 4)).empty());
}

TEST(ChunkPlan, BodiesPartitionTheRun)
{
    ChunkOptions opt = specOpts(250, 100, 4);
    std::vector<ChunkSpan> plan = planChunks(1000, 1, opt);
    ASSERT_EQ(plan.size(), 4u);
    u64 expect_start = 0;
    for (const ChunkSpan &s : plan) {
        EXPECT_EQ(s.bodyStart, expect_start);
        expect_start = s.end;
    }
    EXPECT_EQ(plan.back().end, 1000u);
}

TEST(ChunkPlan, ZeroChunkInsnsSplitsEvenlyAcrossThreads)
{
    ChunkOptions opt = specOpts(0, 0, 4);
    std::vector<ChunkSpan> plan = planChunks(1000, 1, opt);
    ASSERT_EQ(plan.size(), 4u);
    for (const ChunkSpan &s : plan)
        EXPECT_EQ(s.bodyInsns(), 250u);
}

TEST(ChunkPlan, FetchAheadClampRoundsShortBodiesUp)
{
    // A requested body shorter than the lookahead window would start
    // chunks inside the previous boundary's fetch-ahead region.
    std::vector<ChunkSpan> plan = planChunks(200, 66, specOpts(10, 0, 4));
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0].bodyInsns(), 66u);
    EXPECT_EQ(plan[1].bodyInsns(), 66u);
    // The 2-instruction tail merged into its predecessor.
    EXPECT_EQ(plan[2].bodyInsns(), 68u);
    EXPECT_EQ(plan[2].end, 200u);
}

TEST(ChunkPlan, ShortRunCollapsesToOneChunk)
{
    std::vector<ChunkSpan> plan = planChunks(50, 66, exactOpts(10, 8));
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].bodyStart, 0u);
    EXPECT_EQ(plan[0].end, 50u);
}

TEST(ChunkPlan, ExactModeWarmsOverTheFullPrefix)
{
    std::vector<ChunkSpan> plan = planChunks(1000, 1, exactOpts(250, 4));
    ASSERT_EQ(plan.size(), 4u);
    for (const ChunkSpan &s : plan) {
        EXPECT_EQ(s.warmStart, 0u);
        EXPECT_EQ(s.warmupInsns(), s.bodyStart);
    }
}

TEST(ChunkPlan, SpeculativeWarmupIsBoundedAndClampedAtTraceStart)
{
    std::vector<ChunkSpan> plan = planChunks(1000, 1, specOpts(250, 100, 4));
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0].warmupInsns(), 0u); // nothing precedes chunk 0
    EXPECT_EQ(plan[1].warmStart, 150u);
    EXPECT_EQ(plan[1].warmupInsns(), 100u);

    // W larger than any prefix: every warm-up clamps to the trace start,
    // which is exact-mode warm-up by another name.
    std::vector<ChunkSpan> big = planChunks(1000, 1, specOpts(250, 5000, 4));
    for (const ChunkSpan &s : big)
        EXPECT_EQ(s.warmStart, 0u);
}

// --------------------------------------------------------- exact mode

TEST(ChunkedRun, ExactModeIsByteIdenticalToSerialEverywhere)
{
    Suite &suite = Suite::instance();
    suite.pregenerate();
    const MachineConfig configs[] = {
        baseline1Issue(),
        baseline1Issue().withCodeModel(CodeModel::CodePack),
        baseline4Issue(),
        baseline4Issue().withCodeModel(CodeModel::CodePack),
    };
    for (const std::string &name : suite.names()) {
        const BenchProgram &bench = suite.get(name);
        ASSERT_TRUE(bench.trace) << name;
        for (const MachineConfig &cfg : configs) {
            RunOutcome serial = runMachineSerial(bench, cfg, kInsns);
            for (unsigned threads : {1u, 2u, 8u}) {
                ChunkOptions opt = exactOpts(4000, threads);
                ASSERT_TRUE(chunkableRun(bench, cfg, kInsns, opt));
                RunOutcome chunked =
                    runMachineChunked(bench, cfg, kInsns, opt);
                expectSameOutcome(serial, chunked,
                                  name + " / " + cfg.name + " / " +
                                      std::to_string(threads) + " threads");
            }
        }
    }
}

TEST(ChunkedRun, OoOBoundaryInsideRuuWindowStillMatchesSerial)
{
    // Regression for the fetch-ahead clamp: request chunk bodies barely
    // above the 4-issue lookahead (ruuSize + 1 = 65), so every boundary
    // lands where the previous chunk's front end is still fetching.
    // Exact mode must hold regardless.
    const BenchProgram &bench = Suite::instance().get("go");
    const MachineConfig cfg = baseline4Issue();
    const u64 insns = 2000;
    const u64 lookahead = replayLookahead(cfg);
    ASSERT_EQ(lookahead, 65u);

    RunOutcome serial = runMachineSerial(bench, cfg, insns);
    ChunkOptions opt = exactOpts(lookahead + 5, 8);
    std::vector<ChunkSpan> plan = planChunks(insns, lookahead + 1, opt);
    ASSERT_GT(plan.size(), 20u);
    RunOutcome chunked = runMachineChunked(bench, cfg, insns, opt);
    expectSameOutcome(serial, chunked, "mid-RUU boundaries");

    // And a request *below* the clamp gets rounded up, not honoured.
    std::vector<ChunkSpan> clamped =
        planChunks(insns, lookahead + 1, exactOpts(10, 8));
    for (const ChunkSpan &s : clamped)
        EXPECT_GE(s.bodyInsns(), lookahead + 1);
}

// ------------------------------------------------- speculative mode

TEST(ChunkedRun, SpeculativeModeIsDeterministicAcrossThreadCounts)
{
    const BenchProgram &bench = Suite::instance().get("cc1");
    const MachineConfig cfg = baseline4Issue().withCodeModel(
        CodeModel::CodePack);
    RunOutcome one = runMachineChunked(bench, cfg, kInsns,
                                       specOpts(3000, 1000, 1));
    for (unsigned threads : {2u, 8u}) {
        RunOutcome more = runMachineChunked(bench, cfg, kInsns,
                                            specOpts(3000, 1000, threads));
        expectSameOutcome(one, more,
                          std::to_string(threads) + " threads");
    }
    // The stitched body sums must cover the whole run even when the
    // boundary state is approximate.
    EXPECT_EQ(one.result.instructions, kInsns);
}

TEST(ChunkedRun, ZeroWarmupRunsColdButComplete)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    const MachineConfig cfg = baseline1Issue();
    RunOutcome serial = runMachineSerial(bench, cfg, kInsns);
    RunOutcome cold = runMachineChunked(bench, cfg, kInsns,
                                        specOpts(4000, 0, 8));
    EXPECT_EQ(cold.result.instructions, serial.result.instructions);
    EXPECT_TRUE(cold.result.status == RunStatus::Ok);
    // Cold boundaries can only add misses relative to warmed serial
    // state, never invent hits.
    EXPECT_GE(cold.icacheMisses, serial.icacheMisses);
}

TEST(ChunkedRun, WarmupLongerThanEveryPrefixEqualsExactMode)
{
    // W >= any chunk's bodyStart clamps every warm-up to the trace
    // start — the speculative path degenerates to exact and must be
    // byte-identical to serial.
    const BenchProgram &bench = Suite::instance().get("perl");
    const MachineConfig cfg = baseline4Issue();
    RunOutcome serial = runMachineSerial(bench, cfg, kInsns);
    RunOutcome spec = runMachineChunked(bench, cfg, kInsns,
                                        specOpts(4000, kInsns, 8));
    expectSameOutcome(serial, spec, "degenerate speculative");
}

// ------------------------------------------------------- fallbacks

TEST(ChunkedRun, ShortTraceFallsBackToSerialPath)
{
    Suite &suite = Suite::instance();
    const BenchProgram &full = suite.get("go");

    BenchProgram clone;
    clone.profile = full.profile;
    clone.program = full.program;
    clone.image = full.image;
    clone.trace = std::make_unique<const TraceBuffer>(
        recordTrace(clone.program, 1000));

    MachineConfig cfg = baseline4Issue();
    ChunkOptions opt = exactOpts(200, 8);
    ASSERT_FALSE(chunkableRun(clone, cfg, kInsns, opt));
    RunOutcome fallback = runMachineChunked(clone, cfg, kInsns, opt);
    RunOutcome live = runMachineSerial(full, cfg, kInsns,
                                       ReplayMode::ForceLive);
    expectSameOutcome(fallback, live, "short-trace fallback");
}

TEST(ChunkedRun, SingleChunkPlanFallsBackToSerialPath)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    const MachineConfig cfg = baseline1Issue();
    // One giant chunk: nothing to parallelize, serial path verbatim.
    ChunkOptions opt = exactOpts(kInsns * 2, 8);
    EXPECT_FALSE(chunkableRun(bench, cfg, kInsns, opt));
    RunOutcome serial = runMachineSerial(bench, cfg, kInsns);
    RunOutcome chunked = runMachineChunked(bench, cfg, kInsns, opt);
    expectSameOutcome(serial, chunked, "single-chunk fallback");
}

TEST(ChunkedRun, DisabledOptionsNeverChunk)
{
    const BenchProgram &bench = Suite::instance().get("pegwit");
    ChunkOptions opt; // no knob set
    EXPECT_FALSE(opt.enabled());
    EXPECT_FALSE(chunkableRun(bench, baseline1Issue(), kInsns, opt));
}

} // namespace
} // namespace cps
