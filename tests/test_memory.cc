/**
 * @file
 * Main-memory tests: functional sparse store and bus timing (the paper's
 * 10-cycle latency / 2-cycle rate / configurable width model).
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"

namespace cps
{
namespace
{

TEST(MemoryFunctional, UninitializedReadsZero)
{
    MainMemory mem;
    EXPECT_EQ(mem.read8(0x1000), 0u);
    EXPECT_EQ(mem.read32(0xdead0000), 0u);
}

TEST(MemoryFunctional, ByteHalfWordRoundTrip)
{
    MainMemory mem;
    mem.write8(0x100, 0xab);
    EXPECT_EQ(mem.read8(0x100), 0xabu);
    mem.write16(0x200, 0xbeef);
    EXPECT_EQ(mem.read16(0x200), 0xbeefu);
    mem.write32(0x300, 0xdeadbeef);
    EXPECT_EQ(mem.read32(0x300), 0xdeadbeefu);
}

TEST(MemoryFunctional, LittleEndianLayout)
{
    MainMemory mem;
    mem.write32(0x400, 0x11223344);
    EXPECT_EQ(mem.read8(0x400), 0x44u);
    EXPECT_EQ(mem.read8(0x401), 0x33u);
    EXPECT_EQ(mem.read8(0x402), 0x22u);
    EXPECT_EQ(mem.read8(0x403), 0x11u);
}

TEST(MemoryFunctional, CrossPageAccess)
{
    MainMemory mem;
    mem.write32(0xfff, 0xcafebabe); // straddles a 4KB page boundary
    EXPECT_EQ(mem.read32(0xfff), 0xcafebabeu);
}

TEST(MemoryFunctional, LoadSegment)
{
    MainMemory mem;
    Segment seg;
    seg.base = 0x10000;
    seg.bytes = {1, 2, 3, 4};
    mem.loadSegment(seg);
    EXPECT_EQ(mem.read32(0x10000), 0x04030201u);
}

// ---------------------------------------------------------------- timing

TEST(MemoryTiming, PaperBaselineSingleBeat)
{
    MainMemory mem; // 64-bit bus, 10-cycle first access, 2-cycle rate
    BurstResult r = mem.burstRead(0, 4);
    ASSERT_EQ(r.beatArrival.size(), 1u);
    EXPECT_EQ(r.beatArrival[0], 10u);
    EXPECT_EQ(r.done, 10u);
}

TEST(MemoryTiming, PaperBaselineLineFill)
{
    // The paper's Figure 2-a: a 32-byte line on a 64-bit bus takes four
    // accesses arriving at t=10, 12, 14, 16.
    MainMemory mem;
    BurstResult r = mem.burstRead(0, 32);
    ASSERT_EQ(r.beatArrival.size(), 4u);
    EXPECT_EQ(r.beatArrival[0], 10u);
    EXPECT_EQ(r.beatArrival[1], 12u);
    EXPECT_EQ(r.beatArrival[2], 14u);
    EXPECT_EQ(r.beatArrival[3], 16u);
}

TEST(MemoryTiming, NarrowBusNeedsMoreBeats)
{
    MemTimingConfig cfg;
    cfg.busWidthBits = 16;
    MainMemory mem(cfg);
    BurstResult r = mem.burstRead(0, 32);
    EXPECT_EQ(r.beatArrival.size(), 16u);
    EXPECT_EQ(r.done, 10u + 15 * 2);
}

TEST(MemoryTiming, WideBusSingleBeatLine)
{
    MemTimingConfig cfg;
    cfg.busWidthBits = 128;
    MainMemory mem(cfg);
    BurstResult r = mem.burstRead(0, 32);
    EXPECT_EQ(r.beatArrival.size(), 2u);
    EXPECT_EQ(r.done, 12u);
}

TEST(MemoryTiming, ChannelSerializesTransactions)
{
    MainMemory mem;
    BurstResult a = mem.burstRead(0, 32);
    EXPECT_EQ(a.start, 0u);
    // A request arriving while the channel is busy waits.
    BurstResult b = mem.burstRead(5, 8);
    EXPECT_EQ(b.start, a.done);
    EXPECT_EQ(b.beatArrival[0], a.done + 10);
    // A request after the channel is idle starts immediately.
    BurstResult c = mem.burstRead(b.done + 100, 8);
    EXPECT_EQ(c.start, b.done + 100);
}

TEST(MemoryTiming, ArrivalOfByteMapsToBeat)
{
    MainMemory mem;
    BurstResult r = mem.burstRead(0, 32);
    EXPECT_EQ(r.arrivalOfByte(0, 8), 10u);
    EXPECT_EQ(r.arrivalOfByte(7, 8), 10u);
    EXPECT_EQ(r.arrivalOfByte(8, 8), 12u);
    EXPECT_EQ(r.arrivalOfByte(31, 8), 16u);
}

TEST(MemoryTiming, LatencyScalingScalesFirstAccess)
{
    MemTimingConfig cfg;
    cfg.firstAccess = 40; // the paper's 4x latency point
    cfg.beatRate = 8;
    MainMemory mem(cfg);
    BurstResult r = mem.burstRead(0, 32);
    EXPECT_EQ(r.beatArrival[0], 40u);
    EXPECT_EQ(r.done, 40u + 3 * 8);
}

TEST(MemoryTiming, StatsCountBurstsAndBeats)
{
    MainMemory mem;
    mem.burstRead(0, 32);
    mem.burstRead(0, 4);
    EXPECT_EQ(mem.numBursts(), 2u);
    EXPECT_EQ(mem.numBeats(), 5u);
    mem.resetTimingState();
    EXPECT_EQ(mem.numBursts(), 0u);
    EXPECT_EQ(mem.busyUntil(), 0u);
}

TEST(MemoryTiming, WriteOccupiesChannel)
{
    MainMemory mem;
    Cycle done = mem.burstWrite(0, 16);
    EXPECT_EQ(done, 12u);
    BurstResult r = mem.burstRead(0, 8);
    EXPECT_EQ(r.start, 12u);
}

} // namespace
} // namespace cps
