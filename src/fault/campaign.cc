#include "campaign.hh"

#include "codepack/decompressor.hh"
#include "codepack/imagefile.hh"

namespace cps
{
namespace fault
{

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::DetectedAtLoad:
        return "detected@load";
      case Outcome::RejectedInDecode:
        return "rejected";
      case Outcome::SilentlyCorrect:
        return "benign";
      case Outcome::SilentlyWrong:
        return "silently-wrong";
    }
    return "unknown";
}

namespace
{

Outcome
classifyAgainst(const codepack::CompressedImage &img,
                const std::vector<u32> &reference,
                const std::vector<u8> &corrupted, bool verify_crc)
{
    codepack::ImageLoadOptions opts;
    opts.verifyCrc = verify_crc;
    Result<codepack::CompressedImage> loaded =
        codepack::decodeImageChecked(corrupted, opts);
    if (!loaded)
        return Outcome::DetectedAtLoad;

    codepack::Decompressor decomp(*loaded);
    Result<std::vector<u32>> words = decomp.tryDecompressAll();
    if (!words)
        return Outcome::RejectedInDecode;

    // Decoded cleanly: is it the same program the pristine image holds?
    if (loaded->textBase != img.textBase ||
        loaded->origTextBytes != img.origTextBytes ||
        loaded->paddedInsns != img.paddedInsns)
        return Outcome::SilentlyWrong;
    if (*words != reference)
        return Outcome::SilentlyWrong;
    return Outcome::SilentlyCorrect;
}

} // namespace

Outcome
classifyCorruption(const codepack::CompressedImage &img,
                   const std::vector<u8> &corrupted, bool verify_crc)
{
    std::vector<u32> reference =
        codepack::Decompressor(img).decompressAll();
    return classifyAgainst(img, reference, corrupted, verify_crc);
}

CampaignResult
runCampaign(const codepack::CompressedImage &img,
            const CampaignConfig &cfg)
{
    std::vector<u8> pristine = codepack::encodeImage(img);
    std::vector<u32> reference =
        codepack::Decompressor(img).decompressAll();

    CampaignResult res;
    for (unsigned k = 0; k < kNumFaultKinds; ++k) {
        FaultKind kind = kAllFaultKinds[k];
        for (unsigned t = 0; t < cfg.trials; ++t) {
            std::vector<u8> bytes = pristine;
            FaultInjector injector(cfg.seed + t);
            FaultRecord rec = injector.inject(bytes, kind);
            Outcome o =
                classifyAgainst(img, reference, bytes, cfg.verifyCrc);
            if (o == Outcome::SilentlyWrong &&
                res.silentlyWrong() == 0)
                res.firstSilentWrong = rec;
            ++res.byOutcome[static_cast<unsigned>(o)];
            ++res.byKindOutcome[k][static_cast<unsigned>(o)];
            ++res.trials;
        }
    }
    return res;
}

} // namespace fault
} // namespace cps
