/**
 * @file
 * Building your own workload: defines a custom synthetic benchmark
 * profile with the progen API, generates it, and measures how its cache
 * behaviour drives the CodePack cost/benefit across the three paper
 * machines.
 *
 * Build & run:  ./build/examples/custom_benchmark
 */

#include <cstdio>

#include "codepack/compressor.hh"
#include "common/table.hh"
#include "progen/progen.hh"
#include "sim/machine.hh"

using namespace cps;

int
main()
{
    // A workload between 'mpeg2enc' and 'cc1': a moderate pool of
    // functions with medium reuse per call.
    BenchmarkProfile profile;
    profile.name = "custom";
    profile.numFuncs = 96;
    profile.hotFuncs = 64;
    profile.blocksPerFunc = 24;
    profile.chunkInsns = 8;
    profile.innerTrips = 24;
    profile.callsPerIter = 6;
    profile.numSubs = 96;
    profile.subCallPercent = 15;
    profile.skipPercent = 35;
    profile.oddConstPercent = 10;
    profile.seed = 0xc0ffee;

    Program prog = generateProgram(profile);
    codepack::CompressedImage image = codepack::compress(prog);
    std::printf("generated '%s': %zu instructions (%zu KB), codepack "
                "ratio %.1f%%\n\n",
                profile.name.c_str(), prog.textWords(),
                prog.text.bytes.size() / 1024,
                100.0 * image.compressionRatio());

    TextTable t;
    t.setTitle("Custom benchmark across the paper's machines");
    t.addHeader({"Machine", "I-miss rate", "Native IPC", "CodePack IPC",
                 "Optimized IPC"});

    const MachineConfig machines[] = {baseline1Issue(), baseline4Issue(),
                                      baseline8Issue()};
    for (const MachineConfig &m : machines) {
        std::vector<std::string> row{m.name};
        double missrate = 0;
        for (CodeModel model : {CodeModel::Native, CodeModel::CodePack,
                                CodeModel::CodePackOptimized}) {
            Machine machine(prog, m.withCodeModel(model), &image);
            RunResult r = machine.run(500000);
            if (model == CodeModel::Native) {
                missrate = machine.icacheMissRate();
                row.push_back(TextTable::pct(missrate));
            }
            row.push_back(TextTable::fmt(r.ipc(), 3));
        }
        t.addRow(row);
    }
    t.print();

    std::printf("\nKnobs to play with (progen/progen.hh): hotFuncs and "
                "innerTrips set the\nI-cache miss rate; oddConstPercent "
                "feeds the raw-escape share of the\ncompressed image; "
                "subCallPercent scatters the miss stream.\n");
    return 0;
}
